(* End-to-end tests of the streaming ingestion service: a real server
   on a Unix socket, real client connections, and the invariant that a
   streamed session reports exactly the races of the offline analyzer
   on the same trace. *)

open Crd
module Server = Crd_server.Server
module Client = Crd_server.Client
module W = Crd_workloads

let sock_counter = ref 0

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let fresh_addr () =
  incr sock_counter;
  Server.Unix_sock
    (Filename.concat
       (Filename.get_temp_dir_name ())
       (Printf.sprintf "crd-test-%d-%d.sock" (Unix.getpid ()) !sock_counter))

let with_server ?(f_config = Fun.id) k =
  let addr = fresh_addr () in
  let config = f_config (Server.default_config ~addr) in
  match Server.start config with
  | Error e -> Alcotest.failf "server start: %s" e
  | Ok server ->
      Fun.protect ~finally:(fun () -> ignore (Server.stop server)) (fun () ->
          k ~addr ~server)

let snitch_trace () =
  let trace = Trace.create () in
  ignore (W.Snitch.run ~seed:1L ~sink:(Trace.append trace) ());
  trace

(* The offline reference: same analyzer configuration as the server's
   default, race lines rendered exactly as the server renders them. *)
let offline_race_lines trace =
  let an =
    Analyzer.with_stdspecs
      ~config:
        {
          Analyzer.rd2 = `Constant;
          direct = false;
          fasttrack = false;
          djit = false;
          atomicity = false;
        }
      ()
  in
  Trace.iter_events trace ~f:(Analyzer.sink an);
  List.map (fun r -> Fmt.str "%a" Report.pp r) (Analyzer.rd2_races an)

let reply_race_lines reply =
  String.split_on_char '\n' reply
  |> List.filter (fun l -> String.length l > 0 && not (String.equal l "OK"))
  |> List.filter (fun l ->
         (* drop the summary block, keep the per-race lines *)
         String.length l >= 4 && String.equal (String.sub l 0 4) "comm")

let send_exn ~addr ?spec trace =
  match Client.send_trace ~addr ?spec trace with
  | Ok reply -> reply
  | Error e -> Alcotest.failf "send: %s" e

let races_match_offline () =
  let trace = snitch_trace () in
  let expected = offline_race_lines trace in
  with_server (fun ~addr ~server:_ ->
      let reply = send_exn ~addr trace in
      Alcotest.(check bool)
        "server reply accepted" true
        (String.length reply >= 2 && String.equal (String.sub reply 0 2) "OK");
      Alcotest.(check (list string))
        "server races = offline races" expected (reply_race_lines reply);
      Alcotest.(check bool)
        "reply carries a STATS line" true
        (contains reply "\nSTATS events="))

let races_match_offline_sharded () =
  let trace = snitch_trace () in
  let expected = offline_race_lines trace in
  with_server
    ~f_config:(fun c -> { c with Server.jobs = 2 })
    (fun ~addr ~server:_ ->
      let reply = send_exn ~addr trace in
      Alcotest.(check (list string))
        "jobs=2 server races = offline races" expected (reply_race_lines reply))

(* A queue bound far below the trace length forces the backpressure
   path (reader blocks, client write stalls on the socket buffer); the
   session must still complete with identical results. *)
let tiny_queue () =
  let trace = snitch_trace () in
  let expected = offline_race_lines trace in
  with_server
    ~f_config:(fun c -> { c with Server.queue_capacity = 4; workers = 1 })
    (fun ~addr ~server:_ ->
      let reply = send_exn ~addr trace in
      Alcotest.(check (list string))
        "queue=4 races = offline races" expected (reply_race_lines reply))

let concurrent_clients () =
  let trace = snitch_trace () in
  let expected = offline_race_lines trace in
  let n = 3 in
  with_server (fun ~addr ~server ->
      let replies = Array.make n (Error "never ran") in
      let threads =
        List.init n (fun i ->
            Thread.create
              (fun () -> replies.(i) <- Client.send_trace ~addr trace)
              ())
      in
      List.iter Thread.join threads;
      Array.iteri
        (fun i r ->
          match r with
          | Error e -> Alcotest.failf "client %d: %s" i e
          | Ok reply ->
              Alcotest.(check (list string))
                (Printf.sprintf "client %d races" i)
                expected (reply_race_lines reply))
        replies;
      let st = Server.stats server in
      Alcotest.(check int) "sessions" n st.Server.sessions;
      Alcotest.(check int) "events" (n * Trace.length trace) st.Server.events;
      Alcotest.(check int) "errors" 0 st.Server.errors)

let unknown_spec_rejected () =
  let trace = snitch_trace () in
  with_server (fun ~addr ~server ->
      (match Client.send_trace ~addr ~spec:"no-such-set" trace with
      | Ok reply -> Alcotest.failf "unknown spec accepted: %s" reply
      | Error _ -> ());
      (* The rejected handshake must not poison the server; it counts as
         a completed (error) session. *)
      ignore (send_exn ~addr trace);
      let st = Server.stats server in
      Alcotest.(check int) "two completed sessions" 2 st.Server.sessions;
      Alcotest.(check int) "one rejected session" 1 st.Server.errors)

(* A call that does not match its object's specification (unknown
   method) must come back as a clean ERR reply under every jobs
   setting, never as an escaped exception dump. *)
let malformed_trace () =
  match
    Trace_text.parse
      "T0 fork T1\nT1 call \"dictionary:o\".frobnicate(\"x\") / nil\nT0 join T1\n"
  with
  | Ok t -> t
  | Error e -> Alcotest.failf "parse: %s" e

let malformed_event_err jobs () =
  with_server
    ~f_config:(fun c -> { c with Server.jobs })
    (fun ~addr ~server ->
      (match Client.send_trace ~addr (malformed_trace ()) with
      | Ok reply -> Alcotest.failf "malformed trace accepted: %s" reply
      | Error msg ->
          Alcotest.(check bool)
            (Printf.sprintf "clean analyzer ERR (%s)" msg)
            true
            (contains msg "ERR Repr.eta"
            && not (contains msg "Invalid_argument")));
      (* ...and the session must not poison the server. *)
      ignore (send_exn ~addr (snitch_trace ()));
      let st = Server.stats server in
      Alcotest.(check int) "two completed sessions" 2 st.Server.sessions;
      Alcotest.(check int) "one error session" 1 st.Server.errors)

let metric_value dump name =
  String.split_on_char '\n' dump
  |> List.find_map (fun l ->
         match String.index_opt l ' ' with
         | Some i when String.sub l 0 i = name ->
             int_of_string_opt
               (String.sub l (i + 1) (String.length l - i - 1))
         | _ -> None)

(* Injected transient accept() failures (resource exhaustion) must be
   survived with backoff — the pending connection still gets served —
   and counted, both in stats and in the metrics registry. *)
let survives_transient_accept_errors () =
  let trace = snitch_trace () in
  let before =
    Option.value ~default:0
      (metric_value (Crd_obs.dump ()) "server_accept_errors_total")
  in
  with_server (fun ~addr ~server ->
      Server.inject_accept_error server Unix.EMFILE;
      Server.inject_accept_error server Unix.ENFILE;
      Server.inject_accept_error server Unix.ENOBUFS;
      let reply = send_exn ~addr trace in
      Alcotest.(check bool)
        "session served after accept failures" true
        (String.length reply >= 2 && String.equal (String.sub reply 0 2) "OK");
      let st = Server.stats server in
      Alcotest.(check int) "accept errors counted" 3 st.Server.accept_errors;
      Alcotest.(check int) "no session errors" 0 st.Server.errors;
      Alcotest.(check int) "one session" 1 st.Server.sessions;
      let after =
        Option.value ~default:0
          (metric_value (Crd_obs.dump ()) "server_accept_errors_total")
      in
      Alcotest.(check int) "server_accept_errors_total moved" (before + 3) after)

(* End-to-end scrape of the --metrics listener: counters must be
   exposed in Prometheus text format and move when a session runs. *)
let metrics_endpoint () =
  let trace = snitch_trace () in
  let maddr = fresh_addr () in
  let mpath = match maddr with Server.Unix_sock p -> p | _ -> assert false in
  with_server
    ~f_config:(fun c -> { c with Server.metrics_addr = Some maddr })
    (fun ~addr ~server:_ ->
      let scrape () =
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            Unix.connect fd (Unix.ADDR_UNIX mpath);
            let req = "GET /metrics HTTP/1.0\r\n\r\n" in
            ignore (Unix.write_substring fd req 0 (String.length req));
            let buf = Buffer.create 4096 in
            let bytes = Bytes.create 4096 in
            let rec go () =
              match Unix.read fd bytes 0 (Bytes.length bytes) with
              | 0 -> ()
              | n ->
                  Buffer.add_subbytes buf bytes 0 n;
                  go ()
            in
            go ();
            Buffer.contents buf)
      in
      let before = scrape () in
      Alcotest.(check bool)
        "HTTP response" true
        (String.length before > 12
        && String.equal (String.sub before 0 12) "HTTP/1.0 200");
      let v0 = Option.value ~default:0 (metric_value before "server_sessions_total") in
      let e0 = Option.value ~default:0 (metric_value before "analyzer_events_total") in
      ignore (send_exn ~addr trace);
      let after = scrape () in
      let v1 = Option.value ~default:0 (metric_value after "server_sessions_total") in
      let e1 = Option.value ~default:0 (metric_value after "analyzer_events_total") in
      Alcotest.(check int) "session counter moved" (v0 + 1) v1;
      Alcotest.(check int) "event counter moved"
        (e0 + Trace.length trace) e1;
      List.iter
        (fun needle ->
          Alcotest.(check bool) needle true (contains after needle))
        [
          "server_races_total";
          "server_errors_decode_total";
          "server_conn_queue_depth_hw";
          "server_session_queue_depth_hw";
          "server_session_seconds_bucket{le=";
          "server_handshake_seconds_sum";
          "server_analyze_seconds_count";
          "rd2_same_epoch_total";
          "rd2_promotions_total";
          "wire_rx_bytes_total";
        ])

(* A unix socket with a live listener must not be stolen by a second
   server; a stale socket file (no listener) must be reclaimed. *)
let live_socket_not_stolen () =
  with_server (fun ~addr ~server:_ ->
      (match Server.start (Server.default_config ~addr) with
      | Ok second ->
          ignore (Server.stop second);
          Alcotest.fail "second server bound over a live socket"
      | Error msg ->
          Alcotest.(check bool)
            (Printf.sprintf "refusal names the live server (%s)" msg)
            true (contains msg "live server"));
      (* The probe must not have disturbed the running server. *)
      ignore (send_exn ~addr (snitch_trace ())))

let stale_socket_reclaimed () =
  let addr = fresh_addr () in
  let path = match addr with Server.Unix_sock p -> p | _ -> assert false in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 1;
  Unix.close fd;
  (* The file outlives its listener: connect now gives ECONNREFUSED. *)
  Alcotest.(check bool) "stale socket file left behind" true
    (Sys.file_exists path);
  match Server.start (Server.default_config ~addr) with
  | Error e -> Alcotest.failf "stale socket not reclaimed: %s" e
  | Ok server ->
      Fun.protect
        ~finally:(fun () -> ignore (Server.stop server))
        (fun () -> ignore (send_exn ~addr (snitch_trace ())))

let addr_of_string_table () =
  let ok s expect =
    match Server.addr_of_string s with
    | Ok a ->
        Alcotest.(check string)
          s expect
          (Fmt.str "%a" Server.pp_addr a)
    | Error e -> Alcotest.failf "%s rejected: %s" s e
  in
  let rejected s =
    match Server.addr_of_string s with
    | Ok a -> Alcotest.failf "%s accepted as %a" s Server.pp_addr a
    | Error _ -> ()
  in
  ok "unix:/tmp/x.sock" "unix:/tmp/x.sock";
  ok "unix:rel.sock" "unix:rel.sock";
  ok "tcp:127.0.0.1:9090" "tcp:127.0.0.1:9090";
  ok "tcp:localhost:1" "tcp:localhost:1";
  ok "tcp::9090" "tcp:127.0.0.1:9090";
  (* IPv6-ish host: the last colon splits host from port. *)
  ok "tcp:::1:9090" "tcp:::1:9090";
  rejected "";
  rejected "unix:";
  rejected "tcp:";
  rejected "tcp:host";
  rejected "tcp:host:notaport";
  rejected "tcp:host:0";
  rejected "tcp:host:65536";
  rejected "udp:host:1";
  rejected "/tmp/x.sock"

let stop_releases_socket () =
  let addr = fresh_addr () in
  let path = match addr with Server.Unix_sock p -> p | _ -> assert false in
  (match Server.start (Server.default_config ~addr) with
  | Error e -> Alcotest.failf "start: %s" e
  | Ok server ->
      ignore (send_exn ~addr (snitch_trace ()));
      let st = Server.stop server in
      Alcotest.(check int) "drained one session" 1 st.Server.sessions);
  Alcotest.(check bool) "socket unlinked" false (Sys.file_exists path);
  match Client.send_trace ~addr (Trace.create ()) with
  | Ok _ -> Alcotest.fail "connected to a stopped server"
  | Error _ -> ()

let suite =
  ( "server",
    [
      Alcotest.test_case "races = offline check" `Quick races_match_offline;
      Alcotest.test_case "races = offline (jobs=2)" `Quick
        races_match_offline_sharded;
      Alcotest.test_case "backpressure (queue=4)" `Quick tiny_queue;
      Alcotest.test_case "concurrent clients" `Quick concurrent_clients;
      Alcotest.test_case "unknown spec rejected" `Quick unknown_spec_rejected;
      Alcotest.test_case "malformed event ERR (jobs=1)" `Quick
        (malformed_event_err 1);
      Alcotest.test_case "malformed event ERR (jobs=2)" `Quick
        (malformed_event_err 2);
      Alcotest.test_case "survives transient accept errors" `Quick
        survives_transient_accept_errors;
      Alcotest.test_case "metrics endpoint scrape" `Quick metrics_endpoint;
      Alcotest.test_case "live socket not stolen" `Quick live_socket_not_stolen;
      Alcotest.test_case "stale socket reclaimed" `Quick stale_socket_reclaimed;
      Alcotest.test_case "addr_of_string table" `Quick addr_of_string_table;
      Alcotest.test_case "stop releases the socket" `Quick stop_releases_socket;
    ] )
