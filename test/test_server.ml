(* End-to-end tests of the streaming ingestion service: a real server
   on a Unix socket, real client connections, and the invariant that a
   streamed session reports exactly the races of the offline analyzer
   on the same trace. *)

open Crd
module Server = Crd_server.Server
module Client = Crd_server.Client
module W = Crd_workloads

let sock_counter = ref 0

let fresh_addr () =
  incr sock_counter;
  Server.Unix_sock
    (Filename.concat
       (Filename.get_temp_dir_name ())
       (Printf.sprintf "crd-test-%d-%d.sock" (Unix.getpid ()) !sock_counter))

let with_server ?(f_config = Fun.id) k =
  let addr = fresh_addr () in
  let config = f_config (Server.default_config ~addr) in
  match Server.start config with
  | Error e -> Alcotest.failf "server start: %s" e
  | Ok server ->
      Fun.protect ~finally:(fun () -> ignore (Server.stop server)) (fun () ->
          k ~addr ~server)

let snitch_trace () =
  let trace = Trace.create () in
  ignore (W.Snitch.run ~seed:1L ~sink:(Trace.append trace) ());
  trace

(* The offline reference: same analyzer configuration as the server's
   default, race lines rendered exactly as the server renders them. *)
let offline_race_lines trace =
  let an =
    Analyzer.with_stdspecs
      ~config:
        {
          Analyzer.rd2 = `Constant;
          direct = false;
          fasttrack = false;
          djit = false;
          atomicity = false;
        }
      ()
  in
  Trace.iter_events trace ~f:(Analyzer.sink an);
  List.map (fun r -> Fmt.str "%a" Report.pp r) (Analyzer.rd2_races an)

let reply_race_lines reply =
  String.split_on_char '\n' reply
  |> List.filter (fun l -> String.length l > 0 && not (String.equal l "OK"))
  |> List.filter (fun l ->
         (* drop the summary block, keep the per-race lines *)
         String.length l >= 4 && String.equal (String.sub l 0 4) "comm")

let send_exn ~addr ?spec trace =
  match Client.send_trace ~addr ?spec trace with
  | Ok reply -> reply
  | Error e -> Alcotest.failf "send: %s" e

let races_match_offline () =
  let trace = snitch_trace () in
  let expected = offline_race_lines trace in
  with_server (fun ~addr ~server:_ ->
      let reply = send_exn ~addr trace in
      Alcotest.(check bool)
        "server reply accepted" true
        (String.length reply >= 2 && String.equal (String.sub reply 0 2) "OK");
      Alcotest.(check (list string))
        "server races = offline races" expected (reply_race_lines reply))

let races_match_offline_sharded () =
  let trace = snitch_trace () in
  let expected = offline_race_lines trace in
  with_server
    ~f_config:(fun c -> { c with Server.jobs = 2 })
    (fun ~addr ~server:_ ->
      let reply = send_exn ~addr trace in
      Alcotest.(check (list string))
        "jobs=2 server races = offline races" expected (reply_race_lines reply))

(* A queue bound far below the trace length forces the backpressure
   path (reader blocks, client write stalls on the socket buffer); the
   session must still complete with identical results. *)
let tiny_queue () =
  let trace = snitch_trace () in
  let expected = offline_race_lines trace in
  with_server
    ~f_config:(fun c -> { c with Server.queue_capacity = 4; workers = 1 })
    (fun ~addr ~server:_ ->
      let reply = send_exn ~addr trace in
      Alcotest.(check (list string))
        "queue=4 races = offline races" expected (reply_race_lines reply))

let concurrent_clients () =
  let trace = snitch_trace () in
  let expected = offline_race_lines trace in
  let n = 3 in
  with_server (fun ~addr ~server ->
      let replies = Array.make n (Error "never ran") in
      let threads =
        List.init n (fun i ->
            Thread.create
              (fun () -> replies.(i) <- Client.send_trace ~addr trace)
              ())
      in
      List.iter Thread.join threads;
      Array.iteri
        (fun i r ->
          match r with
          | Error e -> Alcotest.failf "client %d: %s" i e
          | Ok reply ->
              Alcotest.(check (list string))
                (Printf.sprintf "client %d races" i)
                expected (reply_race_lines reply))
        replies;
      let st = Server.stats server in
      Alcotest.(check int) "sessions" n st.Server.sessions;
      Alcotest.(check int) "events" (n * Trace.length trace) st.Server.events;
      Alcotest.(check int) "errors" 0 st.Server.errors)

let unknown_spec_rejected () =
  let trace = snitch_trace () in
  with_server (fun ~addr ~server ->
      (match Client.send_trace ~addr ~spec:"no-such-set" trace with
      | Ok reply -> Alcotest.failf "unknown spec accepted: %s" reply
      | Error _ -> ());
      (* The rejected handshake must not poison the server. *)
      ignore (send_exn ~addr trace);
      let st = Server.stats server in
      Alcotest.(check int) "one completed session" 1 st.Server.sessions;
      Alcotest.(check int) "one rejected session" 1 st.Server.errors)

let stop_releases_socket () =
  let addr = fresh_addr () in
  let path = match addr with Server.Unix_sock p -> p | _ -> assert false in
  (match Server.start (Server.default_config ~addr) with
  | Error e -> Alcotest.failf "start: %s" e
  | Ok server ->
      ignore (send_exn ~addr (snitch_trace ()));
      let st = Server.stop server in
      Alcotest.(check int) "drained one session" 1 st.Server.sessions);
  Alcotest.(check bool) "socket unlinked" false (Sys.file_exists path);
  match Client.send_trace ~addr (Trace.create ()) with
  | Ok _ -> Alcotest.fail "connected to a stopped server"
  | Error _ -> ()

let suite =
  ( "server",
    [
      Alcotest.test_case "races = offline check" `Quick races_match_offline;
      Alcotest.test_case "races = offline (jobs=2)" `Quick
        races_match_offline_sharded;
      Alcotest.test_case "backpressure (queue=4)" `Quick tiny_queue;
      Alcotest.test_case "concurrent clients" `Quick concurrent_clients;
      Alcotest.test_case "unknown spec rejected" `Quick unknown_spec_rejected;
      Alcotest.test_case "stop releases the socket" `Quick stop_releases_socket;
    ] )
