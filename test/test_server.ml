(* End-to-end tests of the streaming ingestion service: a real server
   on a Unix socket, real client connections, and the invariant that a
   streamed session reports exactly the races of the offline analyzer
   on the same trace. *)

open Crd
module Server = Crd_server.Server
module Client = Crd_server.Client
module W = Crd_workloads

let sock_counter = ref 0

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let fresh_addr () =
  incr sock_counter;
  Server.Unix_sock
    (Filename.concat
       (Filename.get_temp_dir_name ())
       (Printf.sprintf "crd-test-%d-%d.sock" (Unix.getpid ()) !sock_counter))

let with_server ?(f_config = Fun.id) k =
  let addr = fresh_addr () in
  let config = f_config (Server.default_config ~addr) in
  match Server.start config with
  | Error e -> Alcotest.failf "server start: %s" e
  | Ok server ->
      Fun.protect ~finally:(fun () -> ignore (Server.stop server)) (fun () ->
          k ~addr ~server)

let snitch_trace () =
  let trace = Trace.create () in
  ignore (W.Snitch.run ~seed:1L ~sink:(Trace.append trace) ());
  trace

(* The offline reference: same analyzer configuration as the server's
   default, race lines rendered exactly as the server renders them. *)
let offline_race_lines trace =
  let an =
    Analyzer.with_stdspecs
      ~config:
        {
          Analyzer.rd2 = `Constant;
          direct = false;
          fasttrack = false;
          djit = false;
          atomicity = false;
        }
      ()
  in
  Trace.iter_events trace ~f:(Analyzer.sink an);
  List.map (fun r -> Fmt.str "%a" Report.pp r) (Analyzer.rd2_races an)

let reply_race_lines reply =
  String.split_on_char '\n' reply
  |> List.filter (fun l -> String.length l > 0 && not (String.equal l "OK"))
  |> List.filter (fun l ->
         (* drop the summary block, keep the per-race lines *)
         String.length l >= 4 && String.equal (String.sub l 0 4) "comm")

let send_exn ~addr ?spec trace =
  match Client.send_trace ~addr ?spec trace with
  | Ok reply -> reply
  | Error e -> Alcotest.failf "send: %s" e

let races_match_offline () =
  let trace = snitch_trace () in
  let expected = offline_race_lines trace in
  with_server (fun ~addr ~server:_ ->
      let reply = send_exn ~addr trace in
      Alcotest.(check bool)
        "server reply accepted" true
        (String.length reply >= 2 && String.equal (String.sub reply 0 2) "OK");
      Alcotest.(check (list string))
        "server races = offline races" expected (reply_race_lines reply);
      Alcotest.(check bool)
        "reply carries a STATS line" true
        (contains reply "\nSTATS events="))

let races_match_offline_sharded () =
  let trace = snitch_trace () in
  let expected = offline_race_lines trace in
  with_server
    ~f_config:(fun c -> { c with Server.jobs = 2 })
    (fun ~addr ~server:_ ->
      let reply = send_exn ~addr trace in
      Alcotest.(check (list string))
        "jobs=2 server races = offline races" expected (reply_race_lines reply))

(* A queue bound far below the trace length forces the backpressure
   path (reader blocks, client write stalls on the socket buffer); the
   session must still complete with identical results. *)
let tiny_queue () =
  let trace = snitch_trace () in
  let expected = offline_race_lines trace in
  with_server
    ~f_config:(fun c -> { c with Server.queue_capacity = 4; workers = 1 })
    (fun ~addr ~server:_ ->
      let reply = send_exn ~addr trace in
      Alcotest.(check (list string))
        "queue=4 races = offline races" expected (reply_race_lines reply))

let concurrent_clients () =
  let trace = snitch_trace () in
  let expected = offline_race_lines trace in
  let n = 3 in
  with_server (fun ~addr ~server ->
      let replies = Array.make n (Error "never ran") in
      let threads =
        List.init n (fun i ->
            Thread.create
              (fun () -> replies.(i) <- Client.send_trace ~addr trace)
              ())
      in
      List.iter Thread.join threads;
      Array.iteri
        (fun i r ->
          match r with
          | Error e -> Alcotest.failf "client %d: %s" i e
          | Ok reply ->
              Alcotest.(check (list string))
                (Printf.sprintf "client %d races" i)
                expected (reply_race_lines reply))
        replies;
      let st = Server.stats server in
      Alcotest.(check int) "sessions" n st.Server.sessions;
      Alcotest.(check int) "events" (n * Trace.length trace) st.Server.events;
      Alcotest.(check int) "errors" 0 st.Server.errors)

let unknown_spec_rejected () =
  let trace = snitch_trace () in
  with_server (fun ~addr ~server ->
      (match Client.send_trace ~addr ~spec:"no-such-set" trace with
      | Ok reply -> Alcotest.failf "unknown spec accepted: %s" reply
      | Error _ -> ());
      (* The rejected handshake must not poison the server; it counts as
         a completed (error) session. *)
      ignore (send_exn ~addr trace);
      let st = Server.stats server in
      Alcotest.(check int) "two completed sessions" 2 st.Server.sessions;
      Alcotest.(check int) "one rejected session" 1 st.Server.errors)

(* A call that does not match its object's specification (unknown
   method) must come back as a clean ERR reply under every jobs
   setting, never as an escaped exception dump. *)
let malformed_trace () =
  match
    Trace_text.parse
      "T0 fork T1\nT1 call \"dictionary:o\".frobnicate(\"x\") / nil\nT0 join T1\n"
  with
  | Ok t -> t
  | Error e -> Alcotest.failf "parse: %s" e

let malformed_event_err jobs () =
  with_server
    ~f_config:(fun c -> { c with Server.jobs })
    (fun ~addr ~server ->
      (match Client.send_trace ~addr (malformed_trace ()) with
      | Ok reply -> Alcotest.failf "malformed trace accepted: %s" reply
      | Error msg ->
          Alcotest.(check bool)
            (Printf.sprintf "clean analyzer ERR (%s)" msg)
            true
            (contains msg "ERR Repr.eta"
            && not (contains msg "Invalid_argument")));
      (* ...and the session must not poison the server. *)
      ignore (send_exn ~addr (snitch_trace ()));
      let st = Server.stats server in
      Alcotest.(check int) "two completed sessions" 2 st.Server.sessions;
      Alcotest.(check int) "one error session" 1 st.Server.errors)

let metric_value dump name =
  String.split_on_char '\n' dump
  |> List.find_map (fun l ->
         match String.index_opt l ' ' with
         | Some i when String.sub l 0 i = name ->
             int_of_string_opt
               (String.sub l (i + 1) (String.length l - i - 1))
         | _ -> None)

(* Injected transient accept() failures (resource exhaustion) must be
   survived with backoff — the pending connection still gets served —
   and counted, both in stats and in the metrics registry. *)
let survives_transient_accept_errors () =
  let trace = snitch_trace () in
  let before =
    Option.value ~default:0
      (metric_value (Crd_obs.dump ()) "server_accept_errors_total")
  in
  with_server (fun ~addr ~server ->
      Server.inject_accept_error server Unix.EMFILE;
      Server.inject_accept_error server Unix.ENFILE;
      Server.inject_accept_error server Unix.ENOBUFS;
      let reply = send_exn ~addr trace in
      Alcotest.(check bool)
        "session served after accept failures" true
        (String.length reply >= 2 && String.equal (String.sub reply 0 2) "OK");
      let st = Server.stats server in
      Alcotest.(check int) "accept errors counted" 3 st.Server.accept_errors;
      Alcotest.(check int) "no session errors" 0 st.Server.errors;
      Alcotest.(check int) "one session" 1 st.Server.sessions;
      let after =
        Option.value ~default:0
          (metric_value (Crd_obs.dump ()) "server_accept_errors_total")
      in
      Alcotest.(check int) "server_accept_errors_total moved" (before + 3) after)

(* End-to-end scrape of the --metrics listener: counters must be
   exposed in Prometheus text format and move when a session runs. *)
let metrics_endpoint () =
  let trace = snitch_trace () in
  let maddr = fresh_addr () in
  let mpath = match maddr with Server.Unix_sock p -> p | _ -> assert false in
  with_server
    ~f_config:(fun c -> { c with Server.metrics_addr = Some maddr })
    (fun ~addr ~server:_ ->
      let scrape () =
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            Unix.connect fd (Unix.ADDR_UNIX mpath);
            let req = "GET /metrics HTTP/1.0\r\n\r\n" in
            ignore (Unix.write_substring fd req 0 (String.length req));
            let buf = Buffer.create 4096 in
            let bytes = Bytes.create 4096 in
            let rec go () =
              match Unix.read fd bytes 0 (Bytes.length bytes) with
              | 0 -> ()
              | n ->
                  Buffer.add_subbytes buf bytes 0 n;
                  go ()
            in
            go ();
            Buffer.contents buf)
      in
      let before = scrape () in
      Alcotest.(check bool)
        "HTTP response" true
        (String.length before > 12
        && String.equal (String.sub before 0 12) "HTTP/1.0 200");
      let v0 = Option.value ~default:0 (metric_value before "server_sessions_total") in
      let e0 = Option.value ~default:0 (metric_value before "analyzer_events_total") in
      ignore (send_exn ~addr trace);
      let after = scrape () in
      let v1 = Option.value ~default:0 (metric_value after "server_sessions_total") in
      let e1 = Option.value ~default:0 (metric_value after "analyzer_events_total") in
      Alcotest.(check int) "session counter moved" (v0 + 1) v1;
      Alcotest.(check int) "event counter moved"
        (e0 + Trace.length trace) e1;
      List.iter
        (fun needle ->
          Alcotest.(check bool) needle true (contains after needle))
        [
          "server_races_total";
          "server_errors_decode_total";
          "server_conn_queue_depth_hw";
          "server_session_queue_depth_hw";
          "server_session_seconds_bucket{le=";
          "server_handshake_seconds_sum";
          "server_analyze_seconds_count";
          "rd2_same_epoch_total";
          "rd2_promotions_total";
          "wire_rx_bytes_total";
        ])

(* A unix socket with a live listener must not be stolen by a second
   server; a stale socket file (no listener) must be reclaimed. *)
let live_socket_not_stolen () =
  with_server (fun ~addr ~server:_ ->
      (match Server.start (Server.default_config ~addr) with
      | Ok second ->
          ignore (Server.stop second);
          Alcotest.fail "second server bound over a live socket"
      | Error msg ->
          Alcotest.(check bool)
            (Printf.sprintf "refusal names the live server (%s)" msg)
            true (contains msg "live server"));
      (* The probe must not have disturbed the running server. *)
      ignore (send_exn ~addr (snitch_trace ())))

let stale_socket_reclaimed () =
  let addr = fresh_addr () in
  let path = match addr with Server.Unix_sock p -> p | _ -> assert false in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 1;
  Unix.close fd;
  (* The file outlives its listener: connect now gives ECONNREFUSED. *)
  Alcotest.(check bool) "stale socket file left behind" true
    (Sys.file_exists path);
  match Server.start (Server.default_config ~addr) with
  | Error e -> Alcotest.failf "stale socket not reclaimed: %s" e
  | Ok server ->
      Fun.protect
        ~finally:(fun () -> ignore (Server.stop server))
        (fun () -> ignore (send_exn ~addr (snitch_trace ())))

let addr_of_string_table () =
  let ok s expect =
    match Server.addr_of_string s with
    | Ok a ->
        Alcotest.(check string)
          s expect
          (Fmt.str "%a" Server.pp_addr a)
    | Error e -> Alcotest.failf "%s rejected: %s" s e
  in
  let rejected s =
    match Server.addr_of_string s with
    | Ok a -> Alcotest.failf "%s accepted as %a" s Server.pp_addr a
    | Error _ -> ()
  in
  ok "unix:/tmp/x.sock" "unix:/tmp/x.sock";
  ok "unix:rel.sock" "unix:rel.sock";
  ok "tcp:127.0.0.1:9090" "tcp:127.0.0.1:9090";
  ok "tcp:localhost:1" "tcp:localhost:1";
  ok "tcp::9090" "tcp:127.0.0.1:9090";
  (* IPv6: bracketed literals, canonical bracketed rendering. *)
  ok "tcp:[::1]:9000" "tcp:[::1]:9000";
  ok "tcp:[fe80::1]:80" "tcp:[fe80::1]:80";
  ok "tcp:[2001:db8::2]:65535" "tcp:[2001:db8::2]:65535";
  (* Bare IPv6-ish host: the last colon splits host from port, and the
     result renders in the canonical bracketed form. *)
  ok "tcp:::1:9090" "tcp:[::1]:9090";
  rejected "";
  rejected "unix:";
  rejected "tcp:";
  rejected "tcp:host";
  rejected "tcp:host:notaport";
  rejected "tcp:host:0";
  rejected "tcp:host:65536";
  rejected "udp:host:1";
  rejected "/tmp/x.sock";
  rejected "tcp:[::1]";
  rejected "tcp:[::1]9000";
  rejected "tcp:[::1";
  rejected "tcp:[]:9000";
  rejected "tcp:[::1]:";
  rejected "tcp:[::1]:0"

(* ------------------------------------------------------------------ *)
(* Robustness: shedding, supervision, retries, journals                *)
(* ------------------------------------------------------------------ *)

module Proto = Crd_server.Proto
module Journal = Crd_server.Journal

let poll ?(tries = 400) ?(interval = 0.025) msg cond =
  let rec go n =
    if cond () then ()
    else if n = 0 then Alcotest.fail msg
    else begin
      Unix.sleepf interval;
      go (n - 1)
    end
  in
  go tries

let with_faults spec k =
  (match Crd_fault.configure spec with
  | Ok () -> ()
  | Error e -> Alcotest.failf "configure %S: %s" spec e);
  Fun.protect ~finally:Crd_fault.reset k

let encode_trace trace =
  let buf = Buffer.create 4096 in
  let enc = Wire.Encoder.create ~emit:(Buffer.add_string buf) () in
  Trace.iter_events trace ~f:(Wire.Encoder.event enc);
  Wire.Encoder.close enc;
  Buffer.contents buf

let fresh_dir tag =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s-%d-%d" tag (Unix.getpid ()) (incr sock_counter; !sock_counter))
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  dir

let read_file path = In_channel.with_open_bin path In_channel.input_all

(* Regression for the EINTR abort: a signal landing mid-[read]/[write]
   used to kill the session (the raw fd loops treated [EINTR] as a hard
   error). With the [io_eintr] fault interrupting every third raw
   syscall on both sides of the connection — handshake, trace stream,
   journal append, report — the retries must make the session
   indistinguishable from a calm one. *)
let eintr_storm () =
  let trace = snitch_trace () in
  let expected = offline_race_lines trace in
  let dir = fresh_dir "crd-eintr" in
  with_faults "io_eintr=every:3" (fun () ->
      with_server
        ~f_config:(fun c -> { c with Server.journal = Some dir })
        (fun ~addr ~server:_ ->
          let reply = send_exn ~addr trace in
          Alcotest.(check (list string))
            "races under EINTR storm = offline races" expected
            (reply_race_lines reply)))

(* With one busy worker and a full backlog, the next connection must be
   shed with a BUSY reply carrying the configured retry hint — before
   its handshake is even read. *)
let busy_shed () =
  with_server
    ~f_config:(fun c ->
      { c with Server.workers = 1; shed_backlog = 1; retry_after_ms = 123 })
    (fun ~addr ~server ->
      let path = match addr with Server.Unix_sock p -> p | _ -> assert false in
      let conn () =
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX path);
        fd
      in
      let c1 = conn () in
      (* The lone worker owns c1 (blocked reading its handshake)... *)
      poll "worker never picked up the session" (fun () ->
          match metric_value (Crd_obs.dump ()) "server_sessions_active" with
          | Some v -> v >= 1
          | None -> false);
      (* ...c2 fills the backlog... *)
      let c2 = conn () in
      poll "second connection never queued" (fun () ->
          match metric_value (Crd_obs.dump ()) "server_conn_queue_depth_hw" with
          | Some v -> v >= 1
          | None -> false);
      (* ...so c3 must be shed. *)
      let c3 = conn () in
      (match Proto.read_handshake_reply c3 with
      | Ok (Proto.Busy ms) -> Alcotest.(check int) "retry-after hint" 123 ms
      | Ok Proto.Accepted -> Alcotest.fail "expected BUSY, got accept"
      | Ok (Proto.Rejected m) -> Alcotest.failf "expected BUSY, got reject %s" m
      | Error e -> Alcotest.failf "shed reply: %s" e);
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        [ c1; c2; c3 ];
      let st = Server.stats server in
      Alcotest.(check int) "one shed connection" 1 st.Server.busy)

(* An exception escaping a session (worker_body fault) kills only that
   worker: the client gets a clean ERR, a respawned worker serves the
   next session, and the crash is counted. *)
let worker_crash_respawn () =
  let trace = snitch_trace () in
  let expected = offline_race_lines trace in
  with_faults "seed=3,worker_body=once" (fun () ->
      with_server
        ~f_config:(fun c -> { c with Server.workers = 1 })
        (fun ~addr ~server ->
          (match Client.send_trace ~addr trace with
          | Ok reply -> Alcotest.failf "crashed worker replied OK: %s" reply
          | Error msg ->
              Alcotest.(check bool)
                (Printf.sprintf "clean worker-crash ERR (%s)" msg)
                true
                (contains msg "internal: worker crashed"));
          (* The respawned worker serves the next session identically. *)
          let reply = send_exn ~addr trace in
          Alcotest.(check (list string))
            "post-crash races = offline races" expected
            (reply_race_lines reply);
          let st = Server.stats server in
          Alcotest.(check int) "one worker crash" 1 st.Server.worker_crashes;
          Alcotest.(check int) "two sessions" 2 st.Server.sessions;
          Alcotest.(check int) "one error session" 1 st.Server.errors))

(* A lost reply (sock_write fault) is invisible to the analysis: the
   client retries under the same nonce and gets the full report. *)
let retry_on_lost_reply () =
  let trace = snitch_trace () in
  let expected = offline_race_lines trace in
  with_faults "seed=5,sock_write=once" (fun () ->
      with_server (fun ~addr ~server ->
          let reply =
            match
              Client.send_trace ~addr ~retries:3 ~backoff:0.01
                ~nonce:"retry-test" trace
            with
            | Ok reply -> reply
            | Error e -> Alcotest.failf "retrying send failed: %s" e
          in
          Alcotest.(check (list string))
            "retried races = offline races" expected (reply_race_lines reply);
          let st = Server.stats server in
          Alcotest.(check int) "both attempts completed" 2 st.Server.sessions;
          Alcotest.(check int) "no error sessions" 0 st.Server.errors))

(* Without retries the same lost reply is a hard error — the retry
   machinery, not luck, is what the previous test exercises. *)
let lost_reply_without_retries () =
  let trace = snitch_trace () in
  with_faults "seed=5,sock_write=once" (fun () ->
      with_server (fun ~addr ~server:_ ->
          match Client.send_trace ~addr trace with
          | Ok reply -> Alcotest.failf "lost reply came back: %s" reply
          | Error msg ->
              Alcotest.(check bool)
                (Printf.sprintf "reports the lost reply (%s)" msg)
                true
                (contains msg "connection closed before report")))

(* Journal replay: a committed-but-unreported journal on disk is
   analyzed at startup and its report matches the offline analyzer; an
   uncommitted (partial) journal is left alone. *)
let journal_replay_on_start () =
  let trace = snitch_trace () in
  let expected = offline_race_lines trace in
  let dir = fresh_dir "crd-journal" in
  let bytes = encode_trace trace in
  let j = Journal.start ~dir ~nonce:"replay1" ~spec:"std" in
  Journal.append j bytes;
  Journal.commit j;
  Journal.close j;
  let j2 = Journal.start ~dir ~nonce:"partial" ~spec:"std" in
  Journal.append j2 (String.sub bytes 0 (String.length bytes / 2));
  Journal.close j2;
  with_server
    ~f_config:(fun c -> { c with Server.journal = Some dir })
    (fun ~addr:_ ~server ->
      let st = Server.stats server in
      Alcotest.(check int) "one recovered session" 1 st.Server.recovered;
      Alcotest.(check int) "recovery counted as a session" 1 st.Server.sessions;
      Alcotest.(check int) "no errors" 0 st.Server.errors;
      let report = read_file (Filename.concat dir "replay1.report") in
      Alcotest.(check (list string))
        "recovered races = offline races" expected (reply_race_lines report);
      Alcotest.(check bool)
        "partial journal not replayed" false
        (Sys.file_exists (Filename.concat dir "partial.report")))

(* ------------------------------------------------------------------ *)
(* Subprocess end-to-end: SIGKILL crash recovery, SIGTERM drain        *)
(* ------------------------------------------------------------------ *)

(* Resolved against this test binary's own location so it works under
   both `dune runtest` (cwd = _build/default/test) and `dune exec`
   from the source root. *)
let rd2_exe =
  Filename.concat
    (Filename.concat (Filename.dirname Sys.executable_name) "..")
    (Filename.concat "bin" "rd2.exe")

let spawn_server args =
  Unix.create_process rd2_exe
    (Array.of_list ("rd2" :: args))
    Unix.stdin Unix.stdout Unix.stderr

let wait_listening path =
  poll "server never came up" (fun () ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          match Unix.connect fd (Unix.ADDR_UNIX path) with
          | () -> true
          | exception Unix.Unix_error _ -> false))

let kill_quietly pid signal =
  try Unix.kill pid signal with Unix.Unix_error _ -> ()

let reap pid =
  try snd (Unix.waitpid [] pid) with Unix.Unix_error _ -> Unix.WEXITED 0

(* The real thing: a server process is SIGKILLed inside the window
   where a session's journal is committed but its report unsent (held
   open by the report_send stall fault); a restart with the same
   journal directory recovers the session and reports the same races
   the offline analyzer finds. *)
let sigkill_crash_recovery () =
  let trace = snitch_trace () in
  let expected = offline_race_lines trace in
  let dir = fresh_dir "crd-crash" in
  let addr = fresh_addr () in
  let path = match addr with Server.Unix_sock p -> p | _ -> assert false in
  let pid =
    spawn_server
      [
        "serve"; "-a"; "unix:" ^ path; "--journal"; dir; "--workers"; "1";
        "--faults"; "seed=7,report_send=once";
      ]
  in
  Fun.protect
    ~finally:(fun () ->
      kill_quietly pid Sys.sigkill;
      ignore (reap pid))
    (fun () ->
      wait_listening path;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd (Unix.ADDR_UNIX path);
          Proto.send_handshake fd ~nonce:"crash1" ~spec:"std" ();
          (match Proto.read_handshake_reply fd with
          | Ok Proto.Accepted -> ()
          | Ok _ | Error _ -> Alcotest.fail "handshake not accepted");
          Proto.write_all fd (encode_trace trace);
          (* The commit marker is fsync'd by the reader thread; the
             reply is parked behind the report_send stall. *)
          poll "commit marker never appeared" (fun () ->
              Sys.file_exists (Filename.concat dir "crash1.commit"));
          Alcotest.(check bool)
            "report not yet delivered" false
            (Sys.file_exists (Filename.concat dir "crash1.report"));
          kill_quietly pid Sys.sigkill;
          ignore (reap pid)));
  with_server
    ~f_config:(fun c -> { c with Server.journal = Some dir })
    (fun ~addr:_ ~server ->
      Alcotest.(check int)
        "recovered the killed session" 1 (Server.stats server).Server.recovered);
  let report = read_file (Filename.concat dir "crash1.report") in
  Alcotest.(check (list string))
    "recovered races = offline races" expected (reply_race_lines report)

(* SIGTERM mid-stream with two in-flight sessions under --jobs 2: both
   clients still get their full reports and the process exits 0. *)
let sigterm_graceful_drain () =
  let trace = snitch_trace () in
  let expected = offline_race_lines trace in
  let addr = fresh_addr () in
  let path = match addr with Server.Unix_sock p -> p | _ -> assert false in
  let pid =
    spawn_server
      [ "serve"; "-a"; "unix:" ^ path; "--jobs"; "2"; "--workers"; "2" ]
  in
  Fun.protect
    ~finally:(fun () ->
      kill_quietly pid Sys.sigkill;
      ignore (reap pid))
    (fun () ->
      wait_listening path;
      let n = 2 in
      let results = Array.make n (Error "never ran") in
      let slow_send i =
        results.(i) <-
          Client.send_iter ~addr (fun push ->
              let k = ref 0 in
              Trace.iter_events trace ~f:(fun e ->
                  incr k;
                  if !k mod 100 = 0 then Unix.sleepf 0.01;
                  push e);
              Ok ())
      in
      let threads =
        List.init n (fun i -> Thread.create (fun () -> slow_send i) ())
      in
      Unix.sleepf 0.1;
      kill_quietly pid Sys.sigterm;
      List.iter Thread.join threads;
      let status = reap pid in
      Alcotest.(check bool)
        "server exited 0 after drain" true
        (status = Unix.WEXITED 0);
      Array.iteri
        (fun i r ->
          match r with
          | Error e -> Alcotest.failf "drained client %d: %s" i e
          | Ok reply ->
              Alcotest.(check (list string))
                (Printf.sprintf "drained client %d races" i)
                expected (reply_race_lines reply))
        results)

let stop_releases_socket () =
  let addr = fresh_addr () in
  let path = match addr with Server.Unix_sock p -> p | _ -> assert false in
  (match Server.start (Server.default_config ~addr) with
  | Error e -> Alcotest.failf "start: %s" e
  | Ok server ->
      ignore (send_exn ~addr (snitch_trace ()));
      let st = Server.stop server in
      Alcotest.(check int) "drained one session" 1 st.Server.sessions);
  Alcotest.(check bool) "socket unlinked" false (Sys.file_exists path);
  match Client.send_trace ~addr (Trace.create ()) with
  | Ok _ -> Alcotest.fail "connected to a stopped server"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Race database publication                                           *)
(* ------------------------------------------------------------------ *)

let offline_races trace =
  let an =
    Analyzer.with_stdspecs
      ~config:
        {
          Analyzer.rd2 = `Constant;
          direct = false;
          fasttrack = false;
          djit = false;
          atomicity = false;
        }
      ()
  in
  Trace.iter_events trace ~f:(Analyzer.sink an);
  Analyzer.rd2_races an

(* Per-fingerprint occurrence counts, the fold [rd2 query] serves. *)
let fingerprint_fold races =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun r ->
      let fp = Report.fingerprint r in
      Hashtbl.replace tbl fp (1 + Option.value ~default:0 (Hashtbl.find_opt tbl fp)))
    races;
  List.sort compare (Hashtbl.fold (fun fp c acc -> (fp, c) :: acc) tbl [])

(* Every session's verdict lands in the race database; after [stop] the
   folded fingerprints (and counts) equal the offline analyzer's fold. *)
let racedb_publication () =
  let trace = snitch_trace () in
  let races = offline_races trace in
  let expected = fingerprint_fold races in
  Alcotest.(check bool) "snitch races exist" true (List.length races > 0);
  let dir = fresh_dir "crd-racedb-pub" in
  with_server
    ~f_config:(fun c -> { c with Server.racedb = Some dir })
    (fun ~addr ~server:_ ->
      let reply = send_exn ~addr trace in
      (* the STATS line now carries the fingerprint-distinct count *)
      let distinct =
        String.split_on_char '\n' reply
        |> List.find_map (fun l ->
               Scanf.sscanf_opt l "STATS events=%d races=%d distinct=%d"
                 (fun _ _ d -> d))
      in
      Alcotest.(check (option int))
        "STATS distinct = offline distinct"
        (Some (Report.distinct races))
        distinct;
      ignore (send_exn ~addr trace));
  let v = Result.get_ok (Crd_racedb.Db.load dir) in
  let es = v.Crd_racedb.Db.v_entries and st = v.Crd_racedb.Db.v_stats in
  Alcotest.(check int)
    "db total = 2 sessions of races" (2 * List.length races) st.Crd_racedb.Db.total;
  let folded =
    List.sort compare
      (List.map
         (fun (e : Crd_racedb.Entry.t) ->
           (e.Crd_racedb.Entry.fingerprint, Crd_racedb.Entry.count e))
         es)
  in
  Alcotest.(check (list (pair int64 int)))
    "db fold = offline fold, doubled"
    (List.map (fun (fp, c) -> (fp, 2 * c)) expected)
    folded

(* Journal replay republishes into the race database: the race set of a
   crashed-but-committed session is durable after recovery. *)
let racedb_journal_replay () =
  let trace = snitch_trace () in
  let expected = fingerprint_fold (offline_races trace) in
  let jdir = fresh_dir "crd-racedb-j" in
  let dbdir = fresh_dir "crd-racedb-jdb" in
  let j = Journal.start ~dir:jdir ~nonce:"replaydb" ~spec:"std" in
  Journal.append j (encode_trace trace);
  Journal.commit j;
  Journal.close j;
  with_server
    ~f_config:(fun c ->
      { c with Server.journal = Some jdir; racedb = Some dbdir })
    (fun ~addr:_ ~server ->
      Alcotest.(check int)
        "one recovered session" 1 (Server.stats server).Server.recovered);
  let es = (Result.get_ok (Crd_racedb.Db.load dbdir)).Crd_racedb.Db.v_entries in
  Alcotest.(check (list (pair int64 int)))
    "replayed fold = offline fold" expected
    (List.sort compare
       (List.map
          (fun (e : Crd_racedb.Entry.t) ->
            (e.Crd_racedb.Entry.fingerprint, Crd_racedb.Entry.count e))
          es))

(* Regression: a SIGKILLed process that had already published its
   session must not publish it again when the committed journal is
   replayed on restart. The batch frame carries the session nonce and
   the store's durable published-nonce set drops the replay. *)
let racedb_replay_no_double_count () =
  let trace = snitch_trace () in
  let races = offline_races trace in
  let expected = fingerprint_fold races in
  let jdir = fresh_dir "crd-racedb-dd-j" in
  let dbdir = fresh_dir "crd-racedb-dd-db" in
  let j = Journal.start ~dir:jdir ~nonce:"dedup1" ~spec:"std" in
  Journal.append j (encode_trace trace);
  Journal.commit j;
  Journal.close j;
  (* what the dead process did before the kill: publish, but never
     write the .report that would retire the journal *)
  let db = Result.get_ok (Crd_racedb.Db.open_db dbdir) in
  ignore
    (Crd_racedb.Db.publish db ~nonce:"dedup1"
       (List.map (fun r -> Crd_racedb.Record.make ~ts:1000. ~spec:"std" r) races)
      : bool);
  Crd_racedb.Db.close db;
  with_server
    ~f_config:(fun c ->
      { c with Server.journal = Some jdir; racedb = Some dbdir })
    (fun ~addr:_ ~server ->
      Alcotest.(check int)
        "journal replayed" 1 (Server.stats server).Server.recovered);
  let es = (Result.get_ok (Crd_racedb.Db.load dbdir)).Crd_racedb.Db.v_entries in
  Alcotest.(check (list (pair int64 int)))
    "replay did not inflate counts" expected
    (List.sort compare
       (List.map
          (fun (e : Crd_racedb.Entry.t) ->
            (e.Crd_racedb.Entry.fingerprint, Crd_racedb.Entry.count e))
          es))

let suite =
  ( "server",
    [
      Alcotest.test_case "races = offline check" `Quick races_match_offline;
      Alcotest.test_case "races = offline (jobs=2)" `Quick
        races_match_offline_sharded;
      Alcotest.test_case "backpressure (queue=4)" `Quick tiny_queue;
      Alcotest.test_case "concurrent clients" `Quick concurrent_clients;
      Alcotest.test_case "unknown spec rejected" `Quick unknown_spec_rejected;
      Alcotest.test_case "malformed event ERR (jobs=1)" `Quick
        (malformed_event_err 1);
      Alcotest.test_case "malformed event ERR (jobs=2)" `Quick
        (malformed_event_err 2);
      Alcotest.test_case "survives transient accept errors" `Quick
        survives_transient_accept_errors;
      Alcotest.test_case "metrics endpoint scrape" `Quick metrics_endpoint;
      Alcotest.test_case "live socket not stolen" `Quick live_socket_not_stolen;
      Alcotest.test_case "stale socket reclaimed" `Quick stale_socket_reclaimed;
      Alcotest.test_case "addr_of_string table" `Quick addr_of_string_table;
      Alcotest.test_case "stop releases the socket" `Quick stop_releases_socket;
      Alcotest.test_case "overload shed replies BUSY" `Quick busy_shed;
      Alcotest.test_case "session survives an EINTR storm" `Quick eintr_storm;
      Alcotest.test_case "worker crash respawn" `Quick worker_crash_respawn;
      Alcotest.test_case "retry recovers a lost reply" `Quick
        retry_on_lost_reply;
      Alcotest.test_case "lost reply without retries fails" `Quick
        lost_reply_without_retries;
      Alcotest.test_case "journal replay on start" `Quick
        journal_replay_on_start;
      Alcotest.test_case "racedb publication = offline fold" `Quick
        racedb_publication;
      Alcotest.test_case "racedb journal replay" `Quick racedb_journal_replay;
      Alcotest.test_case "racedb replay never double-counts" `Quick
        racedb_replay_no_double_count;
      Alcotest.test_case "SIGKILL crash recovery" `Quick
        sigkill_crash_recovery;
      Alcotest.test_case "SIGTERM graceful drain" `Quick
        sigterm_graceful_drain;
    ] )
