(* The embedded race database: record codec round-trips, torn-tail
   recovery at every byte offset, compaction (including an injected
   mid-compaction abort), rollup ring arithmetic, and the fingerprint
   identity everything folds by. *)

open Crd
module Db = Crd_racedb.Db
module Record = Crd_racedb.Record
module Rollup = Crd_racedb.Rollup
module Entry = Crd_racedb.Entry
module Gen = QCheck2.Gen

let qcheck ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let tmp_counter = ref 0

let fresh_dir () =
  incr tmp_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "crd-racedb-%d-%d" (Unix.getpid ()) !tmp_counter)
  in
  let rec rm p =
    if Sys.is_directory p then begin
      Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
      Unix.rmdir p
    end
    else Sys.remove p
  in
  if Sys.file_exists d then rm d;
  d

(* --- report / record generators ------------------------------------ *)

let value_gen =
  Gen.oneof
    [
      Gen.return Value.Nil;
      Gen.map (fun b -> Value.Bool b) Gen.bool;
      Gen.map (fun i -> Value.Int i) Gen.int;
      Gen.map (fun s -> Value.Str s) (Gen.string_size (Gen.int_bound 12));
      Gen.map (fun i -> Value.Ref (abs i)) Gen.nat;
    ]

let action_gen obj =
  let open Gen in
  let* meth = Gen.oneofl [ "put"; "get"; "remove"; "size"; "add" ] in
  let* args = Gen.list_size (Gen.int_bound 3) value_gen in
  let* rets = Gen.list_size (Gen.int_bound 2) value_gen in
  Gen.return (Action.make ~obj ~meth ~args ~rets ())

let report_gen =
  let open Gen in
  let* oid = Gen.int_bound 1000 in
  let* name = Gen.oneofl [ "dictionary:o"; "dictionary"; "counter:c"; "set:s" ] in
  let obj = Obj_id.make ~name oid in
  let* index = Gen.nat in
  let* tid = Gen.int_bound 16 in
  let* action = action_gen obj in
  let* point = Gen.string_size (Gen.int_bound 24) in
  let* conflicting = Gen.string_size (Gen.int_bound 24) in
  let* prior =
    Gen.oneof
      [
        Gen.return None;
        (let* ptid = Gen.int_bound 16 in
         let* pact = action_gen obj in
         Gen.return (Some (Tid.of_int ptid, pact)));
      ]
  in
  Gen.return
    {
      Report.index;
      obj;
      tid = Tid.of_int tid;
      action;
      point;
      conflicting;
      prior;
    }

let record_gen =
  let open Gen in
  let* r = report_gen in
  let* spec = Gen.oneofl [ "std"; "custom" ] in
  let* ts = Gen.map (fun n -> float_of_int n /. 7.) (Gen.int_bound 1_000_000) in
  Gen.return (Record.make ~ts ~spec r)

(* A small deterministic report for the non-property tests. *)
let mk_report ?(key = "k") ?(meth = "put") ?(name = "dictionary:o") ?prior_meth
    () =
  let obj = Obj_id.make ~name 7 in
  let prior =
    Option.map
      (fun m -> (Tid.of_int 1, Action.make ~obj ~meth:m ()))
      prior_meth
  in
  {
    Report.index = 42;
    obj;
    tid = Tid.of_int 2;
    action = Action.make ~obj ~meth ~args:[ Value.Str key ] ();
    point = meth ^ ":k[" ^ key ^ "]";
    conflicting = "put:k[" ^ key ^ "]";
    prior;
  }

let mk_record ?key ?meth ?name ?prior_meth ts =
  Record.make ~ts ~spec:"std" (mk_report ?key ?meth ?name ?prior_meth ())

(* --- fingerprint --------------------------------------------------- *)

let fingerprint_symmetric () =
  (* swapping the two (method, point) sides folds to one fingerprint *)
  let obj = Obj_id.make ~name:"dictionary:o" 7 in
  let a =
    {
      Report.index = 1;
      obj;
      tid = Tid.of_int 1;
      action = Action.make ~obj ~meth:"put" ();
      point = "P";
      conflicting = "Q";
      prior = Some (Tid.of_int 2, Action.make ~obj ~meth:"get" ());
    }
  in
  let b =
    {
      a with
      action = Action.make ~obj ~meth:"get" ();
      point = "Q";
      conflicting = "P";
      prior = Some (Tid.of_int 9, Action.make ~obj ~meth:"put" ());
    }
  in
  Alcotest.(check string)
    "mirror image shares the fingerprint" (Report.fingerprint_hex a)
    (Report.fingerprint_hex b);
  Alcotest.(check int) "distinct folds the pair" 1 (Report.distinct [ a; b ])

let fingerprint_invariances () =
  let r = mk_report ~prior_meth:"get" () in
  let same =
    {
      r with
      index = 9999;
      tid = Tid.of_int 13;
      action = { r.Report.action with Action.args = [ Value.Str "k" ] };
    }
  in
  Alcotest.(check string)
    "position/thread independent" (Report.fingerprint_hex r)
    (Report.fingerprint_hex same);
  let other_key = mk_report ~key:"other" ~prior_meth:"get" () in
  Alcotest.(check bool)
    "different access point, different fingerprint" true
    (Report.fingerprint r <> Report.fingerprint other_key);
  let other_obj = mk_report ~name:"dictionary:p" ~prior_meth:"get" () in
  Alcotest.(check bool)
    "different object, different fingerprint" true
    (Report.fingerprint r <> Report.fingerprint other_obj)

(* --- record codec --------------------------------------------------- *)

let record_roundtrip_tests =
  [
    qcheck "decode (encode r) = r" record_gen (fun r ->
        match Record.decode (Record.encode r) with
        | Ok r' -> Record.equal r r'
        | Error e -> QCheck2.Test.fail_report e);
    qcheck "strict prefixes are errors" record_gen (fun r ->
        let s = Record.encode r in
        String.length s = 0
        || Result.is_error (Record.decode (String.sub s 0 (String.length s - 1))));
    qcheck "trailing garbage is an error" record_gen (fun r ->
        Result.is_error (Record.decode (Record.encode r ^ "\x00")));
    qcheck ~count:300 "bit flips never raise" record_gen (fun r ->
        let s = Bytes.of_string (Record.encode r) in
        let pos = Hashtbl.hash (Bytes.to_string s) mod Bytes.length s in
        let bit = 1 lsl (Hashtbl.hash pos land 7) in
        Bytes.set s pos (Char.chr (Char.code (Bytes.get s pos) lxor bit));
        match Record.decode (Bytes.to_string s) with
        | Ok _ | Error _ -> true);
  ]

(* --- rollups -------------------------------------------------------- *)

let rollup_buckets () =
  let r = Rollup.create ~res:60 ~slots:3 in
  Rollup.add r 0.;
  Rollup.add r 59.;
  Rollup.add r 60.;
  Rollup.add r 120.;
  Alcotest.(check int) "all live" 4 (Rollup.total r);
  Alcotest.(check (list (pair (float 0.) int)))
    "bucket starts and counts"
    [ (0., 2); (60., 1); (120., 1) ]
    (Rollup.to_list r);
  (* bucket 3 wraps onto slot 0, evicting bucket 0 *)
  Rollup.add r 180.;
  Alcotest.(check int) "wrap evicts the oldest" 3 (Rollup.total r);
  Alcotest.(check (list (pair (float 0.) int)))
    "window slid" [ (60., 1); (120., 1); (180., 1) ] (Rollup.to_list r);
  (* a sample older than every live bucket is dropped *)
  Rollup.add r 0.;
  Alcotest.(check int) "stale sample dropped" 3 (Rollup.total r);
  Alcotest.(check int) "total_since cuts buckets" 2
    (Rollup.total_since r 125.)

let rollup_merge_and_codec () =
  let a = Rollup.create ~res:60 ~slots:4 in
  let b = Rollup.create ~res:60 ~slots:4 in
  Rollup.add ~count:2 a 30.;
  Rollup.add b 40.;
  Rollup.add b 100.;
  Rollup.merge_into a b;
  Alcotest.(check (list (pair (float 0.) int)))
    "merge sums buckets"
    [ (0., 3); (60., 1) ]
    (Rollup.to_list a);
  Alcotest.check_raises "resolution mismatch rejected"
    (Invalid_argument "Rollup.merge_into: resolution mismatch") (fun () ->
      Rollup.merge_into a (Rollup.create ~res:30 ~slots:4));
  let buf = Buffer.create 64 in
  Rollup.encode buf a;
  let a', pos = Rollup.decode (Buffer.contents buf) 0 in
  Alcotest.(check int) "decode consumes everything" (Buffer.length buf) pos;
  Alcotest.(check (list (pair (float 0.) int)))
    "codec round-trip" (Rollup.to_list a) (Rollup.to_list a')

(* --- segment store -------------------------------------------------- *)

let append_reopen () =
  let dir = fresh_dir () in
  let db = Result.get_ok (Db.open_db dir) in
  Db.append db (mk_record ~key:"a" 10.);
  Db.append db (mk_record ~key:"a" 20.);
  Db.append db (mk_record ~key:"b" 15.);
  let st = Db.stats db in
  Alcotest.(check int) "distinct live" 2 st.Db.distinct;
  Alcotest.(check int) "total live" 3 st.Db.total;
  Db.close db;
  (* read-only load and a fresh writable open agree *)
  let v = Result.get_ok (Db.load dir) in
  let es = v.Db.v_entries and st = v.Db.v_stats in
  Alcotest.(check int) "distinct after load" 2 st.Db.distinct;
  Alcotest.(check int) "total after load" 3 st.Db.total;
  let top = List.hd es in
  Alcotest.(check int) "dedup count" 2 (Entry.count top);
  Alcotest.(check (float 0.)) "first_seen" 10. top.Entry.first_seen;
  Alcotest.(check (float 0.)) "last_seen" 20. top.Entry.last_seen;
  Alcotest.(check (float 0.)) "sample is the earliest" 10.
    top.Entry.sample.Record.ts;
  let db = Result.get_ok (Db.open_db dir) in
  let st = Db.stats db in
  Alcotest.(check int) "reopen total" 3 st.Db.total;
  Alcotest.(check int) "nothing salvaged after clean close" 0 st.Db.salvaged;
  Db.close db

let locking () =
  let dir = fresh_dir () in
  let db = Result.get_ok (Db.open_db dir) in
  (match Db.open_db dir with
  | Ok _ -> Alcotest.fail "second writer must be rejected"
  | Error e ->
      Alcotest.(check bool) "error mentions the lock" true (contains e "locked"));
  Db.close db;
  let db = Result.get_ok (Db.open_db dir) in
  Db.close db

(* Crash the tail at every byte offset of the last record: open must
   succeed, keep every earlier record, and account the torn bytes. *)
let torn_tail_every_offset () =
  let dir = fresh_dir () in
  let db = Result.get_ok (Db.open_db dir) in
  Db.append db (mk_record ~key:"a" 1.);
  Db.append db (mk_record ~key:"b" 2.);
  Db.append db (mk_record ~key:"c" 3.);
  Db.close db;
  let seg =
    match
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".log")
    with
    | [ s ] -> Filename.concat dir s
    | l -> Alcotest.failf "expected one segment, got %d" (List.length l)
  in
  let marker = Filename.chop_suffix seg ".log" ^ ".ok" in
  let bytes = In_channel.with_open_bin seg In_channel.input_all in
  (* the last frame starts where a scan of the first two ends *)
  let frame r =
    (* varint(len) + 'R' tag + record + crc32 *)
    let payload_len = 1 + String.length (Record.encode r) in
    let rec varint_len n = if n < 0x80 then 1 else 1 + varint_len (n lsr 7) in
    varint_len payload_len + payload_len + 4
  in
  let last_start =
    frame (mk_record ~key:"a" 1.) + frame (mk_record ~key:"b" 2.)
  in
  Alcotest.(check int)
    "frame arithmetic matches the file"
    (last_start + frame (mk_record ~key:"c" 3.))
    (String.length bytes);
  for cut = last_start to String.length bytes - 1 do
    Out_channel.with_open_bin seg (fun oc ->
        Out_channel.output_string oc (String.sub bytes 0 cut));
    (* the crash also lost the final marker *)
    Out_channel.with_open_bin marker (fun oc ->
        Out_channel.output_string oc "0\n");
    (* read-only load observes without repairing *)
    let st = (Result.get_ok (Db.load dir)).Db.v_stats in
    Alcotest.(check int)
      (Printf.sprintf "load at cut %d keeps the clean prefix" cut)
      2 st.Db.total;
    Alcotest.(check int)
      (Printf.sprintf "load at cut %d salvages past the marker" cut)
      2 st.Db.salvaged;
    Alcotest.(check int)
      (Printf.sprintf "load at cut %d accounts torn bytes" cut)
      (cut - last_start) st.Db.truncated_bytes
  done;
  (* writable open repairs the worst cut (one byte short of complete) *)
  let db = Result.get_ok (Db.open_db dir) in
  let st = Db.stats db in
  Alcotest.(check int) "repair keeps the clean prefix" 2 st.Db.total;
  Alcotest.(check int) "repair truncated the tail"
    (String.length bytes - 1 - last_start)
    st.Db.truncated_bytes;
  Db.append db (mk_record ~key:"c" 3.);
  Db.close db;
  let st = (Result.get_ok (Db.load dir)).Db.v_stats in
  Alcotest.(check int) "store heals and grows" 3 st.Db.total;
  Alcotest.(check int) "no damage after repair" 0 st.Db.truncated_bytes

let compaction () =
  let dir = fresh_dir () in
  (* tiny segments force rotations; auto_compact=0 keeps it manual *)
  let db = Result.get_ok (Db.open_db ~segment_bytes:4096 ~auto_compact:0 dir) in
  for i = 1 to 200 do
    Db.append db (mk_record ~key:(string_of_int (i mod 5)) (float_of_int i))
  done;
  let before = Db.stats db in
  Alcotest.(check bool) "several segments" true (before.Db.segments > 1);
  (match Db.compact db with
  | Ok n -> Alcotest.(check int) "index holds every distinct race" 5 n
  | Error e -> Alcotest.failf "compact: %s" e);
  let after = Db.stats db in
  Alcotest.(check int) "segments folded away" 1 after.Db.segments;
  Alcotest.(check int) "counts survive compaction" 200 after.Db.total;
  Db.close db;
  let v = Result.get_ok (Db.load dir) in
  let es = v.Db.v_entries and st = v.Db.v_stats in
  Alcotest.(check int) "reload from index: distinct" 5 st.Db.distinct;
  Alcotest.(check int) "reload from index: total" 200 st.Db.total;
  let e = List.hd es in
  Alcotest.(check int) "rollups persisted" (Entry.count e) (Rollup.total e.Entry.minutes)

let compaction_abort_is_harmless () =
  let dir = fresh_dir () in
  let db = Result.get_ok (Db.open_db ~auto_compact:0 dir) in
  for i = 1 to 50 do
    Db.append db (mk_record ~key:(string_of_int (i mod 3)) (float_of_int i))
  done;
  Result.get_ok (Crd_fault.configure "seed=7,racedb_compact=once");
  Fun.protect ~finally:Crd_fault.reset (fun () ->
      (match Db.compact db with
      | Ok _ -> Alcotest.fail "compaction must abort under the fault"
      | Error e ->
          Alcotest.(check bool)
            "abort is reported" true (contains e "fault injected"));
      (* the handle is still fully usable *)
      Db.append db (mk_record ~key:"fresh" 99.);
      let st = Db.stats db in
      Alcotest.(check int) "nothing lost" 51 st.Db.total;
      (* the once-policy is spent: the retry succeeds *)
      match Db.compact db with
      | Ok n -> Alcotest.(check int) "retry compacts" 4 n
      | Error e -> Alcotest.failf "retry: %s" e);
  Db.close db;
  let st = (Result.get_ok (Db.load dir)).Db.v_stats in
  Alcotest.(check int) "counts intact after abort+retry" 51 st.Db.total

(* SIGKILL-shaped crash: copy the store mid-stream (no close, no final
   sync) and reopen the copy — every appended record must be there. *)
let crash_copy_recovers_everything () =
  let dir = fresh_dir () in
  let crash = fresh_dir () in
  let db = Result.get_ok (Db.open_db ~sync_every:1000 ~auto_compact:0 dir) in
  for i = 1 to 25 do
    Db.append db (mk_record ~key:(string_of_int i) (float_of_int i))
  done;
  (* simulate the kernel's view at SIGKILL: files as currently written *)
  Unix.mkdir crash 0o755;
  Array.iter
    (fun f ->
      if f <> "lock" then
        let s =
          In_channel.with_open_bin (Filename.concat dir f) In_channel.input_all
        in
        Out_channel.with_open_bin (Filename.concat crash f) (fun oc ->
            Out_channel.output_string oc s))
    (Sys.readdir dir);
  let st = (Result.get_ok (Db.load crash)).Db.v_stats in
  Alcotest.(check int) "every append survives the kill" 25 st.Db.total;
  Alcotest.(check int) "all past the marker" 25 st.Db.salvaged;
  Db.close db

let select_filters () =
  let dir = fresh_dir () in
  let db = Result.get_ok (Db.open_db dir) in
  Db.append db (mk_record ~key:"a" ~name:"dictionary:o" 10.);
  Db.append db (mk_record ~key:"a" ~name:"dictionary:o" 20.);
  Db.append db (mk_record ~key:"b" ~name:"counter:c" 30.);
  let es = Db.entries db in
  Alcotest.(check int) "snapshot size" 2 (List.length es);
  Alcotest.(check int) "most frequent first" 2 (Entry.count (List.hd es));
  Alcotest.(check int) "top=1" 1 (List.length (Db.select ~top:1 es));
  Alcotest.(check int) "since filters by last_seen" 1
    (List.length (Db.select ~since:25. es));
  Alcotest.(check int) "obj filter" 1
    (List.length (Db.select ~obj:"counter:c" es));
  Alcotest.(check int) "spec filter hits" 2
    (List.length (Db.select ~spec:"std" es));
  Alcotest.(check int) "spec filter misses" 0
    (List.length (Db.select ~spec:"custom" es));
  Db.close db

(* --- v1 (pre-replication) store migration --------------------------- *)

(* Byte-for-byte what the pre-replication code wrote: a v1 index
   (plain counts, no vectors, no nonce set) plus untagged record
   frames. Upgraded binaries must open these, not refuse them. *)

let crc_table =
  Array.init 256 (fun n ->
      let c = ref n in
      for _ = 0 to 7 do
        c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
      done;
      !c)

let crc32 s =
  let c = ref 0xffffffff in
  String.iter
    (fun ch -> c := crc_table.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xffffffff

let add_u32le b v =
  for i = 0 to 3 do
    Buffer.add_char b (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let add_i64le b v =
  for i = 0 to 7 do
    Buffer.add_char b
      (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff))
  done

let v1_frame r =
  let payload = Record.encode r in
  let b = Buffer.create 64 in
  Crd_wire.Codec.add_varint b (String.length payload);
  Buffer.add_string b payload;
  add_u32le b (crc32 payload);
  Buffer.contents b

let v1_entry b ~count (r : Record.t) =
  add_i64le b (Record.fingerprint r);
  Crd_wire.Codec.add_varint b count;
  add_i64le b (Int64.bits_of_float r.Record.ts);
  add_i64le b (Int64.bits_of_float r.Record.ts);
  let minutes = Rollup.create ~res:60 ~slots:60 in
  let hours = Rollup.create ~res:3600 ~slots:48 in
  let days = Rollup.create ~res:86400 ~slots:30 in
  Rollup.add ~count minutes r.Record.ts;
  Rollup.add ~count hours r.Record.ts;
  Rollup.add ~count days r.Record.ts;
  Rollup.encode b minutes;
  Rollup.encode b hours;
  Rollup.encode b days;
  let sample = Record.encode r in
  Crd_wire.Codec.add_varint b (String.length sample);
  Buffer.add_string b sample

let v1_index ~folded_up_to entries =
  let body = Buffer.create 256 in
  Crd_wire.Codec.add_varint body folded_up_to;
  Crd_wire.Codec.add_varint body (List.length entries);
  List.iter (fun (count, r) -> v1_entry body ~count r) entries;
  let body = Buffer.contents body in
  let b = Buffer.create (String.length body + 16) in
  Buffer.add_string b "CRDX";
  Buffer.add_char b '\x01';
  Buffer.add_string b body;
  add_u32le b (crc32 body);
  Buffer.contents b

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let v1_store_migrates () =
  let dir = fresh_dir () in
  Unix.mkdir dir 0o755;
  let r_idx = mk_record ~key:"folded" 100. in
  let r_seg = mk_record ~key:"live" 200. in
  (* seg-1 was compacted into the index (count 3); seg-2 is still live *)
  write_file (Filename.concat dir "index.crdx")
    (v1_index ~folded_up_to:1 [ (3, r_idx) ]);
  let seg = v1_frame r_seg in
  write_file (Filename.concat dir "seg-00000002.log") seg;
  write_file (Filename.concat dir "seg-00000002.ok")
    (Printf.sprintf "%d\n" (String.length seg));
  (* read-only load migrates without touching anything *)
  let v = Result.get_ok (Db.load dir) in
  Alcotest.(check int) "load: distinct" 2 v.Db.v_stats.Db.distinct;
  Alcotest.(check int) "load: total" 4 v.Db.v_stats.Db.total;
  (* writable open attributes history to the freshly minted node id,
     identically on every open until compaction rewrites the index *)
  let count_of db fp =
    match
      List.find_opt (fun (e : Entry.t) -> e.Entry.fingerprint = fp) (Db.entries db)
    with
    | Some e -> Entry.count e
    | None -> 0
  in
  let db = Result.get_ok (Db.open_db dir) in
  let node = Db.node_id db in
  Alcotest.(check bool) "node id minted" true (node <> "");
  Alcotest.(check int) "folded count survives" 3
    (count_of db (Record.fingerprint r_idx));
  Alcotest.(check int) "live segment survives" 1
    (count_of db (Record.fingerprint r_seg));
  Alcotest.(check int) "version covers the migration" 2
    (Crd_racedb.Vv.get (Db.version db) node);
  Db.close db;
  let db = Result.get_ok (Db.open_db dir) in
  Alcotest.(check int) "re-migration is deterministic" 2
    (Crd_racedb.Vv.get (Db.version db) node);
  Db.append db (mk_record ~key:"folded" 300.);
  Alcotest.(check bool) "compaction rewrites as v2" true
    (Result.is_ok (Db.compact db));
  Db.close db;
  let v = Result.get_ok (Db.load dir) in
  Alcotest.(check int) "post-compaction total" 5 v.Db.v_stats.Db.total;
  Alcotest.(check string) "view sees the node" node v.Db.v_node

let suite =
  ( "racedb",
    [
      Alcotest.test_case "fingerprint: symmetry" `Quick fingerprint_symmetric;
      Alcotest.test_case "fingerprint: invariances" `Quick
        fingerprint_invariances;
    ]
    @ record_roundtrip_tests
    @ [
        Alcotest.test_case "rollup: bucket arithmetic" `Quick rollup_buckets;
        Alcotest.test_case "rollup: merge and codec" `Quick
          rollup_merge_and_codec;
        Alcotest.test_case "db: append, close, reopen" `Quick append_reopen;
        Alcotest.test_case "db: writer lock" `Quick locking;
        Alcotest.test_case "db: torn tail at every offset" `Quick
          torn_tail_every_offset;
        Alcotest.test_case "db: compaction" `Quick compaction;
        Alcotest.test_case "db: aborted compaction is harmless" `Quick
          compaction_abort_is_harmless;
        Alcotest.test_case "db: SIGKILL-shaped crash image" `Quick
          crash_copy_recovers_everything;
        Alcotest.test_case "db: select filters" `Quick select_filters;
        Alcotest.test_case "db: v1 store migrates on open" `Quick
          v1_store_migrates;
      ] )
