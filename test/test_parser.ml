open Crd

let parse_ok src =
  match Spec_parser.parse_one src with
  | Ok s -> s
  | Error e -> Alcotest.failf "unexpected parse error: %s" e

let parse_err src =
  match Spec_parser.parse_one src with
  | Ok _ -> Alcotest.failf "expected a parse error on:\n%s" src
  | Error e -> e

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.equal (String.sub haystack i nn) needle || go (i + 1))
  in
  go 0

let builtins_parse () =
  List.iter
    (fun src ->
      match Spec_parser.parse_one src with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "builtin failed to parse: %s" e)
    [
      Stdspecs.dictionary_src;
      Stdspecs.set_src;
      Stdspecs.counter_src;
      Stdspecs.register_src;
      Stdspecs.fifo_src;
    ]

let dictionary_structure () =
  let spec = parse_ok Stdspecs.dictionary_src in
  Alcotest.(check string) "name" "dictionary" (Spec.name spec);
  Alcotest.(check int) "methods" 3 (List.length (Spec.methods spec));
  Alcotest.(check int) "pairs" 6 (List.length (Spec.pairs spec));
  let put = Option.get (Spec.signature spec "put") in
  Alcotest.(check (list string)) "put slots" [ "k"; "v"; "p" ]
    (Signature.slot_names put)

let multiple_objects () =
  match Spec_parser.parse (Stdspecs.dictionary_src ^ "\n" ^ Stdspecs.set_src) with
  | Ok [ d; s ] ->
      Alcotest.(check string) "first" "dictionary" (Spec.name d);
      Alcotest.(check string) "second" "set" (Spec.name s)
  | Ok l -> Alcotest.failf "expected 2 objects, got %d" (List.length l)
  | Error e -> Alcotest.failf "parse error: %s" e

let comments_and_whitespace () =
  let src =
    "// leading comment\n\
     object o { # hash comment\n\
     \  method m(x);\n\
     \  commutes m(x1) <> m(x2) when x1 != x2; // trailing\n\
     }"
  in
  ignore (parse_ok src)

let literal_kinds () =
  let src =
    {|object o {
        method m(x) / r;
        commutes m(x1) / r1 <> m(x2) / r2
          when x1 != x2 || (r1 == nil && r2 == "str" || r1 == @7 && r2 == -0 || r1 == true && r2 == false);
      }|}
  in
  ignore (parse_ok src)

let precedence () =
  (* && binds tighter than ||; ! tighter than &&. *)
  let spec =
    parse_ok
      {|object o {
          method m(x) / r;
          commutes m(x1) / r1 <> m(x2) / r2
            when x1 != x2 || r1 == 1 && r2 == 1;
        }|}
  in
  match Spec.pairs spec with
  | [ (_, _, Formula.Or (Formula.Atom _, Formula.And (_, _))) ] -> ()
  | [ (_, _, f) ] -> Alcotest.failf "wrong shape: %a" Formula.pp f
  | _ -> Alcotest.fail "wrong number of pairs"

let error_cases () =
  let cases =
    [
      (* unbound variable *)
      ( {|object o { method m(x); commutes m(x1) <> m(x2) when z != x2; }|},
        "unbound" );
      (* header mismatch *)
      ( {|object o { method m(x); commutes m(x1, y1) <> m(x2) when true; }|},
        "signature" );
      (* undeclared method *)
      ( {|object o { method m(x); commutes q(x1) <> m(x2) when true; }|},
        "not declared" );
      (* variable bound by both headers *)
      ( {|object o { method m(x); commutes m(x1) <> m(x1) when true; }|},
        "both headers" );
      (* missing when *)
      ({|object o { method m(x); commutes m(x1) <> m(x2); }|}, "when");
      (* junk *)
      ({|object o { banana; }|}, "expected");
      (* unterminated string *)
      ({|object o { method m(x); commutes m(x1) <> m(x2) when x1 == "oops; }|},
        "string");
      (* duplicate default *)
      ( {|object o { method m(x); default true; default false; }|},
        "duplicate" );
    ]
  in
  List.iter
    (fun (src, expect) ->
      let e = parse_err src in
      if not (contains e expect) then
        Alcotest.failf "error %S does not mention %S" e expect)
    cases

let error_positions () =
  let e =
    parse_err "object o {\n  method m(x);\n  commutes m(x1) <> m(x2) when ?;\n}"
  in
  Alcotest.(check bool) "mentions line 3" true (contains e "3:")

let default_clause () =
  let spec =
    parse_ok
      {|object o {
          method a();
          method b();
          default true;
        }|}
  in
  let obj = Obj_id.make ~name:"o" 0 in
  Alcotest.(check bool) "default true applies" true
    (Spec.commute spec
       (Action.make ~obj ~meth:"a" ())
       (Action.make ~obj ~meth:"b" ()))

let tuple_returns () =
  let spec =
    parse_ok
      {|object o {
          method m(x) / (r, s);
          commutes m(x1) / (r1, s1) <> m(x2) / (r2, s2)
            when x1 != x2 || (r1 == s1 && r2 == s2);
        }|}
  in
  let m = Option.get (Spec.signature spec "m") in
  Alcotest.(check int) "arity 3" 3 (Signature.arity m)

(* --- the shipped .crd files ---------------------------------------- *)

let spec_file name = Filename.concat "../specs" name

let parse_file_ok name =
  match Spec_parser.parse_file (spec_file name) with
  | Ok [ s ] -> s
  | Ok l -> Alcotest.failf "%s: expected 1 object, got %d" name (List.length l)
  | Error e -> Alcotest.failf "%s: %s" name e

let shipped_specs_parse () =
  List.iter
    (fun name ->
      let spec = parse_file_ok name in
      match Repr.of_spec spec with
      | Ok _ -> ()
      | Error e ->
          Alcotest.failf "%s: translation failed: %s" name e)
    [ "dictionary.crd"; "set.crd"; "queue.crd"; "counter.crd" ]

let queue_spec_semantics () =
  let spec = parse_file_ok "queue.crd" in
  Alcotest.(check string) "name" "queue" (Spec.name spec);
  Alcotest.(check int) "methods" 3 (List.length (Spec.methods spec));
  Alcotest.(check int) "pairs" 6 (List.length (Spec.pairs spec));
  let obj = Obj_id.make ~name:"queue:q" 0 in
  let act meth args rets = Action.make ~obj ~meth ~args ~rets () in
  let i n = Value.Int n in
  let enq x = act "enq" [ i x ] [] in
  let deq x = act "deq" [] [ x ] in
  let len n = act "len" [] [ i n ] in
  List.iter
    (fun (a, b, expected) ->
      Alcotest.(check bool)
        (Fmt.str "%a <> %a" Action.pp a Action.pp b)
        expected (Spec.commute spec a b);
      Alcotest.(check bool)
        (Fmt.str "%a <> %a (sym)" Action.pp b Action.pp a)
        expected (Spec.commute spec b a))
    [
      (* enqueue order is observable *)
      (enq 1, enq 2, false);
      (* deq hit a non-empty queue and took a different element *)
      (enq 1, deq (i 2), true);
      (* deq drained the queue down to the enqueued element itself *)
      (enq 1, deq (i 1), false);
      (* deq saw empty: reordering the enq changes its result *)
      (enq 1, deq Value.Nil, false);
      (enq 1, len 0, false);
      (* both deqs observed empty *)
      (deq Value.Nil, deq Value.Nil, true);
      (deq (i 1), deq Value.Nil, false);
      (deq (i 1), deq (i 2), false);
      (deq Value.Nil, len 0, true);
      (deq (i 1), len 1, false);
      (len 0, len 3, true);
    ]

let counter_spec_semantics () =
  let spec = parse_file_ok "counter.crd" in
  Alcotest.(check string) "name" "counter" (Spec.name spec);
  Alcotest.(check int) "methods" 3 (List.length (Spec.methods spec));
  Alcotest.(check int) "pairs" 6 (List.length (Spec.pairs spec));
  let obj = Obj_id.make ~name:"counter:c" 0 in
  let act meth args rets = Action.make ~obj ~meth ~args ~rets () in
  let i n = Value.Int n in
  let add n = act "add" [ i n ] [] in
  let sub n = act "sub" [ i n ] [] in
  let read v = act "read" [] [ i v ] in
  List.iter
    (fun (a, b, expected) ->
      Alcotest.(check bool)
        (Fmt.str "%a <> %a" Action.pp a Action.pp b)
        expected (Spec.commute spec a b);
      Alcotest.(check bool)
        (Fmt.str "%a <> %a (sym)" Action.pp b Action.pp a)
        expected (Spec.commute spec b a))
    [
      (add 1, add 2, true);
      (add 1, sub 2, true);
      (sub 1, sub 2, true);
      (add 1, read 5, false);
      (sub 1, read 5, false);
      (read 5, read 7, true);
    ]

let suite =
  ( "spec-parser",
    [
      Alcotest.test_case "builtins parse" `Quick builtins_parse;
      Alcotest.test_case "dictionary structure" `Quick dictionary_structure;
      Alcotest.test_case "multiple objects" `Quick multiple_objects;
      Alcotest.test_case "comments" `Quick comments_and_whitespace;
      Alcotest.test_case "literal kinds" `Quick literal_kinds;
      Alcotest.test_case "precedence" `Quick precedence;
      Alcotest.test_case "error cases" `Quick error_cases;
      Alcotest.test_case "error positions" `Quick error_positions;
      Alcotest.test_case "default clause" `Quick default_clause;
      Alcotest.test_case "tuple returns" `Quick tuple_returns;
      Alcotest.test_case "shipped spec files parse" `Quick shipped_specs_parse;
      Alcotest.test_case "queue.crd semantics" `Quick queue_spec_semantics;
      Alcotest.test_case "counter.crd semantics" `Quick counter_spec_semantics;
    ] )
