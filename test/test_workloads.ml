open Crd
module W = Crd_workloads

(* ------------------------------------------------------------------ *)
(* SQL-mini parser                                                     *)
(* ------------------------------------------------------------------ *)

let parse_ok src =
  match W.Sqlmini.parse src with
  | Ok s -> s
  | Error e -> Alcotest.failf "parse %S: %s" src e

let sql_statements () =
  List.iter
    (fun src -> ignore (parse_ok src))
    [
      "CREATE TABLE t (a, b, c)";
      "INSERT INTO t VALUES (1, \"x\", -2)";
      "insert into t values (NULL)";
      "SELECT a, b FROM t";
      "SELECT * FROM t WHERE a = 1";
      "SELECT a FROM t WHERE a >= 1 AND b <> 'y' AND c < 5";
      "SELECT SUM(a) FROM t";
      "SELECT AVG(a) FROM t WHERE b = 1";
      "SELECT a FROM t ORDER BY b DESC LIMIT 10";
      "SELECT a, b FROM t JOIN u ON t.a = u.x WHERE b > 2";
      "SELECT COUNT(*) FROM t";
      "SELECT COUNT(*) FROM t WHERE a = 2";
      "UPDATE t SET b = 'z' WHERE a = 1";
      "DELETE FROM t WHERE a = 2";
    ]

let sql_roundtrip () =
  List.iter
    (fun src ->
      let stmt = parse_ok src in
      let printed = Fmt.str "%a" W.Sqlmini.pp_stmt stmt in
      let stmt' = parse_ok printed in
      Alcotest.(check string) (Printf.sprintf "roundtrip %s" src) printed
        (Fmt.str "%a" W.Sqlmini.pp_stmt stmt'))
    [
      "CREATE TABLE t (a, b)";
      "INSERT INTO t VALUES (1, 'x')";
      "SELECT a FROM t WHERE a <= 3 AND b <> 'y'";
      "SELECT SUM(a) FROM t WHERE b > 0";
      "SELECT a FROM t ORDER BY b DESC LIMIT 4";
      "SELECT a, b FROM t JOIN u ON t.a = u.x WHERE c > 2";
      "SELECT COUNT(*) FROM t WHERE a > 0";
      "UPDATE t SET a = 9 WHERE b = 'x'";
      "DELETE FROM t WHERE a >= 1";
    ]

let sql_errors () =
  List.iter
    (fun src ->
      match W.Sqlmini.parse src with
      | Ok _ -> Alcotest.failf "expected error on %S" src
      | Error _ -> ())
    [
      "";
      "DROP TABLE t";
      "SELECT FROM t";
      "INSERT INTO t VALUES 1, 2";
      "SELECT a FROM";
      "UPDATE t SET a 1";
      "SELECT a FROM t WHERE a ! 1";
      "INSERT INTO t VALUES (1) trailing";
    ]

(* ------------------------------------------------------------------ *)
(* MVStore                                                             *)
(* ------------------------------------------------------------------ *)

let exec store src =
  match W.Mvstore.exec_sql store src with
  | Ok r -> r
  | Error e -> Alcotest.failf "exec %S: %s" src e

let rows = function
  | W.Mvstore.Rows r -> r
  | _ -> Alcotest.fail "expected rows"

let count = function
  | W.Mvstore.Count n -> n
  | _ -> Alcotest.fail "expected count"

let affected = function
  | W.Mvstore.Affected n -> n
  | _ -> Alcotest.fail "expected affected"

let mvstore_crud () =
  Sched.run (fun () ->
      let s = W.Mvstore.create () in
      ignore (exec s "CREATE TABLE t (id, name, tier)");
      for i = 0 to 9 do
        Alcotest.(check int) "insert" 1
          (affected (exec s (Printf.sprintf "INSERT INTO t VALUES (%d, 'n%d', %d)" i i (i mod 2))))
      done;
      Alcotest.(check int) "count all" 10 (count (exec s "SELECT COUNT(*) FROM t"));
      Alcotest.(check int) "count filtered" 5
        (count (exec s "SELECT COUNT(*) FROM t WHERE tier = 1"));
      (* Point select through the primary index. *)
      (match rows (exec s "SELECT name FROM t WHERE id = 3") with
      | [ [| Value.Str "n3" |] ] -> ()
      | r -> Alcotest.failf "wrong point select: %d rows" (List.length r));
      (* Update then re-read. *)
      Alcotest.(check int) "update one" 1
        (affected (exec s "UPDATE t SET name = 'renamed' WHERE id = 3"));
      (match rows (exec s "SELECT name FROM t WHERE id = 3") with
      | [ [| Value.Str "renamed" |] ] -> ()
      | _ -> Alcotest.fail "update not visible");
      (* Range select via scan. *)
      Alcotest.(check int) "scan" 5
        (List.length (rows (exec s "SELECT id FROM t WHERE tier = 0")));
      (* Delete. *)
      Alcotest.(check int) "delete" 5
        (affected (exec s "DELETE FROM t WHERE tier = 0"));
      Alcotest.(check int) "count after delete" 5
        (count (exec s "SELECT COUNT(*) FROM t"));
      (* Deleted rows are gone from point lookups too. *)
      Alcotest.(check int) "deleted point select" 0
        (List.length (rows (exec s "SELECT name FROM t WHERE id = 0"))))

let mvstore_aggregates_and_joins () =
  Sched.run (fun () ->
      let s = W.Mvstore.create () in
      ignore (exec s "CREATE TABLE c (id, name)");
      ignore (exec s "CREATE TABLE o (oid, cust, amount)");
      List.iter
        (fun src -> ignore (exec s src))
        [
          "INSERT INTO c VALUES (1, 'ann')";
          "INSERT INTO c VALUES (2, 'bob')";
          "INSERT INTO o VALUES (10, 1, 30)";
          "INSERT INTO o VALUES (11, 1, 70)";
          "INSERT INTO o VALUES (12, 2, 50)";
        ];
      (* Aggregates. *)
      Alcotest.(check int) "sum" 150 (count (exec s "SELECT SUM(amount) FROM o"));
      Alcotest.(check int) "sum filtered" 100
        (count (exec s "SELECT SUM(amount) FROM o WHERE cust = 1"));
      Alcotest.(check int) "min" 30 (count (exec s "SELECT MIN(amount) FROM o"));
      Alcotest.(check int) "max" 70 (count (exec s "SELECT MAX(amount) FROM o"));
      Alcotest.(check int) "avg" 50 (count (exec s "SELECT AVG(amount) FROM o"));
      Alcotest.(check int) "empty sum" 0
        (count (exec s "SELECT SUM(amount) FROM o WHERE cust = 9"));
      (* ORDER BY / LIMIT. *)
      (match rows (exec s "SELECT amount FROM o ORDER BY amount DESC LIMIT 2") with
      | [ [| Value.Int 70 |] ; [| Value.Int 50 |] ] -> ()
      | r -> Alcotest.failf "order/limit wrong (%d rows)" (List.length r));
      (match rows (exec s "SELECT oid FROM o ORDER BY amount") with
      | [ [| Value.Int 10 |]; [| Value.Int 12 |]; [| Value.Int 11 |] ] -> ()
      | _ -> Alcotest.fail "ascending order wrong");
      (* JOIN (index-assisted: join key is c's primary column). *)
      (match
         rows
           (exec s
              "SELECT name, amount FROM o JOIN c ON o.cust = c.id WHERE amount > 40")
       with
      | rows ->
          let sorted = List.sort compare (List.map Array.to_list rows) in
          Alcotest.(check int) "join rows" 2 (List.length sorted);
          (match sorted with
          | [ [ Value.Str "ann"; Value.Int 70 ]; [ Value.Str "bob"; Value.Int 50 ] ]
            -> ()
          | _ -> Alcotest.fail "join contents wrong"));
      (* Qualified projection. *)
      match
        rows
          (exec s
             "SELECT c.name, o.amount FROM c JOIN o ON c.id = o.cust WHERE o.cust = 2")
      with
      | [ [| Value.Str "bob"; Value.Int 50 |] ] -> ()
      | _ -> Alcotest.fail "qualified join wrong")

let mvstore_errors () =
  Sched.run (fun () ->
      let s = W.Mvstore.create () in
      (match W.Mvstore.exec_sql s "SELECT * FROM missing" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "expected missing-table error");
      ignore (exec s "CREATE TABLE t (a)");
      (match W.Mvstore.exec_sql s "CREATE TABLE t (a)" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "expected duplicate-table error");
      (match W.Mvstore.exec_sql s "INSERT INTO t VALUES (1, 2)" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "expected arity error");
      match W.Mvstore.exec_sql s "UPDATE t SET b = 1 WHERE a = 1" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "expected column error")

let mvstore_commit_bookkeeping () =
  Sched.run (fun () ->
      let s = W.Mvstore.create () in
      W.Mvstore.commit s;
      W.Mvstore.commit s;
      W.Mvstore.maintenance_step s;
      Alcotest.(check bool) "chunks populated" true
        (Monitored.Dict.raw_size (W.Mvstore.chunks s) >= 2);
      Alcotest.(check bool) "freed space accounted" true
        (Monitored.Dict.raw_size (W.Mvstore.freed_page_space s) >= 1))

(* ------------------------------------------------------------------ *)
(* Circuits: determinism and Table 2 qualitative shape                 *)
(* ------------------------------------------------------------------ *)

let rd2_counts bench = Option.get (W.Table2.rd2_race_counts ~seed:1L bench)
let counts = Alcotest.(triple int int int)

let circuits_deterministic () =
  List.iter
    (fun bench ->
      let a = rd2_counts bench and b = rd2_counts bench in
      Alcotest.check counts (bench ^ " deterministic") a b)
    [ "ComplexConcurrency"; "InsertCentricConcurrency"; "DynamicEndpointSnitch" ]

(* The qualitative Table 2 shape, independent of timing:
   - the concurrency circuits race on a handful of objects,
   - the query-centric and sequential circuits have no commutativity
     races at all.
   Both distinct counts are pinned at seed 1: the fingerprint identity
   (per race pattern, key-sensitive) and the coarser object identity. *)
let table2_shape () =
  let check_zero bench =
    Alcotest.check counts (bench ^ " race-free") (0, 0, 0) (rd2_counts bench)
  in
  check_zero "QueryCentricConcurrency";
  check_zero "Complex";
  check_zero "NestedLists";
  let total, fp, objs = rd2_counts "ComplexConcurrency" in
  Alcotest.(check bool) "ComplexConcurrency races" true (total > 0);
  Alcotest.(check int) "ComplexConcurrency distinct fingerprints" 36 fp;
  Alcotest.(check bool) "ComplexConcurrency few objects" true
    (objs >= 2 && objs <= 4);
  let total, fp, objs = rd2_counts "InsertCentricConcurrency" in
  Alcotest.(check bool) "InsertCentric races" true (total > 0);
  Alcotest.(check int) "InsertCentric distinct fingerprints" 37 fp;
  Alcotest.(check int) "InsertCentric objects = {chunks, freedPageSpace}" 2 objs;
  let total, fp, objs = rd2_counts "DynamicEndpointSnitch" in
  Alcotest.(check bool) "Snitch races" true (total > 0);
  Alcotest.(check int) "Snitch distinct fingerprints" 17 fp;
  Alcotest.(check int) "Snitch objects = {samples, scores}" 2 objs

(* The two harmful H2 races are found on the right objects. *)
let h2_objects () =
  let an =
    Analyzer.with_stdspecs
      ~config:{ Analyzer.rd2 = `Constant; direct = false; fasttrack = false; djit = false; atomicity = false }
      ()
  in
  ignore
    (W.Polepos.run W.Polepos.Insert_centric ~seed:1L ~scale:1
       ~sink:(Analyzer.sink an) ());
  let names =
    List.sort_uniq String.compare
      (List.map (fun (r : Report.t) -> Obj_id.name r.obj) (Analyzer.rd2_races an))
  in
  Alcotest.(check (list string)) "racing objects"
    [ "dictionary:chunks"; "dictionary:freedPageSpace" ]
    names

(* Seed-independence of the zero results: query-centric stays race-free
   under many schedules (Theorem 5.2 in spirit: reads commute). *)
let query_centric_race_free_many_seeds () =
  for seed = 1 to 5 do
    let an =
      Analyzer.with_stdspecs
        ~config:{ Analyzer.rd2 = `Constant; direct = false; fasttrack = false; djit = false; atomicity = false }
        ()
    in
    ignore
      (W.Polepos.run W.Polepos.Query_centric ~seed:(Int64.of_int seed) ~scale:1
         ~sink:(Analyzer.sink an) ());
    Alcotest.(check int)
      (Printf.sprintf "seed %d" seed)
      0
      (List.length (Analyzer.rd2_races an))
  done

let snitch_runs () =
  let processed = W.Snitch.run ~seed:2L ~sink:(fun _ -> ()) () in
  Alcotest.(check bool) "samples processed" true (processed > 0)

let suite =
  ( "workloads",
    [
      Alcotest.test_case "sqlmini statements" `Quick sql_statements;
      Alcotest.test_case "sqlmini roundtrip" `Quick sql_roundtrip;
      Alcotest.test_case "sqlmini errors" `Quick sql_errors;
      Alcotest.test_case "mvstore CRUD" `Quick mvstore_crud;
      Alcotest.test_case "mvstore aggregates and joins" `Quick
        mvstore_aggregates_and_joins;
      Alcotest.test_case "mvstore errors" `Quick mvstore_errors;
      Alcotest.test_case "mvstore commit bookkeeping" `Quick
        mvstore_commit_bookkeeping;
      Alcotest.test_case "circuits deterministic" `Slow circuits_deterministic;
      Alcotest.test_case "Table 2 qualitative shape" `Slow table2_shape;
      Alcotest.test_case "H2 racing objects" `Slow h2_objects;
      Alcotest.test_case "query-centric race-free across seeds" `Slow
        query_centric_race_free_many_seeds;
      Alcotest.test_case "snitch runs" `Quick snitch_runs;
    ] )
