(* Crd_sync and the racedb replication model: merge laws (commutative /
   associative / idempotent) on version vectors, rollup rings and whole
   entries; N-replica convergence under random ingest/gossip schedules;
   the CRDY wire exchange over a socketpair; and idempotence of the
   exchange under injected sync_* faults. *)

open Crd
module Db = Crd_racedb.Db
module Record = Crd_racedb.Record
module Entry = Crd_racedb.Entry
module Rollup = Crd_racedb.Rollup
module Vv = Crd_racedb.Vv
module Provenance = Crd_racedb.Provenance
module Gen = QCheck2.Gen

(* Faulted exchanges race writes against peer closes; that must surface
   as EPIPE (handled), not kill the test binary. *)
let () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ()

let qcheck ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let tmp_counter = ref 0

let fresh_dir () =
  incr tmp_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "crd-sync-%d-%d" (Unix.getpid ()) !tmp_counter)
  in
  let rec rm p =
    if Sys.is_directory p then begin
      Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
      Unix.rmdir p
    end
    else Sys.remove p
  in
  if Sys.file_exists d then rm d;
  d

(* --- generators ----------------------------------------------------- *)

let mk_report ?(key = "k") ?(meth = "put") ?(name = "dictionary:o") () =
  let obj = Obj_id.make ~name 7 in
  {
    Report.index = 42;
    obj;
    tid = Tid.of_int 2;
    action = Action.make ~obj ~meth ~args:[ Value.Str key ] ();
    point = meth ^ ":k[" ^ key ^ "]";
    conflicting = "put:k[" ^ key ^ "]";
    prior = None;
  }

let vv_gen =
  let open Gen in
  let node = Gen.oneofl [ "n-a"; "n-b"; "n-c"; "n-d" ] in
  let* l =
    Gen.list_size (Gen.int_bound 4)
      (Gen.pair node (Gen.map (fun n -> n + 1) (Gen.int_bound 50)))
  in
  Gen.return (Vv.of_list l)

(* a minutes-shaped ring with a handful of live buckets near a fixed
   base time, so joins have real overlaps to resolve *)
let rollup_gen =
  let open Gen in
  let base = 1_700_000_000. in
  let* samples =
    Gen.list_size (Gen.int_bound 8)
      (Gen.pair (Gen.int_bound 50) (Gen.map (fun n -> n + 1) (Gen.int_bound 9)))
  in
  Gen.return
    (let r = Rollup.create ~res:60 ~slots:60 in
     List.iter
       (fun (m, c) -> Rollup.add ~count:c r (base +. (60. *. float_of_int m)))
       samples;
     r)

(* entries share one fingerprint (merge requires it) but vary in every
   replicated register *)
let entry_gen =
  let open Gen in
  let* counts = vv_gen in
  let counts = if counts = Vv.empty then Vv.set Vv.empty "n-a" 1 else counts in
  let* ver = vv_gen in
  let* t0 = Gen.map (fun n -> 1000. +. float_of_int n) (Gen.int_bound 5000) in
  let* dt = Gen.map float_of_int (Gen.int_bound 5000) in
  let* key = Gen.oneofl [ "s1"; "s2"; "s3" ] in
  let* minutes = rollup_gen in
  let* provenance = Gen.oneofl [ Provenance.Predicted; Provenance.Witnessed ] in
  let sample = Record.make ~ts:t0 ~provenance ~spec:"std" (mk_report ~key ()) in
  Gen.return
    {
      Entry.fingerprint = 7L;
      counts;
      ver;
      first_seen = t0;
      last_seen = t0 +. dt;
      sample;
      minutes;
      hours = Rollup.create ~res:3600 ~slots:48;
      days = Rollup.create ~res:86400 ~slots:30;
      provenance;
    }

(* --- merge laws ----------------------------------------------------- *)

let vv_laws =
  [
    qcheck "vv join commutative" (Gen.pair vv_gen vv_gen) (fun (a, b) ->
        Vv.equal (Vv.join a b) (Vv.join b a));
    qcheck "vv join associative"
      (Gen.triple vv_gen vv_gen vv_gen)
      (fun (a, b, c) ->
        Vv.equal (Vv.join a (Vv.join b c)) (Vv.join (Vv.join a b) c));
    qcheck "vv join idempotent" vv_gen (fun a -> Vv.equal (Vv.join a a) a);
    qcheck "vv join dominates both" (Gen.pair vv_gen vv_gen) (fun (a, b) ->
        let j = Vv.join a b in
        Vv.dominates j a && Vv.dominates j b);
  ]

let rollup_join a b =
  let d = Rollup.copy a in
  Rollup.join d b;
  d

let rollup_laws =
  [
    qcheck "rollup join commutative" (Gen.pair rollup_gen rollup_gen)
      (fun (a, b) -> Rollup.equal (rollup_join a b) (rollup_join b a));
    qcheck "rollup join associative"
      (Gen.triple rollup_gen rollup_gen rollup_gen)
      (fun (a, b, c) ->
        Rollup.equal
          (rollup_join a (rollup_join b c))
          (rollup_join (rollup_join a b) c));
    qcheck "rollup join idempotent" rollup_gen (fun a ->
        Rollup.equal (rollup_join a a) a);
  ]

let entry_laws =
  [
    qcheck "entry merge commutative" (Gen.pair entry_gen entry_gen)
      (fun (a, b) -> Entry.equal (Entry.merge a b) (Entry.merge b a));
    qcheck "entry merge associative"
      (Gen.triple entry_gen entry_gen entry_gen)
      (fun (a, b, c) ->
        Entry.equal
          (Entry.merge a (Entry.merge b c))
          (Entry.merge (Entry.merge a b) c));
    qcheck "entry merge idempotent" entry_gen (fun a ->
        Entry.equal (Entry.merge a a) a);
    qcheck "entry codec round-trip" entry_gen (fun e ->
        let b = Buffer.create 256 in
        Entry.encode b e;
        let e', n = Entry.decode (Buffer.contents b) 0 in
        n = Buffer.length b && Entry.equal e e');
  ]

(* --- replica helpers ------------------------------------------------ *)

let canon db =
  List.sort
    (fun (a : Entry.t) (b : Entry.t) ->
      compare a.Entry.fingerprint b.Entry.fingerprint)
    (Db.entries db)

let same_state a b =
  let ea = canon a and eb = canon b in
  List.length ea = List.length eb && List.for_all2 Entry.equal ea eb

(* one push-pull gossip step, straight through the storage API *)
let gossip a b =
  ignore (Db.merge b (Db.delta a ~since:(Db.version b)) : int);
  ignore (Db.merge a (Db.delta b ~since:(Db.version a)) : int)

let report_pool =
  Array.init 12 (fun i -> mk_report ~key:(Printf.sprintf "k%d" i) ())

(* --- convergence under random schedules ----------------------------- *)

let convergence n () =
  let rng = Random.State.make [| 4242; n |] in
  let dbs =
    Array.init n (fun _ -> Result.get_ok (Db.open_db (fresh_dir ())))
  in
  let expected = Hashtbl.create 32 in
  let nonce_ctr = ref 0 in
  for _step = 1 to 80 do
    if Random.State.int rng 3 < 2 then begin
      let node = Random.State.int rng n in
      let k = 1 + Random.State.int rng 4 in
      let ts = 1_700_000_000. +. float_of_int (Random.State.int rng 100_000) in
      let records =
        List.init k (fun _ ->
            Record.make ~ts ~spec:"std"
              report_pool.(Random.State.int rng (Array.length report_pool)))
      in
      incr nonce_ctr;
      ignore
        (Db.publish dbs.(node)
           ~nonce:(Printf.sprintf "s%d" !nonce_ctr)
           records
          : bool);
      List.iter
        (fun r ->
          let fp = Record.fingerprint r in
          Hashtbl.replace expected fp
            (1 + Option.value ~default:0 (Hashtbl.find_opt expected fp)))
        records
    end
    else begin
      let i = Random.State.int rng n in
      let j = Random.State.int rng n in
      if i <> j then gossip dbs.(i) dbs.(j)
    end
  done;
  (* full anti-entropy sweep: every pair, enough rounds for any order *)
  for _round = 1 to n do
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        gossip dbs.(i) dbs.(j)
      done
    done
  done;
  for i = 1 to n - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "replica %d = replica 0" i)
      true
      (same_state dbs.(0) dbs.(i))
  done;
  let got =
    List.map
      (fun (e : Entry.t) -> (e.Entry.fingerprint, Entry.count e))
      (canon dbs.(0))
  in
  let want =
    Hashtbl.fold (fun fp c acc -> (fp, c) :: acc) expected []
    |> List.sort compare
  in
  Alcotest.(check (list (pair int64 int)))
    "every publication counted exactly once" want got;
  (* a converged pair exchanges empty deltas *)
  if n > 1 then
    Alcotest.(check int)
      "empty delta after convergence" 0
      (List.length (Db.delta dbs.(0) ~since:(Db.version dbs.(1))));
  Array.iter Db.close dbs

(* re-merging a full snapshot is a no-op, and survives reopen *)
let merge_idempotent_on_store () =
  let da = fresh_dir () and db_dir = fresh_dir () in
  let a = Result.get_ok (Db.open_db da) in
  let b = Result.get_ok (Db.open_db db_dir) in
  ignore
    (Db.publish a ~nonce:"pa"
       [
         Record.make ~ts:10. ~spec:"std" report_pool.(0);
         Record.make ~ts:20. ~spec:"std" report_pool.(1);
       ]
      : bool);
  let snap = Db.entries a in
  Alcotest.(check bool) "first merge changes b" true (Db.merge b snap > 0);
  Alcotest.(check int) "second merge is a no-op" 0 (Db.merge b snap);
  Alcotest.(check bool) "replicas equal" true (same_state a b);
  Db.close b;
  (* idempotence must hold against the durable state too *)
  let b = Result.get_ok (Db.open_db db_dir) in
  Alcotest.(check int) "merge after reopen is a no-op" 0 (Db.merge b snap);
  Db.close a;
  Db.close b

(* --- the CRDY exchange over a socketpair ---------------------------- *)

(* server side answers exactly as `rd2 serve` does: classify the 5-byte
   preamble, then hand the socket to Crd_sync.serve *)
let exchange server_db client_db =
  let sa, sb = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let server_res = ref (Error "server never ran") in
  let th =
    Thread.create
      (fun () ->
        (server_res :=
           match Crd_server.Proto.read_preamble sa with
           | Ok (Crd_server.Proto.Sync v) ->
               Crd_sync.serve ~timeout:5. ~version:v sa server_db
           | Ok Crd_server.Proto.Session -> Error "classified as a session"
           | Ok Crd_server.Proto.Health -> Error "classified as a health probe"
           | Error e -> Error e
           | exception e -> Error (Printexc.to_string e));
        (try Unix.shutdown sa Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
        try Unix.close sa with Unix.Unix_error _ -> ())
      ()
  in
  let client_res = Crd_sync.client ~timeout:5. sb client_db in
  (try Unix.shutdown sb Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  (try Unix.close sb with Unix.Unix_error _ -> ());
  Thread.join th;
  (client_res, !server_res)

let wire_exchange_converges () =
  let a = Result.get_ok (Db.open_db (fresh_dir ())) in
  let b = Result.get_ok (Db.open_db (fresh_dir ())) in
  ignore
    (Db.publish a ~nonce:"wa"
       [
         Record.make ~ts:10. ~spec:"std" report_pool.(0);
         Record.make ~ts:20. ~spec:"std" report_pool.(1);
       ]
      : bool);
  ignore
    (Db.publish b ~nonce:"wb"
       [
         Record.make ~ts:30. ~spec:"std" report_pool.(1);
         Record.make ~ts:40. ~spec:"std" report_pool.(2);
       ]
      : bool);
  (match exchange a b with
  | Ok c, Ok s ->
      Alcotest.(check string) "client sees server node" (Db.node_id a) c.Crd_sync.peer;
      Alcotest.(check string) "server sees client node" (Db.node_id b) s.Crd_sync.peer;
      Alcotest.(check int) "client sent its two" 2 c.Crd_sync.sent;
      Alcotest.(check int) "server sent its two" 2 s.Crd_sync.sent;
      Alcotest.(check int) "server learned client's count" c.Crd_sync.sent
        s.Crd_sync.received
  | Error e, _ -> Alcotest.failf "client: %s" e
  | _, Error e -> Alcotest.failf "server: %s" e);
  Alcotest.(check bool) "replicas converged" true (same_state a b);
  (* second exchange: nothing to transfer, nothing applied *)
  (match exchange a b with
  | Ok c, Ok s ->
      Alcotest.(check int) "client resends nothing" 0 c.Crd_sync.sent;
      Alcotest.(check int) "server resends nothing" 0 s.Crd_sync.sent;
      Alcotest.(check int) "nothing applied" 0 (c.Crd_sync.applied + s.Crd_sync.applied)
  | Error e, _ -> Alcotest.failf "client (2nd): %s" e
  | _, Error e -> Alcotest.failf "server (2nd): %s" e);
  Db.close a;
  Db.close b

let refused_without_racedb () =
  let b = Result.get_ok (Db.open_db (fresh_dir ())) in
  let sa, sb = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let th =
    Thread.create
      (fun () ->
        (match Crd_server.Proto.read_preamble sa with
        | Ok (Crd_server.Proto.Sync _) ->
            Crd_sync.refuse sa "server runs without --racedb"
        | _ -> ());
        (try Unix.shutdown sa Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
        try Unix.close sa with Unix.Unix_error _ -> ())
      ()
  in
  (match Crd_sync.client ~timeout:5. sb b with
  | Ok _ -> Alcotest.fail "exchange must fail against a refusing server"
  | Error e ->
      Alcotest.(check bool)
        "refusal message surfaced" true
        (let needle = "without --racedb" in
         let nh = String.length e and nn = String.length needle in
         let rec go i =
           i + nn <= nh && (String.sub e i nn = needle || go (i + 1))
         in
         go 0));
  (try Unix.close sb with Unix.Unix_error _ -> ());
  Thread.join th;
  Db.close b

(* --- fault-injected exchanges never corrupt or inflate -------------- *)

let faulted_exchanges_still_converge () =
  let a = Result.get_ok (Db.open_db (fresh_dir ())) in
  let b = Result.get_ok (Db.open_db (fresh_dir ())) in
  let expected = Hashtbl.create 16 in
  let publish db nonce reports =
    let records = List.map (fun r -> Record.make ~ts:50. ~spec:"std" r) reports in
    ignore (Db.publish db ~nonce records : bool);
    List.iter
      (fun r ->
        let fp = Record.fingerprint r in
        Hashtbl.replace expected fp
          (1 + Option.value ~default:0 (Hashtbl.find_opt expected fp)))
      records
  in
  publish a "fa" [ report_pool.(0); report_pool.(1); report_pool.(2) ];
  publish b "fb" [ report_pool.(2); report_pool.(3) ];
  Result.get_ok
    (Crd_fault.configure
       "seed=11,sync_read=p:0.15,sync_write=p:0.15,sync_merge=p:0.15,racedb_append=p:0.1");
  let failures = ref 0 in
  Fun.protect ~finally:Crd_fault.reset (fun () ->
      for _attempt = 1 to 12 do
        match exchange a b with
        | Ok _, Ok _ -> ()
        | _ -> incr failures
      done;
      Alcotest.(check bool)
        "some attempts were faulted" true (!failures > 0));
  (* faults off: one clean exchange must finish the job *)
  (match exchange a b with
  | Ok _, Ok _ -> ()
  | Error e, _ -> Alcotest.failf "clean client: %s" e
  | _, Error e -> Alcotest.failf "clean server: %s" e);
  Alcotest.(check bool) "replicas converged" true (same_state a b);
  let got =
    List.map
      (fun (e : Entry.t) -> (e.Entry.fingerprint, Entry.count e))
      (canon a)
  in
  let want =
    Hashtbl.fold (fun fp c acc -> (fp, c) :: acc) expected []
    |> List.sort compare
  in
  Alcotest.(check (list (pair int64 int)))
    "partial deliveries + retries never inflate counts" want got;
  Db.close a;
  Db.close b

(* --- a merge torn mid-frame applies nothing -------------------------- *)

(* The disk image of a crash inside Db.merge: the single merge-batch
   frame half-written, no commit marker yet. Reopening must apply NONE
   of the delta — a durably applied prefix would advance the version
   vector past entries never applied and the peer would skip them
   forever — and a clean retry must still converge. *)
let torn_merge_applies_nothing () =
  let a = Result.get_ok (Db.open_db (fresh_dir ())) in
  let dir_b = fresh_dir () in
  let b = Result.get_ok (Db.open_db dir_b) in
  ignore
    (Db.publish a ~nonce:"ta"
       [
         Record.make ~ts:10. ~spec:"std" report_pool.(0);
         Record.make ~ts:20. ~spec:"std" report_pool.(1);
       ]
      : bool);
  ignore
    (Db.publish b ~nonce:"tb" [ Record.make ~ts:30. ~spec:"std" report_pool.(2) ]
      : bool);
  let vv_before = Db.version b in
  let seg_of dir =
    match
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".log")
    with
    | [ s ] -> Filename.concat dir s
    | l -> Alcotest.failf "expected one segment, got %d" (List.length l)
  in
  let seg = seg_of dir_b in
  let pre_merge = (Unix.stat seg).Unix.st_size in
  let snap = Db.entries a in
  Alcotest.(check bool) "merge applied" true (Db.merge b snap > 0);
  Db.close b;
  let post_merge = (Unix.stat seg).Unix.st_size in
  Alcotest.(check bool) "merge wrote one frame" true (post_merge > pre_merge);
  (* tear the merge frame in half and lose the marker, as a crash
     mid-write would *)
  let bytes = In_channel.with_open_bin seg In_channel.input_all in
  let cut = pre_merge + ((post_merge - pre_merge) / 2) in
  Out_channel.with_open_bin seg (fun oc ->
      Out_channel.output_string oc (String.sub bytes 0 cut));
  Sys.remove (Filename.chop_suffix seg ".log" ^ ".ok");
  let b = Result.get_ok (Db.open_db dir_b) in
  Alcotest.(check bool)
    "version did not advance past the torn merge" true
    (Vv.equal (Db.version b) vv_before);
  Alcotest.(check int) "none of the delta applied" 1
    (List.length (Db.entries b));
  (* the retry re-sends the full delta and converges *)
  Alcotest.(check bool) "retry applies everything" true (Db.merge b snap > 0);
  gossip a b;
  Alcotest.(check bool) "replicas converged" true (same_state a b);
  Db.close a;
  Db.close b

(* --- an unbounded delta stream is refused, not buffered -------------- *)

let write_all fd s =
  let len = String.length s in
  let by = Bytes.unsafe_of_string s in
  let rec go off =
    if off < len then go (off + Unix.write fd by off (len - off))
  in
  go 0

let framed payload =
  let b = Buffer.create (String.length payload + 4) in
  Crd_wire.Codec.add_varint b (String.length payload);
  Buffer.add_string b payload;
  Buffer.contents b

(* a hostile "server" that answers the hello and then streams delta
   frames forever, never sending the closing ACK *)
let oversized_delta_stream_refused () =
  let b = Result.get_ok (Db.open_db (fresh_dir ())) in
  let sa, sb = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let hello =
    let buf = Buffer.create 32 in
    Buffer.add_char buf (Char.chr Crd_wire.Codec.sync_hello);
    Crd_wire.Codec.add_varint buf 4;
    Buffer.add_string buf "evil";
    Vv.encode buf Vv.empty;
    framed (Buffer.contents buf)
  in
  let delta_frame =
    (* ~6.4 MB per frame: entries whose sample drags a ~200 kB key *)
    let key = String.make 200_000 'x' in
    let sample = Record.make ~ts:1. ~spec:"std" (mk_report ~key ()) in
    let e =
      {
        Entry.fingerprint = Record.fingerprint sample;
        counts = Vv.set Vv.empty "evil" 1;
        ver = Vv.set Vv.empty "evil" 1;
        first_seen = 1.;
        last_seen = 1.;
        sample;
        minutes = Rollup.create ~res:60 ~slots:60;
        hours = Rollup.create ~res:3600 ~slots:48;
        days = Rollup.create ~res:86400 ~slots:30;
        provenance = Provenance.Witnessed;
      }
    in
    let buf = Buffer.create (1 lsl 23) in
    Buffer.add_char buf (Char.chr Crd_wire.Codec.sync_delta);
    Crd_wire.Codec.add_varint buf 8;
    for _ = 1 to 8 do
      Entry.encode buf e
    done;
    framed (Buffer.contents buf)
  in
  let th =
    Thread.create
      (fun () ->
        (try
           write_all sa hello;
           (* far more than the 64 MiB exchange cap; the client trips
              the limit and closes, surfacing here as EPIPE *)
           for _ = 1 to 40 do
             write_all sa delta_frame
           done
         with Unix.Unix_error _ -> ());
        try Unix.close sa with Unix.Unix_error _ -> ())
      ()
  in
  (match Crd_sync.client ~timeout:10. sb b with
  | Ok _ -> Alcotest.fail "client must refuse an unbounded delta stream"
  | Error e ->
      Alcotest.(check bool)
        (Printf.sprintf "limit error surfaced (got %S)" e)
        true
        (let needle = "exceeds exchange limits" in
         let nh = String.length e and nn = String.length needle in
         let rec go i =
           i + nn <= nh && (String.sub e i nn = needle || go (i + 1))
         in
         go 0));
  (try Unix.close sb with Unix.Unix_error _ -> ());
  Thread.join th;
  Alcotest.(check int) "nothing was merged" 0 (List.length (Db.entries b));
  Db.close b

let suite =
  ( "sync",
    vv_laws @ rollup_laws @ entry_laws
    @ [
        Alcotest.test_case "convergence, 2 replicas" `Quick (convergence 2);
        Alcotest.test_case "convergence, 3 replicas" `Quick (convergence 3);
        Alcotest.test_case "convergence, 5 replicas" `Quick (convergence 5);
        Alcotest.test_case "merge idempotent on the store" `Quick
          merge_idempotent_on_store;
        Alcotest.test_case "CRDY exchange converges" `Quick
          wire_exchange_converges;
        Alcotest.test_case "refused without racedb" `Quick
          refused_without_racedb;
        Alcotest.test_case "faulted exchanges still converge" `Quick
          faulted_exchanges_still_converge;
        Alcotest.test_case "torn merge frame applies nothing" `Quick
          torn_merge_applies_nothing;
        Alcotest.test_case "oversized delta stream refused" `Quick
          oversized_delta_stream_refused;
      ] )
