(* Differential testing of the zero-copy [Bigwire] decoder against the
   legacy string decoder, which is the reference oracle: on every input
   — valid, truncated, bit-flipped, or random — both decoders must
   produce identical events and identical typed errors, under every
   feed chunking (chunk boundaries split varints and string
   definitions) and in resync mode. *)

open Crd
module Gen = QCheck2.Gen
module Big = Bigwire

let qcheck ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let trace_gen =
  Gen.oneof
    [
      Generators.dict_trace ~threads:3 ~objects:2 ~len:60;
      Generators.rw_trace ~threads:3 ~len:60;
    ]

(* Both decoders on the same whole input: same events or same error. *)
let agree ?resync s =
  match (Wire.decode_string ?resync s, Big.decode_string ?resync s) with
  | Ok t1, Ok t2 -> Trace.to_list t1 = Trace.to_list t2
  | Error e1, Error e2 -> e1 = e2
  | Ok _, Error _ | Error _, Ok _ -> false

(* Feed the big decoder in [chunk]-byte slices of one mapped bigstring:
   the first feed takes the zero-copy direct path, an incomplete tail
   rides the pending buffer, later feeds alternate between the two. *)
let decode_big_chunked ?resync ~chunk s =
  let b = Big.bigstring_of_string s in
  let d = Big.Decoder.create ?resync () in
  let events = ref [] in
  let err = ref None in
  let pos = ref 0 in
  while !err = None && !pos < String.length s do
    let len = min chunk (String.length s - !pos) in
    (match Big.Decoder.feed d ~off:!pos ~len b with
    | Ok evs -> events := List.rev_append evs !events
    | Error e -> err := Some e);
    pos := !pos + len
  done;
  match !err with
  | Some e -> Error e
  | None -> (
      match Big.Decoder.finish d with
      | Ok () -> Ok (List.rev !events)
      | Error e -> Error e)

(* The same through [feed_bytes] — the server ingest path. *)
let decode_big_bytes ?resync ~chunk s =
  let d = Big.Decoder.create ?resync () in
  let src = Bytes.of_string s in
  let events = ref [] in
  let err = ref None in
  let pos = ref 0 in
  while !err = None && !pos < String.length s do
    let len = min chunk (String.length s - !pos) in
    (match Big.Decoder.feed_bytes d ~off:!pos ~len src with
    | Ok evs -> events := List.rev_append evs !events
    | Error e -> err := Some e);
    pos := !pos + len
  done;
  match !err with
  | Some e -> Error e
  | None -> (
      match Big.Decoder.finish d with
      | Ok () -> Ok (List.rev !events)
      | Error e -> Error e)

let whole_legacy ?resync s =
  match Wire.decode_string ?resync s with
  | Ok t -> Ok (Trace.to_list t)
  | Error e -> Error e

let sample_bin () = Wire.encode_trace ~chunk_bytes:16 (Test_wire.sample_trace ())

(* --- deterministic cases ------------------------------------------- *)

let sample_identity () =
  let bin = sample_bin () in
  Alcotest.(check bool) "whole input agrees" true (agree bin);
  List.iter
    (fun chunk ->
      Alcotest.(check bool)
        (Printf.sprintf "chunk=%d agrees" chunk)
        true
        (decode_big_chunked ~chunk bin = whole_legacy bin
        && decode_big_bytes ~chunk bin = whole_legacy bin))
    [ 1; 2; 3; 7; 16; 1 lsl 20 ]

(* max_int / min_int zigzag round trip through both decoders, as values
   and as [Ref]s. *)
let zigzag_extremes () =
  let t = Trace.create () in
  let obj = Obj_id.make ~name:"dictionary:x" (-7) in
  Trace.append t
    (Event.call (Tid.of_int 0)
       (Action.make ~obj ~meth:"put"
          ~args:[ Value.Int max_int; Value.Int min_int; Value.Ref min_int ]
          ~rets:[ Value.Int (-1); Value.Ref max_int ]
          ()));
  let bin = Wire.encode_trace t in
  (match Big.decode_string bin with
  | Ok t' ->
      Alcotest.(check bool)
        "extreme ints round trip" true
        (Trace.to_list t' = Trace.to_list t)
  | Error e -> Alcotest.failf "decode: %a" Wire.pp_error e);
  Alcotest.(check bool)
    "bytewise agrees on extremes" true
    (decode_big_chunked ~chunk:1 bin = whole_legacy bin)

let header_errors () =
  List.iter
    (fun s ->
      Alcotest.(check bool) (Printf.sprintf "agree on %S" s) true (agree s))
    [ ""; "C"; "CRD"; "XRDW\x01\x00"; "CRDW"; "CRDW\x07\x00"; "CRDW\x01" ]

let trailing_garbage () =
  let bin = sample_bin () ^ "junk" in
  Alcotest.(check bool) "agree on trailing garbage" true (agree bin);
  Alcotest.(check bool)
    "agree on trailing garbage under resync" true
    (agree ~resync:true bin)

let all_prefixes_agree () =
  let bin = sample_bin () in
  for cut = 0 to String.length bin - 1 do
    if not (agree (String.sub bin 0 cut)) then
      Alcotest.failf "decoders disagree on prefix of %d bytes" cut
  done

let bit_flips_agree () =
  let bin = sample_bin () in
  let b = Bytes.of_string bin in
  for i = 0 to Bytes.length b - 1 do
    let orig = Bytes.get b i in
    Bytes.set b i (Char.chr (Char.code orig lxor 0x10));
    let s = Bytes.to_string b in
    if not (agree s) then Alcotest.failf "disagree on flip at byte %d" i;
    if not (agree ~resync:true s) then
      Alcotest.failf "resync disagree on flip at byte %d" i;
    Bytes.set b i orig
  done

(* The intern pool must materialize one string per distinct content:
   two definitions of the same bytes yield physically equal strings. *)
let intern_materializes_once () =
  let t = Trace.create () in
  (* Two objects with distinct ids but the same name: the encoder
     interns the name once, but a second def of equal content arrives
     via the method names below. *)
  let o1 = Obj_id.make ~name:"set:s" 1 in
  let o2 = Obj_id.make ~name:"set:t" 2 in
  Trace.append t
    (Event.call (Tid.of_int 0)
       (Action.make ~obj:o1 ~meth:"add" ~args:[ Value.Str "payload" ] ~rets:[] ()));
  Trace.append t
    (Event.call (Tid.of_int 1)
       (Action.make ~obj:o2 ~meth:"add" ~args:[ Value.Str "payload" ] ~rets:[] ()));
  match Big.decode_string (Wire.encode_trace t) with
  | Error e -> Alcotest.failf "decode: %a" Wire.pp_error e
  | Ok t' -> (
      match Trace.to_list t' with
      | [ { Event.op = Event.Call a1; _ }; { Event.op = Event.Call a2; _ } ] ->
          Alcotest.(check bool)
            "equal method names share one string" true
            (a1.Action.meth == a2.Action.meth)
      | _ -> Alcotest.fail "unexpected decoded shape")

(* The push-based entry points must deliver the same events in the same
   order as the list-returning API, with chunk boundaries anywhere. *)
let streaming_iter_agrees () =
  let bin = sample_bin () in
  let expected = whole_legacy bin in
  let via_iter ~chunk =
    let b = Big.bigstring_of_string bin in
    let d = Big.Decoder.create () in
    let events = ref [] in
    let err = ref None in
    let pos = ref 0 in
    while !err = None && !pos < String.length bin do
      let len = min chunk (String.length bin - !pos) in
      (match Big.Decoder.feed_iter d ~off:!pos ~len b ~f:(fun e -> events := e :: !events) with
      | Ok () -> ()
      | Error e -> err := Some e);
      pos := !pos + len
    done;
    match !err with
    | Some e -> Error e
    | None -> (
        match Big.Decoder.finish d with
        | Ok () -> Ok (List.rev !events)
        | Error e -> Error e)
  in
  List.iter
    (fun chunk ->
      Alcotest.(check bool)
        (Printf.sprintf "feed_iter chunk=%d = legacy" chunk)
        true
        (via_iter ~chunk = expected))
    [ 1; 7; 1 lsl 20 ];
  let via_bytes_iter =
    let d = Big.Decoder.create () in
    let events = ref [] in
    match
      Big.Decoder.feed_bytes_iter d (Bytes.of_string bin) ~f:(fun e ->
          events := e :: !events)
    with
    | Error e -> Error e
    | Ok () -> (
        match Big.Decoder.finish d with
        | Ok () -> Ok (List.rev !events)
        | Error e -> Error e)
  in
  Alcotest.(check bool) "feed_bytes_iter = legacy" true (via_bytes_iter = expected)

(* An exception raised by the consumer callback must reach the caller
   unchanged — not be swallowed into a [Corrupt] decode error. *)
let consumer_exception_propagates () =
  let bin = sample_bin () in
  let b = Big.bigstring_of_string bin in
  let d = Big.Decoder.create () in
  let seen = ref 0 in
  Alcotest.check_raises "consumer exception surfaces" Exit (fun () ->
      ignore
        (Big.Decoder.feed_iter d b ~f:(fun _ ->
             incr seen;
             if !seen = 3 then raise Exit)));
  Alcotest.(check int) "consumer saw events up to the raise" 3 !seen

let mapped_file_roundtrip () =
  let t = Test_wire.sample_trace () in
  let path = Filename.temp_file "crd-bigwire" ".crdw" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      (match Wire.to_file path t with
      | Ok () -> ()
      | Error e -> Alcotest.failf "to_file: %s" e);
      (match Big.map_file path with
      | Error e -> Alcotest.failf "map_file: %s" e
      | Ok b -> (
          match Big.decode_bigstring b with
          | Error e -> Alcotest.failf "decode_bigstring: %a" Wire.pp_error e
          | Ok t' ->
              Alcotest.(check bool)
                "mmap decode = original" true
                (Trace.to_list t' = Trace.to_list t)));
      match Big.of_file path with
      | Error e -> Alcotest.failf "of_file: %s" e
      | Ok t' ->
          Alcotest.(check bool)
            "of_file = original" true
            (Trace.to_list t' = Trace.to_list t))

let suite =
  ( "bigwire",
    [
      Alcotest.test_case "sample stream identity" `Quick sample_identity;
      Alcotest.test_case "zigzag extremes" `Quick zigzag_extremes;
      Alcotest.test_case "header errors agree" `Quick header_errors;
      Alcotest.test_case "trailing garbage agrees" `Quick trailing_garbage;
      Alcotest.test_case "all prefixes agree" `Quick all_prefixes_agree;
      Alcotest.test_case "bit flips agree" `Quick bit_flips_agree;
      Alcotest.test_case "intern pool materializes once" `Quick
        intern_materializes_once;
      Alcotest.test_case "mmap'd file round trip" `Quick mapped_file_roundtrip;
      Alcotest.test_case "streaming iter agrees" `Quick streaming_iter_agrees;
      Alcotest.test_case "consumer exception propagates" `Quick
        consumer_exception_propagates;
      qcheck "valid streams decode identically" trace_gen (fun trace ->
          agree (Wire.encode_trace ~chunk_bytes:64 trace));
      qcheck "chunked big decode = whole legacy decode"
        Gen.(pair trace_gen (int_range 1 9))
        (fun (trace, chunk) ->
          let bin = Wire.encode_trace ~chunk_bytes:32 trace in
          decode_big_chunked ~chunk bin = whole_legacy bin
          && decode_big_bytes ~chunk bin = whole_legacy bin);
      qcheck "corrupted streams agree"
        Gen.(triple trace_gen (int_range 0 max_int) (int_range 0 7))
        (fun (trace, n, bit) ->
          let b = Bytes.of_string (Wire.encode_trace ~chunk_bytes:32 trace) in
          let i = n mod Bytes.length b in
          Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
          agree (Bytes.to_string b));
      qcheck "corrupted streams agree under resync"
        Gen.(triple trace_gen (int_range 0 max_int) (int_range 0 7))
        (fun (trace, n, bit) ->
          let b = Bytes.of_string (Wire.encode_trace ~chunk_bytes:32 trace) in
          let i = n mod Bytes.length b in
          Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
          agree ~resync:true (Bytes.to_string b));
      qcheck "resync chunked agrees with legacy chunked"
        Gen.(
          quad trace_gen (int_range 0 max_int) (int_range 0 7) (int_range 1 9))
        (fun (trace, n, bit, chunk) ->
          let b = Bytes.of_string (Wire.encode_trace ~chunk_bytes:32 trace) in
          let i = n mod Bytes.length b in
          Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
          let s = Bytes.to_string b in
          let legacy =
            match Test_wire.decode_chunked ~resync:true ~chunk s with
            | Ok evs -> Ok evs
            | Error e -> Error e
          in
          decode_big_chunked ~resync:true ~chunk s = legacy);
      qcheck "random bytes never raise and agree" ~count:500
        Gen.(string_size ~gen:char (int_range 0 120))
        (fun s -> agree s);
    ] )
