let () =
  Alcotest.run "crd"
    [
      Test_value.suite;
      Test_prng.suite;
      Test_vclock.suite;
      Test_trace.suite;
      Test_hb.suite;
      Test_spec.suite;
      Test_ecl.suite;
      Test_parser.suite;
      Test_translate.suite;
      Test_detector.suite;
      Test_fasttrack.suite;
      Test_semantics.suite;
      Test_runtime.suite;
      Test_workloads.suite;
      Test_analyzer.suite;
      Test_atomicity.suite;
      Test_boost.suite;
      Test_lockset.suite;
      Test_theorem52.suite;
      Test_mutation.suite;
      Test_wire.suite;
      Test_obs.suite;
      Test_bqueue.suite;
      Test_server.suite;
    ]
