(* The binary wire codec: round-trip identity (whole-string and
   byte-at-a-time incremental decoding), and decoder totality — every
   truncated or corrupted input yields a typed [Error _], never an
   exception. *)

open Crd
module Gen = QCheck2.Gen

let qcheck ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let trace_gen =
  Gen.oneof
    [
      Generators.dict_trace ~threads:3 ~objects:2 ~len:60;
      Generators.rw_trace ~threads:3 ~len:60;
    ]

(* One handwritten trace covering every event kind, location shape, and
   value tag (including a negative int, which exercises zigzag). *)
let sample_trace () =
  let t = Trace.create () in
  let d = Obj_id.make ~name:"dictionary:d" 0 in
  let s = Obj_id.make ~name:"set:s" 7 in
  let l = Lock_id.make 3 in
  let t0 = Tid.of_int 0 and t1 = Tid.of_int 1 in
  Trace.append t (Event.fork t0 t1);
  Trace.append t (Event.acquire t1 l);
  Trace.append t
    (Event.call t1
       (Action.make ~obj:d ~meth:"put"
          ~args:[ Value.Str "key"; Value.Int (-42) ]
          ~rets:[ Value.Nil ] ()));
  Trace.append t
    (Event.call t0
       (Action.make ~obj:s ~meth:"add"
          ~args:[ Value.Ref 9 ]
          ~rets:[ Value.Bool true ] ()));
  Trace.append t (Event.release t1 l);
  Trace.append t (Event.begin_ t0);
  Trace.append t (Event.read t0 (Mem_loc.Global "g"));
  Trace.append t (Event.write t1 (Mem_loc.Field (d, "f")));
  Trace.append t (Event.read t1 (Mem_loc.Slot (s, "slot", Value.Int 3)));
  Trace.append t (Event.end_ t0);
  Trace.append t (Event.join t0 t1);
  t

let decode_exn what s =
  match Wire.decode_string s with
  | Ok t -> t
  | Error e -> Alcotest.failf "%s: decode failed: %a" what Wire.pp_error e

(* Feed the decoder in [chunk]-byte slices; events must come out
   identical and the decoder must report a finished stream. *)
let decode_chunked ?resync ~chunk s =
  let d = Wire.Decoder.create ?resync () in
  let events = ref [] in
  let err = ref None in
  let pos = ref 0 in
  while !err = None && !pos < String.length s do
    let len = min chunk (String.length s - !pos) in
    (match Wire.Decoder.feed d ~off:!pos ~len s with
    | Ok evs -> events := List.rev_append evs !events
    | Error e -> err := Some e);
    pos := !pos + len
  done;
  match !err with
  | Some e -> Error e
  | None -> (
      match Wire.Decoder.finish d with
      | Ok () -> Ok (List.rev !events)
      | Error e -> Error e)

let decode_bytewise s = decode_chunked ~chunk:1 s

let roundtrip_sample () =
  let t = sample_trace () in
  let bin = Wire.encode_trace t in
  Alcotest.(check bool)
    "decode (encode t) = t" true
    (Trace.to_list (decode_exn "sample" bin) = Trace.to_list t)

let roundtrip_tiny_chunks () =
  let t = sample_trace () in
  (* A tiny flush threshold forces many frames; the stream must still
     decode to the same trace. *)
  let bin = Wire.encode_trace ~chunk_bytes:16 t in
  Alcotest.(check bool)
    "multi-frame round trip" true
    (Trace.to_list (decode_exn "tiny chunks" bin) = Trace.to_list t)

let empty_trace () =
  let t = Trace.create () in
  Alcotest.(check int)
    "empty trace round trip" 0
    (Trace.length (decode_exn "empty" (Wire.encode_trace t)))

let empty_input () =
  match Wire.decode_string "" with
  | Error Wire.Truncated -> ()
  | Error e -> Alcotest.failf "expected Truncated, got %a" Wire.pp_error e
  | Ok _ -> Alcotest.fail "empty input decoded"

let bad_magic () =
  match Wire.decode_string "XRDW\x01\x00" with
  | Error Wire.Bad_magic -> ()
  | Error e -> Alcotest.failf "expected Bad_magic, got %a" Wire.pp_error e
  | Ok _ -> Alcotest.fail "bad magic decoded"

let bad_version () =
  match Wire.decode_string "CRDW\x07\x00" with
  | Error (Wire.Unsupported_version 7) -> ()
  | Error e -> Alcotest.failf "expected Unsupported_version 7, got %a" Wire.pp_error e
  | Ok _ -> Alcotest.fail "future version decoded"

let trailing_garbage () =
  let bin = Wire.encode_trace (sample_trace ()) ^ "junk" in
  match Wire.decode_string bin with
  | Error (Wire.Corrupt _) -> ()
  | Error e -> Alcotest.failf "expected Corrupt, got %a" Wire.pp_error e
  | Ok _ -> Alcotest.fail "input past end-of-stream decoded"

(* Every strict prefix of a valid stream is an error — no prefix may
   silently pass for the whole trace — and byte-at-a-time feeding of the
   full stream reproduces it exactly. *)
let all_prefixes_truncated () =
  let bin = Wire.encode_trace (sample_trace ()) in
  for cut = 0 to String.length bin - 1 do
    match Wire.decode_string (String.sub bin 0 cut) with
    | Ok _ -> Alcotest.failf "prefix of %d/%d bytes decoded" cut (String.length bin)
    | Error _ -> ()
  done

let bytewise_equals_whole () =
  let t = sample_trace () in
  let bin = Wire.encode_trace t in
  match decode_bytewise bin with
  | Error e -> Alcotest.failf "bytewise decode failed: %a" Wire.pp_error e
  | Ok events ->
      Alcotest.(check bool) "bytewise = whole" true (events = Trace.to_list t)

(* Exhaustive single-bit-flip fuzz over the sample stream: the decoder
   must stay total (typed errors only) on every 1-bit corruption. *)
let bit_flips_total () =
  let bin = Wire.encode_trace (sample_trace ()) in
  let b = Bytes.of_string bin in
  for i = 0 to Bytes.length b - 1 do
    for bit = 0 to 7 do
      let orig = Bytes.get b i in
      Bytes.set b i (Char.chr (Char.code orig lxor (1 lsl bit)));
      (match Wire.decode_string (Bytes.to_string b) with
      | Ok _ | Error _ -> ());
      Bytes.set b i orig
    done
  done

(* --- resync mode ------------------------------------------------- *)

let metric name =
  String.split_on_char '\n' (Crd_obs.dump ())
  |> List.find_map (fun l ->
         match String.index_opt l ' ' with
         | Some i when String.sub l 0 i = name ->
             int_of_string_opt (String.sub l (i + 1) (String.length l - i - 1))
         | _ -> None)
  |> Option.value ~default:0

(* Offset just past the first frame: header, then one length varint and
   its payload. *)
let first_frame_boundary bin =
  let rec varint acc shift p =
    let b = Char.code bin.[p] in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b < 0x80 then (acc, p + 1) else varint acc (shift + 7) (p + 1)
  in
  let len, p = varint 0 0 5 in
  p + len

let resync_identity_on_clean_stream () =
  let t = sample_trace () in
  let bin = Wire.encode_trace ~chunk_bytes:16 t in
  let before = metric "wire_resync_total" in
  (match Wire.decode_string ~resync:true bin with
  | Ok t' ->
      Alcotest.(check bool)
        "clean stream unchanged by resync mode" true
        (Trace.to_list t' = Trace.to_list t)
  | Error e -> Alcotest.failf "resync decode of clean stream: %a" Wire.pp_error e);
  Alcotest.(check int) "zero resyncs" before (metric "wire_resync_total")

(* Garbage spliced between two frames: every 0x01 byte claims a 1-byte
   frame, and no 1-byte frame can hold a record, so the scanner skips
   exactly one byte per attempt and lands back on the true boundary —
   all real events recovered, one resync per garbage byte. *)
let resync_skips_interframe_garbage () =
  let t = sample_trace () in
  let bin = Wire.encode_trace ~chunk_bytes:16 t in
  let cut = first_frame_boundary bin in
  let corrupted =
    String.sub bin 0 cut ^ "\x01\x01\x01\x01"
    ^ String.sub bin cut (String.length bin - cut)
  in
  (match Wire.decode_string corrupted with
  | Error (Wire.Corrupt _) -> ()
  | Error e -> Alcotest.failf "expected Corrupt without resync, got %a" Wire.pp_error e
  | Ok _ -> Alcotest.fail "corrupted stream decoded without resync");
  let before = metric "wire_resync_total" in
  (match Wire.decode_string ~resync:true corrupted with
  | Ok t' ->
      Alcotest.(check bool)
        "all events recovered" true
        (Trace.to_list t' = Trace.to_list t)
  | Error e -> Alcotest.failf "resync decode: %a" Wire.pp_error e);
  Alcotest.(check int) "one resync per garbage byte" (before + 4)
    (metric "wire_resync_total")

let resync_keeps_fatal_errors () =
  (match Wire.decode_string ~resync:true "XRDW\x01\x00" with
  | Error Wire.Bad_magic -> ()
  | Error e -> Alcotest.failf "expected Bad_magic, got %a" Wire.pp_error e
  | Ok _ -> Alcotest.fail "bad magic decoded under resync");
  let bin = Wire.encode_trace (sample_trace ()) ^ "junk" in
  match Wire.decode_string ~resync:true bin with
  | Error (Wire.Corrupt _) -> ()
  | Error e -> Alcotest.failf "expected Corrupt, got %a" Wire.pp_error e
  | Ok _ -> Alcotest.fail "trailing data decoded under resync"

let with_faults spec k =
  match Crd_fault.configure spec with
  | Error e -> Alcotest.failf "configure %S: %s" spec e
  | Ok () -> Fun.protect ~finally:Crd_fault.reset k

let decode_frame_fault_fatal () =
  with_faults "decode_frame=once" (fun () ->
      let bin = Wire.encode_trace (sample_trace ()) in
      match Wire.decode_string bin with
      | Error (Wire.Corrupt msg) ->
          Alcotest.(check bool)
            "error names the injection point" true
            (String.length msg >= 12
            && String.sub msg (String.length msg - 12) 12 = "decode_frame")
      | Error e -> Alcotest.failf "expected Corrupt, got %a" Wire.pp_error e
      | Ok _ -> Alcotest.fail "injected frame fault ignored")

let decode_frame_fault_resync () =
  (* A resync decoder survives the injected corruption; with the same
     seed the outcome is bit-for-bit repeatable. *)
  let run () =
    with_faults "seed=11,decode_frame=once" (fun () ->
        let bin = Wire.encode_trace ~chunk_bytes:16 (sample_trace ()) in
        match Wire.decode_string ~resync:true bin with
        | Ok t -> Ok (Trace.to_list t)
        | Error e -> Error e)
  in
  let a = run () in
  (match a with
  | Ok _ | Error (Wire.Truncated | Wire.Corrupt _) -> ()
  | Error e -> Alcotest.failf "unexpected resync failure: %a" Wire.pp_error e);
  Alcotest.(check bool) "deterministic under a fixed seed" true (a = run ())

let suite =
  ( "wire",
    [
      Alcotest.test_case "sample round trip" `Quick roundtrip_sample;
      Alcotest.test_case "multi-frame round trip" `Quick roundtrip_tiny_chunks;
      Alcotest.test_case "empty trace" `Quick empty_trace;
      Alcotest.test_case "empty input" `Quick empty_input;
      Alcotest.test_case "bad magic" `Quick bad_magic;
      Alcotest.test_case "future version" `Quick bad_version;
      Alcotest.test_case "trailing garbage" `Quick trailing_garbage;
      Alcotest.test_case "all prefixes truncated" `Quick all_prefixes_truncated;
      Alcotest.test_case "bytewise = whole" `Quick bytewise_equals_whole;
      Alcotest.test_case "bit flips stay total" `Quick bit_flips_total;
      qcheck "decode (encode t) = t" trace_gen (fun trace ->
          match Wire.decode_string (Wire.encode_trace trace) with
          | Ok t -> Trace.to_list t = Trace.to_list trace
          | Error _ -> false);
      qcheck "incremental decode = whole decode" trace_gen (fun trace ->
          match decode_bytewise (Wire.encode_trace trace) with
          | Ok events -> events = Trace.to_list trace
          | Error _ -> false);
      qcheck "strict prefixes are errors"
        Gen.(pair trace_gen (int_range 0 max_int))
        (fun (trace, n) ->
          let bin = Wire.encode_trace trace in
          let cut = n mod String.length bin in
          Result.is_error (Wire.decode_string (String.sub bin 0 cut)));
      qcheck "bit flips never raise"
        Gen.(triple trace_gen (int_range 0 max_int) (int_range 0 7))
        (fun (trace, n, bit) ->
          let b = Bytes.of_string (Wire.encode_trace trace) in
          let i = n mod Bytes.length b in
          Bytes.set b i
            (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
          match Wire.decode_string (Bytes.to_string b) with
          | Ok _ | Error _ -> true);
      qcheck "random bytes never raise" ~count:500
        Gen.(string_size ~gen:char (int_range 0 120))
        (fun s ->
          match Wire.decode_string s with Ok _ | Error _ -> true);
      Alcotest.test_case "resync: clean stream identity" `Quick
        resync_identity_on_clean_stream;
      Alcotest.test_case "resync: skips inter-frame garbage" `Quick
        resync_skips_interframe_garbage;
      Alcotest.test_case "resync: header and trailing errors stay fatal"
        `Quick resync_keeps_fatal_errors;
      Alcotest.test_case "decode_frame fault is fatal without resync" `Quick
        decode_frame_fault_fatal;
      Alcotest.test_case "decode_frame fault survivable with resync" `Quick
        decode_frame_fault_resync;
      qcheck "resync: clean streams decode identically" trace_gen
        (fun trace ->
          match Wire.decode_string ~resync:true (Wire.encode_trace trace) with
          | Ok t -> Trace.to_list t = Trace.to_list trace
          | Error _ -> false);
      qcheck "resync: bit flips never raise, deterministically"
        Gen.(triple trace_gen (int_range 0 max_int) (int_range 0 7))
        (fun (trace, n, bit) ->
          let b = Bytes.of_string (Wire.encode_trace ~chunk_bytes:32 trace) in
          let i = n mod Bytes.length b in
          Bytes.set b i
            (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
          let s = Bytes.to_string b in
          let once = decode_chunked ~resync:true ~chunk:(String.length s) s in
          once = decode_chunked ~resync:true ~chunk:(String.length s) s);
      qcheck "resync: outcome independent of feed chunking"
        Gen.(triple trace_gen (int_range 0 max_int) (int_range 0 7))
        (fun (trace, n, bit) ->
          let b = Bytes.of_string (Wire.encode_trace ~chunk_bytes:32 trace) in
          let i = n mod Bytes.length b in
          Bytes.set b i
            (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
          let s = Bytes.to_string b in
          decode_chunked ~resync:true ~chunk:(String.length s) s
          = decode_chunked ~resync:true ~chunk:1 s);
    ] )
