open Crd
module Gen = QCheck2.Gen

let qcheck ?(count = 1000) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let clock : Vclock.t Gen.t =
  Gen.map Vclock.of_list (Gen.list_size (Gen.int_range 0 5) (Gen.int_range 0 4))

let basics () =
  let c = Vclock.bot () in
  Alcotest.(check int) "bot is 0" 0 (Vclock.get c (Tid.of_int 3));
  Vclock.incr c (Tid.of_int 3);
  Alcotest.(check int) "incr" 1 (Vclock.get c (Tid.of_int 3));
  Alcotest.(check int) "others 0" 0 (Vclock.get c (Tid.of_int 0));
  Alcotest.(check bool) "bot leq" true (Vclock.leq (Vclock.bot ()) c);
  Alcotest.(check bool) "not leq bot" false (Vclock.leq c (Vclock.bot ()))

let fig3_clocks () =
  (* The clocks of Fig 3: a1 = <3,0,1>, a2 = <2,1,0>, a3 = <4,1,1>. *)
  let a1 = Vclock.of_list [ 3; 0; 1 ] in
  let a2 = Vclock.of_list [ 2; 1; 0 ] in
  let a3 = Vclock.of_list [ 4; 1; 1 ] in
  Alcotest.(check bool) "a1 || a2" true (Vclock.concurrent a1 a2);
  Alcotest.(check bool) "a1 <= a3" true (Vclock.leq a1 a3);
  Alcotest.(check bool) "a2 <= a3" true (Vclock.leq a2 a3);
  Alcotest.(check bool) "a3 not <= a1" false (Vclock.leq a3 a1)

let to_list_trims () =
  let c = Vclock.of_list [ 1; 0; 2; 0; 0 ] in
  Alcotest.(check (list int)) "trailing zeros trimmed" [ 1; 0; 2 ]
    (Vclock.to_list c)

let epoch () =
  let open Vclock.Epoch in
  let c = Vclock.of_list [ 3; 1; 4 ] in
  Alcotest.(check bool) "epoch leq" true (leq (make (Tid.of_int 2) 4) c);
  Alcotest.(check bool) "epoch not leq" false (leq (make (Tid.of_int 2) 5) c);
  Alcotest.(check bool) "none leq anything" true (leq none (Vclock.bot ()));
  let e = of_vclock c (Tid.of_int 0) in
  Alcotest.(check int) "of_vclock clock" 3 (clock e);
  Alcotest.(check bool) "of_vclock tid" true (Tid.equal (tid e) (Tid.of_int 0))

let epoch_none_and_promotion () =
  let open Vclock.Epoch in
  (* [none] is the bottom epoch 0@T0: below every clock, including bot,
     and equal to a freshly made 0-epoch of the main thread. *)
  Alcotest.(check bool) "none leq bot" true (leq none (Vclock.bot ()));
  Alcotest.(check bool) "none = make T0 0" true (equal none (make Tid.main 0));
  Alcotest.(check bool) "none below any clock" true
    (leq none (Vclock.of_list [ 0; 7 ]));
  (* An epoch of a thread beyond the clock's array reads component 0. *)
  let short = Vclock.of_list [ 5 ] in
  let far = of_vclock short (Tid.of_int 9) in
  Alcotest.(check int) "missing component is 0" 0 (clock far);
  Alcotest.(check bool) "0-epoch of far tid leq" true (leq far short);
  Alcotest.(check bool) "1@far not leq" false (leq (make (Tid.of_int 9) 1) short);
  (* The FastTrack-style promotion: an epoch e = c@t is a faithful
     stand-in for the component clock {t -> c}; promoting and checking
     via the vector clock agrees with the epoch test. *)
  let e = make (Tid.of_int 1) 3 in
  let promoted = Vclock.bot () in
  Vclock.set promoted (tid e) (clock e);
  let check_against = [ [ 0; 3 ]; [ 0; 2 ]; [ 4; 0 ]; [ 0; 4; 9 ]; [] ] in
  List.iter
    (fun l ->
      let c = Vclock.of_list l in
      Alcotest.(check bool)
        (Fmt.str "epoch vs promoted on %a" Vclock.pp c)
        (leq e c) (Vclock.leq promoted c))
    check_against

let pool_basics () =
  let p = Vclock.Pool.create ~capacity:2 () in
  Alcotest.(check int) "preallocated" 2 (Vclock.Pool.available p);
  Alcotest.(check int) "capacity" 2 (Vclock.Pool.capacity p);
  let a = Vclock.Pool.acquire p in
  let b = Vclock.Pool.acquire p in
  Alcotest.(check bool) "acquired clocks are bot" true
    (Vclock.equal a (Vclock.bot ()) && Vclock.equal b (Vclock.bot ()));
  Alcotest.(check int) "in_use" 2 (Vclock.Pool.in_use p);
  Alcotest.(check int) "free list drained" 0 (Vclock.Pool.available p);
  Alcotest.(check int) "no growth yet" 0 (Vclock.Pool.grown p);
  (* Exhaustion: the third acquire outruns the preallocated arena. *)
  let c = Vclock.Pool.acquire p in
  Alcotest.(check int) "grew" 1 (Vclock.Pool.grown p);
  Alcotest.(check int) "acquired total" 3 (Vclock.Pool.acquired p);
  Vclock.incr a (Tid.of_int 3);
  Vclock.Pool.release p a;
  Alcotest.(check int) "released" 2 (Vclock.Pool.in_use p);
  (* A released clock comes back reset and physically reused. *)
  let a' = Vclock.Pool.acquire p in
  Alcotest.(check bool) "reused" true (a == a');
  Alcotest.(check bool) "reset on release" true
    (Vclock.equal a' (Vclock.bot ()));
  Vclock.Pool.release p a';
  Vclock.Pool.release p b;
  Vclock.Pool.release p c;
  Alcotest.(check int) "all back" 0 (Vclock.Pool.in_use p);
  Alcotest.(check int) "free list holds growth too" 3
    (Vclock.Pool.available p)

let to_list_after_zeroing () =
  (* Zero-writes below the tracked bound leave a slack upper bound; the
     list must still trim exactly. *)
  let c = Vclock.of_list [ 1; 2; 3 ] in
  Vclock.set c (Tid.of_int 2) 0;
  Alcotest.(check (list int)) "retrimmed" [ 1; 2 ] (Vclock.to_list c);
  Vclock.set c (Tid.of_int 1) 0;
  Vclock.set c (Tid.of_int 0) 0;
  Alcotest.(check (list int)) "all zero" [] (Vclock.to_list c);
  Vclock.set c (Tid.of_int 4) 5;
  Alcotest.(check (list int)) "regrown" [ 0; 0; 0; 0; 5 ] (Vclock.to_list c)

let suite =
  ( "vclock",
    [
      Alcotest.test_case "basics" `Quick basics;
      Alcotest.test_case "fig3 clocks" `Quick fig3_clocks;
      Alcotest.test_case "to_list trims" `Quick to_list_trims;
      Alcotest.test_case "to_list after zeroing" `Quick to_list_after_zeroing;
      Alcotest.test_case "epochs" `Quick epoch;
      Alcotest.test_case "epoch none and promotion" `Quick
        epoch_none_and_promotion;
      Alcotest.test_case "pool basics" `Quick pool_basics;
      qcheck "copy_into matches copy" (Gen.pair clock clock) (fun (a, b) ->
          (* [b] plays the reused destination buffer, whatever its prior
             size relative to [a]. *)
          let dst = Vclock.copy b in
          Vclock.copy_into ~into:dst a;
          Vclock.equal dst a && Vclock.to_list dst = Vclock.to_list a);
      qcheck "reset is bot" clock (fun c ->
          let c' = Vclock.copy c in
          Vclock.reset c';
          Vclock.equal c' (Vclock.bot ()) && Vclock.to_list c' = []);
      qcheck "leq reflexive" clock (fun c -> Vclock.leq c c);
      qcheck "leq antisymmetric" (Gen.pair clock clock) (fun (a, b) ->
          (not (Vclock.leq a b && Vclock.leq b a)) || Vclock.equal a b);
      qcheck "leq transitive" (Gen.triple clock clock clock) (fun (a, b, c) ->
          (not (Vclock.leq a b && Vclock.leq b c)) || Vclock.leq a c);
      qcheck "join is lub" (Gen.triple clock clock clock) (fun (a, b, c) ->
          let j = Vclock.join a b in
          Vclock.leq a j && Vclock.leq b j
          && ((not (Vclock.leq a c && Vclock.leq b c)) || Vclock.leq j c));
      qcheck "join commutative" (Gen.pair clock clock) (fun (a, b) ->
          Vclock.equal (Vclock.join a b) (Vclock.join b a));
      qcheck "join idempotent" clock (fun c -> Vclock.equal (Vclock.join c c) c);
      qcheck "join_into matches join" (Gen.pair clock clock) (fun (a, b) ->
          let dst = Vclock.copy a in
          Vclock.join_into ~into:dst b;
          Vclock.equal dst (Vclock.join a b));
      qcheck "incr strictly increases" (Gen.pair clock (Gen.int_range 0 4))
        (fun (c, i) ->
          let c' = Vclock.copy c in
          Vclock.incr c' (Tid.of_int i);
          Vclock.leq c c' && not (Vclock.leq c' c));
      qcheck "concurrent is symmetric and irreflexive"
        (Gen.pair clock clock) (fun (a, b) ->
          Vclock.concurrent a b = Vclock.concurrent b a
          && not (Vclock.concurrent a a));
      qcheck "copy is independent" clock (fun c ->
          let c' = Vclock.copy c in
          Vclock.incr c' (Tid.of_int 0);
          Vclock.get c (Tid.of_int 0) + 1 = Vclock.get c' (Tid.of_int 0));
    ] )
