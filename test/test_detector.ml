open Crd
module Gen = QCheck2.Gen

let qcheck ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let dict = Stdspecs.dictionary ()
let dict_repr = Result.get_ok (Repr.of_spec dict)

let spec_for _ = Some dict
let repr_for _ = Some dict_repr

let run_rd2 ?(mode = `Constant) trace =
  let hb = Hb.create () in
  let d = Rd2.create ~mode ~repr_for () in
  let events_with_race = ref [] in
  Trace.iter trace ~f:(fun index (e : Event.t) ->
      let vc = Hb.step hb e in
      match e.op with
      | Event.Call a ->
          if Rd2.on_action d ~index e.tid a vc <> [] then
            events_with_race := index :: !events_with_race
      | _ -> ());
  (d, List.rev !events_with_race)

let run_direct trace =
  let hb = Hb.create () in
  let d = Direct.create ~spec_for () in
  let events_with_race = ref [] in
  Trace.iter trace ~f:(fun index (e : Event.t) ->
      let vc = Hb.step hb e in
      match e.op with
      | Event.Call a ->
          if Direct.on_action d ~index e.tid a vc <> [] then
            events_with_race := index :: !events_with_race
      | _ -> ());
  (d, List.rev !events_with_race)

(* The worked example of Fig 3 / Section 5.3. *)
let fig3 () =
  (* Same content as examples/traces/fig3.trace. *)
  let src =
    "T0 fork T2\n\
     T0 fork T3\n\
     T3 call dictionary.put(\"a.com\", @1) / nil\n\
     T2 call dictionary.put(\"a.com\", @2) / @1\n\
     T0 join T2\n\
     T0 join T3\n\
     T0 call dictionary.size() / 1\n"
  in
  let trace = Result.get_ok (Trace_text.parse src) in
  let d, events = run_rd2 trace in
  Alcotest.(check (list int)) "race closed by a2 only" [ 3 ] events;
  let races = Rd2.races d in
  Alcotest.(check int) "one race" 1 (List.length races);
  let r = List.hd races in
  Alcotest.(check string) "racing action" "dictionary.put(\"a.com\", @2)/@1"
    (Action.to_string r.Report.action)

(* Without the joinall, size() races with the resizing put (Section 2). *)
let fig3_no_join () =
  let src =
    "T0 fork T2\n\
     T0 fork T3\n\
     T3 call o.put(\"a.com\", @1) / nil\n\
     T0 call o.size() / 1\n"
  in
  let trace = Result.get_ok (Trace_text.parse src) in
  let _, events = run_rd2 trace in
  Alcotest.(check (list int)) "size races" [ 3 ] events

(* And the overwriting put does NOT race with size (Section 2: a2/a3). *)
let overwrite_vs_size () =
  let src =
    "T0 fork T2\n\
     T2 call o.put(\"a.com\", @2) / @1\n\
     T0 call o.size() / 1\n"
  in
  let trace = Result.get_ok (Trace_text.parse src) in
  let _, events = run_rd2 trace in
  Alcotest.(check (list int)) "no race" [] events

let ordered_no_race () =
  (* Same thread: never a race even when actions do not commute. *)
  let src =
    "T0 call o.put(1, 2) / nil\nT0 call o.put(1, 3) / 2\nT0 call o.size() / 1\n"
  in
  let trace = Result.get_ok (Trace_text.parse src) in
  let _, events = run_rd2 trace in
  Alcotest.(check (list int)) "no race" [] events

let lock_protection () =
  (* Two non-commuting puts protected by a lock: ordered, no race. *)
  let src =
    "T0 fork T1\n\
     T0 fork T2\n\
     T1 acquire l\n\
     T1 call o.put(1, 2) / nil\n\
     T1 release l\n\
     T2 acquire l\n\
     T2 call o.put(1, 3) / 2\n\
     T2 release l\n"
  in
  let trace = Result.get_ok (Trace_text.parse src) in
  let _, events = run_rd2 trace in
  Alcotest.(check (list int)) "lock orders the puts" [] events

let release_object () =
  let obj = Obj_id.make ~name:"o" 0 in
  let put tid =
    Event.call (Tid.of_int tid)
      (Action.make ~obj ~meth:"put"
         ~args:[ Value.Int 1; Value.Int tid ]
         ~rets:[ Value.Int 9 ] ())
  in
  let hb = Hb.create () in
  let d = Rd2.create ~repr_for () in
  let e0 = Event.fork Tid.main (Tid.of_int 1) in
  ignore (Hb.step hb e0);
  let step i (e : Event.t) =
    let vc = Hb.step hb e in
    match e.op with
    | Event.Call a -> Rd2.on_action d ~index:i e.tid a vc
    | _ -> []
  in
  ignore (step 1 (put 0));
  Alcotest.(check bool) "state exists" true (Rd2.active_points d obj > 0);
  Rd2.release_object d obj;
  Alcotest.(check int) "state dropped" 0 (Rd2.active_points d obj);
  (* After release, the previous action is forgotten: no race. *)
  Alcotest.(check int) "no race after release" 0 (List.length (step 2 (put 1)))

let unmonitored_objects_ignored () =
  let trace =
    Result.get_ok
      (Trace_text.parse "T0 fork T1\nT1 call o.put(1, 2) / nil\nT0 call o.put(1, 3) / nil\n")
  in
  let hb = Hb.create () in
  let d = Rd2.create ~repr_for:(fun _ -> None) () in
  let races = ref 0 in
  Trace.iter trace ~f:(fun index (e : Event.t) ->
      let vc = Hb.step hb e in
      match e.op with
      | Event.Call a -> races := !races + List.length (Rd2.on_action d ~index e.tid a vc)
      | _ -> ());
  Alcotest.(check int) "ignored" 0 !races;
  Alcotest.(check int) "no actions counted" 0 (Rd2.stats d).Rd2.actions

(* Reference RD2: Algorithm 1 verbatim, one full joined vector clock per
   active access point — the oracle the epoch-adaptive entries of
   [Rd2] must reproduce exactly. Reports are (index, point, conflicting
   point, prior tid) tuples. *)
let run_ref_rd2 trace =
  let hb = Hb.create () in
  let objects = Hashtbl.create 16 in
  let reports = ref [] in
  let state_of obj =
    match Hashtbl.find_opt objects (Obj_id.id obj) with
    | Some st -> st
    | None ->
        let st = Point.Tbl.create 16 in
        Hashtbl.add objects (Obj_id.id obj) st;
        st
  in
  Trace.iter trace ~f:(fun index (e : Event.t) ->
      let vc = Hb.step hb e in
      match e.op with
      | Event.Call a ->
          let st = state_of a.Action.obj in
          let points = Repr.eta dict_repr a in
          (* Phase 1: full-VC conflict checks. *)
          List.iter
            (fun pt ->
              List.iter
                (fun pt' ->
                  match Point.Tbl.find_opt st pt' with
                  | Some (c, ltid) when not (Vclock.leq c vc) ->
                      reports := (index, pt, pt', ltid) :: !reports
                  | _ -> ())
                (Repr.conflicts dict_repr pt))
            points;
          (* Phase 2: join the action's clock into every touched entry. *)
          List.iter
            (fun pt ->
              match Point.Tbl.find_opt st pt with
              | Some (c, _) ->
                  Vclock.join_into ~into:c vc;
                  Point.Tbl.replace st pt (c, e.tid)
              | None -> Point.Tbl.replace st pt (Vclock.copy vc, e.tid))
            points
      | _ -> ());
  List.rev !reports

(* The epoch-adaptive detector reports the exact same race set as the
   full-VC reference: same indices, same points, same prior thread. *)
let epoch_adaptive_exact =
  qcheck ~count:500 "epoch-adaptive Rd2 == full-VC reference"
    (Generators.dict_trace ~threads:4 ~objects:2 ~len:60) (fun trace ->
      let d, _ = run_rd2 ~mode:`Constant trace in
      let adaptive =
        List.map
          (fun (r : Report.t) ->
            ( r.Report.index,
              r.Report.point,
              r.Report.conflicting,
              Option.map fst r.Report.prior ))
          (Rd2.races d)
      in
      let desc p =
        match (p : Point.t) with
        | Point.Ds id -> Repr.shape_desc dict_repr id
        | Point.Keyed (id, v) ->
            Printf.sprintf "%s[%s]" (Repr.shape_desc dict_repr id)
              (Value.to_string v)
      in
      let reference =
        List.map
          (fun (index, pt, pt', ltid) -> (index, desc pt, desc pt', Some ltid))
          (run_ref_rd2 trace)
      in
      List.sort compare adaptive = List.sort compare reference)

(* A thread re-invoking at an unchanged clock with no interference hits
   the same-epoch fast path; the hit is counted and lookups are saved. *)
let same_epoch_fast_path () =
  let src =
    "T0 fork T1\n\
     T0 call o.size() / 0\n\
     T0 call o.size() / 0\n\
     T0 call o.size() / 0\n"
  in
  let trace = Result.get_ok (Trace_text.parse src) in
  let d, events = run_rd2 ~mode:`Constant trace in
  Alcotest.(check (list int)) "no races" [] events;
  let s = Rd2.stats d in
  Alcotest.(check int) "two same-epoch hits" 2 s.Rd2.same_epoch;
  (* Only the first size() pays its conflict lookups. *)
  Alcotest.(check bool) "lookups saved" true (s.Rd2.lookups < 3 * 2)

(* Theorem 5.1: RD2 (both modes) and the direct detector agree on the set
   of events at which a race is reported. *)
let equivalence =
  qcheck ~count:500 "Rd2 == Rd2-linear == Direct per event (Theorem 5.1)"
    (Generators.dict_trace ~threads:4 ~objects:2 ~len:60) (fun trace ->
      let _, constant = run_rd2 ~mode:`Constant trace in
      let _, linear = run_rd2 ~mode:`Linear trace in
      let _, direct = run_direct trace in
      constant = linear && constant = direct)

(* The constant-mode lookup count per action is bounded by
   eta * max_conflicts, independent of history; the direct detector's
   grows linearly. *)
let lookup_bounds =
  qcheck ~count:100 "constant-mode lookups are O(1) per action"
    (Generators.dict_trace ~threads:4 ~objects:1 ~len:200) (fun trace ->
      let d, _ = run_rd2 ~mode:`Constant trace in
      let stats = Rd2.stats d in
      (* eta <= 2 points, each with <= 2 conflicts. *)
      stats.Rd2.actions = 0 || stats.Rd2.lookups <= 4 * stats.Rd2.actions)

let stats_monotone =
  qcheck ~count:50 "direct lookups grow quadratically-ish"
    (Generators.dict_trace ~threads:3 ~objects:1 ~len:100) (fun trace ->
      let d, _ = run_direct trace in
      let stats = Direct.stats d in
      let n = stats.Direct.actions in
      (* Exactly n*(n-1)/2 pairwise checks for a single object. *)
      stats.Direct.lookups = n * (n - 1) / 2)

let suite =
  ( "detector",
    [
      Alcotest.test_case "Fig 3 example" `Quick fig3;
      Alcotest.test_case "Fig 3 without joinall" `Quick fig3_no_join;
      Alcotest.test_case "overwrite vs size commutes" `Quick overwrite_vs_size;
      Alcotest.test_case "program order suppresses races" `Quick ordered_no_race;
      Alcotest.test_case "lock protection" `Quick lock_protection;
      Alcotest.test_case "release_object" `Quick release_object;
      Alcotest.test_case "unmonitored objects ignored" `Quick
        unmonitored_objects_ignored;
      Alcotest.test_case "same-epoch fast path" `Quick same_epoch_fast_path;
      epoch_adaptive_exact;
      equivalence;
      lookup_bounds;
      stats_monotone;
    ] )
