(* The degradation ladder end to end: tier decisions, spill admission
   with catch-up race-set identity, shedding only on memory-budget
   exhaustion, the stall watchdog, batched queue handoff, and the sync
   exchange deadline. *)

open Crd
module Server = Crd_server.Server
module Client = Crd_server.Client
module Proto = Crd_server.Proto
module Journal = Crd_server.Journal
module Overload = Crd_server.Overload
module Bqueue = Crd_server.Bqueue
module W = Crd_workloads

let sock_counter = ref 0

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let fresh_addr () =
  incr sock_counter;
  Server.Unix_sock
    (Filename.concat
       (Filename.get_temp_dir_name ())
       (Printf.sprintf "crd-ovl-%d-%d.sock" (Unix.getpid ()) !sock_counter))

let fresh_dir tag =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s-%d-%d" tag (Unix.getpid ())
         (incr sock_counter;
          !sock_counter))
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  dir

let with_server ?(f_config = Fun.id) k =
  let addr = fresh_addr () in
  let config = f_config (Server.default_config ~addr) in
  match Server.start config with
  | Error e -> Alcotest.failf "server start: %s" e
  | Ok server ->
      Fun.protect
        ~finally:(fun () -> ignore (Server.stop server))
        (fun () -> k ~addr ~server)

let with_faults spec k =
  (match Crd_fault.configure spec with
  | Ok () -> ()
  | Error e -> Alcotest.failf "configure %S: %s" spec e);
  Fun.protect ~finally:Crd_fault.reset k

let poll ?(tries = 400) ?(interval = 0.025) msg cond =
  let rec go n =
    if cond () then ()
    else if n = 0 then Alcotest.fail msg
    else begin
      Unix.sleepf interval;
      go (n - 1)
    end
  in
  go tries

let snitch_trace () =
  let trace = Trace.create () in
  ignore (W.Snitch.run ~seed:1L ~sink:(Trace.append trace) ());
  trace

let offline_races trace =
  let an =
    Analyzer.with_stdspecs
      ~config:
        {
          Analyzer.rd2 = `Constant;
          direct = false;
          fasttrack = false;
          djit = false;
          atomicity = false;
        }
      ()
  in
  Trace.iter_events trace ~f:(Analyzer.sink an);
  Analyzer.rd2_races an

let offline_race_lines trace =
  List.map (fun r -> Fmt.str "%a" Report.pp r) (offline_races trace)

let reply_race_lines reply =
  String.split_on_char '\n' reply
  |> List.filter (fun l ->
         String.length l >= 4 && String.equal (String.sub l 0 4) "comm")

let fingerprint_fold races =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun r ->
      let fp = Report.fingerprint r in
      Hashtbl.replace tbl fp
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl fp)))
    races;
  List.sort compare (Hashtbl.fold (fun fp c acc -> (fp, c) :: acc) tbl [])

let send_exn ~addr ?spec trace =
  match Client.send_trace ~addr ?spec trace with
  | Ok reply -> reply
  | Error e -> Alcotest.failf "send: %s" e

let encode_trace trace =
  let buf = Buffer.create 4096 in
  let enc = Wire.Encoder.create ~emit:(Buffer.add_string buf) () in
  Trace.iter_events trace ~f:(Wire.Encoder.event enc);
  Wire.Encoder.close enc;
  Buffer.contents buf

let metric_value dump name =
  String.split_on_char '\n' dump
  |> List.find_map (fun l ->
         match String.index_opt l ' ' with
         | Some i when String.sub l 0 i = name ->
             int_of_string_opt (String.sub l (i + 1) (String.length l - i - 1))
         | _ -> None)

let read_file path = In_channel.with_open_bin path In_channel.input_all
let g_queue = Crd_obs.gauge "mem_queue_bytes"
let g_intern = Crd_obs.gauge "mem_intern_bytes"

(* ------------------------------------------------------------------ *)
(* Tier decisions                                                      *)
(* ------------------------------------------------------------------ *)

(* The ladder as a pure decision table: spill needs both busy workers
   and a backlog at the watermark, hysteresis holds spill until the
   backlog has really drained, and only the memory budget sheds. *)
let tier_ladder () =
  let base = Overload.mem_used () in
  let ov =
    Overload.create
      {
        Overload.memory_budget = base + 4096;
        spill_watermark = 4;
        stall_timeout = 0.;
      }
  in
  let check msg expect ~pending ~active =
    Alcotest.(check string)
      msg
      (Overload.tier_name expect)
      (Overload.tier_name (Overload.evaluate ov ~pending ~active ~workers:2))
  in
  check "idle is normal" Overload.Normal ~pending:0 ~active:0;
  check "backlog with a free worker stays normal" Overload.Normal ~pending:5
    ~active:1;
  check "busy workers below watermark stay normal" Overload.Normal ~pending:3
    ~active:2;
  check "busy workers at watermark spill" Overload.Spill ~pending:4 ~active:2;
  check "hysteresis: backlog above half holds spill" Overload.Spill ~pending:3
    ~active:1;
  check "hysteresis: busy workers hold spill" Overload.Spill ~pending:0
    ~active:2;
  check "drained backlog with a free worker recovers" Overload.Normal
    ~pending:1 ~active:1;
  let charge = 8192 in
  Fun.protect
    ~finally:(fun () -> Crd_obs.Gauge.add g_queue (-charge))
    (fun () ->
      Crd_obs.Gauge.add g_queue charge;
      check "memory budget exhaustion sheds" Overload.Shed ~pending:0 ~active:0);
  check "released memory recovers" Overload.Normal ~pending:0 ~active:0

(* ------------------------------------------------------------------ *)
(* Batched queue handoff                                               *)
(* ------------------------------------------------------------------ *)

let bqueue_batching () =
  let base = Crd_obs.Gauge.get g_queue in
  let q = Bqueue.create ~weight:String.length ~capacity:32 () in
  let items = Array.init 20 (fun i -> Printf.sprintf "item-%02d" i) in
  let weight = Array.fold_left (fun a s -> a + String.length s) 0 items in
  Alcotest.(check int)
    "push_slice admits the whole slice" 20
    (Bqueue.push_slice q items 0 20);
  Alcotest.(check int)
    "slice weight accounted" (base + weight)
    (Crd_obs.Gauge.get g_queue);
  let b1 = Bqueue.pop_batch q ~max:8 in
  Alcotest.(check (array string))
    "first batch in order" (Array.sub items 0 8) b1;
  let b2 = Bqueue.pop_batch q ~max:100 in
  Alcotest.(check (array string))
    "second batch drains the rest" (Array.sub items 8 12) b2;
  Alcotest.(check int)
    "drained weight released" base
    (Crd_obs.Gauge.get g_queue);
  Alcotest.(check bool)
    "batch sizes observed" true
    (contains (Crd_obs.dump ()) "bqueue_batch_size");
  (* error path: a queue abandoned with items still in it must return
     their accounted bytes *)
  Alcotest.(check int) "refill" 5 (Bqueue.push_slice q items 0 5);
  Alcotest.(check int) "discard count" 5 (Bqueue.discard q);
  Alcotest.(check int)
    "discard releases weight" base
    (Crd_obs.Gauge.get g_queue);
  Bqueue.close q;
  Alcotest.(check (array string))
    "closed and drained pops empty" [||]
    (Bqueue.pop_batch q ~max:8)

(* ------------------------------------------------------------------ *)
(* HEALTH probe                                                        *)
(* ------------------------------------------------------------------ *)

let health_probe () =
  with_server (fun ~addr ~server ->
      let path = match addr with Server.Unix_sock p -> p | _ -> assert false in
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd (Unix.ADDR_UNIX path);
          Proto.write_all fd "HEALTH\n";
          let line = Proto.read_to_eof fd in
          List.iter
            (fun needle ->
              Alcotest.(check bool)
                (Printf.sprintf "health line carries %s" needle)
                true (contains line needle))
            [
              "HEALTH tier=normal"; "mem_used="; "mem_budget=";
              "spill_backlog="; "stalls=";
            ]);
      (* probes are not sessions and must not skew the stats *)
      Alcotest.(check int) "no session recorded" 0
        (Server.stats server).Server.sessions)

(* ------------------------------------------------------------------ *)
(* Spill tier: deterministic admission, catch-up identity              *)
(* ------------------------------------------------------------------ *)

(* With one worker pinned and one session already pending, the next
   connection is tagged spill at admission. Its client gets an
   immediate ack (races deferred); the catch-up drainer then replays
   the committed journal and the race set — report file and racedb
   fold — is identical to the offline analyzer's. *)
let spill_catchup_identity () =
  let trace = snitch_trace () in
  let expected_lines = offline_race_lines trace in
  let expected_fold = fingerprint_fold (offline_races trace) in
  Alcotest.(check bool)
    "snitch races exist" true
    (List.length expected_lines > 0);
  let jdir = fresh_dir "crd-ovl-spill-j" in
  let dbdir = fresh_dir "crd-ovl-spill-db" in
  let q0 = Crd_obs.Gauge.get g_queue and i0 = Crd_obs.Gauge.get g_intern in
  with_server
    ~f_config:(fun c ->
      {
        c with
        Server.workers = 1;
        spill_watermark = 1;
        journal = Some jdir;
        racedb = Some dbdir;
      })
    (fun ~addr ~server ->
      let path = match addr with Server.Unix_sock p -> p | _ -> assert false in
      let conn () =
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX path);
        fd
      in
      (* c1 pins the lone worker (blocked reading its preamble)... *)
      let c1 = conn () in
      poll "worker never picked up the pin" (fun () ->
          match metric_value (Crd_obs.dump ()) "server_sessions_active" with
          | Some v -> v >= 1
          | None -> false);
      (* ...c2 is admitted normal and waits (pending = 1)... *)
      let spill0 =
        Option.value ~default:0
          (metric_value (Crd_obs.dump ()) "overload_to_spill_total")
      in
      let c2 = conn () in
      (* ...so c3 — accepted after c2 by the single accept loop — is
         evaluated at pending >= watermark with every worker busy and
         tagged spill at admission, whatever happens afterwards. The
         pins stay open until the transition counter proves the tag:
         releasing them earlier could free the worker before c3 is
         even accepted. *)
      let c3 = conn () in
      poll "c3 never admitted on the spill tier" (fun () ->
          match metric_value (Crd_obs.dump ()) "overload_to_spill_total" with
          | Some v -> v > spill0
          | None -> false);
      Fun.protect
        ~finally:(fun () ->
          List.iter
            (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
            [ c1; c2; c3 ])
        (fun () ->
          Proto.send_handshake c3 ~nonce:"spill1" ~spec:"std" ();
          (* release the worker; it burns through the two dead pins and
             then serves c3 on the spill path *)
          List.iter
            (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
            [ c1; c2 ];
          Proto.write_all c3 (encode_trace trace);
          (match Proto.read_handshake_reply c3 with
          | Ok Proto.Accepted -> ()
          | Ok _ | Error _ -> Alcotest.fail "spill handshake not accepted");
          let reply = Proto.read_to_eof c3 in
          Alcotest.(check bool)
            (Printf.sprintf "spill ack defers analysis (%s)" reply)
            true
            (contains reply "spilled: analysis deferred"
            && contains reply "spilled=1" && contains reply "races=0");
          Alcotest.(check bool)
            "spill ack counts the events" true
            (contains reply
               (Printf.sprintf "events=%d" (Trace.length trace))));
      poll "catch-up never drained the segment" (fun () ->
          (Server.stats server).Server.caught_up >= 1);
      let st = Server.stats server in
      Alcotest.(check int) "one spilled session" 1 st.Server.spilled;
      Alcotest.(check int) "one caught-up segment" 1 st.Server.caught_up;
      Alcotest.(check int)
        "spilled events counted" (Trace.length trace) st.Server.events;
      Alcotest.(check int)
        "catch-up races counted"
        (List.length expected_lines)
        st.Server.races;
      Alcotest.(check int)
        "two dead pins, no spill errors" 2 st.Server.errors;
      (* the backlog gauges move in the drainer's finally, a beat after
         the stats row *)
      poll "spill backlog never drained" (fun () ->
          Overload.spill_backlog () = 0 && Overload.spill_bytes () = 0));
  (* the catch-up report carries exactly the offline race lines *)
  let report = read_file (Filename.concat jdir "spill1.report") in
  Alcotest.(check (list string))
    "catch-up races = offline races" expected_lines (reply_race_lines report);
  (* ...and the racedb fold matches too (published under the session
     nonce, so a restart replay would dedup against it) *)
  let es = (Result.get_ok (Crd_racedb.Db.load dbdir)).Crd_racedb.Db.v_entries in
  Alcotest.(check (list (pair int64 int)))
    "racedb fold = offline fold" expected_fold
    (List.sort compare
       (List.map
          (fun (e : Crd_racedb.Entry.t) ->
            (e.Crd_racedb.Entry.fingerprint, Crd_racedb.Entry.count e))
          es));
  (* memory accounting returns to baseline once everything drained *)
  Alcotest.(check int) "mem_queue_bytes back to baseline" q0
    (Crd_obs.Gauge.get g_queue);
  Alcotest.(check int) "mem_intern_bytes back to baseline" i0
    (Crd_obs.Gauge.get g_intern)

(* ------------------------------------------------------------------ *)
(* Shed tier: memory budget only                                       *)
(* ------------------------------------------------------------------ *)

let shed_on_memory_budget () =
  let budget = Overload.mem_used () + 1024 in
  let charge = budget + 4096 in
  with_server
    ~f_config:(fun c ->
      { c with Server.memory_budget = budget; retry_after_ms = 321 })
    (fun ~addr ~server ->
      let path = match addr with Server.Unix_sock p -> p | _ -> assert false in
      Fun.protect
        ~finally:(fun () -> Crd_obs.Gauge.add g_queue (-charge))
        (fun () ->
          Crd_obs.Gauge.add g_queue charge;
          let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          Fun.protect
            ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () ->
              Unix.connect fd (Unix.ADDR_UNIX path);
              match Proto.read_handshake_reply fd with
              | Ok (Proto.Busy ms) ->
                  Alcotest.(check int) "retry-after hint" 321 ms
              | Ok Proto.Accepted -> Alcotest.fail "expected BUSY, got accept"
              | Ok (Proto.Rejected m) ->
                  Alcotest.failf "expected BUSY, got reject %s" m
              | Error e -> Alcotest.failf "shed reply: %s" e));
      (* budget released: admission recovers without a restart *)
      let trace = snitch_trace () in
      let reply = send_exn ~addr trace in
      Alcotest.(check bool)
        "session served after release" true
        (String.length reply >= 2 && String.equal (String.sub reply 0 2) "OK");
      let st = Server.stats server in
      Alcotest.(check int) "one shed connection" 1 st.Server.busy;
      Alcotest.(check int) "shed is not a session" 1 st.Server.sessions)

(* ------------------------------------------------------------------ *)
(* Stall watchdog                                                      *)
(* ------------------------------------------------------------------ *)

(* A worker wedged by the [worker_stall] fault is recycled by the
   watchdog: its client gets a retryable ERR (and succeeds on retry
   against the respawned worker), and the stall is counted. *)
let watchdog_recycles_stall () =
  let trace = snitch_trace () in
  let expected = offline_race_lines trace in
  with_faults "seed=11,worker_stall=once" (fun () ->
      with_server
        ~f_config:(fun c -> { c with Server.workers = 1; stall_timeout = 0.3 })
        (fun ~addr ~server ->
          match Client.send_trace ~addr ~retries:1 ~backoff:0.05 trace with
          | Error e -> Alcotest.failf "retry never recovered: %s" e
          | Ok reply ->
              Alcotest.(check (list string))
                "races after recycle = offline races" expected
                (reply_race_lines reply);
              poll "crash never counted" (fun () ->
                  (Server.stats server).Server.worker_crashes >= 1);
              let st = Server.stats server in
              Alcotest.(check int) "one stall" 1 st.Server.stalls;
              Alcotest.(check int) "one worker recycled" 1
                st.Server.worker_crashes;
              Alcotest.(check int) "stalled session is an error" 1
                st.Server.errors;
              Alcotest.(check int) "both attempts counted" 2 st.Server.sessions))

(* ------------------------------------------------------------------ *)
(* Sync exchange deadline                                              *)
(* ------------------------------------------------------------------ *)

(* A black-hole peer that drips one varint continuation byte per tick:
   every byte lands inside the per-read timeout (which resets on each
   byte), so only the whole-exchange deadline can end the exchange. *)
let sync_deadline_drip () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let stop = Atomic.make false in
  let dripper =
    Thread.create
      (fun () ->
        let buf = Bytes.create 4096 in
        (* absorb the client's hello, then drip *)
        (try ignore (Unix.read b buf 0 4096) with Unix.Unix_error _ -> ());
        try
          while not (Atomic.get stop) do
            ignore (Unix.write b (Bytes.make 1 '\x80') 0 1);
            Unix.sleepf 0.1
          done
        with Unix.Unix_error _ -> ())
      ()
  in
  let dir = fresh_dir "crd-ovl-sync-dl" in
  let db = Result.get_ok (Crd_racedb.Db.open_db dir) in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      (try Unix.close a with Unix.Unix_error _ -> ());
      Thread.join dripper;
      (try Unix.close b with Unix.Unix_error _ -> ());
      Crd_racedb.Db.close db)
    (fun () ->
      let t0 = Unix.gettimeofday () in
      match Crd_sync.client ~timeout:5. ~deadline:0.4 a db with
      | Ok s ->
          Alcotest.failf "drip peer completed an exchange: %a"
            Crd_sync.pp_summary s
      | Error e ->
          let dt = Unix.gettimeofday () -. t0 in
          Alcotest.(check bool)
            (Printf.sprintf "deadline error (%s)" e)
            true (contains e "deadline");
          Alcotest.(check bool)
            (Printf.sprintf "deadline fired promptly (%.2fs)" dt)
            true
            (dt < 3.0))

(* ------------------------------------------------------------------ *)
(* Bounded under sustained over-capacity                                *)
(* ------------------------------------------------------------------ *)

(* 4 concurrent clients against 1 worker with a tiny watermark: every
   client is acked OK (spilled or live), no evidence is dropped — the
   race total converges to 4x the offline set once catch-up drains —
   and the accounted memory returns to baseline. *)
let overcapacity_bounded () =
  let trace = snitch_trace () in
  let expected_races = List.length (offline_races trace) in
  let jdir = fresh_dir "crd-ovl-cap-j" in
  let n = 4 in
  let q0 = Crd_obs.Gauge.get g_queue and i0 = Crd_obs.Gauge.get g_intern in
  with_server
    ~f_config:(fun c ->
      {
        c with
        Server.workers = 1;
        queue_capacity = 64;
        spill_watermark = 1;
        journal = Some jdir;
      })
    (fun ~addr ~server ->
      let replies = Array.make n (Error "never ran") in
      let threads =
        List.init n (fun i ->
            Thread.create
              (fun () -> replies.(i) <- Client.send_trace ~addr trace)
              ())
      in
      List.iter Thread.join threads;
      Array.iteri
        (fun i r ->
          match r with
          | Error e -> Alcotest.failf "client %d: %s" i e
          | Ok reply ->
              Alcotest.(check bool)
                (Printf.sprintf "client %d acked" i)
                true
                (String.length reply >= 2
                && String.equal (String.sub reply 0 2) "OK"))
        replies;
      poll "race total never converged" (fun () ->
          let st = Server.stats server in
          st.Server.caught_up = st.Server.spilled
          && st.Server.races = n * expected_races);
      let st = Server.stats server in
      Alcotest.(check int) "no errors" 0 st.Server.errors;
      Alcotest.(check int) "no sheds" 0 st.Server.busy;
      Alcotest.(check int) "all sessions counted" n st.Server.sessions;
      Alcotest.(check int)
        "all events counted"
        (n * Trace.length trace)
        st.Server.events;
      (* stats caught_up ticks inside catch-up; the backlog gauge drops
         a beat later in its cleanup — poll, don't assert instantly. *)
      poll "spill backlog never drained" (fun () ->
          Overload.spill_backlog () = 0 && Overload.spill_bytes () = 0));
  Alcotest.(check int) "mem_queue_bytes back to baseline" q0
    (Crd_obs.Gauge.get g_queue);
  Alcotest.(check int) "mem_intern_bytes back to baseline" i0
    (Crd_obs.Gauge.get g_intern)

let suite =
  ( "overload",
    [
      Alcotest.test_case "tier ladder decisions" `Quick tier_ladder;
      Alcotest.test_case "bqueue slice batching" `Quick bqueue_batching;
      Alcotest.test_case "HEALTH probe" `Quick health_probe;
      Alcotest.test_case "spill admission, catch-up identity" `Quick
        spill_catchup_identity;
      Alcotest.test_case "shed only on memory budget" `Quick
        shed_on_memory_budget;
      Alcotest.test_case "watchdog recycles a stalled worker" `Quick
        watchdog_recycles_stall;
      Alcotest.test_case "sync deadline beats a drip peer" `Quick
        sync_deadline_drip;
      Alcotest.test_case "bounded under 2x over-capacity" `Quick
        overcapacity_bounded;
    ] )
