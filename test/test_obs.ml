(* Unit tests for the Crd_obs observability layer: metric arithmetic,
   registry find-or-create semantics, the Prometheus text dump, and the
   clamped clock. All tests use private registries so they cannot
   interfere with the process-wide [Crd_obs.default] the server tests
   scrape. *)

module Obs = Crd_obs

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let counter_arithmetic () =
  let r = Obs.Registry.create () in
  let c = Obs.Registry.counter r "c_total" in
  Obs.Counter.incr c;
  Obs.Counter.add c 41;
  Obs.Counter.add c (-100);
  Alcotest.(check int) "negative adds ignored" 42 (Obs.Counter.get c)

let gauge_high_water () =
  let r = Obs.Registry.create () in
  let g = Obs.Registry.gauge r "g" in
  Obs.Gauge.incr g;
  Obs.Gauge.incr g;
  Obs.Gauge.decr g;
  Alcotest.(check int) "incr/decr" 1 (Obs.Gauge.get g);
  Obs.Gauge.set_max g 7;
  Obs.Gauge.set_max g 3;
  Alcotest.(check int) "set_max keeps the high water" 7 (Obs.Gauge.get g)

let histogram_counts () =
  let r = Obs.Registry.create () in
  let h = Obs.Registry.histogram ~buckets:[| 0.1; 1.0 |] r "h_seconds" in
  List.iter (Obs.Histogram.observe h) [ 0.05; 0.5; 0.5; 5.0; -1.0 ];
  Alcotest.(check int) "count" 5 (Obs.Histogram.count h);
  (* -1.0 clamps to 0; sum = 0.05 + 0.5 + 0.5 + 5.0 *)
  Alcotest.(check bool)
    "sum" true
    (Float.abs (Obs.Histogram.sum h -. 6.05) < 1e-9);
  let dump = Obs.Registry.dump r in
  let has s = contains dump s in
  Alcotest.(check bool) "le=0.1 bucket" true (has "h_seconds_bucket{le=\"0.1\"} 2");
  Alcotest.(check bool) "le=1 bucket" true (has "h_seconds_bucket{le=\"1\"} 4");
  Alcotest.(check bool) "+Inf bucket" true (has "h_seconds_bucket{le=\"+Inf\"} 5");
  Alcotest.(check bool) "count sample" true (has "h_seconds_count 5")

let registry_find_or_create () =
  let r = Obs.Registry.create () in
  let a = Obs.Registry.counter r "same" in
  let b = Obs.Registry.counter r "same" in
  Obs.Counter.incr a;
  Obs.Counter.incr b;
  Alcotest.(check int) "same underlying counter" 2 (Obs.Counter.get a);
  (match Obs.Registry.gauge r "same" with
  | (_ : Obs.Gauge.t) -> Alcotest.fail "kind clash not rejected"
  | exception Invalid_argument _ -> ());
  match Obs.Registry.histogram ~buckets:[| 2.0; 1.0 |] r "unsorted" with
  | (_ : Obs.Histogram.t) -> Alcotest.fail "unsorted buckets not rejected"
  | exception Invalid_argument _ -> ()

let dump_shape () =
  let r = Obs.Registry.create () in
  let c = Obs.Registry.counter ~help:"Things counted" r "b_total" in
  let g = Obs.Registry.gauge r "a" in
  Obs.Counter.add c 3;
  Obs.Gauge.set g 9;
  let dump = Obs.Registry.dump r in
  (* sorted by name, HELP/TYPE comments, plain samples *)
  let lines = String.split_on_char '\n' dump in
  Alcotest.(check bool)
    "gauge sample" true
    (List.mem "a 9" lines);
  Alcotest.(check bool)
    "counter sample" true
    (List.mem "b_total 3" lines);
  Alcotest.(check bool)
    "HELP line" true
    (List.mem "# HELP b_total Things counted" lines);
  Alcotest.(check bool)
    "TYPE line" true
    (List.mem "# TYPE b_total counter" lines);
  let idx s =
    let rec go i = function
      | [] -> Alcotest.failf "line %S missing from dump" s
      | l :: rest -> if String.equal l s then i else go (i + 1) rest
    in
    go 0 lines
  in
  Alcotest.(check bool) "sorted by name" true (idx "a 9" < idx "b_total 3")

let clock_never_steps_back () =
  let prev = ref (Obs.now_s ()) in
  for _ = 1 to 10_000 do
    let t = Obs.now_s () in
    if t < !prev then Alcotest.failf "clock stepped back: %f < %f" t !prev;
    prev := t
  done

let time_observes_on_raise () =
  let r = Obs.Registry.create () in
  let h = Obs.Registry.histogram r "t_seconds" in
  (match Obs.time h (fun () -> failwith "boom") with
  | () -> Alcotest.fail "exception swallowed"
  | exception Failure _ -> ());
  ignore (Obs.time h (fun () -> ()));
  Alcotest.(check int) "both runs observed" 2 (Obs.Histogram.count h)

let log_levels () =
  let ok s expect =
    match Obs.Log.level_of_string s with
    | Ok l -> Alcotest.(check bool) s true (l = expect)
    | Error e -> Alcotest.failf "%s rejected: %s" s e
  in
  ok "off" None;
  ok "none" None;
  ok "error" (Some Obs.Log.Error);
  ok "warn" (Some Obs.Log.Warn);
  ok "warning" (Some Obs.Log.Warn);
  ok "info" (Some Obs.Log.Info);
  ok "debug" (Some Obs.Log.Debug);
  (match Obs.Log.level_of_string "loud" with
  | Ok _ -> Alcotest.fail "bad level accepted"
  | Error _ -> ());
  Alcotest.(check bool) "off by default" false (Obs.Log.enabled Obs.Log.Error)

let suite =
  ( "obs",
    [
      Alcotest.test_case "counter arithmetic" `Quick counter_arithmetic;
      Alcotest.test_case "gauge high water" `Quick gauge_high_water;
      Alcotest.test_case "histogram buckets and sum" `Quick histogram_counts;
      Alcotest.test_case "registry find-or-create" `Quick
        registry_find_or_create;
      Alcotest.test_case "dump shape" `Quick dump_shape;
      Alcotest.test_case "clock never steps back" `Quick clock_never_steps_back;
      Alcotest.test_case "time observes on raise" `Quick time_observes_on_raise;
      Alcotest.test_case "log levels" `Quick log_levels;
    ] )
