open Crd

let fig1 ~hosts sink =
  Sched.run ~seed:42L ~sink (fun () ->
      let o = Monitored.Dict.create ~name:"dictionary:o" () in
      List.iteri
        (fun i host ->
          ignore
            (Sched.fork (fun () ->
                 ignore (Monitored.Dict.put o (Value.Str host) (Value.Ref i)))))
        hosts;
      Sched.join_all ();
      ignore (Monitored.Dict.size o))

let end_to_end_fig1 () =
  let an = Analyzer.with_stdspecs () in
  fig1 ~hosts:[ "a.com"; "a.com"; "b.com" ] (Analyzer.sink an);
  Alcotest.(check int) "one commutativity race" 1
    (List.length (Analyzer.rd2_races an));
  Alcotest.(check int) "one racing object" 1
    (Report.distinct_objects (Analyzer.rd2_races an))

let end_to_end_clean () =
  let an = Analyzer.with_stdspecs () in
  fig1 ~hosts:[ "a.com"; "b.com"; "c.com" ] (Analyzer.sink an);
  Alcotest.(check int) "no races" 0 (List.length (Analyzer.rd2_races an))

let naming_convention () =
  let an = Analyzer.with_stdspecs () in
  (* An object with an unknown prefix is not monitored. *)
  Sched.run ~sink:(Analyzer.sink an) (fun () ->
      let o = Monitored.Dict.create ~name:"unknown:thing" () in
      ignore (Sched.fork (fun () -> ignore (Monitored.Dict.put o (Value.Int 1) (Value.Int 2))));
      ignore (Monitored.Dict.put o (Value.Int 1) (Value.Int 3)));
  Alcotest.(check int) "not monitored" 0 (List.length (Analyzer.rd2_races an))

let config_off () =
  let an =
    Analyzer.with_stdspecs
      ~config:{ Analyzer.rd2 = `Off; direct = false; fasttrack = false; djit = false; atomicity = false }
      ()
  in
  fig1 ~hosts:[ "a.com"; "a.com" ] (Analyzer.sink an);
  Alcotest.(check int) "rd2 off" 0 (List.length (Analyzer.rd2_races an));
  Alcotest.(check bool) "no stats" true (Analyzer.rd2_stats an = None)

let direct_and_linear_agree () =
  let run config =
    let an = Analyzer.with_stdspecs ~config () in
    fig1 ~hosts:[ "a.com"; "a.com"; "b.com"; "b.com" ] (Analyzer.sink an);
    an
  in
  let base = { Analyzer.rd2 = `Constant; direct = true; fasttrack = false; djit = false; atomicity = false } in
  let an1 = run base in
  let an2 = run { base with Analyzer.rd2 = `Linear } in
  let indices races = List.sort_uniq compare (List.map (fun (r : Report.t) -> r.index) races) in
  Alcotest.(check (list int)) "constant = direct"
    (indices (Analyzer.rd2_races an1))
    (indices (Analyzer.direct_races an1));
  Alcotest.(check (list int)) "constant = linear"
    (indices (Analyzer.rd2_races an1))
    (indices (Analyzer.rd2_races an2))

let djit_mirrors_fasttrack () =
  let an =
    Analyzer.with_stdspecs
      ~config:{ Analyzer.rd2 = `Off; direct = false; fasttrack = true; djit = true; atomicity = false }
      ()
  in
  Sched.run ~sink:(Analyzer.sink an) (fun () ->
      let c = Monitored.Shared.create ~name:"c" 0 in
      ignore (Sched.fork (fun () -> Monitored.Shared.update c succ));
      Monitored.Shared.update c succ;
      Sched.join_all ());
  Alcotest.(check bool) "fasttrack found the update race" true
    (Analyzer.fasttrack_races an <> []);
  Alcotest.(check bool) "djit agrees it exists" true (Analyzer.djit_races an <> [])

let run_trace_from_text () =
  let trace =
    Result.get_ok
      (Trace_text.parse
         "T0 fork T1\n\
          T1 call dictionary.put(1, 2) / nil\n\
          T0 call dictionary.put(1, 3) / nil\n")
  in
  let an = Analyzer.with_stdspecs () in
  Analyzer.run_trace an trace;
  Alcotest.(check int) "events" 3 (Analyzer.events an);
  Alcotest.(check int) "race found" 1 (List.length (Analyzer.rd2_races an))

let bad_spec_surfaces () =
  (* A non-ECL spec must fail loudly when RD2 needs it. *)
  let w = Signature.make ~meth:"write" ~args:[ "v" ] () in
  let r = Signature.make ~meth:"read" ~rets:[ "v" ] () in
  let phi =
    Formula.Atom
      {
        Atom.pred = Atom.Eq;
        lhs = Atom.Var { Atom.side = Atom.Side.Fst; slot = 0; name = "v1" };
        rhs = Atom.Var { Atom.side = Atom.Side.Snd; slot = 0; name = "v2" };
      }
  in
  let spec =
    Result.get_ok (Spec.make ~name:"reg" ~methods:[ w; r ] [ ("write", "read", phi) ])
  in
  let an =
    Result.get_ok
      (Analyzer.create
         ~config:{ Analyzer.rd2 = `Constant; direct = false; fasttrack = false; djit = false; atomicity = false }
         ~spec_for:(fun _ -> Some spec)
         ())
  in
  let obj = Obj_id.make ~name:"reg" 0 in
  let ev =
    Event.call Tid.main (Action.make ~obj ~meth:"write" ~args:[ Value.Int 1 ] ())
  in
  match Analyzer.step an ev with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "expected a translation failure"

let summary_prints () =
  let an = Analyzer.with_stdspecs () in
  fig1 ~hosts:[ "a.com"; "a.com" ] (Analyzer.sink an);
  let s = Fmt.str "%a" Analyzer.pp_summary an in
  Alcotest.(check bool) "mentions rd2" true
    (String.length s > 0
    && String.split_on_char '\n' s
       |> List.exists (fun l -> String.length l >= 4 && String.sub l 0 4 = "rd2:"))

(* Sharded offline analysis is exact: on recorded workload traces the
   merged per-shard reports equal the sequential shard run, which equals
   the live analyzer, report for report (same order, same contents). *)
let sharded_matches_sequential () =
  let module W = Crd_workloads in
  let record f =
    let trace = Trace.create () in
    f (Trace.append trace);
    trace
  in
  let traces =
    [
      ( "circuit",
        record (fun sink ->
            ignore (W.Polepos.run (List.hd W.Polepos.all) ~seed:1L ~scale:1 ~sink ())) );
      ("snitch", record (fun sink -> ignore (W.Snitch.run ~seed:1L ~sink ())));
    ]
  in
  let config =
    { Analyzer.rd2 = `Constant; direct = false; fasttrack = true; djit = false; atomicity = false }
  in
  List.iter
    (fun (name, trace) ->
      let an = Analyzer.with_stdspecs ~config () in
      Analyzer.run_trace an trace;
      let seq = Result.get_ok (Shard.analyze_stdspecs ~jobs:1 ~config trace) in
      let par =
        Result.get_ok (Shard.analyze_stdspecs ~jobs:4 ~force:true ~config trace)
      in
      Alcotest.(check bool)
        (name ^ ": jobs=4 rd2 == jobs=1") true
        (par.Shard.rd2_reports = seq.Shard.rd2_reports);
      Alcotest.(check bool)
        (name ^ ": jobs=4 fasttrack == jobs=1") true
        (par.Shard.fasttrack_reports = seq.Shard.fasttrack_reports);
      Alcotest.(check bool)
        (name ^ ": sharded rd2 == live analyzer") true
        (seq.Shard.rd2_reports = Analyzer.rd2_races an);
      Alcotest.(check bool)
        (name ^ ": sharded fasttrack == live analyzer") true
        (seq.Shard.fasttrack_reports = Analyzer.fasttrack_races an);
      let races st = Option.map (fun (s : Rd2.stats) -> s.Rd2.races) st in
      Alcotest.(check (option int))
        (name ^ ": summed race stat matches") (races (Analyzer.rd2_stats an))
        (races par.Shard.rd2_stats))
    traces

let suite =
  ( "analyzer",
    [
      Alcotest.test_case "fig1 end-to-end" `Quick end_to_end_fig1;
      Alcotest.test_case "clean run" `Quick end_to_end_clean;
      Alcotest.test_case "naming convention" `Quick naming_convention;
      Alcotest.test_case "rd2 off" `Quick config_off;
      Alcotest.test_case "constant/linear/direct agree" `Quick
        direct_and_linear_agree;
      Alcotest.test_case "djit mirrors fasttrack" `Quick djit_mirrors_fasttrack;
      Alcotest.test_case "run_trace from text" `Quick run_trace_from_text;
      Alcotest.test_case "bad spec surfaces" `Quick bad_spec_surfaces;
      Alcotest.test_case "summary prints" `Quick summary_prints;
      Alcotest.test_case "sharded == sequential == live" `Quick
        sharded_matches_sequential;
    ] )
