(* Unit tests of the crash-safe journal lifecycle: append/commit/report
   file states, recovery listing, and truncation of uncommitted bytes. *)

module Journal = Crd_server.Journal

let counter = ref 0

let fresh_dir () =
  incr counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "crd-jtest-%d-%d" (Unix.getpid ()) !counter)
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  dir

let read_file path = In_channel.with_open_bin path In_channel.input_all

let roundtrip () =
  let dir = fresh_dir () in
  let j = Journal.start ~dir ~nonce:"a1" ~spec:"std" in
  Journal.append j "hello ";
  Journal.append j "world";
  Alcotest.(check (list string))
    "uncommitted journal is not recoverable" []
    (Journal.committed_unreported ~dir);
  Journal.commit j;
  Journal.close j;
  Alcotest.(check (list string))
    "committed journal is recoverable" [ "a1" ]
    (Journal.committed_unreported ~dir);
  (match Journal.read_committed ~dir ~nonce:"a1" with
  | Error e -> Alcotest.failf "read_committed: %s" e
  | Ok (bytes, spec) ->
      Alcotest.(check string) "bytes round-trip" "hello world" bytes;
      Alcotest.(check string) "spec round-trips" "std" spec);
  Journal.write_report ~dir ~nonce:"a1" "OK\n";
  Alcotest.(check (list string))
    "reported journal is done" []
    (Journal.committed_unreported ~dir)

let append_off_len () =
  let dir = fresh_dir () in
  let j = Journal.start ~dir ~nonce:"a2" ~spec:"std" in
  Journal.append j ~off:2 ~len:3 "xxabcyy";
  Journal.commit j;
  Journal.close j;
  match Journal.read_committed ~dir ~nonce:"a2" with
  | Error e -> Alcotest.failf "read_committed: %s" e
  | Ok (bytes, _) -> Alcotest.(check string) "sub-range appended" "abc" bytes

(* Bytes written after the commit marker (a crash mid-append on a
   retried session) must not leak into recovery. *)
let uncommitted_suffix_dropped () =
  let dir = fresh_dir () in
  let j = Journal.start ~dir ~nonce:"a3" ~spec:"custom" in
  Journal.append j "durable";
  Journal.commit j;
  Journal.append j "lost-tail";
  Journal.close j;
  match Journal.read_committed ~dir ~nonce:"a3" with
  | Error e -> Alcotest.failf "read_committed: %s" e
  | Ok (bytes, spec) ->
      Alcotest.(check string) "only committed prefix" "durable" bytes;
      Alcotest.(check string) "spec" "custom" spec

(* A retried session restarts its journal from byte 0 and clears any
   stale commit/report markers. *)
let restart_truncates () =
  let dir = fresh_dir () in
  let j = Journal.start ~dir ~nonce:"a4" ~spec:"std" in
  Journal.append j "first attempt";
  Journal.commit j;
  Journal.close j;
  Journal.write_report ~dir ~nonce:"a4" "OK\n";
  let j2 = Journal.start ~dir ~nonce:"a4" ~spec:"std" in
  Alcotest.(check bool)
    "stale report cleared" false
    (Sys.file_exists (Filename.concat dir "a4.report"));
  Alcotest.(check (list string))
    "stale commit cleared" []
    (Journal.committed_unreported ~dir);
  Journal.append j2 "retry";
  Journal.commit j2;
  Journal.close j2;
  match Journal.read_committed ~dir ~nonce:"a4" with
  | Error e -> Alcotest.failf "read_committed: %s" e
  | Ok (bytes, _) -> Alcotest.(check string) "retry bytes only" "retry" bytes

let short_data_is_an_error () =
  let dir = fresh_dir () in
  let j = Journal.start ~dir ~nonce:"a5" ~spec:"std" in
  Journal.append j "12345678";
  Journal.commit j;
  Journal.close j;
  (* Simulate data-file corruption: truncate below the committed size. *)
  Out_channel.with_open_bin
    (Filename.concat dir "a5.crdj")
    (fun oc -> Out_channel.output_string oc "1234");
  match Journal.read_committed ~dir ~nonce:"a5" with
  | Ok (bytes, _) -> Alcotest.failf "truncated journal read back %S" bytes
  | Error e ->
      Alcotest.(check bool)
        (Printf.sprintf "names the shortfall (%s)" e)
        true
        (String.length e > 0)

let commit_marker_format () =
  let dir = fresh_dir () in
  let j = Journal.start ~dir ~nonce:"a6" ~spec:"std" in
  Journal.append j "abc";
  Journal.commit j;
  Journal.close j;
  Alcotest.(check string)
    "marker is '<size> <spec>'" "3 std\n"
    (read_file (Filename.concat dir "a6.commit"))

let fault_point () =
  (match Crd_fault.configure "journal_append=nth:2" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "configure: %s" e);
  Fun.protect ~finally:Crd_fault.reset (fun () ->
      let dir = fresh_dir () in
      let j = Journal.start ~dir ~nonce:"a7" ~spec:"std" in
      Journal.append j "ok";
      (match Journal.append j "boom" with
      | () -> Alcotest.fail "second append should have faulted"
      | exception Crd_fault.Injected p ->
          Alcotest.(check string) "point name" "journal_append" p);
      Journal.append j "fine";
      Journal.commit j;
      Journal.close j;
      match Journal.read_committed ~dir ~nonce:"a7" with
      | Error e -> Alcotest.failf "read_committed: %s" e
      | Ok (bytes, _) ->
          (* The faulted append wrote nothing: injection happens before
             the write, exactly like a full-disk failure would. *)
          Alcotest.(check string) "faulted append skipped" "okfine" bytes)

let metric name =
  String.split_on_char '\n' (Crd_obs.dump ())
  |> List.find_map (fun l ->
         match String.index_opt l ' ' with
         | Some i when String.sub l 0 i = name ->
             int_of_string_opt (String.sub l (i + 1) (String.length l - i - 1))
         | _ -> None)
  |> Option.value ~default:0

let big_to_string b =
  String.init (Bigarray.Array1.dim b) (fun i -> Bigarray.Array1.get b i)

let append_bytes_off_len () =
  let dir = fresh_dir () in
  let j = Journal.start ~dir ~nonce:"b1" ~spec:"std" in
  Journal.append_bytes j ~off:2 ~len:3 (Bytes.of_string "xxabcyy");
  Journal.commit j;
  Journal.close j;
  match Journal.read_committed ~dir ~nonce:"b1" with
  | Error e -> Alcotest.failf "read_committed: %s" e
  | Ok (bytes, _) -> Alcotest.(check string) "sub-range appended" "abc" bytes

(* The mmap replay path must see exactly what read_committed sees — and
   nothing of a torn tail past the commit marker. *)
let map_committed_torn_tail () =
  let dir = fresh_dir () in
  let j = Journal.start ~dir ~nonce:"b2" ~spec:"custom" in
  Journal.append j "durable";
  Journal.commit j;
  Journal.append j "torn-tail";
  Journal.close j;
  let mmaps = metric "journal_mmap_total" in
  let mbytes = metric "journal_mmap_bytes_total" in
  match Journal.map_committed ~dir ~nonce:"b2" with
  | Error e -> Alcotest.failf "map_committed: %s" e
  | Ok (big, spec) ->
      Alcotest.(check string) "committed prefix only" "durable" (big_to_string big);
      Alcotest.(check string) "spec" "custom" spec;
      Alcotest.(check bool) "journal_mmap_total incremented" true
        (metric "journal_mmap_total" > mmaps);
      Alcotest.(check int) "journal_mmap_bytes_total counts the prefix"
        (mbytes + 7)
        (metric "journal_mmap_bytes_total")

(* With the journal_mmap fault armed, replay degrades to the read path
   and still returns the same bytes. *)
let map_committed_fallback () =
  (match Crd_fault.configure "journal_mmap=p:1.0" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "configure: %s" e);
  Fun.protect ~finally:Crd_fault.reset (fun () ->
      let dir = fresh_dir () in
      let j = Journal.start ~dir ~nonce:"b3" ~spec:"std" in
      Journal.append j "durable";
      Journal.commit j;
      Journal.close j;
      let falls = metric "journal_mmap_fallback_total" in
      match Journal.map_committed ~dir ~nonce:"b3" with
      | Error e -> Alcotest.failf "map_committed under fault: %s" e
      | Ok (big, _) ->
          Alcotest.(check string) "fallback serves the bytes" "durable"
            (big_to_string big);
          Alcotest.(check bool) "fallback counted" true
            (metric "journal_mmap_fallback_total" > falls))

let map_committed_short_data () =
  let dir = fresh_dir () in
  let j = Journal.start ~dir ~nonce:"b4" ~spec:"std" in
  Journal.append j "12345678";
  Journal.commit j;
  Journal.close j;
  Out_channel.with_open_bin
    (Filename.concat dir "b4.crdj")
    (fun oc -> Out_channel.output_string oc "1234");
  match Journal.map_committed ~dir ~nonce:"b4" with
  | Ok (big, _) ->
      Alcotest.failf "truncated journal mapped back %S" (big_to_string big)
  | Error e ->
      Alcotest.(check bool)
        (Printf.sprintf "names the shortfall (%s)" e)
        true
        (String.length e > 0)

let fresh_nonce_unique () =
  let a = Journal.fresh_nonce () and b = Journal.fresh_nonce () in
  Alcotest.(check bool) "distinct" true (not (String.equal a b));
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "%s is a valid protocol nonce" n)
        true
        (Crd_server.Proto.valid_nonce n))
    [ a; b ]

let suite =
  ( "journal",
    [
      Alcotest.test_case "append/commit/report roundtrip" `Quick roundtrip;
      Alcotest.test_case "append off/len" `Quick append_off_len;
      Alcotest.test_case "uncommitted suffix dropped" `Quick
        uncommitted_suffix_dropped;
      Alcotest.test_case "retry restarts from byte 0" `Quick restart_truncates;
      Alcotest.test_case "short data is an error" `Quick short_data_is_an_error;
      Alcotest.test_case "commit marker format" `Quick commit_marker_format;
      Alcotest.test_case "journal_append fault point" `Quick fault_point;
      Alcotest.test_case "append_bytes off/len" `Quick append_bytes_off_len;
      Alcotest.test_case "map_committed drops the torn tail" `Quick
        map_committed_torn_tail;
      Alcotest.test_case "map_committed falls back under fault" `Quick
        map_committed_fallback;
      Alcotest.test_case "map_committed short data is an error" `Quick
        map_committed_short_data;
      Alcotest.test_case "fresh nonces are valid and unique" `Quick
        fresh_nonce_unique;
    ] )
