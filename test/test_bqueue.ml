(* Unit tests for the bounded blocking queue underpinning session
   backpressure: FIFO order, the capacity bound actually blocking
   producers, and close waking everyone with the documented returns. *)

module Bqueue = Crd_server.Bqueue

let fifo_order () =
  let q = Bqueue.create ~capacity:8 () in
  List.iter (fun i -> assert (Bqueue.push q i)) [ 1; 2; 3; 4 ];
  Alcotest.(check int) "length" 4 (Bqueue.length q);
  let popped = List.init 4 (fun _ -> Option.get (Bqueue.pop q)) in
  Alcotest.(check (list int)) "FIFO" [ 1; 2; 3; 4 ] popped;
  Alcotest.(check int) "drained" 0 (Bqueue.length q)

let capacity_rejected () =
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Bqueue.create: capacity must be >= 1") (fun () ->
      ignore (Bqueue.create ~capacity:0 ()))

let close_semantics () =
  let q = Bqueue.create ~capacity:4 () in
  assert (Bqueue.push q "a");
  assert (Bqueue.push q "b");
  Bqueue.close q;
  Bqueue.close q (* idempotent *);
  Alcotest.(check bool) "push after close" false (Bqueue.push q "c");
  Alcotest.(check (option string)) "drain survives close" (Some "a")
    (Bqueue.pop q);
  Alcotest.(check (option string)) "drain survives close" (Some "b")
    (Bqueue.pop q);
  Alcotest.(check (option string)) "closed and drained" None (Bqueue.pop q)

(* A producer pushing past capacity must block until the consumer makes
   room; every element still arrives exactly once, in order. *)
let producer_blocks_at_capacity () =
  let n = 1000 in
  let q = Bqueue.create ~capacity:4 () in
  let producer =
    Thread.create
      (fun () ->
        for i = 1 to n do
          assert (Bqueue.push q i)
        done;
        Bqueue.close q)
      ()
  in
  let got = ref [] in
  let rec drain () =
    match Bqueue.pop q with
    | None -> ()
    | Some v ->
        Alcotest.(check bool)
          "capacity bound holds" true
          (Bqueue.length q <= 4);
        got := v :: !got;
        drain ()
  in
  drain ();
  Thread.join producer;
  Alcotest.(check (list int)) "all elements, in order"
    (List.init n (fun i -> i + 1))
    (List.rev !got)

(* close must wake a producer blocked on a full queue (push -> false)
   and a consumer blocked on an empty one (pop -> None) — this is how a
   dying session releases its reader thread. *)
let close_wakes_blocked () =
  let q = Bqueue.create ~capacity:1 () in
  assert (Bqueue.push q 0);
  let blocked_push = ref None in
  let producer = Thread.create (fun () -> blocked_push := Some (Bqueue.push q 1)) () in
  Thread.delay 0.05;
  Alcotest.(check (option bool)) "producer is blocked" None !blocked_push;
  Bqueue.close q;
  Thread.join producer;
  Alcotest.(check (option bool)) "blocked push returns false" (Some false)
    !blocked_push;
  let q2 = Bqueue.create ~capacity:1 () in
  let blocked_pop = ref (Some 42) in
  let consumer = Thread.create (fun () -> blocked_pop := Bqueue.pop q2) () in
  Thread.delay 0.05;
  Bqueue.close q2;
  Thread.join consumer;
  Alcotest.(check (option int)) "blocked pop returns None" None !blocked_pop

(* The optional fault point makes push fail deterministically — the
   hook the server's chaos tests hang queue corruption on — while
   push_raw stays fault-free for delivering error items. *)
let fault_injection () =
  match Crd_fault.configure "qp_test=nth:2" with
  | Error e -> Alcotest.failf "configure: %s" e
  | Ok () ->
      Fun.protect ~finally:Crd_fault.reset (fun () ->
          let q =
            Bqueue.create ~fault:(Crd_fault.point "qp_test") ~capacity:4 ()
          in
          assert (Bqueue.push q 1);
          (match Bqueue.push q 2 with
          | _ -> Alcotest.fail "second push did not fault"
          | exception Crd_fault.Injected "qp_test" -> ());
          Alcotest.(check bool) "push_raw bypasses the fault" true
            (Bqueue.push_raw q 2);
          Alcotest.(check int) "faulted element was not enqueued" 2
            (Bqueue.length q);
          Alcotest.(check bool) "later pushes recover" true (Bqueue.push q 3))

let suite =
  ( "bqueue",
    [
      Alcotest.test_case "FIFO order" `Quick fifo_order;
      Alcotest.test_case "capacity < 1 rejected" `Quick capacity_rejected;
      Alcotest.test_case "close semantics" `Quick close_semantics;
      Alcotest.test_case "producer blocks at capacity" `Quick
        producer_blocks_at_capacity;
      Alcotest.test_case "close wakes blocked threads" `Quick
        close_wakes_blocked;
      Alcotest.test_case "fault point injects on push" `Quick fault_injection;
    ] )
