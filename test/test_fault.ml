(* Crd_fault — the deterministic fault-injection registry. Policies are
   pure functions of (seed, point name, hit index), so every test here
   can assert exact injection sequences, not just rates. *)

module F = Crd_fault

(* Each test configures the global registry, so every test must leave
   it clean for the rest of the suite. *)
let with_faults spec k =
  match F.configure spec with
  | Error e -> Alcotest.failf "configure %S: %s" spec e
  | Ok () -> Fun.protect ~finally:F.reset k

let fire_seq p n = List.init n (fun _ -> F.fire p)

let policy_semantics () =
  with_faults "a=once,b=nth:3,c=every:2,d=off" (fun () ->
      Alcotest.(check (list bool))
        "once fires exactly the first hit"
        [ true; false; false; false ]
        (fire_seq (F.point "a") 4);
      Alcotest.(check (list bool))
        "nth:3 fires exactly the third hit"
        [ false; false; true; false ]
        (fire_seq (F.point "b") 4);
      Alcotest.(check (list bool))
        "every:2 fires every second hit"
        [ false; true; false; true ]
        (fire_seq (F.point "c") 4);
      Alcotest.(check (list bool))
        "off never fires"
        [ false; false; false ]
        (fire_seq (F.point "d") 3);
      Alcotest.(check int) "hits counted" 4 (F.hits (F.point "a"));
      Alcotest.(check int) "injections counted" 1
        (F.injected_count (F.point "a")))

let off_points_do_not_count () =
  F.reset ();
  let p = F.point "untouched" in
  Alcotest.(check bool) "off point never fires" false (F.fire p);
  Alcotest.(check int) "off point counts no hits" 0 (F.hits p)

let probability_deterministic () =
  let run () =
    with_faults "seed=42,flaky=p:0.3" (fun () -> fire_seq (F.point "flaky") 64)
  in
  let a = run () in
  let b = run () in
  Alcotest.(check (list bool)) "same seed, same sequence" a b;
  let injected = List.length (List.filter Fun.id a) in
  Alcotest.(check bool)
    (Printf.sprintf "p=0.3 over 64 hits injects a plausible count (%d)"
       injected)
    true
    (injected > 5 && injected < 40);
  let c =
    with_faults "seed=43,flaky=p:0.3" (fun () -> fire_seq (F.point "flaky") 64)
  in
  Alcotest.(check bool) "different seed, different sequence" true (a <> c)

let decisions_independent_of_interleaving () =
  (* The decision for hit n of a point must not depend on how hits of
     *other* points interleave: fire "x" alone, then fire it again with
     "y" traffic mixed in — identical sequence. *)
  let solo =
    with_faults "seed=7,x=p:0.5,y=p:0.5" (fun () -> fire_seq (F.point "x") 32)
  in
  let mixed =
    with_faults "seed=7,x=p:0.5,y=p:0.5" (fun () ->
        List.init 32 (fun _ ->
            ignore (F.fire (F.point "y"));
            let r = F.fire (F.point "x") in
            ignore (F.fire (F.point "y"));
            r))
  in
  Alcotest.(check (list bool)) "x's stream unaffected by y's hits" solo mixed

let spec_parsing () =
  let ok s = match F.configure s with Ok () -> () | Error e -> Alcotest.failf "%S rejected: %s" s e in
  let rejected s =
    match F.configure s with
    | Ok () -> Alcotest.failf "%S accepted" s
    | Error _ -> ()
  in
  Fun.protect ~finally:F.reset (fun () ->
      ok "";
      ok "seed=9";
      ok " a=once , b=p:0.25 ";
      ok "a=nth:12,b=every:4,c=off";
      Alcotest.(check int64) "seed applied" 12L
        (F.configure "seed=12,z=once" |> Result.get_ok |> fun () -> F.seed ());
      rejected "nonsense";
      rejected "a=p:2.0";
      rejected "a=p:x";
      rejected "a=nth:0";
      rejected "a=every:0";
      rejected "a=maybe";
      rejected "bad name=once";
      rejected "seed=notanint";
      (* a bad spec must not clobber the previous configuration *)
      ok "seed=5,keep=once";
      rejected "keep=banana";
      Alcotest.(check int64) "failed configure left seed alone" 5L (F.seed ());
      Alcotest.(check bool) "failed configure left policy alone" true
        (F.policy (F.point "keep") = F.Once))

let inject_raises () =
  with_faults "boom=nth:2" (fun () ->
      let p = F.point "boom" in
      F.inject p;
      (match F.inject p with
      | () -> Alcotest.fail "second hit did not raise"
      | exception F.Injected name ->
          Alcotest.(check string) "carries the point name" "boom" name);
      F.inject p)

let metrics_move () =
  let total name =
    String.split_on_char '\n' (Crd_obs.dump ())
    |> List.find_map (fun l ->
           match String.index_opt l ' ' with
           | Some i when String.sub l 0 i = name ->
               int_of_string_opt (String.sub l (i + 1) (String.length l - i - 1))
           | _ -> None)
    |> Option.value ~default:0
  in
  let before = total "fault_injected_total" in
  with_faults "metered=every:1" (fun () ->
      ignore (fire_seq (F.point "metered") 5);
      Alcotest.(check int) "fault_injected_total moved" (before + 5)
        (total "fault_injected_total");
      Alcotest.(check bool) "per-point counter exposed" true
        (total "fault_injected_metered_total" >= 5))

let configure_env () =
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "CRD_FAULTS" "";
      F.reset ())
    (fun () ->
      Unix.putenv "CRD_FAULTS" "envpt=once";
      (match F.configure_env () with
      | Ok () -> ()
      | Error e -> Alcotest.failf "configure_env: %s" e);
      Alcotest.(check bool) "env policy applied" true
        (F.policy (F.point "envpt") = F.Once);
      Alcotest.(check bool) "registry active" true (F.active ());
      Unix.putenv "CRD_FAULTS" "envpt=p:9";
      match F.configure_env () with
      | Ok () -> Alcotest.fail "bad env spec accepted"
      | Error _ -> ())

let summary_lists_points () =
  with_faults "s1=once,s2=nth:2" (fun () ->
      ignore (fire_seq (F.point "s1") 3);
      match
        List.filter (fun (n, _, _, _) -> n = "s1" || n = "s2") (F.summary ())
      with
      | [ ("s1", F.Once, 3, 1); ("s2", F.Nth 2, 0, 0) ] -> ()
      | other ->
          Alcotest.failf "unexpected summary (%d entries)" (List.length other))

let bad_point_names_rejected () =
  List.iter
    (fun n ->
      match F.point n with
      | _ -> Alcotest.failf "point %S accepted" n
      | exception Invalid_argument _ -> ())
    [ ""; "has space"; "has-dash"; "has:colon" ]

let suite =
  ( "fault",
    [
      Alcotest.test_case "policy semantics" `Quick policy_semantics;
      Alcotest.test_case "off points do not count" `Quick off_points_do_not_count;
      Alcotest.test_case "probability deterministic" `Quick
        probability_deterministic;
      Alcotest.test_case "decisions independent of interleaving" `Quick
        decisions_independent_of_interleaving;
      Alcotest.test_case "spec parsing" `Quick spec_parsing;
      Alcotest.test_case "inject raises" `Quick inject_raises;
      Alcotest.test_case "metrics move" `Quick metrics_move;
      Alcotest.test_case "configure from CRD_FAULTS" `Quick configure_env;
      Alcotest.test_case "summary lists points" `Quick summary_lists_points;
      Alcotest.test_case "bad point names rejected" `Quick
        bad_point_names_rejected;
    ] )
