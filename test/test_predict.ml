(* The predictive pass: the closure-based race test checked
   differentially against brute-force enumeration of every
   sync-preserving reordering on small random traces, fixed witnesses
   for the lock/fork/join rules, jobs-independence, and the racedb
   provenance plumbing (v2 -> v3 store migration, merge laws). *)

open Crd
module Gen = QCheck2.Gen
module Db = Crd_racedb.Db
module Record = Crd_racedb.Record
module Entry = Crd_racedb.Entry
module Provenance = Crd_racedb.Provenance

let qcheck ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let spec_for o =
  let name = Obj_id.name o in
  let base =
    match String.index_opt name ':' with
    | Some i -> String.sub name 0 i
    | None -> name
  in
  Stdspecs.find base

(* --- random well-formed traces ------------------------------------- *)

(* Per-thread programs over a counter, a register and two locks,
   interleaved by a seeded scheduler that respects lock availability
   and fork/join — so every generated trace is a real execution. *)

type icall = Cadd | Cread | Rwrite

type instr =
  | ICall of icall
  | IAcq of int
  | IRel of int
  | IFork of int
  | IJoin of int

let counter_obj = Obj_id.make ~name:"counter:a" 0
let register_obj = Obj_id.make ~name:"register:b" 1
let locks = [| Lock_id.make ~name:"l0" 0; Lock_id.make ~name:"l1" 1 |]

let action_of_icall = function
  | Cadd -> Action.make ~obj:counter_obj ~meth:"add" ~args:[ Value.Int 1 ] ()
  | Cread -> Action.make ~obj:counter_obj ~meth:"read" ~rets:[ Value.Int 0 ] ()
  | Rwrite ->
      Action.make ~obj:register_obj ~meth:"write" ~args:[ Value.Int 7 ] ()

let icall_gen = Gen.oneofl [ Cadd; Cread; Rwrite ]

type item = Plain of icall | Cs of int * icall list

let item_gen =
  Gen.oneof
    [
      Gen.map (fun c -> Plain c) icall_gen;
      (let open Gen in
       let* l = Gen.int_bound 1 in
       let* inner = Gen.list_size (Gen.int_bound 1) icall_gen in
       Gen.return (Cs (l, inner)));
    ]

let flatten_items items =
  List.concat_map
    (function
      | Plain c -> [ ICall c ]
      | Cs (l, inner) -> (IAcq l :: List.map (fun c -> ICall c) inner) @ [ IRel l ])
    items

(* Insert fork/join pseudo-items for thread [u] into thread 0's item
   list at item granularity (never inside a critical section). *)
let progs_gen =
  let open Gen in
  let* nthreads = Gen.oneofl [ 2; 3 ] in
  let* worker_items =
    Gen.list_repeat (nthreads - 1) (Gen.list_size (Gen.int_bound 3) item_gen)
  in
  let* root_items = Gen.list_size (Gen.int_bound 2) item_gen in
  let root = ref (List.map (fun it -> `Item it) root_items) in
  let* forked =
    Gen.list_repeat (nthreads - 1) (Gen.pair Gen.bool (Gen.pair Gen.nat Gen.bool))
  in
  List.iteri
    (fun i (fork, (at, join)) ->
      let u = i + 1 in
      if fork then begin
        let l = !root in
        let at = at mod (List.length l + 1) in
        let rec ins k = function
          | rest when k = 0 ->
              (`Fork u :: rest) @ if join then [ `Join u ] else []
          | x :: rest -> x :: ins (k - 1) rest
          | [] -> [ `Fork u ] @ if join then [ `Join u ] else []
        in
        root := ins at l
      end)
    forked;
  let prog_of l =
    Array.of_list
      (List.concat_map
         (function
           | `Item it -> flatten_items [ it ]
           | `Fork u -> [ IFork u ]
           | `Join u -> [ IJoin u ])
         l)
  in
  let progs =
    Array.of_list
      (prog_of !root :: List.map (fun items -> prog_of (List.map (fun it -> `Item it) items)) worker_items)
  in
  let* seed = Gen.nat in
  Gen.return (progs, forked, seed)

let schedule (progs, forked, seed) =
  let nt = Array.length progs in
  let rng = Random.State.make [| seed; 0x9e3779b9 |] in
  let trace = Trace.create () in
  let pc = Array.make nt 0 in
  let started =
    Array.init nt (fun t ->
        t = 0 || not (fst (List.nth forked (t - 1))))
  in
  let lock_held = Array.make (Array.length locks) (-1) in
  let running = ref true in
  while !running do
    let enabled =
      List.filter
        (fun t ->
          started.(t)
          && pc.(t) < Array.length progs.(t)
          &&
          match progs.(t).(pc.(t)) with
          | IAcq l -> lock_held.(l) < 0
          | IJoin u -> u < nt && pc.(u) >= Array.length progs.(u)
          | _ -> true)
        (List.init nt Fun.id)
    in
    match enabled with
    | [] -> running := false
    | ts ->
        let t = List.nth ts (Random.State.int rng (List.length ts)) in
        let tid = Tid.of_int t in
        (match progs.(t).(pc.(t)) with
        | ICall c -> Trace.append trace (Event.call tid (action_of_icall c))
        | IAcq l ->
            lock_held.(l) <- t;
            Trace.append trace (Event.acquire tid locks.(l))
        | IRel l ->
            lock_held.(l) <- -1;
            Trace.append trace (Event.release tid locks.(l))
        | IFork u ->
            started.(u) <- true;
            Trace.append trace (Event.fork tid (Tid.of_int u))
        | IJoin u -> Trace.append trace (Event.join tid (Tid.of_int u)));
        pc.(t) <- pc.(t) + 1
  done;
  trace

let trace_gen = Gen.map schedule progs_gen

(* --- brute force over all sync-preserving reorderings --------------- *)

(* Explore every reachable frontier (one program-order position per
   thread) of the reordering space, executing a call only when its
   HB-ordered conflicting predecessors ran, an acquire only when the
   lock is free and no later-observed-rank acquire of that lock ran,
   and a join only when the joined thread is finished. A conflicting
   cross-thread call pair races iff some reachable frontier has both
   as the immediate next instruction of their (started) threads. *)
let brute_pairs trace =
  let n = Trace.length trace in
  let nt = max 1 (Trace.num_threads trace) in
  let hb = Hb.create () in
  let tid = Array.make n 0 in
  let pos = Array.make n 0 in
  let nth_count = Array.make nt 0 in
  let thread_events = Array.make nt [] in
  let fork_of = Array.make nt (-1) in
  let vc = Array.make n None in
  let pts = Array.make n [] in
  let objn = Array.make n (-1) in
  let repr_of = Array.make n None in
  let reprs : (string, Repr.t) Hashtbl.t = Hashtbl.create 4 in
  let lock_rank = Array.make n (-1) in
  let lock_idx = Array.make n (-1) in
  let release_of = Array.make n (-1) in
  let nlocks = Array.length locks in
  let lock_count = Array.make nlocks 0 in
  let lock_open = Array.make nlocks (-1) in
  Trace.iter trace ~f:(fun i (e : Event.t) ->
      let t = Tid.to_int e.Event.tid in
      let c = Hb.step hb e in
      tid.(i) <- t;
      pos.(i) <- nth_count.(t);
      nth_count.(t) <- nth_count.(t) + 1;
      thread_events.(t) <- i :: thread_events.(t);
      match e.Event.op with
      | Event.Call a -> (
          match spec_for a.Action.obj with
          | None -> ()
          | Some s ->
              let repr =
                match Hashtbl.find_opt reprs (Spec.name s) with
                | Some r -> r
                | None ->
                    let r = Result.get_ok (Repr.of_spec s) in
                    Hashtbl.add reprs (Spec.name s) r;
                    r
              in
              vc.(i) <- Some (Vclock.copy c);
              pts.(i) <- Repr.eta repr a;
              objn.(i) <- Obj_id.id a.Action.obj;
              repr_of.(i) <- Some repr)
      | Event.Acquire l ->
          let li = Lock_id.id l in
          lock_idx.(i) <- li;
          lock_rank.(i) <- lock_count.(li);
          lock_count.(li) <- lock_count.(li) + 1;
          lock_open.(li) <- i
      | Event.Release l ->
          let li = Lock_id.id l in
          if lock_open.(li) >= 0 then begin
            release_of.(lock_open.(li)) <- i;
            lock_open.(li) <- -1
          end
      | Event.Fork u ->
          let u = Tid.to_int u in
          if u < nt && fork_of.(u) < 0 then fork_of.(u) <- i
      | _ -> ());
  let thread_events = Array.map (fun l -> Array.of_list (List.rev l)) thread_events in
  let conflict d f =
    objn.(d) >= 0
    && objn.(d) = objn.(f)
    &&
    let repr = Option.get (repr_of.(d)) in
    List.exists
      (fun p -> List.exists (fun q -> Repr.conflict repr p q) pts.(f))
      pts.(d)
  in
  let hb_ordered d f =
    (* d < f in observed order *)
    tid.(d) = tid.(f)
    ||
    let own = Vclock.get (Option.get vc.(d)) (Tid.of_int tid.(d)) in
    own <= Vclock.get (Option.get vc.(f)) (Tid.of_int tid.(d))
  in
  let executed frontier x = pos.(x) < frontier.(tid.(x)) in
  let started frontier t = fork_of.(t) < 0 || executed frontier fork_of.(t) in
  let lock_free frontier li =
    not
      (Array.exists
         (fun a ->
           lock_idx.(a) = li
           && executed frontier a
           && (release_of.(a) < 0 || not (executed frontier release_of.(a))))
         (Array.init n Fun.id))
  in
  let exec_enabled frontier x =
    let t = tid.(x) in
    started frontier t
    &&
    match (Trace.get trace x).Event.op with
    | Event.Call _ ->
        (* behavior preservation: HB-ordered conflicting preds ran *)
        let ok = ref true in
        for d = 0 to x - 1 do
          if
            !ok && tid.(d) <> t && conflict d x && hb_ordered d x
            && not (executed frontier d)
          then ok := false
        done;
        !ok
    | Event.Acquire _ ->
        let li = lock_idx.(x) in
        lock_free frontier li
        && not
             (Array.exists
                (fun a ->
                  lock_idx.(a) = li
                  && executed frontier a
                  && lock_rank.(a) > lock_rank.(x))
                (Array.init n Fun.id))
    | Event.Join u ->
        let u = Tid.to_int u in
        u >= nt || frontier.(u) >= nth_count.(u)
    | _ -> true
  in
  let races : (int * int, unit) Hashtbl.t = Hashtbl.create 16 in
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 256 in
  let key frontier = String.concat "," (List.map string_of_int (Array.to_list frontier)) in
  let rec explore frontier =
    let k = key frontier in
    if not (Hashtbl.mem seen k) then begin
      Hashtbl.add seen k ();
      (* race endpoints only need their thread prefix and fork *)
      for t1 = 0 to nt - 1 do
        for t2 = t1 + 1 to nt - 1 do
          if
            frontier.(t1) < nth_count.(t1)
            && frontier.(t2) < nth_count.(t2)
            && started frontier t1 && started frontier t2
          then begin
            let d = thread_events.(t1).(frontier.(t1)) in
            let f = thread_events.(t2).(frontier.(t2)) in
            if objn.(d) >= 0 && objn.(f) >= 0 && conflict d f then
              Hashtbl.replace races ((min d f, max d f)) ()
          end
        done
      done;
      for t = 0 to nt - 1 do
        if frontier.(t) < nth_count.(t) then begin
          let x = thread_events.(t).(frontier.(t)) in
          if exec_enabled frontier x then begin
            let frontier' = Array.copy frontier in
            frontier'.(t) <- frontier.(t) + 1;
            explore frontier'
          end
        end
      done
    end
  in
  explore (Array.make nt 0);
  List.sort compare (Hashtbl.fold (fun p () acc -> p :: acc) races [])

(* --- the differential properties ----------------------------------- *)

let differential =
  qcheck ~count:300 "racing_pairs = brute force on random small traces"
    trace_gen (fun trace ->
      let got = Result.get_ok (Predict.racing_pairs ~spec_for trace) in
      let want = brute_pairs trace in
      if got <> want then
        QCheck2.Test.fail_reportf
          "trace:@.%a@.predict: %s@.brute:   %s"
          Trace_text.print trace
          (String.concat " "
             (List.map (fun (a, b) -> Printf.sprintf "(%d,%d)" a b) got))
          (String.concat " "
             (List.map (fun (a, b) -> Printf.sprintf "(%d,%d)" a b) want))
      else true)

let witnessed_survive =
  qcheck ~count:300 "witnessed pairs always pass the closure" trace_gen
    (fun trace ->
      (* every VC-concurrent conflicting pair must be in racing_pairs *)
      let pairs = Result.get_ok (Predict.racing_pairs ~spec_for trace) in
      let res = Result.get_ok (Predict.analyze ~spec_for trace) in
      let witnessed_fps =
        List.map Report.fingerprint res.Predict.witnessed
      in
      let predicted_fps =
        List.map Report.fingerprint res.Predict.predicted
      in
      List.for_all
        (fun fp -> not (List.mem fp witnessed_fps))
        predicted_fps
      && (res.Predict.witnessed = [] || pairs <> []))

let jobs_deterministic =
  qcheck ~count:100 "analyze output is independent of --jobs" trace_gen
    (fun trace ->
      let run jobs =
        let r = Result.get_ok (Predict.analyze ~jobs ~spec_for trace) in
        ( List.map Report.fingerprint r.Predict.witnessed,
          List.map Report.fingerprint r.Predict.predicted )
      in
      run 1 = run 3)

(* --- fixed witnesses for each closure rule -------------------------- *)

let parse s = Result.get_ok (Trace_text.parse s)

let analyze_counts s =
  let r = Result.get_ok (Predict.analyze_stdspecs (parse s)) in
  (List.length r.Predict.witnessed, List.length r.Predict.predicted)

let lock_shadow_predicted () =
  (* conflicting puts HB-ordered only through an unrelated critical
     section: invisible to RD2, predicted by the closure *)
  let t =
    "T0 fork T1\n\
     T0 call \"dictionary:o\".put(\"k\", @1) / nil\n\
     T0 acquire l0\n\
     T0 release l0\n\
     T1 acquire l0\n\
     T1 release l0\n\
     T1 call \"dictionary:o\".put(\"k\", @2) / @1\n\
     T0 join T1\n"
  in
  Alcotest.(check (pair int int)) "witnessed 0, predicted 1" (0, 1)
    (analyze_counts t)

let lock_protected_not_predicted () =
  (* the same conflicting puts, but actually inside the critical
     sections: mutual exclusion really orders them *)
  let t =
    "T0 fork T1\n\
     T0 acquire l0\n\
     T0 call \"dictionary:o\".put(\"k\", @1) / nil\n\
     T0 release l0\n\
     T1 acquire l0\n\
     T1 call \"dictionary:o\".put(\"k\", @2) / @1\n\
     T1 release l0\n\
     T0 join T1\n"
  in
  Alcotest.(check (pair int int)) "no race" (0, 0) (analyze_counts t)

let join_ordered_not_predicted () =
  let t =
    "T0 fork T1\n\
     T1 call \"dictionary:o\".put(\"k\", @1) / nil\n\
     T0 join T1\n\
     T0 call \"dictionary:o\".put(\"k\", @2) / @1\n"
  in
  Alcotest.(check (pair int int)) "no race" (0, 0) (analyze_counts t)

let fork_ordered_not_predicted () =
  let t =
    "T0 call \"dictionary:o\".put(\"k\", @1) / nil\n\
     T0 fork T1\n\
     T1 call \"dictionary:o\".put(\"k\", @2) / @1\n\
     T0 join T1\n"
  in
  Alcotest.(check (pair int int)) "no race" (0, 0) (analyze_counts t)

let witnessed_still_reported () =
  let t =
    "T0 fork T1\n\
     T0 call \"dictionary:o\".put(\"k\", @1) / nil\n\
     T1 call \"dictionary:o\".put(\"k\", @2) / @1\n\
     T0 join T1\n"
  in
  Alcotest.(check (pair int int)) "witnessed only" (1, 0) (analyze_counts t)

let predict_superset_of_check () =
  (* acceptance: on at least one input, predict reports a strict
     superset of check (same witnessed set plus predicted races) *)
  let t =
    parse
      "T0 fork T1\n\
       T0 call \"dictionary:o\".put(\"k\", @1) / nil\n\
       T0 acquire l0\n\
       T0 release l0\n\
       T1 acquire l0\n\
       T1 release l0\n\
       T1 call \"dictionary:o\".put(\"k\", @2) / @1\n\
       T1 call \"dictionary:o\".put(\"j\", @3) / nil\n\
       T0 join T1\n\
       T0 call \"dictionary:o\".size() / 2\n"
  in
  let r = Result.get_ok (Predict.analyze_stdspecs t) in
  Alcotest.(check bool) "predicted nonempty" true (r.Predict.predicted <> []);
  let an = Analyzer.with_stdspecs () in
  Analyzer.run_trace an t;
  let check_fps =
    List.sort_uniq Int64.compare
      (List.map Report.fingerprint (Analyzer.rd2_races an))
  in
  let predict_fps =
    List.sort_uniq Int64.compare
      (List.map Report.fingerprint (r.Predict.witnessed @ r.Predict.predicted))
  in
  Alcotest.(check bool) "strict superset" true
    (List.length predict_fps > List.length check_fps
    && List.for_all (fun fp -> List.mem fp predict_fps) check_fps)

let fault_point_fails_cleanly () =
  Crd_fault.reset ();
  (match Crd_fault.configure "seed=7,predict_pass=once" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Predict.analyze_stdspecs (parse "T0 call \"counter:a\".add(@1)\n") with
  | Error e ->
      Alcotest.(check bool) "mentions the fault" true
        (String.length e > 0)
  | Ok _ -> Alcotest.fail "expected the injected fault to surface");
  Crd_fault.reset ()

(* --- racedb provenance: migration and merge laws -------------------- *)

let crc_table =
  Array.init 256 (fun n ->
      let c = ref n in
      for _ = 0 to 7 do
        c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
      done;
      !c)

let crc32 s =
  let c = ref 0xffffffff in
  String.iter
    (fun ch -> c := crc_table.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xffffffff

let add_u32le b v =
  for i = 0 to 3 do
    Buffer.add_char b (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let tmp_counter = ref 0

let fresh_dir () =
  incr tmp_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "crd-predict-%d-%d" (Unix.getpid ()) !tmp_counter)

let mk_report key =
  let obj = Obj_id.make ~name:"dictionary:o" 0 in
  let action =
    Action.make ~obj ~meth:"put" ~args:[ Value.Str key; Value.Int 1 ] ()
  in
  {
    Report.index = 0;
    obj;
    tid = Tid.of_int 1;
    action;
    point = "k[\"" ^ key ^ "\"]";
    conflicting = "k[\"" ^ key ^ "\"]";
    prior = None;
  }

(* v2 entry bytes: today's encoding minus the trailing provenance byte
   (everything a v2 store held was witnessed). *)
let encode_entry_v2 e =
  let b = Buffer.create 128 in
  Entry.encode b e;
  let s = Buffer.contents b in
  assert (s.[String.length s - 1] = '\x00');
  String.sub s 0 (String.length s - 1)

let v2_index ~folded_up_to entries =
  let body = Buffer.create 256 in
  Crd_wire.Codec.add_varint body folded_up_to;
  Crd_wire.Codec.add_varint body 0 (* published nonces *);
  Crd_wire.Codec.add_varint body (List.length entries);
  List.iter (fun e -> Buffer.add_string body (encode_entry_v2 e)) entries;
  let body = Buffer.contents body in
  let b = Buffer.create (String.length body + 16) in
  Buffer.add_string b "CRDX";
  Buffer.add_char b '\x02';
  Buffer.add_string b body;
  add_u32le b (crc32 body);
  Buffer.contents b

let v2_merge_frame entries =
  let p = Buffer.create 256 in
  Buffer.add_char p 'G';
  Crd_wire.Codec.add_varint p (List.length entries);
  List.iter (fun e -> Buffer.add_string p (encode_entry_v2 e)) entries;
  let payload = Buffer.contents p in
  let b = Buffer.create (String.length payload + 12) in
  Crd_wire.Codec.add_varint b (String.length payload);
  Buffer.add_string b payload;
  add_u32le b (crc32 payload);
  Buffer.contents b

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

(* Mint real entries by running records through a scratch store. *)
let entries_of_records records =
  let dir = fresh_dir () in
  let db = Result.get_ok (Db.open_db dir) in
  List.iter (Db.append db) records;
  let es = Db.entries db in
  Db.close db;
  es

let v2_store_migrates () =
  let e_idx =
    List.hd (entries_of_records [ Record.make ~ts:100. ~spec:"std" (mk_report "a") ])
  in
  let e_seg =
    List.hd (entries_of_records [ Record.make ~ts:200. ~spec:"std" (mk_report "b") ])
  in
  let dir = fresh_dir () in
  Unix.mkdir dir 0o755;
  write_file (Filename.concat dir "index.crdx")
    (v2_index ~folded_up_to:1 [ e_idx ]);
  let seg = v2_merge_frame [ e_seg ] in
  write_file (Filename.concat dir "seg-00000002.log") seg;
  write_file
    (Filename.concat dir "seg-00000002.ok")
    (Printf.sprintf "%d\n" (String.length seg));
  (* read-only load: both entries come back witnessed *)
  let v = Result.get_ok (Db.load dir) in
  Alcotest.(check int) "load: distinct" 2 v.Db.v_stats.Db.distinct;
  Alcotest.(check int) "load: predicted" 0 v.Db.v_stats.Db.predicted;
  List.iter
    (fun (e : Entry.t) ->
      Alcotest.(check bool) "witnessed" true
        (Provenance.equal e.Entry.provenance Provenance.Witnessed))
    v.Db.v_entries;
  (* writable open, add a predicted record, compact to a v3 index *)
  let db = Result.get_ok (Db.open_db dir) in
  Db.append db
    (Record.make ~ts:300. ~provenance:Provenance.Predicted ~spec:"std"
       (mk_report "c"));
  Alcotest.(check bool) "compacts" true (Result.is_ok (Db.compact db));
  Db.close db;
  let v = Result.get_ok (Db.load dir) in
  Alcotest.(check int) "post-compaction distinct" 2 v.Db.v_stats.Db.distinct;
  Alcotest.(check int) "post-compaction predicted" 1 v.Db.v_stats.Db.predicted;
  Alcotest.(check int) "post-compaction total" 3 v.Db.v_stats.Db.total

let provenance_join_laws () =
  let all = [ Provenance.Predicted; Provenance.Witnessed ] in
  List.iter
    (fun a ->
      Alcotest.(check bool) "idempotent" true
        (Provenance.equal (Provenance.join a a) a);
      List.iter
        (fun b ->
          Alcotest.(check bool) "commutative" true
            (Provenance.equal (Provenance.join a b) (Provenance.join b a));
          Alcotest.(check bool) "witnessed absorbs" true
            (Provenance.equal
               (Provenance.join a b)
               (if
                  Provenance.equal a Provenance.Witnessed
                  || Provenance.equal b Provenance.Witnessed
                then Provenance.Witnessed
                else Provenance.Predicted)))
        all)
    all

let witnessed_promotes_predicted () =
  (* folding a witnessed record over a predicted entry promotes it, and
     the promotion survives re-merge in either order *)
  let r = mk_report "p" in
  let predicted = Record.make ~ts:10. ~provenance:Provenance.Predicted ~spec:"std" r in
  let witnessed = Record.make ~ts:20. ~spec:"std" r in
  let dir = fresh_dir () in
  let db = Result.get_ok (Db.open_db dir) in
  Db.append db predicted;
  Alcotest.(check int) "predicted first" 1 (Db.stats db).Db.predicted;
  Db.append db witnessed;
  Alcotest.(check int) "promoted" 0 (Db.stats db).Db.predicted;
  Alcotest.(check int) "distinct counts it" 1 (Db.stats db).Db.distinct;
  Db.close db;
  (* and never demotes: a later predicted sighting keeps witnessed *)
  let db = Result.get_ok (Db.open_db dir) in
  Db.append db (Record.make ~ts:30. ~provenance:Provenance.Predicted ~spec:"std" r);
  Alcotest.(check int) "still witnessed" 0 (Db.stats db).Db.predicted;
  Db.close db

let record_roundtrip_provenance =
  qcheck ~count:200 "record codec round-trips provenance"
    (Gen.pair (Gen.oneofl [ Provenance.Predicted; Provenance.Witnessed ])
       (Gen.string_size ~gen:Gen.printable (Gen.int_range 1 8)))
    (fun (provenance, key) ->
      let r = Record.make ~ts:1. ~provenance ~spec:"std" (mk_report key) in
      match Record.decode (Record.encode r) with
      | Ok r' -> Record.equal r r'
      | Error e -> QCheck2.Test.fail_reportf "decode: %s" e)


let probe_stats () =
  let nonempty = ref 0 and total_pairs = ref 0 and with_locks = ref 0 and with_forks = ref 0 in
  let rand = Random.State.make [| 42 |] in
  for _ = 1 to 300 do
    let trace = Gen.generate1 ~rand trace_gen in
    let pairs = brute_pairs trace in
    if pairs <> [] then incr nonempty;
    total_pairs := !total_pairs + List.length pairs;
    let locks = ref false and forks = ref false in
    Trace.iter trace ~f:(fun _ e -> match e.Event.op with
      | Event.Acquire _ -> locks := true | Event.Fork _ -> forks := true | _ -> ());
    if !locks then incr with_locks;
    if !forks then incr with_forks
  done;
  Printf.printf "nonempty-race traces: %d/300, total pairs %d, with locks %d, with forks %d\n%!"
    !nonempty !total_pairs !with_locks !with_forks;
  Alcotest.(check bool) "generator not vacuous" true (!nonempty > 50)

let suite =
  ( "predict",
    [
      Alcotest.test_case "generator coverage" `Quick probe_stats;
      differential;
      witnessed_survive;
      jobs_deterministic;
      Alcotest.test_case "lock shadow is predicted" `Quick
        lock_shadow_predicted;
      Alcotest.test_case "lock-protected pair is not" `Quick
        lock_protected_not_predicted;
      Alcotest.test_case "join-ordered pair is not" `Quick
        join_ordered_not_predicted;
      Alcotest.test_case "fork-ordered pair is not" `Quick
        fork_ordered_not_predicted;
      Alcotest.test_case "witnessed races still reported" `Quick
        witnessed_still_reported;
      Alcotest.test_case "predict is a strict superset of check" `Quick
        predict_superset_of_check;
      Alcotest.test_case "predict_pass fault fails cleanly" `Quick
        fault_point_fails_cleanly;
      Alcotest.test_case "v2 store migrates to v3" `Quick v2_store_migrates;
      Alcotest.test_case "provenance join laws" `Quick provenance_join_laws;
      Alcotest.test_case "witnessed promotes predicted" `Quick
        witnessed_promotes_predicted;
      record_roundtrip_provenance;
    ] )
