(* The synthetic workload generator and the chunked parallel analysis:
   determinism of generation, bit-identical reports across shard counts
   and against the live analyzer, the sequential fallback, and the
   vector-clock pool arena. *)

open Crd
module Synth = Crd_workloads.Synth

let gen ?(seed = 5L) ?(threads = 4) ?(objects = 64) ?skew ?mix
    ?(sync_period = 16) events =
  let c = Synth.default ~events in
  let c =
    {
      c with
      Synth.threads;
      objects;
      sync_period;
      skew = Option.value skew ~default:c.Synth.skew;
      mix = Option.value mix ~default:c.Synth.mix;
    }
  in
  Synth.generate ~seed c

let all_specs_mix = List.map (fun s -> (s, 1)) Synth.known_specs

let deterministic () =
  let a = gen 5_000 and b = gen 5_000 in
  Alcotest.(check int) "exact count" 5_000 (Trace.length a);
  Alcotest.(check bool) "same seed, same trace" true
    (List.for_all2 Event.equal (Trace.to_list a) (Trace.to_list b));
  let c = gen ~seed:6L 5_000 in
  Alcotest.(check bool) "different seed, different trace" false
    (List.for_all2 Event.equal (Trace.to_list a) (Trace.to_list c))

let exact_counts () =
  (* Structural events clamp so tiny requests still come out exact. *)
  List.iter
    (fun n ->
      Alcotest.(check int)
        (Printf.sprintf "events=%d" n)
        n
        (Trace.length (gen ~threads:8 n)))
    [ 1; 2; 3; 7; 100; 8_192; 8_193 ]

let parsers () =
  (match Synth.skew_of_string "zipf:1.25" with
  | Ok (Synth.Zipf t) -> Alcotest.(check (float 1e-9)) "theta" 1.25 t
  | _ -> Alcotest.fail "zipf:1.25 should parse");
  (match Synth.skew_of_string "uniform" with
  | Ok Synth.Uniform -> ()
  | _ -> Alcotest.fail "uniform should parse");
  Alcotest.(check bool) "bad skew rejected" true
    (Result.is_error (Synth.skew_of_string "pareto"));
  Alcotest.(check bool) "bad zipf rejected" true
    (Result.is_error (Synth.skew_of_string "zipf:-1"));
  (match Synth.mix_of_string "dictionary=2, set=1" with
  | Ok m -> Alcotest.(check bool) "mix" true (m = [ ("dictionary", 2); ("set", 1) ])
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "unknown spec rejected" true
    (Result.is_error (Synth.mix_of_string "tree=1"));
  Alcotest.(check bool) "zero weight rejected" true
    (Result.is_error (Synth.mix_of_string "set=0"))

let analyze ?(jobs = 1) trace =
  let config =
    {
      Analyzer.rd2 = `Constant;
      direct = false;
      fasttrack = true;
      djit = false;
      atomicity = false;
    }
  in
  match Shard.analyze_stdspecs ~jobs ~force:true ~config trace with
  | Ok res -> res
  | Error e -> Alcotest.fail e

(* The tentpole property: chunked streaming shards produce bit-identical
   reports at every shard count, and both match the live analyzer. The
   40k-event trace makes every shard cross the 8192-event chunk boundary
   at jobs=2, so full chunks, partial final chunks and the close path
   are all exercised. *)
let parallel_matches_sequential () =
  List.iter
    (fun (label, skew, mix) ->
      let trace = gen ~skew ~mix 40_000 in
      let seq = analyze ~jobs:1 trace in
      let live = Analyzer.with_stdspecs () in
      Analyzer.run_trace live trace;
      Alcotest.(check bool)
        (label ^ ": live rd2 == sharded jobs=1")
        true
        (Analyzer.rd2_races live = seq.Shard.rd2_reports);
      Alcotest.(check bool)
        (label ^ ": live fasttrack == sharded jobs=1")
        true
        (Analyzer.fasttrack_races live = seq.Shard.fasttrack_reports);
      List.iter
        (fun jobs ->
          let par = analyze ~jobs trace in
          Alcotest.(check bool)
            (Printf.sprintf "%s: jobs=%d rd2 bit-identical" label jobs)
            true
            (par.Shard.rd2_reports = seq.Shard.rd2_reports);
          Alcotest.(check bool)
            (Printf.sprintf "%s: jobs=%d fasttrack bit-identical" label jobs)
            true
            (par.Shard.fasttrack_reports = seq.Shard.fasttrack_reports);
          Alcotest.(check (list string))
            (Printf.sprintf "%s: jobs=%d fingerprints" label jobs)
            (List.map Report.fingerprint_hex seq.Shard.rd2_reports)
            (List.map Report.fingerprint_hex par.Shard.rd2_reports);
          Alcotest.(check int)
            (Printf.sprintf "%s: jobs=%d shards" label jobs)
            jobs par.Shard.shards;
          match (seq.Shard.rd2_stats, par.Shard.rd2_stats) with
          | Some s, Some p ->
              Alcotest.(check int)
                (Printf.sprintf "%s: jobs=%d actions sum" label jobs)
                s.Rd2.actions p.Rd2.actions
          | _ -> Alcotest.fail "missing rd2 stats")
        [ 2; 4 ])
    [
      ("zipf", Synth.Zipf 0.9, Synth.default_mix);
      ("uniform/all-specs", Synth.Uniform, all_specs_mix);
    ]

let fallback () =
  let trace = gen 5_000 in
  let config = Analyzer.default_config in
  let run ?force ?threshold jobs =
    match Shard.analyze_stdspecs ~jobs ?force ?threshold ~config trace with
    | Ok res -> res
    | Error e -> Alcotest.fail e
  in
  let small = run 4 in
  Alcotest.(check bool) "fell back" true small.Shard.fell_back;
  Alcotest.(check int) "one shard" 1 small.Shard.shards;
  let forced = run ~force:true 4 in
  Alcotest.(check bool) "forced" false forced.Shard.fell_back;
  Alcotest.(check int) "four shards" 4 forced.Shard.shards;
  let low_threshold = run ~threshold:1_000 4 in
  Alcotest.(check bool) "above threshold" false low_threshold.Shard.fell_back;
  Alcotest.(check int) "sharded" 4 low_threshold.Shard.shards;
  Alcotest.(check bool) "reports agree across paths" true
    (small.Shard.rd2_reports = forced.Shard.rd2_reports);
  let seq = run 1 in
  Alcotest.(check bool) "jobs=1 never falls back" false seq.Shard.fell_back

(* Detectors fed from a deliberately undersized pool (capacity 1) must
   behave exactly like detectors without a pool: exhaustion grows the
   arena instead of changing results. *)
let pool_exhaustion () =
  let trace = gen ~mix:all_specs_mix 20_000 in
  let repr_cache : (string, Repr.t) Hashtbl.t = Hashtbl.create 8 in
  let repr_for o =
    let name = Obj_id.name o in
    let base =
      match String.index_opt name ':' with
      | Some i -> String.sub name 0 i
      | None -> name
    in
    match Stdspecs.find base with
    | None -> None
    | Some spec -> (
        match Hashtbl.find_opt repr_cache (Spec.name spec) with
        | Some r -> Some r
        | None ->
            let r = Result.get_ok (Repr.of_spec spec) in
            Hashtbl.add repr_cache (Spec.name spec) r;
            Some r)
  in
  let run pool =
    let hb = Hb.create () in
    let rd2 = Rd2.create ?pool ~repr_for () in
    let ft = Fasttrack.create ?pool () in
    Trace.iter trace ~f:(fun index (e : Event.t) ->
        let vc = Hb.step hb e in
        match e.op with
        | Event.Call a -> ignore (Rd2.on_action rd2 ~index e.tid a vc)
        | Event.Read loc -> ignore (Fasttrack.on_read ft ~index e.tid loc vc)
        | Event.Write loc -> ignore (Fasttrack.on_write ft ~index e.tid loc vc)
        | _ -> ());
    (Rd2.races rd2, Fasttrack.races ft)
  in
  let plain = run None in
  let pool = Vclock.Pool.create ~capacity:1 () in
  let pooled = run (Some pool) in
  Alcotest.(check bool) "rd2 races identical" true (fst plain = fst pooled);
  Alcotest.(check bool) "fasttrack races identical" true
    (snd plain = snd pooled);
  Alcotest.(check bool) "arena was forced to grow" true
    (Vclock.Pool.grown pool > 0);
  Alcotest.(check bool) "acquisitions happened" true
    (Vclock.Pool.acquired pool > Vclock.Pool.capacity pool)

let suite =
  ( "synth",
    [
      Alcotest.test_case "deterministic generation" `Quick deterministic;
      Alcotest.test_case "exact event counts" `Quick exact_counts;
      Alcotest.test_case "skew and mix parsers" `Quick parsers;
      Alcotest.test_case "parallel == sequential == live" `Quick
        parallel_matches_sequential;
      Alcotest.test_case "sequential fallback" `Quick fallback;
      Alcotest.test_case "pool exhaustion" `Quick pool_exhaustion;
    ] )
