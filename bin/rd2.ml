(* rd2 — command-line front end for the commutativity race detector.

   Subcommands:
     rd2 specs                 list / print built-in specifications
     rd2 translate FILE        specification -> access point representation
     rd2 check FILE            run detectors over a recorded trace
     rd2 predict FILE          predictive detection over sound reorderings
     rd2 simulate NAME         run a built-in workload under the analyzer
     rd2 table2                reproduce the paper's Table 2
     rd2 serve                 streaming ingestion service (online RD2)
     rd2 send FILE             stream a trace file to a running server *)

open Cmdliner
open Crd

let exits = Cmd.Exit.defaults

(* Trace files come in two formats; every trace-consuming subcommand
   takes the same flag. *)
let format_arg =
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("bin", `Bin) ]) `Text
    & info [ "format" ] ~docv:"FORMAT"
        ~doc:
          "Trace format: text (one event per line) or bin (the compact \
           CRDW binary codec).")

let load_trace format path =
  match format with
  | `Text -> Trace_text.parse_file path
  | `Bin -> Bigwire.of_file path

let addr_conv =
  Arg.conv
    ( (fun s ->
        match Crd_server.Server.addr_of_string s with
        | Ok a -> Ok a
        | Error e -> Error (`Msg e)),
      Crd_server.Server.pp_addr )

let addr_arg =
  Arg.(
    required
    & opt (some addr_conv) None
    & info [ "a"; "addr" ] ~docv:"ADDR"
        ~doc:"Server address: unix:PATH or tcp:HOST:PORT.")

(* ------------------------------------------------------------------ *)
(* specs                                                               *)
(* ------------------------------------------------------------------ *)

let specs_cmd =
  let name_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"NAME" ~doc:"Print this built-in specification.")
  in
  let run name =
    match name with
    | None ->
        List.iter
          (fun s -> print_endline (Spec.name s))
          (Stdspecs.all ());
        `Ok ()
    | Some n -> (
        match Stdspecs.find n with
        | Some s ->
            Fmt.pr "%a@." Spec.pp s;
            `Ok ()
        | None -> `Error (false, Printf.sprintf "no built-in spec named %s" n))
  in
  Cmd.v
    (Cmd.info "specs" ~exits
       ~doc:"List built-in commutativity specifications, or print one.")
    Term.(ret (const run $ name_arg))

(* ------------------------------------------------------------------ *)
(* translate                                                           *)
(* ------------------------------------------------------------------ *)

let spec_file =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"SPEC" ~doc:"Specification file (DSL syntax).")

let translate_cmd =
  let raw =
    Arg.(
      value & flag
      & info [ "raw" ]
          ~doc:
            "Skip the simplification passes (dropping, cleanup, congruence \
             replacement) and print the raw Section 6.2 translation.")
  in
  let run file raw =
    match Spec_parser.parse_file file with
    | Error e -> `Error (false, e)
    | Ok specs ->
        List.iter
          (fun spec ->
            match Repr.of_spec ~optimize:(not raw) spec with
            | Error e ->
                Fmt.epr "%s: %s@." (Spec.name spec) e
            | Ok repr -> Fmt.pr "%a@.@." Repr.pp repr)
          specs;
        `Ok ()
  in
  Cmd.v
    (Cmd.info "translate" ~exits
       ~doc:
         "Translate an ECL commutativity specification into its access \
          point representation.")
    Term.(ret (const run $ spec_file $ raw))

(* ------------------------------------------------------------------ *)
(* check                                                               *)
(* ------------------------------------------------------------------ *)

let check_cmd =
  let trace_file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"TRACE" ~doc:"Trace file (textual format).")
  in
  let spec_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "s"; "spec" ] ~docv:"SPEC"
          ~doc:
            "Specification file. Objects are matched to specifications by \
             name: an object named name or name:suffix uses the \
             specification object name. Without this option the built-in \
             specifications are used.")
  in
  let mode =
    Arg.(
      value
      & opt (enum [ ("constant", `Constant); ("linear", `Linear) ]) `Constant
      & info [ "mode" ] ~docv:"MODE"
          ~doc:"Conflict lookup strategy: constant (default) or linear.")
  in
  let direct =
    Arg.(
      value & flag
      & info [ "direct" ]
          ~doc:"Also run the naive specification-level detector.")
  in
  let fasttrack =
    Arg.(
      value & flag
      & info [ "fasttrack" ]
          ~doc:"Also run FastTrack on the trace's reads and writes.")
  in
  let atomicity =
    Arg.(
      value & flag
      & info [ "atomicity" ]
          ~doc:
            "Also run the atomicity checker (transactions are the \
             begin/end blocks of the trace).")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print every race.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Analyze the trace with $(docv) domains (sharded by object / \
             memory location after one sequential happens-before pass). \
             Reports are identical to the sequential run.")
  in
  let force_parallel =
    Arg.(
      value & flag
      & info [ "force-parallel" ]
          ~doc:
            "Shard even below the parallel threshold (small traces \
             otherwise fall back to the sequential path, where domain \
             overhead would dominate).")
  in
  let parallel_threshold =
    Arg.(
      value & opt int Shard.default_parallel_threshold
      & info [ "parallel-threshold" ] ~docv:"EVENTS"
          ~doc:
            "Minimum trace length for which --jobs > 1 actually shards; \
             shorter traces run sequentially.")
  in
  let stats_flag =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "After the report, dump the process metrics registry \
             (counters/histograms) in Prometheus text format.")
  in
  let fingerprints_flag =
    Arg.(
      value & flag
      & info [ "fingerprints" ]
          ~doc:
            "Print the sorted distinct RD2 race fingerprints (one 16-digit \
             hex per line) — the identity 'rd2 query' folds by, so the \
             output is directly comparable to a race database.")
  in
  let run trace_file spec_file format mode direct fasttrack atomicity verbose
      jobs force threshold stats fingerprints =
    let dump_stats () = if stats then print_string (Crd_obs.dump ()) in
    let dump_fingerprints races =
      if fingerprints then
        List.sort_uniq String.compare (List.map Report.fingerprint_hex races)
        |> List.iter print_endline
    in
    let ( let* ) r f = match r with Error e -> `Error (false, e) | Ok v -> f v in
    let* specs =
      match spec_file with
      | None -> Ok (Stdspecs.all ())
      | Some f -> Spec_parser.parse_file f
    in
    let spec_for o =
      let name = Obj_id.name o in
      let base =
        match String.index_opt name ':' with
        | Some i -> String.sub name 0 i
        | None -> name
      in
      List.find_opt (fun s -> String.equal (Spec.name s) base) specs
    in
    let* trace = load_trace format trace_file in
    let config =
      { Analyzer.rd2 = mode; direct; fasttrack; djit = false; atomicity }
    in
    if jobs > 1 then begin
      let* res = Shard.analyze ~jobs ~force ~threshold ~config ~spec_for trace in
      Fmt.pr "%a@." Shard.pp_summary res;
      if verbose then begin
        List.iter (fun r -> Fmt.pr "%a@." Report.pp r) res.Shard.rd2_reports;
        List.iter
          (fun r -> Fmt.pr "%a@." Rw_report.pp r)
          res.Shard.fasttrack_reports;
        List.iter
          (fun v -> Fmt.pr "%a@." Atomicity.pp_violation v)
          res.Shard.atomicity_violations
      end;
      dump_fingerprints res.Shard.rd2_reports;
      dump_stats ();
      `Ok ()
    end
    else begin
      let* an = Analyzer.create ~config ~spec_for () in
      (try Analyzer.run_trace an trace
       with Invalid_argument e -> failwith e);
      Analyzer.publish_stats an;
      Fmt.pr "%a@." Analyzer.pp_summary an;
      if verbose then begin
        List.iter (fun r -> Fmt.pr "%a@." Report.pp r) (Analyzer.rd2_races an);
        List.iter
          (fun r -> Fmt.pr "%a@." Rw_report.pp r)
          (Analyzer.fasttrack_races an);
        List.iter
          (fun v -> Fmt.pr "%a@." Atomicity.pp_violation v)
          (Analyzer.atomicity_violations an)
      end;
      dump_fingerprints (Analyzer.rd2_races an);
      dump_stats ();
      `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "check" ~exits
       ~doc:"Check a recorded trace for commutativity races.")
    Term.(
      ret
        (const run $ trace_file $ spec_arg $ format_arg $ mode $ direct
       $ fasttrack $ atomicity $ verbose $ jobs $ force_parallel
       $ parallel_threshold $ stats_flag $ fingerprints_flag))


(* ------------------------------------------------------------------ *)
(* predict                                                             *)
(* ------------------------------------------------------------------ *)

let predict_cmd =
  let trace_file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"TRACE" ~doc:"Trace file to analyze.")
  in
  let spec_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "s"; "spec" ] ~docv:"SPEC"
          ~doc:
            "Specification file (same object-name matching as 'rd2 check'); \
             default: the built-in specifications.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Fan the per-candidate closure checks out over $(docv) domains. \
             Reports are identical for every $(docv).")
  in
  let scan_limit =
    Arg.(
      value & opt int 64
      & info [ "scan-limit" ] ~docv:"N"
          ~doc:
            "Prior conflicting calls paired with each access point of each \
             call (completeness cap; soundness is unaffected).")
  in
  let max_attempts =
    Arg.(
      value & opt int 8
      & info [ "max-attempts" ] ~docv:"N"
          ~doc:
            "Candidate pairs tried per undecided race fingerprint \
             (completeness cap; soundness is unaffected).")
  in
  let racedb =
    Arg.(
      value
      & opt (some string) None
      & info [ "racedb" ] ~docv:"DIR"
          ~doc:
            "Publish the verdict into the race database at $(docv) (created \
             if missing): witnessed races as provenance=witnessed, predicted \
             ones as provenance=predicted.")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print every race.")
  in
  let stats_flag =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "After the report, dump the process metrics registry in \
             Prometheus text format.")
  in
  let run trace_file spec_file format jobs scan_limit max_attempts racedb
      verbose stats =
    let ( let* ) r f = match r with Error e -> `Error (false, e) | Ok v -> f v in
    let* specs =
      match spec_file with
      | None -> Ok (Stdspecs.all ())
      | Some f -> Spec_parser.parse_file f
    in
    let spec_for o =
      let name = Obj_id.name o in
      let base =
        match String.index_opt name ':' with
        | Some i -> String.sub name 0 i
        | None -> name
      in
      List.find_opt (fun s -> String.equal (Spec.name s) base) specs
    in
    let* trace = load_trace format trace_file in
    let* res = Predict.analyze ~jobs ~scan_limit ~max_attempts ~spec_for trace in
    let distinct rs =
      List.length
        (List.sort_uniq Int64.compare (List.map Report.fingerprint rs))
    in
    let w = distinct res.Predict.witnessed in
    Fmt.pr
      "events %d  calls %d  witnessed %d (%d distinct)  predicted +%d  \
       candidates %d  closures %d  capped %d@."
      res.Predict.stats.Predict.events res.Predict.stats.Predict.calls
      (List.length res.Predict.witnessed)
      w
      (List.length res.Predict.predicted)
      res.Predict.stats.Predict.candidates res.Predict.stats.Predict.closures
      res.Predict.stats.Predict.capped;
    if verbose then begin
      List.iter
        (fun r -> Fmt.pr "witnessed %a@." Report.pp r)
        res.Predict.witnessed;
      List.iter
        (fun r -> Fmt.pr "predicted %a@." Report.pp r)
        res.Predict.predicted
    end;
    let* () =
      match racedb with
      | None -> Ok ()
      | Some dir -> (
          match Crd_racedb.Db.open_db dir with
          | Error e -> Error e
          | Ok db ->
              let ts = Unix.gettimeofday () in
              let spec = match spec_file with None -> "std" | Some _ -> "custom" in
              let records =
                List.map
                  (fun r -> Crd_racedb.Record.make ~ts ~spec r)
                  res.Predict.witnessed
                @ List.map
                    (fun r ->
                      Crd_racedb.Record.make ~ts
                        ~provenance:Crd_racedb.Provenance.Predicted ~spec r)
                    res.Predict.predicted
              in
              let out =
                try
                  ignore (Crd_racedb.Db.publish db ~nonce:"" records);
                  Ok ()
                with
                | Crd_fault.Injected p -> Error ("fault injected: " ^ p)
                | Unix.Unix_error (e, fn, _) ->
                    Error (Printf.sprintf "%s(%s)" (Unix.error_message e) fn)
              in
              Crd_racedb.Db.close db;
              out)
    in
    if stats then print_string (Crd_obs.dump ());
    `Ok ()
  in
  Cmd.v
    (Cmd.info "predict" ~exits
       ~doc:
         "Predictively check a recorded trace: report the observed-run RD2 \
          races plus every non-commuting pair that races in some \
          sync-preserving reordering of the trace — a superset of \
          'rd2 check' on the same input.")
    Term.(
      ret
        (const run $ trace_file $ spec_arg $ format_arg $ jobs $ scan_limit
       $ max_attempts $ racedb $ verbose $ stats_flag))

(* ------------------------------------------------------------------ *)
(* shared workload runner                                              *)
(* ------------------------------------------------------------------ *)

let workload_names =
  [ "fig1"; "snitch" ]
  @ List.map Crd_workloads.Polepos.name Crd_workloads.Polepos.all

let run_fig1 seed sink =
  Sched.run ~seed ~sink (fun () ->
      let o = Monitored.Dict.create ~name:"dictionary:o" () in
      let hosts = [ "a.com"; "a.com"; "b.com"; "c.com" ] in
      List.iteri
        (fun i host ->
          ignore
            (Sched.fork (fun () ->
                 ignore
                   (Monitored.Dict.put o (Value.Str host) (Value.Ref (100 + i))))))
        hosts;
      Sched.join_all ();
      ignore (Monitored.Dict.size o))

(* Returns false for an unknown workload name. *)
let run_workload workload ~seed ~scale sink =
  if String.equal workload "fig1" then begin
    run_fig1 seed sink;
    true
  end
  else if String.equal workload "snitch" then begin
    ignore (Crd_workloads.Snitch.run ~seed ~sink ());
    true
  end
  else
    match Crd_workloads.Polepos.of_name workload with
    | Some c ->
        ignore (Crd_workloads.Polepos.run c ~seed ~scale ~sink ());
        true
    | None -> false

(* ------------------------------------------------------------------ *)
(* simulate                                                            *)
(* ------------------------------------------------------------------ *)

let simulate_cmd =
  let workloads = workload_names in
  let workload =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"WORKLOAD"
          ~doc:
            (Printf.sprintf "One of: %s." (String.concat ", " workloads)))
  in
  let seed =
    Arg.(
      value & opt int64 1L & info [ "seed" ] ~docv:"SEED" ~doc:"Scheduler seed.")
  in
  let scale =
    Arg.(value & opt int 1 & info [ "scale" ] ~docv:"N" ~doc:"Workload scale.")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print every race.")
  in
  let run workload seed scale verbose =
    let an = Analyzer.with_stdspecs () in
    let sink = Analyzer.sink an in
    let ok = run_workload workload ~seed ~scale sink in
    if not ok then
      `Error (false, Printf.sprintf "unknown workload %s" workload)
    else begin
      Fmt.pr "%a@." Analyzer.pp_summary an;
      if verbose then
        List.iter (fun r -> Fmt.pr "%a@." Report.pp r) (Analyzer.rd2_races an);
      `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "simulate" ~exits
       ~doc:"Run a built-in workload under the analyzer and report races.")
    Term.(ret (const run $ workload $ seed $ scale $ verbose))

(* ------------------------------------------------------------------ *)
(* record                                                              *)
(* ------------------------------------------------------------------ *)

let seed_arg =
  Arg.(
    value & opt int64 1L & info [ "seed" ] ~docv:"SEED" ~doc:"Scheduler seed.")

let scale_arg =
  Arg.(value & opt int 1 & info [ "scale" ] ~docv:"N" ~doc:"Workload scale.")

let record_cmd =
  let workload =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"WORKLOAD"
          ~doc:(Printf.sprintf "One of: %s." (String.concat ", " workload_names)))
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the trace here (default: stdout).")
  in
  let run workload seed scale output format =
    let trace = Trace.create () in
    if not (run_workload workload ~seed ~scale (Trace.append trace)) then
      `Error (false, Printf.sprintf "unknown workload %s" workload)
    else begin
      match format with
      | `Text ->
          let text = Trace_text.to_string trace in
          (match output with
          | None -> print_string text
          | Some path ->
              Out_channel.with_open_text path (fun oc ->
                  Out_channel.output_string oc text));
          `Ok ()
      | `Bin -> (
          match output with
          | None ->
              Out_channel.set_binary_mode stdout true;
              Wire.write_channel stdout trace;
              `Ok ()
          | Some path -> (
              match Wire.to_file path trace with
              | Ok () -> `Ok ()
              | Error e -> `Error (false, e)))
    end
  in
  Cmd.v
    (Cmd.info "record" ~exits
       ~doc:
         "Run a built-in workload and dump its event trace (replayable \
          with 'rd2 check' and streamable with 'rd2 send').")
    Term.(ret (const run $ workload $ seed_arg $ scale_arg $ output $ format_arg))

(* ------------------------------------------------------------------ *)
(* synth                                                               *)
(* ------------------------------------------------------------------ *)

let synth_cmd =
  let module Synth = Crd_workloads.Synth in
  let events =
    Arg.(
      value & opt int 1_000_000
      & info [ "n"; "events" ] ~docv:"N"
          ~doc:"Exact number of events to generate (including forks/joins).")
  in
  let threads =
    Arg.(
      value & opt int 8
      & info [ "threads" ] ~docv:"N" ~doc:"Worker threads forked by main.")
  in
  let objects =
    Arg.(
      value & opt int 1024
      & info [ "objects" ] ~docv:"N" ~doc:"Number of shared objects.")
  in
  let skew =
    let skew_conv =
      Arg.conv
        ( (fun s ->
            match Synth.skew_of_string s with
            | Ok sk -> Ok sk
            | Error e -> Error (`Msg e)),
          fun ppf sk -> Fmt.string ppf (Synth.skew_to_string sk) )
    in
    Arg.(
      value
      & opt skew_conv (Synth.Zipf 0.9)
      & info [ "skew" ] ~docv:"SKEW"
          ~doc:
            "Contention skew over objects: uniform, or zipf:THETA (rank 0 \
             hottest; default zipf:0.9).")
  in
  let mix =
    let mix_conv =
      Arg.conv
        ( (fun s ->
            match Synth.mix_of_string s with
            | Ok m -> Ok m
            | Error e -> Error (`Msg e)),
          fun ppf m -> Fmt.string ppf (Synth.mix_to_string m) )
    in
    Arg.(
      value
      & opt mix_conv Synth.default_mix
      & info [ "mix" ] ~docv:"MIX"
          ~doc:
            (Printf.sprintf
               "Specification mix as NAME=WEIGHT,... over %s (default %s)."
               (String.concat ", " Synth.known_specs)
               (Synth.mix_to_string Synth.default_mix)))
  in
  let sync_period =
    Arg.(
      value & opt int 64
      & info [ "sync-period" ] ~docv:"N"
          ~doc:"On average one in $(docv) operations runs under a lock.")
  in
  let key_space =
    Arg.(
      value & opt int 16
      & info [ "key-space" ] ~docv:"N"
          ~doc:"Distinct keys per keyed object.")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the trace here (default: stdout).")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Instead of writing the trace, analyze it in-process (RD2 + \
             FastTrack with the built-in specifications) and print the \
             summary.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Shard the --check analysis over $(docv) domains.")
  in
  let force_parallel =
    Arg.(
      value & flag
      & info [ "force-parallel" ]
          ~doc:"Shard the --check analysis even below the parallel threshold.")
  in
  let run events threads objects skew mix sync_period key_space seed output
      format check jobs force =
    let config =
      {
        Synth.threads;
        objects;
        events;
        skew;
        mix;
        sync_period;
        key_space;
      }
    in
    match
      (try Ok (Synth.generate ~seed config)
       with Invalid_argument e -> Error e)
    with
    | Error e -> `Error (false, e)
    | Ok trace ->
        if check then begin
          Fmt.epr "synth: %a@." Synth.pp_config config;
          match
            Shard.analyze_stdspecs ~jobs ~force
              ~config:
                {
                  Analyzer.rd2 = `Constant;
                  direct = false;
                  fasttrack = true;
                  djit = false;
                  atomicity = false;
                }
              trace
          with
          | Error e -> `Error (false, e)
          | Ok res ->
              Fmt.pr "%a@." Shard.pp_summary res;
              `Ok ()
        end
        else begin
          match format with
          | `Text ->
              let text = Trace_text.to_string trace in
              (match output with
              | None -> print_string text
              | Some path ->
                  Out_channel.with_open_text path (fun oc ->
                      Out_channel.output_string oc text));
              `Ok ()
          | `Bin -> (
              match output with
              | None ->
                  Out_channel.set_binary_mode stdout true;
                  Wire.write_channel stdout trace;
                  `Ok ()
              | Some path -> (
                  match Wire.to_file path trace with
                  | Ok () -> `Ok ()
                  | Error e -> `Error (false, e)))
        end
  in
  Cmd.v
    (Cmd.info "synth" ~exits
       ~doc:
         "Generate a deterministic synthetic trace (multi-million events, \
          controllable thread count, contention skew and spec mix) for \
          parallel-analysis benchmarking; dump it, or --check it in \
          process.")
    Term.(
      ret
        (const run $ events $ threads $ objects $ skew $ mix $ sync_period
       $ key_space $ seed_arg $ output $ format_arg $ check $ jobs
       $ force_parallel))

(* ------------------------------------------------------------------ *)
(* explore                                                             *)
(* ------------------------------------------------------------------ *)

let explore_cmd =
  let workload =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"WORKLOAD"
          ~doc:(Printf.sprintf "One of: %s." (String.concat ", " workload_names)))
  in
  let seeds =
    Arg.(
      value & opt int 10
      & info [ "seeds" ] ~docv:"N" ~doc:"Number of schedules to explore.")
  in
  let scale = scale_arg in
  let run workload seeds scale =
    (* Aggregate distinct races across schedules, folded by the same
       canonical fingerprint the race database uses. *)
    let seen : (int64, unit) Hashtbl.t = Hashtbl.create 64 in
    let new_per_seed = ref [] in
    let ok = ref true in
    for seed = 1 to seeds do
      if !ok then begin
        let an = Analyzer.with_stdspecs () in
        if not (run_workload workload ~seed:(Int64.of_int seed) ~scale
                  (Analyzer.sink an))
        then ok := false
        else begin
          let fresh = ref 0 in
          List.iter
            (fun (r : Report.t) ->
              let key = Report.fingerprint r in
              if not (Hashtbl.mem seen key) then begin
                Hashtbl.replace seen key ();
                incr fresh
              end)
            (Analyzer.rd2_races an);
          new_per_seed := (seed, !fresh) :: !new_per_seed
        end
      end
    done;
    if not !ok then `Error (false, Printf.sprintf "unknown workload %s" workload)
    else begin
      Fmt.pr "%6s %18s %20s@." "seed" "new race patterns" "cumulative distinct";
      let total = ref 0 in
      List.iter
        (fun (seed, fresh) ->
          total := !total + fresh;
          Fmt.pr "%6d %18d %20d@." seed fresh !total)
        (List.rev !new_per_seed);
      Fmt.pr "@.%d distinct race pattern(s) across %d schedule(s)@."
        (Hashtbl.length seen) seeds;
      `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "explore" ~exits
       ~doc:
         "Run a workload under many scheduler seeds and aggregate the \
          distinct commutativity-race patterns discovered.")
    Term.(ret (const run $ workload $ seeds $ scale))

(* ------------------------------------------------------------------ *)
(* table2                                                              *)
(* ------------------------------------------------------------------ *)

let table2_cmd =
  let seed =
    Arg.(
      value & opt int64 1L & info [ "seed" ] ~docv:"SEED" ~doc:"Scheduler seed.")
  in
  let scale =
    Arg.(value & opt int 1 & info [ "scale" ] ~docv:"N" ~doc:"Workload scale.")
  in
  let repeats =
    Arg.(
      value & opt int 3
      & info [ "repeats" ] ~docv:"N"
          ~doc:"Timing repetitions (best-of-N wall clock).")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "With $(docv) > 1, run the FASTTRACK and RD2 configurations as \
             record-then-analyze over $(docv) domains instead of live \
             analysis. Race counts are identical by construction.")
  in
  let dump =
    Arg.(
      value
      & opt (some string) None
      & info [ "dump" ] ~docv:"DIR"
          ~doc:
            "Instead of timing, record every Table 2 workload trace into \
             $(docv) (in the --format encoding) for later 'rd2 check' / \
             'rd2 send' replay.")
  in
  let run seed scale repeats jobs dump format =
    match dump with
    | None ->
        let t = Crd_workloads.Table2.collect ~seed ~scale ~repeats ~jobs () in
        Fmt.pr "%a@." Crd_workloads.Table2.print t;
        `Ok ()
    | Some dir -> (
        let names =
          List.map Crd_workloads.Polepos.name Crd_workloads.Polepos.all
          @ [ "snitch" ]
        in
        try
          if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
          List.iter
            (fun name ->
              let trace = Trace.create () in
              ignore (run_workload name ~seed ~scale (Trace.append trace));
              let ext = match format with `Text -> "trace" | `Bin -> "ctrace" in
              let path = Filename.concat dir (name ^ "." ^ ext) in
              (match format with
              | `Text ->
                  Out_channel.with_open_text path (fun oc ->
                      Out_channel.output_string oc (Trace_text.to_string trace))
              | `Bin -> (
                  match Wire.to_file path trace with
                  | Ok () -> ()
                  | Error e -> failwith e));
              Fmt.pr "%s: %d events@." path (Trace.length trace))
            names;
          `Ok ()
        with Sys_error e | Failure e -> `Error (false, e))
  in
  Cmd.v
    (Cmd.info "table2" ~exits
       ~doc:
         "Reproduce the paper's Table 2 (or, with --dump, record its \
          workload traces to disk).")
    Term.(ret (const run $ seed $ scale $ repeats $ jobs $ dump $ format_arg))

(* ------------------------------------------------------------------ *)
(* serve                                                               *)
(* ------------------------------------------------------------------ *)

let serve_cmd =
  let workers =
    Arg.(
      value & opt int 0
      & info [ "workers" ] ~docv:"N"
          ~doc:
            "Session-carrying domains (default: one per recommended \
             analysis job).")
  in
  let queue =
    Arg.(
      value & opt int 1024
      & info [ "queue" ] ~docv:"N"
          ~doc:"Per-connection event queue bound (backpressure threshold).")
  in
  let idle =
    Arg.(
      value & opt float 30.
      & info [ "idle-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Drop a session after this long without client bytes \
             (0 disables).")
  in
  let spec_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "s"; "spec" ] ~docv:"SPEC"
          ~doc:
            "Specification file offered to clients as the 'custom' \
             handshake set.")
  in
  let direct =
    Arg.(
      value & flag
      & info [ "direct" ]
          ~doc:"Also run the naive specification-level detector per session.")
  in
  let fasttrack =
    Arg.(
      value & flag
      & info [ "fasttrack" ] ~doc:"Also run FastTrack per session.")
  in
  let atomicity =
    Arg.(
      value & flag
      & info [ "atomicity" ] ~doc:"Also run the atomicity checker per session.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "With $(docv) > 1, record each session and analyze it at \
             end-of-stream over $(docv) domains (identical reports).")
  in
  let metrics =
    Arg.(
      value
      & opt (some addr_conv) None
      & info [ "metrics" ] ~docv:"ADDR"
          ~doc:
            "Expose the metrics registry on this address (unix:PATH or \
             tcp:HOST:PORT): every connection receives one Prometheus-style \
             text dump.")
  in
  let log_level =
    let level_conv =
      Arg.conv
        ( (fun s ->
            match Crd_obs.Log.level_of_string s with
            | Ok l -> Ok l
            | Error e -> Error (`Msg e)),
          fun ppf l ->
            Fmt.string ppf
              (match l with
              | None -> "off"
              | Some Crd_obs.Log.Error -> "error"
              | Some Crd_obs.Log.Warn -> "warn"
              | Some Crd_obs.Log.Info -> "info"
              | Some Crd_obs.Log.Debug -> "debug") )
    in
    Arg.(
      value
      & opt level_conv None
      & info [ "log" ] ~docv:"LEVEL"
          ~doc:
            "Structured logging to stderr at this level (off, error, warn, \
             info, debug). Default: off.")
  in
  let faults =
    Arg.(
      value
      & opt (some string) None
      & info [ "faults" ] ~docv:"SPEC"
          ~doc:
            "Deterministic fault injection, e.g. \
             'seed=42,sock_read=p:0.01,worker_body=once' (see Crd_fault; \
             overrides the CRD_FAULTS environment variable).")
  in
  let journal =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"DIR"
          ~doc:
            "Crash-safe session journals: raw CRDW bytes per session plus \
             an fsync'd commit marker. On startup, committed-but-unreported \
             journals from a previous (crashed) process are replayed.")
  in
  let backlog =
    Arg.(
      value & opt int 0
      & info [ "backlog" ] ~docv:"N"
          ~doc:
            "Overload shedding: with all workers busy and $(docv) \
             connections already pending, reply BUSY instead of queueing \
             (0 disables, the default).")
  in
  let retry_after =
    Arg.(
      value & opt int 200
      & info [ "retry-after" ] ~docv:"MS"
          ~doc:"Retry hint (milliseconds) sent with BUSY replies.")
  in
  let resync =
    Arg.(
      value & flag
      & info [ "resync" ]
          ~doc:
            "Resynchronizing decode: skip corrupt frames (scanning to the \
             next valid frame boundary) instead of failing the session.")
  in
  let racedb =
    Arg.(
      value
      & opt (some string) None
      & info [ "racedb" ] ~docv:"DIR"
          ~doc:
            "Publish every session's verdict into the crash-safe race \
             database at $(docv) (created if missing); query it with \
             'rd2 query'.")
  in
  let peers =
    Arg.(
      value
      & opt_all (list addr_conv) []
      & info [ "peers" ] ~docv:"ADDRS"
          ~doc:
            "Comma-separated peer servers (unix:PATH or tcp:HOST:PORT) to \
             anti-entropy the race database with; repeatable. Requires \
             $(b,--racedb). Each tick runs one CRDT sync exchange against \
             the next peer, with jitter and per-peer backoff.")
  in
  let sync_interval =
    Arg.(
      value & opt float 30.
      & info [ "sync-interval" ] ~docv:"SECONDS"
          ~doc:"Target seconds for one full sync round over all peers.")
  in
  let bytes_conv =
    (* 64m, 2g, 512k, or plain bytes. *)
    let parse s =
      let fail () = Error (`Msg (Printf.sprintf "bad byte count %S" s)) in
      if s = "" then fail ()
      else
        let n = String.length s in
        let unit, digits =
          match Char.lowercase_ascii s.[n - 1] with
          | 'k' -> (1024, String.sub s 0 (n - 1))
          | 'm' -> (1024 * 1024, String.sub s 0 (n - 1))
          | 'g' -> (1024 * 1024 * 1024, String.sub s 0 (n - 1))
          | _ -> (1, s)
        in
        match int_of_string_opt digits with
        | Some v when v >= 0 -> Ok (v * unit)
        | _ -> fail ()
    in
    Arg.conv (parse, fun ppf v -> Fmt.pf ppf "%d" v)
  in
  let memory_budget =
    Arg.(
      value & opt bytes_conv 0
      & info [ "memory-budget" ] ~docv:"BYTES"
          ~doc:
            "Degradation ladder: accounted-memory bytes (suffixes k/m/g) \
             past which new connections are shed with BUSY. Queue pressure \
             alone never sheds — it spills (see $(b,--spill-watermark)). \
             0 disables (the default).")
  in
  let spill_watermark =
    Arg.(
      value & opt int 0
      & info [ "spill-watermark" ] ~docv:"N"
          ~doc:
            "Degradation ladder: with all workers busy and $(docv) sessions \
             already pending, new sessions are acked and journaled at \
             decoder speed (no online analysis) and replayed by a \
             background catch-up drainer. Requires $(b,--journal). \
             0 disables (the default).")
  in
  let stall_timeout =
    Arg.(
      value & opt float 0.
      & info [ "stall-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Watchdog: recycle a worker making no per-batch progress for \
             $(docv) seconds; its session gets a retryable ERR. Should \
             exceed $(b,--idle-timeout). 0 disables (the default).")
  in
  let run addr workers queue idle spec_file direct fasttrack atomicity jobs
      metrics log_level faults journal backlog retry_after resync racedb peers
      sync_interval memory_budget spill_watermark stall_timeout =
    Crd_obs.Log.set_level log_level;
    let ( let* ) r f = match r with Error e -> `Error (false, e) | Ok v -> f v in
    let* () =
      match faults with
      | Some spec -> Crd_fault.configure spec
      | None -> Crd_fault.configure_env ()
    in
    let* specs =
      match spec_file with
      | None -> Ok None
      | Some f -> Result.map Option.some (Spec_parser.parse_file f)
    in
    let default = Crd_server.Server.default_config ~addr in
    let config =
      {
        default with
        Crd_server.Server.workers =
          (if workers > 0 then workers else default.Crd_server.Server.workers);
        queue_capacity = queue;
        idle_timeout = idle;
        analyzer =
          { default.Crd_server.Server.analyzer with direct; fasttrack; atomicity };
        jobs;
        specs;
        metrics_addr = metrics;
        shed_backlog = backlog;
        retry_after_ms = retry_after;
        journal;
        resync;
        racedb;
        peers = List.concat peers;
        sync_interval;
        memory_budget;
        spill_watermark;
        stall_timeout;
      }
    in
    Fmt.epr "rd2 serve: listening on %a@." Crd_server.Server.pp_addr addr;
    (match metrics with
    | Some a -> Fmt.epr "rd2 serve: metrics on %a@." Crd_server.Server.pp_addr a
    | None -> ());
    if Crd_fault.active () then
      Fmt.epr "rd2 serve: fault injection active (seed %Ld)@."
        (Crd_fault.seed ());
    let* st = Crd_server.Server.serve config in
    Fmt.pr
      "sessions %d  events %d  races %d  errors %d  accept_errors %d  busy %d \
       \ worker_crashes %d  recovered %d  spilled %d  caught_up %d  stalls %d@."
      st.Crd_server.Server.sessions st.Crd_server.Server.events
      st.Crd_server.Server.races st.Crd_server.Server.errors
      st.Crd_server.Server.accept_errors st.Crd_server.Server.busy
      st.Crd_server.Server.worker_crashes st.Crd_server.Server.recovered
      st.Crd_server.Server.spilled st.Crd_server.Server.caught_up
      st.Crd_server.Server.stalls;
    `Ok ()
  in
  Cmd.v
    (Cmd.info "serve" ~exits
       ~doc:
         "Run the streaming ingestion service: every connection is an \
          online RD2 session over the binary wire codec. SIGTERM/SIGINT \
          drain gracefully.")
    Term.(
      ret
        (const run $ addr_arg $ workers $ queue $ idle $ spec_arg $ direct
       $ fasttrack $ atomicity $ jobs $ metrics $ log_level $ faults
       $ journal $ backlog $ retry_after $ resync $ racedb $ peers
       $ sync_interval $ memory_budget $ spill_watermark $ stall_timeout))

(* ------------------------------------------------------------------ *)
(* send                                                                *)
(* ------------------------------------------------------------------ *)

let send_cmd =
  let trace_file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"TRACE" ~doc:"Trace file to stream.")
  in
  let spec_name =
    Arg.(
      value & opt string "std"
      & info [ "spec-name" ] ~docv:"NAME"
          ~doc:
            "Handshake specification set: std (built-ins) or custom (the \
             server's --spec file).")
  in
  let retries =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Retry transient failures (refused connections, BUSY replies, \
             lost reports, server worker crashes) up to $(docv) times, \
             restreaming the trace from frame 0 each attempt.")
  in
  let backoff =
    Arg.(
      value & opt float 0.1
      & info [ "backoff" ] ~docv:"SECONDS"
          ~doc:
            "Initial retry delay; doubles per attempt with +/-50% jitter. \
             A BUSY reply's retry-after hint takes precedence when larger.")
  in
  let timeout =
    Arg.(
      value & opt float 0.
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Socket read/write timeout per attempt (0 disables).")
  in
  let nonce =
    Arg.(
      value
      & opt (some string) None
      & info [ "nonce" ] ~docv:"NONCE"
          ~doc:
            "Session nonce ([A-Za-z0-9_-], max 64 bytes) naming the logical \
             session across retries; autogenerated when --retries > 0.")
  in
  let run trace_file addr spec_name format retries backoff timeout nonce =
    match
      Crd_server.Client.send_file ~addr ~spec:spec_name ~retries ~backoff
        ~timeout ?nonce ~format trace_file
    with
    | Ok reply ->
        print_string reply;
        `Ok ()
    | Error e -> `Error (false, e)
  in
  Cmd.v
    (Cmd.info "send" ~exits
       ~doc:
         "Stream a trace file to a running 'rd2 serve' and print the \
          server's race report.")
    Term.(
      ret
        (const run $ trace_file $ addr_arg $ spec_name $ format_arg $ retries
       $ backoff $ timeout $ nonce))

(* ------------------------------------------------------------------ *)
(* query / db — the race database                                      *)
(* ------------------------------------------------------------------ *)

let racedb_dir_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"DIR" ~doc:"Race database directory.")

let iso8601 ts =
  if ts <= 0. then "-"
  else
    let tm = Unix.gmtime ts in
    Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
      (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
      tm.Unix.tm_sec

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let query_cmd =
  let duration_conv =
    let parse s =
      let fail () =
        Error (`Msg (Printf.sprintf "invalid duration %S (try 90, 10m, 2h, 1d)" s))
      in
      if String.length s = 0 then fail ()
      else
        let unit, body =
          match s.[String.length s - 1] with
          | 's' -> (1., String.sub s 0 (String.length s - 1))
          | 'm' -> (60., String.sub s 0 (String.length s - 1))
          | 'h' -> (3600., String.sub s 0 (String.length s - 1))
          | 'd' -> (86400., String.sub s 0 (String.length s - 1))
          | _ -> (1., s)
        in
        match float_of_string_opt body with
        | Some v when v >= 0. -> Ok (v *. unit)
        | _ -> fail ()
    in
    Arg.conv (parse, fun ppf d -> Fmt.pf ppf "%gs" d)
  in
  let top =
    Arg.(
      value
      & opt (some int) None
      & info [ "top" ] ~docv:"N" ~doc:"Keep only the $(docv) most frequent races.")
  in
  let since =
    Arg.(
      value
      & opt (some duration_conv) None
      & info [ "since" ] ~docv:"DURATION"
          ~doc:
            "Keep races last seen within this long ago (seconds, or with an \
             s/m/h/d suffix).")
  in
  let obj =
    Arg.(
      value
      & opt (some string) None
      & info [ "obj" ] ~docv:"NAME" ~doc:"Keep races on this object (exact name).")
  in
  let spec =
    Arg.(
      value
      & opt (some string) None
      & info [ "spec" ] ~docv:"NAME"
          ~doc:"Keep races recorded under this specification set.")
  in
  let provenance =
    Arg.(
      value
      & opt
          (enum
             [
               ("any", None);
               ("witnessed", Some Crd_racedb.Provenance.Witnessed);
               ("predicted", Some Crd_racedb.Provenance.Predicted);
             ])
          None
      & info [ "provenance" ] ~docv:"PROV"
          ~doc:
            "Keep races with this provenance: witnessed (observed in a \
             recorded interleaving), predicted (so far only realized by a \
             sound reordering — 'rd2 predict'), or any (default).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Machine-readable output: one JSON array of entries.")
  in
  let run dir top since obj spec provenance json =
    match Crd_racedb.Db.load dir with
    | Error e -> `Error (false, e)
    | Ok view ->
        let now = Unix.gettimeofday () in
        let since = Option.map (fun d -> now -. d) since in
        let entries =
          Crd_racedb.Db.select ?top ?since ?obj ?spec ?provenance
            view.Crd_racedb.Db.v_entries
        in
        if json then begin
          let buckets r =
            Crd_racedb.Rollup.to_list r
            |> List.map (fun (t, c) -> Printf.sprintf "[%.0f,%d]" t c)
            |> String.concat ","
          in
          let vv_json vv =
            Crd_racedb.Vv.to_list vv
            |> List.map (fun (n, v) ->
                   Printf.sprintf "\"%s\":%d" (json_escape n) v)
            |> String.concat ","
          in
          let entry_json (e : Crd_racedb.Entry.t) =
            let r = e.Crd_racedb.Entry.sample.Crd_racedb.Record.report in
            Printf.sprintf
              "{\"fingerprint\":\"%016Lx\",\"count\":%d,\
               \"provenance\":\"%s\",\
               \"node_counts\":{%s},\"version\":{%s},\"first_seen\":%.6f,\
               \"last_seen\":%.6f,\"spec\":\"%s\",\"obj\":\"%s\",\
               \"point\":\"%s\",\"conflicting\":\"%s\",\"prior\":%b,\
               \"minutes\":[%s],\"hours\":[%s],\"days\":[%s]}"
              e.Crd_racedb.Entry.fingerprint
              (Crd_racedb.Entry.count e)
              (Crd_racedb.Provenance.to_string e.Crd_racedb.Entry.provenance)
              (vv_json e.Crd_racedb.Entry.counts)
              (vv_json e.Crd_racedb.Entry.ver)
              e.Crd_racedb.Entry.first_seen e.Crd_racedb.Entry.last_seen
              (json_escape e.Crd_racedb.Entry.sample.Crd_racedb.Record.spec)
              (json_escape (Obj_id.name r.Report.obj))
              (json_escape r.Report.point)
              (json_escape r.Report.conflicting)
              (Option.is_some r.Report.prior)
              (buckets e.Crd_racedb.Entry.minutes)
              (buckets e.Crd_racedb.Entry.hours)
              (buckets e.Crd_racedb.Entry.days)
          in
          print_string
            ("[" ^ String.concat "," (List.map entry_json entries) ^ "]\n");
          `Ok ()
        end
        else begin
          Fmt.pr "%a@." Crd_racedb.Db.pp_stats view.Crd_racedb.Db.v_stats;
          List.iter
            (fun (e : Crd_racedb.Entry.t) ->
              Fmt.pr
                "%016Lx  %-9s count=%-6d 1h=%-5d 24h=%-5d first=%s  last=%s@."
                e.Crd_racedb.Entry.fingerprint
                (Crd_racedb.Provenance.to_string e.Crd_racedb.Entry.provenance)
                (Crd_racedb.Entry.count e)
                (Crd_racedb.Rollup.total_since e.Crd_racedb.Entry.minutes
                   (now -. 3600.))
                (Crd_racedb.Rollup.total_since e.Crd_racedb.Entry.hours
                   (now -. 86400.))
                (iso8601 e.Crd_racedb.Entry.first_seen)
                (iso8601 e.Crd_racedb.Entry.last_seen);
              Fmt.pr "    %a@." Crd_racedb.Record.pp e.Crd_racedb.Entry.sample)
            entries;
          `Ok ()
        end
  in
  Cmd.v
    (Cmd.info "query" ~exits
       ~doc:
         "Query a race database produced by 'rd2 serve --racedb': distinct \
          races with occurrence counts, time-bucketed rollups and a sample \
          report each.")
    Term.(
      ret
        (const run $ racedb_dir_arg $ top $ since $ obj $ spec $ provenance
       $ json))

let db_cmd =
  let compact =
    let run dir =
      (* honor CRD_FAULTS so crash windows are scriptable, as in serve *)
      match Crd_fault.configure_env () with
      | Error e -> `Error (false, e)
      | Ok () -> (
      match Crd_racedb.Db.open_db dir with
      | Error e -> `Error (false, e)
      | Ok db -> (
          match Crd_racedb.Db.compact db with
          | Ok distinct ->
              Crd_racedb.Db.close db;
              Fmt.pr "compacted: %d distinct race(s)@." distinct;
              `Ok ()
          | Error e ->
              Crd_racedb.Db.close db;
              `Error (false, e)))
    in
    Cmd.v
      (Cmd.info "compact" ~exits
         ~doc:
           "Fold every segment into the dedup index and delete the folded \
            segments (requires the writer lock: stop the server first).")
      Term.(ret (const run $ racedb_dir_arg))
  in
  let stats =
    let run dir =
      match Crd_racedb.Db.load dir with
      | Error e -> `Error (false, e)
      | Ok view ->
          Fmt.pr "%a@." Crd_racedb.Db.pp_stats view.Crd_racedb.Db.v_stats;
          (if view.Crd_racedb.Db.v_node <> "" then
             Fmt.pr "node %s  version %a@." view.Crd_racedb.Db.v_node
               Crd_racedb.Vv.pp view.Crd_racedb.Db.v_version);
          `Ok ()
    in
    Cmd.v
      (Cmd.info "stats" ~exits
         ~doc:"Print store-level statistics (read-only, lock-free).")
      Term.(ret (const run $ racedb_dir_arg))
  in
  Cmd.group
    (Cmd.info "db" ~exits ~doc:"Race database maintenance.")
    [ compact; stats ]

(* ------------------------------------------------------------------ *)
(* sync — one-shot anti-entropy exchange                               *)
(* ------------------------------------------------------------------ *)

let sync_cmd =
  let addr =
    Arg.(
      required
      & pos 0 (some addr_conv) None
      & info [] ~docv:"ADDR"
          ~doc:"Peer server to exchange with (unix:PATH or tcp:HOST:PORT).")
  in
  let dir =
    Arg.(
      required
      & opt (some string) None
      & info [ "racedb" ] ~docv:"DIR"
          ~doc:"Local race database to sync (takes the writer lock).")
  in
  let timeout =
    Arg.(
      value & opt float 30.
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Socket read/write timeout (0 disables).")
  in
  let deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:
            "Whole-exchange deadline: fail the sync after $(docv) seconds \
             of wall clock even if the peer keeps trickling bytes \
             (default 10x the timeout, 0 disables).")
  in
  let run addr dir timeout deadline =
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ -> ());
    match Crd_fault.configure_env () with
    | Error e -> `Error (false, e)
    | Ok () -> (
        match Crd_racedb.Db.open_db dir with
        | Error e -> `Error (false, e)
        | Ok db ->
            let res =
              match
                Crd_fault.inject Crd_sync.fp_connect;
                Crd_server.Server.connect addr
              with
              | exception Crd_fault.Injected p ->
                  Error ("fault injected: " ^ p)
              | exception Failure m -> Error m
              | exception Unix.Unix_error (e, fn, _) ->
                  Error (Printf.sprintf "%s(%s)" (Unix.error_message e) fn)
              | fd ->
                  Fun.protect
                    ~finally:(fun () ->
                      try Unix.close fd with Unix.Unix_error _ -> ())
                    (fun () -> Crd_sync.client ~timeout ?deadline fd db)
            in
            Crd_racedb.Db.close db;
            (match res with
            | Ok s ->
                Fmt.pr "%a@." Crd_sync.pp_summary s;
                `Ok ()
            | Error e -> `Error (false, "sync: " ^ e)))
  in
  Cmd.v
    (Cmd.info "sync" ~exits
       ~doc:
         "Run one CRDT anti-entropy exchange between a local race database \
          and a running server: both sides end up with the union of their \
          entries. Idempotent — re-running against a converged pair \
          transfers nothing.")
    Term.(ret (const run $ addr $ dir $ timeout $ deadline))

(* ------------------------------------------------------------------ *)
(* health — one-line server summary                                    *)
(* ------------------------------------------------------------------ *)

let health_cmd =
  let addr =
    Arg.(
      required
      & pos 0 (some addr_conv) None
      & info [] ~docv:"ADDR"
          ~doc:"Server to probe (unix:PATH or tcp:HOST:PORT).")
  in
  let timeout =
    Arg.(
      value & opt float 5.
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Socket read/write timeout (0 disables).")
  in
  let run addr timeout =
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ -> ());
    match Crd_server.Server.connect addr with
    | exception Failure m -> `Error (false, m)
    | exception Unix.Unix_error (e, fn, _) ->
        `Error (false, Printf.sprintf "%s(%s)" (Unix.error_message e) fn)
    | fd ->
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            if timeout > 0. then begin
              (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout
               with Unix.Unix_error _ | Invalid_argument _ -> ());
              try Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout
              with Unix.Unix_error _ | Invalid_argument _ -> ()
            end;
            match
              Crd_server.Proto.write_all fd "HEALTH\n";
              Crd_server.Proto.read_to_eof fd
            with
            | exception Unix.Unix_error (e, fn, _) ->
                `Error (false, Printf.sprintf "%s(%s)" (Unix.error_message e) fn)
            | "" -> `Error (false, "server closed the connection without a reply")
            | reply when reply.[0] = '\x02' ->
                (* A shedding server answers admission itself: the BUSY
                   preamble byte arrives before the probe is even read. *)
                Fmt.pr "HEALTH tier=shed (server is shedding: BUSY)@.";
                `Ok ()
            | reply ->
                Fmt.pr "%s" reply;
                if String.length reply > 0 && reply.[String.length reply - 1] <> '\n'
                then Fmt.pr "@.";
                `Ok ())
  in
  Cmd.v
    (Cmd.info "health" ~exits
       ~doc:
         "Print a running server's one-line health summary: admission tier, \
          active/pending sessions, spill backlog, accounted memory against \
          the budget, and watchdog stalls.")
    Term.(ret (const run $ addr $ timeout))

(* ------------------------------------------------------------------ *)

let main =
  Cmd.group
    (Cmd.info "rd2" ~version:"1.0.0" ~exits
       ~doc:"Dynamic commutativity race detection (PLDI 2014 reproduction).")
    [
      specs_cmd; translate_cmd; check_cmd; predict_cmd; simulate_cmd;
      record_cmd; synth_cmd; explore_cmd; table2_cmd; serve_cmd; send_cmd;
      query_cmd; db_cmd; sync_cmd; health_cmd;
    ]

let () = exit (Cmd.eval main)
