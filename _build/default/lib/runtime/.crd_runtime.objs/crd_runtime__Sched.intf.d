lib/runtime/sched.mli: Crd_base Crd_trace Event Lock_id Tid
