lib/runtime/monitored.mli: Crd_base Mem_loc Obj_id Value
