lib/runtime/monitored.ml: Action Crd_base Crd_trace Event Hashtbl List Mem_loc Obj_id Option Printf Sched Value
