lib/runtime/sched.ml: Array Crd_base Crd_trace Effect Event Fmt Fun Hashtbl List Lock_id Option Printf Prng Tid
