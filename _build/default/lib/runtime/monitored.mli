(** Monitored (instrumented) shared objects.

    These are the library objects whose invocations become [Call] events —
    the analogue of the instrumented [ConcurrentHashMap]s of the paper's
    evaluation. Every operation is linearizable by construction (state
    mutation and event emission happen without an intervening preemption
    point) and emits exactly one action event carrying its arguments and
    return value.

    Monitored objects add {e no} happens-before edges: like the paper, we
    treat the library as internally thread-safe and analyze interference
    at its interface.

    {!Shared} cells are different: they model ordinary, unsynchronized
    application fields; their accesses emit low-level [Read]/[Write]
    events, the food of the FastTrack baseline. *)

open Crd_base

module Dict : sig
  (** A dictionary with the Fig 5 interface. All keys initially map to
      [Value.Nil]. *)

  type t

  val create : ?name:string -> unit -> t
  val obj_id : t -> Obj_id.t

  val put : t -> Value.t -> Value.t -> Value.t
  (** [put d k v] associates [k] with [v], returning the previous value
      ([Nil] if absent). [put d k Nil] removes the key. *)

  val get : t -> Value.t -> Value.t
  val size : t -> int

  val raw_get : t -> Value.t -> Value.t
  (** Uninstrumented read (no event); for assertions in tests and for
      transactional wrappers that linearize their effects at commit. *)

  val raw_size : t -> int
  (** Uninstrumented size (no event). *)
end

module Set_obj : sig
  type t

  val create : ?name:string -> unit -> t
  val obj_id : t -> Obj_id.t

  val add : t -> Value.t -> bool
  (** Returns prior membership. *)

  val remove : t -> Value.t -> bool
  val contains : t -> Value.t -> bool
  val size : t -> int
end

module Counter : sig
  type t

  val create : ?name:string -> unit -> t
  val obj_id : t -> Obj_id.t
  val add : t -> int -> unit
  val read : t -> int
end

module Register : sig
  type t

  val create : ?name:string -> unit -> t
  val obj_id : t -> Obj_id.t
  val write : t -> Value.t -> unit
  val read : t -> Value.t
end

module Fifo : sig
  type t

  val create : ?name:string -> unit -> t
  val obj_id : t -> Obj_id.t
  val enq : t -> Value.t -> unit
  val deq : t -> Value.t
  (** [Nil] when empty. *)

  val peek : t -> Value.t
end

module Bag : sig
  (** A multiset; [add] reports nothing, so concurrent insertions
      commute. *)

  type t

  val create : ?name:string -> unit -> t
  val obj_id : t -> Obj_id.t
  val add : t -> Value.t -> unit

  val remove : t -> Value.t -> bool
  (** Remove one occurrence; reports whether one was present. *)

  val count : t -> Value.t -> int
  val size : t -> int
  (** Total number of occurrences. *)
end

module Shared : sig
  (** An unsynchronized shared field; reads and writes emit low-level
      [Read]/[Write] events on a [Mem_loc.Global], exactly what a
      read-write race detector instruments. *)

  type 'a t

  val create : name:string -> 'a -> 'a t
  val loc : 'a t -> Mem_loc.t
  val get : 'a t -> 'a
  val set : 'a t -> 'a -> unit
  val update : 'a t -> ('a -> 'a) -> unit
  (** Read-modify-write as two events (a read then a write) — racy by
      design, like an unguarded [x += 1] in the target program. *)
end
