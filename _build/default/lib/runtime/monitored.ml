open Crd_base
open Crd_trace

module VTbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

let call obj meth args rets =
  Sched.emit (Event.Call (Action.make ~obj ~meth ~args ~rets ()))

module Dict = struct
  type t = { obj : Obj_id.t; data : Value.t VTbl.t }

  let create ?name () = { obj = Obj_id.fresh ?name (); data = VTbl.create 16 }
  let obj_id t = t.obj

  let current t k =
    match VTbl.find_opt t.data k with Some v -> v | None -> Value.Nil

  let put t k v =
    let p = current t k in
    if Value.is_nil v then VTbl.remove t.data k else VTbl.replace t.data k v;
    call t.obj "put" [ k; v ] [ p ];
    p

  let get t k =
    let v = current t k in
    call t.obj "get" [ k ] [ v ];
    v

  let size t =
    let r = VTbl.length t.data in
    call t.obj "size" [] [ Value.Int r ];
    r

  let raw_get t k = current t k
  let raw_size t = VTbl.length t.data
end

module Set_obj = struct
  type t = { obj : Obj_id.t; data : unit VTbl.t }

  let create ?name () = { obj = Obj_id.fresh ?name (); data = VTbl.create 16 }
  let obj_id t = t.obj

  let add t x =
    let was = VTbl.mem t.data x in
    if not was then VTbl.replace t.data x ();
    call t.obj "add" [ x ] [ Value.Bool was ];
    was

  let remove t x =
    let was = VTbl.mem t.data x in
    if was then VTbl.remove t.data x;
    call t.obj "remove" [ x ] [ Value.Bool was ];
    was

  let contains t x =
    let b = VTbl.mem t.data x in
    call t.obj "contains" [ x ] [ Value.Bool b ];
    b

  let size t =
    let r = VTbl.length t.data in
    call t.obj "size" [] [ Value.Int r ];
    r
end

module Counter = struct
  type t = { obj : Obj_id.t; mutable n : int }

  let create ?name () = { obj = Obj_id.fresh ?name (); n = 0 }
  let obj_id t = t.obj

  let add t d =
    t.n <- t.n + d;
    call t.obj "add" [ Value.Int d ] []

  let read t =
    let v = t.n in
    call t.obj "read" [] [ Value.Int v ];
    v
end

module Register = struct
  type t = { obj : Obj_id.t; mutable v : Value.t }

  let create ?name () = { obj = Obj_id.fresh ?name (); v = Value.Nil }
  let obj_id t = t.obj

  let write t v =
    t.v <- v;
    call t.obj "write" [ v ] []

  let read t =
    let v = t.v in
    call t.obj "read" [] [ v ];
    v
end

module Fifo = struct
  type t = { obj : Obj_id.t; mutable front : Value.t list; mutable back : Value.t list }

  let create ?name () = { obj = Obj_id.fresh ?name (); front = []; back = [] }
  let obj_id t = t.obj

  let enq t x =
    t.back <- x :: t.back;
    call t.obj "enq" [ x ] []

  let normalize t =
    match t.front with
    | [] ->
        t.front <- List.rev t.back;
        t.back <- []
    | _ -> ()

  let deq t =
    normalize t;
    let x =
      match t.front with
      | [] -> Value.Nil
      | x :: rest ->
          t.front <- rest;
          x
    in
    call t.obj "deq" [] [ x ];
    x

  let peek t =
    normalize t;
    let x = match t.front with [] -> Value.Nil | x :: _ -> x in
    call t.obj "peek" [] [ x ];
    x
end

module Bag = struct
  type t = { obj : Obj_id.t; data : int VTbl.t; mutable total : int }

  let create ?name () =
    { obj = Obj_id.fresh ?name (); data = VTbl.create 16; total = 0 }

  let obj_id t = t.obj

  let mult t x = Option.value ~default:0 (VTbl.find_opt t.data x)

  let add t x =
    VTbl.replace t.data x (mult t x + 1);
    t.total <- t.total + 1;
    call t.obj "add" [ x ] []

  let remove t x =
    let m = mult t x in
    let ok = m > 0 in
    if ok then begin
      if m = 1 then VTbl.remove t.data x else VTbl.replace t.data x (m - 1);
      t.total <- t.total - 1
    end;
    call t.obj "remove" [ x ] [ Value.Bool ok ];
    ok

  let count t x =
    let n = mult t x in
    call t.obj "count" [ x ] [ Value.Int n ];
    n

  let size t =
    let r = t.total in
    call t.obj "size" [] [ Value.Int r ];
    r
end

module Shared = struct
  type 'a t = { loc : Mem_loc.t; mutable v : 'a }

  let counter = ref 0

  let create ~name v =
    let id = !counter in
    incr counter;
    { loc = Mem_loc.Global (Printf.sprintf "%s#%d" name id); v }

  let loc t = t.loc

  let get t =
    let v = t.v in
    Sched.emit (Event.Read t.loc);
    v

  let set t v =
    t.v <- v;
    Sched.emit (Event.Write t.loc)

  let update t f =
    let v = get t in
    set t (f v)
end
