(** Deterministic cooperative scheduler — the instrumentation substrate.

    The paper's tool observes a Java program through RoadRunner's bytecode
    instrumentation; here, concurrent programs are written against this
    scheduler (OCaml effect handlers underneath) and every observable
    operation — fork, join, lock, monitored-object call, shared-memory
    access — both {e is} a preemption point and {e emits} a trace event to
    the sink. Scheduling decisions are drawn from a seeded PRNG, so a
    (program, seed) pair always produces the identical trace: every race
    count in EXPERIMENTS.md is reproducible.

    Threads are preempted only at instrumented operations, which matches
    the paper's execution model: library actions are atomic transitions
    (Section 3.1). *)

open Crd_base
open Crd_trace

exception Deadlock of string
(** Raised by {!run} when no thread is runnable but some are blocked. *)

exception Thread_failure of Tid.t * exn
(** An exception escaped a forked thread. *)

val run : ?seed:int64 -> ?sink:(Event.t -> unit) -> (unit -> unit) -> unit
(** [run main] executes [main] as thread [T0] until every thread has
    finished. Not reentrant: nested [run]s are rejected. *)

(** {1 Thread operations}

    All of the following must be called from inside a thread running
    under {!run}; calling them outside raises [Failure]. *)

val fork : (unit -> unit) -> Tid.t
(** Fork a child thread; emits a [Fork] event. *)

val join : Tid.t -> unit
(** Block until the thread finishes; emits a [Join] event {e when the
    join completes} (the point where the clocks merge). *)

val join_all : unit -> unit
(** Join every child forked so far by the calling thread (Fig 1's
    [joinall]). *)

val yield : unit -> unit
(** Reschedule without emitting an event. *)

val self : unit -> Tid.t

val new_lock : ?name:string -> unit -> Lock_id.t

val lock : Lock_id.t -> unit
(** Acquire (blocking); emits [Acquire]. Locks are not reentrant. *)

val unlock : Lock_id.t -> unit
(** @raise Failure if the caller does not hold the lock. *)

val with_lock : Lock_id.t -> (unit -> 'a) -> 'a

val emit : Event.op -> unit
(** Emit an arbitrary event in the current thread (used by monitored
    objects); also a preemption point. *)

val atomic : (unit -> 'a) -> 'a
(** [atomic f] brackets [f] with [Begin]/[End] transaction markers for
    the atomicity checker. The markers are purely declarative — they do
    {e not} suspend preemption; whether the block actually behaves
    atomically is exactly what {!Crd_atomicity} checks. Nesting is
    flattened (only the outermost block emits markers). *)
