open Crd_base
open Crd_trace

exception Deadlock of string
exception Thread_failure of Tid.t * exn

type _ Effect.t +=
  | E_fork : (unit -> unit) -> Tid.t Effect.t
  | E_join : Tid.t -> unit Effect.t
  | E_join_all : unit Effect.t
  | E_yield : unit Effect.t
  | E_self : Tid.t Effect.t
  | E_lock : Lock_id.t -> unit Effect.t
  | E_unlock : Lock_id.t -> unit Effect.t
  | E_emit : Event.op -> unit Effect.t

(* ------------------------------------------------------------------ *)
(* Scheduler state                                                     *)
(* ------------------------------------------------------------------ *)

type lock_state = {
  mutable holder : Tid.t option;
  mutable waiters : (Tid.t * (unit -> unit)) list;  (* FIFO: oldest last *)
}

type state = {
  prng : Prng.t;
  sink : Event.t -> unit;
  mutable runnable : (unit -> unit) array;
  mutable nrun : int;
  mutable next_tid : int;
  mutable live : int;  (* spawned and not yet finished *)
  mutable blocked : int;
  finished : (int, unit) Hashtbl.t;
  join_waiters : (int, (unit -> unit) list) Hashtbl.t;
  children : (int, Tid.t list) Hashtbl.t;
  locks : (int, lock_state) Hashtbl.t;
}

let current : state option ref = ref None

let state () =
  match !current with
  | Some st -> st
  | None -> failwith "Sched: thread operation used outside Sched.run"

let enqueue st f =
  if st.nrun = Array.length st.runnable then begin
    let bigger = Array.make (max 8 (2 * st.nrun)) f in
    Array.blit st.runnable 0 bigger 0 st.nrun;
    st.runnable <- bigger
  end;
  st.runnable.(st.nrun) <- f;
  st.nrun <- st.nrun + 1

(* Swap-remove a uniformly random runnable task. *)
let pick st =
  let i = if st.nrun = 1 then 0 else Prng.int st.prng st.nrun in
  let f = st.runnable.(i) in
  st.runnable.(i) <- st.runnable.(st.nrun - 1);
  st.nrun <- st.nrun - 1;
  f

let schedule st =
  if st.nrun > 0 then (pick st) ()
  else if st.blocked > 0 then
    raise
      (Deadlock
         (Printf.sprintf "%d thread(s) blocked with no runnable thread"
            st.blocked))

let lock_state st l =
  let key = Lock_id.id l in
  match Hashtbl.find_opt st.locks key with
  | Some ls -> ls
  | None ->
      let ls = { holder = None; waiters = [] } in
      Hashtbl.add st.locks key ls;
      ls

(* ------------------------------------------------------------------ *)
(* Thread execution                                                    *)
(* ------------------------------------------------------------------ *)

let rec exec st (tid : Tid.t) (f : unit -> unit) : unit =
  let open Effect.Deep in
  match_with f ()
    {
      retc = (fun () -> finish st tid);
      exnc = (fun e -> raise (Thread_failure (tid, e)));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | E_self ->
              Some (fun (k : (a, unit) continuation) -> continue k tid)
          | E_yield ->
              Some
                (fun (k : (a, unit) continuation) ->
                  enqueue st (fun () -> continue k ());
                  schedule st)
          | E_fork g ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let child = Tid.of_int st.next_tid in
                  st.next_tid <- st.next_tid + 1;
                  st.live <- st.live + 1;
                  let kids =
                    Option.value ~default:[]
                      (Hashtbl.find_opt st.children (Tid.to_int tid))
                  in
                  Hashtbl.replace st.children (Tid.to_int tid) (child :: kids);
                  st.sink { Event.tid; op = Event.Fork child };
                  enqueue st (fun () -> exec st child g);
                  enqueue st (fun () -> continue k child);
                  schedule st)
          | E_join u ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let resume () =
                    st.sink { Event.tid; op = Event.Join u };
                    continue k ()
                  in
                  if Hashtbl.mem st.finished (Tid.to_int u) then begin
                    enqueue st resume;
                    schedule st
                  end
                  else begin
                    st.blocked <- st.blocked + 1;
                    let ws =
                      Option.value ~default:[]
                        (Hashtbl.find_opt st.join_waiters (Tid.to_int u))
                    in
                    Hashtbl.replace st.join_waiters (Tid.to_int u)
                      (resume :: ws);
                    schedule st
                  end)
          | E_join_all ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let kids =
                    Option.value ~default:[]
                      (Hashtbl.find_opt st.children (Tid.to_int tid))
                  in
                  (* Join children one at a time, oldest first. *)
                  let rec join_seq kids () =
                    match kids with
                    | [] -> continue k ()
                    | u :: rest ->
                        join_one st tid u (fun () -> join_seq rest ())
                  in
                  join_seq (List.rev kids) ())
          | E_lock l ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let ls = lock_state st l in
                  (match ls.holder with
                  | None ->
                      ls.holder <- Some tid;
                      st.sink { Event.tid; op = Event.Acquire l };
                      enqueue st (fun () -> continue k ())
                  | Some _ ->
                      st.blocked <- st.blocked + 1;
                      ls.waiters <-
                        (tid, fun () -> continue k ()) :: ls.waiters);
                  schedule st)
          | E_unlock l ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let ls = lock_state st l in
                  (match ls.holder with
                  | Some h when Tid.equal h tid -> ()
                  | _ ->
                      failwith
                        (Printf.sprintf "Sched.unlock: %s does not hold %s"
                           (Fmt.str "%a" Tid.pp tid)
                           (Lock_id.name l)));
                  st.sink { Event.tid; op = Event.Release l };
                  (match List.rev ls.waiters with
                  | [] -> ls.holder <- None
                  | (wtid, wk) :: _ ->
                      ls.waiters <-
                        List.filter (fun (t, _) -> not (Tid.equal t wtid))
                          ls.waiters;
                      st.blocked <- st.blocked - 1;
                      ls.holder <- Some wtid;
                      enqueue st (fun () ->
                          st.sink { Event.tid = wtid; op = Event.Acquire l };
                          wk ()));
                  enqueue st (fun () -> continue k ());
                  schedule st)
          | E_emit op ->
              Some
                (fun (k : (a, unit) continuation) ->
                  st.sink { Event.tid; op };
                  enqueue st (fun () -> continue k ());
                  schedule st)
          | _ -> None);
    }

and join_one st tid u cont =
  if Hashtbl.mem st.finished (Tid.to_int u) then begin
    st.sink { Event.tid; op = Event.Join u };
    cont ()
  end
  else begin
    st.blocked <- st.blocked + 1;
    let resume () =
      st.sink { Event.tid; op = Event.Join u };
      cont ()
    in
    let ws =
      Option.value ~default:[] (Hashtbl.find_opt st.join_waiters (Tid.to_int u))
    in
    Hashtbl.replace st.join_waiters (Tid.to_int u) (resume :: ws);
    schedule st
  end

and finish st tid =
  Hashtbl.replace st.finished (Tid.to_int tid) ();
  st.live <- st.live - 1;
  (match Hashtbl.find_opt st.join_waiters (Tid.to_int tid) with
  | Some waiters ->
      Hashtbl.remove st.join_waiters (Tid.to_int tid);
      List.iter
        (fun w ->
          st.blocked <- st.blocked - 1;
          enqueue st w)
        (List.rev waiters)
  | None -> ());
  schedule st

(* ------------------------------------------------------------------ *)
(* Public API                                                          *)
(* ------------------------------------------------------------------ *)

let run ?(seed = 1L) ?(sink = fun _ -> ()) main =
  (match !current with
  | Some _ -> failwith "Sched.run: nested runs are not supported"
  | None -> ());
  let st =
    {
      prng = Prng.make seed;
      sink;
      runnable = Array.make 8 (fun () -> ());
      nrun = 0;
      next_tid = 1;
      live = 1;
      blocked = 0;
      finished = Hashtbl.create 64;
      join_waiters = Hashtbl.create 16;
      children = Hashtbl.create 16;
      locks = Hashtbl.create 16;
    }
  in
  current := Some st;
  Fun.protect
    ~finally:(fun () -> current := None)
    (fun () -> exec st Tid.main main)

let fork f = Effect.perform (E_fork f)
let join u = Effect.perform (E_join u)
let join_all () = Effect.perform E_join_all
let yield () = Effect.perform E_yield
let self () = Effect.perform E_self

let lock_counter = ref 0

let new_lock ?name () =
  ignore (state ());
  let id = !lock_counter in
  incr lock_counter;
  Lock_id.make ?name id

let lock l = Effect.perform (E_lock l)
let unlock l = Effect.perform (E_unlock l)

let with_lock l f =
  lock l;
  match f () with
  | v ->
      unlock l;
      v
  | exception e ->
      unlock l;
      raise e

let emit op = Effect.perform (E_emit op)

(* Nesting depth of atomic blocks, per thread. *)
let atomic_depth : (int, int) Hashtbl.t = Hashtbl.create 16

let atomic f =
  let tid = Tid.to_int (self ()) in
  let depth = Option.value ~default:0 (Hashtbl.find_opt atomic_depth tid) in
  Hashtbl.replace atomic_depth tid (depth + 1);
  if depth = 0 then emit Event.Begin;
  let finish () =
    Hashtbl.replace atomic_depth tid depth;
    if depth = 0 then emit Event.End
  in
  match f () with
  | v ->
      finish ();
      v
  | exception e ->
      finish ();
      raise e
