open Crd_base

type kind = Write_write | Write_read | Read_write

type t = { index : int; loc : Mem_loc.t; tid : Tid.t; kind : kind }

let kind_name = function
  | Write_write -> "write-write"
  | Write_read -> "write-read"
  | Read_write -> "read-write"

let pp ppf t =
  Fmt.pf ppf "%s race at event %d: %a accesses %a" (kind_name t.kind) t.index
    Tid.pp t.tid Mem_loc.pp t.loc

let distinct_locations reports =
  List.length
    (List.sort_uniq Mem_loc.compare (List.map (fun r -> r.loc) reports))
