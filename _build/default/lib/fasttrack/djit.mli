(** A DJIT+-style read-write race detector keeping full vector clocks per
    location. Asymptotically heavier than FastTrack but obviously correct;
    used as the reference oracle in the FastTrack equivalence tests. *)

open Crd_base
open Crd_vclock

type t

val create : unit -> t

val on_read :
  t -> index:int -> Tid.t -> Mem_loc.t -> Vclock.t -> Rw_report.t option

val on_write :
  t -> index:int -> Tid.t -> Mem_loc.t -> Vclock.t -> Rw_report.t list

val races : t -> Rw_report.t list
