lib/fasttrack/lockset.mli: Crd_base Lock_id Mem_loc Rw_report Tid
