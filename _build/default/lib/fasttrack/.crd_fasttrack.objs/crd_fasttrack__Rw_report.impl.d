lib/fasttrack/rw_report.ml: Crd_base Fmt List Mem_loc Tid
