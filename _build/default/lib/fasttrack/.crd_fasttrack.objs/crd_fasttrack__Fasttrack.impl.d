lib/fasttrack/fasttrack.ml: Crd_base Crd_vclock Hashtbl List Mem_loc Rw_report Vclock
