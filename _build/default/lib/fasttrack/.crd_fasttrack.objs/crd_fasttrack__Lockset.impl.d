lib/fasttrack/lockset.ml: Crd_base Hashtbl Int List Lock_id Mem_loc Option Rw_report Set Tid
