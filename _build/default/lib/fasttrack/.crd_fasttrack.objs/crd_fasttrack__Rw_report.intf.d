lib/fasttrack/rw_report.mli: Crd_base Fmt Mem_loc Tid
