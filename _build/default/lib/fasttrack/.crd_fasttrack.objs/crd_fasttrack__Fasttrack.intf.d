lib/fasttrack/fasttrack.mli: Crd_base Crd_vclock Mem_loc Rw_report Tid Vclock
