open Crd_base
open Crd_vclock

type shadow = { rvc : Vclock.t; wvc : Vclock.t }

module LocTbl = Hashtbl.Make (struct
  type t = Mem_loc.t

  let equal = Mem_loc.equal
  let hash = Mem_loc.hash
end)

type t = { shadows : shadow LocTbl.t; mutable reports : Rw_report.t list }

let create () = { shadows = LocTbl.create 1024; reports = [] }

let shadow t loc =
  match LocTbl.find_opt t.shadows loc with
  | Some s -> s
  | None ->
      let s = { rvc = Vclock.bot (); wvc = Vclock.bot () } in
      LocTbl.add t.shadows loc s;
      s

let report t ~index ~tid ~loc kind =
  let r = { Rw_report.index; loc; tid; kind } in
  t.reports <- r :: t.reports;
  r

let on_read t ~index tid loc clock =
  let s = shadow t loc in
  let race =
    if not (Vclock.leq s.wvc clock) then
      Some (report t ~index ~tid ~loc Rw_report.Write_read)
    else None
  in
  Vclock.set s.rvc tid (Vclock.get clock tid);
  race

let on_write t ~index tid loc clock =
  let s = shadow t loc in
  let races = ref [] in
  if not (Vclock.leq s.wvc clock) then
    races := report t ~index ~tid ~loc Rw_report.Write_write :: !races;
  if not (Vclock.leq s.rvc clock) then
    races := report t ~index ~tid ~loc Rw_report.Read_write :: !races;
  Vclock.set s.wvc tid (Vclock.get clock tid);
  List.rev !races

let races t = List.rev t.reports
