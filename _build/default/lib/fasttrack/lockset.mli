(** An Eraser-style lockset race detector (Savage et al., SOSP'97) — the
    classic lock-discipline alternative to happens-before detection,
    included as a second low-level baseline.

    Each location's candidate lockset starts as "all locks" and is
    intersected with the current thread's held locks at every access
    (reads by a single thread are exempt until sharing is observed, per
    Eraser's state machine). An empty candidate set means no single lock
    consistently protects the location — a potential race.

    Lockset detection is incomparable to happens-before detection: it
    flags fork/join-ordered accesses that never raced (false positives
    w.r.t. Definition 4.3) and — because of the first-thread exemption in
    its state machine — can miss races FastTrack reports. The test suite
    exercises both divergences explicitly. *)

open Crd_base

type state = Virgin | Exclusive of Tid.t | Shared | Shared_modified | Alarmed

type t

val create : unit -> t

val on_acquire : t -> Tid.t -> Lock_id.t -> unit
val on_release : t -> Tid.t -> Lock_id.t -> unit

val on_read : t -> index:int -> Tid.t -> Mem_loc.t -> Rw_report.t option
val on_write : t -> index:int -> Tid.t -> Mem_loc.t -> Rw_report.t list
(** At most one alarm is raised per location (Eraser semantics). *)

val state_of : t -> Mem_loc.t -> state
val races : t -> Rw_report.t list
