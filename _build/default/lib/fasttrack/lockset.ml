open Crd_base

type state = Virgin | Exclusive of Tid.t | Shared | Shared_modified | Alarmed

module LockSet = Set.Make (struct
  type t = int

  let compare = Int.compare
end)

type shadow = {
  mutable st : state;
  mutable candidates : LockSet.t option;  (* None = "all locks" (top) *)
}

module LocTbl = Hashtbl.Make (struct
  type t = Mem_loc.t

  let equal = Mem_loc.equal
  let hash = Mem_loc.hash
end)

type t = {
  shadows : shadow LocTbl.t;
  held : (int, LockSet.t) Hashtbl.t;  (* per thread *)
  mutable reports : Rw_report.t list;
}

let create () =
  { shadows = LocTbl.create 256; held = Hashtbl.create 16; reports = [] }

let held t tid =
  Option.value ~default:LockSet.empty (Hashtbl.find_opt t.held (Tid.to_int tid))

let on_acquire t tid l =
  Hashtbl.replace t.held (Tid.to_int tid)
    (LockSet.add (Lock_id.id l) (held t tid))

let on_release t tid l =
  Hashtbl.replace t.held (Tid.to_int tid)
    (LockSet.remove (Lock_id.id l) (held t tid))

let shadow t loc =
  match LocTbl.find_opt t.shadows loc with
  | Some s -> s
  | None ->
      let s = { st = Virgin; candidates = None } in
      LocTbl.add t.shadows loc s;
      s

let intersect t tid (s : shadow) =
  let locks = held t tid in
  s.candidates <-
    (match s.candidates with
    | None -> Some locks
    | Some c -> Some (LockSet.inter c locks))

let empty_candidates (s : shadow) =
  match s.candidates with Some c -> LockSet.is_empty c | None -> false

let alarm t ~index ~tid ~loc kind (s : shadow) =
  s.st <- Alarmed;
  let r = { Rw_report.index; loc; tid; kind } in
  t.reports <- r :: t.reports;
  r

let on_read t ~index tid loc =
  let s = shadow t loc in
  match s.st with
  | Alarmed -> None
  | Virgin ->
      s.st <- Exclusive tid;
      None
  | Exclusive owner when Tid.equal owner tid -> None
  | Exclusive _ | Shared ->
      s.st <- Shared;
      intersect t tid s;
      (* Eraser does not alarm on read sharing with empty locksets until a
         write is involved. *)
      None
  | Shared_modified ->
      intersect t tid s;
      if empty_candidates s then
        Some (alarm t ~index ~tid ~loc Rw_report.Write_read s)
      else None

let on_write t ~index tid loc =
  let s = shadow t loc in
  match s.st with
  | Alarmed -> []
  | Virgin ->
      s.st <- Exclusive tid;
      []
  | Exclusive owner when Tid.equal owner tid -> []
  | Exclusive _ | Shared | Shared_modified ->
      s.st <- Shared_modified;
      intersect t tid s;
      if empty_candidates s then
        [ alarm t ~index ~tid ~loc Rw_report.Write_write s ]
      else []

let state_of t loc =
  match LocTbl.find_opt t.shadows loc with
  | Some s -> s.st
  | None -> Virgin

let races t = List.rev t.reports
