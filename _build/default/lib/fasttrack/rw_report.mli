(** Low-level (read-write) race reports, as produced by FastTrack and
    DJIT+. These are the "FASTTRACK" columns of Table 2. *)

open Crd_base

type kind = Write_write | Write_read | Read_write

type t = { index : int; loc : Mem_loc.t; tid : Tid.t; kind : kind }

val kind_name : kind -> string
val pp : t Fmt.t

val distinct_locations : t list -> int
(** The "(distinct)" count of Table 2: number of distinct memory
    locations (variables) with at least one race. *)
