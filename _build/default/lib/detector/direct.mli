(** The direct (naive) commutativity race detector of Section 5.1.

    Works on the logical specification itself: every observed action is
    recorded, and each new action is checked against {e all} previously
    recorded actions of the same object — Theta(|A|) commutativity checks
    per action. It exists as the baseline for the access-point ablation
    (Fig 4, Section 5.4) and as the reference oracle for the precision
    property of Theorem 5.1: on any trace, {!Rd2} reports a race at an
    event iff [Direct] does. *)

open Crd_base
open Crd_vclock
open Crd_trace
open Crd_spec

type stats = {
  mutable actions : int;
  mutable lookups : int;  (** pairwise commutativity checks *)
  mutable races : int;
}

type t

val create : spec_for:(Obj_id.t -> Spec.t option) -> unit -> t

val on_action :
  t -> index:int -> Tid.t -> Action.t -> Vclock.t -> Report.t list

val release_object : t -> Obj_id.t -> unit
val stats : t -> stats
val races : t -> Report.t list
