open Crd_base
open Crd_trace

type t = {
  index : int;
  obj : Obj_id.t;
  tid : Tid.t;
  action : Action.t;
  point : string;
  conflicting : string;
  prior : (Tid.t * Action.t) option;
}

let pp ppf t =
  Fmt.pf ppf "commutativity race at event %d: %a: %a [%s conflicts with %s]"
    t.index Tid.pp t.tid Action.pp t.action t.point t.conflicting;
  match t.prior with
  | None -> ()
  | Some (tid, a) -> Fmt.pf ppf " last touched by %a: %a" Tid.pp tid Action.pp a

let distinct_objects reports =
  let ids = List.sort_uniq Int.compare (List.map (fun r -> Obj_id.id r.obj) reports) in
  List.length ids
