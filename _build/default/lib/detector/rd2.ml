open Crd_base
open Crd_vclock
open Crd_trace
open Crd_apoint

type mode = [ `Constant | `Linear ]

type stats = {
  mutable actions : int;
  mutable lookups : int;
  mutable races : int;
}

type entry = {
  mutable vc : Vclock.t;  (* join of clocks of all touchers *)
  mutable last_tid : Tid.t;
  mutable last_action : Action.t;
}

type obj_state = { repr : Repr.t; active : entry Point.Tbl.t }

type t = {
  mode : mode;
  repr_for : Obj_id.t -> Repr.t option;
  objects : (int, obj_state option) Hashtbl.t;
  stats : stats;
  mutable reports : Report.t list;  (* newest first *)
}

let create ?(mode = `Constant) ~repr_for () =
  {
    mode;
    repr_for;
    objects = Hashtbl.create 64;
    stats = { actions = 0; lookups = 0; races = 0 };
    reports = [];
  }

let obj_state t (o : Obj_id.t) =
  let key = Obj_id.id o in
  match Hashtbl.find_opt t.objects key with
  | Some st -> st
  | None ->
      let st =
        match t.repr_for o with
        | None -> None
        | Some repr -> Some { repr; active = Point.Tbl.create 16 }
      in
      Hashtbl.add t.objects key st;
      st

let release_object t o = Hashtbl.remove t.objects (Obj_id.id o)

let active_points t o =
  match Hashtbl.find_opt t.objects (Obj_id.id o) with
  | Some (Some st) -> Point.Tbl.length st.active
  | _ -> 0

let report t ~index ~tid ~(action : Action.t) ~repr ~pt ~pt' ~(entry : entry) =
  let desc p =
    match (p : Point.t) with
    | Point.Ds id -> Repr.shape_desc repr id
    | Point.Keyed (id, v) ->
        Printf.sprintf "%s[%s]" (Repr.shape_desc repr id) (Value.to_string v)
  in
  t.stats.races <- t.stats.races + 1;
  let r =
    {
      Report.index;
      obj = action.Action.obj;
      tid;
      action;
      point = desc pt;
      conflicting = desc pt';
      prior = Some (entry.last_tid, entry.last_action);
    }
  in
  t.reports <- r :: t.reports;
  r

let on_action t ~index tid (action : Action.t) vc =
  match obj_state t action.Action.obj with
  | None -> []
  | Some st ->
      t.stats.actions <- t.stats.actions + 1;
      let points = Repr.eta st.repr action in
      (* Phase 1: check for commutativity races. *)
      let found = ref [] in
      List.iter
        (fun pt ->
          match t.mode with
          | `Constant ->
              List.iter
                (fun pt' ->
                  t.stats.lookups <- t.stats.lookups + 1;
                  match Point.Tbl.find_opt st.active pt' with
                  | Some entry when not (Vclock.leq entry.vc vc) ->
                      found :=
                        report t ~index ~tid ~action ~repr:st.repr ~pt ~pt'
                          ~entry
                        :: !found
                  | _ -> ())
                (Repr.conflicts st.repr pt)
          | `Linear ->
              Point.Tbl.iter
                (fun pt' entry ->
                  t.stats.lookups <- t.stats.lookups + 1;
                  if
                    Repr.conflict st.repr pt pt'
                    && not (Vclock.leq entry.vc vc)
                  then
                    found :=
                      report t ~index ~tid ~action ~repr:st.repr ~pt ~pt'
                        ~entry
                      :: !found)
                st.active)
        points;
      (* Phase 2: update the auxiliary state. *)
      List.iter
        (fun pt ->
          match Point.Tbl.find_opt st.active pt with
          | Some entry ->
              Vclock.join_into ~into:entry.vc vc;
              entry.last_tid <- tid;
              entry.last_action <- action
          | None ->
              Point.Tbl.add st.active pt
                { vc = Vclock.copy vc; last_tid = tid; last_action = action })
        points;
      List.rev !found

let stats t = t.stats
let races t = List.rev t.reports
