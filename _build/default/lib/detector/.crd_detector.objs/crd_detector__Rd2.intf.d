lib/detector/rd2.mli: Action Crd_apoint Crd_base Crd_trace Crd_vclock Obj_id Report Repr Tid Vclock
