lib/detector/direct.mli: Action Crd_base Crd_spec Crd_trace Crd_vclock Obj_id Report Spec Tid Vclock
