lib/detector/rd2.ml: Action Crd_apoint Crd_base Crd_trace Crd_vclock Hashtbl List Obj_id Point Printf Report Repr Tid Value Vclock
