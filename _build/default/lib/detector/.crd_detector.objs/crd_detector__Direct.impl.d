lib/detector/direct.ml: Action Crd_base Crd_spec Crd_trace Crd_vclock Hashtbl List Obj_id Report Spec Tid Vclock
