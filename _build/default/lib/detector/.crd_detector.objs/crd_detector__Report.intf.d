lib/detector/report.mli: Action Crd_base Crd_trace Fmt Obj_id Tid
