lib/detector/report.ml: Action Crd_base Crd_trace Fmt Int List Obj_id Tid
