(** Commutativity race reports.

    A report is emitted at the event that closes the race: the current
    action touched an access point that conflicts with an access point
    previously touched by a concurrent action (Definition 4.3).

    Algorithm 1 joins the clocks of all previous touchers of a point into
    one vector clock, so the precise identity of the earlier racing action
    is not retained by the algorithm; [prior] is the {e most recent}
    toucher of the conflicting point, which is the exact racing action in
    the common case and a representative hint otherwise. *)

open Crd_base
open Crd_trace

type t = {
  index : int;  (** trace position of the event that closed the race *)
  obj : Obj_id.t;
  tid : Tid.t;
  action : Action.t;
  point : string;  (** description of the access point touched *)
  conflicting : string;  (** description of the conflicting point *)
  prior : (Tid.t * Action.t) option;
}

val pp : t Fmt.t

val distinct_objects : t list -> int
(** Number of distinct objects racing — the "(distinct)" column of
    Table 2. *)
