open Crd_base
open Crd_vclock
open Crd_trace
open Crd_spec

type stats = {
  mutable actions : int;
  mutable lookups : int;
  mutable races : int;
}

type past = { action : Action.t; tid : Tid.t; vc : Vclock.t }

type obj_state = { spec : Spec.t; mutable history : past list }

type t = {
  spec_for : Obj_id.t -> Spec.t option;
  objects : (int, obj_state option) Hashtbl.t;
  stats : stats;
  mutable reports : Report.t list;
}

let create ~spec_for () =
  {
    spec_for;
    objects = Hashtbl.create 64;
    stats = { actions = 0; lookups = 0; races = 0 };
    reports = [];
  }

let obj_state t (o : Obj_id.t) =
  let key = Obj_id.id o in
  match Hashtbl.find_opt t.objects key with
  | Some st -> st
  | None ->
      let st =
        match t.spec_for o with
        | None -> None
        | Some spec -> Some { spec; history = [] }
      in
      Hashtbl.add t.objects key st;
      st

let release_object t o = Hashtbl.remove t.objects (Obj_id.id o)

let on_action t ~index tid (action : Action.t) vc =
  match obj_state t action.Action.obj with
  | None -> []
  | Some st ->
      t.stats.actions <- t.stats.actions + 1;
      let found = ref [] in
      List.iter
        (fun (p : past) ->
          t.stats.lookups <- t.stats.lookups + 1;
          if
            (not (Spec.commute st.spec p.action action))
            && not (Vclock.leq p.vc vc)
          then begin
            t.stats.races <- t.stats.races + 1;
            let r =
              {
                Report.index;
                obj = action.Action.obj;
                tid;
                action;
                point = Action.to_string action;
                conflicting = Action.to_string p.action;
                prior = Some (p.tid, p.action);
              }
            in
            t.reports <- r :: t.reports;
            found := r :: !found
          end)
        st.history;
      st.history <- { action; tid; vc = Vclock.copy vc } :: st.history;
      List.rev !found

let stats t = t.stats
let races t = List.rev t.reports
