lib/core/crd.ml: Analyzer Crd_apoint Crd_atomicity Crd_base Crd_detector Crd_fasttrack Crd_runtime Crd_semantics Crd_spec Crd_spec_parser Crd_stdspecs Crd_trace Crd_vclock
