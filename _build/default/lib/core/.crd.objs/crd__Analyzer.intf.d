lib/core/analyzer.mli: Crd_atomicity Crd_base Crd_detector Crd_fasttrack Crd_spec Crd_trace Direct Event Fasttrack Fmt Obj_id Rd2 Report Rw_report Spec Trace
