lib/vclock/vclock.ml: Array Crd_base Fmt Stdlib Tid
