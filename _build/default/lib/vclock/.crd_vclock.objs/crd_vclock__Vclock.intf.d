lib/vclock/vclock.mli: Crd_base Fmt Tid
