lib/boost/boost.ml: Action Crd_apoint Crd_base Crd_runtime Crd_trace Hashtbl List Monitored Obj_id Sched Value
