lib/boost/boost.mli: Crd_apoint Crd_base Crd_runtime Monitored Value
