(** Transactional boosting over access points — the paper's "optimistic
    concurrency" application of the representation (Sections 1, 2 and 8;
    cf. Herlihy & Koskinen's transactional boosting and Kulkarni et al.'s
    abstract locks, whose SIMPLE fragment ECL extends).

    A boosted transaction operates on monitored dictionaries through a
    transaction handle. Each operation:

    + computes the access points it would touch (via the translated
      representation — the same [eta] the race detector uses);
    + acquires them as {e abstract locks}: two transactions may hold
      points concurrently iff the points do not conflict ([o:r:k] is
      effectively a per-key shared mode, [o:w:k] exclusive, [o:size] /
      [o:resize] a size-structure mode — all derived from the
      specification, not hand-written);
    + buffers writes; nothing touches the shared object until commit.

    On a lock conflict the transaction aborts (buffers dropped — there is
    nothing to undo), backs off and retries. At commit the buffered
    writes are applied to the real objects, between [Begin]/[End]
    markers, while all locks are still held — so the emitted trace is
    conflict-serializable by construction (two-phase locking over a
    conflict relation that is sound for commutativity). The test suite
    checks exactly that: boosted counters never lose updates and the
    {!Crd_atomicity} checker finds no violations in boosted traces. *)

open Crd_base
open Crd_runtime

type t

val create : repr:Crd_apoint.Repr.t -> unit -> t
(** One manager per object family; [repr] must cover the methods used
    (use the dictionary representation for {!Monitored.Dict}). *)

type txn

val atomic : t -> (txn -> 'a) -> 'a
(** Run a boosted transaction, retrying on abort.
    @raise Failure after an excessive number of retries (livelock
    guard). Must run inside {!Sched.run}; the function may be re-executed
    and so must be idempotent apart from its transactional effects. *)

val get : txn -> Monitored.Dict.t -> Value.t -> Value.t
val put : txn -> Monitored.Dict.t -> Value.t -> Value.t -> Value.t
(** Returns the previous value as observed by this transaction. *)

val size : txn -> Monitored.Dict.t -> int

type stats = {
  mutable commits : int;
  mutable aborts : int;
  mutable acquisitions : int;
}

val stats : t -> stats
