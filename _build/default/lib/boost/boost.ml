open Crd_base
open Crd_trace
open Crd_runtime
module Repr = Crd_apoint.Repr
module Point = Crd_apoint.Point

type stats = {
  mutable commits : int;
  mutable aborts : int;
  mutable acquisitions : int;
}

module VTbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

(* Abstract lock table: which transactions hold which (object, point). *)
module PTbl = Hashtbl.Make (struct
  type t = int * Point.t (* object id, point *)

  let equal (o1, p1) (o2, p2) = o1 = o2 && Point.equal p1 p2
  let hash (o, p) = Hashtbl.hash (o, Point.hash p)
end)

type t = {
  repr : Repr.t;
  holders : int list ref PTbl.t;
  stats : stats;
  mutable next_txn : int;
}

exception Abort

type txn = {
  mgr : t;
  id : int;
  mutable held : (int * Point.t) list;
  (* Per object: the dictionary handle plus this transaction's write
     buffer (committed values are read through the real object). *)
  buffers : (int, Monitored.Dict.t * Value.t VTbl.t) Hashtbl.t;
}

let create ~repr () =
  {
    repr;
    holders = PTbl.create 64;
    stats = { commits = 0; aborts = 0; acquisitions = 0 };
    next_txn = 0;
  }

let stats t = t.stats

(* ------------------------------------------------------------------ *)
(* Abstract locking                                                    *)
(* ------------------------------------------------------------------ *)

let holders_of t key =
  match PTbl.find_opt t.holders key with
  | Some l -> l
  | None ->
      let l = ref [] in
      PTbl.add t.holders key l;
      l

let holds txn key =
  List.exists (fun k -> k = (fst key, snd key)) txn.held

(* Acquire the abstract lock for [pt] on object [oid]: fails (aborts the
   transaction) if any *other* transaction holds a conflicting point. *)
let acquire txn oid pt =
  let t = txn.mgr in
  let key = (oid, pt) in
  if holds txn key then ()
  else begin
    let conflicting =
      List.exists
        (fun pt' ->
          match PTbl.find_opt t.holders (oid, pt') with
          | Some l -> List.exists (fun id -> id <> txn.id) !l
          | None -> false)
        (Repr.conflicts t.repr pt)
    in
    if conflicting then raise Abort;
    t.stats.acquisitions <- t.stats.acquisitions + 1;
    let l = holders_of t key in
    l := txn.id :: !l;
    txn.held <- key :: txn.held
  end

let release_all txn =
  let t = txn.mgr in
  List.iter
    (fun key ->
      match PTbl.find_opt t.holders key with
      | Some l -> l := List.filter (fun id -> id <> txn.id) !l
      | None -> ())
    txn.held;
  txn.held <- []

(* ------------------------------------------------------------------ *)
(* Transactional operations                                            *)
(* ------------------------------------------------------------------ *)

let buffer txn (d : Monitored.Dict.t) =
  let oid = Obj_id.id (Monitored.Dict.obj_id d) in
  match Hashtbl.find_opt txn.buffers oid with
  | Some (_, buf) -> (oid, buf)
  | None ->
      let buf = VTbl.create 8 in
      Hashtbl.add txn.buffers oid (d, buf);
      (oid, buf)

(* Read through the buffer; uncommitted writes win. Reads of the real
   object go through the *uninstrumented* accessors — the transaction's
   linearized effect is emitted at commit. *)
let peek txn d k =
  let _, buf = buffer txn d in
  match VTbl.find_opt buf k with
  | Some v -> v
  | None -> Monitored.Dict.raw_get d k

let action_for txn (d : Monitored.Dict.t) meth args rets =
  ignore txn;
  Action.make ~obj:(Monitored.Dict.obj_id d) ~meth ~args ~rets ()

let lock_action txn d a =
  let oid = Obj_id.id (Monitored.Dict.obj_id d) in
  List.iter (fun pt -> acquire txn oid pt) (Repr.eta txn.mgr.repr a)

let get txn d k =
  let v = peek txn d k in
  lock_action txn d (action_for txn d "get" [ k ] [ v ]);
  v

let put txn d k v =
  let p = peek txn d k in
  lock_action txn d (action_for txn d "put" [ k; v ] [ p ]);
  let _, buf = buffer txn d in
  VTbl.replace buf k v;
  p

let size txn d =
  (* The buffered size: real size adjusted by buffered inserts/removes. *)
  let _, buf = buffer txn d in
  let n = ref (Monitored.Dict.raw_size d) in
  VTbl.iter
    (fun k v ->
      let before = Monitored.Dict.raw_get d k in
      if Value.is_nil before && not (Value.is_nil v) then incr n
      else if (not (Value.is_nil before)) && Value.is_nil v then decr n)
    buf;
  lock_action txn d (action_for txn d "size" [] [ Value.Int !n ]);
  !n

(* ------------------------------------------------------------------ *)
(* The transaction loop                                                *)
(* ------------------------------------------------------------------ *)

let max_retries = 10_000

let commit txn =
  (* Apply buffered writes to the real objects while every abstract lock
     is still held; the emitted Call events form one contiguous,
     conflict-isolated block. *)
  Sched.atomic (fun () ->
      Hashtbl.iter
        (fun _ (d, buf) ->
          VTbl.iter (fun k v -> ignore (Monitored.Dict.put d k v)) buf)
        txn.buffers);
  txn.mgr.stats.commits <- txn.mgr.stats.commits + 1

let atomic t f =
  let rec attempt n =
    if n > max_retries then
      failwith "Boost.atomic: too many retries (livelock?)";
    let txn =
      t.next_txn <- t.next_txn + 1;
      { mgr = t; id = t.next_txn; held = []; buffers = Hashtbl.create 4 }
    in
    match f txn with
    | result ->
        commit txn;
        release_all txn;
        result
    | exception Abort ->
        release_all txn;
        t.stats.aborts <- t.stats.aborts + 1;
        (* Back off increasingly: let competing transactions finish. *)
        for _ = 1 to min n 8 do
          Sched.yield ()
        done;
        attempt (n + 1)
    | exception e ->
        release_all txn;
        raise e
  in
  attempt 1
