(** A dynamic atomicity (conflict-serializability) checker generalized to
    commutativity conflicts.

    Velodrome (Flanagan, Freund & Yi, PLDI'08) checks that the
    transactional happens-before graph of an execution is acyclic, using
    a low-level read/write notion of conflict. The paper argues
    (Sections 2 and 8) that the access-point representation generalizes
    such analyses to library-level conflicts; this module is that
    generalization:

    - events between [Begin] and [End] markers of a thread form one
      transaction; actions outside any block are unary transactions;
    - transactions are ordered by program order, fork/join, lock
      release/acquire, and — the commutativity part — whenever two
      transactions touch {e conflicting access points};
    - a cycle in this graph witnesses a non-serializable execution: the
      atomic block cannot be understood as executing at one point.

    Two non-commuting operations inside atomic blocks thus do not, by
    themselves, constitute a violation — only a cyclic conflict pattern
    does, which is exactly what distinguishes atomicity checking from
    (commutativity) race detection. *)

open Crd_base
open Crd_trace
open Crd_apoint

type violation = {
  index : int;  (** trace position of the edge that closed the cycle *)
  obj : Obj_id.t;  (** object whose conflict closed the cycle *)
  tid : Tid.t;
  action : Action.t;
  cycle : int list;  (** transaction ids along the cycle *)
}

val pp_violation : violation Fmt.t

type t

val create : repr_for:(Obj_id.t -> Repr.t option) -> unit -> t

val step : t -> index:int -> Event.t -> violation option
(** Feed one event; returns the violation closed by this event, if any.
    The checker keeps running after a violation (subsequent duplicates
    of the same cyclic pattern are suppressed per transaction pair). *)

val violations : t -> violation list
val transactions : t -> int
(** Number of transactions created so far (for tests and stats). *)
