lib/atomicity/atomicity.mli: Action Crd_apoint Crd_base Crd_trace Event Fmt Obj_id Repr Tid
