lib/atomicity/atomicity.ml: Action Crd_apoint Crd_base Crd_trace Event Fmt Hashtbl List Lock_id Mem_loc Obj_id Point Repr Tid
