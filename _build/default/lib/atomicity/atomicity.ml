open Crd_base
open Crd_trace
open Crd_apoint

type violation = {
  index : int;
  obj : Obj_id.t;
  tid : Tid.t;
  action : Action.t;
  cycle : int list;
}

let pp_violation ppf v =
  Fmt.pf ppf
    "atomicity violation at event %d: %a: %a on %a closes the cycle %a" v.index
    Tid.pp v.tid Action.pp v.action Obj_id.pp v.obj
    Fmt.(list ~sep:(any " -> ") (fun ppf i -> pf ppf "tx%d" i))
    v.cycle

type thread_state = {
  mutable current : int option;  (* transaction in progress *)
  mutable in_block : bool;  (* inside Begin/End *)
  mutable last : int option;  (* most recent transaction (for program order) *)
}

type obj_state = {
  repr : Repr.t;
  (* Last transaction per thread to touch each access point. *)
  touchers : (int * int) list Point.Tbl.t;  (* point -> (tid, txn) list *)
}

module LocTbl = Hashtbl.Make (struct
  type t = Mem_loc.t

  let equal = Mem_loc.equal
  let hash = Mem_loc.hash
end)

type loc_state = {
  mutable readers : (int * int) list;  (* (tid, txn) last reader per thread *)
  mutable writer : int option;  (* last writing transaction *)
}

type t = {
  repr_for : Obj_id.t -> Repr.t option;
  threads : (int, thread_state) Hashtbl.t;
  objects : (int, obj_state option) Hashtbl.t;
  locs : loc_state LocTbl.t;
  (* The transactional happens-before graph. *)
  succs : (int, int list ref) Hashtbl.t;
  locks : (int, int) Hashtbl.t;  (* lock id -> last releasing txn *)
  pending_fork : (int, int) Hashtbl.t;  (* child tid -> forking txn *)
  mutable next_txn : int;
  mutable reported : (int * int) list;  (* suppressed violation pairs *)
  mutable violations : violation list;
}

let create ~repr_for () =
  {
    repr_for;
    threads = Hashtbl.create 16;
    objects = Hashtbl.create 32;
    locs = LocTbl.create 64;
    succs = Hashtbl.create 64;
    locks = Hashtbl.create 8;
    pending_fork = Hashtbl.create 8;
    next_txn = 0;
    reported = [];
    violations = [];
  }

let transactions t = t.next_txn
let violations t = List.rev t.violations

let thread t tid =
  let key = Tid.to_int tid in
  match Hashtbl.find_opt t.threads key with
  | Some st -> st
  | None ->
      let st = { current = None; in_block = false; last = None } in
      Hashtbl.add t.threads key st;
      st

let obj_state t (o : Obj_id.t) =
  let key = Obj_id.id o in
  match Hashtbl.find_opt t.objects key with
  | Some st -> st
  | None ->
      let st =
        match t.repr_for o with
        | None -> None
        | Some repr -> Some { repr; touchers = Point.Tbl.create 16 }
      in
      Hashtbl.add t.objects key st;
      st

let loc_state t loc =
  match LocTbl.find_opt t.locs loc with
  | Some s -> s
  | None ->
      let s = { readers = []; writer = None } in
      LocTbl.add t.locs loc s;
      s

(* ------------------------------------------------------------------ *)
(* Graph                                                               *)
(* ------------------------------------------------------------------ *)

let succs_of t a =
  match Hashtbl.find_opt t.succs a with
  | Some l -> !l
  | None -> []

(* Path from [src] to [dst], if any (DFS). *)
let path t ~src ~dst =
  let visited = Hashtbl.create 16 in
  let rec go node acc =
    if node = dst then Some (List.rev (node :: acc))
    else if Hashtbl.mem visited node then None
    else begin
      Hashtbl.add visited node ();
      List.find_map (fun next -> go next (node :: acc)) (succs_of t node)
    end
  in
  go src []

(* Add edge a -> b; if b already reaches a, this closes a cycle. *)
let add_edge t a b =
  if a = b then None
  else begin
    let outs =
      match Hashtbl.find_opt t.succs a with
      | Some l -> l
      | None ->
          let l = ref [] in
          Hashtbl.add t.succs a l;
          l
    in
    if List.mem b !outs then None
    else begin
      let cycle = path t ~src:b ~dst:a in
      outs := b :: !outs;
      cycle
    end
  end

(* ------------------------------------------------------------------ *)
(* Transactions                                                        *)
(* ------------------------------------------------------------------ *)

let fresh_txn t tid =
  let id = t.next_txn in
  t.next_txn <- id + 1;
  let st = thread t tid in
  (* Program order: the thread's previous transaction precedes this one. *)
  (match st.last with Some prev -> ignore (add_edge t prev id) | None -> ());
  (* Fork edge: the forker's transaction precedes the child's first. *)
  (match Hashtbl.find_opt t.pending_fork (Tid.to_int tid) with
  | Some parent ->
      Hashtbl.remove t.pending_fork (Tid.to_int tid);
      ignore (add_edge t parent id)
  | None -> ());
  st.last <- Some id;
  id

(* The transaction an operation of [tid] belongs to. *)
let current_txn t tid =
  let st = thread t tid in
  match st.current with
  | Some txn -> (txn, st.in_block)
  | None ->
      let txn = fresh_txn t tid in
      if st.in_block then st.current <- Some txn;
      (txn, st.in_block)

(* A synchronization operation of a thread outside a block is attached to
   a fresh unary transaction so sync edges are still recorded. *)
let sync_txn t tid =
  let st = thread t tid in
  match st.current with Some txn -> txn | None -> fresh_txn t tid

(* ------------------------------------------------------------------ *)
(* Conflict recording                                                  *)
(* ------------------------------------------------------------------ *)

let record_conflicts t ~index ~tid ~action txn (st : obj_state) =
  let points = Repr.eta st.repr action in
  let found = ref None in
  List.iter
    (fun pt ->
      List.iter
        (fun pt' ->
          match Point.Tbl.find_opt st.touchers pt' with
          | None -> ()
          | Some entries ->
              List.iter
                (fun (_, prior) ->
                  if prior <> txn && !found = None then
                    match add_edge t prior txn with
                    | Some cycle when not (List.mem (prior, txn) t.reported) ->
                        t.reported <- (prior, txn) :: t.reported;
                        found :=
                          Some
                            {
                              index;
                              obj = action.Action.obj;
                              tid;
                              action;
                              cycle;
                            }
                    | _ -> ()
                  else if prior <> txn then ignore (add_edge t prior txn))
                entries)
        (Repr.conflicts st.repr pt))
    points;
  (* Update the touch tables. *)
  List.iter
    (fun pt ->
      let entries =
        match Point.Tbl.find_opt st.touchers pt with
        | Some l -> List.filter (fun (tid', _) -> tid' <> Tid.to_int tid) l
        | None -> []
      in
      Point.Tbl.replace st.touchers pt ((Tid.to_int tid, txn) :: entries))
    points;
  !found

let record_rw t ~tid txn loc ~is_write =
  let s = loc_state t loc in
  let cycles = ref None in
  let note = function
    | Some cycle when !cycles = None -> cycles := Some cycle
    | _ -> ()
  in
  if is_write then begin
    (match s.writer with
    | Some w when w <> txn -> note (add_edge t w txn)
    | _ -> ());
    List.iter (fun (_, r) -> if r <> txn then note (add_edge t r txn)) s.readers;
    s.writer <- Some txn
  end
  else begin
    (match s.writer with
    | Some w when w <> txn -> note (add_edge t w txn)
    | _ -> ());
    s.readers <-
      (Tid.to_int tid, txn)
      :: List.filter (fun (tid', _) -> tid' <> Tid.to_int tid) s.readers
  end;
  !cycles

(* ------------------------------------------------------------------ *)
(* Event dispatch                                                      *)
(* ------------------------------------------------------------------ *)

let step t ~index (e : Event.t) =
  let tid = e.Event.tid in
  match e.Event.op with
  | Event.Begin ->
      let st = thread t tid in
      st.in_block <- true;
      st.current <- None;
      None
  | Event.End ->
      let st = thread t tid in
      st.in_block <- false;
      st.current <- None;
      None
  | Event.Call action -> (
      match obj_state t action.Action.obj with
      | None -> None
      | Some ost ->
          let txn, _ = current_txn t tid in
          let v = record_conflicts t ~index ~tid ~action txn ost in
          (match v with
          | Some violation -> t.violations <- violation :: t.violations
          | None -> ());
          v)
  | Event.Read loc ->
      let txn, _ = current_txn t tid in
      (match record_rw t ~tid txn loc ~is_write:false with
      | Some cycle ->
          let action =
            Action.make
              ~obj:(Obj_id.make ~name:(Fmt.str "%a" Mem_loc.pp loc) (-2))
              ~meth:"read" ()
          in
          let v = { index; obj = action.Action.obj; tid; action; cycle } in
          t.violations <- v :: t.violations;
          Some v
      | None -> None)
  | Event.Write loc ->
      let txn, _ = current_txn t tid in
      (match record_rw t ~tid txn loc ~is_write:true with
      | Some cycle ->
          let action =
            Action.make
              ~obj:(Obj_id.make ~name:(Fmt.str "%a" Mem_loc.pp loc) (-2))
              ~meth:"write" ()
          in
          let v = { index; obj = action.Action.obj; tid; action; cycle } in
          t.violations <- v :: t.violations;
          Some v
      | None -> None)
  | Event.Fork child ->
      let txn = sync_txn t tid in
      Hashtbl.replace t.pending_fork (Tid.to_int child) txn;
      None
  | Event.Join child ->
      let txn = sync_txn t tid in
      let child_st = thread t child in
      (match child_st.last with
      | Some last -> ignore (add_edge t last txn)
      | None -> ());
      None
  | Event.Acquire l ->
      let txn = sync_txn t tid in
      (match Hashtbl.find_opt t.locks (Lock_id.id l) with
      | Some releaser when releaser <> txn -> ignore (add_edge t releaser txn)
      | _ -> ());
      None
  | Event.Release l ->
      let txn = sync_txn t tid in
      Hashtbl.replace t.locks (Lock_id.id l) txn;
      None
