(** Built-in commutativity specifications, all within the ECL fragment.

    Each [X_src] value is the DSL source text (also usable as example
    input for the [rd2] CLI); [X ()] is the parsed, validated
    specification, memoized. All five are verified sound against the
    executable models of {!Crd_semantics} in the test suite
    (Definition 4.2). *)

open Crd_spec

val dictionary_src : string
(** The specification of Fig 6: [put]/[get]/[size]. *)

val dictionary : unit -> Spec.t

val set_src : string
(** Mathematical set: [add]/[remove]/[contains]/[size], with
    membership-reporting returns. *)

val set : unit -> Spec.t

val counter_src : string
(** Commutative counter: [add(n)] commutes with [add(m)]; [read] does
    not commute with [add]. *)

val counter : unit -> Spec.t

val register_src : string
(** Atomic register: [write]/[read] with the classical read-write
    conflict — commutativity race detection degenerates to ordinary race
    detection on this object. *)

val register : unit -> Spec.t

val fifo_src : string
(** FIFO queue: [enq]/[deq]/[peek]; non-trivially, two [deq]s commute
    when both observe an empty queue, and [enq] commutes with a
    successful [peek]. *)

val fifo : unit -> Spec.t

val bag_src : string
(** Multiset: [add(x)], [remove(x)/ok], [count(x)/n], [size()/r].
    Insertions commute unconditionally (they return nothing), in contrast
    to the set where [add]'s membership-reporting return orders them. *)

val bag : unit -> Spec.t

val all : unit -> Spec.t list
val find : string -> Spec.t option
(** Look up a built-in specification by object name. *)
