lib/stdspecs/stdspecs.mli: Crd_spec Spec
