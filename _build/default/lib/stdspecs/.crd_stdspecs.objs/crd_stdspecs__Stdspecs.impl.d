lib/stdspecs/stdspecs.ml: Crd_spec Crd_spec_parser Lazy List Spec String
