(** Whole-object commutativity specifications (Definition 4.1).

    A specification [Phi] for an object type collects one formula
    [phi_m1_m2 (x~1; x~2)] per unordered pair of methods. Pairs left
    unspecified fall back to [default] (conservatively [False] — never
    commute — unless configured otherwise). Formulas for a pair [{m, m}]
    must be symmetric; [make] verifies this by exhaustive evaluation over
    a small value domain (exact for the equality-based specifications of
    the paper). *)

open Crd_trace

type t

val make :
  name:string ->
  methods:Signature.t list ->
  ?default:Formula.t ->
  (string * string * Formula.t) list ->
  (t, string) result
(** [make ~name ~methods pairs] builds and validates a specification.
    In each [(m1, m2, phi)], [Fst] variables of [phi] refer to slots of
    [m1] and [Snd] variables to slots of [m2]. Validation checks that
    methods are declared, slots are in range, no pair is given twice, and
    self-pairs are symmetric. *)

val name : t -> string
val methods : t -> Signature.t list
val default : t -> Formula.t
val signature : t -> string -> Signature.t option

val pairs : t -> (string * string * Formula.t) list
(** Canonically ordered pairs, as stored. *)

val formula : t -> string -> string -> Formula.t
(** [formula t m1 m2] with [Fst] referring to [m1]. Falls back to
    [default t] for unspecified pairs (with sides matching argument
    order). *)

val commute : t -> Action.t -> Action.t -> bool
(** Evaluate the specification on two concrete actions — [phi (a, b)].
    @raise Invalid_argument if an action does not match its declared
    signature. *)

val is_ecl : t -> bool
(** All pair formulas (and the default) lie in the ECL fragment. *)

val ecl_check : t -> (unit, string) result
val pp : t Fmt.t
(** Prints the specification in the surface DSL syntax; parseable by
    {!Crd_spec_parser}. *)
