(** Atomic formulas of commutativity specifications.

    A method specification [phi_m1_m2 (x~1; x~2)] draws its variables from
    two disjoint supplies: [Fst] variables denote argument/return slots of
    the first action, [Snd] variables those of the second (Section 6.1).
    A variable is resolved to its side and to the index of its slot in the
    action's combined [args @ rets] tuple; the surface name is kept only
    for printing. *)

open Crd_base

module Side : sig
  type t = Fst | Snd

  val flip : t -> t
  val equal : t -> t -> bool
  val pp : t Fmt.t
end

type var = { side : Side.t; slot : int; name : string }

val var_equal : var -> var -> bool
(** Ignores the cosmetic [name]. *)

type term = Var of var | Const of Value.t

val term_equal : term -> term -> bool

type pred = Eq | Ne | Lt | Le | Gt | Ge

val pred_holds : pred -> Value.t -> Value.t -> bool
val pred_negate : pred -> pred
val pred_symbol : pred -> string

type t = { pred : pred; lhs : term; rhs : term }

val equal : t -> t -> bool

val vars : t -> var list

val sides : t -> Side.t list
(** Sides of the variables occurring in the atom, without duplicates. *)

val single_sided : t -> Side.t option
(** [Some side] when every variable of the atom lives on one side (an
    {e LB}-eligible atom); var-free atoms report [Some Fst]. [None] when
    the atom mixes both sides. *)

val flip_sides : t -> t
(** Swap the two variable supplies ([Fst <-> Snd]). *)

val normalize : t -> t * bool
(** Erase the side distinction (everything becomes [Fst], names dropped),
    orient the atom canonically and force a positive predicate
    ([==], [<] or [<=]) — the paper's atom normalization used to build
    [B(Phi)]. The boolean is the polarity: [(a', true)] means the original
    atom is equivalent to [a'], [(a', false)] that it is equivalent to
    [!a']. Two atoms that differ only in sides, names, orientation or
    polarity normalize to the same canonical atom. *)

val eval : t -> (var -> Value.t) -> bool
val pp : t Fmt.t
