
type t =
  | True
  | False
  | Atom of Atom.t
  | Not of t
  | And of t * t
  | Or of t * t

let rec equal a b =
  match (a, b) with
  | True, True | False, False -> true
  | Atom x, Atom y -> Atom.equal x y
  | Not x, Not y -> equal x y
  | And (x1, y1), And (x2, y2) | Or (x1, y1), Or (x2, y2) ->
      equal x1 x2 && equal y1 y2
  | (True | False | Atom _ | Not _ | And _ | Or _), _ -> false

let rec atoms = function
  | True | False -> []
  | Atom a -> [ a ]
  | Not f -> atoms f
  | And (f, g) | Or (f, g) -> atoms f @ atoms g

let vars t = List.concat_map Atom.vars (atoms t)

let rec map_atoms fn = function
  | True -> True
  | False -> False
  | Atom a -> fn a
  | Not f -> Not (map_atoms fn f)
  | And (f, g) -> And (map_atoms fn f, map_atoms fn g)
  | Or (f, g) -> Or (map_atoms fn f, map_atoms fn g)

let flip_sides t = map_atoms (fun a -> Atom (Atom.flip_sides a)) t

let conj = function
  | [] -> True
  | f :: fs -> List.fold_left (fun acc g -> And (acc, g)) f fs

let disj = function
  | [] -> False
  | f :: fs -> List.fold_left (fun acc g -> Or (acc, g)) f fs

let rec size = function
  | True | False | Atom _ -> 1
  | Not f -> 1 + size f
  | And (f, g) | Or (f, g) -> 1 + size f + size g

let rec eval t env =
  match t with
  | True -> true
  | False -> false
  | Atom a -> Atom.eval a env
  | Not f -> not (eval f env)
  | And (f, g) -> eval f env && eval g env
  | Or (f, g) -> eval f env || eval g env

let eval_pair t w1 w2 =
  eval t (fun (v : Atom.var) ->
      let arr = match v.side with Atom.Side.Fst -> w1 | Atom.Side.Snd -> w2 in
      if v.slot < 0 || v.slot >= Array.length arr then
        invalid_arg
          (Printf.sprintf "Formula.eval_pair: slot %d out of range" v.slot)
      else arr.(v.slot))

let rec pp ppf t =
  (* Precedence: ! > && > ||.  We print with minimal parentheses. *)
  pp_or ppf t

and pp_or ppf = function
  | Or (f, g) -> Fmt.pf ppf "%a || %a" pp_or f pp_and g
  | t -> pp_and ppf t

and pp_and ppf = function
  | And (f, g) -> Fmt.pf ppf "%a && %a" pp_and f pp_not g
  | t -> pp_not ppf t

and pp_not ppf = function
  | Not f -> Fmt.pf ppf "!%a" pp_not f
  | t -> pp_base ppf t

and pp_base ppf = function
  | True -> Fmt.string ppf "true"
  | False -> Fmt.string ppf "false"
  | Atom a -> Atom.pp ppf a
  | (Or _ | And _ | Not _) as t -> Fmt.pf ppf "(%a)" pp t
