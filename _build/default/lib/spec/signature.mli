open Crd_trace

(** Method signatures: named argument and return slots.

    A signature fixes the shape of the actions [o.m(u~)/v~] of one method
    and gives the canonical numbering [w1 ... wn = u~ v~] of its slots used
    throughout the translation (Section 6.2). *)

type t = { meth : string; args : string list; rets : string list }

val make : meth:string -> ?args:string list -> ?rets:string list -> unit -> t

val slot_names : t -> string list
(** [args @ rets]. *)

val arity : t -> int

val find_slot : t -> string -> int option
(** Index of a named slot in [slot_names]. *)

val matches : t -> Action.t -> bool
(** Does an action have this method name and the right arity? *)

val equal : t -> t -> bool
val pp : t Fmt.t
