lib/spec/signature.mli: Action Crd_trace Fmt
