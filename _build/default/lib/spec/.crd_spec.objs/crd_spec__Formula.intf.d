lib/spec/formula.mli: Atom Crd_base Fmt Value
