lib/spec/spec.mli: Action Crd_trace Fmt Formula Signature
