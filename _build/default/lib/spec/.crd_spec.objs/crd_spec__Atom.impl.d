lib/spec/atom.ml: Crd_base Fmt List String Value
