lib/spec/atom.mli: Crd_base Fmt Value
