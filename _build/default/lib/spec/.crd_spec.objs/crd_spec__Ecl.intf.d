lib/spec/ecl.mli: Atom Formula
