lib/spec/spec.ml: Action Array Atom Crd_base Crd_trace Ecl Float Fmt Formula Hashtbl List Option Printf Prng Signature String Value
