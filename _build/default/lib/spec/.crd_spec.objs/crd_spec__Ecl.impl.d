lib/spec/ecl.ml: Atom Fmt Formula List
