lib/spec/signature.ml: Action Crd_trace Fmt List String
