lib/spec/formula.ml: Array Atom Fmt List Printf
