type atom_class = Ls_atom | Lb_atom of Atom.Side.t

let classify_atom (a : Atom.t) =
  match Atom.single_sided a with
  | Some side -> Some (Lb_atom side)
  | None -> (
      (* Variables from both sides: only a plain disequality between two
         variables is admissible (the SIMPLE shape [V1 != V2]). *)
      match (a.pred, a.lhs, a.rhs) with
      | Atom.Ne, Atom.Var _, Atom.Var _ -> Some Ls_atom
      | _ -> None)

let rec is_ls (f : Formula.t) =
  match f with
  | Formula.True | Formula.False -> true
  | Formula.Atom a -> classify_atom a = Some Ls_atom
  | Formula.And (f, g) -> is_ls f && is_ls g
  | Formula.Or _ | Formula.Not _ -> false

let rec is_lb (f : Formula.t) =
  match f with
  | Formula.True | Formula.False -> true
  | Formula.Atom a -> (
      match classify_atom a with Some (Lb_atom _) -> true | _ -> false)
  | Formula.Not f -> is_lb f
  | Formula.And (f, g) | Formula.Or (f, g) -> is_lb f && is_lb g

let rec is_ecl (f : Formula.t) =
  if is_ls f || is_lb f then true
  else
    match f with
    | Formula.And (f, g) -> is_ecl f && is_ecl g
    | Formula.Or (f, g) ->
        (* The grammar says X \/ B; we also accept the mirror image B \/ X
           since disjunction is commutative. *)
        (is_ecl f && is_lb g) || (is_lb f && is_ecl g)
    | _ -> false

let check f =
  let err fmt = Fmt.kstr (fun s -> Error s) fmt in
  let rec go f =
    if is_ls f || is_lb f then Ok ()
    else
      match f with
      | Formula.Atom a ->
          err "atom '%a' relates both sides with a predicate other than !="
            Atom.pp a
      | Formula.Not g ->
          if is_lb g then Ok ()
          else err "negation over a non-LB formula '%a'" Formula.pp g
      | Formula.And (f, g) -> (
          match go f with Ok () -> go g | e -> e)
      | Formula.Or (f, g) ->
          if is_lb g then go f
          else if is_lb f then go g
          else
            err
              "disjunction '%a' needs at least one LB disjunct (no \
               cross-side atoms, no disequalities between the two actions)"
              Formula.pp (Formula.Or (f, g))
      | Formula.True | Formula.False -> Ok ()
  in
  go f

let lb_atoms f =
  List.filter
    (fun a -> match classify_atom a with Some (Lb_atom _) -> true | _ -> false)
    (Formula.atoms f)
