(** Commutativity formulas (Definition 4.1).

    A formula's free variables are split between the two sides; [eval]
    against a pair of actions decides whether the actions are specified to
    commute. The ECL membership test lives in {!Ecl}. *)

open Crd_base

type t =
  | True
  | False
  | Atom of Atom.t
  | Not of t
  | And of t * t
  | Or of t * t

val equal : t -> t -> bool
val atoms : t -> Atom.t list
(** All atoms, in occurrence order, duplicates kept. *)

val vars : t -> Atom.var list
val flip_sides : t -> t
(** Exchange the two variable supplies — [phi (x~2; x~1)]. *)

val map_atoms : (Atom.t -> t) -> t -> t

val conj : t list -> t
val disj : t list -> t

val size : t -> int
(** Number of connectives and atoms (for generators and complexity
    accounting). *)

val eval : t -> (Atom.var -> Value.t) -> bool
(** Evaluate a closed formula under a slot valuation. *)

val eval_pair : t -> Value.t array -> Value.t array -> bool
(** [eval_pair phi w1 w2] evaluates with [Fst] variables bound to slots of
    [w1] and [Snd] variables to slots of [w2].
    @raise Invalid_argument if a variable's slot is out of range. *)

val pp : t Fmt.t
(** Prints in the specification-DSL syntax ([&&], [||], [!], [==] ...). *)
