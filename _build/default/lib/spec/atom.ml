open Crd_base

module Side = struct
  type t = Fst | Snd

  let flip = function Fst -> Snd | Snd -> Fst
  let equal a b = match (a, b) with Fst, Fst | Snd, Snd -> true | _ -> false
  let pp ppf = function Fst -> Fmt.string ppf "1" | Snd -> Fmt.string ppf "2"
end

type var = { side : Side.t; slot : int; name : string }

let var_equal a b = Side.equal a.side b.side && a.slot = b.slot

type term = Var of var | Const of Value.t

let term_equal a b =
  match (a, b) with
  | Var a, Var b -> var_equal a b
  | Const a, Const b -> Value.equal a b
  | (Var _ | Const _), _ -> false

type pred = Eq | Ne | Lt | Le | Gt | Ge

let pred_holds p a b =
  match p with
  | Eq -> Value.equal a b
  | Ne -> not (Value.equal a b)
  | Lt -> Value.lt a b
  | Le -> Value.le a b
  | Gt -> Value.lt b a
  | Ge -> Value.le b a

let pred_negate = function
  | Eq -> Ne
  | Ne -> Eq
  | Lt -> Ge
  | Le -> Gt
  | Gt -> Le
  | Ge -> Lt

(* Mirror image when the two operands are exchanged. *)
let pred_mirror = function
  | Eq -> Eq
  | Ne -> Ne
  | Lt -> Gt
  | Le -> Ge
  | Gt -> Lt
  | Ge -> Le

let pred_symbol = function
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

type t = { pred : pred; lhs : term; rhs : term }

let equal a b =
  a.pred = b.pred && term_equal a.lhs b.lhs && term_equal a.rhs b.rhs

let vars t =
  let of_term = function Var v -> [ v ] | Const _ -> [] in
  of_term t.lhs @ of_term t.rhs

let sides t =
  List.sort_uniq compare
    (List.map (fun (v : var) -> v.side) (vars t))

let single_sided t =
  match sides t with
  | [] -> Some Side.Fst
  | [ s ] -> Some s
  | _ -> None

let flip_term = function
  | Var v -> Var { v with side = Side.flip v.side }
  | Const c -> Const c

let flip_sides t = { t with lhs = flip_term t.lhs; rhs = flip_term t.rhs }

let norm_term = function
  | Var v -> Var { side = Side.Fst; slot = v.slot; name = "" }
  | Const c -> Const c

let term_rank = function
  | Var (v : var) -> (0, v.slot, Value.Nil)
  | Const c -> (1, 0, c)

let normalize t =
  let lhs = norm_term t.lhs and rhs = norm_term t.rhs in
  (* Orient so the smaller term is on the left, mirroring the predicate,
     then force a positive predicate (Eq, Lt or Le), tracking polarity. *)
  let pred, lhs, rhs =
    if compare (term_rank lhs) (term_rank rhs) <= 0 then (t.pred, lhs, rhs)
    else (pred_mirror t.pred, rhs, lhs)
  in
  match pred with
  | Eq | Lt | Le -> ({ pred; lhs; rhs }, true)
  | Ne -> ({ pred = Eq; lhs; rhs }, false)
  | Ge -> ({ pred = Lt; lhs; rhs }, false)
  | Gt -> ({ pred = Le; lhs; rhs }, false)

let eval t env =
  let value = function Var v -> env v | Const c -> c in
  pred_holds t.pred (value t.lhs) (value t.rhs)

let pp_term ppf = function
  | Var (v : var) ->
      if String.equal v.name "" then Fmt.pf ppf "$%a.%d" Side.pp v.side v.slot
      else Fmt.string ppf v.name
  | Const c -> Value.pp ppf c

let pp ppf t =
  Fmt.pf ppf "%a %s %a" pp_term t.lhs (pred_symbol t.pred) pp_term t.rhs
