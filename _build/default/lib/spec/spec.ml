open Crd_base
open Crd_trace

type t = {
  name : string;
  methods : Signature.t list;
  default : Formula.t;
  (* Key: (m1, m2) with m1 <= m2 lexicographically; the stored formula has
     Fst referring to m1. *)
  table : (string * string, Formula.t) Hashtbl.t;
}

let name t = t.name
let methods t = t.methods
let default t = t.default

let signature t m =
  List.find_opt (fun (s : Signature.t) -> String.equal s.meth m) t.methods

let canonical m1 m2 phi =
  if String.compare m1 m2 <= 0 then (m1, m2, phi)
  else (m2, m1, Formula.flip_sides phi)

let pairs t =
  Hashtbl.fold (fun (m1, m2) phi acc -> (m1, m2, phi) :: acc) t.table []
  |> List.sort compare

let formula t m1 m2 =
  let key = if String.compare m1 m2 <= 0 then (m1, m2) else (m2, m1) in
  match Hashtbl.find_opt t.table key with
  | Some phi -> if String.compare m1 m2 <= 0 then phi else Formula.flip_sides phi
  | None -> t.default

(* --------------------------------------------------------------- *)
(* Validation                                                      *)
(* --------------------------------------------------------------- *)

let check_slots sig1 sig2 phi =
  let ok (v : Atom.var) =
    let s = match v.side with Atom.Side.Fst -> sig1 | Atom.Side.Snd -> sig2 in
    v.slot >= 0 && v.slot < Signature.arity s
  in
  match List.find_opt (fun v -> not (ok v)) (Formula.vars phi) with
  | None -> Ok ()
  | Some v ->
      Error
        (Printf.sprintf "variable %s (slot %d, side %s) is out of range"
           v.name v.slot
           (match v.side with Atom.Side.Fst -> "1" | Atom.Side.Snd -> "2"))

(* A small value domain that distinguishes all equality patterns among up
   to 8 variables and exercises nil-ness and ordering. *)
let probe_domain =
  [| Value.Nil; Value.Int 0; Value.Int 1; Value.Int 2; Value.Int 3;
     Value.Int 4; Value.Int 5; Value.Int 6 |]

(* Exhaustively (or by sampling when too large) check that
   phi (x~1; x~2) <=> phi (x~2; x~1) for a self-pair of arity [n]. *)
let check_symmetric n phi =
  let flipped = Formula.flip_sides phi in
  let w1 = Array.make n Value.Nil and w2 = Array.make n Value.Nil in
  let d = Array.length probe_domain in
  let total_vars = 2 * n in
  let exhaustive = total_vars <= 4 in
  let trials =
    if exhaustive then
      int_of_float (Float.pow (float_of_int d) (float_of_int total_vars))
    else 4_000
  in
  let prng = Prng.make 0x5eedL in
  let ok = ref true in
  let witness = ref None in
  let i = ref 0 in
  while !ok && !i < trials do
    (* Decode trial index (or randomness) into the two valuations. *)
    let pick k =
      if exhaustive then
        let rec digit idx k = if k = 0 then idx mod d else digit (idx / d) (k - 1) in
        probe_domain.(digit !i k)
      else probe_domain.(Prng.int prng d)
    in
    for j = 0 to n - 1 do
      w1.(j) <- pick j;
      w2.(j) <- pick (n + j)
    done;
    if Formula.eval_pair phi w1 w2 <> Formula.eval_pair flipped w1 w2 then begin
      ok := false;
      witness := Some (Array.copy w1, Array.copy w2)
    end;
    incr i
  done;
  match !witness with
  | None -> Ok ()
  | Some (w1, w2) ->
      Error
        (Fmt.str "not symmetric: differs on (%a ; %a)"
           Fmt.(array ~sep:(any ", ") Value.pp)
           w1
           Fmt.(array ~sep:(any ", ") Value.pp)
           w2)

let make ~name ~methods ?(default = Formula.False) entries =
  let table = Hashtbl.create 16 in
  let exception Bad of string in
  let find_sig m =
    match
      List.find_opt (fun (s : Signature.t) -> String.equal s.meth m) methods
    with
    | Some s -> s
    | None -> raise (Bad (Printf.sprintf "method %s is not declared" m))
  in
  match
    List.iter
      (fun (m1, m2, phi) ->
        let sig1 = find_sig m1 and sig2 = find_sig m2 in
        (match check_slots sig1 sig2 phi with
        | Ok () -> ()
        | Error e ->
            raise (Bad (Printf.sprintf "pair (%s, %s): %s" m1 m2 e)));
        (if String.equal m1 m2 then
           match check_symmetric (Signature.arity sig1) phi with
           | Ok () -> ()
           | Error e ->
               raise (Bad (Printf.sprintf "pair (%s, %s): %s" m1 m2 e)));
        let k1, k2, phi = canonical m1 m2 phi in
        if Hashtbl.mem table (k1, k2) then
          raise (Bad (Printf.sprintf "pair (%s, %s) specified twice" m1 m2));
        Hashtbl.add table (k1, k2) phi)
      entries
  with
  | () -> Ok { name; methods; default; table }
  | exception Bad msg -> Error msg

(* --------------------------------------------------------------- *)
(* Evaluation                                                      *)
(* --------------------------------------------------------------- *)

let slots_of t (a : Action.t) =
  match signature t a.meth with
  | None ->
      invalid_arg
        (Printf.sprintf "Spec.commute: method %s not declared in spec %s"
           a.meth t.name)
  | Some s ->
      if not (Signature.matches s a) then
        invalid_arg
          (Printf.sprintf
             "Spec.commute: action %s does not match signature %s"
             (Action.to_string a) (Fmt.str "%a" Signature.pp s))
      else Array.of_list (Action.slots a)

let commute t a b =
  let w1 = slots_of t a and w2 = slots_of t b in
  Formula.eval_pair (formula t a.Action.meth b.Action.meth) w1 w2

(* --------------------------------------------------------------- *)
(* ECL membership                                                  *)
(* --------------------------------------------------------------- *)

let ecl_check t =
  let rec go = function
    | [] -> Ecl.check t.default
    | (m1, m2, phi) :: rest -> (
        match Ecl.check phi with
        | Ok () -> go rest
        | Error e -> Error (Printf.sprintf "pair (%s, %s): %s" m1 m2 e))
  in
  go (pairs t)

let is_ecl t = match ecl_check t with Ok () -> true | Error _ -> false

(* --------------------------------------------------------------- *)
(* Printing                                                        *)
(* --------------------------------------------------------------- *)

let pp_header ppf (s : Signature.t) sideno =
  let suffix n = n ^ string_of_int sideno in
  let args = List.map suffix s.args and rets = List.map suffix s.rets in
  Fmt.pf ppf "%s(%a)" s.meth Fmt.(list ~sep:(any ", ") string) args;
  match rets with
  | [] -> ()
  | [ r ] -> Fmt.pf ppf " / %s" r
  | rs -> Fmt.pf ppf " / (%a)" Fmt.(list ~sep:(any ", ") string) rs

(* Rename formula variables to the canonical names used by [pp_header]. *)
let canonical_vars t m1 m2 phi =
  let sig1 = signature t m1 and sig2 = signature t m2 in
  Formula.map_atoms
    (fun a ->
      let fix = function
        | Atom.Var (v : Atom.var) ->
            let s, n =
              match v.side with
              | Atom.Side.Fst -> (sig1, 1)
              | Atom.Side.Snd -> (sig2, 2)
            in
            let name =
              match s with
              | Some s -> (
                  match List.nth_opt (Signature.slot_names s) v.slot with
                  | Some base -> base ^ string_of_int n
                  | None -> v.name)
              | None -> v.name
            in
            Atom.Var { v with name }
        | Atom.Const c -> Atom.Const c
      in
      Formula.Atom { a with lhs = fix a.lhs; rhs = fix a.rhs })
    phi

let pp ppf t =
  Fmt.pf ppf "@[<v>object %s {@," t.name;
  List.iter (fun s -> Fmt.pf ppf "  method %a;@," Signature.pp s) t.methods;
  Fmt.pf ppf "@,";
  List.iter
    (fun (m1, m2, phi) ->
      let s1 = Option.get (signature t m1) and s2 = Option.get (signature t m2) in
      Fmt.pf ppf "  commutes %a <> %a when %a;@," (fun ppf -> pp_header ppf s1)
        1
        (fun ppf -> pp_header ppf s2)
        2 Formula.pp
        (canonical_vars t m1 m2 phi))
    (pairs t);
  (match t.default with
  | Formula.False -> ()
  | d -> Fmt.pf ppf "  default %a;@," Formula.pp d);
  Fmt.pf ppf "}@]"
