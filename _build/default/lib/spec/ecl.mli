(** The ECL fragment and its sub-fragments (Definitions 6.1-6.3).

    - {e LS} (Kulkarni et al.'s SIMPLE): conjunctions of cross-side
      disequalities [x1 != y2], [true], [false].
    - {e LB}: boolean combinations (including negation) of single-sided
      atoms.
    - {e ECL}: [X ::= S | B | X /\ X | X \/ B] — conjunctions of ECL
      formulas, and disjunctions of an ECL formula with an LB formula.

    Membership is what guarantees the translated access-point
    representation has bounded conflict sets (Theorem 6.6). *)

type atom_class =
  | Ls_atom  (** cross-side disequality [x1 != y2] *)
  | Lb_atom of Atom.Side.t  (** single-sided atom *)

val classify_atom : Atom.t -> atom_class option
(** [None] for atoms outside ECL (cross-side non-disequality). *)

val is_ls : Formula.t -> bool
val is_lb : Formula.t -> bool
val is_ecl : Formula.t -> bool

val check : Formula.t -> (unit, string) result
(** Like [is_ecl] but explains the first violation found. *)

val lb_atoms : Formula.t -> Atom.t list
(** The LB atoms of an ECL formula, in occurrence order (duplicates kept).
    Meaningful only if [is_ecl] holds. *)
