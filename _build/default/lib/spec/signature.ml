open Crd_trace

type t = { meth : string; args : string list; rets : string list }

let make ~meth ?(args = []) ?(rets = []) () = { meth; args; rets }
let slot_names t = t.args @ t.rets
let arity t = List.length t.args + List.length t.rets

let find_slot t name =
  let rec go i = function
    | [] -> None
    | n :: _ when String.equal n name -> Some i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 (slot_names t)

let matches t (a : Action.t) =
  String.equal t.meth a.meth
  && List.length a.args = List.length t.args
  && List.length a.rets = List.length t.rets

let equal a b =
  String.equal a.meth b.meth
  && List.equal String.equal a.args b.args
  && List.equal String.equal a.rets b.rets

let pp ppf t =
  Fmt.pf ppf "%s(%a)" t.meth Fmt.(list ~sep:(any ", ") string) t.args;
  match t.rets with
  | [] -> ()
  | [ r ] -> Fmt.pf ppf " / %s" r
  | rs -> Fmt.pf ppf " / (%a)" Fmt.(list ~sep:(any ", ") string) rs
