(** Thread identifiers.

    Threads are numbered densely from 0 so that vector clocks can be
    array-backed. Thread 0 is conventionally the main thread. *)

type t = private int

val of_int : int -> t
(** @raise Invalid_argument on negative input. *)

val to_int : t -> int
val main : t
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : t Fmt.t
