(** Lock identifiers for acquire/release synchronization events. *)

type t

val make : ?name:string -> int -> t
val fresh : ?name:string -> unit -> t
val id : t -> int
val name : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : t Fmt.t
