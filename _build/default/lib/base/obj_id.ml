type t = { id : int; name : string }

let make ?name id =
  let name = match name with Some n -> n | None -> Printf.sprintf "o%d" id in
  { id; name }

let counter = ref 0

let fresh ?name () =
  let id = !counter in
  incr counter;
  make ?name id

let id t = t.id
let name t = t.name
let equal a b = Int.equal a.id b.id
let compare a b = Int.compare a.id b.id
let hash t = Hashtbl.hash t.id
let pp ppf t = Fmt.string ppf t.name
