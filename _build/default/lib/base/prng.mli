(** Deterministic pseudo-random number generator (splitmix64).

    All nondeterminism in the repository — scheduler choices, workload
    generation, property-test shrinking seeds — flows through explicitly
    seeded generators, so every experiment in EXPERIMENTS.md is reproducible
    bit-for-bit. *)

type t

val make : int64 -> t
val copy : t -> t

val split : t -> t
(** [split t] derives an independent stream and advances [t]. *)

val next_int64 : t -> int64
val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. @raise Invalid_argument if
    [bound <= 0]. *)

val bool : t -> bool
val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val choose : t -> 'a array -> 'a
(** @raise Invalid_argument on an empty array. *)

val choose_list : t -> 'a list -> 'a
val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
