(** Universal value domain [U] for method arguments and return values.

    The paper's actions are method invocations [o.m(u~)/v~] whose arguments
    and returns range over an unspecified domain with a distinguished
    no-value [nil] (Section 3.1). We use a small dynamically-typed domain
    large enough for all the specifications and workloads in the paper:
    integers, booleans, strings, opaque references (e.g. the connection
    objects of Fig. 1), and [nil]. *)

type t =
  | Nil  (** the distinguished no-value *)
  | Bool of bool
  | Int of int
  | Str of string
  | Ref of int  (** an opaque heap reference, compared by identity *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val is_nil : t -> bool

(** Total order used by ordered predicates ([<], [<=], ...) in
    specification atoms. Values of different constructors are ordered by
    constructor rank; this keeps the logic total without meaning anything
    semantically across kinds. *)
val lt : t -> t -> bool

val le : t -> t -> bool
val pp : t Fmt.t
val to_string : t -> string

(** [parse s] reconstructs a value from its [to_string] rendering.
    Inverse of [to_string] on all values. *)
val parse : string -> (t, string) result
