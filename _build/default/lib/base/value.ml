type t =
  | Nil
  | Bool of bool
  | Int of int
  | Str of string
  | Ref of int

let equal a b =
  match (a, b) with
  | Nil, Nil -> true
  | Bool a, Bool b -> a = b
  | Int a, Int b -> a = b
  | Str a, Str b -> String.equal a b
  | Ref a, Ref b -> a = b
  | (Nil | Bool _ | Int _ | Str _ | Ref _), _ -> false

let rank = function
  | Nil -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Str _ -> 3
  | Ref _ -> 4

let compare a b =
  match (a, b) with
  | Nil, Nil -> 0
  | Bool a, Bool b -> Bool.compare a b
  | Int a, Int b -> Int.compare a b
  | Str a, Str b -> String.compare a b
  | Ref a, Ref b -> Int.compare a b
  | _ -> Int.compare (rank a) (rank b)

let hash = function
  | Nil -> 0x9e37
  | Bool b -> if b then 0x5bd1 else 0x85eb
  | Int i -> Hashtbl.hash (2, i)
  | Str s -> Hashtbl.hash (3, s)
  | Ref r -> Hashtbl.hash (4, r)

let is_nil = function Nil -> true | _ -> false
let lt a b = compare a b < 0
let le a b = compare a b <= 0

let pp ppf = function
  | Nil -> Fmt.string ppf "nil"
  | Bool b -> Fmt.bool ppf b
  | Int i -> Fmt.int ppf i
  | Str s -> Fmt.pf ppf "%S" s
  | Ref r -> Fmt.pf ppf "@@%d" r

let to_string v = Fmt.str "%a" pp v

let parse s =
  let n = String.length s in
  if n = 0 then Error "empty value"
  else if String.equal s "nil" then Ok Nil
  else if String.equal s "true" then Ok (Bool true)
  else if String.equal s "false" then Ok (Bool false)
  else if s.[0] = '"' then
    if n >= 2 && s.[n - 1] = '"' then
      match Scanf.sscanf_opt s "%S" (fun str -> str) with
      | Some str -> Ok (Str str)
      | None -> Error (Printf.sprintf "malformed string literal %s" s)
    else Error (Printf.sprintf "unterminated string literal %s" s)
  else if s.[0] = '@' then
    match int_of_string_opt (String.sub s 1 (n - 1)) with
    | Some r -> Ok (Ref r)
    | None -> Error (Printf.sprintf "malformed reference %s" s)
  else
    match int_of_string_opt s with
    | Some i -> Ok (Int i)
    | None -> Error (Printf.sprintf "unrecognized value %s" s)
