lib/base/tid.mli: Fmt
