lib/base/value.mli: Fmt
