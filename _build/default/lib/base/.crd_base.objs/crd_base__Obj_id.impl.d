lib/base/obj_id.ml: Fmt Hashtbl Int Printf
