lib/base/lock_id.ml: Fmt Hashtbl Int Printf
