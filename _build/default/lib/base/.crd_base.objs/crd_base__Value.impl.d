lib/base/value.ml: Bool Fmt Hashtbl Int Printf Scanf String
