lib/base/prng.mli:
