lib/base/lock_id.mli: Fmt
