lib/base/obj_id.mli: Fmt
