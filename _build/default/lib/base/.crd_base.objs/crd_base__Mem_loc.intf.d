lib/base/mem_loc.mli: Fmt Obj_id Value
