lib/base/tid.ml: Fmt Hashtbl Int
