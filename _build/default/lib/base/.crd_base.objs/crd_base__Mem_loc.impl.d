lib/base/mem_loc.ml: Fmt Hashtbl Obj_id String Value
