type t =
  | Global of string
  | Field of Obj_id.t * string
  | Slot of Obj_id.t * string * Value.t

let equal a b =
  match (a, b) with
  | Global a, Global b -> String.equal a b
  | Field (o1, f1), Field (o2, f2) -> Obj_id.equal o1 o2 && String.equal f1 f2
  | Slot (o1, f1, v1), Slot (o2, f2, v2) ->
      Obj_id.equal o1 o2 && String.equal f1 f2 && Value.equal v1 v2
  | (Global _ | Field _ | Slot _), _ -> false

let compare a b =
  match (a, b) with
  | Global a, Global b -> String.compare a b
  | Global _, _ -> -1
  | _, Global _ -> 1
  | Field (o1, f1), Field (o2, f2) ->
      let c = Obj_id.compare o1 o2 in
      if c <> 0 then c else String.compare f1 f2
  | Field _, _ -> -1
  | _, Field _ -> 1
  | Slot (o1, f1, v1), Slot (o2, f2, v2) ->
      let c = Obj_id.compare o1 o2 in
      if c <> 0 then c
      else
        let c = String.compare f1 f2 in
        if c <> 0 then c else Value.compare v1 v2

let hash = function
  | Global g -> Hashtbl.hash (0, g)
  | Field (o, f) -> Hashtbl.hash (1, Obj_id.hash o, f)
  | Slot (o, f, v) -> Hashtbl.hash (2, Obj_id.hash o, f, Value.hash v)

let pp ppf = function
  | Global g -> Fmt.string ppf g
  | Field (o, f) -> Fmt.pf ppf "%a.%s" Obj_id.pp o f
  | Slot (o, f, v) -> Fmt.pf ppf "%a.%s[%a]" Obj_id.pp o f Value.pp v
