(** Identities of shared (monitored) objects.

    An object identity pairs a unique integer with a human-readable name
    used in race reports (e.g. the [freedPageSpace] map of the H2
    workload). Equality and hashing are by the integer only. *)

type t

val make : ?name:string -> int -> t
val fresh : ?name:string -> unit -> t
(** [fresh ()] allocates a new identity from a global counter. *)

val id : t -> int
val name : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : t Fmt.t
