type t = int

let of_int i =
  if i < 0 then invalid_arg "Tid.of_int: negative thread id";
  i

let to_int t = t
let main = 0
let equal = Int.equal
let compare = Int.compare
let hash t = Hashtbl.hash t
let pp ppf t = Fmt.pf ppf "T%d" t
