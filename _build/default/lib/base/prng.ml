type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let make seed = { state = seed }
let copy t = { state = t.state }

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = next_int64 t in
  make seed

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: nonpositive bound";
  (* Mask to a non-negative OCaml int (63-bit) before reducing. *)
  let r = Int64.to_int (next_int64 t) land max_int in
  r mod bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  (* 53 random bits scaled into [0,1). *)
  r /. 9007199254740992.0 *. bound

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Prng.choose: empty array";
  arr.(int t (Array.length arr))

let choose_list t l =
  match l with
  | [] -> invalid_arg "Prng.choose_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
