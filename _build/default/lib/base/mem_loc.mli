(** Low-level memory locations, the conflict unit of read-write race
    detectors (FastTrack, DJIT+).

    The paper's RoadRunner substrate instruments every field and array
    element of the target program; our runtime substrate mirrors this by
    emitting [Read]/[Write] events on values of this type. *)

type t =
  | Global of string  (** a global or static field *)
  | Field of Obj_id.t * string  (** an instance field *)
  | Slot of Obj_id.t * string * Value.t
      (** a keyed slot inside an object, e.g. a hash-table bucket *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : t Fmt.t
