open Crd_base

type state =
  | Map of (Value.t * Value.t) list
  | Num of int
  | Reg of Value.t
  | Seq of Value.t list

let state_equal a b =
  match (a, b) with
  | Map a, Map b ->
      List.equal
        (fun (k1, v1) (k2, v2) -> Value.equal k1 k2 && Value.equal v1 v2)
        a b
  | Num a, Num b -> a = b
  | Reg a, Reg b -> Value.equal a b
  | Seq a, Seq b -> List.equal Value.equal a b
  | (Map _ | Num _ | Reg _ | Seq _), _ -> false

let pp_state ppf = function
  | Map kvs ->
      Fmt.pf ppf "{%a}"
        Fmt.(
          list ~sep:(any ", ") (fun ppf (k, v) ->
              pf ppf "%a->%a" Value.pp k Value.pp v))
        kvs
  | Num n -> Fmt.int ppf n
  | Reg v -> Fmt.pf ppf "reg %a" Value.pp v
  | Seq vs -> Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any "; ") Value.pp) vs

type shape = { meth : string; args : Value.t list; rets : Value.t list }

let pp_shape ppf s =
  Fmt.pf ppf "%s(%a)/%a" s.meth
    Fmt.(list ~sep:(any ", ") Value.pp)
    s.args
    Fmt.(list ~sep:(any ", ") Value.pp)
    s.rets

type t = {
  name : string;
  initial : state;
  states : state list;
  shapes : shape list;
  apply : state -> shape -> state option;
}

let compose_defined t a b s =
  match t.apply s b with None -> None | Some s' -> t.apply s' a

let commute t a b =
  List.for_all
    (fun s ->
      let ab = compose_defined t a b s and ba = compose_defined t b a s in
      match (ab, ba) with
      | None, None -> true
      | Some s1, Some s2 -> state_equal s1 s2
      | (None | Some _), _ -> false)
    t.states

let enabled t s = List.filter (fun shape -> t.apply s shape <> None) t.shapes

let map_get kvs k =
  match List.find_opt (fun (k', _) -> Value.equal k k') kvs with
  | Some (_, v) -> v
  | None -> Value.Nil

let map_put kvs k v =
  let rest = List.filter (fun (k', _) -> not (Value.equal k k')) kvs in
  if Value.is_nil v then rest
  else List.sort (fun (a, _) (b, _) -> Value.compare a b) ((k, v) :: rest)
