lib/semantics/models.mli: Crd_base Model Value
