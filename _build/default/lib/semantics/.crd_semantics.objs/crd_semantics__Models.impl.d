lib/semantics/models.ml: Crd_base Fun List Model Value
