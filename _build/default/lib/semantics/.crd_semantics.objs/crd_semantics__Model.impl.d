lib/semantics/model.ml: Crd_base Fmt List Value
