lib/semantics/model.mli: Crd_base Fmt Value
