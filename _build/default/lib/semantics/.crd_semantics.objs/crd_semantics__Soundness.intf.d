lib/semantics/soundness.mli: Crd_spec Fmt Model Spec
