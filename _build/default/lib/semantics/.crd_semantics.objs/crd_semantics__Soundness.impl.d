lib/semantics/soundness.ml: Action Array Crd_base Crd_spec Crd_trace Fmt List Model Obj_id Spec
