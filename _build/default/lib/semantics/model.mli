(** Executable abstract-state semantics of library objects (Section 3.1).

    A model gives each object type its space of abstract states and the
    partial effect map [|a|] of every action (Fig 5): [apply s m args rets]
    is [Some s'] when the action [m(args)/rets] is defined at state [s]
    and moves it to [s'], and [None] otherwise (e.g. [get(k)/7] is
    undefined in states where [k] is not mapped to [7]).

    States and action shapes are enumerable over small finite domains,
    which makes Definition 3.1 ("composed effects agree in either order,
    on every state") directly decidable — the ground truth against which
    commutativity specifications are validated (Definition 4.2). *)

open Crd_base

type state =
  | Map of (Value.t * Value.t) list
      (** key-value mapping, sorted by key, [nil] values absent *)
  | Num of int
  | Reg of Value.t
  | Seq of Value.t list  (** front of the queue first *)

val state_equal : state -> state -> bool
val pp_state : state Fmt.t

(** An action shape: method, arguments, returns — an action without an
    object identity. *)
type shape = { meth : string; args : Value.t list; rets : Value.t list }

val pp_shape : shape Fmt.t

type t = {
  name : string;
  initial : state;
  states : state list;  (** the full (small) state space *)
  shapes : shape list;  (** the full (small) action universe *)
  apply : state -> shape -> state option;
}

val commute : t -> shape -> shape -> bool
(** Definition 3.1 over the model's finite state space:
    [|a| o |b| = |b| o |a|] as partial maps. *)

val enabled : t -> state -> shape list
(** The shapes whose effect is defined at a state. *)

val map_get : (Value.t * Value.t) list -> Value.t -> Value.t
val map_put : (Value.t * Value.t) list -> Value.t -> Value.t -> (Value.t * Value.t) list
