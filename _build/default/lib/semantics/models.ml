open Crd_base

(* Cartesian products for state/action enumeration. *)
let rec product = function
  | [] -> [ [] ]
  | choices :: rest ->
      let tails = product rest in
      List.concat_map (fun c -> List.map (fun t -> c :: t) tails) choices

let default_keys = [ Value.Int 0; Value.Int 1 ]
let default_values = [ Value.Nil; Value.Int 1; Value.Int 2 ]

let dictionary ?(keys = default_keys) ?(values = default_values) () =
  let values = if List.exists Value.is_nil values then values else Value.Nil :: values in
  let states =
    product (List.map (fun k -> List.map (fun v -> (k, v)) values) keys)
    |> List.map (fun kvs ->
           Model.Map
             (List.filter (fun (_, v) -> not (Value.is_nil v)) kvs
             |> List.sort (fun (a, _) (b, _) -> Value.compare a b)))
  in
  let sizes = List.init (List.length keys + 1) (fun i -> Value.Int i) in
  let shapes =
    List.concat_map
      (fun k ->
        List.concat_map
          (fun v ->
            List.map
              (fun p -> { Model.meth = "put"; args = [ k; v ]; rets = [ p ] })
              values)
          values
        @ List.map
            (fun v -> { Model.meth = "get"; args = [ k ]; rets = [ v ] })
            values)
      keys
    @ List.map (fun r -> { Model.meth = "size"; args = []; rets = [ r ] }) sizes
  in
  let apply s (shape : Model.shape) =
    match s with
    | Model.Map kvs -> (
        match (shape.meth, shape.args, shape.rets) with
        | "put", [ k; v ], [ p ] ->
            if Value.equal (Model.map_get kvs k) p then
              Some (Model.Map (Model.map_put kvs k v))
            else None
        | "get", [ k ], [ v ] ->
            if Value.equal (Model.map_get kvs k) v then Some s else None
        | "size", [], [ r ] ->
            if Value.equal (Value.Int (List.length kvs)) r then Some s
            else None
        | _ -> None)
    | _ -> None
  in
  {
    Model.name = "dictionary";
    initial = Model.Map [];
    states;
    shapes;
    apply;
  }

let set ?(elems = [ Value.Int 1; Value.Int 2 ]) () =
  let bools = [ Value.Bool false; Value.Bool true ] in
  let member kvs x = List.exists (Value.equal x) kvs in
  let states =
    product (List.map (fun x -> [ None; Some x ]) elems)
    |> List.map (fun choice ->
           Model.Seq
             (List.filter_map Fun.id choice |> List.sort Value.compare))
  in
  let sizes = List.init (List.length elems + 1) (fun i -> Value.Int i) in
  let shapes =
    List.concat_map
      (fun x ->
        List.concat_map
          (fun b ->
            [
              { Model.meth = "add"; args = [ x ]; rets = [ b ] };
              { Model.meth = "remove"; args = [ x ]; rets = [ b ] };
              { Model.meth = "contains"; args = [ x ]; rets = [ b ] };
            ])
          bools)
      elems
    @ List.map (fun r -> { Model.meth = "size"; args = []; rets = [ r ] }) sizes
  in
  let apply s (shape : Model.shape) =
    match s with
    | Model.Seq xs -> (
        let was_of x = Value.Bool (member xs x) in
        match (shape.meth, shape.args, shape.rets) with
        | "add", [ x ], [ b ] ->
            if Value.equal (was_of x) b then
              Some
                (Model.Seq
                   (if member xs x then xs
                    else List.sort Value.compare (x :: xs)))
            else None
        | "remove", [ x ], [ b ] ->
            if Value.equal (was_of x) b then
              Some (Model.Seq (List.filter (fun y -> not (Value.equal x y)) xs))
            else None
        | "contains", [ x ], [ b ] ->
            if Value.equal (was_of x) b then Some s else None
        | "size", [], [ r ] ->
            if Value.equal (Value.Int (List.length xs)) r then Some s else None
        | _ -> None)
    | _ -> None
  in
  { Model.name = "set"; initial = Model.Seq []; states; shapes; apply }

let counter ?(range = 2) () =
  (* Addition is modular so the state space is closed and additions
     genuinely commute (a bounded window would make composition
     definedness asymmetric at the boundary). *)
  let modulus = (4 * range) + 1 in
  let states = List.init modulus (fun i -> Model.Num i) in
  let deltas = List.init (2 * range + 1) (fun i -> i - range) in
  let shapes =
    List.map (fun d -> { Model.meth = "add"; args = [ Value.Int d ]; rets = [] }) deltas
    @ List.filter_map
        (function
          | Model.Num n ->
              Some { Model.meth = "read"; args = []; rets = [ Value.Int n ] }
          | _ -> None)
        states
  in
  let apply s (shape : Model.shape) =
    match s with
    | Model.Num n -> (
        match (shape.meth, shape.args, shape.rets) with
        | "add", [ Value.Int d ], [] ->
            Some (Model.Num (((n + d) mod modulus + modulus) mod modulus))
        | "read", [], [ Value.Int r ] -> if r = n then Some s else None
        | _ -> None)
    | _ -> None
  in
  { Model.name = "counter"; initial = Model.Num 0; states; shapes; apply }

let register ?(values = [ Value.Nil; Value.Int 1; Value.Int 2 ]) () =
  let states = List.map (fun v -> Model.Reg v) values in
  let shapes =
    List.map (fun v -> { Model.meth = "write"; args = [ v ]; rets = [] }) values
    @ List.map (fun v -> { Model.meth = "read"; args = []; rets = [ v ] }) values
  in
  let apply s (shape : Model.shape) =
    match s with
    | Model.Reg cur -> (
        match (shape.meth, shape.args, shape.rets) with
        | "write", [ v ], [] -> Some (Model.Reg v)
        | "read", [], [ v ] -> if Value.equal cur v then Some s else None
        | _ -> None)
    | _ -> None
  in
  { Model.name = "register"; initial = Model.Reg Value.Nil; states; shapes; apply }

let fifo ?(elems = [ Value.Int 1; Value.Int 2 ]) ?(depth = 2) () =
  let rec seqs d = if d = 0 then [ [] ] else
      [] :: List.concat_map (fun x -> List.map (fun t -> x :: t) (seqs (d - 1))) elems
  in
  let states =
    List.sort_uniq compare (seqs depth) |> List.map (fun l -> Model.Seq l)
  in
  let rets = Value.Nil :: elems in
  let shapes =
    List.map (fun x -> { Model.meth = "enq"; args = [ x ]; rets = [] }) elems
    @ List.map (fun x -> { Model.meth = "deq"; args = []; rets = [ x ] }) rets
    @ List.map (fun x -> { Model.meth = "peek"; args = []; rets = [ x ] }) rets
  in
  let apply s (shape : Model.shape) =
    match s with
    | Model.Seq xs -> (
        match (shape.meth, shape.args, shape.rets) with
        | "enq", [ x ], [] ->
            if List.length xs < depth then Some (Model.Seq (xs @ [ x ]))
            else None
        | "deq", [], [ r ] -> (
            match xs with
            | [] -> if Value.is_nil r then Some s else None
            | x :: rest ->
                if Value.equal x r then Some (Model.Seq rest) else None)
        | "peek", [], [ r ] -> (
            match xs with
            | [] -> if Value.is_nil r then Some s else None
            | x :: _ -> if Value.equal x r then Some s else None)
        | _ -> None)
    | _ -> None
  in
  { Model.name = "fifo"; initial = Model.Seq []; states; shapes; apply }

let bag ?(elems = [ Value.Int 1; Value.Int 2 ]) ?(max_mult = 2) () =
  (* State: multiplicity map, encoded as a Map from element to Int count
     (zero counts absent). *)
  let mults = List.init (max_mult + 1) (fun i -> i) in
  let states =
    product (List.map (fun x -> List.map (fun m -> (x, m)) mults) elems)
    |> List.map (fun kvs ->
           Model.Map
             (List.filter_map
                (fun (x, m) -> if m = 0 then None else Some (x, Value.Int m))
                kvs
             |> List.sort (fun (a, _) (b, _) -> Value.compare a b)))
  in
  let mult kvs x =
    match Model.map_get kvs x with Value.Int n -> n | _ -> 0
  in
  let total kvs =
    List.fold_left
      (fun acc (_, v) -> match v with Value.Int n -> acc + n | _ -> acc)
      0 kvs
  in
  let bools = [ Value.Bool false; Value.Bool true ] in
  let counts = List.map (fun m -> Value.Int m) mults in
  let sizes =
    List.init ((max_mult * List.length elems) + 1) (fun i -> Value.Int i)
  in
  let shapes =
    List.concat_map
      (fun x ->
        ({ Model.meth = "add"; args = [ x ]; rets = [] }
        :: List.map
             (fun ok -> { Model.meth = "remove"; args = [ x ]; rets = [ ok ] })
             bools)
        @ List.map
            (fun n -> { Model.meth = "count"; args = [ x ]; rets = [ n ] })
            counts)
      elems
    @ List.map (fun r -> { Model.meth = "size"; args = []; rets = [ r ] }) sizes
  in
  let apply s (shape : Model.shape) =
    match s with
    | Model.Map kvs -> (
        match (shape.meth, shape.args, shape.rets) with
        | "add", [ x ], [] ->
            let m = mult kvs x in
            if m >= max_mult then None (* bounded model *)
            else Some (Model.Map (Model.map_put kvs x (Value.Int (m + 1))))
        | "remove", [ x ], [ Value.Bool ok ] ->
            let m = mult kvs x in
            if ok <> (m > 0) then None
            else if m = 0 then Some s
            else
              Some
                (Model.Map
                   (Model.map_put kvs x
                      (if m = 1 then Value.Nil else Value.Int (m - 1))))
        | "count", [ x ], [ Value.Int n ] ->
            if n = mult kvs x then Some s else None
        | "size", [], [ Value.Int r ] -> if r = total kvs then Some s else None
        | _ -> None)
    | _ -> None
  in
  { Model.name = "bag"; initial = Model.Map []; states; shapes; apply }

let all () =
  [ dictionary (); set (); counter (); register (); fifo (); bag () ]
