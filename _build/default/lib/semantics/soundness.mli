(** Exhaustive soundness (and precision) checking of commutativity
    specifications against executable models.

    Definition 4.2: a specification [Phi] is sound iff [phi (a, b)]
    implies [a] and [b] commute. Over a model's finite action universe and
    state space this is decidable outright; [check] enumerates every
    action pair. Imprecision — actions that commute although the
    specification says they may not — is legal (Definition 4.2 allows it)
    and is reported separately. *)

open Crd_spec

type verdict = {
  pairs_checked : int;
  unsound : (Model.shape * Model.shape) list;
      (** specified to commute, but do not (must be empty for a sound
          specification) *)
  imprecise : int;
      (** commute, but the specification does not say so (allowed) *)
}

val check : Spec.t -> Model.t -> verdict
(** @raise Invalid_argument if a model shape does not match the
    specification's signatures. *)

val is_sound : Spec.t -> Model.t -> bool
val pp_verdict : verdict Fmt.t
