open Crd_base
open Crd_trace
open Crd_spec

type verdict = {
  pairs_checked : int;
  unsound : (Model.shape * Model.shape) list;
  imprecise : int;
}

let probe_obj = Obj_id.make ~name:"probe" (-1)

let action_of_shape (s : Model.shape) =
  Action.make ~obj:probe_obj ~meth:s.Model.meth ~args:s.Model.args
    ~rets:s.Model.rets ()

let check spec (model : Model.t) =
  let shapes = Array.of_list model.Model.shapes in
  let n = Array.length shapes in
  let pairs_checked = ref 0 in
  let unsound = ref [] in
  let imprecise = ref 0 in
  for i = 0 to n - 1 do
    for j = i to n - 1 do
      let a = shapes.(i) and b = shapes.(j) in
      incr pairs_checked;
      let specified =
        Spec.commute spec (action_of_shape a) (action_of_shape b)
      in
      let actual = Model.commute model a b in
      if specified && not actual then unsound := (a, b) :: !unsound
      else if actual && not specified then incr imprecise
    done
  done;
  {
    pairs_checked = !pairs_checked;
    unsound = List.rev !unsound;
    imprecise = !imprecise;
  }

let is_sound spec model = (check spec model).unsound = []

let pp_verdict ppf v =
  Fmt.pf ppf "%d pairs checked, %d unsound, %d imprecise" v.pairs_checked
    (List.length v.unsound) v.imprecise;
  List.iteri
    (fun i (a, b) ->
      if i < 10 then
        Fmt.pf ppf "@,  unsound: %a vs %a" Model.pp_shape a Model.pp_shape b)
    v.unsound
