(** Concrete object models over small finite domains.

    Each model enumerates its complete state space and action universe
    over the listed keys/values, so commutativity ground truth
    (Definition 3.1) and specification soundness (Definition 4.2) are
    decided exhaustively. *)

open Crd_base

val dictionary : ?keys:Value.t list -> ?values:Value.t list -> unit -> Model.t
(** The dictionary of Fig 5: [put(k,v)/p], [get(k)/v], [size()/r]; states
    are all key-value mappings, [nil] meaning absent. Defaults: two keys,
    values [{nil, 1, 2}]. *)

val set : ?elems:Value.t list -> unit -> Model.t
(** Mathematical set: [add(x)/was], [remove(x)/was], [contains(x)/b],
    [size()/r]; [was] reports prior membership. *)

val counter : ?range:int -> unit -> Model.t
(** Saturating-free integer counter: [add(n)/()] (with [n] in a small
    range), [read()/v]. Additions commute with each other. *)

val register : ?values:Value.t list -> unit -> Model.t
(** Atomic register: [write(v)/()], [read()/v] — the object whose
    commutativity races are exactly the classical read-write races. *)

val fifo : ?elems:Value.t list -> ?depth:int -> unit -> Model.t
(** Bounded FIFO queue: [enq(x)/()], [deq()/x] ([x = nil] on empty),
    [peek()/x]. *)

val bag : ?elems:Value.t list -> ?max_mult:int -> unit -> Model.t
(** Bounded multiset: [add(x)], [remove(x)/ok], [count(x)/n], [size()/r];
    multiplicities range over [0..max_mult]. *)

val all : unit -> Model.t list
(** One instance of each model with default domains. *)
