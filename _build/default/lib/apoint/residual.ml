open Crd_spec

type t = Rfalse | Rconj of (int * int) list

let rtrue = Rconj []

let equal a b =
  match (a, b) with
  | Rfalse, Rfalse -> true
  | Rconj a, Rconj b -> List.equal (fun (a, b) (c, d) -> a = c && b = d) a b
  | (Rfalse | Rconj _), _ -> false

let pp ppf = function
  | Rfalse -> Fmt.string ppf "false"
  | Rconj [] -> Fmt.string ppf "true"
  | Rconj cs ->
      Fmt.pf ppf "%a"
        Fmt.(list ~sep:(any " && ") (fun ppf (i, j) -> pf ppf "$1.%d != $2.%d" i j))
        cs

exception Not_ecl of string

let not_ecl fmt = Fmt.kstr (fun s -> raise (Not_ecl s)) fmt

let conj a b =
  match (a, b) with
  | Rfalse, _ | _, Rfalse -> Rfalse
  | Rconj x, Rconj y -> Rconj (List.sort_uniq compare (x @ y))

let disj a b =
  match (a, b) with
  | Rconj [], _ | _, Rconj [] -> rtrue
  | Rfalse, x | x, Rfalse -> x
  | Rconj _, Rconj _ ->
      not_ecl "disjunction of two non-trivial SIMPLE residues"

let residuate phi ~beta1 ~beta2 =
  let rec go (f : Formula.t) =
    match f with
    | Formula.True -> rtrue
    | Formula.False -> Rfalse
    | Formula.Atom a -> (
        match Ecl.classify_atom a with
        | Some (Ecl.Lb_atom side) ->
            let truth =
              if Atom.vars a = [] then
                (* Variable-free atoms are decided outright; they never
                   enter B(Phi, m). *)
                Atom.eval a (fun _ -> assert false)
              else
                let beta =
                  match side with
                  | Atom.Side.Fst -> beta1
                  | Atom.Side.Snd -> beta2
                in
                let norm, sign = Atom.normalize a in
                if sign then beta norm else not (beta norm)
            in
            if truth then rtrue else Rfalse
        | Some Ecl.Ls_atom -> (
            match (a.lhs, a.rhs) with
            | Atom.Var v1, Atom.Var v2 ->
                let i, j =
                  match v1.side with
                  | Atom.Side.Fst -> (v1.slot, v2.slot)
                  | Atom.Side.Snd -> (v2.slot, v1.slot)
                in
                Rconj [ (i, j) ]
            | _ -> not_ecl "malformed SIMPLE atom %a" Atom.pp a)
        | None -> not_ecl "atom %a is outside ECL" Atom.pp a)
    | Formula.Not f -> (
        match go f with
        | Rfalse -> rtrue
        | Rconj [] -> Rfalse
        | Rconj _ -> not_ecl "negation over a non-LB formula")
    | Formula.And (f, g) -> conj (go f) (go g)
    | Formula.Or (f, g) -> disj (go f) (go g)
  in
  go phi
