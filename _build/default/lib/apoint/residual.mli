(** Residuation of ECL formulas under beta vectors (Lemma 6.4).

    Once every LB atom of an ECL formula is assigned a truth value, the
    formula simplifies to an LS formula: [false], or a conjunction of
    cross-side disequalities [x_i != y_j] (with the empty conjunction
    being [true]). The conjunction is represented as a sorted,
    deduplicated list of slot pairs [(i, j)] — slot [i] of the first
    action differs from slot [j] of the second. *)

open Crd_spec

type t =
  | Rfalse
  | Rconj of (int * int) list  (** [Rconj \[\]] is [true] *)

val rtrue : t
val equal : t -> t -> bool
val pp : t Fmt.t

exception Not_ecl of string

val residuate :
  Formula.t -> beta1:(Atom.t -> bool) -> beta2:(Atom.t -> bool) -> t
(** [residuate phi ~beta1 ~beta2] computes [phi\[beta1; beta2\]]
    (Section 6.2). [beta1]/[beta2] are consulted on the {e normalized}
    form of each single-sided atom of the corresponding side.
    @raise Not_ecl if the formula is outside ECL. *)
