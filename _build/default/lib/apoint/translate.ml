open Crd_spec

type kind = Ds | Slot of int

let kind_equal a b =
  match (a, b) with
  | Ds, Ds -> true
  | Slot i, Slot j -> i = j
  | (Ds | Slot _), _ -> false

let pp_kind ppf = function
  | Ds -> Fmt.string ppf "ds"
  | Slot i -> Fmt.pf ppf "slot %d" i

type key = { meth : int; beta : int; kind : kind }

let key_equal a b =
  a.meth = b.meth && a.beta = b.beta && kind_equal a.kind b.kind

let key_compare = compare

type t = {
  spec : Spec.t;
  methods : Signature.t array;
  atoms : Atom.t array array;
  conflicts : (key, key list) Hashtbl.t;
}

let max_atoms = 14

let method_index t m =
  let n = Array.length t.methods in
  let rec go i =
    if i >= n then None
    else if String.equal t.methods.(i).Signature.meth m then Some i
    else go (i + 1)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Collecting B(Phi, m)                                               *)
(* ------------------------------------------------------------------ *)

let collect_atoms (spec : Spec.t) (methods : Signature.t array) =
  let atoms = Array.map (fun _ -> ref []) methods in
  let add m (a : Atom.t) =
    if Atom.vars a <> [] then begin
      let norm, _sign = Atom.normalize a in
      let bucket = atoms.(m) in
      if not (List.exists (Atom.equal norm) !bucket) then
        bucket := !bucket @ [ norm ]
    end
  in
  Array.iteri
    (fun i (si : Signature.t) ->
      Array.iteri
        (fun j (sj : Signature.t) ->
          if i <= j then
            let phi = Spec.formula spec si.Signature.meth sj.Signature.meth in
            List.iter
              (fun a ->
                match Ecl.classify_atom a with
                | Some (Ecl.Lb_atom Atom.Side.Fst) -> add i a
                | Some (Ecl.Lb_atom Atom.Side.Snd) -> add j a
                | Some Ecl.Ls_atom | None -> ())
              (Formula.atoms phi))
        methods)
    methods;
  Array.map (fun r -> Array.of_list !r) atoms

(* ------------------------------------------------------------------ *)
(* Beta vectors                                                       *)
(* ------------------------------------------------------------------ *)

let atom_index t m (a : Atom.t) =
  let arr = t.atoms.(m) in
  let n = Array.length arr in
  let rec go k =
    if k >= n then None else if Atom.equal arr.(k) a then Some k else go (k + 1)
  in
  go 0

let beta_of t m slots =
  let arr = t.atoms.(m) in
  let beta = ref 0 in
  Array.iteri
    (fun k a ->
      if Atom.eval a (fun (v : Atom.var) -> slots.(v.slot)) then
        beta := !beta lor (1 lsl k))
    arr;
  !beta

let beta_pp t m ppf beta =
  let arr = t.atoms.(m) in
  if Array.length arr = 0 then Fmt.string ppf "{}"
  else begin
    Fmt.string ppf "{";
    Array.iteri
      (fun k a ->
        if k > 0 then Fmt.string ppf ", ";
        Fmt.pf ppf "%a:%b" Atom.pp a (beta land (1 lsl k) <> 0))
      arr;
    Fmt.string ppf "}"
  end

(* ------------------------------------------------------------------ *)
(* Building the conflict table                                        *)
(* ------------------------------------------------------------------ *)

let add_conflict conflicts a b =
  let add x y =
    let l = Option.value ~default:[] (Hashtbl.find_opt conflicts x) in
    if not (List.exists (key_equal y) l) then Hashtbl.replace conflicts x (y :: l)
  in
  add a b;
  add b a

let of_spec spec =
  let methods = Array.of_list (Spec.methods spec) in
  let atoms = collect_atoms spec methods in
  let too_big = ref None in
  Array.iteri
    (fun m arr ->
      if Array.length arr > max_atoms && !too_big = None then
        too_big := Some methods.(m).Signature.meth)
    atoms;
  match !too_big with
  | Some m ->
      Error
        (Printf.sprintf
           "method %s has more than %d relevant atoms; beta enumeration \
            would explode"
           m max_atoms)
  | None -> (
      let t = { spec; methods; atoms; conflicts = Hashtbl.create 64 } in
      let beta_fun m beta a =
        match atom_index t m a with
        | Some k -> beta land (1 lsl k) <> 0
        | None ->
            invalid_arg
              (Fmt.str "Translate.of_spec: atom %a not collected for %s"
                 Atom.pp a t.methods.(m).Signature.meth)
      in
      try
        Array.iteri
          (fun i (si : Signature.t) ->
            Array.iteri
              (fun j (sj : Signature.t) ->
                if i <= j then begin
                  let phi = Spec.formula spec si.Signature.meth sj.Signature.meth in
                  (match Ecl.check phi with
                  | Ok () -> ()
                  | Error e ->
                      raise
                        (Residual.Not_ecl
                           (Printf.sprintf "pair (%s, %s): %s"
                              si.Signature.meth sj.Signature.meth e)));
                  let n1 = 1 lsl Array.length atoms.(i)
                  and n2 = 1 lsl Array.length atoms.(j) in
                  for b1 = 0 to n1 - 1 do
                    for b2 = 0 to n2 - 1 do
                      match
                        Residual.residuate phi ~beta1:(beta_fun i b1)
                          ~beta2:(beta_fun j b2)
                      with
                      | Residual.Rfalse ->
                          add_conflict t.conflicts
                            { meth = i; beta = b1; kind = Ds }
                            { meth = j; beta = b2; kind = Ds }
                      | Residual.Rconj conjuncts ->
                          List.iter
                            (fun (si_slot, sj_slot) ->
                              add_conflict t.conflicts
                                { meth = i; beta = b1; kind = Slot si_slot }
                                { meth = j; beta = b2; kind = Slot sj_slot })
                            conjuncts
                    done
                  done
                end)
              methods)
          methods;
        Ok t
      with Residual.Not_ecl msg -> Error msg)

let universe t =
  let keys = ref [] in
  Array.iteri
    (fun m (s : Signature.t) ->
      let nbeta = 1 lsl Array.length t.atoms.(m) in
      for beta = 0 to nbeta - 1 do
        keys := { meth = m; beta; kind = Ds } :: !keys;
        for slot = 0 to Signature.arity s - 1 do
          keys := { meth = m; beta; kind = Slot slot } :: !keys
        done
      done)
    t.methods;
  List.rev !keys

let conflict_set t key =
  match Hashtbl.find_opt t.conflicts key with
  | None -> []
  | Some l -> List.sort key_compare l
