(** Runtime access points.

    An access point is identified by a {e shape} (a static identifier
    assigned by the translation: method + beta vector + ds/argument-slot
    kind, possibly merged by the optimization passes) plus, for
    argument-slot points, the concrete value witnessed ([o.m:beta:i:w] in
    the paper). Ds points ([o.m:beta:ds]) carry no value. *)

open Crd_base

type t =
  | Ds of int  (** shape id *)
  | Keyed of int * Value.t  (** shape id, witnessed value *)

val shape : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : t Fmt.t

module Tbl : Hashtbl.S with type key = t
