open Crd_base

type t = Ds of int | Keyed of int * Value.t

let shape = function Ds s -> s | Keyed (s, _) -> s

let equal a b =
  match (a, b) with
  | Ds a, Ds b -> Int.equal a b
  | Keyed (a, u), Keyed (b, v) -> Int.equal a b && Value.equal u v
  | (Ds _ | Keyed _), _ -> false

let compare a b =
  match (a, b) with
  | Ds a, Ds b -> Int.compare a b
  | Ds _, Keyed _ -> -1
  | Keyed _, Ds _ -> 1
  | Keyed (a, u), Keyed (b, v) ->
      let c = Int.compare a b in
      if c <> 0 then c else Value.compare u v

let hash = function
  | Ds s -> Hashtbl.hash (0, s)
  | Keyed (s, v) -> Hashtbl.hash (1, s, Value.hash v)

let pp ppf = function
  | Ds s -> Fmt.pf ppf "#%d:ds" s
  | Keyed (s, v) -> Fmt.pf ppf "#%d:%a" s Value.pp v

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
