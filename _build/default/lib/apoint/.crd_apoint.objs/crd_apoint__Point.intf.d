lib/apoint/point.mli: Crd_base Fmt Hashtbl Value
