lib/apoint/residual.mli: Atom Crd_spec Fmt Formula
