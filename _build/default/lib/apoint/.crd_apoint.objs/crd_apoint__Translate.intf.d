lib/apoint/translate.mli: Atom Crd_base Crd_spec Fmt Hashtbl Signature Spec Value
