lib/apoint/repr.mli: Action Crd_spec Crd_trace Fmt Point Spec
