lib/apoint/translate.ml: Array Atom Crd_spec Ecl Fmt Formula Hashtbl List Option Printf Residual Signature Spec String
