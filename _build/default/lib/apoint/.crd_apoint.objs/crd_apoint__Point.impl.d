lib/apoint/point.ml: Crd_base Fmt Hashtbl Int Value
