lib/apoint/repr.ml: Action Array Atom Buffer Crd_base Crd_spec Crd_trace Fmt Hashtbl List Point Printf Signature Spec Translate Value
