lib/apoint/residual.ml: Atom Crd_spec Ecl Fmt Formula List
