open Crd_base
open Crd_trace
open Crd_spec

(* Kind index: 0 = Ds, 1 + i = argument/return slot i. *)
let kind_index = function Translate.Ds -> 0 | Translate.Slot i -> 1 + i

type t = {
  raw : Translate.t;
  (* dispatch.(m).(kind_index).(beta) -> shape id, or -1 when the point is
     never emitted (cleaned up). *)
  dispatch : int array array array;
  conflict_ids : int array array;
  (* is_keyed.(id): shape generates Keyed points (vs Ds points). *)
  is_keyed : bool array;
  descs : string array;
}

let spec t = t.raw.Translate.spec

(* ------------------------------------------------------------------ *)
(* Building: shared plumbing                                           *)
(* ------------------------------------------------------------------ *)

module KeyTbl = Hashtbl

let name_slots (m : Signature.t) (a : Atom.t) =
  let slot_name i =
    match List.nth_opt (Signature.slot_names m) i with
    | Some n -> n
    | None -> Printf.sprintf "w%d" i
  in
  let fix = function
    | Atom.Var (v : Atom.var) -> Atom.Var { v with name = slot_name v.slot }
    | Atom.Const c -> Atom.Const c
  in
  { a with Atom.lhs = fix a.Atom.lhs; rhs = fix a.Atom.rhs }

let desc_of_key (raw : Translate.t) (k : Translate.key) ~mask =
  let m = raw.Translate.methods.(k.Translate.meth) in
  let atoms = raw.Translate.atoms.(k.Translate.meth) in
  let conds = Buffer.create 16 in
  Array.iteri
    (fun i a ->
      if mask land (1 lsl i) <> 0 then begin
        if Buffer.length conds > 0 then Buffer.add_string conds ", ";
        Buffer.add_string conds
          (Fmt.str "%a=%b" Atom.pp (name_slots m a)
             (k.Translate.beta land (1 lsl i) <> 0))
      end)
    atoms;
  let kind =
    match k.Translate.kind with
    | Translate.Ds -> "ds"
    | Translate.Slot i -> (
        match List.nth_opt (Signature.slot_names m) i with
        | Some n -> n
        | None -> Printf.sprintf "slot%d" i)
  in
  if Buffer.length conds = 0 then
    Printf.sprintf "%s:%s" m.Signature.meth kind
  else
    Printf.sprintf "%s{%s}:%s" m.Signature.meth (Buffer.contents conds) kind

(* A projected key: raw key whose beta has been masked to the relevant
   atoms of its (method, kind). *)

let build ~optimize (raw : Translate.t) =
  let methods = raw.Translate.methods in
  let nmeth = Array.length methods in
  (* --- Pass 1: dropping (compute per-(m, kind) relevance masks). ----- *)
  let natoms m = Array.length raw.Translate.atoms.(m) in
  let nkinds m = 1 + Signature.arity methods.(m) in
  let kind_of_index = function 0 -> Translate.Ds | i -> Translate.Slot (i - 1) in
  let masks =
    Array.init nmeth (fun m ->
        Array.init (nkinds m) (fun ki ->
            if not optimize then (1 lsl natoms m) - 1
            else begin
              let kind = kind_of_index ki in
              let relevant = ref 0 in
              for q = 0 to natoms m - 1 do
                let bit = 1 lsl q in
                let differs = ref false in
                let nbeta = 1 lsl natoms m in
                let beta = ref 0 in
                while (not !differs) && !beta < nbeta do
                  let k1 = { Translate.meth = m; beta = !beta; kind } in
                  let k2 =
                    { Translate.meth = m; beta = !beta lxor bit; kind }
                  in
                  if
                    not
                      (List.equal Translate.key_equal
                         (Translate.conflict_set raw k1)
                         (Translate.conflict_set raw k2))
                  then differs := true;
                  incr beta
                done;
                if !differs then relevant := !relevant lor bit
              done;
              !relevant
            end))
  in
  let project (k : Translate.key) =
    let mask = masks.(k.Translate.meth).(kind_index k.Translate.kind) in
    { k with Translate.beta = k.Translate.beta land mask }
  in
  (* --- Collect projected shapes and their conflict sets. ------------- *)
  let proj_conf : (Translate.key, Translate.key list) KeyTbl.t =
    KeyTbl.create 64
  in
  let proj_desc : (Translate.key, string) KeyTbl.t = KeyTbl.create 64 in
  List.iter
    (fun k ->
      let pk = project k in
      if not (KeyTbl.mem proj_conf pk) then begin
        let conf =
          Translate.conflict_set raw k
          |> List.map project
          |> List.sort_uniq Translate.key_compare
        in
        KeyTbl.replace proj_conf pk conf;
        KeyTbl.replace proj_desc pk
          (desc_of_key raw k
             ~mask:(masks.(k.Translate.meth).(kind_index k.Translate.kind)))
      end)
    (Translate.universe raw);
  (* --- Pass 2: cleanup (drop conflict-free shapes). ------------------ *)
  let keep conf = (not optimize) || conf <> [] in
  let shapes =
    KeyTbl.fold
      (fun k conf acc -> if keep conf then k :: acc else acc)
      proj_conf []
    |> List.sort Translate.key_compare
  in
  (* Assign provisional ids. *)
  let id_of : (Translate.key, int) KeyTbl.t = KeyTbl.create 64 in
  List.iteri (fun i k -> KeyTbl.replace id_of k i) shapes;
  let shapes = Array.of_list shapes in
  let n = Array.length shapes in
  let conf_ids =
    Array.map
      (fun k ->
        KeyTbl.find proj_conf k
        |> List.filter_map (fun k' -> KeyTbl.find_opt id_of k')
        |> List.sort_uniq compare)
      shapes
  in
  let descs = Array.map (fun k -> KeyTbl.find proj_desc k) shapes in
  let keyed =
    Array.map
      (fun (k : Translate.key) ->
        match k.Translate.kind with Translate.Ds -> false | Translate.Slot _ -> true)
      shapes
  in
  (* --- Pass 3: congruence replacement (merge shapes with identical
         conflict sets and the same point kind), to fixpoint. ---------- *)
  let repr = Array.init n (fun i -> i) in
  let conf = Array.copy conf_ids in
  if optimize then begin
    let changed = ref true in
    while !changed do
      changed := false;
      let classes : (bool * int list, int) Hashtbl.t = Hashtbl.create 32 in
      for i = 0 to n - 1 do
        if repr.(i) = i then begin
          let key = (keyed.(i), conf.(i)) in
          match Hashtbl.find_opt classes key with
          | Some j ->
              repr.(i) <- j;
              changed := true
          | None -> Hashtbl.replace classes key i
        end
      done;
      if !changed then begin
        (* Path-compress and rewrite conflict sets through [repr]. *)
        let find i =
          let rec go i = if repr.(i) = i then i else go repr.(i) in
          go i
        in
        for i = 0 to n - 1 do
          repr.(i) <- find i
        done;
        for i = 0 to n - 1 do
          if repr.(i) = i then
            conf.(i) <- List.sort_uniq compare (List.map (fun j -> repr.(j)) conf.(i))
        done
      end
    done
  end;
  (* --- Final dense numbering. ---------------------------------------- *)
  let final = Array.make n (-1) in
  let count = ref 0 in
  for i = 0 to n - 1 do
    if repr.(i) = i then begin
      final.(i) <- !count;
      incr count
    end
  done;
  let nfinal = !count in
  let final_of i = final.(repr.(i)) in
  let conflict_ids = Array.make nfinal [||] in
  let is_keyed = Array.make nfinal false in
  let final_descs = Array.make nfinal "" in
  for i = 0 to n - 1 do
    let f = final_of i in
    if repr.(i) = i then begin
      conflict_ids.(f) <-
        Array.of_list (List.sort_uniq compare (List.map final_of conf.(i)));
      is_keyed.(f) <- keyed.(i);
      final_descs.(f) <- descs.(i)
    end
    else
      (* Record merged constituents in the description. *)
      final_descs.(f) <- final_descs.(f) ^ " ~ " ^ descs.(i)
  done;
  (* --- Dispatch tables. ---------------------------------------------- *)
  let dispatch =
    Array.init nmeth (fun m ->
        Array.init (nkinds m) (fun ki ->
            let nbeta = 1 lsl natoms m in
            Array.init nbeta (fun beta ->
                let k =
                  project { Translate.meth = m; beta; kind = kind_of_index ki }
                in
                match KeyTbl.find_opt id_of k with
                | Some i -> final_of i
                | None -> -1)))
  in
  { raw; dispatch; conflict_ids; is_keyed; descs = final_descs }

let of_spec ?(optimize = true) spec =
  match Translate.of_spec spec with
  | Error e -> Error e
  | Ok raw -> Ok (build ~optimize raw)

(* ------------------------------------------------------------------ *)
(* Runtime interface                                                   *)
(* ------------------------------------------------------------------ *)

let action_info t (a : Action.t) =
  match Translate.method_index t.raw a.meth with
  | None ->
      invalid_arg
        (Printf.sprintf "Repr.eta: method %s not in spec %s" a.meth
           (Spec.name (spec t)))
  | Some m ->
      let slots = Array.of_list (Action.slots a) in
      let expected = Signature.arity t.raw.Translate.methods.(m) in
      if Array.length slots <> expected then
        invalid_arg
          (Printf.sprintf "Repr.eta: action %s has arity %d, expected %d"
             (Action.to_string a) (Array.length slots) expected);
      (m, slots)

let eta t a =
  let m, slots = action_info t a in
  let beta = Translate.beta_of t.raw m slots in
  let kinds = t.dispatch.(m) in
  let points = ref [] in
  let add p = if not (List.exists (Point.equal p) !points) then points := p :: !points in
  let ds = kinds.(0).(beta) in
  if ds >= 0 then add (Point.Ds ds);
  for i = 0 to Array.length slots - 1 do
    let id = kinds.(1 + i).(beta) in
    if id >= 0 then add (Point.Keyed (id, slots.(i)))
  done;
  List.rev !points

let conflicts t pt =
  let id = Point.shape pt in
  let neighbors = t.conflict_ids.(id) in
  match pt with
  | Point.Ds _ -> Array.to_list (Array.map (fun j -> Point.Ds j) neighbors)
  | Point.Keyed (_, v) ->
      Array.to_list (Array.map (fun j -> Point.Keyed (j, v)) neighbors)

let conflict t p1 p2 =
  let id1 = Point.shape p1 in
  let shape_conflict = Array.exists (fun j -> j = Point.shape p2) t.conflict_ids.(id1) in
  shape_conflict
  &&
  match (p1, p2) with
  | Point.Ds _, Point.Ds _ -> true
  | Point.Keyed (_, u), Point.Keyed (_, v) -> Value.equal u v
  | (Point.Ds _ | Point.Keyed _), _ -> false

let num_shapes t = Array.length t.conflict_ids

let max_conflicts t =
  Array.fold_left (fun m c -> max m (Array.length c)) 0 t.conflict_ids

let shape_desc t id =
  if id < 0 || id >= Array.length t.descs then "?" else t.descs.(id)

let pp ppf t =
  Fmt.pf ppf "@[<v>access point representation for %s (%d shapes, max \
              conflicts %d)@,"
    (Spec.name (spec t)) (num_shapes t) (max_conflicts t);
  Array.iteri
    (fun i desc ->
      Fmt.pf ppf "  #%d %s%s@,    conflicts: %a@," i
        (if t.is_keyed.(i) then "(keyed) " else "(ds) ")
        desc
        Fmt.(list ~sep:(any ", ") (fun ppf j -> pf ppf "#%d" j))
        (Array.to_list t.conflict_ids.(i)))
    t.descs;
  Fmt.pf ppf "@]"
