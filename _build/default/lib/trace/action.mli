(** Actions: atomic method invocations [o.m(u~)/v~] on shared objects
    (Section 3.1).

    We treat invocations as atomic transitions because objects are assumed
    linearizable; the action records the object, the method name, the
    argument tuple and the return tuple. *)

open Crd_base

type t = { obj : Obj_id.t; meth : string; args : Value.t list; rets : Value.t list }

val make : obj:Obj_id.t -> meth:string -> ?args:Value.t list -> ?rets:Value.t list -> unit -> t

val slots : t -> Value.t list
(** The combined tuple [w1 ... wn = args @ rets] used by the ECL
    translation to number argument/return positions (Section 6.2). *)

val arity : t -> int
(** [List.length (slots t)]. *)

val equal : t -> t -> bool
val pp : t Fmt.t
val to_string : t -> string
