open Crd_base

type t = { obj : Obj_id.t; meth : string; args : Value.t list; rets : Value.t list }

let make ~obj ~meth ?(args = []) ?(rets = []) () = { obj; meth; args; rets }
let slots t = t.args @ t.rets
let arity t = List.length t.args + List.length t.rets

let equal a b =
  Obj_id.equal a.obj b.obj
  && String.equal a.meth b.meth
  && List.equal Value.equal a.args b.args
  && List.equal Value.equal a.rets b.rets

let pp ppf t =
  let pp_vals = Fmt.(list ~sep:(any ", ") Value.pp) in
  Fmt.pf ppf "%a.%s(%a)" Obj_id.pp t.obj t.meth pp_vals t.args;
  match t.rets with
  | [] -> ()
  | [ r ] -> Fmt.pf ppf "/%a" Value.pp r
  | rs -> Fmt.pf ppf "/(%a)" pp_vals rs

let to_string t = Fmt.str "%a" pp t
