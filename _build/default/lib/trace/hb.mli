(** The happens-before engine of Table 1.

    Maintains the auxiliary maps [T : Tid -> VC] and [L : Lock -> VC] and
    updates them at every synchronization event. Action (and read/write)
    events are assigned the current clock [T tau] of their thread.

    [snapshot] returns a clock that is guaranteed not to be mutated by
    later [step]s: internally the engine hands out one shared copy per
    thread segment (the stretch of events between two synchronization
    points of that thread), which is both safe and cheap — all events in a
    segment carry the same clock. *)

open Crd_base
open Crd_vclock

type t

val create : unit -> t

val step : t -> Event.t -> Vclock.t
(** Process one event. For [Call]/[Read]/[Write] events the result is the
    event's clock [vc e] (a stable snapshot). For synchronization events
    the result is the issuing thread's clock *before* the update; it is
    rarely needed but handy for logging. *)

val snapshot : t -> Tid.t -> Vclock.t
(** The current (stable) clock of a thread. *)

val raw_clock : t -> Tid.t -> Vclock.t
(** The live, mutable clock [T tau]. Do not retain across [step]s. *)

val epoch : t -> Tid.t -> Vclock.Epoch.t
(** [c(tau)@tau] where [c = T tau] — the FastTrack epoch of the thread. *)
