open Crd_base

type op =
  | Call of Action.t
  | Read of Mem_loc.t
  | Write of Mem_loc.t
  | Fork of Tid.t
  | Join of Tid.t
  | Acquire of Lock_id.t
  | Release of Lock_id.t
  | Begin
  | End

type t = { tid : Tid.t; op : op }

let call tid a = { tid; op = Call a }
let read tid l = { tid; op = Read l }
let write tid l = { tid; op = Write l }
let fork tid u = { tid; op = Fork u }
let join tid u = { tid; op = Join u }
let acquire tid l = { tid; op = Acquire l }
let release tid l = { tid; op = Release l }
let begin_ tid = { tid; op = Begin }
let end_ tid = { tid; op = End }

let is_sync t =
  match t.op with
  | Fork _ | Join _ | Acquire _ | Release _ -> true
  | Call _ | Read _ | Write _ | Begin | End -> false

let op_equal a b =
  match (a, b) with
  | Call x, Call y -> Action.equal x y
  | Read x, Read y | Write x, Write y -> Mem_loc.equal x y
  | Fork x, Fork y | Join x, Join y -> Tid.equal x y
  | Acquire x, Acquire y | Release x, Release y -> Lock_id.equal x y
  | Begin, Begin | End, End -> true
  | ( ( Call _ | Read _ | Write _ | Fork _ | Join _ | Acquire _ | Release _
      | Begin | End ),
      _ ) ->
      false

let equal a b = Tid.equal a.tid b.tid && op_equal a.op b.op

let pp_op ppf = function
  | Call a -> Fmt.pf ppf "call %a" Action.pp a
  | Read l -> Fmt.pf ppf "read %a" Mem_loc.pp l
  | Write l -> Fmt.pf ppf "write %a" Mem_loc.pp l
  | Fork u -> Fmt.pf ppf "fork %a" Tid.pp u
  | Join u -> Fmt.pf ppf "join %a" Tid.pp u
  | Acquire l -> Fmt.pf ppf "acquire %a" Lock_id.pp l
  | Release l -> Fmt.pf ppf "release %a" Lock_id.pp l
  | Begin -> Fmt.string ppf "begin"
  | End -> Fmt.string ppf "end"

let pp ppf t = Fmt.pf ppf "%a: %a" Tid.pp t.tid pp_op t.op
