lib/trace/event.mli: Action Crd_base Fmt Lock_id Mem_loc Tid
