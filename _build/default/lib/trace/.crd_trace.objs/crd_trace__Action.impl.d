lib/trace/action.ml: Crd_base Fmt List Obj_id String Value
