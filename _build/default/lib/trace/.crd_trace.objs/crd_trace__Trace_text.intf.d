lib/trace/trace_text.mli: Fmt Trace
