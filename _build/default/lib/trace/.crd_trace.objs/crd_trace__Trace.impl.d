lib/trace/trace.ml: Array Crd_base Event Fmt List Tid
