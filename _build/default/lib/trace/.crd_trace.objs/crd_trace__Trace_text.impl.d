lib/trace/trace_text.ml: Action Buffer Crd_base Event Fmt Hashtbl In_channel List Lock_id Mem_loc Obj_id Printf Stdlib String Tid Trace Value
