lib/trace/hb.mli: Crd_base Crd_vclock Event Tid Vclock
