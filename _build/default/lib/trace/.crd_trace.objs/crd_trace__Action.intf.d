lib/trace/action.mli: Crd_base Fmt Obj_id Value
