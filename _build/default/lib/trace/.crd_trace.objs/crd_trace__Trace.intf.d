lib/trace/trace.mli: Event Fmt
