lib/trace/hb.ml: Crd_base Crd_vclock Event Hashtbl Lock_id Tid Vclock
