lib/trace/event.ml: Action Crd_base Fmt Lock_id Mem_loc Tid
