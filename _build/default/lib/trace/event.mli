(** Trace events.

    A trace interleaves three kinds of events: library actions ([Call],
    the subject of commutativity race detection), low-level memory
    accesses ([Read]/[Write], the subject of classical race detection) and
    synchronization operations (Table 1). *)

open Crd_base

type op =
  | Call of Action.t
  | Read of Mem_loc.t
  | Write of Mem_loc.t
  | Fork of Tid.t  (** the forked child *)
  | Join of Tid.t  (** the joined child *)
  | Acquire of Lock_id.t
  | Release of Lock_id.t
  | Begin  (** start of an atomic block (transaction) in this thread *)
  | End  (** end of the current atomic block *)

type t = { tid : Tid.t; op : op }

val call : Tid.t -> Action.t -> t
val read : Tid.t -> Mem_loc.t -> t
val write : Tid.t -> Mem_loc.t -> t
val fork : Tid.t -> Tid.t -> t
val join : Tid.t -> Tid.t -> t
val acquire : Tid.t -> Lock_id.t -> t
val release : Tid.t -> Lock_id.t -> t
val begin_ : Tid.t -> t
val end_ : Tid.t -> t

val is_sync : t -> bool
(** True for fork/join/acquire/release (not for transaction markers,
    which carry no happens-before meaning). *)

val equal : t -> t -> bool
val pp : t Fmt.t
