open Crd_base

type t = { mutable data : Event.t array; mutable len : int }

let create () = { data = [||]; len = 0 }

let append t e =
  let cap = Array.length t.data in
  if t.len = cap then begin
    let data = Array.make (max 8 (2 * cap)) e in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end;
  t.data.(t.len) <- e;
  t.len <- t.len + 1

let of_list l =
  let t = create () in
  List.iter (append t) l;
  t

let length t = t.len

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Trace.get: out of bounds";
  t.data.(i)

let iter t ~f =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let iter_events t ~f = iter t ~f:(fun _ e -> f e)

let fold t ~init ~f =
  let acc = ref init in
  iter t ~f:(fun i e -> acc := f !acc i e);
  !acc

let to_list t = List.init t.len (fun i -> t.data.(i))

let num_threads t =
  fold t ~init:0 ~f:(fun m _ (e : Event.t) ->
      let m = max m (Tid.to_int e.tid + 1) in
      match e.op with
      | Fork u | Join u -> max m (Tid.to_int u + 1)
      | Call _ | Read _ | Write _ | Acquire _ | Release _ | Begin | End -> m)

let pp ppf t =
  iter t ~f:(fun i e -> Fmt.pf ppf "%4d  %a@." i Event.pp e)
