(** Finite traces: sequences of events with positions.

    A trace models one observed execution [s0 -a1-> s1 -a2-> ...]
    (Section 3.1); the event at index [i] is the i-th transition label. *)

type t

val create : unit -> t
val of_list : Event.t list -> t
val to_list : t -> Event.t list
val append : t -> Event.t -> unit
val length : t -> int
val get : t -> int -> Event.t
val iter : t -> f:(int -> Event.t -> unit) -> unit
val iter_events : t -> f:(Event.t -> unit) -> unit
val fold : t -> init:'a -> f:('a -> int -> Event.t -> 'a) -> 'a
val num_threads : t -> int
(** One more than the largest thread id mentioned. *)

val pp : t Fmt.t
