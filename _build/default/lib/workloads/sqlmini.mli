(** A miniature SQL subset — the query language of the H2-shaped workload.

    The Pole Position benchmark drives H2 with SQL; our substitute store
    speaks this subset, parsed by a hand-written lexer/parser:

    {v
    CREATE TABLE t (a, b, c)
    INSERT INTO t VALUES (1, "x", 2)
    SELECT a, b FROM t WHERE a = 1 AND b <> "y"
    SELECT COUNT( * ) FROM t
    UPDATE t SET b = "z" WHERE a = 1
    DELETE FROM t WHERE a = 2
    v}

    Statements are parsed to the {!stmt} AST; execution lives in
    {!Mvstore}. *)

open Crd_base

type cmp = Ceq | Cne | Clt | Cle | Cgt | Cge

type cond = { col : string; cmp : cmp; value : Value.t }
(** Conjunctive WHERE clauses only: [c1 AND c2 AND ...]. In joins, column
    names may be qualified ([table.col]). *)

type agg = Sum | Min | Max | Avg

type order = { by : string; desc : bool }

type stmt =
  | Create of { table : string; cols : string list }
  | Insert of { table : string; values : Value.t list }
  | Select of {
      table : string;
      cols : string list;
      where : cond list;
      order_by : order option;
      limit : int option;
    }  (** [cols = \["*"\]] selects everything. *)
  | Select_count of { table : string; where : cond list }
      (** [SELECT COUNT( * )]; with an empty [where] it uses the store's
          size operation. *)
  | Select_agg of { table : string; agg : agg; col : string; where : cond list }
      (** [SELECT SUM(col) FROM t ...] over integer columns. *)
  | Select_join of {
      left : string;
      right : string;
      on_left : string;
      on_right : string;  (** equi-join: [left.on_left = right.on_right] *)
      cols : string list;  (** qualified names, or [\["*"\]] *)
      where : cond list;  (** qualified names *)
    }
  | Update of { table : string; col : string; value : Value.t; where : cond list }
  | Delete of { table : string; where : cond list }

val agg_name : agg -> string

val parse : string -> (stmt, string) result
val pp_stmt : stmt Fmt.t
val cond_holds : cond -> (string -> Value.t option) -> bool
(** Evaluate a condition against a row given column lookup; missing
    columns fail the condition. *)
