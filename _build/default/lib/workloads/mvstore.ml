open Crd_base
open Crd_runtime

module Dict = Monitored.Dict
module Shared = Monitored.Shared

type table = {
  cols : string array;
  data : Dict.t;  (* Int rowid -> Ref rowid (tombstoned via nil) *)
  arena : (int, Value.t array) Hashtbl.t;  (* row payloads, unmonitored *)
  hwm : int Shared.t;  (* racy high-water mark, read by scans *)
  cache_hits : int Shared.t;  (* racy per-table statistics field *)
  pages : int Shared.t array;  (* racy per-page dirty flags *)
  (* Primary-key index: first column value -> rowid (unmonitored, like
     H2's in-memory b-tree nodes). Point queries on the first column use
     it instead of a full scan. *)
  index : (Value.t, int) Hashtbl.t;
}

let n_pages = 16

type t = {
  chunks : Dict.t;
  freed : Dict.t;
  version : int Shared.t;
  stats_queries : int Shared.t;
  stats_writes : int Shared.t;
  tables : (string, table) Hashtbl.t;
  (* Per-thread row id allocation: collision-free by construction, so
     concurrent inserts write distinct dictionary keys (and commute). *)
  next_row : (int, int ref) Hashtbl.t;
  mutable executed : int;
}

let create () =
  {
    chunks = Dict.create ~name:"dictionary:chunks" ();
    freed = Dict.create ~name:"dictionary:freedPageSpace" ();
    version = Shared.create ~name:"currentVersion" 0;
    stats_queries = Shared.create ~name:"statsQueries" 0;
    stats_writes = Shared.create ~name:"statsWrites" 0;
    tables = Hashtbl.create 8;
    next_row = Hashtbl.create 8;
    executed = 0;
  }

let chunks t = t.chunks
let freed_page_space t = t.freed
let queries_executed t = t.executed

type result =
  | Rows of Value.t array list
  | Count of int
  | Affected of int

(* ------------------------------------------------------------------ *)
(* Chunk bookkeeping: the two harmful H2 races                         *)
(* ------------------------------------------------------------------ *)

let n_chunks = 16

(* Race #1 (freedPageSpace): unsynchronized read-modify-write; two
   concurrent frees to the same chunk lose updates. *)
let free_space t ~chunk ~bytes =
  let cur =
    match Dict.get t.freed (Value.Int chunk) with
    | Value.Int n -> n
    | _ -> 0
  in
  Dict.put t.freed (Value.Int chunk) (Value.Int (cur + bytes)) |> ignore

(* Race #2 (chunks): check-then-act; two threads may both compute the
   metadata for the same version. *)
let ensure_chunk t ~version =
  match Dict.get t.chunks (Value.Int version) with
  | Value.Nil ->
      (* "Expensive" metadata computation happens here in H2. *)
      Dict.put t.chunks (Value.Int version) (Value.Ref (1000 + version))
      |> ignore
  | _ -> ()

let commit t =
  let v = Shared.get t.version in
  Shared.set t.version (v + 1);
  ensure_chunk t ~version:(v + 1);
  free_space t ~chunk:(v mod n_chunks) ~bytes:64

let maintenance_step t =
  let v = Shared.get t.version in
  ensure_chunk t ~version:v;
  free_space t ~chunk:(v mod n_chunks) ~bytes:16

(* ------------------------------------------------------------------ *)
(* Tables                                                              *)
(* ------------------------------------------------------------------ *)

let alloc_rowid t =
  let tid = Tid.to_int (Sched.self ()) in
  let counter =
    match Hashtbl.find_opt t.next_row tid with
    | Some r -> r
    | None ->
        let r = ref 0 in
        Hashtbl.add t.next_row tid r;
        r
  in
  let local = !counter in
  incr counter;
  (tid * 1_000_000) + local

let table t name =
  match Hashtbl.find_opt t.tables name with
  | Some tbl -> Ok tbl
  | None -> Error (Printf.sprintf "no such table: %s" name)

let col_index (tbl : table) name =
  let rec go i =
    if i >= Array.length tbl.cols then None
    else if String.equal tbl.cols.(i) name then Some i
    else go (i + 1)
  in
  go 0

let row_lookup (tbl : table) (row : Value.t array) col =
  Option.map (fun i -> row.(i)) (col_index tbl col)

(* Scan a table: snapshot the candidate row ids (no events), then read
   each candidate through the monitored dictionary, checking liveness
   and the WHERE clause. The racy [hwm] read models H2 reading its
   row-count field. *)
(* A WHERE clause of the shape [pk = const AND ...] can be answered
   through the primary-key index with a single point read. *)
let point_candidate (tbl : table) (where : Sqlmini.cond list) =
  if Array.length tbl.cols = 0 then None
  else
    List.find_map
      (fun (c : Sqlmini.cond) ->
        if String.equal c.Sqlmini.col tbl.cols.(0) && c.Sqlmini.cmp = Sqlmini.Ceq
        then Hashtbl.find_opt tbl.index c.Sqlmini.value
        else None)
      where

let scan ?(stats = true) t (tbl : table) where ~f =
  ignore (Shared.get tbl.hwm);
  if stats then begin
    (* Page-cache probe: reads a dirty flag that writers update racily. *)
    ignore (Shared.get tbl.pages.(Hashtbl.hash where mod n_pages));
    Shared.update t.stats_queries succ
  end;
  let ids =
    match point_candidate tbl where with
    | Some id -> [ id ]
    | None ->
        List.sort compare
          (Hashtbl.fold (fun id _ acc -> id :: acc) tbl.arena [])
  in
  List.iter
    (fun id ->
      match Dict.get tbl.data (Value.Int id) with
      | Value.Ref rid -> (
          match Hashtbl.find_opt tbl.arena rid with
          | Some row ->
              if
                List.for_all
                  (fun c -> Sqlmini.cond_holds c (row_lookup tbl row))
                  where
              then f id row
          | None -> ())
      | _ -> () (* tombstone or missing *))
    ids

let exec t stmt =
  t.executed <- t.executed + 1;
  match (stmt : Sqlmini.stmt) with
  | Sqlmini.Create { table = name; cols } ->
      if Hashtbl.mem t.tables name then
        Error (Printf.sprintf "table %s already exists" name)
      else begin
        Hashtbl.replace t.tables name
          {
            cols = Array.of_list cols;
            data = Dict.create ~name:("dictionary:tbl_" ^ name) ();
            arena = Hashtbl.create 64;
            hwm = Shared.create ~name:(name ^ ".hwm") 0;
            cache_hits = Shared.create ~name:(name ^ ".cacheHits") 0;
            pages =
              Array.init n_pages (fun i ->
                  Shared.create ~name:(Printf.sprintf "%s.page%d" name i) 0);
            index = Hashtbl.create 64;
          };
        Ok (Affected 0)
      end
  | Sqlmini.Insert { table = name; values } -> (
      match table t name with
      | Error e -> Error e
      | Ok tbl ->
          if List.length values <> Array.length tbl.cols then
            Error (Printf.sprintf "arity mismatch inserting into %s" name)
          else begin
            let id = alloc_rowid t in
            Hashtbl.replace tbl.arena id (Array.of_list values);
            (match values with
            | pk :: _ -> Hashtbl.replace tbl.index pk id
            | [] -> ());
            ignore (Dict.put tbl.data (Value.Int id) (Value.Ref id));
            (* Racy high-water mark maintenance (check-then-act). *)
            let hwm = Shared.get tbl.hwm in
            if id >= hwm then Shared.set tbl.hwm (id + 1);
            Shared.set tbl.pages.(id mod n_pages) 1;
            Shared.update t.stats_writes succ;
            Ok (Affected 1)
          end)
  | Sqlmini.Select { table = name; cols; where; order_by; limit } -> (
      match table t name with
      | Error e -> Error e
      | Ok tbl ->
          let project (row : Value.t array) =
            match cols with
            | [ "*" ] -> row
            | cols ->
                Array.of_list
                  (List.map
                     (fun c ->
                       Option.value ~default:Value.Nil (row_lookup tbl row c))
                     cols)
          in
          let out = ref [] in
          (* Sort/limit operate on full rows (projection happens last) so
             ORDER BY may use non-projected columns. *)
          let rows_acc = ref [] in
          scan t tbl where ~f:(fun _ row -> rows_acc := row :: !rows_acc);
          let rows = List.rev !rows_acc in
          let rows =
            match order_by with
            | None -> rows
            | Some { Sqlmini.by; desc } ->
                let key row =
                  Option.value ~default:Value.Nil (row_lookup tbl row by)
                in
                let cmp a b = Value.compare (key a) (key b) in
                let sorted = List.stable_sort cmp rows in
                if desc then List.rev sorted else sorted
          in
          let rows =
            match limit with
            | None -> rows
            | Some n -> List.filteri (fun i _ -> i < n) rows
          in
          out := List.rev_map project rows;
          Shared.update tbl.cache_hits succ;
          Ok (Rows (List.rev !out)))
  | Sqlmini.Select_count { table = name; where } -> (
      match table t name with
      | Error e -> Error e
      | Ok tbl ->
          if where = [] then begin
            (* COUNT( * ) without a filter uses the dictionary's size
               operation — the paper's size/resize conflict. *)
            Shared.update t.stats_queries succ;
            Ok (Count (Dict.size tbl.data))
          end
          else begin
            let n = ref 0 in
            scan t tbl where ~f:(fun _ _ -> incr n);
            Ok (Count !n)
          end)
  | Sqlmini.Select_agg { table = name; agg; col; where } -> (
      match table t name with
      | Error e -> Error e
      | Ok tbl -> (
          match col_index tbl col with
          | None -> Error (Printf.sprintf "no such column: %s.%s" name col)
          | Some ci ->
              let acc = ref [] in
              scan t tbl where ~f:(fun _ row ->
                  match row.(ci) with
                  | Value.Int n -> acc := n :: !acc
                  | _ -> ());
              let xs = !acc in
              let result =
                match (agg, xs) with
                | _, [] -> 0
                | Sqlmini.Sum, xs -> List.fold_left ( + ) 0 xs
                | Sqlmini.Min, x :: xs -> List.fold_left min x xs
                | Sqlmini.Max, x :: xs -> List.fold_left max x xs
                | Sqlmini.Avg, xs ->
                    List.fold_left ( + ) 0 xs / List.length xs
              in
              Ok (Count result)))
  | Sqlmini.Select_join { left; right; on_left; on_right; cols; where } -> (
      match (table t left, table t right) with
      | Error e, _ | _, Error e -> Error e
      | Ok ltbl, Ok rtbl -> (
          match (col_index ltbl on_left, col_index rtbl on_right) with
          | None, _ -> Error (Printf.sprintf "no such column: %s.%s" left on_left)
          | _, None ->
              Error (Printf.sprintf "no such column: %s.%s" right on_right)
          | Some li, Some _ri ->
              (* Qualified lookup over the joined row. *)
              let qualified_lookup lrow rrow colname =
                match String.index_opt colname '.' with
                | Some i ->
                    let tname = String.sub colname 0 i in
                    let cname =
                      String.sub colname (i + 1) (String.length colname - i - 1)
                    in
                    if String.equal tname left then row_lookup ltbl lrow cname
                    else if String.equal tname right then
                      row_lookup rtbl rrow cname
                    else None
                | None -> (
                    (* Unqualified: left table wins, then right. *)
                    match row_lookup ltbl lrow colname with
                    | Some v -> Some v
                    | None -> row_lookup rtbl rrow colname)
              in
              let out = ref [] in
              scan t ltbl [] ~f:(fun _ lrow ->
                  let join_key = lrow.(li) in
                  (* Index-assisted inner loop: probe the right table's
                     primary index when the join column is its key;
                     otherwise fall back to a scan. *)
                  let probe =
                    [ { Sqlmini.col = rtbl.cols.(0); cmp = Sqlmini.Ceq;
                        value = join_key } ]
                  in
                  let right_where =
                    if String.equal on_right rtbl.cols.(0) then probe else []
                  in
                  (* The inner loop is an index probe, not a separate
                     query: skip the per-query statistics updates. *)
                  scan ~stats:false t rtbl right_where ~f:(fun _ rrow ->
                      let matches =
                        Value.equal join_key
                          (Option.value ~default:Value.Nil
                             (row_lookup rtbl rrow on_right))
                        && List.for_all
                             (fun c ->
                               Sqlmini.cond_holds c (qualified_lookup lrow rrow))
                             where
                      in
                      if matches then begin
                        let projected =
                          match cols with
                          | [ "*" ] -> Array.append lrow rrow
                          | cols ->
                              Array.of_list
                                (List.map
                                   (fun c ->
                                     Option.value ~default:Value.Nil
                                       (qualified_lookup lrow rrow c))
                                   cols)
                        in
                        out := projected :: !out
                      end));
              Shared.update ltbl.cache_hits succ;
              Shared.update rtbl.cache_hits succ;
              Ok (Rows (List.rev !out))))
  | Sqlmini.Update { table = name; col; value; where } -> (
      match table t name with
      | Error e -> Error e
      | Ok tbl -> (
          match col_index tbl col with
          | None -> Error (Printf.sprintf "no such column: %s.%s" name col)
          | Some ci ->
              let hits = ref [] in
              scan t tbl where ~f:(fun id row -> hits := (id, row) :: !hits);
              List.iter
                (fun (id, row) ->
                  let row' = Array.copy row in
                  row'.(ci) <- value;
                  let rid = alloc_rowid t in
                  Hashtbl.replace tbl.arena rid row';
                  ignore (Dict.put tbl.data (Value.Int id) (Value.Ref rid));
                  Shared.set tbl.pages.(id mod n_pages) 1;
                  (* Page space freed by superseded row versions is
                     accounted lazily, at commit time. *)
                  ())
                !hits;
              Shared.update t.stats_writes succ;
              Ok (Affected (List.length !hits))))
  | Sqlmini.Delete { table = name; where } -> (
      match table t name with
      | Error e -> Error e
      | Ok tbl ->
          let hits = ref [] in
          scan t tbl where ~f:(fun id row -> hits := (id, row) :: !hits);
          List.iter
            (fun (id, (row : Value.t array)) ->
              ignore (Dict.put tbl.data (Value.Int id) Value.Nil);
              Hashtbl.remove tbl.arena id;
              if Array.length row > 0 then Hashtbl.remove tbl.index row.(0);
              Shared.set tbl.pages.(id mod n_pages) 1)
            !hits;
          Shared.update t.stats_writes succ;
          Ok (Affected (List.length !hits)))

let exec_sql t src =
  match Sqlmini.parse src with Error e -> Error e | Ok stmt -> exec t stmt
