(** The Pole Position-style benchmark circuits of Table 2.

    Pole Position drives a SQL database through scenario "circuits";
    the paper runs five against H2 (one of them under two query
    distributions, giving six table rows). Each circuit here is a
    deterministic concurrent program against {!Mvstore}:

    - [Complex_concurrency] (and [_alt] with a different query mix):
      several worker threads issue mixed SELECT/INSERT/UPDATE/DELETE
      traffic with periodic commits, racing on [freedPageSpace] and
      [chunks];
    - [Query_centric]: workers only read (point selects and filtered
      counts) after a sequential load phase — no commutativity races,
      but racy statistics fields for FastTrack to find;
    - [Insert_centric]: workers insert into disjoint key ranges and
      commit — the only commutativity conflicts are the store's chunk
      bookkeeping;
    - [Complex]: one client runs a long mixed session sequentially while
      a monitor thread polls statistics fields — low-level races only;
    - [Nested_lists]: sequential construction/traversal of nested list
      structures, with the same monitor thread running longer. *)

type circuit =
  | Complex_concurrency
  | Complex_concurrency_alt
  | Query_centric
  | Insert_centric
  | Complex
  | Nested_lists

val all : circuit list
val name : circuit -> string
val of_name : string -> circuit option

val run :
  circuit ->
  ?seed:int64 ->
  ?scale:int ->
  sink:(Crd_trace.Event.t -> unit) ->
  unit ->
  int
(** Execute the circuit, streaming every event to [sink]; returns the
    number of queries executed (the numerator of the qps measurement).
    [scale] multiplies the workload size (default 1). *)
