open Crd_base
open Crd_runtime

module Dict = Monitored.Dict
module Shared = Monitored.Shared

type config = {
  hosts : int;
  updaters : int;
  samples_per_host : int;
  recalculations : int;
}

let default_config =
  { hosts = 8; updaters = 4; samples_per_host = 16; recalculations = 10 }

let host_name i = Value.Str (Printf.sprintf "node%d" i)

let run ?(seed = 1L) ?(config = default_config) ~sink () =
  let processed = ref 0 in
  Sched.run ~seed ~sink (fun () ->
      let samples = Dict.create ~name:"dictionary:samples" () in
      let scores = Dict.create ~name:"dictionary:scores" () in
      let timestamps =
        Array.init config.hosts (fun i ->
            Shared.create ~name:(Printf.sprintf "lastUpdate.node%d" i) 0)
      in
      let ring = Hashtbl.create 64 in
      let next_ring = ref 0 in
      (* Latency updaters: register a host on first sample
         (check-then-act on the samples map), then account samples. *)
      for u = 0 to config.updaters - 1 do
        ignore
          (Sched.fork (fun () ->
               for s = 0 to config.samples_per_host - 1 do
                 for h = 0 to config.hosts - 1 do
                   if h mod config.updaters = u then begin
                     let host = host_name h in
                     (match Dict.get samples host with
                     | Value.Nil ->
                         let slot = !next_ring in
                         incr next_ring;
                         Hashtbl.replace ring slot (100 + h);
                         ignore (Dict.put samples host (Value.Ref slot))
                     | Value.Ref slot ->
                         Hashtbl.replace ring slot (100 + h + s)
                     | _ -> ());
                     Shared.set timestamps.(h) s;
                     incr processed
                   end
                 done
               done))
      done;
      (* Score recalculation: size() as a performance hint (race #3),
         then read every sample and publish a score. *)
      ignore
        (Sched.fork (fun () ->
             for _ = 1 to config.recalculations do
               let hint = Dict.size samples in
               for h = 0 to config.hosts - 1 do
                 let host = host_name h in
                 (match Dict.get samples host with
                 | Value.Ref slot ->
                     let latency =
                       Option.value ~default:0 (Hashtbl.find_opt ring slot)
                     in
                     ignore
                       (Dict.put scores host (Value.Int (latency / max 1 hint)))
                 | _ -> ());
                 ignore (Shared.get timestamps.(h))
               done
             done));
      (* Gossip: consumes scores concurrently with their publication. *)
      ignore
        (Sched.fork (fun () ->
             for _ = 1 to config.recalculations do
               for h = 0 to config.hosts - 1 do
                 ignore (Dict.get scores (host_name h))
               done
             done));
      Sched.join_all ());
  !processed
