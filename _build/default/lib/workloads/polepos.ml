open Crd_base
open Crd_runtime

module Shared = Monitored.Shared

type circuit =
  | Complex_concurrency
  | Complex_concurrency_alt
  | Query_centric
  | Insert_centric
  | Complex
  | Nested_lists

let all =
  [
    Complex_concurrency;
    Complex_concurrency_alt;
    Query_centric;
    Insert_centric;
    Complex;
    Nested_lists;
  ]

let name = function
  | Complex_concurrency -> "ComplexConcurrency"
  | Complex_concurrency_alt -> "ComplexConcurrency-alt"
  | Query_centric -> "QueryCentricConcurrency"
  | Insert_centric -> "InsertCentricConcurrency"
  | Complex -> "Complex"
  | Nested_lists -> "NestedLists"

let of_name s =
  List.find_opt (fun c -> String.equal (name c) s) all

let must = function
  | Ok r -> r
  | Error e -> failwith ("Polepos: query failed: " ^ e)

let sql store src = ignore (must (Mvstore.exec_sql store src))

(* ------------------------------------------------------------------ *)
(* Common setup: a small order-management schema                       *)
(* ------------------------------------------------------------------ *)

let setup store ~customers =
  sql store "CREATE TABLE customers (id, name, tier)";
  sql store "CREATE TABLE orders (id, cust, amount)";
  for i = 0 to customers - 1 do
    sql store
      (Printf.sprintf "INSERT INTO customers VALUES (%d, 'cust%d', %d)" i i
         (i mod 3))
  done

(* One mixed transaction, driven by a per-thread PRNG. The [writes]
   weight tunes the query distribution (per mille). *)
let mixed_step store prng ~writes ~customers =
  let roll = Prng.int prng 1000 in
  if roll < writes / 2 then begin
    let c = Prng.int prng customers in
    sql store
      (Printf.sprintf "INSERT INTO orders VALUES (%d, %d, %d)"
         (Prng.int prng 1_000_000) c
         (10 + Prng.int prng 90));
    if Prng.int prng 4 = 0 then Mvstore.commit store
  end
  else if roll < writes then begin
    let tier = Prng.int prng 3 in
    sql store
      (Printf.sprintf "UPDATE customers SET tier = %d WHERE id = %d"
         ((tier + 1) mod 3)
         (Prng.int prng customers));
    if Prng.int prng 4 = 0 then Mvstore.commit store
  end
  else if roll < 1000 - 100 then
    sql store
      (Printf.sprintf "SELECT name, tier FROM customers WHERE id = %d"
         (Prng.int prng customers))
  else
    sql store
      (Printf.sprintf "SELECT COUNT(*) FROM customers WHERE tier = %d"
         (Prng.int prng 3))

let concurrency_circuit ~writes ?(seed = 1L) ?(scale = 1) ~sink () =
  let store = Mvstore.create () in
  let customers = 24 in
  let workers = 6 in
  let per_worker = 40 * scale in
  Sched.run ~seed ~sink (fun () ->
      setup store ~customers;
      for w = 0 to workers - 1 do
        ignore
          (Sched.fork (fun () ->
               let prng = Prng.make (Int64.of_int (0x9E37 + w)) in
               for _ = 1 to per_worker do
                 mixed_step store prng ~writes ~customers
               done))
      done;
      (* Background compaction shares the chunk bookkeeping code paths
         with the workers' commits. *)
      ignore
        (Sched.fork (fun () ->
             for _ = 1 to 12 * scale do
               Mvstore.maintenance_step store
             done));
      Sched.join_all ();
      sql store "SELECT COUNT(*) FROM orders");
  Mvstore.queries_executed store

let query_centric ?(seed = 1L) ?(scale = 1) ~sink () =
  let store = Mvstore.create () in
  let customers = 32 in
  let workers = 6 in
  let per_worker = 60 * scale in
  Sched.run ~seed ~sink (fun () ->
      setup store ~customers;
      for i = 0 to 63 do
        sql store
          (Printf.sprintf "INSERT INTO orders VALUES (%d, %d, %d)" i
             (i mod customers) (10 + i))
      done;
      for w = 0 to workers - 1 do
        ignore
          (Sched.fork (fun () ->
               let prng = Prng.make (Int64.of_int (0xA11CE + w)) in
               for _ = 1 to per_worker do
                 let roll = Prng.int prng 100 in
                 if roll < 50 then
                   sql store
                     (Printf.sprintf
                        "SELECT name FROM customers WHERE id = %d"
                        (Prng.int prng customers))
                 else if roll < 70 then
                   sql store
                     (Printf.sprintf
                        "SELECT amount FROM orders WHERE cust = %d \
                         ORDER BY amount DESC LIMIT 3"
                        (Prng.int prng customers))
                 else if roll < 80 then
                   sql store
                     (Printf.sprintf
                        "SELECT SUM(amount) FROM orders WHERE cust = %d"
                        (Prng.int prng customers))
                 else if roll < 90 then
                   sql store
                     "SELECT name, amount FROM orders JOIN customers ON \
                      orders.cust = customers.id WHERE amount >= 40"
                 else
                   sql store
                     (Printf.sprintf
                        "SELECT COUNT(*) FROM orders WHERE amount >= %d"
                        (10 + Prng.int prng 60))
               done))
      done;
      Sched.join_all ());
  Mvstore.queries_executed store

let insert_centric ?(seed = 1L) ?(scale = 1) ~sink () =
  let store = Mvstore.create () in
  let workers = 6 in
  let per_worker = 50 * scale in
  Sched.run ~seed ~sink (fun () ->
      sql store "CREATE TABLE events (id, kind, payload)";
      for w = 0 to workers - 1 do
        ignore
          (Sched.fork (fun () ->
               let prng = Prng.make (Int64.of_int (0xBEE + w)) in
               for i = 1 to per_worker do
                 sql store
                   (Printf.sprintf
                      "INSERT INTO events VALUES (%d, %d, 'p%d')"
                      ((w * 1_000_000) + i)
                      (Prng.int prng 5) i);
                 if i mod 8 = 0 then Mvstore.commit store
               done))
      done;
      Sched.join_all ();
      sql store "SELECT COUNT(*) FROM events");
  Mvstore.queries_executed store

(* Sequential circuits: one client, plus a monitor thread that polls the
   racy statistics fields (H2's own background threads do the same). *)
let sequential_circuit ~steps ~monitor_polls ?(seed = 1L) ?(scale = 1) ~sink
    ~body () =
  let store = Mvstore.create () in
  Sched.run ~seed ~sink (fun () ->
      setup store ~customers:16;
      let polls = Shared.create ~name:"monitorPolls" 0 in
      let mon =
        Sched.fork (fun () ->
            for _ = 1 to monitor_polls * scale do
              Shared.update polls succ;
              Sched.yield ()
            done)
      in
      body store (steps * scale) polls;
      Sched.join mon);
  Mvstore.queries_executed store

let complex ?(seed = 1L) ?(scale = 1) ~sink () =
  sequential_circuit ~steps:60 ~monitor_polls:20 ~seed ~scale ~sink
    ~body:(fun store steps polls ->
      let prng = Prng.make 0xC0FFEEL in
      for i = 1 to steps do
        (* The client also touches the polled statistics field. *)
        if i mod 5 = 0 then Shared.update polls succ;
        mixed_step store prng ~writes:300 ~customers:16
      done)
    ()

let nested_lists ?(seed = 1L) ?(scale = 1) ~sink () =
  sequential_circuit ~steps:40 ~monitor_polls:60 ~seed ~scale ~sink
    ~body:(fun store steps polls ->
      sql store "CREATE TABLE nodes (id, parent, depth)";
      let counter = ref 0 in
      (* Build nested list structures: a forest of depth-3 lists. *)
      for root = 1 to steps do
        Shared.update polls succ;
        let rec build parent depth =
          if depth < 3 then begin
            for _ = 1 to 2 do
              incr counter;
              let id = !counter in
              sql store
                (Printf.sprintf "INSERT INTO nodes VALUES (%d, %d, %d)" id
                   parent depth);
              build id (depth + 1)
            done
          end
        in
        build root 0;
        (* Traverse. *)
        sql store
          (Printf.sprintf "SELECT id FROM nodes WHERE parent = %d" root);
        if root mod 10 = 0 then
          sql store "SELECT COUNT(*) FROM nodes WHERE depth >= 1"
      done)
    ()

let run circuit ?seed ?scale ~sink () =
  match circuit with
  | Complex_concurrency -> concurrency_circuit ~writes:400 ?seed ?scale ~sink ()
  | Complex_concurrency_alt ->
      concurrency_circuit ~writes:700 ?seed ?scale ~sink ()
  | Query_centric -> query_centric ?seed ?scale ~sink ()
  | Insert_centric -> insert_centric ?seed ?scale ~sink ()
  | Complex -> complex ?seed ?scale ~sink ()
  | Nested_lists -> nested_lists ?seed ?scale ~sink ()
