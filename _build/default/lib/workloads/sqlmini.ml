open Crd_base

type cmp = Ceq | Cne | Clt | Cle | Cgt | Cge

type cond = { col : string; cmp : cmp; value : Value.t }

type agg = Sum | Min | Max | Avg

type order = { by : string; desc : bool }

type stmt =
  | Create of { table : string; cols : string list }
  | Insert of { table : string; values : Value.t list }
  | Select of {
      table : string;
      cols : string list;
      where : cond list;
      order_by : order option;
      limit : int option;
    }
  | Select_count of { table : string; where : cond list }
  | Select_agg of { table : string; agg : agg; col : string; where : cond list }
  | Select_join of {
      left : string;
      right : string;
      on_left : string;
      on_right : string;
      cols : string list;
      where : cond list;
    }
  | Update of { table : string; col : string; value : Value.t; where : cond list }
  | Delete of { table : string; where : cond list }

let agg_name = function Sum -> "SUM" | Min -> "MIN" | Max -> "MAX" | Avg -> "AVG"

let agg_of_name s =
  match String.uppercase_ascii s with
  | "SUM" -> Some Sum
  | "MIN" -> Some Min
  | "MAX" -> Some Max
  | "AVG" -> Some Avg
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

type token =
  | WORD of string  (* keyword or identifier, uppercased keywords *)
  | VAL of Value.t
  | LP
  | RP
  | COMMA
  | STAR
  | DOT
  | OP of cmp
  | TEOF

exception Err of string

let err fmt = Fmt.kstr (fun s -> raise (Err s)) fmt

let is_word_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_'

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if (c >= '0' && c <= '9') || (c = '-' && !i + 1 < n && src.[!i + 1] >= '0' && src.[!i + 1] <= '9')
    then begin
      let start = !i in
      incr i;
      while !i < n && src.[!i] >= '0' && src.[!i] <= '9' do
        incr i
      done;
      toks := VAL (Value.Int (int_of_string (String.sub src start (!i - start)))) :: !toks
    end
    else if is_word_char c then begin
      let start = !i in
      while !i < n && is_word_char src.[!i] do
        incr i
      done;
      toks := WORD (String.sub src start (!i - start)) :: !toks
    end
    else if c = '"' || c = '\'' then begin
      let quote = c in
      incr i;
      let start = !i in
      while !i < n && src.[!i] <> quote do
        incr i
      done;
      if !i >= n then err "unterminated string literal";
      toks := VAL (Value.Str (String.sub src start (!i - start))) :: !toks;
      incr i
    end
    else begin
      (match c with
      | '(' -> toks := LP :: !toks
      | ')' -> toks := RP :: !toks
      | ',' -> toks := COMMA :: !toks
      | '*' -> toks := STAR :: !toks
      | '.' -> toks := DOT :: !toks
      | '=' -> toks := OP Ceq :: !toks
      | '<' ->
          if !i + 1 < n && src.[!i + 1] = '>' then begin
            toks := OP Cne :: !toks;
            incr i
          end
          else if !i + 1 < n && src.[!i + 1] = '=' then begin
            toks := OP Cle :: !toks;
            incr i
          end
          else toks := OP Clt :: !toks
      | '>' ->
          if !i + 1 < n && src.[!i + 1] = '=' then begin
            toks := OP Cge :: !toks;
            incr i
          end
          else toks := OP Cgt :: !toks
      | c -> err "unexpected character %C" c);
      incr i
    end
  done;
  List.rev (TEOF :: !toks)

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let kw s = String.uppercase_ascii s

let expect_word toks what =
  match toks with
  | WORD w :: rest -> (w, rest)
  | _ -> err "expected %s" what

let expect_kw toks k =
  match toks with
  | WORD w :: rest when String.equal (kw w) k -> rest
  | _ -> err "expected %s" k

let expect toks tok what =
  match toks with
  | t :: rest when t = tok -> rest
  | _ -> err "expected %s" what

let parse_value toks =
  match toks with
  | VAL v :: rest -> (v, rest)
  | WORD w :: rest when String.equal (kw w) "NULL" -> (Value.Nil, rest)
  | _ -> err "expected a value"

(* A possibly-qualified name: col or table.col. *)
let parse_name toks =
  let name, rest = expect_word toks "a column name" in
  match rest with
  | DOT :: rest ->
      let field, rest = expect_word rest "a column name" in
      (name ^ "." ^ field, rest)
  | _ -> (name, rest)

let rec parse_name_list toks =
  let name, rest = parse_name toks in
  match rest with
  | COMMA :: rest ->
      let names, rest = parse_name_list rest in
      (name :: names, rest)
  | _ -> ([ name ], rest)

let rec parse_value_list toks =
  let v, rest = parse_value toks in
  match rest with
  | COMMA :: rest ->
      let vs, rest = parse_value_list rest in
      (v :: vs, rest)
  | _ -> ([ v ], rest)

let rec parse_conds toks =
  let col, rest = parse_name toks in
  let cmp, rest =
    match rest with OP c :: rest -> (c, rest) | _ -> err "expected a comparison"
  in
  let value, rest = parse_value rest in
  let c = { col; cmp; value } in
  match rest with
  | WORD w :: rest when String.equal (kw w) "AND" ->
      let cs, rest = parse_conds rest in
      (c :: cs, rest)
  | _ -> ([ c ], rest)

let parse_where toks =
  match toks with
  | WORD w :: rest when String.equal (kw w) "WHERE" -> parse_conds rest
  | _ -> ([], toks)

let parse_order_limit toks =
  let order_by, toks =
    match toks with
    | WORD o :: WORD b :: rest when kw o = "ORDER" && kw b = "BY" -> (
        let by, rest = parse_name rest in
        match rest with
        | WORD d :: rest when kw d = "DESC" -> (Some { by; desc = true }, rest)
        | WORD d :: rest when kw d = "ASC" -> (Some { by; desc = false }, rest)
        | _ -> (Some { by; desc = false }, rest))
    | _ -> (None, toks)
  in
  let limit, toks =
    match toks with
    | WORD l :: VAL (Value.Int n) :: rest when kw l = "LIMIT" -> (Some n, rest)
    | _ -> (None, toks)
  in
  (order_by, limit, toks)

let finish toks stmt =
  match toks with [ TEOF ] | [] -> stmt | _ -> err "trailing tokens"

let parse src =
  match tokenize src with
  | exception Err e -> Error e
  | toks -> (
      try
        Ok
          (match toks with
          | WORD w :: rest when kw w = "CREATE" ->
              let rest = expect_kw rest "TABLE" in
              let table, rest = expect_word rest "a table name" in
              let rest = expect rest LP "'('" in
              let cols, rest = parse_name_list rest in
              let rest = expect rest RP "')'" in
              finish rest (Create { table; cols })
          | WORD w :: rest when kw w = "INSERT" ->
              let rest = expect_kw rest "INTO" in
              let table, rest = expect_word rest "a table name" in
              let rest = expect_kw rest "VALUES" in
              let rest = expect rest LP "'('" in
              let values, rest = parse_value_list rest in
              let rest = expect rest RP "')'" in
              finish rest (Insert { table; values })
          | WORD w :: rest when kw w = "SELECT" -> (
              let continue_from cols rest =
                let table, rest = expect_word rest "a table name" in
                match rest with
                | WORD j :: rest when kw j = "JOIN" ->
                    let right, rest = expect_word rest "a table name" in
                    let rest = expect_kw rest "ON" in
                    let on_left, rest = parse_name rest in
                    let rest =
                      match rest with
                      | OP Ceq :: rest -> rest
                      | _ -> err "expected '=' in join condition"
                    in
                    let on_right, rest = parse_name rest in
                    let where, rest = parse_where rest in
                    let strip t n =
                      (* accept either col or table-qualified col *)
                      let prefix = t ^ "." in
                      let lp = String.length prefix in
                      if String.length n > lp && String.sub n 0 lp = prefix
                      then String.sub n lp (String.length n - lp)
                      else n
                    in
                    finish rest
                      (Select_join
                         {
                           left = table;
                           right;
                           on_left = strip table on_left;
                           on_right = strip right on_right;
                           cols;
                           where;
                         })
                | _ ->
                    let where, rest = parse_where rest in
                    let order_by, limit, rest = parse_order_limit rest in
                    finish rest (Select { table; cols; where; order_by; limit })
              in
              match rest with
              | WORD c :: LP :: STAR :: RP :: rest when kw c = "COUNT" ->
                  let rest = expect_kw rest "FROM" in
                  let table, rest = expect_word rest "a table name" in
                  let where, rest = parse_where rest in
                  finish rest (Select_count { table; where })
              | WORD a :: LP :: rest when agg_of_name a <> None -> (
                  let agg = Option.get (agg_of_name a) in
                  let col, rest = parse_name rest in
                  match rest with
                  | RP :: rest ->
                      let rest = expect_kw rest "FROM" in
                      let table, rest = expect_word rest "a table name" in
                      let where, rest = parse_where rest in
                      finish rest (Select_agg { table; agg; col; where })
                  | _ -> err "expected ')' after aggregate column")
              | STAR :: rest ->
                  let rest = expect_kw rest "FROM" in
                  continue_from [ "*" ] rest
              | _ ->
                  let cols, rest = parse_name_list rest in
                  let rest = expect_kw rest "FROM" in
                  continue_from cols rest)
          | WORD w :: rest when kw w = "UPDATE" ->
              let table, rest = expect_word rest "a table name" in
              let rest = expect_kw rest "SET" in
              let col, rest = expect_word rest "a column name" in
              let rest =
                match rest with
                | OP Ceq :: rest -> rest
                | _ -> err "expected '='"
              in
              let value, rest = parse_value rest in
              let where, rest = parse_where rest in
              finish rest (Update { table; col; value; where })
          | WORD w :: rest when kw w = "DELETE" ->
              let rest = expect_kw rest "FROM" in
              let table, rest = expect_word rest "a table name" in
              let where, rest = parse_where rest in
              finish rest (Delete { table; where })
          | _ -> err "expected CREATE, INSERT, SELECT, UPDATE or DELETE")
      with Err e -> Error e)

(* ------------------------------------------------------------------ *)
(* Printing and evaluation                                             *)
(* ------------------------------------------------------------------ *)

let cmp_name = function
  | Ceq -> "="
  | Cne -> "<>"
  | Clt -> "<"
  | Cle -> "<="
  | Cgt -> ">"
  | Cge -> ">="

let pp_cond ppf c = Fmt.pf ppf "%s %s %a" c.col (cmp_name c.cmp) Value.pp c.value

let pp_where ppf = function
  | [] -> ()
  | conds -> Fmt.pf ppf " WHERE %a" Fmt.(list ~sep:(any " AND ") pp_cond) conds

let pp_stmt ppf = function
  | Create { table; cols } ->
      Fmt.pf ppf "CREATE TABLE %s (%a)" table
        Fmt.(list ~sep:(any ", ") string)
        cols
  | Insert { table; values } ->
      Fmt.pf ppf "INSERT INTO %s VALUES (%a)" table
        Fmt.(list ~sep:(any ", ") Value.pp)
        values
  | Select { table; cols; where; order_by; limit } ->
      Fmt.pf ppf "SELECT %a FROM %s%a"
        Fmt.(list ~sep:(any ", ") string)
        cols table pp_where where;
      (match order_by with
      | Some { by; desc } ->
          Fmt.pf ppf " ORDER BY %s%s" by (if desc then " DESC" else "")
      | None -> ());
      (match limit with Some n -> Fmt.pf ppf " LIMIT %d" n | None -> ())
  | Select_agg { table; agg; col; where } ->
      Fmt.pf ppf "SELECT %s(%s) FROM %s%a" (agg_name agg) col table pp_where
        where
  | Select_join { left; right; on_left; on_right; cols; where } ->
      Fmt.pf ppf "SELECT %a FROM %s JOIN %s ON %s.%s = %s.%s%a"
        Fmt.(list ~sep:(any ", ") string)
        cols left right left on_left right on_right pp_where where
  | Select_count { table; where } ->
      Fmt.pf ppf "SELECT COUNT(*) FROM %s%a" table pp_where where
  | Update { table; col; value; where } ->
      Fmt.pf ppf "UPDATE %s SET %s = %a%a" table col Value.pp value pp_where
        where
  | Delete { table; where } ->
      Fmt.pf ppf "DELETE FROM %s%a" table pp_where where

let cond_holds c lookup =
  match lookup c.col with
  | None -> false
  | Some v -> (
      match c.cmp with
      | Ceq -> Value.equal v c.value
      | Cne -> not (Value.equal v c.value)
      | Clt -> Value.lt v c.value
      | Cle -> Value.le v c.value
      | Cgt -> Value.lt c.value v
      | Cge -> Value.le c.value v)
