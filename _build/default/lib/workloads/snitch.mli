(** The Cassandra DynamicEndpointSnitch workload (Table 2, last row).

    Cassandra ranks database nodes by continuously accumulating latency
    samples in a [ConcurrentHashMap] ([samples]) while a separate thread
    recalculates node scores. The paper's race #3: new entries are added
    to [samples] while its [size()] is concurrently used as a performance
    hint during rank recalculation, making the hint obsolete.

    The simulation runs one updater thread per node group feeding
    latency samples (check-then-act registration into [samples], racy
    per-node timestamp fields) and one score thread repeatedly sizing and
    reading [samples] and publishing into [scores], plus a gossip thread
    reading [scores]. *)

type config = {
  hosts : int;  (** distinct endpoints *)
  updaters : int;  (** latency-feeding threads *)
  samples_per_host : int;
  recalculations : int;  (** score-thread iterations *)
}

val default_config : config

val run :
  ?seed:int64 -> ?config:config -> sink:(Crd_trace.Event.t -> unit) -> unit -> int
(** Returns the number of latency samples processed. *)
