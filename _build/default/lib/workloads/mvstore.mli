(** An H2-shaped multi-version store — the substrate of the Table 2
    workload.

    H2's MVStore keeps its bookkeeping in [ConcurrentHashMap]s; the two
    harmful commutativity races the paper reports live in its [chunks]
    and [freedPageSpace] maps. This store mirrors that architecture:

    - each table's rows live in a monitored dictionary
      ([dictionary:tbl_<name>]) mapping row ids to row references;
    - [chunks] ([dictionary:chunks]) maps a version to its chunk
      metadata, populated with a check-then-act ([get] then [put]) — the
      paper's race #2 (same result computed multiple times);
    - [freedPageSpace] ([dictionary:freedPageSpace]) accumulates freed
      bytes per chunk with an unsynchronized read-modify-write — the
      paper's race #1 (lost updates corrupt the server state);
    - assorted application fields (query counters, high-water marks,
      cache fields) are unsynchronized {!Crd_runtime.Monitored.Shared}
      cells — the food of the FastTrack baseline.

    All operations must run inside {!Crd_runtime.Sched.run}. *)

open Crd_base

type t

val create : unit -> t
val chunks : t -> Crd_runtime.Monitored.Dict.t
val freed_page_space : t -> Crd_runtime.Monitored.Dict.t

type result =
  | Rows of Value.t array list
  | Count of int
  | Affected of int

val exec : t -> Sqlmini.stmt -> (result, string) Stdlib.result
(** Execute one statement. Row scans read each live row through the
    table's monitored dictionary. *)

val exec_sql : t -> string -> (result, string) Stdlib.result

val commit : t -> unit
(** Bump the store version, ensure the new version's chunk metadata
    exists (race #2) and account freed pages (race #1). *)

val maintenance_step : t -> unit
(** One step of the background compaction thread: re-derives chunk
    metadata and rebalances freed-page accounting. Runs the same
    check-then-act code paths as {!commit}. *)

val queries_executed : t -> int
(** Uninstrumented counter (reliable, unlike the racy stats fields). *)
