lib/workloads/snitch.mli: Crd_trace
