lib/workloads/sqlmini.ml: Crd_base Fmt List Option String Value
