lib/workloads/mvstore.ml: Array Crd_base Crd_runtime Hashtbl List Monitored Option Printf Sched Sqlmini String Tid Value
