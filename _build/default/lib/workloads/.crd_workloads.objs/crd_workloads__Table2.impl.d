lib/workloads/table2.ml: Analyzer Crd Fmt List Option Polepos Report Rw_report Snitch String Unix
