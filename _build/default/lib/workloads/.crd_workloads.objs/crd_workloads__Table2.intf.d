lib/workloads/table2.mli: Fmt
