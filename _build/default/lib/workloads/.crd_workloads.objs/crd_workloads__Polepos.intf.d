lib/workloads/polepos.mli: Crd_trace
