lib/workloads/sqlmini.mli: Crd_base Fmt Value
