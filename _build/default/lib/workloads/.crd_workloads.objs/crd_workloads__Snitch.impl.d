lib/workloads/snitch.ml: Array Crd_base Crd_runtime Hashtbl Monitored Option Printf Sched Value
