lib/workloads/mvstore.mli: Crd_base Crd_runtime Sqlmini Stdlib Value
