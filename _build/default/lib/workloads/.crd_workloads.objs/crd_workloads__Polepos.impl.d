lib/workloads/polepos.ml: Crd_base Crd_runtime Int64 List Monitored Mvstore Printf Prng Sched String
