open Crd_base
open Crd_spec

type state = { toks : Lexer.t array; mutable pos : int }

exception Err of Lexer.pos * string

let err pos fmt = Fmt.kstr (fun s -> raise (Err (pos, s))) fmt
let peek st = st.toks.(st.pos)
let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let next st =
  let t = peek st in
  advance st;
  t

let expect st tok =
  let t = peek st in
  if t.Lexer.token = tok then advance st
  else
    err t.Lexer.pos "expected %s but found %s" (Lexer.token_name tok)
      (Lexer.token_name t.Lexer.token)

let expect_ident st what =
  match next st with
  | { Lexer.token = Lexer.IDENT s; _ } -> s
  | t -> err t.Lexer.pos "expected %s but found %s" what (Lexer.token_name t.Lexer.token)

(* ------------------------------------------------------------------ *)
(* Surface AST                                                        *)
(* ------------------------------------------------------------------ *)

type sterm = SVar of string * Lexer.pos | SConst of Value.t

type sform =
  | STrue
  | SFalse
  | SAtom of Atom.pred * sterm * sterm
  | SNot of sform
  | SAnd of sform * sform
  | SOr of sform * sform

type header = { hmeth : string; hargs : string list; hrets : string list; hpos : Lexer.pos }

type item =
  | Method of Signature.t
  | Commutes of header * header * sform * Lexer.pos
  | Default of sform * Lexer.pos

(* ------------------------------------------------------------------ *)
(* Headers                                                            *)
(* ------------------------------------------------------------------ *)

let parse_name_list st =
  let rec go acc =
    match peek st with
    | { Lexer.token = Lexer.RPAREN; _ } -> List.rev acc
    | _ -> (
        let n = expect_ident st "a parameter name" in
        match peek st with
        | { Lexer.token = Lexer.COMMA; _ } ->
            advance st;
            go (n :: acc)
        | _ -> List.rev (n :: acc))
  in
  go []

let parse_rets st =
  match peek st with
  | { Lexer.token = Lexer.SLASH; _ } -> (
      advance st;
      match peek st with
      | { Lexer.token = Lexer.LPAREN; _ } ->
          advance st;
          let names = parse_name_list st in
          expect st Lexer.RPAREN;
          names
      | _ -> [ expect_ident st "a return name" ])
  | _ -> []

let parse_header st =
  let hpos = (peek st).Lexer.pos in
  let hmeth = expect_ident st "a method name" in
  expect st Lexer.LPAREN;
  let hargs = parse_name_list st in
  expect st Lexer.RPAREN;
  let hrets = parse_rets st in
  { hmeth; hargs; hrets; hpos }

(* ------------------------------------------------------------------ *)
(* Formulas                                                           *)
(* ------------------------------------------------------------------ *)

let relop_of_token = function
  | Lexer.EQ -> Some Atom.Eq
  | Lexer.NE -> Some Atom.Ne
  | Lexer.LT -> Some Atom.Lt
  | Lexer.LE -> Some Atom.Le
  | Lexer.GT -> Some Atom.Gt
  | Lexer.GE -> Some Atom.Ge
  | _ -> None

let parse_term st =
  match next st with
  | { Lexer.token = Lexer.IDENT s; pos } -> SVar (s, pos)
  | { Lexer.token = Lexer.INT i; _ } -> SConst (Value.Int i)
  | { Lexer.token = Lexer.STRING s; _ } -> SConst (Value.Str s)
  | { Lexer.token = Lexer.VALUE v; _ } -> SConst v
  | { Lexer.token = Lexer.KW_TRUE; _ } -> SConst (Value.Bool true)
  | { Lexer.token = Lexer.KW_FALSE; _ } -> SConst (Value.Bool false)
  | t -> err t.Lexer.pos "expected a term but found %s" (Lexer.token_name t.Lexer.token)

let rec parse_formula st = parse_disj st

and parse_disj st =
  (* Left-associative, matching the pretty-printer. *)
  let lhs = ref (parse_conj st) in
  while (peek st).Lexer.token = Lexer.OROR do
    advance st;
    lhs := SOr (!lhs, parse_conj st)
  done;
  !lhs

and parse_conj st =
  let lhs = ref (parse_neg st) in
  while (peek st).Lexer.token = Lexer.ANDAND do
    advance st;
    lhs := SAnd (!lhs, parse_neg st)
  done;
  !lhs

and parse_neg st =
  match peek st with
  | { Lexer.token = Lexer.BANG; _ } ->
      advance st;
      SNot (parse_neg st)
  | _ -> parse_atomic st

and parse_atomic st =
  let finish_atom lhs =
    let t = next st in
    match relop_of_token t.Lexer.token with
    | Some pred ->
        let rhs = parse_term st in
        SAtom (pred, lhs, rhs)
    | None ->
        err t.Lexer.pos "expected a comparison operator but found %s"
          (Lexer.token_name t.Lexer.token)
  in
  match peek st with
  | { Lexer.token = Lexer.LPAREN; _ } -> (
      advance st;
      let f = parse_formula st in
      expect st Lexer.RPAREN;
      (* A parenthesized formula may still be the left operand of a
         comparison only if it were a term, which the grammar forbids —
         parentheses always group formulas. *)
      f)
  | { Lexer.token = Lexer.KW_TRUE; _ }
    when relop_of_token st.toks.(st.pos + 1).Lexer.token = None ->
      advance st;
      STrue
  | { Lexer.token = Lexer.KW_FALSE; _ }
    when relop_of_token st.toks.(st.pos + 1).Lexer.token = None ->
      advance st;
      SFalse
  | _ ->
      let lhs = parse_term st in
      finish_atom lhs

(* ------------------------------------------------------------------ *)
(* Items and objects                                                  *)
(* ------------------------------------------------------------------ *)

let parse_item st =
  let t = peek st in
  match t.Lexer.token with
  | Lexer.KW_METHOD ->
      advance st;
      let h = parse_header st in
      expect st Lexer.SEMI;
      Method (Signature.make ~meth:h.hmeth ~args:h.hargs ~rets:h.hrets ())
  | Lexer.KW_COMMUTES ->
      advance st;
      let pos = t.Lexer.pos in
      let h1 = parse_header st in
      expect st Lexer.PAIRSEP;
      let h2 = parse_header st in
      expect st Lexer.KW_WHEN;
      let f = parse_formula st in
      expect st Lexer.SEMI;
      Commutes (h1, h2, f, pos)
  | Lexer.KW_DEFAULT ->
      advance st;
      let pos = t.Lexer.pos in
      let f = parse_formula st in
      expect st Lexer.SEMI;
      Default (f, pos)
  | tok ->
      err t.Lexer.pos "expected 'method', 'commutes', 'default' or '}' but found %s"
        (Lexer.token_name tok)

(* Resolve a surface formula under a variable environment mapping names
   to (side, slot). *)
let resolve_formula env f =
  let rec go = function
    | STrue -> Formula.True
    | SFalse -> Formula.False
    | SNot f -> Formula.Not (go f)
    | SAnd (f, g) -> Formula.And (go f, go g)
    | SOr (f, g) -> Formula.Or (go f, go g)
    | SAtom (pred, lhs, rhs) ->
        Formula.Atom { Atom.pred; lhs = term lhs; rhs = term rhs }
  and term = function
    | SConst v -> Atom.Const v
    | SVar (name, pos) -> (
        match env name with
        | Some (side, slot) -> Atom.Var { Atom.side; slot; name }
        | None -> err pos "unbound variable %s" name)
  in
  go f

let header_env (sigs : Signature.t list) (h1 : header) (h2 : header) =
  let check (h : header) =
    match List.find_opt (fun (s : Signature.t) -> String.equal s.meth h.hmeth) sigs with
    | None -> err h.hpos "method %s is not declared" h.hmeth
    | Some s ->
        if
          List.length h.hargs <> List.length s.args
          || List.length h.hrets <> List.length s.rets
        then
          err h.hpos "header of %s does not match its signature %s" h.hmeth
            (Fmt.str "%a" Signature.pp s)
  in
  check h1;
  check h2;
  let bind side (h : header) =
    List.mapi (fun i n -> (n, (side, i))) (h.hargs @ h.hrets)
  in
  let b1 = bind Atom.Side.Fst h1 and b2 = bind Atom.Side.Snd h2 in
  List.iter
    (fun (n, _) ->
      if List.mem_assoc n b2 then
        err h1.hpos "variable %s is bound by both headers" n)
    b1;
  let all = b1 @ b2 in
  fun name -> List.assoc_opt name all

let parse_object st =
  expect st Lexer.KW_OBJECT;
  let name = expect_ident st "an object name" in
  expect st Lexer.LBRACE;
  let items = ref [] in
  while (peek st).Lexer.token <> Lexer.RBRACE do
    items := parse_item st :: !items
  done;
  expect st Lexer.RBRACE;
  let items = List.rev !items in
  let sigs =
    List.filter_map (function Method s -> Some s | _ -> None) items
  in
  (match
     List.fold_left
       (fun seen (s : Signature.t) ->
         if List.mem s.meth seen then
           err { Lexer.line = 0; col = 0 } "method %s declared twice" s.meth
         else s.meth :: seen)
       [] sigs
   with
  | _ -> ());
  let entries =
    List.filter_map
      (function
        | Commutes (h1, h2, f, _) ->
            let env = header_env sigs h1 h2 in
            Some (h1.hmeth, h2.hmeth, resolve_formula env f)
        | _ -> None)
      items
  in
  let default =
    List.fold_left
      (fun acc item ->
        match item with
        | Default (f, pos) -> (
            match acc with
            | Some _ -> err pos "duplicate default clause"
            | None -> Some (resolve_formula (fun _ -> None) f, pos))
        | _ -> acc)
      None items
  in
  let default, dpos =
    match default with
    | Some (f, pos) -> (Some f, Some pos)
    | None -> (None, None)
  in
  ignore dpos;
  match Spec.make ~name ~methods:sigs ?default entries with
  | Ok spec -> spec
  | Error msg -> err { Lexer.line = 0; col = 0 } "object %s: %s" name msg

let parse src =
  match Lexer.tokenize src with
  | Error e -> Error e
  | Ok toks -> (
      let st = { toks; pos = 0 } in
      try
        let specs = ref [] in
        while (peek st).Lexer.token <> Lexer.EOF do
          specs := parse_object st :: !specs
        done;
        Ok (List.rev !specs)
      with Err (pos, msg) -> Error (Fmt.str "%a: %s" Lexer.pp_pos pos msg))

let parse_one src =
  match parse src with
  | Ok [ spec ] -> Ok spec
  | Ok specs ->
      Error (Printf.sprintf "expected exactly one object, found %d" (List.length specs))
  | Error e -> Error e

let parse_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse text
  | exception Sys_error msg -> Error msg
