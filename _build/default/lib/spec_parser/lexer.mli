(** Lexer for the commutativity-specification DSL.

    Tokens carry source positions for error reporting. Comments run from
    [//] or [#] to end of line. *)

open Crd_base

type pos = { line : int; col : int }

type token =
  | IDENT of string
  | INT of int
  | STRING of string
  | VALUE of Value.t  (** [nil] and [@n] reference literals *)
  | KW_OBJECT
  | KW_METHOD
  | KW_COMMUTES
  | KW_WHEN
  | KW_DEFAULT
  | KW_TRUE
  | KW_FALSE
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | COMMA
  | SEMI
  | SLASH
  | PAIRSEP  (** [<>] *)
  | EQ  (** [==] *)
  | NE  (** [!=] *)
  | LT
  | LE
  | GT
  | GE
  | ANDAND
  | OROR
  | BANG
  | EOF

val token_name : token -> string

type t = { token : token; pos : pos }

val tokenize : string -> (t array, string) result
(** The result always ends with an [EOF] token. Errors carry
    "line:col: message". *)

val pp_pos : pos Fmt.t
