(** Recursive-descent parser for the commutativity-specification DSL.

    Surface syntax (one or more objects per file):

    {v
    object dictionary {
      method put(k, v) / p;
      method get(k) / v;
      method size() / r;

      commutes put(k1, v1) / p1 <> put(k2, v2) / p2
        when k1 != k2 || (v1 == p1 && v2 == p2);
      commutes put(k1, v1) / p1 <> get(k2) / v2
        when k1 != k2 || v1 == p1;
      commutes put(k1, v1) / p1 <> size() / r2
        when (v1 == nil && p1 == nil) || (v1 != nil && p1 != nil);
      commutes get(k1) / v1 <> get(k2) / v2 when true;
      commutes get(k1) / v1 <> size() / r2  when true;
      commutes size() / r1  <> size() / r2  when true;
    }
    v}

    In a [commutes] clause the first header binds its variable names to
    the {e Fst} side and the second to the {e Snd} side; names must not
    collide across the two headers. Literals are integers, strings,
    [nil], [true], [false] and [@n] references. An optional
    [default <formula>;] item overrides the conservative [false] default
    for unspecified method pairs (its variables cannot refer to slots). *)

val parse : string -> (Crd_spec.Spec.t list, string) result
val parse_one : string -> (Crd_spec.Spec.t, string) result
(** Expects exactly one [object] block. *)

val parse_file : string -> (Crd_spec.Spec.t list, string) result
