lib/spec_parser/lexer.ml: Array Buffer Crd_base Fmt List Printf String Value
