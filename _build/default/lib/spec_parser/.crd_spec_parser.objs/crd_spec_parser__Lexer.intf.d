lib/spec_parser/lexer.mli: Crd_base Fmt Value
