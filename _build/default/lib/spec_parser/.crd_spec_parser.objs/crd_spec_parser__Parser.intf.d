lib/spec_parser/parser.mli: Crd_spec
