lib/spec_parser/parser.ml: Array Atom Crd_base Crd_spec Fmt Formula In_channel Lexer List Printf Signature Spec String Value
