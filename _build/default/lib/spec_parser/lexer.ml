open Crd_base

type pos = { line : int; col : int }

type token =
  | IDENT of string
  | INT of int
  | STRING of string
  | VALUE of Value.t
  | KW_OBJECT
  | KW_METHOD
  | KW_COMMUTES
  | KW_WHEN
  | KW_DEFAULT
  | KW_TRUE
  | KW_FALSE
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | COMMA
  | SEMI
  | SLASH
  | PAIRSEP
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | ANDAND
  | OROR
  | BANG
  | EOF

let token_name = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT i -> Printf.sprintf "integer %d" i
  | STRING s -> Printf.sprintf "string %S" s
  | VALUE v -> Printf.sprintf "value %s" (Value.to_string v)
  | KW_OBJECT -> "'object'"
  | KW_METHOD -> "'method'"
  | KW_COMMUTES -> "'commutes'"
  | KW_WHEN -> "'when'"
  | KW_DEFAULT -> "'default'"
  | KW_TRUE -> "'true'"
  | KW_FALSE -> "'false'"
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | COMMA -> "','"
  | SEMI -> "';'"
  | SLASH -> "'/'"
  | PAIRSEP -> "'<>'"
  | EQ -> "'=='"
  | NE -> "'!='"
  | LT -> "'<'"
  | LE -> "'<='"
  | GT -> "'>'"
  | GE -> "'>='"
  | ANDAND -> "'&&'"
  | OROR -> "'||'"
  | BANG -> "'!'"
  | EOF -> "end of input"

type t = { token : token; pos : pos }

let pp_pos ppf p = Fmt.pf ppf "%d:%d" p.line p.col

let keyword = function
  | "object" -> Some KW_OBJECT
  | "method" -> Some KW_METHOD
  | "commutes" -> Some KW_COMMUTES
  | "when" -> Some KW_WHEN
  | "default" -> Some KW_DEFAULT
  | "true" -> Some KW_TRUE
  | "false" -> Some KW_FALSE
  | "nil" -> Some (VALUE Value.Nil)
  | _ -> None

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

exception Err of pos * string

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 and bol = ref 0 in
  let i = ref 0 in
  let pos () = { line = !line; col = !i - !bol + 1 } in
  let push p tok = toks := { token = tok; pos = p } :: !toks in
  let err p fmt = Fmt.kstr (fun s -> raise (Err (p, s))) fmt in
  try
    while !i < n do
      let p = pos () in
      let c = src.[!i] in
      if c = '\n' then begin
        incr line;
        incr i;
        bol := !i
      end
      else if c = ' ' || c = '\t' || c = '\r' then incr i
      else if c = '#' || (c = '/' && !i + 1 < n && src.[!i + 1] = '/') then begin
        while !i < n && src.[!i] <> '\n' do
          incr i
        done
      end
      else if is_ident_start c then begin
        let start = !i in
        while !i < n && is_ident src.[!i] do
          incr i
        done;
        let word = String.sub src start (!i - start) in
        match keyword word with
        | Some tok -> push p tok
        | None -> push p (IDENT word)
      end
      else if is_digit c || (c = '-' && !i + 1 < n && is_digit src.[!i + 1])
      then begin
        let start = !i in
        incr i;
        while !i < n && is_digit src.[!i] do
          incr i
        done;
        push p (INT (int_of_string (String.sub src start (!i - start))))
      end
      else if c = '@' then begin
        incr i;
        let start = !i in
        while !i < n && is_digit src.[!i] do
          incr i
        done;
        if !i = start then err p "malformed reference literal";
        push p (VALUE (Value.Ref (int_of_string (String.sub src start (!i - start)))))
      end
      else if c = '"' then begin
        incr i;
        let buf = Buffer.create 8 in
        let closed = ref false in
        while (not !closed) && !i < n do
          let c = src.[!i] in
          if c = '"' then begin
            closed := true;
            incr i
          end
          else if c = '\n' then err p "newline in string literal"
          else if c = '\\' && !i + 1 < n then begin
            (match src.[!i + 1] with
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | c -> Buffer.add_char buf c);
            i := !i + 2
          end
          else begin
            Buffer.add_char buf c;
            incr i
          end
        done;
        if not !closed then err p "unterminated string literal";
        push p (STRING (Buffer.contents buf))
      end
      else begin
        let two =
          if !i + 1 < n then Some (String.sub src !i 2) else None
        in
        match two with
        | Some "<>" -> push p PAIRSEP; i := !i + 2
        | Some "==" -> push p EQ; i := !i + 2
        | Some "!=" -> push p NE; i := !i + 2
        | Some "<=" -> push p LE; i := !i + 2
        | Some ">=" -> push p GE; i := !i + 2
        | Some "&&" -> push p ANDAND; i := !i + 2
        | Some "||" -> push p OROR; i := !i + 2
        | _ -> (
            (match c with
            | '{' -> push p LBRACE
            | '}' -> push p RBRACE
            | '(' -> push p LPAREN
            | ')' -> push p RPAREN
            | ',' -> push p COMMA
            | ';' -> push p SEMI
            | '/' -> push p SLASH
            | '<' -> push p LT
            | '>' -> push p GT
            | '!' -> push p BANG
            | c -> err p "unexpected character %C" c);
            incr i)
      end
    done;
    push (pos ()) EOF;
    Ok (Array.of_list (List.rev !toks))
  with Err (p, msg) -> Error (Fmt.str "%a: %s" pp_pos p msg)
