examples/snitch_demo.ml: Analyzer Crd Crd_workloads Fmt List Report String
