examples/quickstart.ml: Analyzer Crd Fmt List Monitored Report Sched Value
