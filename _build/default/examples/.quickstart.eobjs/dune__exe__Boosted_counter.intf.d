examples/boosted_counter.mli:
