examples/boosted_counter.ml: Analyzer Crd Crd_boost Fmt Int64 List Monitored Option Repr Result Sched Stdspecs Value
