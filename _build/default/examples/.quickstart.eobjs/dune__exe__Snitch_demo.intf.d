examples/snitch_demo.mli:
