examples/h2_workload.ml: Analyzer Crd Crd_workloads Fmt Hashtbl List Monitored Obj_id Option Printf Report Sched Value
