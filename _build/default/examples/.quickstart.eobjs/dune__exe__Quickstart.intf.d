examples/quickstart.mli:
