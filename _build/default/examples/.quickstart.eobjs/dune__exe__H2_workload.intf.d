examples/h2_workload.mli:
