examples/atomicity_demo.mli:
