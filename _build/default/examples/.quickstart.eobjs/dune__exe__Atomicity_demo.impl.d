examples/atomicity_demo.ml: Analyzer Atomicity Crd Fmt Int64 List Monitored Sched Value
