examples/custom_spec.ml: Action Analyzer Crd Direct Event Fmt List Obj_id Option Rd2 Report Repr Spec Spec_parser Tid Trace Value
