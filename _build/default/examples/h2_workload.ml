(* The H2 MVStore scenario: the two harmful races of Section 7.

   Worker threads run SQL traffic against the store while a background
   thread performs maintenance. Both code paths account freed page space
   with an unsynchronized read-modify-write on the [freedPageSpace] map
   (race #1, fixed upstream after the paper's report), and both populate
   chunk metadata with a check-then-act on the [chunks] map (race #2,
   duplicated work).

   This example also demonstrates that race #1 is *harmful*: it compares
   the bytes actually recorded in [freedPageSpace] against the bytes that
   were really freed — lost updates make the store's accounting drift.

   Run with:  dune exec examples/h2_workload.exe *)

open Crd
module W = Crd_workloads

let () =
  let analyzer = Analyzer.with_stdspecs () in
  let store = W.Mvstore.create () in
  let committed = ref 0 in
  Sched.run ~seed:7L ~sink:(Analyzer.sink analyzer) (fun () ->
      (match W.Mvstore.exec_sql store "CREATE TABLE accounts (id, balance)" with
      | Ok _ -> ()
      | Error e -> failwith e);
      (* Four writers inserting and committing concurrently. *)
      for w = 0 to 3 do
        ignore
          (Sched.fork (fun () ->
               for i = 1 to 12 do
                 (match
                    W.Mvstore.exec_sql store
                      (Printf.sprintf "INSERT INTO accounts VALUES (%d, %d)"
                         ((w * 100) + i)
                         (i * 10))
                  with
                 | Ok _ -> ()
                 | Error e -> failwith e);
                 if i mod 3 = 0 then begin
                   W.Mvstore.commit store;
                   incr committed
                 end
               done))
      done;
      (* Background compaction, as in H2's MVStore. *)
      ignore
        (Sched.fork (fun () ->
             for _ = 1 to 10 do
               W.Mvstore.maintenance_step store
             done));
      Sched.join_all ());

  Fmt.pr "%a@." Analyzer.pp_summary analyzer;

  (* Group the commutativity races by object — the analyzer pinpoints
     exactly the two maps the paper reports. *)
  let by_obj = Hashtbl.create 4 in
  List.iter
    (fun (r : Report.t) ->
      let k = Obj_id.name r.obj in
      Hashtbl.replace by_obj k
        (1 + Option.value ~default:0 (Hashtbl.find_opt by_obj k)))
    (Analyzer.rd2_races analyzer);
  Fmt.pr "@.Commutativity races by object:@.";
  Hashtbl.iter (fun k n -> Fmt.pr "  %-32s %d@." k n) by_obj;

  (* Show the harm: every commit frees 64 bytes and every maintenance
     step 16, but the unsynchronized read-modify-write loses updates. *)
  let recorded = ref 0 in
  Sched.run (fun () ->
      for c = 0 to 31 do
        match Monitored.Dict.get (W.Mvstore.freed_page_space store) (Value.Int c) with
        | Value.Int n -> recorded := !recorded + n
        | _ -> ()
      done);
  let expected = (!committed * 64) + (10 * 16) in
  Fmt.pr
    "@.freedPageSpace accounting: %d bytes recorded, %d bytes actually \
     freed%s@."
    !recorded expected
    (if !recorded < expected then
       Printf.sprintf " — %d bytes lost to the race!" (expected - !recorded)
     else "")
