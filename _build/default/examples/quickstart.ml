(* Quickstart: the running example of the paper (Fig 1 / Fig 3).

   A program concurrently establishes connections to a list of hosts and
   stores them in a shared dictionary. If the host list contains
   duplicates, two threads race to [put] a connection for the same key:
   the two puts do not commute (the loser's connection object leaks), and
   the analyzer reports a commutativity race.

   Run with:  dune exec examples/quickstart.exe *)

open Crd

let establish_connections ~hosts ~sink =
  Sched.run ~seed:42L ~sink (fun () ->
      (* An empty dictionary: every key initially maps to nil. The name
         prefix "dictionary:" selects the built-in Fig 6 specification. *)
      let o = Monitored.Dict.create ~name:"dictionary:connections" () in
      List.iteri
        (fun i host ->
          ignore
            (Sched.fork (fun () ->
                 (* createConnection(host) — an opaque reference. *)
                 let conn = Value.Ref (100 + i) in
                 ignore (Monitored.Dict.put o (Value.Str host) conn))))
        hosts;
      Sched.join_all ();
      Fmt.pr "%d connections established@." (Monitored.Dict.size o))

let () =
  (* 1. Attach the analyzer: RD2 with the built-in specifications. *)
  let analyzer = Analyzer.with_stdspecs () in

  (* 2. Run the program; every monitored operation streams into it. *)
  let hosts = [ "a.com"; "a.com"; "b.com" ] in
  establish_connections ~hosts ~sink:(Analyzer.sink analyzer);

  (* 3. Inspect the verdict. *)
  let races = Analyzer.rd2_races analyzer in
  Fmt.pr "@.%d commutativity race(s) detected:@." (List.length races);
  List.iter (fun r -> Fmt.pr "  %a@." Report.pp r) races;

  Fmt.pr
    "@.The duplicate host means two threads invoked put(\"a.com\", _) \
     concurrently;@.those invocations do not commute (each returns the \
     other's connection in one@.of the two orders), so one freshly created \
     connection is silently lost.@.";

  (* A clean host list produces no races — the dictionary operations all
     commute (distinct keys) even though they run concurrently. *)
  let analyzer' = Analyzer.with_stdspecs () in
  establish_connections ~hosts:[ "a.com"; "b.com"; "c.com" ]
    ~sink:(Analyzer.sink analyzer');
  Fmt.pr "@.With distinct hosts: %d race(s).@."
    (List.length (Analyzer.rd2_races analyzer'))
