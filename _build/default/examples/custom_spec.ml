(* Bringing your own object: write a commutativity specification in the
   DSL, translate it to access points, and analyze a hand-built trace —
   no scheduler involved.

   The object is a bank-account-style "vault": deposits commute with each
   other, withdrawals commute when they touch different owners, and
   balance checks conflict with everything that moves money for the same
   owner.

   Run with:  dune exec examples/custom_spec.exe *)

open Crd

let vault_spec_src =
  {|
object vault {
  method deposit(owner, amount);
  method withdraw(owner, amount) / ok;
  method balance(owner) / b;

  // Deposits always commute: addition is commutative.
  commutes deposit(o1, a1) <> deposit(o2, a2) when true;

  // A withdrawal can fail (insufficient funds), so it only commutes
  // with deposits for *other* owners.
  commutes deposit(o1, a1) <> withdraw(o2, a2) / ok2 when o1 != o2;

  // Balance reads conflict with any money movement for the same owner.
  commutes deposit(o1, a1) <> balance(o2) / b2 when o1 != o2;
  commutes withdraw(o1, a1) / ok1 <> withdraw(o2, a2) / ok2 when o1 != o2;
  commutes withdraw(o1, a1) / ok1 <> balance(o2) / b2 when o1 != o2;
  commutes balance(o1) / b1 <> balance(o2) / b2 when true;
}
|}

let () =
  (* 1. Parse and validate the specification (must be in ECL). *)
  let spec =
    match Spec_parser.parse_one vault_spec_src with
    | Ok s -> s
    | Error e -> failwith ("spec error: " ^ e)
  in
  assert (Spec.is_ecl spec);

  (* 2. Translate it and look at the representation: every access point
     conflicts with a bounded number of others (Theorem 6.6). *)
  let repr =
    match Repr.of_spec spec with Ok r -> r | Error e -> failwith e
  in
  Fmt.pr "%a@.@." Repr.pp repr;

  (* 3. Build a trace by hand and check it. Two tellers serve different
     customers (fine), then both touch alice (a race). *)
  let vault = Obj_id.make ~name:"vault" 0 in
  let act meth args rets = Action.make ~obj:vault ~meth ~args ~rets () in
  let t0 = Tid.of_int 0 and t1 = Tid.of_int 1 and t2 = Tid.of_int 2 in
  let owner s = Value.Str s in
  let trace =
    Trace.of_list
      [
        Event.fork t0 t1;
        Event.fork t0 t2;
        Event.call t1 (act "deposit" [ owner "alice"; Value.Int 100 ] []);
        Event.call t2 (act "deposit" [ owner "bob"; Value.Int 50 ] []);
        Event.call t2 (act "withdraw" [ owner "bob"; Value.Int 20 ] [ Value.Bool true ]);
        (* The race: t2 checks alice's balance while t1 deposits. *)
        Event.call t2 (act "balance" [ owner "alice" ] [ Value.Int 100 ]);
        Event.join t0 t1;
        Event.join t0 t2;
        Event.call t0 (act "balance" [ owner "alice" ] [ Value.Int 100 ]);
      ]
  in
  let analyzer =
    match
      Analyzer.create
        ~config:{ Analyzer.rd2 = `Constant; direct = true; fasttrack = false; djit = false; atomicity = false }
        ~spec_for:(fun o -> if Obj_id.equal o vault then Some spec else None)
        ()
    with
    | Ok a -> a
    | Error e -> failwith e
  in
  Analyzer.run_trace analyzer trace;
  Fmt.pr "%a@." Analyzer.pp_summary analyzer;
  List.iter (fun r -> Fmt.pr "  %a@." Report.pp r) (Analyzer.rd2_races analyzer);

  (* The naive detector agrees (Theorem 5.1) but pays a pairwise check
     against every previous action instead of O(1) per access point. *)
  let rd2 = Option.get (Analyzer.rd2_stats analyzer) in
  let direct = Option.get (Analyzer.direct_stats analyzer) in
  Fmt.pr "@.phase-1 lookups — rd2: %d, direct: %d@." rd2.Rd2.lookups
    direct.Direct.lookups
