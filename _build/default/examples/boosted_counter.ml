(* Transactional boosting: fixing the lost-update counter with abstract
   locks derived from the commutativity specification.

   The same program as examples/atomicity_demo.ml, but the increments run
   as boosted transactions: each operation acquires its access points as
   abstract locks (r:k shared, w:k exclusive — modes derived from Fig 6,
   not hand-written), writes are buffered, conflicts abort and retry.
   The counter is now always correct, and the emitted trace is
   conflict-serializable (the atomicity checker stays silent).

   Run with:  dune exec examples/boosted_counter.exe *)

open Crd
module Boost = Crd_boost.Boost

let increments = 8

let run_with_seed seed =
  let an =
    Analyzer.with_stdspecs
      ~config:
        {
          Analyzer.rd2 = `Off;
          direct = false;
          fasttrack = false;
          djit = false;
          atomicity = true;
        }
      ()
  in
  let final = ref 0 in
  let mgr = ref None in
  Sched.run ~seed ~sink:(Analyzer.sink an) (fun () ->
      let repr = Result.get_ok (Repr.of_spec (Stdspecs.dictionary ())) in
      let m = Boost.create ~repr () in
      mgr := Some m;
      let d = Monitored.Dict.create ~name:"dictionary:counters" () in
      for _ = 1 to increments do
        ignore
          (Sched.fork (fun () ->
               Boost.atomic m (fun txn ->
                   let v = Boost.get txn d (Value.Str "hits") in
                   let n = match v with Value.Int n -> n | _ -> 0 in
                   ignore (Boost.put txn d (Value.Str "hits") (Value.Int (n + 1))))))
      done;
      Sched.join_all ();
      (match Monitored.Dict.raw_get d (Value.Str "hits") with
      | Value.Int n -> final := n
      | _ -> ()));
  (an, Option.get !mgr, !final)

let () =
  Fmt.pr "%d threads each run a *boosted* atomic { hits := hits + 1 }@.@."
    increments;
  Fmt.pr "%6s %12s %10s %10s %22s@." "seed" "final hits" "commits" "aborts"
    "atomicity violations";
  List.iter
    (fun seed ->
      let an, mgr, final = run_with_seed (Int64.of_int seed) in
      let s = Boost.stats mgr in
      Fmt.pr "%6d %12d %10d %10d %22d@." seed final s.Boost.commits
        s.Boost.aborts
        (List.length (Analyzer.atomicity_violations an)))
    [ 1; 2; 3; 4; 11 ];
  Fmt.pr
    "@.Every run keeps all %d increments: conflicting transactions abort \
     and retry@.instead of tangling. The abstract-lock modes come straight \
     from the translated@.commutativity specification — the same \
     representation the race detector uses.@."
    increments
