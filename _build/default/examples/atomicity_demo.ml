(* Atomicity checking with access points (the generalization the paper
   proposes in Section 8: Velodrome-style conflict-serializability with
   library-level conflicts instead of reads and writes).

   A classic check-then-act counter over a dictionary:

       atomic { v = d.get("hits"); d.put("hits", v + 1) }

   Race detection flags the get/put pattern whenever two increments *may*
   overlap — even in runs where they happened back to back. The atomicity
   checker is sharper about the observed run: it reports a violation only
   when the transactions actually tangled (a cycle in the transactional
   happens-before graph), i.e. when an increment was truly lost.

   Run with:  dune exec examples/atomicity_demo.exe *)

open Crd

let increments = 6

let run_with_seed seed =
  let an =
    Analyzer.with_stdspecs
      ~config:
        {
          Analyzer.rd2 = `Constant;
          direct = false;
          fasttrack = false;
          djit = false;
          atomicity = true;
        }
      ()
  in
  let final = ref 0 in
  Sched.run ~seed ~sink:(Analyzer.sink an) (fun () ->
      let d = Monitored.Dict.create ~name:"dictionary:counters" () in
      for _ = 1 to increments do
        ignore
          (Sched.fork (fun () ->
               Sched.atomic (fun () ->
                   let v = Monitored.Dict.get d (Value.Str "hits") in
                   let n = match v with Value.Int n -> n | _ -> 0 in
                   ignore
                     (Monitored.Dict.put d (Value.Str "hits") (Value.Int (n + 1))))))
      done;
      Sched.join_all ();
      (match Monitored.Dict.get d (Value.Str "hits") with
      | Value.Int n -> final := n
      | _ -> ()));
  (an, !final)

let () =
  Fmt.pr "%d threads each run: atomic { hits := hits + 1 }@.@." increments;
  Fmt.pr "%6s %12s %16s %22s@." "seed" "final hits" "commut. races"
    "atomicity violations";
  List.iter
    (fun seed ->
      let an, final = run_with_seed (Int64.of_int seed) in
      let races = List.length (Analyzer.rd2_races an) in
      let violations = List.length (Analyzer.atomicity_violations an) in
      Fmt.pr "%6d %12d %16d %22d%s@." seed final races violations
        (if final < increments && violations > 0 then
           "   <- lost updates, cycle detected"
         else if final = increments && violations = 0 then
           "   (serialized by chance)"
         else "");
      if violations > 0 then
        match Analyzer.atomicity_violations an with
        | v :: _ -> Fmt.pr "        %a@." Atomicity.pp_violation v
        | [] -> ())
    [ 1; 2; 3; 4; 11 ];
  Fmt.pr
    "@.Every seeded run has commutativity races (the increments are \
     unordered and do not@.commute), but only the runs whose transactions \
     actually interleaved report an@.atomicity violation — and those are \
     exactly the runs that lose updates.@."
