(* The Cassandra DynamicEndpointSnitch scenario (race #3 of Section 7).

   Latency-sample threads add new endpoints to the [samples] map while
   the score thread concurrently uses the map's size() as a performance
   hint — by the time the hint is used, it is already obsolete.

   Run with:  dune exec examples/snitch_demo.exe *)

open Crd
module W = Crd_workloads

let () =
  let analyzer = Analyzer.with_stdspecs () in
  let processed =
    W.Snitch.run ~seed:3L
      ~config:
        { W.Snitch.hosts = 6; updaters = 3; samples_per_host = 8; recalculations = 6 }
      ~sink:(Analyzer.sink analyzer) ()
  in
  Fmt.pr "snitch processed %d latency samples@.@." processed;
  Fmt.pr "%a@." Analyzer.pp_summary analyzer;

  (* The put/size races are exactly the paper's finding: the size hint
     read during rank recalculation races with endpoint registration. *)
  let size_races =
    List.filter
      (fun (r : Report.t) ->
        String.length r.point >= 4
        && (String.equal (String.sub r.point 0 4) "size"
           || String.length r.conflicting >= 4
              && String.equal (String.sub r.conflicting 0 4) "size"))
      (Analyzer.rd2_races analyzer)
  in
  Fmt.pr "@.races involving the size() performance hint: %d@."
    (List.length size_races);
  (match size_races with
  | r :: _ -> Fmt.pr "  e.g. %a@." Report.pp r
  | [] -> ());

  Fmt.pr
    "@.FastTrack sees only the low-level timestamp fields; the map-level \
     check-then-act@.pattern (register endpoint if absent, size as hint) \
     is invisible to it, but shows@.up directly as commutativity races on \
     the samples and scores maps.@."
