(* Benchmark harness.

   Regenerates every empirical table/figure of the paper:

   - Table 2 (the only evaluation table): the six H2 Pole Position rows
     and the Cassandra DynamicEndpointSnitch row, under the three
     configurations (uninstrumented / FASTTRACK / RD2). Printed as a
     table (wall-clock qps) and measured as bechamel micro-benchmarks
     (analysis cost per recorded trace).
   - Fig 4 / Section 5.4: the access-point ablation. The same trace is
     analyzed with the O(1) constant-lookup detector, the linear-scan
     detector over active points, and the naive specification-level
     detector; the lookup counters make the Theta(1) vs Theta(|A|)
     claim measurable, and the scaling sweep shows per-action cost
     flat vs growing with trace length.
   - Fig 7 / Theorem 6.6: shape and conflict-bound statistics of the
     translated built-in specifications.

   Run with:  dune exec bench/main.exe
   Quick mode (skip bechamel timing):  dune exec bench/main.exe -- --tables-only *)

open Bechamel
open Crd
module W = Crd_workloads

(* ------------------------------------------------------------------ *)
(* Recorded traces (built once, replayed by the benchmarks)            *)
(* ------------------------------------------------------------------ *)

let record_circuit circuit =
  let trace = Trace.create () in
  ignore (W.Polepos.run circuit ~seed:1L ~scale:1 ~sink:(Trace.append trace) ());
  trace

let record_snitch () =
  let trace = Trace.create () in
  ignore (W.Snitch.run ~seed:1L ~sink:(Trace.append trace) ());
  trace

type mode = Uninstrumented | Fasttrack_mode | Rd2_mode

let mode_name = function
  | Uninstrumented -> "uninstrumented"
  | Fasttrack_mode -> "fasttrack"
  | Rd2_mode -> "rd2"

let replay mode trace () =
  match mode with
  | Uninstrumented ->
      (* Event dispatch without any analysis: the replay baseline. *)
      let n = ref 0 in
      Trace.iter_events trace ~f:(fun _ -> incr n);
      ignore !n
  | Fasttrack_mode ->
      let an =
        Analyzer.with_stdspecs
          ~config:{ Analyzer.rd2 = `Off; direct = false; fasttrack = true; djit = false; atomicity = false }
          ()
      in
      Analyzer.run_trace an trace
  | Rd2_mode ->
      let an =
        Analyzer.with_stdspecs
          ~config:
            { Analyzer.rd2 = `Constant; direct = false; fasttrack = true; djit = false; atomicity = false }
          ()
      in
      Analyzer.run_trace an trace

let table2_tests () =
  let circuit_tests =
    List.concat_map
      (fun circuit ->
        let trace = record_circuit circuit in
        List.map
          (fun mode ->
            Test.make
              ~name:
                (Printf.sprintf "table2/h2/%s/%s" (W.Polepos.name circuit)
                   (mode_name mode))
              (Staged.stage (replay mode trace)))
          [ Uninstrumented; Fasttrack_mode; Rd2_mode ])
      W.Polepos.all
  in
  let snitch_trace = record_snitch () in
  let snitch_tests =
    List.map
      (fun mode ->
        Test.make
          ~name:(Printf.sprintf "table2/cassandra/snitch/%s" (mode_name mode))
          (Staged.stage (replay mode snitch_trace)))
      [ Uninstrumented; Fasttrack_mode; Rd2_mode ]
  in
  circuit_tests @ snitch_tests

(* ------------------------------------------------------------------ *)
(* Fig 4 ablation: conflict checks per action                          *)
(* ------------------------------------------------------------------ *)

(* The Fig 4 scenario generalized: n successful puts (distinct keys)
   from worker threads followed by a size() — the invocation-level
   detector pays n checks for the size, the access-point detector one. *)
let fig4_trace n =
  let obj = Obj_id.make ~name:"dictionary:o" 0 in
  let trace = Trace.create () in
  let threads = 4 in
  for t = 1 to threads do
    Trace.append trace (Event.fork Tid.main (Tid.of_int t))
  done;
  for i = 0 to n - 1 do
    let tid = Tid.of_int (1 + (i mod threads)) in
    Trace.append trace
      (Event.call tid
         (Action.make ~obj ~meth:"put"
            ~args:[ Value.Int i; Value.Int 1 ]
            ~rets:[ Value.Nil ] ()))
  done;
  Trace.append trace
    (Event.call Tid.main
       (Action.make ~obj ~meth:"size" ~rets:[ Value.Int n ] ()));
  trace

let dict_spec = Stdspecs.dictionary ()
let dict_repr = Result.get_ok (Repr.of_spec dict_spec)
let dict_repr_raw = Result.get_ok (Repr.of_spec ~optimize:false dict_spec)

let run_rd2_on ?(repr = dict_repr) ?(mode = `Constant) trace =
  let hb = Hb.create () in
  let d = Rd2.create ~mode ~repr_for:(fun _ -> Some repr) () in
  Trace.iter trace ~f:(fun index (e : Event.t) ->
      let vc = Hb.step hb e in
      match e.op with
      | Event.Call a -> ignore (Rd2.on_action d ~index e.tid a vc)
      | _ -> ());
  d

let run_direct_on trace =
  let hb = Hb.create () in
  let d = Direct.create ~spec_for:(fun _ -> Some dict_spec) () in
  Trace.iter trace ~f:(fun index (e : Event.t) ->
      let vc = Hb.step hb e in
      match e.op with
      | Event.Call a -> ignore (Direct.on_action d ~index e.tid a vc)
      | _ -> ());
  d

let ablation_tests () =
  List.concat_map
    (fun n ->
      let trace = fig4_trace n in
      [
        Test.make
          ~name:(Printf.sprintf "fig4/apoint-constant/n=%d" n)
          (Staged.stage (fun () -> ignore (run_rd2_on ~mode:`Constant trace)));
        Test.make
          ~name:(Printf.sprintf "fig4/apoint-linear/n=%d" n)
          (Staged.stage (fun () -> ignore (run_rd2_on ~mode:`Linear trace)));
        Test.make
          ~name:(Printf.sprintf "fig4/direct/n=%d" n)
          (Staged.stage (fun () -> ignore (run_direct_on trace)));
        (* Appendix A.3 ablation: the same detector over the raw
           (unsimplified) Section 6.2 representation. *)
        Test.make
          ~name:(Printf.sprintf "a3/raw-repr/n=%d" n)
          (Staged.stage (fun () ->
               ignore (run_rd2_on ~repr:dict_repr_raw ~mode:`Constant trace)));
      ])
    [ 100; 400 ]

(* ------------------------------------------------------------------ *)
(* Bechamel driver                                                     *)
(* ------------------------------------------------------------------ *)

let print_bench_results tests =
  Fmt.pr "## Bechamel micro-benchmarks (ns per replay)@.@.";
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) () in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let results =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false
             ~predictors:[| Measure.run |])
          Toolkit.Instance.monotonic_clock raw
      in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Fmt.pr "%-56s %14.0f ns@." name est
          | _ -> Fmt.pr "%-56s (no estimate)@." name)
        results)
    tests

(* ------------------------------------------------------------------ *)
(* Printed tables                                                      *)
(* ------------------------------------------------------------------ *)

let print_fig4_table () =
  Fmt.pr "@.## Fig 4 / Section 5.4 — conflict checks per action@.@.";
  Fmt.pr "%8s %20s %16s %20s %16s@." "|A|" "apoint-constant" "raw (no A.3)"
    "apoint-linear" "direct";
  List.iter
    (fun n ->
      let trace = fig4_trace n in
      let per_action lookups actions =
        float_of_int lookups /. float_of_int (max 1 actions)
      in
      let sc = Rd2.stats (run_rd2_on ~mode:`Constant trace) in
      let sr = Rd2.stats (run_rd2_on ~repr:dict_repr_raw ~mode:`Constant trace) in
      let sl = Rd2.stats (run_rd2_on ~mode:`Linear trace) in
      let sd = Direct.stats (run_direct_on trace) in
      Fmt.pr "%8d %16.2f/act %12.2f/act %16.2f/act %12.2f/act@." n
        (per_action sc.Rd2.lookups sc.Rd2.actions)
        (per_action sr.Rd2.lookups sr.Rd2.actions)
        (per_action sl.Rd2.lookups sl.Rd2.actions)
        (per_action sd.Direct.lookups sd.Direct.actions))
    [ 50; 100; 200; 400; 800; 1600 ];
  Fmt.pr
    "@.(the access-point detector's checks per action stay constant as the \
     trace grows;@. the linear/active-scan and direct detectors grow with \
     |A| — Section 5.4)@."

let print_fig7_table () =
  Fmt.pr "@.## Fig 7 / Theorem 6.6 — translated representations@.@.";
  Fmt.pr "%-12s %14s %14s %16s %16s@." "spec" "raw shapes" "opt shapes"
    "raw max-confl" "opt max-confl";
  List.iter
    (fun spec ->
      match (Repr.of_spec ~optimize:false spec, Repr.of_spec spec) with
      | Ok raw, Ok opt ->
          Fmt.pr "%-12s %14d %14d %16d %16d@." (Spec.name spec)
            (Repr.num_shapes raw) (Repr.num_shapes opt)
            (Repr.max_conflicts raw) (Repr.max_conflicts opt)
      | _ -> Fmt.pr "%-12s (translation failed)@." (Spec.name spec))
    (Stdspecs.all ())

let () =
  let tables_only = Array.exists (String.equal "--tables-only") Sys.argv in
  Fmt.pr "# Commutativity Race Detection — benchmark harness@.@.";
  (* Table 2 (wall clock, end-to-end, deterministic race counts). *)
  let t = W.Table2.collect ~seed:1L ~scale:1 ~repeats:3 () in
  Fmt.pr "%a@." W.Table2.print t;
  print_fig4_table ();
  print_fig7_table ();
  if not tables_only then begin
    Fmt.pr "@.";
    print_bench_results (table2_tests () @ ablation_tests ())
  end
