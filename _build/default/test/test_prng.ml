open Crd

let determinism () =
  let a = Prng.make 99L and b = Prng.make 99L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let bounds () =
  let p = Prng.make 7L in
  for _ = 1 to 10_000 do
    let bound = 1 + (Int64.to_int (Prng.next_int64 p) land 0xFF) in
    let x = Prng.int p bound in
    if x < 0 || x >= bound then
      Alcotest.failf "Prng.int %d out of range: %d" bound x
  done

let bad_bound () =
  let p = Prng.make 1L in
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: nonpositive bound")
    (fun () -> ignore (Prng.int p 0))

let split_independence () =
  let p = Prng.make 5L in
  let q = Prng.split p in
  (* Splitting advances the parent; the two streams must diverge. *)
  let same = ref 0 in
  for _ = 1 to 50 do
    if Int64.equal (Prng.next_int64 p) (Prng.next_int64 q) then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 5)

let shuffle_permutes () =
  let p = Prng.make 11L in
  let arr = Array.init 50 Fun.id in
  Prng.shuffle p arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let float_bounds () =
  let p = Prng.make 13L in
  for _ = 1 to 1000 do
    let f = Prng.float p 2.5 in
    if f < 0.0 || f >= 2.5 then Alcotest.failf "float out of range: %f" f
  done

let choose_all_reachable () =
  let p = Prng.make 17L in
  let seen = Array.make 4 false in
  for _ = 1 to 200 do
    seen.(Prng.choose p [| 0; 1; 2; 3 |]) <- true
  done;
  Alcotest.(check bool) "all elements chosen" true (Array.for_all Fun.id seen)

let suite =
  ( "prng",
    [
      Alcotest.test_case "determinism" `Quick determinism;
      Alcotest.test_case "int bounds" `Quick bounds;
      Alcotest.test_case "bad bound" `Quick bad_bound;
      Alcotest.test_case "split independence" `Quick split_independence;
      Alcotest.test_case "shuffle permutes" `Quick shuffle_permutes;
      Alcotest.test_case "float bounds" `Quick float_bounds;
      Alcotest.test_case "choose reaches all" `Quick choose_all_reachable;
    ] )
