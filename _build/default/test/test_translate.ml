open Crd
module Gen = QCheck2.Gen

let qcheck ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let obj = Obj_id.make ~name:"o" 0
let dict = Stdspecs.dictionary ()
let act meth args rets = Action.make ~obj ~meth ~args ~rets ()

let dict_repr = Result.get_ok (Repr.of_spec dict)

(* The optimized dictionary representation must be exactly Fig 7:
   four shapes (w:k, r:k, resize, size) with max two conflicts. *)
let fig7_shapes () =
  Alcotest.(check int) "4 shapes" 4 (Repr.num_shapes dict_repr);
  Alcotest.(check int) "max conflicts 2" 2 (Repr.max_conflicts dict_repr)

let i n = Value.Int n

(* Fig 7(b): eta per action kind. *)
let fig7_eta () =
  let eta a = Repr.eta dict_repr a in
  (* Inserting put: w:k and resize. *)
  let pts = eta (act "put" [ i 5; i 1 ] [ Value.Nil ]) in
  Alcotest.(check int) "insert put touches 2 points" 2 (List.length pts);
  (* Overwriting put: only w:k. *)
  let pts = eta (act "put" [ i 5; i 2 ] [ i 1 ]) in
  Alcotest.(check int) "overwrite put touches 1 point" 1 (List.length pts);
  (* No-op put: only r:k. *)
  let pts = eta (act "put" [ i 5; i 1 ] [ i 1 ]) in
  Alcotest.(check int) "no-op put touches 1 point" 1 (List.length pts);
  (* Removing put (v = nil, p /= nil): w:k and resize. *)
  let pts = eta (act "put" [ i 5; Value.Nil ] [ i 1 ]) in
  Alcotest.(check int) "removing put touches 2 points" 2 (List.length pts);
  (* get: r:k; size: size. *)
  Alcotest.(check int) "get touches 1" 1 (List.length (eta (act "get" [ i 5 ] [ i 1 ])));
  Alcotest.(check int) "size touches 1" 1 (List.length (eta (act "size" [] [ i 0 ])))

(* Fig 7(c): conflicts. *)
let fig7_conflicts () =
  let eta a = Repr.eta dict_repr a in
  let conflict a b =
    List.exists
      (fun p1 -> List.exists (fun p2 -> Repr.conflict dict_repr p1 p2) (eta b))
      (eta a)
  in
  let w k = act "put" [ i k; i 9 ] [ i 1 ] in
  let r k = act "get" [ i k ] [ i 1 ] in
  let noop_put k = act "put" [ i k; i 1 ] [ i 1 ] in
  let insert k = act "put" [ i k; i 1 ] [ Value.Nil ] in
  let size = act "size" [] [ i 0 ] in
  Alcotest.(check bool) "w:5 ~ w:5" true (conflict (w 5) (w 5));
  Alcotest.(check bool) "w:5 !~ w:6" false (conflict (w 5) (w 6));
  Alcotest.(check bool) "w:5 ~ r:5" true (conflict (w 5) (r 5));
  Alcotest.(check bool) "w:5 !~ r:6" false (conflict (w 5) (r 6));
  Alcotest.(check bool) "r:5 !~ r:5" false (conflict (r 5) (r 5));
  Alcotest.(check bool) "noop !~ r" false (conflict (noop_put 5) (r 5));
  Alcotest.(check bool) "noop ~ w" true (conflict (noop_put 5) (w 5));
  Alcotest.(check bool) "size ~ resize" true (conflict size (insert 5));
  Alcotest.(check bool) "size !~ overwrite" false (conflict size (w 5));
  Alcotest.(check bool) "size !~ size" false (conflict size size)

(* Definition 4.5 on the real dictionary: conflict of access points iff
   the logical specification says the actions may not commute. *)
let repr_matches_spec_dict =
  let action_gen =
    let open Gen in
    let* m = oneofl [ "put"; "get"; "size" ] in
    match m with
    | "put" ->
        let* k = Generators.small_value
        and* v = Generators.small_value
        and* p = Generators.small_value in
        return (act "put" [ k; v ] [ p ])
    | "get" ->
        let* k = Generators.small_value and* v = Generators.small_value in
        return (act "get" [ k ] [ v ])
    | _ ->
        let* r = Gen.int_range 0 3 in
        return (act "size" [] [ i r ])
  in
  qcheck ~count:1000 "Definition 4.5 holds for the dictionary"
    (Gen.pair action_gen action_gen) (fun (a, b) ->
      let conflicting =
        List.exists
          (fun p1 ->
            List.exists (fun p2 -> Repr.conflict dict_repr p1 p2) (Repr.eta dict_repr b))
          (Repr.eta dict_repr a)
      in
      conflicting = not (Spec.commute dict a b))

(* Theorem 6.5 over random ECL specifications, optimized and raw. *)
let repr_matches_spec_random ~optimize name =
  let gen =
    let open Gen in
    let* spec = Generators.spec in
    let* a = Generators.action_for_spec ~obj spec in
    let* b = Generators.action_for_spec ~obj spec in
    return (spec, a, b)
  in
  qcheck ~count:300 name gen (fun (spec, a, b) ->
      match Repr.of_spec ~optimize spec with
      | Error e -> QCheck2.Test.fail_reportf "translation failed: %s" e
      | Ok repr ->
          let conflicting =
            List.exists
              (fun p1 ->
                List.exists (fun p2 -> Repr.conflict repr p1 p2) (Repr.eta repr b))
              (Repr.eta repr a)
          in
          conflicting = not (Spec.commute spec a b))

(* The optimization passes preserve the conflict semantics. *)
let optimize_preserves =
  let gen =
    let open Gen in
    let* spec = Generators.spec in
    let* a = Generators.action_for_spec ~obj spec in
    let* b = Generators.action_for_spec ~obj spec in
    return (spec, a, b)
  in
  qcheck ~count:200 "optimization passes preserve conflicts" gen
    (fun (spec, a, b) ->
      let conflicting repr =
        List.exists
          (fun p1 ->
            List.exists (fun p2 -> Repr.conflict repr p1 p2) (Repr.eta repr b))
          (Repr.eta repr a)
      in
      match (Repr.of_spec ~optimize:true spec, Repr.of_spec ~optimize:false spec) with
      | Ok opt, Ok raw -> conflicting opt = conflicting raw
      | _ -> false)

(* Theorem 6.6: Co pt is computed by bounded enumeration, and the bound
   never exceeds the (static) number of shapes. *)
let bounded_conflicts =
  qcheck ~count:150 "conflict sets are bounded (Theorem 6.6)" Generators.spec
    (fun spec ->
      match Repr.of_spec spec with
      | Error _ -> false
      | Ok repr -> Repr.max_conflicts repr <= Repr.num_shapes repr)

(* conflicts and conflict must agree. *)
let conflicts_vs_conflict =
  let gen =
    let open Gen in
    let* spec = Generators.spec in
    let* a = Generators.action_for_spec ~obj spec in
    let* b = Generators.action_for_spec ~obj spec in
    return (spec, a, b)
  in
  qcheck ~count:200 "Co enumeration agrees with the pairwise test" gen
    (fun (spec, a, b) ->
      match Repr.of_spec spec with
      | Error _ -> false
      | Ok repr ->
          List.for_all
            (fun p1 ->
              List.for_all
                (fun p2 ->
                  Repr.conflict repr p1 p2
                  = List.exists (Point.equal p2) (Repr.conflicts repr p1))
                (Repr.eta repr b))
            (Repr.eta repr a))

(* Optimization shrinks (or preserves) the shape count; on the dictionary
   the reduction is dramatic. *)
let optimization_shrinks () =
  let raw = Result.get_ok (Repr.of_spec ~optimize:false dict) in
  Alcotest.(check bool) "fewer shapes" true
    (Repr.num_shapes dict_repr < Repr.num_shapes raw);
  Alcotest.(check bool) "smaller bound" true
    (Repr.max_conflicts dict_repr <= Repr.max_conflicts raw)

let non_ecl_rejected () =
  (* write(v1) <> read()/v2 commute iff v1 == v2 is not ECL. *)
  let w = Signature.make ~meth:"write" ~args:[ "v" ] () in
  let r = Signature.make ~meth:"read" ~rets:[ "v" ] () in
  let phi =
    Formula.Atom
      {
        Atom.pred = Atom.Eq;
        lhs = Atom.Var { Atom.side = Atom.Side.Fst; slot = 0; name = "v1" };
        rhs = Atom.Var { Atom.side = Atom.Side.Snd; slot = 0; name = "v2" };
      }
  in
  let spec =
    Result.get_ok
      (Spec.make ~name:"reg" ~methods:[ w; r ] [ ("write", "read", phi) ])
  in
  match Repr.of_spec spec with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected non-ECL translation failure"

let eta_validates_actions () =
  (match Repr.eta dict_repr (act "pop" [] []) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument for unknown method");
  match Repr.eta dict_repr (act "put" [ i 1 ] []) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument for bad arity"

let suite =
  ( "translate",
    [
      Alcotest.test_case "Fig 7 shape count" `Quick fig7_shapes;
      Alcotest.test_case "Fig 7 eta" `Quick fig7_eta;
      Alcotest.test_case "Fig 7 conflicts" `Quick fig7_conflicts;
      Alcotest.test_case "optimization shrinks" `Quick optimization_shrinks;
      Alcotest.test_case "non-ECL rejected" `Quick non_ecl_rejected;
      Alcotest.test_case "eta validates actions" `Quick eta_validates_actions;
      repr_matches_spec_dict;
      repr_matches_spec_random ~optimize:true
        "Definition 4.5 on random ECL specs (optimized)";
      repr_matches_spec_random ~optimize:false
        "Definition 4.5 on random ECL specs (raw Section 6.2)";
      optimize_preserves;
      bounded_conflicts;
      conflicts_vs_conflict;
    ] )
