open Crd
module Gen = QCheck2.Gen

let qcheck ?(count = 500) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let x = Mem_loc.Global "x"

let run_ft trace =
  let hb = Hb.create () in
  let d = Fasttrack.create () in
  Trace.iter trace ~f:(fun index (e : Event.t) ->
      let vc = Hb.step hb e in
      match e.op with
      | Event.Read loc -> ignore (Fasttrack.on_read d ~index e.tid loc vc)
      | Event.Write loc -> ignore (Fasttrack.on_write d ~index e.tid loc vc)
      | _ -> ());
  d

let run_djit trace =
  let hb = Hb.create () in
  let d = Djit.create () in
  Trace.iter trace ~f:(fun index (e : Event.t) ->
      let vc = Hb.step hb e in
      match e.op with
      | Event.Read loc -> ignore (Djit.on_read d ~index e.tid loc vc)
      | Event.Write loc -> ignore (Djit.on_write d ~index e.tid loc vc)
      | _ -> ());
  d

let parse src = Result.get_ok (Trace_text.parse src)

let kinds d = List.map (fun (r : Rw_report.t) -> r.kind) (Fasttrack.races d)

let write_write () =
  let d = run_ft (parse "T0 fork T1\nT1 write global:x\nT0 write global:x\n") in
  Alcotest.(check int) "one race" 1 (List.length (Fasttrack.races d));
  Alcotest.(check bool) "is ww" true (kinds d = [ Rw_report.Write_write ])

let write_read () =
  let d = run_ft (parse "T0 fork T1\nT1 write global:x\nT0 read global:x\n") in
  Alcotest.(check bool) "is wr" true (kinds d = [ Rw_report.Write_read ])

let read_write () =
  let d = run_ft (parse "T0 fork T1\nT1 read global:x\nT0 write global:x\n") in
  Alcotest.(check bool) "is rw" true (kinds d = [ Rw_report.Read_write ])

let read_read_no_race () =
  let d = run_ft (parse "T0 fork T1\nT1 read global:x\nT0 read global:x\n") in
  Alcotest.(check int) "no race" 0 (List.length (Fasttrack.races d))

let lock_protected () =
  let d =
    run_ft
      (parse
         "T0 fork T1\n\
          T1 acquire l\n\
          T1 write global:x\n\
          T1 release l\n\
          T0 acquire l\n\
          T0 write global:x\n\
          T0 read global:x\n\
          T0 release l\n")
  in
  Alcotest.(check int) "no race" 0 (List.length (Fasttrack.races d))

let fork_join_ordered () =
  let d =
    run_ft
      (parse
         "T0 write global:x\n\
          T0 fork T1\n\
          T1 write global:x\n\
          T0 join T1\n\
          T0 read global:x\n\
          T0 write global:x\n")
  in
  Alcotest.(check int) "no race" 0 (List.length (Fasttrack.races d))

let shared_read_inflation () =
  (* Two concurrent readers (no race), then a writer joined with only one
     of them: read-write race detected via the read vector clock. *)
  let d =
    run_ft
      (parse
         "T0 fork T1\n\
          T0 fork T2\n\
          T1 read global:x\n\
          T2 read global:x\n\
          T0 join T1\n\
          T0 write global:x\n")
  in
  Alcotest.(check bool) "rw via shared reads" true
    (kinds d = [ Rw_report.Read_write ])

let same_epoch_fast_path () =
  let d =
    run_ft (parse "T0 write global:x\nT0 write global:x\nT0 read global:x\nT0 read global:x\n")
  in
  let stats = Fasttrack.stats d in
  Alcotest.(check int) "same-epoch hits" 2 stats.Fasttrack.same_epoch;
  Alcotest.(check int) "no races" 0 stats.Fasttrack.races

(* FastTrack and DJIT+ agree on the first race of every location. *)
let first_race (reports : Rw_report.t list) =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (r : Rw_report.t) ->
      let k = Fmt.str "%a" Mem_loc.pp r.loc in
      match Hashtbl.find_opt tbl k with
      | Some i when i <= r.index -> ()
      | _ -> Hashtbl.replace tbl k r.index)
    reports;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

let ft_equals_djit =
  qcheck ~count:800 "FastTrack == DJIT+ up to the first race per location"
    (Generators.rw_trace ~threads:4 ~len:60) (fun trace ->
      let ft = run_ft trace and dj = run_djit trace in
      first_race (Fasttrack.races ft) = first_race (Djit.races dj))

let suite =
  ( "fasttrack",
    [
      Alcotest.test_case "write-write" `Quick write_write;
      Alcotest.test_case "write-read" `Quick write_read;
      Alcotest.test_case "read-write" `Quick read_write;
      Alcotest.test_case "read-read ok" `Quick read_read_no_race;
      Alcotest.test_case "lock protected" `Quick lock_protected;
      Alcotest.test_case "fork/join ordered" `Quick fork_join_ordered;
      Alcotest.test_case "shared-read inflation" `Quick shared_read_inflation;
      Alcotest.test_case "same-epoch fast path" `Quick same_epoch_fast_path;
      ft_equals_djit;
    ] )

let _ = x
