(* Theorem 5.2: if a trace has no commutativity races w.r.t. a
   happens-before relation and a sound specification, then every trace
   admitting the same happens-before relation (a) ends in the same state
   and (b) is race-free.

   Executable check: take random dictionary traces, keep the race-free
   ones, and replay several random linear extensions of their
   happens-before order through the executable dictionary model — the
   permuted executions must all be defined (every action's recorded
   return value stays valid) and reach the same final state. As a sanity
   check on the test itself, racy traces must exhibit at least one
   reordering that diverges (different final state or undefined). *)

open Crd
module Gen = QCheck2.Gen

let dict_spec = Stdspecs.dictionary ()
let dict_repr = Result.get_ok (Repr.of_spec dict_spec)

(* Big-key dictionary model: keys/values as used by Generators.dict_trace. *)
let model =
  Models.dictionary
    ~keys:[ Value.Int 0; Value.Int 1; Value.Str "k" ]
    ~values:[ Value.Nil; Value.Int 1; Value.Int 2 ]
    ()

(* Collect the call events of one object with their clocks; answer
   whether the trace is race-free; return (actions, clocks). *)
let calls_with_clocks trace =
  let hb = Hb.create () in
  let rd2 = Rd2.create ~repr_for:(fun _ -> Some dict_repr) () in
  let calls = ref [] in
  Trace.iter trace ~f:(fun index (e : Event.t) ->
      let vc = Hb.step hb e in
      match e.op with
      | Event.Call a ->
          ignore (Rd2.on_action rd2 ~index e.tid a vc);
          calls := (a, Vclock.copy vc, e.tid, index) :: !calls
      | _ -> ());
  (List.rev !calls, Rd2.races rd2 = [])

let apply_shape state (a : Action.t) =
  model.Model.apply state
    { Model.meth = a.Action.meth; args = a.Action.args; rets = a.Action.rets }

let replay actions =
  List.fold_left
    (fun st a -> match st with None -> None | Some s -> apply_shape s a)
    (Some model.Model.initial) actions

(* A random linear extension of the happens-before order (strict clock
   order plus program order, which vector clocks cannot see inside one
   segment): repeatedly remove a random minimal element. *)
let linear_extension prng calls =
  let precedes (_, vc', tid', i') (_, vc, tid, i) =
    (i' < i && Tid.equal tid' tid)
    || (Vclock.leq vc' vc && not (Vclock.leq vc vc'))
  in
  let remaining = ref calls in
  let out = ref [] in
  while !remaining <> [] do
    let minimal =
      List.filter
        (fun e ->
          not (List.exists (fun e' -> (not (e' == e)) && precedes e' e) !remaining))
        !remaining
    in
    let pick = List.nth minimal (Prng.int prng (List.length minimal)) in
    let action, _, _, _ = pick in
    out := action :: !out;
    remaining := List.filter (fun entry -> not (entry == pick)) !remaining
  done;
  List.rev !out

(* Restrict generated traces to one object so the model state is the
   whole shared state. *)
let trace_gen = Generators.dict_trace ~threads:3 ~objects:1 ~len:14

let race_free_deterministic =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:400
       ~name:"race-free traces are schedule-deterministic (Theorem 5.2)"
       (Gen.pair trace_gen (Gen.int_range 0 0xFFFF))
       (fun (trace, salt) ->
         let calls, race_free = calls_with_clocks trace in
         if not race_free then true (* vacuous for racy traces *)
         else begin
           let reference = replay (List.map (fun (a, _, _, _) -> a) calls) in
           reference <> None
           &&
           let prng = Prng.make (Int64.of_int salt) in
           List.for_all
             (fun _ ->
               let permuted = linear_extension prng calls in
               match (reference, replay permuted) with
               | Some a, Some b -> Model.state_equal a b
               | _ -> false)
             [ 1; 2; 3 ]
         end))

(* Sanity: the test has teeth — for the Fig 3 racy trace there IS a
   reordering with a different outcome. *)
let racy_trace_diverges () =
  let src =
    "T0 fork T2\n\
     T0 fork T3\n\
     T3 call dictionary.put(0, 1) / nil\n\
     T2 call dictionary.put(0, 2) / 1\n"
  in
  let trace = Result.get_ok (Trace_text.parse src) in
  let calls, race_free = calls_with_clocks trace in
  Alcotest.(check bool) "trace is racy" false race_free;
  (* Original order is defined; the swapped order is not (put(0,2)/1
     requires key 0 to hold 1 already). *)
  let actions = List.map (fun (a, _, _, _) -> a) calls in
  (match replay actions with
  | Some _ -> ()
  | None -> Alcotest.fail "original order must be defined");
  match replay (List.rev actions) with
  | None -> ()
  | Some _ -> Alcotest.fail "swapped order should be undefined"

let suite =
  ( "theorem-5.2",
    [
      Alcotest.test_case "racy trace diverges" `Quick racy_trace_diverges;
      race_free_deterministic;
    ] )
