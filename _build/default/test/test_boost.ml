open Crd
module Boost = Crd_boost.Boost

let dict_repr = Result.get_ok (Repr.of_spec (Stdspecs.dictionary ()))

let bump mgr txn d k =
  let v = Boost.get txn d k in
  let n = match v with Value.Int n -> n | _ -> 0 in
  ignore (Boost.put txn d k (Value.Int (n + 1)));
  ignore mgr

(* Concurrent boosted increments never lose updates, for any schedule. *)
let no_lost_updates () =
  for seed = 1 to 10 do
    let final = ref 0 in
    Sched.run ~seed:(Int64.of_int seed) (fun () ->
        let mgr = Boost.create ~repr:dict_repr () in
        let d = Monitored.Dict.create ~name:"dictionary:d" () in
        for _ = 1 to 8 do
          ignore
            (Sched.fork (fun () ->
                 Boost.atomic mgr (fun txn -> bump mgr txn d (Value.Str "hits"))))
        done;
        Sched.join_all ();
        (match Monitored.Dict.raw_get d (Value.Str "hits") with
        | Value.Int n -> final := n
        | _ -> ()));
    Alcotest.(check int) (Printf.sprintf "seed %d: all updates kept" seed) 8 !final
  done

(* The emitted trace of a boosted execution is conflict-serializable: the
   atomicity checker finds no violations (contrast with the unboosted
   version of the same program, which does tangle). *)
let serializable_traces () =
  for seed = 1 to 6 do
    let an =
      Analyzer.with_stdspecs
        ~config:
          { Analyzer.rd2 = `Off; direct = false; fasttrack = false; djit = false; atomicity = true }
        ()
    in
    Sched.run ~seed:(Int64.of_int seed) ~sink:(Analyzer.sink an) (fun () ->
        let mgr = Boost.create ~repr:dict_repr () in
        let d = Monitored.Dict.create ~name:"dictionary:d" () in
        for w = 0 to 5 do
          ignore
            (Sched.fork (fun () ->
                 Boost.atomic mgr (fun txn ->
                     bump mgr txn d (Value.Int (w mod 2));
                     ignore (Boost.size txn d))))
        done;
        Sched.join_all ());
    Alcotest.(check (list pass))
      (Printf.sprintf "seed %d: no atomicity violations" seed)
      [] (Analyzer.atomicity_violations an)
  done

(* Contended transactions abort and retry; disjoint ones do not. *)
let contention_aborts () =
  let aborts_for ~same_key =
    let mgr = ref None in
    Sched.run ~seed:7L (fun () ->
        let m = Boost.create ~repr:dict_repr () in
        mgr := Some m;
        let d = Monitored.Dict.create ~name:"dictionary:d" () in
        for w = 0 to 7 do
          let k = if same_key then Value.Int 0 else Value.Int w in
          ignore
            (Sched.fork (fun () ->
                 Boost.atomic m (fun txn -> bump m txn d k)))
        done;
        Sched.join_all ());
    (Boost.stats (Option.get !mgr)).Boost.aborts
  in
  Alcotest.(check bool) "same key aborts" true (aborts_for ~same_key:true > 0);
  Alcotest.(check int) "disjoint keys never abort" 0 (aborts_for ~same_key:false)

(* Reads are shared: many concurrent readers of the same key commit
   without aborting each other. *)
let shared_reads () =
  let mgr = ref None in
  Sched.run ~seed:3L (fun () ->
      let m = Boost.create ~repr:dict_repr () in
      mgr := Some m;
      let d = Monitored.Dict.create ~name:"dictionary:d" () in
      ignore (Monitored.Dict.put d (Value.Int 1) (Value.Int 42));
      for _ = 1 to 6 do
        ignore
          (Sched.fork (fun () ->
               Boost.atomic m (fun txn ->
                   Alcotest.(check bool) "read sees committed value" true
                     (Value.equal (Value.Int 42) (Boost.get txn d (Value.Int 1))))))
      done;
      Sched.join_all ());
  let s = Boost.stats (Option.get !mgr) in
  Alcotest.(check int) "no aborts among readers" 0 s.Boost.aborts;
  Alcotest.(check int) "all committed" 6 s.Boost.commits

(* A size() transaction excludes concurrent inserts but not overwrites —
   the Fig 7 conflict structure drives the abstract lock modes. *)
let size_lock_modes () =
  let mgr = ref None in
  let overwrite_aborts = ref (-1) in
  Sched.run ~seed:5L (fun () ->
      let m = Boost.create ~repr:dict_repr () in
      mgr := Some m;
      let d = Monitored.Dict.create ~name:"dictionary:d" () in
      ignore (Monitored.Dict.put d (Value.Int 1) (Value.Int 0));
      (* Long-running sizer holding the size point... *)
      ignore
        (Sched.fork (fun () ->
             Boost.atomic m (fun txn ->
                 ignore (Boost.size txn d);
                 for _ = 1 to 8 do
                   Sched.yield ()
                 done;
                 ignore (Boost.size txn d))));
      (* ...while another transaction overwrites an existing key: the
         overwrite touches only w:k, which does not conflict with size. *)
      ignore
        (Sched.fork (fun () ->
             Boost.atomic m (fun txn ->
                 ignore (Boost.put txn d (Value.Int 1) (Value.Int 9)))));
      Sched.join_all ();
      overwrite_aborts := (Boost.stats m).Boost.aborts);
  Alcotest.(check int) "overwrite does not conflict with size" 0 !overwrite_aborts

let buffered_semantics () =
  Sched.run (fun () ->
      let m = Boost.create ~repr:dict_repr () in
      let d = Monitored.Dict.create ~name:"dictionary:d" () in
      Boost.atomic m (fun txn ->
          ignore (Boost.put txn d (Value.Int 1) (Value.Str "x"));
          (* Our own write is visible inside the transaction... *)
          Alcotest.(check bool) "read own write" true
            (Value.equal (Value.Str "x") (Boost.get txn d (Value.Int 1)));
          (* ...and counted by size... *)
          Alcotest.(check int) "buffered size" 1 (Boost.size txn d);
          (* ...but not outside until commit. *)
          Alcotest.(check bool) "not committed yet" true
            (Value.is_nil (Monitored.Dict.raw_get d (Value.Int 1))));
      Alcotest.(check bool) "committed after atomic" true
        (Value.equal (Value.Str "x") (Monitored.Dict.raw_get d (Value.Int 1))))

(* The classic STM demonstration: concurrent transfers between accounts
   preserve the total balance under every schedule. *)
let transfers_conserve_total () =
  let accounts = 4 in
  let initial = 100 in
  for seed = 1 to 8 do
    let total = ref (-1) in
    Sched.run ~seed:(Int64.of_int seed) (fun () ->
        let mgr = Boost.create ~repr:dict_repr () in
        let d = Monitored.Dict.create ~name:"dictionary:accounts" () in
        for a = 0 to accounts - 1 do
          ignore (Monitored.Dict.put d (Value.Int a) (Value.Int initial))
        done;
        let prng = Prng.make (Int64.of_int (seed * 31)) in
        let transfers =
          List.init 12 (fun _ ->
              let from_a = Prng.int prng accounts in
              let to_a = (from_a + 1 + Prng.int prng (accounts - 1)) mod accounts in
              let amount = 1 + Prng.int prng 40 in
              (from_a, to_a, amount))
        in
        List.iter
          (fun (from_a, to_a, amount) ->
            ignore
              (Sched.fork (fun () ->
                   Boost.atomic mgr (fun txn ->
                       let bal a =
                         match Boost.get txn d (Value.Int a) with
                         | Value.Int n -> n
                         | _ -> 0
                       in
                       let f = bal from_a in
                       if f >= amount then begin
                         ignore
                           (Boost.put txn d (Value.Int from_a)
                              (Value.Int (f - amount)));
                         let t = bal to_a in
                         ignore
                           (Boost.put txn d (Value.Int to_a)
                              (Value.Int (t + amount)))
                       end))))
          transfers;
        Sched.join_all ();
        let sum = ref 0 in
        for a = 0 to accounts - 1 do
          match Monitored.Dict.raw_get d (Value.Int a) with
          | Value.Int n -> sum := !sum + n
          | _ -> ()
        done;
        total := !sum);
    Alcotest.(check int)
      (Printf.sprintf "seed %d: total conserved" seed)
      (accounts * initial) !total
  done

let suite =
  ( "boost",
    [
      Alcotest.test_case "transfers conserve total" `Quick
        transfers_conserve_total;
      Alcotest.test_case "no lost updates" `Quick no_lost_updates;
      Alcotest.test_case "serializable traces" `Quick serializable_traces;
      Alcotest.test_case "contention aborts" `Quick contention_aborts;
      Alcotest.test_case "shared reads" `Quick shared_reads;
      Alcotest.test_case "size lock modes" `Quick size_lock_modes;
      Alcotest.test_case "buffered semantics" `Quick buffered_semantics;
    ] )
