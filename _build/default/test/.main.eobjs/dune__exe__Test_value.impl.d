test/test_value.ml: Alcotest Crd Generators List Printf QCheck2 QCheck_alcotest Value
