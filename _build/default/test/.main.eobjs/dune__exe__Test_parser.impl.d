test/test_parser.ml: Action Alcotest Crd Formula List Obj_id Option Signature Spec Spec_parser Stdspecs String
