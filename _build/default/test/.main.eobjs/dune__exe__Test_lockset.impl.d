test/test_lockset.ml: Alcotest Crd Crd_fasttrack Event Fasttrack Hb List Mem_loc Result Trace Trace_text
