test/test_hb.ml: Action Alcotest Array Crd Event Generators Hashtbl Hb List Lock_id Obj_id QCheck2 QCheck_alcotest Tid Trace Value Vclock
