test/test_trace.ml: Action Alcotest Crd Event Fmt Generators List Mem_loc Obj_id QCheck2 QCheck_alcotest String Tid Trace Trace_text Value
