test/test_vclock.ml: Alcotest Crd QCheck2 QCheck_alcotest Tid Vclock
