test/test_fasttrack.ml: Alcotest Crd Djit Event Fasttrack Fmt Generators Hashtbl Hb List Mem_loc QCheck2 QCheck_alcotest Result Rw_report Trace Trace_text
