test/test_runtime.ml: Action Alcotest Analyzer Crd Effect Event Hashtbl Int64 List Monitored Sched Tid Trace Trace_text Value
