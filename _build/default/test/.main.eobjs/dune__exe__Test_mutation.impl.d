test/test_mutation.ml: Alcotest Crd Formula List Model Models Printf Result Soundness Spec Spec_parser Stdspecs String
