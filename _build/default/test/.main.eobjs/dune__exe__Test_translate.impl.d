test/test_translate.ml: Action Alcotest Atom Crd Formula Generators List Obj_id Point QCheck2 QCheck_alcotest Repr Result Signature Spec Stdspecs Value
