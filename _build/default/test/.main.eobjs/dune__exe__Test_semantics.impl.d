test/test_semantics.ml: Alcotest Crd Formula List Model Models Printf Result Signature Soundness Spec Stdspecs Value
