test/test_boost.ml: Alcotest Analyzer Crd Crd_boost Int64 List Monitored Option Printf Prng Repr Result Sched Stdspecs Value
