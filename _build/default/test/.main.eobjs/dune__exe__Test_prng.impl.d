test/test_prng.ml: Alcotest Array Crd Fun Int64 Prng
