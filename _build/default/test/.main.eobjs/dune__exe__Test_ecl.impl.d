test/test_ecl.ml: Alcotest Array Atom Crd Ecl Formula Generators List QCheck2 QCheck_alcotest Residual Spec Stdspecs Value
