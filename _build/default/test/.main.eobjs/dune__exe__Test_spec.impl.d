test/test_spec.ml: Action Alcotest Atom Crd Fmt Formula Generators List Obj_id QCheck2 QCheck_alcotest Result Signature Spec Spec_parser Stdspecs String Value
