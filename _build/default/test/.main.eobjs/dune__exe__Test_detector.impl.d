test/test_detector.ml: Action Alcotest Crd Direct Event Generators Hb List Obj_id QCheck2 QCheck_alcotest Rd2 Report Repr Result Stdspecs Tid Trace Trace_text Value
