test/test_theorem52.ml: Action Alcotest Crd Event Generators Hb Int64 List Model Models Prng QCheck2 QCheck_alcotest Rd2 Repr Result Stdspecs Tid Trace Trace_text Value Vclock
