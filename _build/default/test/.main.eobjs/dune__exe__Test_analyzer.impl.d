test/test_analyzer.ml: Action Alcotest Analyzer Atom Crd Event Fmt Formula List Monitored Obj_id Report Result Sched Signature Spec String Tid Trace_text Value
