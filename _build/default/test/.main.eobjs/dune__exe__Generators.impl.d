test/generators.ml: Action Array Atom Crd Event Formula Hashtbl Int64 List Lock_id Mem_loc Obj_id Printf Prng QCheck2 Signature Spec String Tid Trace Value
