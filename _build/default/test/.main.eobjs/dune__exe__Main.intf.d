test/main.mli:
