test/test_workloads.ml: Alcotest Analyzer Array Crd Crd_workloads Fmt Int64 List Monitored Obj_id Option Printf Report Sched String Value
