open Crd
module Gen = QCheck2.Gen

let qcheck ?(count = 500) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let v side slot = Atom.Var { Atom.side; slot; name = "" }
let atom pred lhs rhs = Formula.Atom { Atom.pred; lhs; rhs }
let x1 = v Atom.Side.Fst 0
let y1 = v Atom.Side.Fst 1
let x2 = v Atom.Side.Snd 0
let y2 = v Atom.Side.Snd 1
let c0 = Atom.Const (Value.Int 0)

(* The examples of Section 6.1: V1 = {x, y}, V2 = {z}. *)
let section61_examples () =
  (* x < y is an admissible LB atom. *)
  Alcotest.(check bool) "x1 < y1 is LB" true (Ecl.is_lb (atom Atom.Lt x1 y1));
  (* 0 < z likewise. *)
  Alcotest.(check bool) "0 < x2 is LB" true (Ecl.is_lb (atom Atom.Lt c0 x2));
  (* x < z crosses sides: not an ECL atom at all. *)
  Alcotest.(check bool) "x1 < x2 not classifiable" true
    (Ecl.classify_atom { Atom.pred = Atom.Lt; lhs = x1; rhs = x2 } = None);
  (* x < y /\ 0 < z is LB (hence ECL). *)
  let f = Formula.And (atom Atom.Lt x1 y1, atom Atom.Lt c0 x2) in
  Alcotest.(check bool) "conjunction is LB" true (Ecl.is_lb f);
  Alcotest.(check bool) "conjunction is ECL" true (Ecl.is_ecl f)

let simple_fragment () =
  let dis = atom Atom.Ne x1 x2 in
  Alcotest.(check bool) "x1 != x2 is LS" true (Ecl.is_ls dis);
  Alcotest.(check bool) "conj of LS is LS" true
    (Ecl.is_ls (Formula.And (dis, atom Atom.Ne y1 y2)));
  Alcotest.(check bool) "true is LS" true (Ecl.is_ls Formula.True);
  Alcotest.(check bool) "disjunction is not LS" false
    (Ecl.is_ls (Formula.Or (dis, dis)));
  Alcotest.(check bool) "negation is not LS" false
    (Ecl.is_ls (Formula.Not dis));
  (* Cross-side equality is not in SIMPLE (nor ECL). *)
  Alcotest.(check bool) "x1 == x2 is not LS" false
    (Ecl.is_ls (atom Atom.Eq x1 x2))

(* The put/put formula of Fig 6 is in ECL but not SIMPLE (Section 6.1). *)
let fig6_put_put () =
  let phi =
    Formula.Or
      ( atom Atom.Ne x1 x2,
        Formula.And (atom Atom.Eq y1 (v Atom.Side.Fst 2), atom Atom.Eq y2 (v Atom.Side.Snd 2)) )
  in
  Alcotest.(check bool) "in ECL" true (Ecl.is_ecl phi);
  Alcotest.(check bool) "not in LS" false (Ecl.is_ls phi);
  Alcotest.(check bool) "not in LB" false (Ecl.is_lb phi)

let non_ecl_rejected () =
  let cross_eq = atom Atom.Eq x1 x2 in
  Alcotest.(check bool) "cross equality rejected" false (Ecl.is_ecl cross_eq);
  (match Ecl.check cross_eq with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected check error");
  (* Disjunction of two non-trivial SIMPLE formulas. *)
  let s = atom Atom.Ne x1 x2 in
  Alcotest.(check bool) "S \\/ S rejected" false
    (Ecl.is_ecl (Formula.Or (s, s)));
  (* Negation over an LS atom. *)
  Alcotest.(check bool) "!S rejected" false (Ecl.is_ecl (Formula.Not s));
  (* But X /\ X with mixed components is fine. *)
  Alcotest.(check bool) "X /\\ X accepted" true
    (Ecl.is_ecl (Formula.And (Formula.Or (s, atom Atom.Eq y1 c0), s)))

let all_builtin_specs_ecl () =
  List.iter
    (fun spec ->
      match Spec.ecl_check spec with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" (Spec.name spec) e)
    (Stdspecs.all ())

(* Lemma 6.4 as executed by the residuation: assigning the LB atoms their
   truth on concrete actions and evaluating the residual LS formula agrees
   with direct evaluation. *)
let residual_agrees =
  let gen =
    Gen.triple
      (Generators.ecl ~arity1:2 ~arity2:3 3)
      (Gen.array_size (Gen.return 2) Generators.small_value)
      (Gen.array_size (Gen.return 3) Generators.small_value)
  in
  qcheck ~count:2000 "residuation agrees with evaluation (Lemma 6.4)" gen
    (fun (f, w1, w2) ->
      let beta slots a =
        (* Truth of a normalized positive atom on a slot tuple. *)
        Atom.eval a (fun (va : Atom.var) -> slots.(va.slot))
      in
      match
        Residual.residuate f ~beta1:(beta w1) ~beta2:(beta w2)
      with
      | Residual.Rfalse -> not (Formula.eval_pair f w1 w2)
      | Residual.Rconj conjuncts ->
          let residual_value =
            List.for_all
              (fun (i, j) -> not (Value.equal w1.(i) w2.(j)))
              conjuncts
          in
          residual_value = Formula.eval_pair f w1 w2)

let residual_rejects_non_ecl () =
  (match Residual.residuate (atom Atom.Eq x1 x2) ~beta1:(fun _ -> true) ~beta2:(fun _ -> true) with
  | exception Residual.Not_ecl _ -> ()
  | _ -> Alcotest.fail "expected Not_ecl");
  let s = atom Atom.Ne x1 x2 in
  match
    Residual.residuate (Formula.Or (s, s)) ~beta1:(fun _ -> true)
      ~beta2:(fun _ -> true)
  with
  | exception Residual.Not_ecl _ -> ()
  | _ -> Alcotest.fail "expected Not_ecl on S \\/ S"

let generated_formulas_are_ecl =
  qcheck ~count:1000 "generator produces ECL formulas"
    (Generators.ecl ~arity1:2 ~arity2:2 3) Ecl.is_ecl

let lb_closed_under_not =
  qcheck "LB is closed under negation"
    (Generators.ecl ~arity1:2 ~arity2:2 2) (fun f ->
      (not (Ecl.is_lb f)) || Ecl.is_lb (Formula.Not f))

let suite =
  ( "ecl",
    [
      Alcotest.test_case "Section 6.1 examples" `Quick section61_examples;
      Alcotest.test_case "SIMPLE fragment" `Quick simple_fragment;
      Alcotest.test_case "Fig 6 put/put in ECL \\ SIMPLE" `Quick fig6_put_put;
      Alcotest.test_case "non-ECL rejected" `Quick non_ecl_rejected;
      Alcotest.test_case "builtin specs are ECL" `Quick all_builtin_specs_ecl;
      Alcotest.test_case "residuate rejects non-ECL" `Quick
        residual_rejects_non_ecl;
      residual_agrees;
      generated_formulas_are_ecl;
      lb_closed_under_not;
    ] )
