(* Shared QCheck generators: random values, actions, traces, ECL formulas
   and whole specifications. *)

open Crd
module Gen = QCheck2.Gen

(* ------------------------------------------------------------------ *)
(* Values                                                              *)
(* ------------------------------------------------------------------ *)

let value : Value.t Gen.t =
  Gen.oneof
    [
      Gen.return Value.Nil;
      Gen.map (fun b -> Value.Bool b) Gen.bool;
      Gen.map (fun i -> Value.Int i) (Gen.int_range (-3) 6);
      Gen.map (fun i -> Value.Str (Printf.sprintf "s%d" i)) (Gen.int_range 0 3);
      Gen.map (fun i -> Value.Ref i) (Gen.int_range 0 3);
    ]

let small_value : Value.t Gen.t =
  (* A deliberately tiny domain so collisions (equal slots) are common. *)
  Gen.oneofl [ Value.Nil; Value.Int 0; Value.Int 1; Value.Int 2 ]

(* ------------------------------------------------------------------ *)
(* Signatures and ECL formulas                                         *)
(* ------------------------------------------------------------------ *)

let signature ~meth : Signature.t Gen.t =
  let open Gen in
  let* nargs = int_range 0 2 in
  let* nrets = int_range 0 1 in
  return
    (Signature.make ~meth
       ~args:(List.init nargs (fun i -> Printf.sprintf "a%d" i))
       ~rets:(List.init nrets (fun i -> Printf.sprintf "r%d" i))
       ())

let var side slot = Atom.Var { Atom.side; slot; name = "" }

(* A single-sided (LB) atom over the slots of [n]-ary method on [side]. *)
let lb_atom ~side ~arity : Formula.t Gen.t =
  let open Gen in
  if arity = 0 then Gen.oneofl [ Formula.True; Formula.False ]
  else
    let* pred = oneofl [ Atom.Eq; Atom.Ne; Atom.Lt; Atom.Le ] in
    let* slot1 = int_range 0 (arity - 1) in
    let* rhs =
      oneof
        [
          map (fun v -> Atom.Const v) small_value;
          map (fun s -> var side s) (int_range 0 (arity - 1));
        ]
    in
    return (Formula.Atom { Atom.pred; lhs = var side slot1; rhs })

(* A SIMPLE (LS) atom: cross-side disequality. *)
let ls_atom ~arity1 ~arity2 : Formula.t Gen.t =
  let open Gen in
  if arity1 = 0 || arity2 = 0 then Gen.oneofl [ Formula.True; Formula.False ]
  else
    let* s1 = int_range 0 (arity1 - 1) in
    let* s2 = int_range 0 (arity2 - 1) in
    return
      (Formula.Atom
         { Atom.pred = Atom.Ne; lhs = var Atom.Side.Fst s1; rhs = var Atom.Side.Snd s2 })

let rec lb ~side ~arity depth : Formula.t Gen.t =
  let open Gen in
  if depth = 0 then lb_atom ~side ~arity
  else
    oneof
      [
        lb_atom ~side ~arity;
        map (fun f -> Formula.Not f) (lb ~side ~arity (depth - 1));
        map2
          (fun f g -> Formula.And (f, g))
          (lb ~side ~arity (depth - 1))
          (lb ~side ~arity (depth - 1));
        map2
          (fun f g -> Formula.Or (f, g))
          (lb ~side ~arity (depth - 1))
          (lb ~side ~arity (depth - 1));
      ]

let rec ls ~arity1 ~arity2 depth : Formula.t Gen.t =
  let open Gen in
  if depth = 0 then ls_atom ~arity1 ~arity2
  else
    oneof
      [
        ls_atom ~arity1 ~arity2;
        map2
          (fun f g -> Formula.And (f, g))
          (ls ~arity1 ~arity2 (depth - 1))
          (ls ~arity1 ~arity2 (depth - 1));
      ]

let lb_either ~arity1 ~arity2 depth : Formula.t Gen.t =
  Gen.oneof
    [ lb ~side:Atom.Side.Fst ~arity:arity1 depth;
      lb ~side:Atom.Side.Snd ~arity:arity2 depth ]

(* X ::= S | B | X /\ X | X \/ B *)
let rec ecl ~arity1 ~arity2 depth : Formula.t Gen.t =
  let open Gen in
  if depth = 0 then
    oneof [ ls ~arity1 ~arity2 0; lb_either ~arity1 ~arity2 0 ]
  else
    oneof
      [
        ls ~arity1 ~arity2 depth;
        lb_either ~arity1 ~arity2 depth;
        map2
          (fun f g -> Formula.And (f, g))
          (ecl ~arity1 ~arity2 (depth - 1))
          (ecl ~arity1 ~arity2 (depth - 1));
        map2
          (fun f g -> Formula.Or (f, g))
          (ecl ~arity1 ~arity2 (depth - 1))
          (lb_either ~arity1 ~arity2 (depth - 1));
      ]

(* ------------------------------------------------------------------ *)
(* Whole specifications                                                *)
(* ------------------------------------------------------------------ *)

let spec : Spec.t Gen.t =
  let open Gen in
  let* nmeth = int_range 1 3 in
  let* sigs =
    flatten_l
      (List.init nmeth (fun i -> signature ~meth:(Printf.sprintf "m%d" i)))
  in
  let* entries =
    flatten_l
      (List.concat_map
         (fun (s1 : Signature.t) ->
           List.filter_map
             (fun (s2 : Signature.t) ->
               if String.compare s1.Signature.meth s2.Signature.meth <= 0 then
                 Some
                   (let* phi =
                      ecl ~arity1:(Signature.arity s1)
                        ~arity2:(Signature.arity s2) 2
                    in
                    (* Self-pairs must be symmetric: symmetrize by
                       conjunction with the flipped formula (still ECL). *)
                    let phi =
                      if String.equal s1.Signature.meth s2.Signature.meth then
                        Formula.And (phi, Formula.flip_sides phi)
                      else phi
                    in
                    return (s1.Signature.meth, s2.Signature.meth, phi))
               else None)
             sigs)
         sigs)
  in
  match Spec.make ~name:"gen" ~methods:sigs entries with
  | Ok spec -> return spec
  | Error e -> failwith ("Generators.spec: generated an invalid spec: " ^ e)

let action_of ~obj (s : Signature.t) : Action.t Gen.t =
  let open Gen in
  let* args = flatten_l (List.map (fun _ -> small_value) s.Signature.args) in
  let* rets = flatten_l (List.map (fun _ -> small_value) s.Signature.rets) in
  return (Action.make ~obj ~meth:s.Signature.meth ~args ~rets ())

let action_for_spec ~obj spec : Action.t Gen.t =
  let open Gen in
  let* s = oneofl (Spec.methods spec) in
  action_of ~obj s

(* ------------------------------------------------------------------ *)
(* Traces                                                              *)
(* ------------------------------------------------------------------ *)

(* A structured random trace: starts with [threads] forked from T0, then
   a sequence of events from live threads with well-bracketed locking.
   Calls draw dictionary actions whose return values are made consistent
   by replaying against real dictionary states (so the trace could have
   come from a linearizable execution). *)
let dict_trace ~threads ~objects ~len : Trace.t Gen.t =
  let open Gen in
  let* seed = int_range 0 0x3FFFFFF in
  return
    (let prng = Prng.make (Int64.of_int seed) in
     let trace = Trace.create () in
     let tids = Array.init threads (fun i -> Tid.of_int i) in
     for i = 1 to threads - 1 do
       Trace.append trace (Event.fork (Tid.of_int 0) tids.(i))
     done;
     let objs =
       Array.init objects (fun i ->
           ( Obj_id.make ~name:(Printf.sprintf "dictionary:o%d" i) i,
             Hashtbl.create 8 ))
     in
     let locks = Array.init 2 (fun i -> Lock_id.make i) in
     let held = Hashtbl.create 8 in
     (* lock idx -> tid *)
     let keys = [| Value.Int 0; Value.Int 1; Value.Str "k" |] in
     let vals = [| Value.Nil; Value.Int 1; Value.Int 2 |] in
     for _ = 1 to len do
       let tid = tids.(Prng.int prng threads) in
       let obj, state = objs.(Prng.int prng objects) in
       match Prng.int prng 10 with
       | 0 | 1 | 2 | 3 -> (
           (* put *)
           let k = keys.(Prng.int prng (Array.length keys)) in
           let v = vals.(Prng.int prng (Array.length vals)) in
           let p =
             match Hashtbl.find_opt state k with Some p -> p | None -> Value.Nil
           in
           if Value.is_nil v then Hashtbl.remove state k
           else Hashtbl.replace state k v;
           Trace.append trace
             (Event.call tid
                (Action.make ~obj ~meth:"put" ~args:[ k; v ] ~rets:[ p ] ())))
       | 4 | 5 | 6 -> (
           (* get *)
           let k = keys.(Prng.int prng (Array.length keys)) in
           let v =
             match Hashtbl.find_opt state k with Some v -> v | None -> Value.Nil
           in
           Trace.append trace
             (Event.call tid
                (Action.make ~obj ~meth:"get" ~args:[ k ] ~rets:[ v ] ())))
       | 7 ->
           (* size *)
           Trace.append trace
             (Event.call tid
                (Action.make ~obj ~meth:"size" ~args:[]
                   ~rets:[ Value.Int (Hashtbl.length state) ]
                   ()))
       | 8 ->
           (* read/write of a shared location *)
           let loc = Mem_loc.Global (Printf.sprintf "g%d" (Prng.int prng 3)) in
           if Prng.bool prng then Trace.append trace (Event.read tid loc)
           else Trace.append trace (Event.write tid loc)
       | _ -> (
           (* lock activity: acquire a free lock or release a held one *)
           let li = Prng.int prng (Array.length locks) in
           match Hashtbl.find_opt held li with
           | None ->
               Hashtbl.replace held li tid;
               Trace.append trace (Event.acquire tid locks.(li))
           | Some owner when Tid.equal owner tid ->
               Hashtbl.remove held li;
               Trace.append trace (Event.release tid locks.(li))
           | Some _ -> ())
     done;
     (* Release anything still held, then join everyone. *)
     Hashtbl.iter
       (fun li tid -> Trace.append trace (Event.release tid locks.(li)))
       held;
     for i = 1 to threads - 1 do
       Trace.append trace (Event.join (Tid.of_int 0) tids.(i))
     done;
     trace)

(* Raw low-level traces for the FastTrack/DJIT+ comparison: reads and
   writes on a few locations with random fork/join/lock structure. *)
let rw_trace ~threads ~len : Trace.t Gen.t =
  let open Gen in
  let* seed = int_range 0 0x3FFFFFF in
  return
    (let prng = Prng.make (Int64.of_int seed) in
     let trace = Trace.create () in
     let tids = Array.init threads (fun i -> Tid.of_int i) in
     for i = 1 to threads - 1 do
       Trace.append trace (Event.fork (Tid.of_int 0) tids.(i))
     done;
     let locks = Array.init 2 (fun i -> Lock_id.make i) in
     let held = Hashtbl.create 8 in
     let locs =
       Array.init 3 (fun i -> Mem_loc.Global (Printf.sprintf "x%d" i))
     in
     for _ = 1 to len do
       let tid = tids.(Prng.int prng threads) in
       match Prng.int prng 8 with
       | 0 | 1 | 2 ->
           Trace.append trace
             (Event.read tid locs.(Prng.int prng (Array.length locs)))
       | 3 | 4 | 5 ->
           Trace.append trace
             (Event.write tid locs.(Prng.int prng (Array.length locs)))
       | _ -> (
           let li = Prng.int prng (Array.length locks) in
           match Hashtbl.find_opt held li with
           | None ->
               Hashtbl.replace held li tid;
               Trace.append trace (Event.acquire tid locks.(li))
           | Some owner when Tid.equal owner tid ->
               Hashtbl.remove held li;
               Trace.append trace (Event.release tid locks.(li))
           | Some _ -> ())
     done;
     Hashtbl.iter
       (fun li tid -> Trace.append trace (Event.release tid locks.(li)))
       held;
     trace)
