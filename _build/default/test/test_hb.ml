open Crd

let obj = Obj_id.make ~name:"o" 0
let put k = Action.make ~obj ~meth:"put" ~args:[ Value.Str k ] ~rets:[] ()

(* Replay the Fig 3 execution and check the clock relationships the paper
   works through: a1 || a2, a1 < a3, a2 < a3. *)
let fig3 () =
  let hb = Hb.create () in
  let t0 = Tid.of_int 0 and t2 = Tid.of_int 2 and t3 = Tid.of_int 3 in
  ignore (Hb.step hb (Event.fork t0 t2));
  ignore (Hb.step hb (Event.fork t0 t3));
  let vc_a1 = Hb.step hb (Event.call t3 (put "a.com")) in
  let vc_a2 = Hb.step hb (Event.call t2 (put "a.com")) in
  ignore (Hb.step hb (Event.join t0 t2));
  ignore (Hb.step hb (Event.join t0 t3));
  let vc_a3 =
    Hb.step hb
      (Event.call t0 (Action.make ~obj ~meth:"size" ~rets:[ Value.Int 1 ] ()))
  in
  Alcotest.(check bool) "a1 || a2" true (Vclock.concurrent vc_a1 vc_a2);
  Alcotest.(check bool) "a1 < a3" true (Vclock.leq vc_a1 vc_a3);
  Alcotest.(check bool) "a2 < a3" true (Vclock.leq vc_a2 vc_a3);
  Alcotest.(check bool) "a3 not < a1" false (Vclock.leq vc_a3 vc_a1)

let program_order () =
  let hb = Hb.create () in
  let t = Tid.of_int 0 in
  let v1 = Hb.step hb (Event.call t (put "x")) in
  let v2 = Hb.step hb (Event.call t (put "y")) in
  Alcotest.(check bool) "same thread ordered" true (Vclock.leq v1 v2)

let unsynchronized_threads_concurrent () =
  let hb = Hb.create () in
  let v1 = Hb.step hb (Event.call (Tid.of_int 1) (put "x")) in
  let v2 = Hb.step hb (Event.call (Tid.of_int 2) (put "y")) in
  Alcotest.(check bool) "concurrent" true (Vclock.concurrent v1 v2)

let lock_edges () =
  let hb = Hb.create () in
  let t1 = Tid.of_int 1 and t2 = Tid.of_int 2 in
  let l = Lock_id.make 0 in
  ignore (Hb.step hb (Event.acquire t1 l));
  let v1 = Hb.step hb (Event.call t1 (put "x")) in
  ignore (Hb.step hb (Event.release t1 l));
  ignore (Hb.step hb (Event.acquire t2 l));
  let v2 = Hb.step hb (Event.call t2 (put "x")) in
  Alcotest.(check bool) "release-acquire orders" true (Vclock.leq v1 v2);
  Alcotest.(check bool) "not concurrent" false (Vclock.concurrent v1 v2)

let lock_no_edge_without_handoff () =
  let hb = Hb.create () in
  let t1 = Tid.of_int 1 and t2 = Tid.of_int 2 in
  let l1 = Lock_id.make 0 and l2 = Lock_id.make 1 in
  ignore (Hb.step hb (Event.acquire t1 l1));
  let v1 = Hb.step hb (Event.call t1 (put "x")) in
  ignore (Hb.step hb (Event.release t1 l1));
  (* Different lock: no ordering. *)
  ignore (Hb.step hb (Event.acquire t2 l2));
  let v2 = Hb.step hb (Event.call t2 (put "x")) in
  Alcotest.(check bool) "different locks stay concurrent" true
    (Vclock.concurrent v1 v2)

let fork_edge () =
  let hb = Hb.create () in
  let t0 = Tid.of_int 0 and t1 = Tid.of_int 1 in
  let v_before = Hb.step hb (Event.call t0 (put "x")) in
  ignore (Hb.step hb (Event.fork t0 t1));
  let v_child = Hb.step hb (Event.call t1 (put "y")) in
  let v_after = Hb.step hb (Event.call t0 (put "z")) in
  Alcotest.(check bool) "parent-before-fork < child" true
    (Vclock.leq v_before v_child);
  Alcotest.(check bool) "parent-after-fork || child" true
    (Vclock.concurrent v_after v_child)

let snapshot_stability () =
  let hb = Hb.create () in
  let t0 = Tid.of_int 0 in
  let v1 = Hb.step hb (Event.call t0 (put "x")) in
  let saved = Vclock.copy v1 in
  (* Sync events mutate T(t0); earlier snapshots must not change. *)
  ignore (Hb.step hb (Event.fork t0 (Tid.of_int 1)));
  ignore (Hb.step hb (Event.release t0 (Lock_id.make 7)));
  Alcotest.(check bool) "snapshot unchanged" true (Vclock.equal saved v1)

let snapshot_shared_within_segment () =
  let hb = Hb.create () in
  let t0 = Tid.of_int 0 in
  let v1 = Hb.step hb (Event.call t0 (put "x")) in
  let v2 = Hb.step hb (Event.call t0 (put "y")) in
  Alcotest.(check bool) "same segment, same clock" true (v1 == v2)

(* Reference happens-before: explicit edges (program order, fork, join,
   release->acquire) + transitive closure. The vector clocks of Table 1
   must represent exactly this partial order (restricted to the events
   that carry clocks). *)
let reference_reachability trace =
  let n = Trace.length trace in
  let succs = Array.make n [] in
  let add i j = if i >= 0 then succs.(i) <- j :: succs.(i) in
  let last_of_thread = Hashtbl.create 8 in
  let pending_fork = Hashtbl.create 8 in
  let last_release = Hashtbl.create 8 in
  Trace.iter trace ~f:(fun i (e : Event.t) ->
      let tid = Tid.to_int e.tid in
      (match Hashtbl.find_opt last_of_thread tid with
      | Some prev -> add prev i
      | None -> (
          match Hashtbl.find_opt pending_fork tid with
          | Some f -> add f i
          | None -> ()));
      Hashtbl.replace last_of_thread tid i;
      match e.op with
      | Event.Fork u -> Hashtbl.replace pending_fork (Tid.to_int u) i
      | Event.Join u -> (
          match Hashtbl.find_opt last_of_thread (Tid.to_int u) with
          | Some j -> add j i
          | None -> ())
      | Event.Acquire l -> (
          match Hashtbl.find_opt last_release (Lock_id.id l) with
          | Some j -> add j i
          | None -> ())
      | Event.Release l -> Hashtbl.replace last_release (Lock_id.id l) i
      | _ -> ());
  (* Reachability by reverse-order DP: events only reach later events. *)
  let reach = Array.init n (fun i -> Array.make (n - i) false) in
  let reachable i j = i <= j && (i = j || reach.(i).(j - i)) in
  for i = n - 1 downto 0 do
    List.iter
      (fun j ->
        reach.(i).(j - i) <- true;
        for k = j to n - 1 do
          if reachable j k then reach.(i).(k - i) <- true
        done)
      succs.(i)
  done;
  reachable

let clocks_match_reference =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:200 ~name:"vector clocks = explicit closure"
       (Generators.dict_trace ~threads:4 ~objects:1 ~len:50)
       (fun trace ->
         let reachable = reference_reachability trace in
         let hb = Hb.create () in
         let clocks = Array.make (Trace.length trace) None in
         Trace.iter trace ~f:(fun i e ->
             let vc = Hb.step hb e in
             match e.Event.op with
             | Event.Call _ | Event.Read _ | Event.Write _ ->
                 clocks.(i) <- Some (Vclock.copy vc)
             | _ -> ());
         let ok = ref true in
         Array.iteri
           (fun i ci ->
             Array.iteri
               (fun j cj ->
                 match (ci, cj) with
                 | Some ci, Some cj when i < j ->
                     if Vclock.leq ci cj <> reachable i j then ok := false
                 | _ -> ())
               clocks)
           clocks;
         !ok))

let suite =
  ( "hb",
    [
      clocks_match_reference;
      Alcotest.test_case "fig3" `Quick fig3;
      Alcotest.test_case "program order" `Quick program_order;
      Alcotest.test_case "unsynchronized concurrent" `Quick
        unsynchronized_threads_concurrent;
      Alcotest.test_case "lock edges" `Quick lock_edges;
      Alcotest.test_case "different locks no edge" `Quick
        lock_no_edge_without_handoff;
      Alcotest.test_case "fork edge" `Quick fork_edge;
      Alcotest.test_case "snapshot stability" `Quick snapshot_stability;
      Alcotest.test_case "snapshot shared in segment" `Quick
        snapshot_shared_within_segment;
    ] )
