open Crd
module Gen = QCheck2.Gen

let qcheck ?(count = 500) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let check_roundtrip () =
  List.iter
    (fun v ->
      match Value.parse (Value.to_string v) with
      | Ok v' ->
          Alcotest.(check bool)
            (Printf.sprintf "roundtrip %s" (Value.to_string v))
            true (Value.equal v v')
      | Error e -> Alcotest.failf "parse failed on %s: %s" (Value.to_string v) e)
    [
      Value.Nil;
      Value.Bool true;
      Value.Bool false;
      Value.Int 0;
      Value.Int (-42);
      Value.Int max_int;
      Value.Str "";
      Value.Str "a.com";
      Value.Str "with \"quotes\" and \\ backslash";
      Value.Str "tab\tnewline\n";
      Value.Ref 0;
      Value.Ref 991;
    ]

let check_parse_errors () =
  List.iter
    (fun s ->
      match Value.parse s with
      | Ok v -> Alcotest.failf "expected error on %S, got %s" s (Value.to_string v)
      | Error _ -> ())
    [ ""; "\"unterminated"; "@x"; "zzz"; "12a"; "@" ]

let check_nil () =
  Alcotest.(check bool) "nil is nil" true (Value.is_nil Value.Nil);
  Alcotest.(check bool) "0 is not nil" false (Value.is_nil (Value.Int 0));
  Alcotest.(check bool) "nil < 0" true (Value.lt Value.Nil (Value.Int 0))

let suite =
  ( "value",
    [
      Alcotest.test_case "roundtrip" `Quick check_roundtrip;
      Alcotest.test_case "parse errors" `Quick check_parse_errors;
      Alcotest.test_case "nil" `Quick check_nil;
      qcheck "compare is a total order (antisym + trans spot)"
        (Gen.triple Generators.value Generators.value Generators.value)
        (fun (a, b, c) ->
          let ab = Value.compare a b and ba = Value.compare b a in
          (ab = -ba || (ab = 0 && ba = 0))
          && (not (Value.compare a b <= 0 && Value.compare b c <= 0))
             || Value.compare a c <= 0);
      qcheck "equal agrees with compare" (Gen.pair Generators.value Generators.value)
        (fun (a, b) -> Value.equal a b = (Value.compare a b = 0));
      qcheck "equal values hash equally"
        (Gen.pair Generators.value Generators.value) (fun (a, b) ->
          (not (Value.equal a b)) || Value.hash a = Value.hash b);
      qcheck "print/parse roundtrip" Generators.value (fun v ->
          match Value.parse (Value.to_string v) with
          | Ok v' -> Value.equal v v'
          | Error _ -> false);
    ] )
