open Crd

let shape meth args rets = { Model.meth; args; rets }
let i n = Value.Int n

let dict = Models.dictionary ()

let dict_apply () =
  let s0 = Model.Map [] in
  (* put(0, 1)/nil is defined at the empty map. *)
  (match dict.Model.apply s0 (shape "put" [ i 0; i 1 ] [ Value.Nil ]) with
  | Some (Model.Map [ (k, v) ]) ->
      Alcotest.(check bool) "inserted" true
        (Value.equal k (i 0) && Value.equal v (i 1))
  | _ -> Alcotest.fail "put undefined or wrong result");
  (* put(0, 1)/2 is undefined at the empty map (wrong previous value). *)
  Alcotest.(check bool) "put with wrong p undefined" true
    (dict.Model.apply s0 (shape "put" [ i 0; i 1 ] [ i 2 ]) = None);
  (* get(0)/nil holds at empty; get(0)/1 does not. *)
  Alcotest.(check bool) "get nil at empty" true
    (dict.Model.apply s0 (shape "get" [ i 0 ] [ Value.Nil ]) = Some s0);
  Alcotest.(check bool) "get 1 undefined" true
    (dict.Model.apply s0 (shape "get" [ i 0 ] [ i 1 ]) = None);
  (* size()/0 at empty. *)
  Alcotest.(check bool) "size 0" true
    (dict.Model.apply s0 (shape "size" [] [ i 0 ]) = Some s0)

let dict_commute_ground_truth () =
  (* Definition 3.1 decided by state enumeration. *)
  let c a b = Model.commute dict a b in
  Alcotest.(check bool) "different keys" true
    (c (shape "put" [ i 0; i 1 ] [ Value.Nil ]) (shape "put" [ i 1; i 1 ] [ Value.Nil ]));
  Alcotest.(check bool) "same key real writes" false
    (c (shape "put" [ i 0; i 1 ] [ Value.Nil ]) (shape "put" [ i 0; i 2 ] [ i 1 ]));
  Alcotest.(check bool) "resize vs size" false
    (c (shape "put" [ i 0; i 1 ] [ Value.Nil ]) (shape "size" [] [ i 0 ]));
  Alcotest.(check bool) "gets commute" true
    (c (shape "get" [ i 0 ] [ i 1 ]) (shape "get" [ i 0 ] [ i 1 ]))

let counter_adds_commute () =
  let m = Models.counter () in
  List.iter
    (fun (d1, d2) ->
      Alcotest.(check bool)
        (Printf.sprintf "add %d / add %d" d1 d2)
        true
        (Model.commute m (shape "add" [ i d1 ] []) (shape "add" [ i d2 ] [])))
    [ (1, 2); (-1, 2); (0, 0); (-2, -2) ]

let register_is_classic_races () =
  let m = Models.register () in
  Alcotest.(check bool) "writes do not commute" false
    (Model.commute m (shape "write" [ i 1 ] []) (shape "write" [ i 2 ] []));
  Alcotest.(check bool) "write/read do not commute" false
    (Model.commute m (shape "write" [ i 2 ] []) (shape "read" [] [ i 1 ]));
  Alcotest.(check bool) "reads commute" true
    (Model.commute m (shape "read" [] [ i 1 ]) (shape "read" [] [ i 1 ]))

let fifo_empty_deqs_commute () =
  let m = Models.fifo () in
  Alcotest.(check bool) "both-nil deqs commute" true
    (Model.commute m (shape "deq" [] [ Value.Nil ]) (shape "deq" [] [ Value.Nil ]));
  (* Two deqs with the same return commute as partial maps (both orders
     are defined exactly when the first two elements equal that return);
     differing returns do not. *)
  Alcotest.(check bool) "equal-return deqs commute" true
    (Model.commute m (shape "deq" [] [ i 1 ]) (shape "deq" [] [ i 1 ]));
  Alcotest.(check bool) "different-return deqs do not" false
    (Model.commute m (shape "deq" [] [ i 1 ]) (shape "deq" [] [ i 2 ]));
  Alcotest.(check bool) "enqs do not commute" false
    (Model.commute m (shape "enq" [ i 1 ] []) (shape "enq" [ i 2 ] []))

(* Definition 4.2 for every shipped specification, decided exhaustively
   against the executable models. *)
let soundness_cases =
  List.map
    (fun (name, spec, model) ->
      Alcotest.test_case (name ^ " spec is sound (Def 4.2)") `Quick (fun () ->
          let v = Soundness.check spec model in
          if v.Soundness.unsound <> [] then
            Alcotest.failf "unsound: %a" Soundness.pp_verdict v;
          Alcotest.(check bool) "checked some pairs" true
            (v.Soundness.pairs_checked > 0)))
    [
      ("dictionary", Stdspecs.dictionary (), Models.dictionary ());
      ("set", Stdspecs.set (), Models.set ());
      ("counter", Stdspecs.counter (), Models.counter ());
      ("register", Stdspecs.register (), Models.register ());
      ("fifo", Stdspecs.fifo (), Models.fifo ());
      ("bag", Stdspecs.bag (), Models.bag ());
    ]

(* An intentionally unsound specification is caught. *)
let unsound_caught () =
  let methods =
    [
      Signature.make ~meth:"put" ~args:[ "k"; "v" ] ~rets:[ "p" ] ();
      Signature.make ~meth:"get" ~args:[ "k" ] ~rets:[ "v" ] ();
      Signature.make ~meth:"size" ~rets:[ "r" ] ();
    ]
  in
  (* Claim all puts commute — false. *)
  let spec =
    Result.get_ok
      (Spec.make ~name:"bad" ~methods
         [ ("put", "put", Formula.True) ])
  in
  let v = Soundness.check spec (Models.dictionary ()) in
  Alcotest.(check bool) "unsound pairs found" true (v.Soundness.unsound <> [])

let commute_symmetric () =
  let m = Models.dictionary () in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if Model.commute m a b <> Model.commute m b a then
            Alcotest.failf "commute not symmetric on %a / %a" Model.pp_shape a
              Model.pp_shape b)
        m.Model.shapes)
    (List.filteri (fun i _ -> i mod 7 = 0) m.Model.shapes)

let suite =
  ( "semantics",
    [
      Alcotest.test_case "dictionary effects (Fig 5)" `Quick dict_apply;
      Alcotest.test_case "dictionary ground truth" `Quick dict_commute_ground_truth;
      Alcotest.test_case "counter adds commute" `Quick counter_adds_commute;
      Alcotest.test_case "register = classic races" `Quick register_is_classic_races;
      Alcotest.test_case "fifo deq/deq" `Quick fifo_empty_deqs_commute;
      Alcotest.test_case "unsound spec caught" `Quick unsound_caught;
      Alcotest.test_case "Model.commute symmetric" `Quick commute_symmetric;
    ]
    @ soundness_cases )
