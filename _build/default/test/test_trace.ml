open Crd
module Gen = QCheck2.Gen

let qcheck ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let obj = Obj_id.make ~name:"m" 0

let builder () =
  let t = Trace.create () in
  Alcotest.(check int) "empty" 0 (Trace.length t);
  for i = 0 to 99 do
    Trace.append t (Event.read (Tid.of_int (i mod 3)) (Mem_loc.Global "x"))
  done;
  Alcotest.(check int) "length" 100 (Trace.length t);
  Alcotest.(check int) "num_threads" 3 (Trace.num_threads t);
  let count = ref 0 in
  Trace.iter t ~f:(fun i e ->
      Alcotest.(check int) "index order" !count i;
      incr count;
      Alcotest.(check bool) "tid" true (Tid.to_int e.Event.tid = i mod 3));
  Alcotest.(check int) "iterated all" 100 !count

let get_bounds () =
  let t = Trace.of_list [ Event.read Tid.main (Mem_loc.Global "x") ] in
  Alcotest.check_raises "negative" (Invalid_argument "Trace.get: out of bounds")
    (fun () -> ignore (Trace.get t (-1)));
  Alcotest.check_raises "past end" (Invalid_argument "Trace.get: out of bounds")
    (fun () -> ignore (Trace.get t 1))

let num_threads_counts_forked () =
  let t = Trace.of_list [ Event.fork Tid.main (Tid.of_int 5) ] in
  Alcotest.(check int) "forked child counted" 6 (Trace.num_threads t)

let action_pp () =
  let a =
    Action.make ~obj ~meth:"put"
      ~args:[ Value.Str "a.com"; Value.Ref 1 ]
      ~rets:[ Value.Nil ] ()
  in
  Alcotest.(check string) "action syntax" "m.put(\"a.com\", @1)/nil"
    (Action.to_string a);
  Alcotest.(check int) "arity" 3 (Action.arity a);
  Alcotest.(check int) "slots" 3 (List.length (Action.slots a))

let text_roundtrip_manual () =
  let src =
    "# a comment\n\
     T0 fork T1\n\
     T1 call m.put(\"a.com\", @1) / nil\n\
     T1 call m.size() / 1\n\
     T0 read global:counter\n\
     T0 write field:m.count\n\
     T1 read slot:m.data[\"a.com\"]\n\
     T0 acquire lk\n\
     T0 release lk\n\
     T0 join T1\n"
  in
  match Trace_text.parse src with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok t -> (
      Alcotest.(check int) "events" 9 (Trace.length t);
      let printed = Trace_text.to_string t in
      match Trace_text.parse printed with
      | Error e -> Alcotest.failf "reparse: %s" e
      | Ok t' ->
          Alcotest.(check int) "same length" (Trace.length t) (Trace.length t');
          List.iter2
            (fun a b ->
              Alcotest.(check bool)
                (Fmt.str "event %a = %a" Event.pp a Event.pp b)
                true (Event.equal a b))
            (Trace.to_list t) (Trace.to_list t'))

let text_errors () =
  List.iter
    (fun src ->
      match Trace_text.parse src with
      | Ok _ -> Alcotest.failf "expected parse error on %S" src
      | Error e ->
          Alcotest.(check bool) "error has line number" true
            (String.length e > 5 && String.sub e 0 5 = "line "))
    [
      "T0 frob x";
      "call m.put(1)/2";
      "T0 call m.put(1";
      "T0 read nonsense:x";
      "T0 join";
      "T0 acquire";
      "Tx read global:g";
    ]

let interning () =
  let src = "T0 call a.get(1) / nil\nT0 call b.get(1) / nil\nT0 call a.size() / 0\n" in
  match Trace_text.parse src with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok t -> (
      match List.map (fun (e : Event.t) -> e.op) (Trace.to_list t) with
      | [ Event.Call a1; Event.Call a2; Event.Call a3 ] ->
          Alcotest.(check bool) "a == a" true (Obj_id.equal a1.obj a3.obj);
          Alcotest.(check bool) "a != b" false (Obj_id.equal a1.obj a2.obj)
      | _ -> Alcotest.fail "unexpected trace shape")

let suite =
  ( "trace",
    [
      Alcotest.test_case "builder" `Quick builder;
      Alcotest.test_case "get bounds" `Quick get_bounds;
      Alcotest.test_case "num_threads counts forked" `Quick num_threads_counts_forked;
      Alcotest.test_case "action pp" `Quick action_pp;
      Alcotest.test_case "text roundtrip (manual)" `Quick text_roundtrip_manual;
      Alcotest.test_case "text errors" `Quick text_errors;
      Alcotest.test_case "object interning" `Quick interning;
      (* Object/lock identities are interned (renumbered) by the parser,
         so round-tripping is checked on the printed form, which is
         insensitive to ids. *)
      qcheck "text roundtrip (random)"
        (Generators.dict_trace ~threads:3 ~objects:2 ~len:40) (fun t ->
          let printed = Trace_text.to_string t in
          match Trace_text.parse printed with
          | Error _ -> false
          | Ok t' ->
              Trace.length t = Trace.length t'
              && String.equal printed (Trace_text.to_string t'));
    ] )
