open Crd
module Gen = QCheck2.Gen

let qcheck ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let dict_repr = Result.get_ok (Repr.of_spec (Stdspecs.dictionary ()))
let repr_for _ = Some dict_repr

let run trace =
  let a = Atomicity.create ~repr_for () in
  Trace.iter trace ~f:(fun index e -> ignore (Atomicity.step a ~index e));
  a

let parse src = Result.get_ok (Trace_text.parse src)

(* Two interleaved get-then-put transactions on the same key: the classic
   non-serializable pattern (lost update). *)
let lost_update_interleaved () =
  let a =
    run
      (parse
         "T0 fork T1\n\
          T0 fork T2\n\
          T1 begin\n\
          T2 begin\n\
          T1 call d.get(1) / 0\n\
          T2 call d.get(1) / 0\n\
          T1 call d.put(1, 1) / 0\n\
          T2 call d.put(1, 1) / 0\n\
          T1 end\n\
          T2 end\n")
  in
  Alcotest.(check int) "one violation" 1 (List.length (Atomicity.violations a))

(* The same two transactions run back to back: serializable, even though
   they are unordered by happens-before (a commutativity RACE exists, but
   no atomicity violation — the executions differ only in which
   serialization happened). *)
let lost_update_serial () =
  let a =
    run
      (parse
         "T0 fork T1\n\
          T0 fork T2\n\
          T1 begin\n\
          T1 call d.get(1) / 0\n\
          T1 call d.put(1, 1) / 0\n\
          T1 end\n\
          T2 begin\n\
          T2 call d.get(1) / 1\n\
          T2 call d.put(1, 2) / 1\n\
          T2 end\n")
  in
  Alcotest.(check int) "no violation" 0 (List.length (Atomicity.violations a))

(* Commuting operations inside overlapping transactions are fine: the
   puts hit different keys. *)
let commuting_overlap () =
  let a =
    run
      (parse
         "T0 fork T1\n\
          T0 fork T2\n\
          T1 begin\n\
          T2 begin\n\
          T1 call d.get(1) / 0\n\
          T2 call d.get(2) / 0\n\
          T1 call d.put(1, 1) / 0\n\
          T2 call d.put(2, 1) / 0\n\
          T1 end\n\
          T2 end\n")
  in
  Alcotest.(check int) "no violation" 0 (List.length (Atomicity.violations a))

(* Size is invisible to overwriting puts (the Fig 7 conflict structure
   carries over to atomicity checking). *)
let size_vs_overwrite () =
  let a =
    run
      (parse
         "T0 fork T1\n\
          T1 begin\n\
          T1 call d.size() / 1\n\
          T0 call d.put(1, 5) / 2\n\
          T1 call d.size() / 1\n\
          T1 end\n")
  in
  Alcotest.(check int) "overwriting put does not break size txn" 0
    (List.length (Atomicity.violations a));
  (* An inserting put between the two sizes does. *)
  let a =
    run
      (parse
         "T0 fork T1\n\
          T1 begin\n\
          T1 call d.size() / 1\n\
          T0 call d.put(9, 5) / nil\n\
          T1 call d.size() / 2\n\
          T1 end\n")
  in
  Alcotest.(check int) "resizing put breaks the size txn" 1
    (List.length (Atomicity.violations a))

(* Velodrome-style low-level check on reads/writes. *)
let rw_violation () =
  let a =
    run
      (parse
         "T0 fork T1\n\
          T1 begin\n\
          T1 read global:x\n\
          T0 write global:x\n\
          T1 write global:x\n\
          T1 end\n")
  in
  Alcotest.(check int) "stale read-modify-write" 1
    (List.length (Atomicity.violations a))

let rw_serial_ok () =
  let a =
    run
      (parse
         "T0 fork T1\n\
          T0 write global:x\n\
          T1 begin\n\
          T1 read global:x\n\
          T1 write global:x\n\
          T1 end\n\
          T0 read global:x\n")
  in
  Alcotest.(check int) "serial rw ok" 0 (List.length (Atomicity.violations a))

(* Without atomic blocks every action is a unary transaction; edges only
   ever point forward in trace order, so no cycle can form. *)
let unary_never_violates =
  qcheck ~count:300 "unary transactions never violate atomicity"
    (Generators.dict_trace ~threads:4 ~objects:2 ~len:60) (fun trace ->
      Atomicity.violations (run trace) = [])

let sched_atomic_markers () =
  let trace = Trace.create () in
  Sched.run ~sink:(Trace.append trace) (fun () ->
      Sched.atomic (fun () ->
          Sched.atomic (fun () -> ());
          Sched.emit Event.(Read (Mem_loc.Global "x"))));
  let ops = List.map (fun (e : Event.t) -> e.op) (Trace.to_list trace) in
  match ops with
  | [ Event.Begin; Event.Read _; Event.End ] -> ()
  | _ -> Alcotest.failf "nesting not flattened:@.%s" (Trace_text.to_string trace)

let begin_end_text_roundtrip () =
  let src = "T0 begin\nT0 call d.get(1) / nil\nT0 end\n" in
  match Trace_text.parse src with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok t -> Alcotest.(check string) "roundtrip" src (Trace_text.to_string t)

let analyzer_integration () =
  let an =
    Analyzer.with_stdspecs
      ~config:
        { Analyzer.rd2 = `Off; direct = false; fasttrack = false; djit = false; atomicity = true }
      ()
  in
  Sched.run ~seed:3L ~sink:(Analyzer.sink an) (fun () ->
      let d = Monitored.Dict.create ~name:"dictionary:d" () in
      let bump () =
        Sched.atomic (fun () ->
            let v = Monitored.Dict.get d (Value.Int 1) in
            let n = match v with Value.Int n -> n | _ -> 0 in
            ignore (Monitored.Dict.put d (Value.Int 1) (Value.Int (n + 1))))
      in
      (* Many concurrent bumpers: some interleaving will tangle. *)
      for _ = 1 to 6 do
        ignore (Sched.fork bump)
      done;
      Sched.join_all ());
  Alcotest.(check bool) "analyzer surfaces violations" true
    (Analyzer.atomicity_violations an <> [])

(* Acceptance soundness against a brute-force oracle: when the checker
   reports no violation on a trace of whole transactions, some serial
   order of those transactions replays successfully (every recorded
   return value stays valid) on the executable dictionary model. *)

let model =
  Models.dictionary
    ~keys:[ Value.Int 0; Value.Int 1 ]
    ~values:[ Value.Nil; Value.Int 1; Value.Int 2 ]
    ()

(* Generate: n threads, each one atomic transaction of a few dictionary
   operations; interleave them randomly; returns recorded against the
   evolving shared state (so the trace is a real execution). *)
let txn_trace_gen =
  let open Gen in
  let* seed = int_range 0 0xFFFFFF in
  return
    (let prng = Prng.make (Int64.of_int seed) in
     let obj = Obj_id.make ~name:"dictionary:d" 0 in
     let threads = 2 + Prng.int prng 2 in
     let ops_left = Array.init threads (fun _ -> 2 + Prng.int prng 2) in
     let started = Array.make threads false in
     let state = Hashtbl.create 4 in
     let keys = [| Value.Int 0; Value.Int 1 |] in
     let vals = [| Value.Nil; Value.Int 1; Value.Int 2 |] in
     let trace = Trace.create () in
     for t = 1 to threads do
       Trace.append trace (Event.fork Tid.main (Tid.of_int t))
     done;
     let live () =
       Array.to_list (Array.mapi (fun i n -> (i, n)) ops_left)
       |> List.filter_map (fun (i, n) -> if n > 0 then Some i else None)
     in
     let rec go () =
       match live () with
       | [] -> ()
       | alive ->
           let i = List.nth alive (Prng.int prng (List.length alive)) in
           let tid = Tid.of_int (i + 1) in
           if not started.(i) then begin
             started.(i) <- true;
             Trace.append trace (Event.begin_ tid)
           end;
           let k = keys.(Prng.int prng 2) in
           (match Prng.int prng 3 with
           | 0 ->
               let v = vals.(Prng.int prng 3) in
               let p =
                 Option.value ~default:Value.Nil (Hashtbl.find_opt state k)
               in
               if Value.is_nil v then Hashtbl.remove state k
               else Hashtbl.replace state k v;
               Trace.append trace
                 (Event.call tid
                    (Action.make ~obj ~meth:"put" ~args:[ k; v ] ~rets:[ p ] ()))
           | 1 ->
               let v =
                 Option.value ~default:Value.Nil (Hashtbl.find_opt state k)
               in
               Trace.append trace
                 (Event.call tid
                    (Action.make ~obj ~meth:"get" ~args:[ k ] ~rets:[ v ] ()))
           | _ ->
               Trace.append trace
                 (Event.call tid
                    (Action.make ~obj ~meth:"size"
                       ~rets:[ Value.Int (Hashtbl.length state) ]
                       ())));
           ops_left.(i) <- ops_left.(i) - 1;
           if ops_left.(i) = 0 then Trace.append trace (Event.end_ tid);
           go ()
     in
     go ();
     trace)

let transactions_of trace =
  let txns = Hashtbl.create 4 in
  Trace.iter_events trace ~f:(fun (e : Event.t) ->
      match e.op with
      | Event.Call a ->
          let key = Tid.to_int e.tid in
          let l = Option.value ~default:[] (Hashtbl.find_opt txns key) in
          Hashtbl.replace txns key (a :: l)
      | _ -> ());
  Hashtbl.fold (fun _ ops acc -> List.rev ops :: acc) txns []

let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          List.map
            (fun p -> x :: p)
            (permutations (List.filter (fun y -> y != x) l)))
        l

let replay_serial txns_in_order =
  List.fold_left
    (fun st (a : Action.t) ->
      match st with
      | None -> None
      | Some s ->
          model.Model.apply s
            { Model.meth = a.Action.meth; args = a.Action.args; rets = a.Action.rets })
    (Some model.Model.initial)
    (List.concat txns_in_order)

let acceptance_sound =
  qcheck ~count:500
    "no violation => a serial order replays (acceptance soundness)"
    txn_trace_gen
    (fun trace ->
      let a = run trace in
      if Atomicity.violations a <> [] then true (* only acceptance checked *)
      else
        List.exists
          (fun perm -> replay_serial perm <> None)
          (permutations (transactions_of trace)))

let suite =
  ( "atomicity",
    [
      acceptance_sound;
      Alcotest.test_case "lost update (interleaved)" `Quick
        lost_update_interleaved;
      Alcotest.test_case "lost update (serial) ok" `Quick lost_update_serial;
      Alcotest.test_case "commuting overlap ok" `Quick commuting_overlap;
      Alcotest.test_case "size vs overwrite" `Quick size_vs_overwrite;
      Alcotest.test_case "read-write violation" `Quick rw_violation;
      Alcotest.test_case "read-write serial ok" `Quick rw_serial_ok;
      Alcotest.test_case "Sched.atomic markers" `Quick sched_atomic_markers;
      Alcotest.test_case "begin/end trace text" `Quick begin_end_text_roundtrip;
      Alcotest.test_case "analyzer integration" `Quick analyzer_integration;
      unary_never_violates;
    ] )
