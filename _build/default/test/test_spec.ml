open Crd
module Gen = QCheck2.Gen

let qcheck ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let v side slot name = Atom.Var { Atom.side; slot; name }
let atom pred lhs rhs = Formula.Atom { Atom.pred; lhs; rhs }

let dict = Stdspecs.dictionary ()
let obj = Obj_id.make ~name:"o" 0

let act meth args rets = Action.make ~obj ~meth ~args ~rets ()
let put k vv p = act "put" [ k; vv ] [ p ]
let get k vv = act "get" [ k ] [ vv ]
let size r = act "size" [] [ Value.Int r ]

(* Fig 6 evaluated on concrete actions. *)
let dict_commute () =
  let i = fun n -> Value.Int n in
  let checks =
    [
      (* different keys commute *)
      (put (i 1) (i 5) Value.Nil, put (i 2) (i 6) Value.Nil, true);
      (* same key, both no-op writes commute *)
      (put (i 1) (i 5) (i 5), put (i 1) (i 5) (i 5), true);
      (* same key, real write: no *)
      (put (i 1) (i 5) Value.Nil, put (i 1) (i 6) (i 5), false);
      (* put/get same key, put is a no-op: yes *)
      (put (i 1) (i 5) (i 5), get (i 1) (i 5), true);
      (* put/get same key, put changes value: no *)
      (put (i 1) (i 6) (i 5), get (i 1) (i 6), false);
      (* put/get different keys: yes *)
      (put (i 1) (i 6) (i 5), get (i 2) Value.Nil, true);
      (* put that inserts vs size: no *)
      (put (i 1) (i 5) Value.Nil, size 1, false);
      (* put that overwrites vs size: yes *)
      (put (i 1) (i 6) (i 5), size 1, true);
      (* put that removes vs size: no *)
      (put (i 1) Value.Nil (i 5), size 1, false);
      (* gets and sizes always commute *)
      (get (i 1) (i 5), get (i 1) (i 5), true);
      (get (i 1) (i 5), size 0, true);
      (size 0, size 3, true);
    ]
  in
  List.iter
    (fun (a, b, expected) ->
      Alcotest.(check bool)
        (Fmt.str "%a <> %a" Action.pp a Action.pp b)
        expected (Spec.commute dict a b);
      (* Specifications are symmetric predicates on actions. *)
      Alcotest.(check bool)
        (Fmt.str "%a <> %a (sym)" Action.pp b Action.pp a)
        expected (Spec.commute dict b a))
    checks

let unknown_method () =
  Alcotest.check_raises "unknown method"
    (Invalid_argument "Spec.commute: method pop not declared in spec dictionary")
    (fun () -> ignore (Spec.commute dict (act "pop" [] []) (size 0)))

let arity_mismatch () =
  match Spec.commute dict (act "put" [ Value.Int 1 ] []) (size 0) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

(* Substring containment, for loose error-message checks. *)
let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.equal (String.sub haystack i nn) needle || go (i + 1))
  in
  go 0

let make_rejects_undeclared () =
  let m = Signature.make ~meth:"m" ~args:[ "x" ] () in
  match Spec.make ~name:"s" ~methods:[ m ] [ ("m", "nope", Formula.True) ] with
  | Error e ->
      Alcotest.(check bool) "mentions method" true (contains e "nope")
  | Ok _ -> Alcotest.fail "expected error"

let make_rejects_out_of_range () =
  let m = Signature.make ~meth:"m" ~args:[ "x" ] () in
  let phi = atom Atom.Ne (v Atom.Side.Fst 3 "x1") (v Atom.Side.Snd 0 "x2") in
  match Spec.make ~name:"s" ~methods:[ m ] [ ("m", "m", phi) ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected slot-range error"

let make_rejects_asymmetric () =
  (* phi(m; m) = (x1 == 0), not symmetric. *)
  let m = Signature.make ~meth:"m" ~args:[ "x" ] () in
  let phi = atom Atom.Eq (v Atom.Side.Fst 0 "x1") (Atom.Const (Value.Int 0)) in
  match Spec.make ~name:"s" ~methods:[ m ] [ ("m", "m", phi) ] with
  | Error e ->
      Alcotest.(check bool) "mentions symmetry" true
        (contains e "symmetric")
  | Ok _ -> Alcotest.fail "expected symmetry error"

let make_rejects_duplicates () =
  let m = Signature.make ~meth:"m" () in
  match
    Spec.make ~name:"s" ~methods:[ m ]
      [ ("m", "m", Formula.True); ("m", "m", Formula.False) ]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected duplicate error"

let default_is_conservative () =
  let m1 = Signature.make ~meth:"a" () and m2 = Signature.make ~meth:"b" () in
  let spec = Result.get_ok (Spec.make ~name:"s" ~methods:[ m1; m2 ] []) in
  Alcotest.(check bool) "unspecified pair does not commute" false
    (Spec.commute spec (act "a" [] []) (act "b" [] []))

let formula_orientation () =
  (* formula t m1 m2 must orient Fst to m1 regardless of storage order. *)
  let k1 = v Atom.Side.Fst 0 "k1" and k2 = v Atom.Side.Snd 0 "k2" in
  ignore k1;
  ignore k2;
  let phi_pg = Spec.formula dict "put" "get" in
  let phi_gp = Spec.formula dict "get" "put" in
  Alcotest.(check bool) "flip relation" true
    (Formula.equal phi_pg (Formula.flip_sides phi_gp))

let flip_involution =
  qcheck "flip_sides is an involution"
    (Gen.bind (Gen.return ()) (fun () -> Generators.ecl ~arity1:3 ~arity2:2 2))
    (fun f -> Formula.equal f (Formula.flip_sides (Formula.flip_sides f)))

let flip_semantics =
  qcheck "flip_sides swaps the argument tuples"
    (Gen.triple
       (Generators.ecl ~arity1:2 ~arity2:2 2)
       (Gen.array_size (Gen.return 2) Generators.small_value)
       (Gen.array_size (Gen.return 2) Generators.small_value))
    (fun (f, w1, w2) ->
      Formula.eval_pair f w1 w2
      = Formula.eval_pair (Formula.flip_sides f) w2 w1)

let pp_parseable =
  qcheck ~count:60 "Spec.pp output reparses to an equivalent spec"
    Generators.spec (fun spec ->
      let printed = Fmt.str "%a" Spec.pp spec in
      match Spec_parser.parse_one printed with
      | Error e -> QCheck2.Test.fail_reportf "reparse failed: %s@.%s" e printed
      | Ok spec' ->
          List.for_all2
            (fun (m1, m2, phi) (m1', m2', phi') ->
              String.equal m1 m1' && String.equal m2 m2'
              && Formula.equal phi phi')
            (Spec.pairs spec) (Spec.pairs spec'))

let suite =
  ( "spec",
    [
      Alcotest.test_case "dictionary commute (Fig 6)" `Quick dict_commute;
      Alcotest.test_case "unknown method" `Quick unknown_method;
      Alcotest.test_case "arity mismatch" `Quick arity_mismatch;
      Alcotest.test_case "make rejects undeclared" `Quick make_rejects_undeclared;
      Alcotest.test_case "make rejects bad slots" `Quick make_rejects_out_of_range;
      Alcotest.test_case "make rejects asymmetric self-pair" `Quick
        make_rejects_asymmetric;
      Alcotest.test_case "make rejects duplicate pairs" `Quick
        make_rejects_duplicates;
      Alcotest.test_case "default is conservative" `Quick default_is_conservative;
      Alcotest.test_case "formula orientation" `Quick formula_orientation;
      flip_involution;
      flip_semantics;
      pp_parseable;
    ] )
