(* Mutation testing of the soundness harness: weakening a shipped
   specification (claiming more commutativity than true by replacing an atom
   with [true]) must be caught by the Definition 4.2 checker. This guards
   against the harness silently passing everything. *)

open Crd

(* All single-position mutants of a formula in which one atom is replaced
   by a constant. *)
let mutants_of phi ~replacement =
  let n = List.length (Formula.atoms phi) in
  List.init n (fun target ->
      let i = ref (-1) in
      Formula.map_atoms
        (fun a ->
          incr i;
          if !i = target then replacement else Formula.Atom a)
        phi)

let spec_mutants spec ~replacement =
  List.concat_map
    (fun (m1, m2, phi) ->
      List.filter_map
        (fun phi' ->
          match
            Spec.make ~name:(Spec.name spec) ~methods:(Spec.methods spec)
              (List.map
                 (fun (a, b, f) ->
                   if String.equal a m1 && String.equal b m2 then (a, b, phi')
                   else (a, b, f))
                 (Spec.pairs spec))
          with
          | Ok s -> Some (m1, m2, s)
          | Error _ -> None (* e.g. mutant broke self-pair symmetry *))
        (mutants_of phi ~replacement:(Formula.conj [ replacement ])))
    (Spec.pairs spec)

let check_weakening_caught name spec model () =
  let mutants = spec_mutants spec ~replacement:Formula.True in
  Alcotest.(check bool)
    (name ^ " has mutants to test")
    true (mutants <> []);
  let caught =
    List.filter
      (fun (_, _, s) -> not (Soundness.is_sound s model))
      mutants
  in
  (* Every mutant that is still accepted must genuinely be sound (a
     weakened atom can be semantically redundant); but across the whole
     spec, a majority of the atoms are load-bearing. *)
  Alcotest.(check bool)
    (Printf.sprintf "%s: weakening is caught (%d/%d mutants unsound)" name
       (List.length caught) (List.length mutants))
    true
    (2 * List.length caught >= List.length mutants)

(* Strengthening (replacing an atom by [false]) can never create
   unsoundness: a formula that claims less commutativity stays sound. *)
let strengthening_stays_sound name spec model () =
  List.iter
    (fun (m1, m2, s) ->
      if not (Soundness.is_sound s model) then
        Alcotest.failf "%s: strengthened mutant of (%s, %s) became unsound"
          name m1 m2)
    (spec_mutants spec ~replacement:Formula.False)

(* A specific, documented mutant: dropping the no-op condition from the
   put/get clause of Fig 6 (claiming puts never disturb gets) must be
   flagged, and the witness pair must involve put and get. *)
let fig6_put_get_mutant () =
  let src =
    {|
object dictionary {
  method put(k, v) / p;
  method get(k) / v;
  method size() / r;

  commutes put(k1, v1) / p1 <> put(k2, v2) / p2
    when k1 != k2 || (v1 == p1 && v2 == p2);
  commutes put(k1, v1) / p1 <> get(k2) / v2 when true;
  commutes put(k1, v1) / p1 <> size() / r2
    when (v1 == nil && p1 == nil) || (v1 != nil && p1 != nil);
  commutes get(k1) / v1 <> get(k2) / v2 when true;
  commutes get(k1) / v1 <> size() / r2  when true;
  commutes size() / r1  <> size() / r2  when true;
}
|}
  in
  let spec = Result.get_ok (Spec_parser.parse_one src) in
  let verdict = Soundness.check spec (Models.dictionary ()) in
  Alcotest.(check bool) "mutant unsound" true (verdict.Soundness.unsound <> []);
  Alcotest.(check bool) "witness involves put/get" true
    (List.exists
       (fun ((a : Model.shape), (b : Model.shape)) ->
         let pair = List.sort compare [ a.Model.meth; b.Model.meth ] in
         pair = [ "get"; "put" ])
       verdict.Soundness.unsound)

let suite =
  let cases =
    [
      ("dictionary", Stdspecs.dictionary (), Models.dictionary ());
      ("set", Stdspecs.set (), Models.set ());
      ("fifo", Stdspecs.fifo (), Models.fifo ());
      ("bag", Stdspecs.bag (), Models.bag ());
    ]
  in
  ( "mutation",
    Alcotest.test_case "Fig 6 put/get mutant" `Quick fig6_put_get_mutant
    :: List.concat_map
         (fun (name, spec, model) ->
           [
             Alcotest.test_case (name ^ ": weakening caught") `Quick
               (check_weakening_caught name spec model);
             Alcotest.test_case (name ^ ": strengthening sound") `Quick
               (strengthening_stays_sound name spec model);
           ])
         cases )
