open Crd

let record ?(seed = 1L) body =
  let trace = Trace.create () in
  Sched.run ~seed ~sink:(Trace.append trace) body;
  trace

let determinism () =
  let body () =
    let d = Monitored.Dict.create ~name:"dictionary:d" () in
    for w = 0 to 3 do
      ignore
        (Sched.fork (fun () ->
             for k = 0 to 5 do
               ignore (Monitored.Dict.put d (Value.Int k) (Value.Int w))
             done))
    done;
    Sched.join_all ()
  in
  let t1 = record ~seed:99L body and t2 = record ~seed:99L body in
  Alcotest.(check string) "identical traces for identical seeds"
    (Trace_text.to_string t1) (Trace_text.to_string t2)

let seeds_differ () =
  let body () =
    let d = Monitored.Dict.create ~name:"dictionary:d" () in
    for w = 0 to 3 do
      ignore
        (Sched.fork (fun () ->
             for k = 0 to 5 do
               ignore (Monitored.Dict.put d (Value.Int k) (Value.Int w))
             done))
    done;
    Sched.join_all ()
  in
  let distinct = Hashtbl.create 8 in
  for seed = 1 to 8 do
    let t = record ~seed:(Int64.of_int seed) body in
    Hashtbl.replace distinct (Trace_text.to_string t) ()
  done;
  Alcotest.(check bool) "different seeds explore different interleavings"
    true
    (Hashtbl.length distinct > 1)

let join_waits () =
  let done_first = ref false in
  Sched.run (fun () ->
      let child =
        Sched.fork (fun () ->
            for _ = 1 to 10 do
              Sched.yield ()
            done;
            done_first := true)
      in
      Sched.join child;
      Alcotest.(check bool) "child finished before join returns" true !done_first)

let join_all_waits () =
  let finished = ref 0 in
  Sched.run (fun () ->
      for _ = 1 to 5 do
        ignore
          (Sched.fork (fun () ->
               Sched.yield ();
               incr finished))
      done;
      Sched.join_all ();
      Alcotest.(check int) "all children done" 5 !finished)

let mutual_exclusion () =
  Sched.run (fun () ->
      let l = Sched.new_lock () in
      let inside = ref 0 in
      let max_inside = ref 0 in
      for _ = 1 to 4 do
        ignore
          (Sched.fork (fun () ->
               for _ = 1 to 5 do
                 Sched.with_lock l (fun () ->
                     incr inside;
                     if !inside > !max_inside then max_inside := !inside;
                     Sched.yield ();
                     decr inside)
               done))
      done;
      Sched.join_all ();
      Alcotest.(check int) "never two inside" 1 !max_inside)

let unlock_not_held () =
  match
    Sched.run (fun () ->
        let l = Sched.new_lock () in
        Sched.unlock l)
  with
  | exception Sched.Thread_failure (_, Failure _) -> ()
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected a failure"

let deadlock_detected () =
  match
    Sched.run ~seed:5L (fun () ->
        let l1 = Sched.new_lock () and l2 = Sched.new_lock () in
        (* Force the classic ABBA deadlock deterministically with yields:
           both threads take their first lock before either takes its
           second. *)
        let t1 =
          Sched.fork (fun () ->
              Sched.lock l1;
              for _ = 1 to 10 do
                Sched.yield ()
              done;
              Sched.lock l2;
              Sched.unlock l2;
              Sched.unlock l1)
        in
        let t2 =
          Sched.fork (fun () ->
              Sched.lock l2;
              for _ = 1 to 10 do
                Sched.yield ()
              done;
              Sched.lock l1;
              Sched.unlock l1;
              Sched.unlock l2)
        in
        Sched.join t1;
        Sched.join t2)
  with
  | exception Sched.Deadlock _ -> ()
  | _ -> Alcotest.fail "expected Deadlock"

let thread_failure_propagates () =
  match Sched.run (fun () -> ignore (Sched.fork (fun () -> failwith "boom"))) with
  | exception Sched.Thread_failure (tid, Failure msg) ->
      Alcotest.(check string) "message" "boom" msg;
      Alcotest.(check int) "failing tid" 1 (Tid.to_int tid)
  | _ -> Alcotest.fail "expected Thread_failure"

let ops_outside_run_rejected () =
  match Sched.fork (fun () -> ()) with
  | exception Effect.Unhandled _ -> ()
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected failure outside run"

let nested_run_rejected () =
  match Sched.run (fun () -> Sched.run (fun () -> ())) with
  | exception Sched.Thread_failure (_, Failure _) -> ()
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected nested-run rejection"

let events_flow () =
  let trace = record (fun () ->
      let d = Monitored.Dict.create ~name:"dictionary:d" () in
      let t = Sched.fork (fun () -> ignore (Monitored.Dict.put d (Value.Int 1) (Value.Int 2))) in
      Sched.join t;
      ignore (Monitored.Dict.get d (Value.Int 1)))
  in
  let ops = List.map (fun (e : Event.t) -> e.op) (Trace.to_list trace) in
  match ops with
  | [ Event.Fork _; Event.Call put; Event.Join _; Event.Call get ] ->
      Alcotest.(check string) "put recorded" "put" put.Action.meth;
      Alcotest.(check string) "get recorded" "get" get.Action.meth;
      Alcotest.(check bool) "get sees the put" true
        (List.for_all2 Value.equal get.Action.rets [ Value.Int 2 ])
  | _ -> Alcotest.failf "unexpected trace:@.%s" (Trace_text.to_string trace)

let monitored_dict_semantics () =
  Sched.run (fun () ->
      let d = Monitored.Dict.create () in
      Alcotest.(check bool) "empty get" true
        (Value.is_nil (Monitored.Dict.get d (Value.Int 1)));
      Alcotest.(check bool) "first put returns nil" true
        (Value.is_nil (Monitored.Dict.put d (Value.Int 1) (Value.Str "a")));
      Alcotest.(check bool) "second put returns previous" true
        (Value.equal (Value.Str "a")
           (Monitored.Dict.put d (Value.Int 1) (Value.Str "b")));
      Alcotest.(check int) "size" 1 (Monitored.Dict.size d);
      Alcotest.(check bool) "remove via nil" true
        (Value.equal (Value.Str "b") (Monitored.Dict.put d (Value.Int 1) Value.Nil));
      Alcotest.(check int) "size after remove" 0 (Monitored.Dict.size d))

let monitored_fifo_semantics () =
  Sched.run (fun () ->
      let q = Monitored.Fifo.create () in
      Alcotest.(check bool) "empty deq" true (Value.is_nil (Monitored.Fifo.deq q));
      Monitored.Fifo.enq q (Value.Int 1);
      Monitored.Fifo.enq q (Value.Int 2);
      Alcotest.(check bool) "peek" true
        (Value.equal (Value.Int 1) (Monitored.Fifo.peek q));
      Alcotest.(check bool) "fifo order" true
        (Value.equal (Value.Int 1) (Monitored.Fifo.deq q));
      Alcotest.(check bool) "fifo order 2" true
        (Value.equal (Value.Int 2) (Monitored.Fifo.deq q)))

let shared_cells () =
  let trace = record (fun () ->
      let c = Monitored.Shared.create ~name:"cell" 0 in
      Monitored.Shared.set c 41;
      Monitored.Shared.update c succ;
      Alcotest.(check int) "value" 42 (Monitored.Shared.get c))
  in
  let reads, writes =
    Trace.fold trace ~init:(0, 0) ~f:(fun (r, w) _ (e : Event.t) ->
        match e.op with
        | Event.Read _ -> (r + 1, w)
        | Event.Write _ -> (r, w + 1)
        | _ -> (r, w))
  in
  Alcotest.(check (pair int int)) "reads/writes" (2, 2) (reads, writes)

let monitored_set_semantics () =
  Sched.run (fun () ->
      let s = Monitored.Set_obj.create () in
      Alcotest.(check bool) "add new" false (Monitored.Set_obj.add s (Value.Int 1));
      Alcotest.(check bool) "add again" true (Monitored.Set_obj.add s (Value.Int 1));
      Alcotest.(check bool) "contains" true
        (Monitored.Set_obj.contains s (Value.Int 1));
      Alcotest.(check int) "size" 1 (Monitored.Set_obj.size s);
      Alcotest.(check bool) "remove" true
        (Monitored.Set_obj.remove s (Value.Int 1));
      Alcotest.(check bool) "remove absent" false
        (Monitored.Set_obj.remove s (Value.Int 1));
      Alcotest.(check int) "size after" 0 (Monitored.Set_obj.size s))

let monitored_counter_register () =
  Sched.run (fun () ->
      let c = Monitored.Counter.create () in
      Monitored.Counter.add c 5;
      Monitored.Counter.add c (-2);
      Alcotest.(check int) "counter" 3 (Monitored.Counter.read c);
      let r = Monitored.Register.create () in
      Alcotest.(check bool) "initial nil" true
        (Value.is_nil (Monitored.Register.read r));
      Monitored.Register.write r (Value.Str "v");
      Alcotest.(check bool) "written" true
        (Value.equal (Value.Str "v") (Monitored.Register.read r)))

let monitored_bag_semantics () =
  Sched.run (fun () ->
      let b = Monitored.Bag.create () in
      Monitored.Bag.add b (Value.Int 1);
      Monitored.Bag.add b (Value.Int 1);
      Monitored.Bag.add b (Value.Int 2);
      Alcotest.(check int) "count" 2 (Monitored.Bag.count b (Value.Int 1));
      Alcotest.(check int) "size" 3 (Monitored.Bag.size b);
      Alcotest.(check bool) "remove present" true
        (Monitored.Bag.remove b (Value.Int 1));
      Alcotest.(check int) "count after" 1 (Monitored.Bag.count b (Value.Int 1));
      Alcotest.(check bool) "remove absent" false
        (Monitored.Bag.remove b (Value.Int 9));
      Alcotest.(check int) "size after" 2 (Monitored.Bag.size b))

(* Concurrent bag insertions commute — no commutativity races — while the
   same pattern on a set (membership-reporting add) races. *)
let bag_adds_commute_set_adds_race () =
  let run_with ~use_bag =
    let an = Analyzer.with_stdspecs () in
    Sched.run ~seed:9L ~sink:(Analyzer.sink an) (fun () ->
        if use_bag then begin
          let b = Monitored.Bag.create ~name:"bag:b" () in
          for _ = 1 to 4 do
            ignore (Sched.fork (fun () -> Monitored.Bag.add b (Value.Int 1)))
          done
        end
        else begin
          let s = Monitored.Set_obj.create ~name:"set:s" () in
          for _ = 1 to 4 do
            ignore (Sched.fork (fun () -> ignore (Monitored.Set_obj.add s (Value.Int 1))))
          done
        end;
        Sched.join_all ());
    List.length (Analyzer.rd2_races an)
  in
  Alcotest.(check int) "bag adds race-free" 0 (run_with ~use_bag:true);
  Alcotest.(check bool) "set adds race" true (run_with ~use_bag:false > 0)

let with_lock_releases_on_exception () =
  Sched.run (fun () ->
      let l = Sched.new_lock () in
      (try Sched.with_lock l (fun () -> failwith "inner") with Failure _ -> ());
      (* The lock must be free again. *)
      Sched.with_lock l (fun () -> ()))

let failure_mid_workload_is_reported () =
  let events = ref 0 in
  match
    Sched.run ~seed:3L ~sink:(fun _ -> incr events) (fun () ->
        let d = Monitored.Dict.create ~name:"dictionary:d" () in
        for w = 0 to 3 do
          ignore
            (Sched.fork (fun () ->
                 for k = 0 to 5 do
                   ignore (Monitored.Dict.put d (Value.Int k) (Value.Int w));
                   if w = 2 && k = 3 then failwith "injected"
                 done))
        done;
        Sched.join_all ())
  with
  | exception Sched.Thread_failure (_, Failure msg) ->
      Alcotest.(check string) "injected failure surfaces" "injected" msg;
      Alcotest.(check bool) "events flowed before the crash" true (!events > 0)
  | () -> Alcotest.fail "expected the injected failure to surface"

let many_threads () =
  (* A few hundred threads exercise the scheduler's queue growth. *)
  let sum = ref 0 in
  Sched.run ~seed:13L (fun () ->
      for i = 1 to 300 do
        ignore (Sched.fork (fun () -> sum := !sum + i))
      done;
      Sched.join_all ());
  Alcotest.(check int) "all ran" (300 * 301 / 2) !sum

let suite =
  ( "runtime",
    [
      Alcotest.test_case "monitored set semantics" `Quick monitored_set_semantics;
      Alcotest.test_case "monitored counter/register" `Quick
        monitored_counter_register;
      Alcotest.test_case "monitored bag semantics" `Quick monitored_bag_semantics;
      Alcotest.test_case "bag adds commute, set adds race" `Quick
        bag_adds_commute_set_adds_race;
      Alcotest.test_case "with_lock releases on exception" `Quick
        with_lock_releases_on_exception;
      Alcotest.test_case "failure mid-workload" `Quick
        failure_mid_workload_is_reported;
      Alcotest.test_case "many threads" `Quick many_threads;
      Alcotest.test_case "determinism" `Quick determinism;
      Alcotest.test_case "seeds differ" `Quick seeds_differ;
      Alcotest.test_case "join waits" `Quick join_waits;
      Alcotest.test_case "join_all waits" `Quick join_all_waits;
      Alcotest.test_case "mutual exclusion" `Quick mutual_exclusion;
      Alcotest.test_case "unlock not held" `Quick unlock_not_held;
      Alcotest.test_case "deadlock detected" `Quick deadlock_detected;
      Alcotest.test_case "thread failure propagates" `Quick
        thread_failure_propagates;
      Alcotest.test_case "ops outside run rejected" `Quick
        ops_outside_run_rejected;
      Alcotest.test_case "nested run rejected" `Quick nested_run_rejected;
      Alcotest.test_case "events flow" `Quick events_flow;
      Alcotest.test_case "monitored dict semantics" `Quick
        monitored_dict_semantics;
      Alcotest.test_case "monitored fifo semantics" `Quick
        monitored_fifo_semantics;
      Alcotest.test_case "shared cells" `Quick shared_cells;
    ] )
