open Crd
module Lockset = Crd_fasttrack.Lockset

let run trace =
  let d = Lockset.create () in
  Trace.iter trace ~f:(fun index (e : Event.t) ->
      match e.op with
      | Event.Acquire l -> Lockset.on_acquire d e.tid l
      | Event.Release l -> Lockset.on_release d e.tid l
      | Event.Read loc -> ignore (Lockset.on_read d ~index e.tid loc)
      | Event.Write loc -> ignore (Lockset.on_write d ~index e.tid loc)
      | _ -> ());
  d

let parse src = Result.get_ok (Trace_text.parse src)
let x = Mem_loc.Global "x"

let unprotected_writes_alarm () =
  let d =
    run (parse "T0 fork T1\nT1 write global:x\nT0 write global:x\n")
  in
  Alcotest.(check int) "alarm" 1 (List.length (Lockset.races d))

let consistent_discipline_ok () =
  let d =
    run
      (parse
         "T0 fork T1\n\
          T1 acquire l\n\
          T1 write global:x\n\
          T1 release l\n\
          T0 acquire l\n\
          T0 write global:x\n\
          T0 read global:x\n\
          T0 release l\n")
  in
  Alcotest.(check int) "no alarm" 0 (List.length (Lockset.races d))

let inconsistent_locks_alarm () =
  (* Each access holds *some* lock, but never the same one. The first
     accessor is exempt (its locks are not recorded), so the candidate
     set only drains to empty at the third access: {l2} inter {l1}. *)
  let d =
    run
      (parse
         "T0 fork T1\n\
          T1 acquire l1\n\
          T1 write global:x\n\
          T1 release l1\n\
          T0 acquire l2\n\
          T0 write global:x\n\
          T0 release l2\n\
          T1 acquire l1\n\
          T1 write global:x\n\
          T1 release l1\n")
  in
  Alcotest.(check int) "alarm" 1 (List.length (Lockset.races d))

(* Eraser's classic false positive: fork/join-ordered unlocked accesses
   are flagged by the lockset discipline although FastTrack (correctly)
   stays silent. *)
let fork_join_false_positive () =
  let src =
    "T0 write global:x\nT0 fork T1\nT1 write global:x\nT0 join T1\nT0 write global:x\n"
  in
  let trace = parse src in
  let d = run trace in
  Alcotest.(check int) "lockset alarms" 1 (List.length (Lockset.races d));
  (* FastTrack on the same trace: ordered, no race. *)
  let hb = Hb.create () in
  let ft = Fasttrack.create () in
  Trace.iter trace ~f:(fun index (e : Event.t) ->
      let vc = Hb.step hb e in
      match e.op with
      | Event.Read loc -> ignore (Fasttrack.on_read ft ~index e.tid loc vc)
      | Event.Write loc -> ignore (Fasttrack.on_write ft ~index e.tid loc vc)
      | _ -> ());
  Alcotest.(check int) "fasttrack silent" 0 (List.length (Fasttrack.races ft))

(* Eraser's classic false negative: the first thread's accesses are
   exempt, so a race against a later consistently-locked thread hides. *)
let first_thread_exemption () =
  let d =
    run
      (parse
         "T0 fork T1\n\
          T0 write global:x\n\
          T1 acquire l\n\
          T1 write global:x\n\
          T1 release l\n")
  in
  Alcotest.(check int) "no alarm despite the race" 0
    (List.length (Lockset.races d))

let single_thread_never_alarms () =
  let d =
    run
      (parse
         "T0 write global:x\nT0 read global:x\nT0 write global:x\nT0 read global:x\n")
  in
  Alcotest.(check int) "no alarm" 0 (List.length (Lockset.races d));
  Alcotest.(check bool) "still exclusive" true
    (match Lockset.state_of d x with Lockset.Exclusive _ -> true | _ -> false)

let read_sharing_tolerated () =
  (* Concurrent unlocked readers are fine until somebody writes. *)
  let d =
    run
      (parse
         "T0 write global:x\n\
          T0 fork T1\n\
          T0 fork T2\n\
          T1 read global:x\n\
          T2 read global:x\n")
  in
  Alcotest.(check int) "no alarm for read sharing" 0
    (List.length (Lockset.races d));
  Alcotest.(check bool) "shared state" true (Lockset.state_of d x = Lockset.Shared)

let one_alarm_per_location () =
  let d =
    run
      (parse
         "T0 fork T1\n\
          T1 write global:x\n\
          T0 write global:x\n\
          T1 write global:x\n\
          T0 write global:x\n")
  in
  Alcotest.(check int) "single alarm" 1 (List.length (Lockset.races d));
  Alcotest.(check bool) "alarmed state" true
    (Lockset.state_of d x = Lockset.Alarmed)

let suite =
  ( "lockset",
    [
      Alcotest.test_case "unprotected writes alarm" `Quick
        unprotected_writes_alarm;
      Alcotest.test_case "consistent discipline ok" `Quick
        consistent_discipline_ok;
      Alcotest.test_case "inconsistent locks alarm" `Quick
        inconsistent_locks_alarm;
      Alcotest.test_case "fork/join false positive" `Quick
        fork_join_false_positive;
      Alcotest.test_case "first-thread exemption" `Quick first_thread_exemption;
      Alcotest.test_case "single thread silent" `Quick
        single_thread_never_alarms;
      Alcotest.test_case "read sharing tolerated" `Quick read_sharing_tolerated;
      Alcotest.test_case "one alarm per location" `Quick one_alarm_per_location;
    ] )
