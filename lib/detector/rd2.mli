(** The commutativity race detector of Algorithm 1.

    The detector maintains, per object, the set of {e active} access
    points together with one vector clock each — the join of the clocks of
    every action that touched the point. Processing an action [a] with
    clock [vc e]:

    + phase 1: for every [pt] in [eta a], look up the points conflicting
      with [pt] among the active points; any conflicting point whose clock
      is not [<= vc e] witnesses a commutativity race;
    + phase 2: join [vc e] into the clock of every [pt] in [eta a],
      activating fresh points.

    Two lookup strategies are provided (Section 5.4): [`Constant]
    enumerates the bounded set [Co pt] and hashes into the active table —
    O(1) per point for ECL-translated representations; [`Linear] scans
    the whole active set and tests conflicts pairwise — the cost an
    unrestricted representation would force. Both report identical races;
    the ablation benchmark compares their cost.

    The per-point clock is {e epoch-adaptive} (FastTrack-style): while
    every toucher of a point is totally ordered it is a scalar epoch
    [c@t], promoted to a per-thread component clock only on the first
    concurrent toucher and demoted back once a toucher dominates it. A
    same-epoch cache additionally skips phase 1 wholesale when the same
    thread re-invokes the same points at an unchanged clock and nothing
    else touched the object. Both optimizations are exact: the reported
    races (indices, points, priors) are identical to the full-VC join of
    Algorithm 1 — see DESIGN.md, "Epoch-adaptive entries". *)

open Crd_base
open Crd_vclock
open Crd_trace
open Crd_apoint

type mode = [ `Constant | `Linear ]

type stats = {
  mutable actions : int;  (** actions processed *)
  mutable lookups : int;  (** conflict-candidate inspections in phase 1 *)
  mutable races : int;  (** reports emitted *)
  mutable same_epoch : int;
      (** actions whose phase 1 was skipped by the same-epoch cache *)
  mutable promotions : int;
      (** entries inflated from a scalar epoch to a component clock on
          their first concurrent toucher *)
  mutable deflations : int;
      (** component clocks demoted back to a scalar epoch once a toucher
          dominated every past component *)
}

type t

val create :
  ?mode:mode ->
  ?pool:Vclock.Pool.t ->
  repr_for:(Obj_id.t -> Repr.t option) ->
  unit ->
  t
(** [repr_for] resolves the access-point representation of each object;
    objects resolving to [None] are ignored (not monitored). [pool], when
    given, backs epoch-to-component promotions: promoted clocks are
    acquired from it and released again on deflation, so the steady-state
    hot loop allocates no clock storage. The pool must be owned by this
    detector's domain only. *)

val on_action :
  t -> index:int -> Tid.t -> Action.t -> Vclock.t -> Report.t list
(** Process one action event with its happens-before clock. The clock is
    only read (never retained), so a live [Hb.raw_clock] is acceptable
    only if no later [step] happens before the next call; prefer
    [Hb.snapshot]. Returns the races closed by this event. *)

val release_object : t -> Obj_id.t -> unit
(** Drop all auxiliary state of a dead object — the reclamation
    optimization of Section 5.3. No further races can be reported against
    it. *)

val active_points : t -> Obj_id.t -> int
(** Size of the active set (for tests and complexity accounting). *)

val stats : t -> stats
val races : t -> Report.t list
(** All reports so far, in trace order. *)
