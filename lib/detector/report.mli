(** Commutativity race reports.

    A report is emitted at the event that closes the race: the current
    action touched an access point that conflicts with an access point
    previously touched by a concurrent action (Definition 4.3).

    Algorithm 1 joins the clocks of all previous touchers of a point into
    one vector clock, so the precise identity of the earlier racing action
    is not retained by the algorithm; [prior] is the {e most recent}
    toucher of the conflicting point, which is the exact racing action in
    the common case and a representative hint otherwise. *)

open Crd_base
open Crd_trace

type t = {
  index : int;  (** trace position of the event that closed the race *)
  obj : Obj_id.t;
  tid : Tid.t;
  action : Action.t;
  point : string;  (** description of the access point touched *)
  conflicting : string;  (** description of the conflicting point *)
  prior : (Tid.t * Action.t) option;
}

val pp : t Fmt.t

val fingerprint : t -> int64
(** Canonical race identity: a stable 64-bit FNV-1a hash of
    [(spec, obj, action pair, point, conflicting point)], with the two
    (method, access point) sides hashed as an {e unordered} pair so a
    race observed from either end folds to the same fingerprint.
    The spec component is recovered from the object-name convention
    ["<spec>"] / ["<spec>:<suffix>"]. Independent of trace position and
    thread ids, so the same logical race in different sessions (or
    interleavings) shares a fingerprint; access-point descriptions can
    embed key values (RD2 points are per-key), which then distinguish
    fingerprints — strictly finer than {!distinct_objects}. *)

val fingerprint_hex : t -> string
(** [fingerprint] as 16 lowercase hex digits — the rendering used by
    [rd2 query] and the racedb tooling. *)

val distinct : t list -> int
(** Number of distinct race fingerprints — the "(distinct)" column of
    Table 2 under the per-race identity. *)

val distinct_objects : t list -> int
(** Number of distinct objects racing. Coarser than {!distinct} (an
    object can host several distinct races); kept for the object-level
    view of Table 2. *)
