open Crd_base
open Crd_trace

type t = {
  index : int;
  obj : Obj_id.t;
  tid : Tid.t;
  action : Action.t;
  point : string;
  conflicting : string;
  prior : (Tid.t * Action.t) option;
}

let pp ppf t =
  Fmt.pf ppf "commutativity race at event %d: %a: %a [%s conflicts with %s]"
    t.index Tid.pp t.tid Action.pp t.action t.point t.conflicting;
  match t.prior with
  | None -> ()
  | Some (tid, a) -> Fmt.pf ppf " last touched by %a: %a" Tid.pp tid Action.pp a

let distinct_objects reports =
  let ids = List.sort_uniq Int.compare (List.map (fun r -> Obj_id.id r.obj) reports) in
  List.length ids

(* ------------------------------------------------------------------ *)
(* Fingerprints.                                                       *)

(* Objects are named "<spec>" or "<spec>:<suffix>" by the workload
   generators and the server's spec resolution, so the spec component
   of the fingerprint is recoverable from the object name alone. *)
let spec_of_obj name =
  match String.index_opt name ':' with
  | Some i -> String.sub name 0 i
  | None -> name

(* FNV-1a over 64 bits; each field is terminated by a NUL byte so that
   field boundaries shift the hash ("ab","c" <> "a","bc"). *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv_add h s =
  let h = ref h in
  let mix byte =
    h := Int64.mul (Int64.logxor !h (Int64.of_int byte)) fnv_prime
  in
  String.iter (fun c -> mix (Char.code c)) s;
  mix 0;
  !h

let fingerprint t =
  let prior_meth =
    match t.prior with Some (_, a) -> a.Action.meth | None -> ""
  in
  (* Normalize for symmetry: the same logical race can close from
     either end (current side touching [point], prior side having
     touched [conflicting], or the mirror image in another
     interleaving), so hash the unordered pair of (method, point)
     sides. *)
  let side_a = (t.action.Action.meth, t.point) in
  let side_b = (prior_meth, t.conflicting) in
  let (m1, p1), (m2, p2) =
    if compare side_a side_b <= 0 then (side_a, side_b) else (side_b, side_a)
  in
  let name = Obj_id.name t.obj in
  List.fold_left fnv_add fnv_offset [ spec_of_obj name; name; m1; p1; m2; p2 ]

let fingerprint_hex t = Printf.sprintf "%016Lx" (fingerprint t)

let distinct reports =
  let fps = List.sort_uniq Int64.compare (List.map fingerprint reports) in
  List.length fps
