open Crd_base
open Crd_vclock
open Crd_trace
open Crd_apoint
module Epoch = Vclock.Epoch

type mode = [ `Constant | `Linear ]

type stats = {
  mutable actions : int;
  mutable lookups : int;
  mutable races : int;
  mutable same_epoch : int;
  mutable promotions : int;
  mutable deflations : int;
}

(* Adaptive clock metadata, mirroring FastTrack's read-epoch/read-VC
   split. While every toucher of a point is totally ordered, the join of
   their clocks is faithfully represented by the last toucher's epoch
   c@t: a later action's clock dominates the join iff it dominates c@t
   (the toucher's release/fork, which is the only way its component-c
   segment escapes, carries its full clock). On the first concurrent
   toucher the entry inflates to a component clock {t -> c} per toucher,
   which supports the same equivalence point-wise.

   The epoch lives in two unboxed mutable fields ([ep_tid]/[ep_clock],
   meaningful while [evc = None]) so the common slide — another ordered
   touch — is two stores and no allocation. *)
type entry = {
  mutable ep_tid : Tid.t;
  mutable ep_clock : int;
  mutable evc : Vclock.t option;  (* [Some c]: promoted component clock *)
  mutable last_tid : Tid.t;
  mutable last_action : Action.t;
}

(* Cache of the last race-free invocation on an object: if the same
   thread re-invokes the same access points at an unchanged own-component
   (same epoch) and no entry clock of the object changed in between
   ([stamp] unchanged), phase 1 would recompute exactly the previous
   (race-free) outcome, so it can be skipped wholesale. The fields are
   inlined mutable ([lo_valid] gates them) to keep the per-action update
   allocation-free. *)
type obj_state = {
  repr : Repr.t;
  active : entry Point.Tbl.t;
  mutable stamp : int;  (* bumped whenever an entry's clock meta changes *)
  mutable lo_valid : bool;
  mutable lo_tid : Tid.t;
  mutable lo_clock : int;
  mutable lo_stamp : int;
  mutable lo_points : Point.t list;
}

type t = {
  mode : mode;
  repr_for : Obj_id.t -> Repr.t option;
  objects : (int, obj_state option) Hashtbl.t;
  pool : Vclock.Pool.t option;  (* component-clock arena (single-owner) *)
  stats : stats;
  mutable reports : Report.t list;  (* newest first *)
}

let create ?(mode = `Constant) ?pool ~repr_for () =
  {
    mode;
    repr_for;
    objects = Hashtbl.create 64;
    pool;
    stats =
      {
        actions = 0;
        lookups = 0;
        races = 0;
        same_epoch = 0;
        promotions = 0;
        deflations = 0;
      };
    reports = [];
  }

let obj_state t (o : Obj_id.t) =
  let key = Obj_id.id o in
  match Hashtbl.find_opt t.objects key with
  | Some st -> st
  | None ->
      let st =
        match t.repr_for o with
        | None -> None
        | Some repr ->
            Some
              {
                repr;
                active = Point.Tbl.create 16;
                stamp = 0;
                lo_valid = false;
                lo_tid = Tid.main;
                lo_clock = 0;
                lo_stamp = 0;
                lo_points = [];
              }
      in
      Hashtbl.add t.objects key st;
      st

let release_object t o = Hashtbl.remove t.objects (Obj_id.id o)

let active_points t o =
  match Hashtbl.find_opt t.objects (Obj_id.id o) with
  | Some (Some st) -> Point.Tbl.length st.active
  | _ -> 0

(* [entry_leq entry vc] iff every past toucher of the entry happens-before
   the action carrying [vc] — equivalent to the full-VC join test of
   Algorithm 1 (see DESIGN.md, "Epoch-adaptive entries"). *)
let entry_leq entry vc =
  match entry.evc with
  | None -> entry.ep_clock <= Vclock.get vc entry.ep_tid
  | Some c -> Vclock.leq c vc

let report t ~index ~tid ~(action : Action.t) ~repr ~pt ~pt' ~(entry : entry) =
  let desc p =
    match (p : Point.t) with
    | Point.Ds id -> Repr.shape_desc repr id
    | Point.Keyed (id, v) ->
        Printf.sprintf "%s[%s]" (Repr.shape_desc repr id) (Value.to_string v)
  in
  t.stats.races <- t.stats.races + 1;
  let r =
    {
      Report.index;
      obj = action.Action.obj;
      tid;
      action;
      point = desc pt;
      conflicting = desc pt';
      prior = Some (entry.last_tid, entry.last_action);
    }
  in
  t.reports <- r :: t.reports;
  r

let on_action t ~index tid (action : Action.t) vc =
  match obj_state t action.Action.obj with
  | None -> []
  | Some st ->
      t.stats.actions <- t.stats.actions + 1;
      let points = Repr.eta st.repr action in
      let own = Vclock.get vc tid in
      (* Phase 1: check for commutativity races (unless the same-epoch
         cache proves the checks would repeat a race-free outcome). *)
      let skip =
        st.lo_valid && st.lo_stamp = st.stamp && st.lo_clock = own
        && Tid.equal st.lo_tid tid
        && List.equal Point.equal st.lo_points points
      in
      let found = ref [] in
      if skip then t.stats.same_epoch <- t.stats.same_epoch + 1
      else
        List.iter
          (fun pt ->
            match t.mode with
            | `Constant ->
                List.iter
                  (fun pt' ->
                    t.stats.lookups <- t.stats.lookups + 1;
                    match Point.Tbl.find_opt st.active pt' with
                    | Some entry when not (entry_leq entry vc) ->
                        found :=
                          report t ~index ~tid ~action ~repr:st.repr ~pt ~pt'
                            ~entry
                          :: !found
                    | _ -> ())
                  (Repr.conflicts st.repr pt)
            | `Linear ->
                Point.Tbl.iter
                  (fun pt' entry ->
                    t.stats.lookups <- t.stats.lookups + 1;
                    if
                      Repr.conflict st.repr pt pt'
                      && not (entry_leq entry vc)
                    then
                      found :=
                        report t ~index ~tid ~action ~repr:st.repr ~pt ~pt'
                          ~entry
                        :: !found)
                  st.active)
          points;
      (* Phase 2: update the auxiliary state. *)
      let bump () = st.stamp <- st.stamp + 1 in
      List.iter
        (fun pt ->
          match Point.Tbl.find_opt st.active pt with
          | Some entry ->
              (match entry.evc with
              | None ->
                  if Tid.equal entry.ep_tid tid && entry.ep_clock = own then
                    (* Same epoch: the entry already records this touch. *)
                    ()
                  else if entry.ep_clock <= Vclock.get vc entry.ep_tid then begin
                    (* Still totally ordered: slide the epoch forward. *)
                    entry.ep_tid <- tid;
                    entry.ep_clock <- own;
                    bump ()
                  end
                  else begin
                    (* First concurrent toucher: inflate to components. *)
                    let c =
                      match t.pool with
                      | Some p -> Vclock.Pool.acquire p
                      | None -> Vclock.bot ()
                    in
                    Vclock.set c entry.ep_tid entry.ep_clock;
                    Vclock.set c tid own;
                    entry.evc <- Some c;
                    t.stats.promotions <- t.stats.promotions + 1;
                    bump ()
                  end
              | Some c ->
                  if Vclock.get c tid = own then ()
                  else if Vclock.leq c vc then begin
                    (* Every past toucher is ordered before this one:
                       deflate back to a plain epoch. *)
                    entry.evc <- None;
                    (match t.pool with
                    | Some p -> Vclock.Pool.release p c
                    | None -> ());
                    entry.ep_tid <- tid;
                    entry.ep_clock <- own;
                    t.stats.deflations <- t.stats.deflations + 1;
                    bump ()
                  end
                  else begin
                    Vclock.set c tid own;
                    bump ()
                  end);
              entry.last_tid <- tid;
              entry.last_action <- action
          | None ->
              Point.Tbl.add st.active pt
                {
                  ep_tid = tid;
                  ep_clock = own;
                  evc = None;
                  last_tid = tid;
                  last_action = action;
                };
              bump ())
        points;
      if !found = [] then begin
        st.lo_valid <- true;
        st.lo_tid <- tid;
        st.lo_clock <- own;
        st.lo_stamp <- st.stamp;
        st.lo_points <- points
      end
      else st.lo_valid <- false;
      List.rev !found

let stats t = t.stats
let races t = List.rev t.reports
