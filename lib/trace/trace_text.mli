(** Textual trace format.

    One event per line, [#] comments, blank lines ignored:

    {v
    T0 fork T1
    T1 call m.put("a.com", @1) / nil
    T0 read global:counter
    T2 write field:m.count
    T1 read slot:m.data["a.com"]
    T0 acquire lk
    T0 release lk
    T0 join T1
    v}

    Object and lock names are interned by the parser: the same textual
    name always maps to the same identity within one parse. [print] and
    [parse] are mutually inverse up to object/lock renumbering. *)

val print : Trace.t Fmt.t

val to_string : Trace.t -> string

val parse : string -> (Trace.t, string) result
(** Parse a whole trace from a string. Errors carry a line number. *)

val iter_channel : in_channel -> f:(Event.t -> unit) -> (unit, string) result
(** Stream events from a channel line-by-line, calling [f] on each;
    memory stays O(longest line + intern tables) regardless of input
    size. Stops at the first malformed line. *)

val of_channel : in_channel -> (Trace.t, string) result

val parse_file : string -> (Trace.t, string) result
(** [of_channel] on the opened file: large traces are never loaded into
    a single string. *)
