open Crd_base

(* ------------------------------------------------------------------ *)
(* Printing                                                           *)
(* ------------------------------------------------------------------ *)

(* Names (objects, locks, globals, fields) print bare when they lex as
   identifiers and quoted otherwise, so arbitrary runtime names (e.g.
   "dictionary:chunks" or "customers.hwm#3") round-trip. *)
let ident_name s =
  s <> ""
  && (match s.[0] with
     | 'a' .. 'z' | 'A' .. 'Z' | '_' -> true
     | _ -> false)
  &&
  String.for_all
    (function
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '\'' | '-' -> true
      | _ -> false)
    s

let pp_name ppf s =
  if ident_name s then Fmt.string ppf s else Fmt.pf ppf "%S" s

let pp_loc ppf = function
  | Mem_loc.Global g -> Fmt.pf ppf "global:%a" pp_name g
  | Mem_loc.Field (o, f) ->
      Fmt.pf ppf "field:%a.%a" pp_name (Obj_id.name o) pp_name f
  | Mem_loc.Slot (o, f, v) ->
      Fmt.pf ppf "slot:%a.%a[%a]" pp_name (Obj_id.name o) pp_name f Value.pp v

let pp_event ppf (e : Event.t) =
  let t = Tid.to_int e.tid in
  match e.op with
  | Call a ->
      let pp_vals = Fmt.(list ~sep:(any ", ") Value.pp) in
      Fmt.pf ppf "T%d call %a.%s(%a)" t pp_name (Obj_id.name a.obj) a.meth
        pp_vals a.args;
      (match a.rets with
      | [] -> ()
      | [ r ] -> Fmt.pf ppf " / %a" Value.pp r
      | rs -> Fmt.pf ppf " / (%a)" pp_vals rs)
  | Read l -> Fmt.pf ppf "T%d read %a" t pp_loc l
  | Write l -> Fmt.pf ppf "T%d write %a" t pp_loc l
  | Fork u -> Fmt.pf ppf "T%d fork T%d" t (Tid.to_int u)
  | Join u -> Fmt.pf ppf "T%d join T%d" t (Tid.to_int u)
  | Acquire l -> Fmt.pf ppf "T%d acquire %a" t pp_name (Lock_id.name l)
  | Release l -> Fmt.pf ppf "T%d release %a" t pp_name (Lock_id.name l)
  | Begin -> Fmt.pf ppf "T%d begin" t
  | End -> Fmt.pf ppf "T%d end" t

let print ppf trace =
  Trace.iter_events trace ~f:(fun e -> Fmt.pf ppf "%a@." pp_event e)

let to_string trace = Fmt.str "%a" print trace

(* ------------------------------------------------------------------ *)
(* Lexing                                                             *)
(* ------------------------------------------------------------------ *)

type token =
  | IDENT of string
  | INT of int
  | STRING of string
  | REF of int
  | LPAREN
  | RPAREN
  | COMMA
  | SLASH
  | DOT
  | COLON
  | LBRACKET
  | RBRACKET

exception Err of string

let err fmt = Fmt.kstr (fun s -> raise (Err s)) fmt

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_ident_start c || (c >= '0' && c <= '9') || c = '\'' || c = '-'
let is_digit c = c >= '0' && c <= '9'

let tokenize (line : string) : token list =
  let n = String.length line in
  let toks = ref [] in
  let push t = toks := t :: !toks in
  let i = ref 0 in
  while !i < n do
    let c = line.[!i] in
    if c = ' ' || c = '\t' || c = '\r' then Stdlib.incr i
    else if c = '#' then i := n
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident line.[!i] do
        Stdlib.incr i
      done;
      push (IDENT (String.sub line start (!i - start)))
    end
    else if is_digit c || (c = '-' && !i + 1 < n && is_digit line.[!i + 1]) then begin
      let start = !i in
      Stdlib.incr i;
      while !i < n && is_digit line.[!i] do
        Stdlib.incr i
      done;
      push (INT (int_of_string (String.sub line start (!i - start))))
    end
    else if c = '@' then begin
      Stdlib.incr i;
      let start = !i in
      while !i < n && is_digit line.[!i] do
        Stdlib.incr i
      done;
      if !i = start then err "malformed reference literal";
      push (REF (int_of_string (String.sub line start (!i - start))))
    end
    else if c = '"' then begin
      Stdlib.incr i;
      let buf = Buffer.create 8 in
      let closed = ref false in
      while (not !closed) && !i < n do
        let c = line.[!i] in
        if c = '"' then begin
          closed := true;
          Stdlib.incr i
        end
        else if c = '\\' && !i + 1 < n then begin
          (match line.[!i + 1] with
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | c -> Buffer.add_char buf c);
          i := !i + 2
        end
        else begin
          Buffer.add_char buf c;
          Stdlib.incr i
        end
      done;
      if not !closed then err "unterminated string literal";
      push (STRING (Buffer.contents buf))
    end
    else begin
      (match c with
      | '(' -> push LPAREN
      | ')' -> push RPAREN
      | ',' -> push COMMA
      | '/' -> push SLASH
      | '.' -> push DOT
      | ':' -> push COLON
      | '[' -> push LBRACKET
      | ']' -> push RBRACKET
      | c -> err "unexpected character %C" c);
      Stdlib.incr i
    end
  done;
  List.rev !toks

(* ------------------------------------------------------------------ *)
(* Parsing                                                            *)
(* ------------------------------------------------------------------ *)

type interner = {
  objs : (string, Obj_id.t) Hashtbl.t;
  locks : (string, Lock_id.t) Hashtbl.t;
  mutable next_obj : int;
  mutable next_lock : int;
}

let interner () =
  { objs = Hashtbl.create 8; locks = Hashtbl.create 8; next_obj = 0; next_lock = 0 }

let intern_obj it name =
  match Hashtbl.find_opt it.objs name with
  | Some o -> o
  | None ->
      let o = Obj_id.make ~name it.next_obj in
      it.next_obj <- it.next_obj + 1;
      Hashtbl.add it.objs name o;
      o

let intern_lock it name =
  match Hashtbl.find_opt it.locks name with
  | Some l -> l
  | None ->
      let l = Lock_id.make ~name it.next_lock in
      it.next_lock <- it.next_lock + 1;
      Hashtbl.add it.locks name l;
      l

let parse_tid = function
  | IDENT s
    when String.length s >= 2
         && s.[0] = 'T'
         && String.for_all is_digit (String.sub s 1 (String.length s - 1)) ->
      Tid.of_int (int_of_string (String.sub s 1 (String.length s - 1)))
  | _ -> err "expected a thread id (T<n>)"

let value_of_token = function
  | INT i -> Value.Int i
  | STRING s -> Value.Str s
  | REF r -> Value.Ref r
  | IDENT "nil" -> Value.Nil
  | IDENT "true" -> Value.Bool true
  | IDENT "false" -> Value.Bool false
  | _ -> err "expected a value literal"

(* values ::= eps | value (',' value)* *)
let rec parse_values toks =
  match toks with
  | RPAREN :: _ -> ([], toks)
  | tok :: rest -> (
      let v = value_of_token tok in
      match rest with
      | COMMA :: rest ->
          let vs, rest = parse_values rest in
          (v :: vs, rest)
      | _ -> ([ v ], rest))
  | [] -> err "expected a value"

let parse_rets toks =
  match toks with
  | [] -> []
  | SLASH :: LPAREN :: rest -> (
      let vs, rest = parse_values rest in
      match rest with
      | [ RPAREN ] -> vs
      | _ -> err "malformed return tuple")
  | [ SLASH; tok ] -> [ value_of_token tok ]
  | _ -> err "trailing tokens after call"

(* Name positions accept both bare identifiers and quoted strings (the
   printer quotes names with non-identifier characters). *)
let name_of_token = function
  | IDENT s | STRING s -> Some s
  | _ -> None

let parse_call it toks =
  match toks with
  | objtok :: DOT :: IDENT meth :: LPAREN :: rest -> (
      let obj =
        match name_of_token objtok with
        | Some o -> o
        | None -> err "expected an object name"
      in
      let args, rest = parse_values rest in
      match rest with
      | RPAREN :: rest ->
          let rets = parse_rets rest in
          Action.make ~obj:(intern_obj it obj) ~meth ~args ~rets ()
      | _ -> err "expected ')' after arguments")
  | _ -> err "malformed call (expected obj.method(args) [/ ret])"

let parse_loc it toks =
  let name tok what =
    match name_of_token tok with Some s -> s | None -> err "expected %s" what
  in
  match toks with
  | [ IDENT "global"; COLON; g ] -> Mem_loc.Global (name g "a global name")
  | [ IDENT "field"; COLON; o; DOT; f ] ->
      Mem_loc.Field (intern_obj it (name o "an object name"), name f "a field name")
  | IDENT "slot" :: COLON :: o :: DOT :: f :: LBRACKET :: rest -> (
      match rest with
      | [ tok; RBRACKET ] ->
          Mem_loc.Slot
            ( intern_obj it (name o "an object name"),
              name f "a field name",
              value_of_token tok )
      | _ -> err "malformed slot location")
  | _ -> err "malformed memory location"

let parse_line it line : Event.t option =
  match tokenize line with
  | [] -> None
  | tid_tok :: IDENT verb :: rest ->
      let tid = parse_tid tid_tok in
      let op =
        match (verb, rest) with
        | "call", rest -> Event.Call (parse_call it rest)
        | "read", rest -> Event.Read (parse_loc it rest)
        | "write", rest -> Event.Write (parse_loc it rest)
        | "fork", [ u ] -> Event.Fork (parse_tid u)
        | "join", [ u ] -> Event.Join (parse_tid u)
        | "acquire", [ (IDENT l | STRING l) ] -> Event.Acquire (intern_lock it l)
        | "release", [ (IDENT l | STRING l) ] -> Event.Release (intern_lock it l)
        | "begin", [] -> Event.Begin
        | "end", [] -> Event.End
        | verb, _ -> err "unknown or malformed event %S" verb
      in
      Some { Event.tid; op }
  | _ -> err "expected '<tid> <verb> ...'"

let parse text =
  let it = interner () in
  let trace = Trace.create () in
  let lines = String.split_on_char '\n' text in
  let rec go lineno = function
    | [] -> Ok trace
    | line :: rest -> (
        match parse_line it line with
        | None -> go (lineno + 1) rest
        | Some e ->
            Trace.append trace e;
            go (lineno + 1) rest
        | exception Err msg -> Error (Printf.sprintf "line %d: %s" lineno msg))
  in
  go 1 lines

(* Channel input is streamed line-by-line: memory is O(longest line +
   intern tables), never O(file). *)
let iter_channel ic ~f =
  let it = interner () in
  let rec go lineno =
    match In_channel.input_line ic with
    | None -> Ok ()
    | Some line -> (
        match parse_line it line with
        | None -> go (lineno + 1)
        | Some e ->
            f e;
            go (lineno + 1)
        | exception Err msg -> Error (Printf.sprintf "line %d: %s" lineno msg))
  in
  go 1

let of_channel ic =
  let trace = Trace.create () in
  match iter_channel ic ~f:(Trace.append trace) with
  | Ok () -> Ok trace
  | Error e -> Error e

let parse_file path =
  match In_channel.with_open_text path of_channel with
  | r -> r
  | exception Sys_error msg -> Error msg
