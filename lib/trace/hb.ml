open Crd_base
open Crd_vclock

type thread_state = {
  clock : Vclock.t;
  mutable snap : Vclock.t option;  (* cached stable copy of [clock] *)
}

type t = {
  threads : (int, thread_state) Hashtbl.t;
  locks : (int, Vclock.t) Hashtbl.t;
}

let create () = { threads = Hashtbl.create 16; locks = Hashtbl.create 16 }

let thread t tid =
  let key = Tid.to_int tid in
  match Hashtbl.find_opt t.threads key with
  | Some st -> st
  | None ->
      (* A thread starts at [inc_tau bot] so that distinct threads that
         have never synchronized are concurrent, not equal. *)
      let clock = Vclock.bot () in
      Vclock.incr clock tid;
      let st = { clock; snap = None } in
      Hashtbl.add t.threads key st;
      st

let invalidate st = st.snap <- None

let snapshot t tid =
  let st = thread t tid in
  match st.snap with
  | Some s -> s
  | None ->
      let s = Vclock.copy st.clock in
      st.snap <- Some s;
      s

let raw_clock t tid = (thread t tid).clock
let epoch t tid = Vclock.Epoch.of_vclock (thread t tid).clock tid

let lock_clock t l =
  match Hashtbl.find_opt t.locks (Lock_id.id l) with
  | Some c -> c
  | None ->
      let c = Vclock.bot () in
      Hashtbl.add t.locks (Lock_id.id l) c;
      c

let step t (e : Event.t) =
  let st = thread t e.tid in
  let before = snapshot t e.tid in
  (match e.op with
  | Call _ | Read _ | Write _ | Begin | End -> ()
  | Fork u ->
      let child = thread t u in
      (* T(u) <- inc_u (T tau); the child was initialized to inc_u bot, so
         joining the parent's clock yields exactly inc_u (T tau) as long as
         the child has not run yet. *)
      Vclock.join_into ~into:child.clock st.clock;
      invalidate child;
      Vclock.incr st.clock e.tid;
      invalidate st
  | Join u ->
      let child = thread t u in
      Vclock.join_into ~into:st.clock child.clock;
      invalidate st
  | Acquire l ->
      Vclock.join_into ~into:st.clock (lock_clock t l);
      invalidate st
  | Release l ->
      (* L(l) <- T(tau). The lock clock is owned by this table and never
         escapes (Acquire only joins from it), so overwrite it in place
         instead of allocating a fresh copy per release. *)
      Vclock.copy_into ~into:(lock_clock t l) st.clock;
      Vclock.incr st.clock e.tid;
      invalidate st);
  before
