(** Bounded blocking queues — the per-connection backpressure primitive.

    [push] blocks while the queue is at capacity, which stops the
    session's socket reader, which fills the kernel receive buffer,
    which blocks the client's [write]: end-to-end backpressure with
    O(capacity) server-side memory per connection.

    Hot sessions should prefer the sliced variants ({!push_slice},
    {!pop_batch}): one mutex round per burst instead of per element,
    with the realized batch sizes observed into the
    [bqueue_batch_size] histogram.

    A queue created with [?weight] charges each enqueued element's
    weight into the process-wide [mem_queue_bytes] gauge and releases
    it on {!pop}/{!pop_batch}/{!discard} — one leg of the overload
    controller's memory accounting (see {!Overload}). *)

type 'a t

val create :
  ?fault:Crd_fault.point -> ?weight:('a -> int) -> capacity:int -> unit -> 'a t
(** [fault] names a {!Crd_fault} injection point consulted on every
    {!push} and non-empty {!push_slice} (not {!push_raw}), so tests and
    chaos runs can make any queue fail deterministically. [weight]
    gives each element's byte cost for [mem_queue_bytes] accounting;
    it is called once on enqueue and once on dequeue and must be pure.
    @raise Invalid_argument if [capacity < 1]. *)

val push : 'a t -> 'a -> bool
(** Block until there is room, then enqueue; [false] if the queue was
    closed (the element is dropped).
    @raise Crd_fault.Injected when the queue's fault point fires (the
    element is not enqueued). *)

val push_raw : 'a t -> 'a -> bool
(** {!push} without consulting the fault point. Error items that report
    a fault must not themselves be faulted away. *)

val push_slice : 'a t -> 'a array -> int -> int -> int
(** [push_slice t xs pos len] enqueues [xs.(pos .. pos+len-1)] in
    order, blocking as needed; the slice may exceed the queue capacity
    (it is admitted in capacity-sized sub-slices while consumers
    drain). Returns how many elements were accepted — short only if the
    queue is closed mid-slice.
    @raise Crd_fault.Injected when the fault point fires (no element
    is enqueued).
    @raise Invalid_argument on an invalid slice. *)

val pop : 'a t -> 'a option
(** Block until an element is available; [None] once the queue is
    closed {e and} drained. *)

val pop_batch : 'a t -> max:int -> 'a array
(** Block until at least one element is available, then return up to
    [max] elements without further blocking. [[||]] once the queue is
    closed {e and} drained.
    @raise Invalid_argument if [max < 1]. *)

val close : 'a t -> unit
(** Wake all blocked producers and consumers. Idempotent. *)

val discard : 'a t -> int
(** Drop everything still queued (releasing its accounted weight) and
    return how many elements were dropped. For error paths: a session
    abandoned mid-drain must not leak [mem_queue_bytes]. *)

val length : 'a t -> int
