(** Bounded blocking queues — the per-connection backpressure primitive.

    [push] blocks while the queue is at capacity, which stops the
    session's socket reader, which fills the kernel receive buffer,
    which blocks the client's [write]: end-to-end backpressure with
    O(capacity) server-side memory per connection. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity < 1]. *)

val push : 'a t -> 'a -> bool
(** Block until there is room, then enqueue; [false] if the queue was
    closed (the element is dropped). *)

val pop : 'a t -> 'a option
(** Block until an element is available; [None] once the queue is
    closed {e and} drained. *)

val close : 'a t -> unit
(** Wake all blocked producers and consumers. Idempotent. *)

val length : 'a t -> int
