(** Bounded blocking queues — the per-connection backpressure primitive.

    [push] blocks while the queue is at capacity, which stops the
    session's socket reader, which fills the kernel receive buffer,
    which blocks the client's [write]: end-to-end backpressure with
    O(capacity) server-side memory per connection. *)

type 'a t

val create : ?fault:Crd_fault.point -> capacity:int -> unit -> 'a t
(** [fault] names a {!Crd_fault} injection point consulted on every
    {!push} (not {!push_raw}), so tests and chaos runs can make any
    queue fail deterministically.
    @raise Invalid_argument if [capacity < 1]. *)

val push : 'a t -> 'a -> bool
(** Block until there is room, then enqueue; [false] if the queue was
    closed (the element is dropped).
    @raise Crd_fault.Injected when the queue's fault point fires (the
    element is not enqueued). *)

val push_raw : 'a t -> 'a -> bool
(** {!push} without consulting the fault point. Error items that report
    a fault must not themselves be faulted away. *)

val pop : 'a t -> 'a option
(** Block until an element is available; [None] once the queue is
    closed {e and} drained. *)

val close : 'a t -> unit
(** Wake all blocked producers and consumers. Idempotent. *)

val length : 'a t -> int
