(** Crash-safe per-session trace journals.

    With [rd2 serve --journal DIR], each session's raw CRDW bytes are
    appended to [DIR/<nonce>.crdj] as they arrive. When the stream's
    end marker is decoded, the data file is fsync'd and a commit marker
    [DIR/<nonce>.commit] (holding the committed byte count) is written
    atomically — data before marker, so a marker always describes
    durable bytes. Once the session's report has been delivered,
    [DIR/<nonce>.report] records it.

    The lifecycle therefore reads directly off the filesystem:
    - [.crdj] only: the session never finished streaming — nothing to
      recover, the client will retry.
    - [.crdj] + [.commit]: the trace is complete but analysis or reply
      delivery died — {!committed_unreported} finds these on restart
      and the server replays them through the normal analysis path.
    - all three: the session fully completed.

    Appends consult the [journal_append] {!Crd_fault} point. *)

type t
(** An open single-session journal. Functions raise [Unix.Unix_error]
    on I/O failure (and {!append} raises [Crd_fault.Injected] when the
    fault point fires); callers own the error policy. *)

val start : dir:string -> nonce:string -> spec:string -> t
(** Create [DIR] as needed and open a fresh journal, truncating any
    previous run of the same nonce and removing its stale [.commit] /
    [.report] — a retry restarts the logical session from frame 0.
    [spec] (the handshake's spec-set name) is recorded in the commit
    marker so recovery replays the same analysis. *)

val nonce : t -> string

val size : t -> int
(** Bytes appended so far — after {!commit}, the committed byte count. *)

val append : t -> ?off:int -> ?len:int -> string -> unit

val append_bytes : t -> ?off:int -> ?len:int -> Bytes.t -> unit
(** Like {!append} but straight from a read buffer — the slice goes to
    the fd without an intermediate string copy. The caller must not
    mutate [b.[off..off+len)] during the call. *)

val commit : t -> unit
(** fsync the data, then atomically publish the commit marker. *)

val close : t -> unit
(** Close the data fd (idempotent). Does not commit. *)

val write_report : dir:string -> nonce:string -> string -> unit
(** Atomically record the delivered report, completing the lifecycle. *)

val committed_unreported : dir:string -> string list
(** Nonces with a commit marker but no report, sorted — the sessions a
    restarted server must replay. Empty for an unreadable directory. *)

val read_committed :
  dir:string -> nonce:string -> (string * string, string) result
(** The committed byte prefix of a journal plus its spec-set name
    (bytes past the marker were never acknowledged and are dropped). *)

val map_committed :
  dir:string ->
  nonce:string ->
  (Crd_wire.Bigcodec.bigstring * string, string) result
(** Like {!read_committed} but zero-copy: the committed prefix is
    [Unix.map_file]'d and returned as a bigstring slice — a torn tail
    past the marker is simply not part of the mapping. Increments
    [journal_mmap_total] / [journal_mmap_bytes_total]; if the map fails
    (or the [journal_mmap] fault point fires) the read path serves the
    request instead and [journal_mmap_fallback_total] counts it. *)

val fresh_nonce : unit -> string
(** Process-unique filename-safe nonce for clients (and for journaling
    sessions whose client sent none). *)
