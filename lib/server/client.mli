(** [Crd_server.Client] — stream traces into a running [rd2 serve].

    Connects, handshakes (choosing the server's specification set),
    streams events as a {!Crd_wire.Codec} stream, and returns the
    server's race report. Events are encoded incrementally, so sending
    from a file holds O(chunk) memory, never the whole trace.

    {2 Resilience}

    With [retries > 0] the client survives transient failures: refused
    connections, [BUSY] shed replies (honoring the server's retry-after
    hint), transport errors mid-stream, lost replies, and
    ["ERR internal: ..."] worker-crash reports. Each retry waits a
    jittered exponential backoff ([backoff * 2^attempt], scaled by a
    random factor in [0.5, 1.5)) and then resends the {e whole} stream
    from frame 0 under the same session [nonce], which the server
    treats as a fresh run of the same logical session — so retries are
    idempotent. Deterministic failures (handshake rejects, decode or
    spec errors in the trace itself) are never retried. *)

open Crd

val send_iter :
  addr:Server.addr ->
  ?spec:string ->
  ?retries:int ->
  ?backoff:float ->
  ?timeout:float ->
  ?nonce:string ->
  ((Event.t -> unit) -> (unit, string) result) ->
  (string, string) result
(** [send_iter ~addr produce] runs [produce push] where every [push e]
    streams one event to the server; returns the server's report text.
    [spec] is the handshake specification set (default ["std"]).
    [retries] (default 0) re-runs [produce] on transient failures — it
    must be re-runnable from the start. [backoff] (default 0.1 s) is
    the initial retry delay; [timeout] (default 0, disabled) bounds
    each socket read/write in seconds. [nonce] names the logical
    session ([A-Za-z0-9_-], at most 64 bytes); when omitted and
    [retries > 0] a fresh process-unique nonce is generated. *)

val send_trace :
  addr:Server.addr ->
  ?spec:string ->
  ?retries:int ->
  ?backoff:float ->
  ?timeout:float ->
  ?nonce:string ->
  Trace.t ->
  (string, string) result

val send_file :
  addr:Server.addr ->
  ?spec:string ->
  ?retries:int ->
  ?backoff:float ->
  ?timeout:float ->
  ?nonce:string ->
  format:[ `Text | `Bin ] ->
  string ->
  (string, string) result
(** Stream a trace file without materializing it: text files line by
    line ({!Trace_text.iter_channel}), binary files frame by frame
    ({!Wire.iter_channel}). The file is reopened on every attempt. *)
