(** [Crd_server.Client] — stream traces into a running [rd2 serve].

    Connects, handshakes (choosing the server's specification set),
    streams events as a {!Crd_wire.Codec} stream, and returns the
    server's race report. Events are encoded incrementally, so sending
    from a file holds O(chunk) memory, never the whole trace. *)

open Crd

val send_iter :
  addr:Server.addr ->
  ?spec:string ->
  ((Event.t -> unit) -> (unit, string) result) ->
  (string, string) result
(** [send_iter ~addr produce] runs [produce push] where every [push e]
    streams one event to the server; returns the server's report text.
    [spec] is the handshake specification set (default ["std"]). *)

val send_trace :
  addr:Server.addr -> ?spec:string -> Trace.t -> (string, string) result

val send_file :
  addr:Server.addr ->
  ?spec:string ->
  format:[ `Text | `Bin ] ->
  string ->
  (string, string) result
(** Stream a trace file without materializing it: text files line by
    line ({!Trace_text.iter_channel}), binary files frame by frame
    ({!Wire.iter_channel}). *)
