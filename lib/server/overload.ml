(* The degradation ladder. One controller per server instance turns
   live load signals into an admission tier:

     Normal -> online RD2, exactly as before;
     Spill  -> sessions are acked and streamed straight to the fsync'd
               journal at decoder speed; a catch-up drainer replays the
               committed segments later (server.ml);
     Shed   -> BUSY retry-after, reserved for memory-budget exhaustion.

   The signals are deliberately cheap: the accept backlog (how many
   admitted sessions no worker has picked up), worker occupancy, and
   the process-wide memory accounting gauges maintained by Bqueue
   ([mem_queue_bytes]), Bigcodec ([mem_intern_bytes]) and Metrics
   ([mem_vcpool_bytes]). The registry's find-or-create semantics make
   those three names the cross-library contract — reading them here
   observes the same atomics the producers update. *)

type tier = Normal | Spill | Shed

let tier_name = function
  | Normal -> "normal"
  | Spill -> "spill"
  | Shed -> "shed"

let tier_rank = function Normal -> 0 | Spill -> 1 | Shed -> 2

type limits = {
  memory_budget : int;
  spill_watermark : int;
  stall_timeout : float;
}

(* All zero: every degradation feature off — byte-for-byte the
   pre-ladder server behaviour. *)
let no_limits = { memory_budget = 0; spill_watermark = 0; stall_timeout = 0. }

(* ------------------------------------------------------------------ *)
(* Metrics and fault points                                            *)
(* ------------------------------------------------------------------ *)

let m_tier =
  Crd_obs.gauge ~help:"Current admission tier (0=normal 1=spill 2=shed)"
    "overload_tier"

let m_to_normal =
  Crd_obs.counter ~help:"Transitions into the normal tier"
    "overload_to_normal_total"

let m_to_spill =
  Crd_obs.counter ~help:"Transitions into the spill tier"
    "overload_to_spill_total"

let m_to_shed =
  Crd_obs.counter ~help:"Transitions into the shed tier"
    "overload_to_shed_total"

let m_mem_used =
  Crd_obs.gauge
    ~help:"Accounted memory at the last tier evaluation (sum of the \
           mem_* gauges)"
    "overload_mem_used_bytes"

let m_spill_backlog =
  Crd_obs.gauge ~help:"Committed journal segments awaiting catch-up"
    "overload_spill_backlog"

let m_spill_bytes =
  Crd_obs.gauge ~help:"Committed journal bytes awaiting catch-up"
    "overload_spill_bytes"

let m_spilled =
  Crd_obs.counter ~help:"Sessions acked via the journal-spill path"
    "overload_spilled_sessions_total"

let m_catchup =
  Crd_obs.counter ~help:"Spilled segments replayed by the catch-up drainer"
    "overload_catchup_total"

let m_catchup_lag =
  Crd_obs.histogram ~help:"Seconds from journal commit to catch-up publish"
    "overload_catchup_lag_seconds"

let m_stalls =
  Crd_obs.counter ~help:"Workers recycled by the stall watchdog"
    "server_stalls_total"

(* When fired inside a session body, the worker parks in a poll loop
   until the watchdog cancels its heartbeat, then raises — a
   deterministic handle on "worker wedged mid-session" for tests and
   chaos runs. *)
let fp_stall = Crd_fault.point "worker_stall"

(* ------------------------------------------------------------------ *)
(* Memory accounting                                                   *)
(* ------------------------------------------------------------------ *)

(* The three producer-side gauges, resolved by name (find-or-create is
   idempotent, so load order between libraries does not matter). *)
let g_queue = Crd_obs.gauge "mem_queue_bytes"
let g_intern = Crd_obs.gauge "mem_intern_bytes"
let g_vcpool = Crd_obs.gauge "mem_vcpool_bytes"

let mem_used () =
  Crd_obs.Gauge.get g_queue + Crd_obs.Gauge.get g_intern
  + Crd_obs.Gauge.get g_vcpool

(* ------------------------------------------------------------------ *)
(* Controller                                                          *)
(* ------------------------------------------------------------------ *)

type t = { limits : limits; mu : Mutex.t; mutable tier : tier }

let create limits =
  Crd_obs.Gauge.set m_tier 0;
  { limits; mu = Mutex.create (); tier = Normal }

let limits t = t.limits

let tier t =
  Mutex.lock t.mu;
  let x = t.tier in
  Mutex.unlock t.mu;
  x

let transition_counter = function
  | Normal -> m_to_normal
  | Spill -> m_to_spill
  | Shed -> m_to_shed

(* Tier choice from one snapshot of the load signals.

   Shed is entered only on memory-budget exhaustion (the acceptance
   contract: queueing pressure alone must degrade to spill, never to
   dropped evidence). Spill is entered when every worker is busy and
   the admitted-but-unclaimed backlog has reached the watermark, and —
   hysteresis — is left only once the backlog has drained to half the
   watermark with a free worker, so the ladder does not flap around
   the threshold. *)
let decide limits cur ~pending ~active ~workers ~mem =
  if limits.memory_budget > 0 && mem >= limits.memory_budget then Shed
  else if limits.spill_watermark <= 0 then Normal
  else
    match cur with
    | Normal -> if active >= workers && pending >= limits.spill_watermark then Spill else Normal
    | Spill | Shed ->
        if active >= workers || pending > limits.spill_watermark / 2 then Spill
        else Normal

let evaluate t ~pending ~active ~workers =
  let mem = mem_used () in
  Crd_obs.Gauge.set m_mem_used mem;
  Mutex.lock t.mu;
  let cur = t.tier in
  let next = decide t.limits cur ~pending ~active ~workers ~mem in
  if next <> cur then begin
    t.tier <- next;
    Crd_obs.Gauge.set m_tier (tier_rank next);
    Crd_obs.Counter.incr (transition_counter next);
    Mutex.unlock t.mu;
    Crd_obs.Log.info "overload_tier"
      [
        ("from", tier_name cur);
        ("to", tier_name next);
        ("pending", string_of_int pending);
        ("active", string_of_int active);
        ("mem_used", string_of_int mem);
      ]
  end
  else Mutex.unlock t.mu;
  next

(* Spill bookkeeping: the backlog gauges move when a segment is
   committed for deferred analysis and back when the drainer publishes
   it (or finds it unreadable — either way it is no longer pending). *)
let note_spilled ~bytes =
  Crd_obs.Counter.incr m_spilled;
  Crd_obs.Gauge.incr m_spill_backlog;
  Crd_obs.Gauge.add m_spill_bytes bytes

let note_caught_up ~bytes ~lag_s =
  Crd_obs.Counter.incr m_catchup;
  Crd_obs.Gauge.decr m_spill_backlog;
  Crd_obs.Gauge.add m_spill_bytes (-bytes);
  Crd_obs.Histogram.observe m_catchup_lag lag_s

let spill_backlog () = Crd_obs.Gauge.get m_spill_backlog
let spill_bytes () = Crd_obs.Gauge.get m_spill_bytes

(* ------------------------------------------------------------------ *)
(* Worker heartbeats                                                   *)
(* ------------------------------------------------------------------ *)

module Heartbeat = struct
  (* One per worker slot. The worker stamps it as events drain; the
     supervisor-side watchdog compares stamps against the stall
     timeout. The session fd lives here so the watchdog can write a
     retryable ERR to the wedged client and shutdown() the socket —
     OCaml domains cannot be killed, so unwedging blocked I/O plus the
     cooperative [cancelled] flag is how a stuck worker gets recycled.

     Everything is guarded by [mu]: stalls are rare and the worker
     takes the lock a handful of times per batch, not per event. *)
  type t = {
    mu : Mutex.t;
    mutable in_session : bool;
    mutable fd : Unix.file_descr option;
    mutable stamp : float;  (* last progress, Crd_obs.now_s clock *)
    mutable events : int;  (* drained in the current session *)
    mutable cancelled : bool;
  }

  let create () =
    {
      mu = Mutex.create ();
      in_session = false;
      fd = None;
      stamp = 0.;
      events = 0;
      cancelled = false;
    }

  let start_session t fd =
    Mutex.lock t.mu;
    t.in_session <- true;
    t.fd <- Some fd;
    t.stamp <- Crd_obs.now_s ();
    t.events <- 0;
    t.cancelled <- false;
    Mutex.unlock t.mu

  let beat t n =
    Mutex.lock t.mu;
    t.stamp <- Crd_obs.now_s ();
    t.events <- t.events + n;
    Mutex.unlock t.mu

  (* Clear the fd before the session closes it: after this returns the
     watchdog can no longer shutdown() a descriptor number the kernel
     may be about to reuse. *)
  let end_session t =
    Mutex.lock t.mu;
    t.in_session <- false;
    t.fd <- None;
    Mutex.unlock t.mu

  let cancelled t =
    Mutex.lock t.mu;
    let c = t.cancelled in
    Mutex.unlock t.mu;
    c

  let events t =
    Mutex.lock t.mu;
    let n = t.events in
    Mutex.unlock t.mu;
    n

  (* Watchdog side: a worker mid-session whose last progress stamp is
     older than [timeout] is stalled. Marks it cancelled and hands the
     session fd back exactly once — the caller owns the ERR write and
     the shutdown. *)
  let check_stall t ~now ~timeout =
    Mutex.lock t.mu;
    let verdict =
      if t.in_session && (not t.cancelled) && now -. t.stamp > timeout then begin
        t.cancelled <- true;
        t.fd
      end
      else None
    in
    Mutex.unlock t.mu;
    verdict
end

(* The poll loop behind the [worker_stall] fault point: park until the
   watchdog cancels this worker's heartbeat, then raise into the
   worker's crash path so the existing supervisor respawn machinery
   recycles the domain. The timeout cap keeps a misconfigured test
   (fault armed, watchdog off) from parking a worker forever. *)
let stall_until_cancelled hb =
  Crd_obs.Log.warn "worker_stall_injected" [];
  let deadline = Crd_obs.now_s () +. 60. in
  while (not (Heartbeat.cancelled hb)) && Crd_obs.now_s () < deadline do
    Unix.sleepf 0.01
  done;
  failwith "injected fault: worker_stall"
