(** [Crd_server.Server] — the streaming ingestion service.

    Every accepted connection is an independent {e online} RD2 session:
    the client handshakes (choosing the specification set), streams a
    {!Crd_wire.Codec} event stream, and receives the session's race
    report back. Sessions are multiplexed over a fixed pool of OCaml 5
    domains; within a session, a socket-reader thread decodes events
    into a bounded {!Bqueue} drained by the analyzing worker, so a fast
    client cannot grow server memory beyond the queue capacity
    (backpressure propagates through the kernel socket buffer).

    With [jobs > 1] a session records its events and analyzes them at
    end-of-stream with {!Crd.Shard.analyze} over [jobs] domains instead
    of stepping the analyzer online; the reported races are identical
    by the shard-merge determinism invariant.

    {!stop} (and SIGTERM/SIGINT under {!serve}) drains gracefully:
    accepting stops, in-flight sessions run to completion and flush
    their race reports to their clients before the server exits. *)

open Crd

type addr = Unix_sock of string | Tcp of string * int

val addr_of_string : string -> (addr, string) result
(** ["unix:PATH"] or ["tcp:HOST:PORT"]. *)

val pp_addr : addr Fmt.t

type config = {
  addr : addr;
  workers : int;  (** session-carrying domains (default {!Shard.recommended_jobs}) *)
  queue_capacity : int;  (** per-connection event queue bound *)
  idle_timeout : float;  (** seconds without client bytes before a session is dropped; 0 disables *)
  analyzer : Analyzer.config;  (** detector set for every session *)
  jobs : int;  (** > 1: record, then {!Shard.analyze} at end-of-stream *)
  specs : Spec.t list option;  (** the ["custom"] handshake spec set, if loaded *)
}

val default_config : addr:addr -> config
(** RD2 (constant mode) only, [Shard.recommended_jobs ()] workers,
    queue capacity 1024, 30 s idle timeout, [jobs = 1]. *)

type stats = {
  sessions : int;  (** completed sessions *)
  events : int;  (** events analyzed across all sessions *)
  races : int;  (** RD2 races reported across all sessions *)
  errors : int;  (** sessions dropped on protocol/decode/timeout errors *)
}

type t

val start : config -> (t, string) result
(** Bind, listen, and return once the accept loop is running. *)

val stop : t -> stats
(** Graceful drain: stop accepting, finish in-flight sessions (flushing
    their reports), join every domain, release the socket. Idempotent. *)

val stats : t -> stats

val serve : config -> (stats, string) result
(** {!start}, then block until SIGTERM or SIGINT, then {!stop}. *)
