(** [Crd_server.Server] — the streaming ingestion service.

    Every accepted connection is an independent {e online} RD2 session:
    the client handshakes (choosing the specification set), streams a
    {!Crd_wire.Codec} event stream, and receives the session's race
    report back. Sessions are multiplexed over a fixed pool of OCaml 5
    domains; within a session, a socket-reader thread decodes events
    into a bounded {!Bqueue} drained by the analyzing worker, so a fast
    client cannot grow server memory beyond the queue capacity
    (backpressure propagates through the kernel socket buffer).

    With [jobs > 1] a session records its events and analyzes them at
    end-of-stream with {!Crd.Shard.analyze} over [jobs] domains instead
    of stepping the analyzer online; the reported races are identical
    by the shard-merge determinism invariant. Malformed events (e.g. a
    call that does not match its object's specification) produce a
    clean [ERR] reply under every [jobs] setting.

    The server publishes counters, gauges and duration histograms into
    the process-wide {!Crd_obs.default} registry
    ([server_sessions_total], [server_accept_errors_total],
    [server_errors_<stage>_total], [server_session_seconds], ...); set
    {!config.metrics_addr} to expose the registry over a text-dump
    listener (one Prometheus-style dump per connection).

    {!stop} (and SIGTERM/SIGINT under {!serve}) drains gracefully:
    accepting stops, in-flight sessions run to completion and flush
    their race reports to their clients before the server exits.

    {2 Robustness}

    The pipeline is built to stay up under injected faults
    ({!Crd_fault}) and real crashes:

    - {e supervision} — an exception escaping a session kills only its
      worker domain; a supervisor thread respawns a replacement and the
      client gets a clean [ERR] reply ([server_worker_crashes_total]).
    - {e shedding} — with {!config.shed_backlog}[ > 0], connections
      arriving while every worker is busy and the backlog is full get
      an immediate [BUSY retry-after] reply instead of queueing without
      bound ([server_busy_total]).
    - {e journaling} — with {!config.journal}[ = Some dir], each
      session's raw CRDW bytes are appended to [dir/<nonce>.crdj] and
      fsync-committed at end-of-stream; {!start} replays
      committed-but-unreported journals from a previous (possibly
      SIGKILLed) process through the normal analysis path
      ([server_recovered_total]). See {!Journal}.
    - {e degradation ladder} — with {!config.spill_watermark} and/or
      {!config.memory_budget} set, admission runs {!Overload.evaluate}:
      queue pressure degrades to the {e spill} tier (ack + journal now,
      analyze in the background — no evidence dropped), and only
      memory-budget exhaustion sheds with [BUSY]. An ASCII ["HEALTH\n"]
      line on the session listener answers a one-line tier/backlog
      summary.
    - {e stall watchdog} — with {!config.stall_timeout}[ > 0.], a
      supervisor-side watchdog recycles any worker that stops making
      per-batch progress, sending its client a retryable [ERR]. *)

open Crd

type addr = Unix_sock of string | Tcp of string * int

val addr_of_string : string -> (addr, string) result
(** ["unix:PATH"], ["tcp:HOST:PORT"], or ["tcp:[IPV6]:PORT"] (the
    bracketed form is required for IPv6 literals; a bare
    ["tcp:::1:9090"] still parses by splitting at the last [':']). *)

val pp_addr : addr Fmt.t

type config = {
  addr : addr;
  metrics_addr : addr option;
      (** where to expose the {!Crd_obs.default} registry; [None] (the
          default) disables the metrics listener *)
  workers : int;  (** session-carrying domains (default {!Shard.recommended_jobs}) *)
  queue_capacity : int;  (** per-connection event queue bound *)
  idle_timeout : float;  (** seconds without client bytes before a session is dropped; 0 disables *)
  analyzer : Analyzer.config;  (** detector set for every session *)
  jobs : int;  (** > 1: record, then {!Shard.analyze} at end-of-stream *)
  specs : Spec.t list option;  (** the ["custom"] handshake spec set, if loaded *)
  shed_backlog : int;
      (** when [> 0] and all workers are busy with [shed_backlog]
          connections already pending, new connections are shed with a
          [BUSY] reply; [0] (the default) never sheds *)
  retry_after_ms : int;  (** the retry hint sent with [BUSY] (default 200) *)
  journal : string option;
      (** directory for crash-safe session journals; [None] disables *)
  resync : bool;
      (** decode session streams with {!Crd_wire.Codec.create}[ ~resync:true]:
          corrupt frames are skipped instead of failing the session *)
  racedb : string option;
      (** directory of a {!Crd_racedb.Db} race database; every
          session's verdict (live or journal-replayed) is published to
          it through a bounded non-blocking queue drained by a single
          publisher thread ([racedb_published_total],
          [racedb_dropped_total], [racedb_publish_errors_total]).
          [None] (the default) disables publication. *)
  peers : addr list;
      (** other rd2 servers to anti-entropy the race database with: a
          background thread round-robins the list, running one
          {!Crd_sync} exchange per tick with full-jitter scheduling and
          per-peer exponential backoff (capped at 60 s) on failure.
          Requires {!field-racedb}; [[]] (the default) disables the
          loop. Peers also reach {e this} server through the regular
          listener — a ["CRDY"] preamble on {!field-addr} routes the
          connection to {!Crd_sync.serve}. *)
  sync_interval : float;
      (** target seconds for one full round over {!field-peers}
          (default 30); each peer's tick is jittered in [0.5x, 1.5x] *)
  memory_budget : int;
      (** accounted-memory bytes ([mem_queue_bytes] + [mem_intern_bytes]
          + [mem_vcpool_bytes]) past which admission sheds with [BUSY];
          [0] (the default) never sheds on memory. See {!Overload}. *)
  spill_watermark : int;
      (** admitted-but-unclaimed sessions that flip admission to the
          {e spill} tier while every worker is busy: new sessions are
          acked and journaled at decoder speed (no online analysis) and
          a background drainer replays them through the sharded
          pipeline later, publishing to the racedb under the session
          nonce so race sets match the online path exactly. Requires
          {!field-journal}; [0] (the default) disables spilling. *)
  stall_timeout : float;
      (** seconds without per-worker progress before the watchdog
          writes a retryable [ERR] to the wedged session, shuts its
          socket down and recycles the worker through the respawn path
          ([server_stalls_total]). Should exceed {!field-idle_timeout}.
          [0.] (the default) disables the watchdog. *)
}

val default_config : addr:addr -> config
(** RD2 (constant mode) only, [Shard.recommended_jobs ()] workers,
    queue capacity 1024, 30 s idle timeout, [jobs = 1], no metrics
    listener, no shedding, no journal, strict (non-resync) decoding. *)

type stats = {
  sessions : int;
      (** every completed session, successful or not — rejected
          handshakes and dropped sessions included. Always
          [sessions >= errors]; successful sessions are
          [sessions - errors]. *)
  events : int;  (** events analyzed across all sessions *)
  races : int;  (** RD2 races reported across all sessions *)
  errors : int;
      (** the subset of {!field-sessions} that ended in an error
          (handshake reject, unknown spec set, decode failure, idle
          timeout, I/O error, analysis failure) *)
  accept_errors : int;
      (** transient [accept(2)] failures (e.g. [EMFILE], [ENFILE],
          [ENOBUFS]) survived with backoff — not sessions, and not
          counted in {!field-errors} *)
  busy : int;  (** connections shed with a [BUSY] reply — not sessions *)
  worker_crashes : int;
      (** worker domains lost to an escaped exception and respawned;
          each is also counted as an error session *)
  recovered : int;
      (** journal sessions replayed by {!start} after a crash; counted
          in {!field-sessions} (and {!field-errors} if the replayed
          analysis failed) *)
  spilled : int;
      (** sessions acked via the spill tier; counted in
          {!field-sessions} with their event totals — their races
          arrive later via {!field-caught_up} *)
  caught_up : int;
      (** spilled segments the catch-up drainer has finished (their
          race counts land in {!field-races} at that point) *)
  stalls : int;
      (** workers recycled by the stall watchdog; each stalled session
          is also counted as a worker crash and an error session *)
}

type t

val start : config -> (t, string) result
(** Bind, listen, and return once the accept loop is running. Binding a
    unix-socket address whose file already exists connect-probes it
    first: a stale socket (no listener answering) is reclaimed, a live
    one makes [start] return an error rather than stealing the address
    from a running server. *)

val stop : t -> stats
(** Graceful drain: stop accepting, finish in-flight sessions (flushing
    their reports), join every domain, release the socket(s). Idempotent. *)

val stats : t -> stats

val serve : config -> (stats, string) result
(** {!start}, then block until SIGTERM or SIGINT, then {!stop}. *)

val connect : addr -> Unix.file_descr
(** Open a client connection to [addr] (used by [rd2 sync] and the
    anti-entropy loop). Raises [Unix.Unix_error] or [Failure] on
    connect/resolve errors. *)

val inject_accept_error : t -> Unix.error -> unit
(** Test instrumentation: the next time the accept loop wakes up for a
    pending connection it behaves as if [accept] failed with this error
    (consumed in injection order, before the real [accept]). Transient
    errors are survived with backoff and counted in
    {!field-accept_errors}; fatal ones ([EBADF], ...) stop the server. *)
