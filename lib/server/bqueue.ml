type 'a t = {
  mu : Mutex.t;
  not_full : Condition.t;
  not_empty : Condition.t;
  q : 'a Queue.t;
  capacity : int;
  fault : Crd_fault.point option;
  mutable closed : bool;
}

let create ?fault ~capacity () =
  if capacity < 1 then invalid_arg "Bqueue.create: capacity must be >= 1";
  {
    mu = Mutex.create ();
    not_full = Condition.create ();
    not_empty = Condition.create ();
    q = Queue.create ();
    capacity;
    fault;
    closed = false;
  }

let push_raw t x =
  Mutex.lock t.mu;
  while (not t.closed) && Queue.length t.q >= t.capacity do
    Condition.wait t.not_full t.mu
  done;
  let accepted = not t.closed in
  if accepted then begin
    Queue.push x t.q;
    Condition.signal t.not_empty
  end;
  Mutex.unlock t.mu;
  accepted

let push t x =
  (match t.fault with Some p -> Crd_fault.inject p | None -> ());
  push_raw t x

let pop t =
  Mutex.lock t.mu;
  while (not t.closed) && Queue.is_empty t.q do
    Condition.wait t.not_empty t.mu
  done;
  let item =
    if Queue.is_empty t.q then None
    else begin
      let x = Queue.pop t.q in
      Condition.signal t.not_full;
      Some x
    end
  in
  Mutex.unlock t.mu;
  item

let close t =
  Mutex.lock t.mu;
  t.closed <- true;
  Condition.broadcast t.not_full;
  Condition.broadcast t.not_empty;
  Mutex.unlock t.mu

let length t =
  Mutex.lock t.mu;
  let n = Queue.length t.q in
  Mutex.unlock t.mu;
  n
