(* Queue payload bytes across every weighted queue in the process, the
   [mem_queue_bytes] leg of the overload controller's memory accounting
   (see Overload). Registry lookup is find-or-create by name, so other
   libraries reading the same gauge observe the same atomic. *)
let mem_queue_bytes =
  lazy
    (Crd_obs.gauge
       ~help:"Bytes of payload currently buffered in weighted Bqueues"
       "mem_queue_bytes")

(* Distribution of slice sizes handed over per push_slice/pop_batch —
   the observable for the batching satellite (a healthy overloaded
   server shows batches near the slice cap, not 1). *)
let batch_hist =
  lazy
    (Crd_obs.histogram
       ~buckets:[| 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128.; 256.; 512. |]
       ~help:"Events per batched Bqueue handoff" "bqueue_batch_size")

type 'a t = {
  mu : Mutex.t;
  not_full : Condition.t;
  not_empty : Condition.t;
  q : 'a Queue.t;
  capacity : int;
  fault : Crd_fault.point option;
  weight : ('a -> int) option;
  mutable closed : bool;
}

let create ?fault ?weight ~capacity () =
  if capacity < 1 then invalid_arg "Bqueue.create: capacity must be >= 1";
  {
    mu = Mutex.create ();
    not_full = Condition.create ();
    not_empty = Condition.create ();
    q = Queue.create ();
    capacity;
    fault;
    weight;
    closed = false;
  }

(* Weight is charged under the queue mutex but into a process-global
   atomic gauge; the gauge can momentarily disagree with the sum of
   queue contents during a push, which is fine for load signals. *)
let charge t x =
  match t.weight with
  | None -> ()
  | Some w -> Crd_obs.Gauge.add (Lazy.force mem_queue_bytes) (w x)

let release t x =
  match t.weight with
  | None -> ()
  | Some w -> Crd_obs.Gauge.add (Lazy.force mem_queue_bytes) (-w x)

let push_raw t x =
  Mutex.lock t.mu;
  while (not t.closed) && Queue.length t.q >= t.capacity do
    Condition.wait t.not_full t.mu
  done;
  let accepted = not t.closed in
  if accepted then begin
    Queue.push x t.q;
    charge t x;
    Condition.signal t.not_empty
  end;
  Mutex.unlock t.mu;
  accepted

let push t x =
  (match t.fault with Some p -> Crd_fault.inject p | None -> ());
  push_raw t x

(* Slice handoff: one lock round per burst instead of per element. The
   whole slice may exceed [capacity]; we admit sub-slices as room opens
   so a slice larger than the queue still goes through (in order), and
   consumers start draining the head while the tail is still waiting. *)
let push_slice t xs pos len =
  if len < 0 || pos < 0 || pos + len > Array.length xs then
    invalid_arg "Bqueue.push_slice";
  (match t.fault with
  | Some p -> if len > 0 then Crd_fault.inject p
  | None -> ());
  if len > 0 then Crd_obs.Histogram.observe (Lazy.force batch_hist) (float_of_int len);
  Mutex.lock t.mu;
  let i = ref pos in
  let stop = pos + len in
  while !i < stop && not t.closed do
    while (not t.closed) && Queue.length t.q >= t.capacity do
      Condition.wait t.not_full t.mu
    done;
    if not t.closed then begin
      let room = t.capacity - Queue.length t.q in
      let n = min room (stop - !i) in
      for k = !i to !i + n - 1 do
        let x = Array.unsafe_get xs k in
        Queue.push x t.q;
        charge t x
      done;
      i := !i + n;
      if n > 1 then Condition.broadcast t.not_empty
      else Condition.signal t.not_empty
    end
  done;
  let accepted = !i - pos in
  Mutex.unlock t.mu;
  accepted

let pop t =
  Mutex.lock t.mu;
  while (not t.closed) && Queue.is_empty t.q do
    Condition.wait t.not_empty t.mu
  done;
  let item =
    if Queue.is_empty t.q then None
    else begin
      let x = Queue.pop t.q in
      release t x;
      Condition.signal t.not_full;
      Some x
    end
  in
  Mutex.unlock t.mu;
  item

(* Batched pop: blocks for the first element, then greedily takes up to
   [max] without further waiting — latency of pop, throughput of a
   burst drain. *)
let pop_batch t ~max:limit =
  if limit < 1 then invalid_arg "Bqueue.pop_batch: max must be >= 1";
  Mutex.lock t.mu;
  while (not t.closed) && Queue.is_empty t.q do
    Condition.wait t.not_empty t.mu
  done;
  let n = min limit (Queue.length t.q) in
  let batch =
    if n = 0 then [||]
    else begin
      let first = Queue.pop t.q in
      release t first;
      let out = Array.make n first in
      for k = 1 to n - 1 do
        let x = Queue.pop t.q in
        release t x;
        Array.unsafe_set out k x
      done;
      if n > 1 then Condition.broadcast t.not_full
      else Condition.signal t.not_full;
      out
    end
  in
  Mutex.unlock t.mu;
  if n > 0 then Crd_obs.Histogram.observe (Lazy.force batch_hist) (float_of_int n);
  batch

let close t =
  Mutex.lock t.mu;
  t.closed <- true;
  Condition.broadcast t.not_full;
  Condition.broadcast t.not_empty;
  Mutex.unlock t.mu

(* Abandon whatever is still queued, releasing its accounted weight —
   the error-path counterpart of pop, so a session that dies mid-drain
   does not leak mem_queue_bytes forever. *)
let discard t =
  Mutex.lock t.mu;
  let n = Queue.length t.q in
  while not (Queue.is_empty t.q) do
    release t (Queue.pop t.q)
  done;
  Condition.broadcast t.not_full;
  Mutex.unlock t.mu;
  n

let length t =
  Mutex.lock t.mu;
  let n = Queue.length t.q in
  Mutex.unlock t.mu;
  n
