let m_bytes =
  Crd_obs.counter ~help:"Raw CRDW bytes appended to session journals"
    "journal_bytes_total"

let m_commits =
  Crd_obs.counter ~help:"Session journals committed (fsync'd end marker)"
    "journal_commits_total"

let m_mmap =
  Crd_obs.counter ~help:"Committed journals replayed via mmap"
    "journal_mmap_total"

let m_mmap_bytes =
  Crd_obs.counter ~help:"Committed journal bytes mapped for replay"
    "journal_mmap_bytes_total"

let m_mmap_fallback =
  Crd_obs.counter ~help:"Journal mmap failures served by the read path"
    "journal_mmap_fallback_total"

let fp_append = Crd_fault.point "journal_append"

(* When armed, [map_committed] behaves as if mmap failed and takes the
   read-everything fallback — chaos coverage for filesystems (or
   platforms) where [Unix.map_file] is unavailable. *)
let fp_mmap = Crd_fault.point "journal_mmap"

let data_path dir nonce = Filename.concat dir (nonce ^ ".crdj")
let commit_path dir nonce = Filename.concat dir (nonce ^ ".commit")
let report_path dir nonce = Filename.concat dir (nonce ^ ".report")

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Directory fsync so a rename survives the crash it is there to
   survive; best-effort on filesystems that refuse it. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.close fd
  | exception Unix.Unix_error _ -> ()

let write_file_atomic ~dir path content =
  let tmp = path ^ ".tmp" in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Proto.write_all fd content;
      Unix.fsync fd);
  Unix.rename tmp path;
  fsync_dir dir

let nonce_counter = Atomic.make 0

let fresh_nonce () =
  Printf.sprintf "s%x-%x-%x"
    (Unix.getpid ())
    (Int64.to_int
       (Int64.logand (Int64.of_float (Unix.gettimeofday () *. 1e6))
          0xFFFFFFFFFFFL))
    (Atomic.fetch_and_add nonce_counter 1)

type t = {
  dir : string;
  nonce : string;
  spec : string;
  fd : Unix.file_descr;
  mutable size : int;
  mutable closed : bool;
}

let start ~dir ~nonce ~spec =
  mkdir_p dir;
  (* A reconnect with the same nonce is a fresh run of the same logical
     session: drop any partial or stale state before the first byte.
     The data file is unlinked rather than O_TRUNC'd: a catch-up
     drainer may still hold an mmap of the previous segment, and
     truncating a mapped file turns its next load into SIGBUS — the
     unlink keeps the old inode alive until the mapping drops. *)
  List.iter
    (fun p -> try Unix.unlink p with Unix.Unix_error _ -> ())
    [ commit_path dir nonce; report_path dir nonce; data_path dir nonce ];
  let fd =
    Unix.openfile (data_path dir nonce)
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
      0o644
  in
  { dir; nonce; spec; fd; size = 0; closed = false }

let nonce t = t.nonce
let size t = t.size

let append_bytes t ?(off = 0) ?len b =
  let len = match len with Some l -> l | None -> Bytes.length b - off in
  Crd_fault.inject fp_append;
  Proto.write_sub t.fd b off len;
  t.size <- t.size + len;
  Crd_obs.Counter.add m_bytes len

let append t ?off ?len s = append_bytes t ?off ?len (Bytes.unsafe_of_string s)

(* The marker records the committed byte count and the handshake's spec
   name — everything recovery needs to replay the session exactly. *)
let commit t =
  Unix.fsync t.fd;
  write_file_atomic ~dir:t.dir
    (commit_path t.dir t.nonce)
    (Printf.sprintf "%d %s\n" t.size t.spec);
  Crd_obs.Counter.incr m_commits

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let write_report ~dir ~nonce text =
  write_file_atomic ~dir (report_path dir nonce) text

(* --- recovery --------------------------------------------------- *)

let committed_unreported ~dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | entries ->
      Array.to_list entries
      |> List.filter_map (fun e ->
             if Filename.check_suffix e ".commit" then
               let nonce = Filename.chop_suffix e ".commit" in
               if Sys.file_exists (report_path dir nonce) then None
               else Some nonce
             else None)
      |> List.sort String.compare

let read_marker ~dir ~nonce =
  let marker = commit_path dir nonce in
  match In_channel.with_open_bin marker In_channel.input_all with
  | exception Sys_error e -> Error e
  | m -> (
      let m = String.trim m in
      let size, spec =
        match String.index_opt m ' ' with
        | Some i ->
            ( int_of_string_opt (String.sub m 0 i),
              String.sub m (i + 1) (String.length m - i - 1) )
        | None -> (int_of_string_opt m, "")
      in
      match size with
      | None -> Error (Printf.sprintf "%s: malformed commit marker" marker)
      | Some size -> Ok (size, spec))

let read_committed ~dir ~nonce =
  match read_marker ~dir ~nonce with
  | Error e -> Error e
  | Ok (size, spec) -> (
      let data = data_path dir nonce in
      match In_channel.with_open_bin data In_channel.input_all with
      | exception Sys_error e -> Error e
      | bytes ->
          if String.length bytes < size then
            Error
              (Printf.sprintf "%s: %d bytes but %d committed" data
                 (String.length bytes) size)
          else
            (* Bytes past the marker were never committed (a crash
               mid-append after a retry): replay only the prefix. *)
            Ok (String.sub bytes 0 size, spec))

let map_committed ~dir ~nonce =
  match read_marker ~dir ~nonce with
  | Error e -> Error e
  | Ok (size, spec) -> (
      let data = data_path dir nonce in
      let fallback () =
        Crd_obs.Counter.incr m_mmap_fallback;
        match read_committed ~dir ~nonce with
        | Error e -> Error e
        | Ok (bytes, spec) ->
            Ok (Crd_wire.Bigcodec.bigstring_of_string bytes, spec)
      in
      let mapped =
        if Crd_fault.fire fp_mmap then Error "fault injected: journal_mmap"
        else Crd_wire.Bigcodec.map_file data
      in
      match mapped with
      | Error _ -> fallback ()
      | Ok b ->
          let dim = Bigarray.Array1.dim b in
          if dim < size then
            Error (Printf.sprintf "%s: %d bytes but %d committed" data dim size)
          else begin
            Crd_obs.Counter.incr m_mmap;
            Crd_obs.Counter.add m_mmap_bytes size;
            (* The torn tail past the marker stays unmapped for the
               decoder: replay sees exactly the committed prefix. *)
            Ok (Bigarray.Array1.sub b 0 size, spec)
          end)
