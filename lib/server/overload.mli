(** The server's degradation ladder and worker watchdog.

    Three admission tiers, driven by live load signals:

    - {b normal}: sessions run the online analyzer, exactly as before;
    - {b spill}: sessions are acked and streamed straight to the
      fsync'd journal at decoder speed, skipping the online analyzer;
      a background catch-up drainer (server.ml) replays the committed
      segments through the sharded chunk pipeline and publishes to the
      racedb under the same session nonce, so race sets stay identical
      to what the online path would have produced;
    - {b shed}: [BUSY retry-after], reserved for memory-budget
      exhaustion — queue pressure alone degrades to spill, never to
      dropped evidence.

    The memory signal sums three process-wide gauges maintained by the
    producers themselves: [mem_queue_bytes] ({!Bqueue} payload
    weights), [mem_intern_bytes] (live {!Crd_wire.Bigcodec} decoder
    state) and [mem_vcpool_bytes] (vector-clock arenas). All figures
    are deliberate approximations: the budget is a degradation
    threshold, not an allocator. *)

type tier = Normal | Spill | Shed

val tier_name : tier -> string
val tier_rank : tier -> int
(** 0, 1, 2 — the [overload_tier] gauge encoding. *)

type limits = {
  memory_budget : int;
      (** accounted-memory bytes that trip the shed tier; [0] = no
          budget (never shed on memory) *)
  spill_watermark : int;
      (** admitted-but-unclaimed sessions that trip the spill tier
          when every worker is busy; [0] = spilling disabled *)
  stall_timeout : float;
      (** seconds without worker progress before the watchdog recycles
          it; [0.] = watchdog disabled *)
}

val no_limits : limits
(** Everything off: byte-for-byte the pre-ladder server behaviour. *)

type t
(** The tier controller: one per server instance. *)

val create : limits -> t
val limits : t -> limits

val tier : t -> tier
(** The tier chosen by the most recent {!evaluate}. *)

val evaluate : t -> pending:int -> active:int -> workers:int -> tier
(** Re-derive the tier from a snapshot of the load signals ([pending]
    admitted-unclaimed sessions, [active] sessions held by workers)
    plus {!mem_used}. Transitions update the [overload_tier] gauge and
    the [overload_to_*_total] counters. Spill exit has hysteresis
    (backlog below half the watermark with a free worker), so the
    ladder does not flap around the threshold. *)

val mem_used : unit -> int
(** Sum of the three accounting gauges, in bytes. *)

val note_spilled : bytes:int -> unit
(** A session was acked via the spill path with [bytes] of committed
    journal: moves [overload_spill_backlog] / [overload_spill_bytes]
    and counts [overload_spilled_sessions_total]. *)

val note_caught_up : bytes:int -> lag_s:float -> unit
(** The drainer finished (or abandoned) a spilled segment: reverses
    the backlog gauges and observes the commit-to-publish lag. *)

val spill_backlog : unit -> int
val spill_bytes : unit -> int

val m_stalls : Crd_obs.Counter.t
(** [server_stalls_total] — workers recycled by the watchdog. *)

val fp_stall : Crd_fault.point
(** The [worker_stall] injection point: a fired hit parks the session's
    worker until the watchdog cancels its heartbeat (see
    {!stall_until_cancelled}). *)

(** Per-worker progress heartbeats, read by the watchdog thread.

    A worker [start_session]s when it picks a connection up, {!Heartbeat.beat}s
    as event batches drain, and [end_session]s before the session
    closes its socket (so the watchdog can never [shutdown] a
    descriptor number the kernel may be about to reuse). The watchdog
    polls {!Heartbeat.check_stall}; a positive verdict marks the heartbeat
    cancelled and surrenders the session fd to the watchdog exactly
    once. *)
module Heartbeat : sig
  type t

  val create : unit -> t
  val start_session : t -> Unix.file_descr -> unit

  val beat : t -> int -> unit
  (** [beat t n]: [n] more events drained; refreshes the stamp. *)

  val end_session : t -> unit

  val cancelled : t -> bool
  (** Cooperative cancellation flag — set by the watchdog; polled by
      {!stall_until_cancelled} (domains cannot be killed). *)

  val events : t -> int
  (** Events drained in the current session. *)

  val check_stall : t -> now:float -> timeout:float -> Unix.file_descr option
  (** [Some fd] iff the worker is mid-session, not yet cancelled, and
      has made no progress for longer than [timeout]: the caller now
      owns writing the retryable ERR and shutting the socket down. *)
end

val stall_until_cancelled : Heartbeat.t -> 'a
(** The [worker_stall] fault body: park (bounded at 60 s) until the
    watchdog cancels the heartbeat, then raise into the worker's crash
    path so the supervisor's existing respawn machinery recycles the
    domain. *)
