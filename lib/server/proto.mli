(** Shared client/server wire protocol pieces.

    A session is: handshake, then one {!Crd_wire.Codec} stream, then a
    UTF-8 report read until end of stream.

    {v
    client -> server:  "CRDS" version varint(len) nonce
                       varint(len) spec-name  CRDW-stream
    server -> client:  0x00                        (handshake accepted)
                    |  0x01 varint(len) message    (rejected, then close)
                    |  0x02 varint(retry-after ms) (busy, then close)
    server -> client:  report text, then close   (after the CRDW end frame)
    v}

    The nonce (possibly empty) names the logical session: a client that
    retries after a lost reply resends the same nonce, and the server
    treats the reconnect as a fresh run of the same session — its
    journal is truncated, not appended to. *)

val magic : string
val version : int

val max_nonce : int
(** Nonce length cap (64 bytes). *)

val valid_nonce : string -> bool
(** Nonces become journal filenames, so only [A-Za-z0-9_-] is let
    through ([""] is valid: the server then journals under a private
    name and retry dedup is off). *)

type handshake = { nonce : string; spec : string }
type reply = Accepted | Rejected of string | Busy of int  (** retry-after ms *)

val fp_io_eintr : Crd_fault.point
(** Fault point ["io_eintr"]: injects [Unix.EINTR] immediately before a
    raw [read]/[write] syscall. The retry wrappers below absorb it, so
    an armed point exercises the interrupt-handling path without a real
    signal storm. {!Crd_sync} shares the point by name for its own fd
    loops. *)

val read_retry : Unix.file_descr -> Bytes.t -> int -> int -> int
(** [Unix.read], retrying on [EINTR]. Returns 0 only at end-of-stream. *)

val write_retry : Unix.file_descr -> Bytes.t -> int -> int -> int
(** [Unix.write], retrying on [EINTR]. May still write short; see
    {!write_sub}. *)

val write_sub : Unix.file_descr -> Bytes.t -> int -> int -> unit
(** [write_sub fd b off len] sends exactly [b[off..off+len)], looping
    over short writes and retrying interrupts — no copy of [b]. *)

val write_all : Unix.file_descr -> string -> unit
(** Loop over [Unix.write] until the whole string is sent; EINTR-safe. *)

val read_exact : Unix.file_descr -> int -> string option
(** [None] on end-of-stream before [n] bytes; EINTR-safe. *)

val read_varint : Unix.file_descr -> (int, string) result

val send_handshake : Unix.file_descr -> ?nonce:string -> spec:string -> unit -> unit
val send_accept : Unix.file_descr -> unit
val send_reject : Unix.file_descr -> string -> unit

val send_busy : Unix.file_descr -> retry_ms:int -> unit
(** Overload shed: the client should back off [retry_ms] and retry. *)

type preamble =
  | Session  (** a CRDS trace session *)
  | Sync of int  (** a CRDY racedb sync exchange, with its version *)
  | Health
      (** an ASCII ["HEALTH\n"] probe: the server answers one
          [key=value] line (tier, backlog, memory budget) and closes *)

val read_preamble : Unix.file_descr -> (preamble, string) result
(** Server side: consume the 5-byte magic + version and classify the
    connection. Session, sync and health clients share the listener. *)

val read_handshake_body : Unix.file_descr -> (handshake, string) result
(** The nonce + spec-set part that follows a [Session] preamble. *)

val read_handshake : Unix.file_descr -> (handshake, string) result
(** [read_preamble] + [read_handshake_body]; rejects sync preambles.
    Server side: the requested session nonce and spec-set name. *)

val read_handshake_reply : Unix.file_descr -> (reply, string) result
(** Client side: decode accept/reject/busy. [Error _] is a transport or
    framing failure, not a server decision. *)

val read_to_eof : Unix.file_descr -> string
