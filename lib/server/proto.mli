(** Shared client/server wire protocol pieces.

    A session is: handshake, then one {!Crd_wire.Codec} stream, then a
    UTF-8 report read until end of stream.

    {v
    client -> server:  "CRDS" version varint(len) spec-name  CRDW-stream
    server -> client:  0x00                      (handshake accepted)
                    |  0x01 varint(len) message  (rejected, then close)
    server -> client:  report text, then close   (after the CRDW end frame)
    v} *)

val magic : string
val version : int

val write_all : Unix.file_descr -> string -> unit
(** Loop over [Unix.write] until the whole string is sent. *)

val read_exact : Unix.file_descr -> int -> string option
(** [None] on end-of-stream before [n] bytes. *)

val read_varint : Unix.file_descr -> (int, string) result

val send_handshake : Unix.file_descr -> spec:string -> unit
val send_accept : Unix.file_descr -> unit
val send_reject : Unix.file_descr -> string -> unit

val read_handshake : Unix.file_descr -> (string, string) result
(** Server side: returns the requested spec-set name. *)

val read_handshake_reply : Unix.file_descr -> (unit, string) result
(** Client side: decode accept/reject. *)

val read_to_eof : Unix.file_descr -> string
