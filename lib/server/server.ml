open Crd

type addr = Unix_sock of string | Tcp of string * int

let addr_of_string s =
  match String.index_opt s ':' with
  | Some i when String.sub s 0 i = "unix" ->
      let path = String.sub s (i + 1) (String.length s - i - 1) in
      if path = "" then Error "unix: empty socket path" else Ok (Unix_sock path)
  | Some i when String.sub s 0 i = "tcp" -> (
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match String.rindex_opt rest ':' with
      | None -> Error "tcp: expected tcp:HOST:PORT"
      | Some j -> (
          let host = String.sub rest 0 j in
          let port = String.sub rest (j + 1) (String.length rest - j - 1) in
          match int_of_string_opt port with
          | Some p when p > 0 && p < 65536 ->
              Ok (Tcp ((if host = "" then "127.0.0.1" else host), p))
          | _ -> Error (Printf.sprintf "tcp: bad port %S" port)))
  | _ -> Error (Printf.sprintf "bad address %S (want unix:PATH or tcp:HOST:PORT)" s)

let pp_addr ppf = function
  | Unix_sock p -> Fmt.pf ppf "unix:%s" p
  | Tcp (h, p) -> Fmt.pf ppf "tcp:%s:%d" h p

type config = {
  addr : addr;
  workers : int;
  queue_capacity : int;
  idle_timeout : float;
  analyzer : Analyzer.config;
  jobs : int;
  specs : Spec.t list option;
}

let default_analyzer =
  {
    Analyzer.rd2 = `Constant;
    direct = false;
    fasttrack = false;
    djit = false;
    atomicity = false;
  }

let default_config ~addr =
  {
    addr;
    workers = Shard.recommended_jobs ();
    queue_capacity = 1024;
    idle_timeout = 30.;
    analyzer = default_analyzer;
    jobs = 1;
    specs = None;
  }

type stats = { sessions : int; events : int; races : int; errors : int }

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  conns : Unix.file_descr Bqueue.t;
  stopping : bool Atomic.t;
  mutable accept_d : unit Domain.t option;
  mutable workers_d : unit Domain.t list;
  mu : Mutex.t;
  mutable st : stats;
  sock_path : string option;
  mutable stopped : bool;
}

let stats t =
  Mutex.lock t.mu;
  let s = t.st in
  Mutex.unlock t.mu;
  s

let record t ~events ~races ~error =
  Mutex.lock t.mu;
  t.st <-
    {
      sessions = (t.st.sessions + if error then 0 else 1);
      events = t.st.events + events;
      races = t.st.races + races;
      errors = (t.st.errors + if error then 1 else 0);
    };
  Mutex.unlock t.mu

(* ------------------------------------------------------------------ *)
(* Specification sets                                                  *)
(* ------------------------------------------------------------------ *)

(* The same object -> spec naming convention as `rd2 check`: an object
   named <spec> or <spec>:<suffix> uses the specification <spec>. *)
let base_name o =
  let name = Crd_base.Obj_id.name o in
  match String.index_opt name ':' with
  | Some i -> String.sub name 0 i
  | None -> name

let std_spec_for o = Stdspecs.find (base_name o)

let spec_for_of_list specs o =
  let base = base_name o in
  List.find_opt (fun s -> String.equal (Spec.name s) base) specs

let resolve_spec_set cfg = function
  | "" | "std" -> Ok std_spec_for
  | "custom" -> (
      match cfg.specs with
      | Some specs -> Ok (spec_for_of_list specs)
      | None -> Error "server has no custom specification set loaded")
  | other -> Error (Printf.sprintf "unknown specification set %S" other)

(* ------------------------------------------------------------------ *)
(* Sessions                                                            *)
(* ------------------------------------------------------------------ *)

type item = Ev of Crd_trace.Event.t | Bad of string

(* Socket-reader: decode incoming bytes and push events into the
   session's bounded queue. Runs in its own thread so that a full queue
   blocks this reader (and, transitively, the client) rather than
   growing server memory. *)
let read_loop conn q =
  let dec = Crd_wire.Codec.Decoder.create () in
  let buf = Bytes.create 32768 in
  let stop = ref false in
  while not !stop do
    match Unix.read conn buf 0 (Bytes.length buf) with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        ignore (Bqueue.push q (Bad "idle timeout: no client bytes"));
        stop := true
    | exception Unix.Unix_error (e, _, _) ->
        ignore (Bqueue.push q (Bad (Unix.error_message e)));
        stop := true
    | 0 ->
        (match Crd_wire.Codec.Decoder.finish dec with
        | Ok () -> ()
        | Error e ->
            ignore (Bqueue.push q (Bad (Crd_wire.Codec.error_to_string e))));
        stop := true
    | n -> (
        match Crd_wire.Codec.Decoder.feed dec (Bytes.sub_string buf 0 n) with
        | Error e ->
            ignore (Bqueue.push q (Bad (Crd_wire.Codec.error_to_string e)));
            stop := true
        | Ok events ->
            List.iter
              (fun e -> if not (Bqueue.push q (Ev e)) then stop := true)
              events;
            (* The end-of-stream frame, not EOF, ends ingestion: the
               client keeps the socket open to read its report. *)
            if Crd_wire.Codec.Decoder.finished dec then stop := true)
  done;
  Bqueue.close q

(* Drain the session queue into an online analyzer (jobs = 1) or a
   recorded trace re-analyzed with Shard at end-of-stream (jobs > 1).
   Returns the report text plus counters for the server stats. *)
let analyze_session cfg spec_for q =
  let buf = Buffer.create 1024 in
  let ppf = Fmt.with_buffer buf in
  let fin () =
    Fmt.flush ppf ();
    Buffer.contents buf
  in
  let races_text rd2 ft viol =
    List.iter (fun r -> Fmt.pf ppf "%a@." Report.pp r) rd2;
    List.iter (fun r -> Fmt.pf ppf "%a@." Rw_report.pp r) ft;
    List.iter (fun v -> Fmt.pf ppf "%a@." Atomicity.pp_violation v) viol
  in
  if cfg.jobs <= 1 then (
    match Analyzer.create ~config:cfg.analyzer ~spec_for () with
    | Error e -> Error e
    | Ok an -> (
        let rec drain () =
          match Bqueue.pop q with
          | None -> Ok ()
          | Some (Bad msg) -> Error msg
          | Some (Ev e) ->
              Analyzer.step an e;
              drain ()
        in
        match (try drain () with Invalid_argument e -> Error e) with
        | Error e -> Error e
        | Ok () ->
            let rd2 = Analyzer.rd2_races an in
            Fmt.pf ppf "OK@.%a@." Analyzer.pp_summary an;
            races_text rd2 (Analyzer.fasttrack_races an)
              (Analyzer.atomicity_violations an);
            Ok (fin (), Analyzer.events an, List.length rd2)))
  else
    let trace = Trace.create () in
    let rec drain () =
      match Bqueue.pop q with
      | None -> Ok ()
      | Some (Bad msg) -> Error msg
      | Some (Ev e) ->
          Trace.append trace e;
          drain ()
    in
    match drain () with
    | Error e -> Error e
    | Ok () -> (
        match Shard.analyze ~jobs:cfg.jobs ~config:cfg.analyzer ~spec_for trace with
        | Error e -> Error e
        | Ok res ->
            Fmt.pf ppf "OK@.%a@." Shard.pp_summary res;
            races_text res.Shard.rd2_reports res.Shard.fasttrack_reports
              res.Shard.atomicity_violations;
            Ok (fin (), res.Shard.events, List.length res.Shard.rd2_reports))

let session t conn =
  let cfg = t.cfg in
  if cfg.idle_timeout > 0. then begin
    try Unix.setsockopt_float conn Unix.SO_RCVTIMEO cfg.idle_timeout
    with Unix.Unix_error _ -> ()
  end;
  let finish outcome =
    (match outcome with
    | Ok (reply, events, races) ->
        (try Proto.write_all conn reply with Unix.Unix_error _ -> ());
        record t ~events ~races ~error:false
    | Error msg ->
        (try Proto.write_all conn ("ERR " ^ msg ^ "\n")
         with Unix.Unix_error _ -> ());
        record t ~events:0 ~races:0 ~error:true);
    (try Unix.shutdown conn Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    try Unix.close conn with Unix.Unix_error _ -> ()
  in
  match Proto.read_handshake conn with
  | Error msg ->
      (try Proto.send_reject conn msg with Unix.Unix_error _ -> ());
      record t ~events:0 ~races:0 ~error:true;
      (try Unix.close conn with Unix.Unix_error _ -> ())
  | Ok spec_name -> (
      match resolve_spec_set cfg spec_name with
      | Error msg ->
          (try Proto.send_reject conn msg with Unix.Unix_error _ -> ());
          record t ~events:0 ~races:0 ~error:true;
          (try Unix.close conn with Unix.Unix_error _ -> ())
      | Ok spec_for ->
          (try Proto.send_accept conn with Unix.Unix_error _ -> ());
          let q = Bqueue.create ~capacity:cfg.queue_capacity in
          let reader = Thread.create (fun () -> read_loop conn q) () in
          let outcome =
            try analyze_session cfg spec_for q
            with e -> Error (Printexc.to_string e)
          in
          (* On an analysis-side abort the reader may still be blocked
             pushing: closing the queue releases it. *)
          Bqueue.close q;
          Thread.join reader;
          finish outcome)

(* ------------------------------------------------------------------ *)
(* Accept loop and worker pool                                         *)
(* ------------------------------------------------------------------ *)

let accept_loop t =
  while not (Atomic.get t.stopping) do
    match Unix.select [ t.listen_fd ] [] [] 0.25 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
        match Unix.accept t.listen_fd with
        | exception
            Unix.Unix_error
              ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR | Unix.ECONNABORTED), _, _)
          ->
            ()
        | exception Unix.Unix_error _ -> Atomic.set t.stopping true
        | conn, _ ->
            Unix.clear_nonblock conn;
            if not (Bqueue.push t.conns conn) then (
              try Unix.close conn with Unix.Unix_error _ -> ()))
  done

let worker_loop t =
  let continue = ref true in
  while !continue do
    match Bqueue.pop t.conns with
    | None -> continue := false
    | Some conn -> (
        try session t conn
        with e ->
          (try Unix.close conn with Unix.Unix_error _ -> ());
          ignore (Printexc.to_string e))
  done

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let bind_listen addr =
  match addr with
  | Unix_sock path ->
      if Sys.file_exists path then (
        match (Unix.stat path).Unix.st_kind with
        | Unix.S_SOCK -> (try Unix.unlink path with Unix.Unix_error _ -> ())
        | _ -> failwith (Printf.sprintf "%s exists and is not a socket" path));
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      (fd, Some path)
  | Tcp (host, port) ->
      let ip =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          match Unix.gethostbyname host with
          | { Unix.h_addr_list = [||]; _ } ->
              failwith (Printf.sprintf "cannot resolve host %s" host)
          | h -> h.Unix.h_addr_list.(0)
          | exception Not_found ->
              failwith (Printf.sprintf "cannot resolve host %s" host))
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (ip, port));
      Unix.listen fd 64;
      (fd, None)

let start cfg =
  (* A dead client must surface as EPIPE on write, not kill the server. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  match bind_listen cfg.addr with
  | exception Failure msg -> Error msg
  | exception Unix.Unix_error (e, fn, arg) ->
      Error
        (Printf.sprintf "%s: %s(%s): %s"
           (Fmt.str "%a" pp_addr cfg.addr)
           fn arg (Unix.error_message e))
  | listen_fd, sock_path ->
      Unix.set_nonblock listen_fd;
      let workers = max 1 cfg.workers in
      let t =
        {
          cfg = { cfg with workers };
          listen_fd;
          conns = Bqueue.create ~capacity:(max 16 (2 * workers));
          stopping = Atomic.make false;
          accept_d = None;
          workers_d = [];
          mu = Mutex.create ();
          st = { sessions = 0; events = 0; races = 0; errors = 0 };
          sock_path;
          stopped = false;
        }
      in
      t.workers_d <-
        List.init workers (fun _ -> Domain.spawn (fun () -> worker_loop t));
      t.accept_d <- Some (Domain.spawn (fun () -> accept_loop t));
      Ok t

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    Atomic.set t.stopping true;
    (match t.accept_d with Some d -> Domain.join d | None -> ());
    (* Already-accepted connections stay in the queue and are drained:
       every in-flight session flushes its report before we return. *)
    Bqueue.close t.conns;
    List.iter Domain.join t.workers_d;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    match t.sock_path with
    | Some path -> ( try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
    | None -> ()
  end;
  stats t

let serve cfg =
  match start cfg with
  | Error e -> Error e
  | Ok t ->
      let interrupted = Atomic.make false in
      let handler = Sys.Signal_handle (fun _ -> Atomic.set interrupted true) in
      (try Sys.set_signal Sys.sigterm handler with Invalid_argument _ -> ());
      (try Sys.set_signal Sys.sigint handler with Invalid_argument _ -> ());
      while not (Atomic.get interrupted) do
        Unix.sleepf 0.2
      done;
      Ok (stop t)
