open Crd

type addr = Unix_sock of string | Tcp of string * int

let tcp_of_host_port host port_s =
  match int_of_string_opt port_s with
  | Some p when p > 0 && p < 65536 ->
      Ok (Tcp ((if host = "" then "127.0.0.1" else host), p))
  | _ -> Error (Printf.sprintf "tcp: bad port %S" port_s)

(* HOST:PORT where HOST may be a bracketed IPv6 literal ([::1]:9000) or
   anything colon-free; a bare IPv6 literal is ambiguous and rejected. *)
let parse_host_port rest =
  if String.length rest > 0 && rest.[0] = '[' then
    match String.index_opt rest ']' with
    | None -> Error "tcp: unterminated '[' in tcp:[V6HOST]:PORT"
    | Some j ->
        let host = String.sub rest 1 (j - 1) in
        if host = "" then Error "tcp: empty host in tcp:[V6HOST]:PORT"
        else if j + 1 >= String.length rest || rest.[j + 1] <> ':' then
          Error "tcp: expected ':' after ']' in tcp:[V6HOST]:PORT"
        else
          tcp_of_host_port host
            (String.sub rest (j + 2) (String.length rest - j - 2))
  else
    (* Last-colon split, so an unbracketed IPv6 literal still parses
       (the part after its last colon is the port). *)
    match String.rindex_opt rest ':' with
    | None -> Error "tcp: expected tcp:HOST:PORT"
    | Some j ->
        tcp_of_host_port (String.sub rest 0 j)
          (String.sub rest (j + 1) (String.length rest - j - 1))

let addr_of_string s =
  match String.index_opt s ':' with
  | Some i when String.sub s 0 i = "unix" ->
      let path = String.sub s (i + 1) (String.length s - i - 1) in
      if path = "" then Error "unix: empty socket path" else Ok (Unix_sock path)
  | Some i when String.sub s 0 i = "tcp" ->
      parse_host_port (String.sub s (i + 1) (String.length s - i - 1))
  | _ -> Error (Printf.sprintf "bad address %S (want unix:PATH or tcp:HOST:PORT)" s)

let pp_addr ppf = function
  | Unix_sock p -> Fmt.pf ppf "unix:%s" p
  | Tcp (h, p) when String.contains h ':' -> Fmt.pf ppf "tcp:[%s]:%d" h p
  | Tcp (h, p) -> Fmt.pf ppf "tcp:%s:%d" h p

type config = {
  addr : addr;
  metrics_addr : addr option;
  workers : int;
  queue_capacity : int;
  idle_timeout : float;
  analyzer : Analyzer.config;
  jobs : int;
  specs : Spec.t list option;
  shed_backlog : int;
  retry_after_ms : int;
  journal : string option;
  resync : bool;
  racedb : string option;
  peers : addr list;
  sync_interval : float;
  memory_budget : int;
  spill_watermark : int;
  stall_timeout : float;
}

let default_analyzer =
  {
    Analyzer.rd2 = `Constant;
    direct = false;
    fasttrack = false;
    djit = false;
    atomicity = false;
  }

let default_config ~addr =
  {
    addr;
    metrics_addr = None;
    workers = Shard.recommended_jobs ();
    queue_capacity = 1024;
    idle_timeout = 30.;
    analyzer = default_analyzer;
    jobs = 1;
    specs = None;
    shed_backlog = 0;
    retry_after_ms = 200;
    journal = None;
    resync = false;
    racedb = None;
    peers = [];
    sync_interval = 30.;
    memory_budget = 0;
    spill_watermark = 0;
    stall_timeout = 0.;
  }

type stats = {
  sessions : int;
  events : int;
  races : int;
  errors : int;
  accept_errors : int;
  busy : int;
  worker_crashes : int;
  recovered : int;
  spilled : int;
  caught_up : int;
  stalls : int;
}

(* ------------------------------------------------------------------ *)
(* Metrics (process-wide registry, see Crd_obs)                        *)
(* ------------------------------------------------------------------ *)

let m_accepted =
  Crd_obs.counter ~help:"Connections accepted" "server_accepted_total"

let m_sessions =
  Crd_obs.counter ~help:"Sessions completed, error sessions included"
    "server_sessions_total"

let m_active =
  Crd_obs.gauge ~help:"Sessions currently in flight" "server_sessions_active"

let m_rejected =
  Crd_obs.counter ~help:"Sessions rejected at the handshake"
    "server_rejected_total"

let m_accept_errors =
  Crd_obs.counter ~help:"Transient accept() failures survived with backoff"
    "server_accept_errors_total"

let m_errors =
  Crd_obs.counter ~help:"Sessions that ended in an error"
    "server_errors_total"

let m_events =
  Crd_obs.counter ~help:"Events analyzed across all sessions"
    "server_events_total"

let m_races =
  Crd_obs.counter ~help:"RD2 races reported across all sessions"
    "server_races_total"

let m_conn_queue_hw =
  Crd_obs.gauge ~help:"High-water of the accepted-connection queue"
    "server_conn_queue_depth_hw"

let m_session_queue_hw =
  Crd_obs.gauge ~help:"High-water of per-session event queues"
    "server_session_queue_depth_hw"

let m_handshake_seconds =
  Crd_obs.histogram ~help:"Handshake phase duration" "server_handshake_seconds"

let m_analyze_seconds =
  Crd_obs.histogram ~help:"Ingest-and-analyze phase duration"
    "server_analyze_seconds"

let m_session_seconds =
  Crd_obs.histogram ~help:"Whole-session duration" "server_session_seconds"

let m_busy =
  Crd_obs.counter ~help:"Connections shed with a BUSY reply under overload"
    "server_busy_total"

let m_worker_crashes =
  Crd_obs.counter ~help:"Worker domains that died and were respawned"
    "server_worker_crashes_total"

let m_recovered =
  Crd_obs.counter ~help:"Journaled sessions replayed after a restart"
    "server_recovered_sessions_total"

let m_retries =
  Crd_obs.counter ~help:"Sessions whose nonce was seen before (client retries)"
    "server_session_retries_total"

let m_racedb_published =
  Crd_obs.counter ~help:"Race reports handed to the racedb publisher"
    "racedb_published_total"

let m_racedb_dropped =
  Crd_obs.counter ~help:"Race reports dropped at a full racedb queue"
    "racedb_dropped_total"

let m_racedb_errors =
  Crd_obs.counter ~help:"Racedb appends that failed (fault or I/O)"
    "racedb_publish_errors_total"

let m_racedb_queue_hw =
  Crd_obs.gauge ~help:"High-water of the racedb publish queue"
    "racedb_queue_depth_hw"

(* Chaos injection points threaded through the ingestion pipeline; see
   Crd_fault. queue_push lives in each session's Bqueue, decode_frame
   in Crd_wire.Codec, journal_append in Journal. *)
let fp_sock_read = Crd_fault.point "sock_read"
let fp_sock_write = Crd_fault.point "sock_write"
let fp_worker_body = Crd_fault.point "worker_body"
let fp_queue_push = Crd_fault.point "queue_push"

(* [report_send] is a stall, not an error: a fired hit parks the worker
   between journal commit and reply, holding the kill window open for
   the crash-recovery test. *)
let fp_report_send = Crd_fault.point "report_send"

(* Error taxonomy: where in the pipeline a session died. *)
type err_kind = Handshake | Spec | Timeout | Decode | Io | Analysis

let err_kind_label = function
  | Handshake -> "handshake"
  | Spec -> "spec"
  | Timeout -> "timeout"
  | Decode -> "decode"
  | Io -> "io"
  | Analysis -> "analysis"

let err_counter =
  let all = [ Handshake; Spec; Timeout; Decode; Io; Analysis ] in
  let tbl =
    List.map
      (fun k ->
        ( k,
          Crd_obs.counter
            ~help:("Sessions failed in the " ^ err_kind_label k ^ " stage")
            ("server_errors_" ^ err_kind_label k ^ "_total") ))
      all
  in
  fun k -> List.assq k tbl

(* The race-database sink decouples sessions from storage: workers drop
   whole session batches into a bounded queue (never blocking the report
   path — a full queue drops and counts) and one publisher thread owns
   every [Db.publish]. A batch carries its session nonce so the db can
   deduplicate: a journal replay of an already-published session is a
   no-op instead of an inflated count. *)
type sink = {
  db : Crd_racedb.Db.t;
  queue : (string * Crd_racedb.Record.t list) Bqueue.t;
  capacity : int;
  mutable publisher : Thread.t option;
}

let sink_capacity = 4096

let sink_publish sink ~nonce ~spec reports =
  if reports <> [] then begin
    let ts = Unix.gettimeofday () in
    let spec = if spec = "" then "std" else spec in
    let records = List.map (fun r -> Crd_racedb.Record.make ~ts ~spec r) reports in
    let n = List.length records in
    (* Best-effort bound check, then a non-faultable push: the sink
       must never stall a session, only shed under pressure. *)
    if Bqueue.length sink.queue >= sink.capacity then
      Crd_obs.Counter.add m_racedb_dropped n
    else if Bqueue.push_raw sink.queue (nonce, records) then begin
      Crd_obs.Counter.add m_racedb_published n;
      Crd_obs.Gauge.set_max m_racedb_queue_hw (Bqueue.length sink.queue)
    end
    else Crd_obs.Counter.add m_racedb_dropped n
  end

let sink_loop sink =
  let continue = ref true in
  while !continue do
    match Bqueue.pop sink.queue with
    | None -> continue := false
    | Some (nonce, records) -> (
        try
          if not (Crd_racedb.Db.publish sink.db ~nonce records) then
            Crd_obs.Log.info "racedb_publish_dedup" [ ("nonce", nonce) ]
        with
        | Crd_fault.Injected p ->
            Crd_obs.Counter.incr m_racedb_errors;
            Crd_obs.Log.warn "racedb_append_fault" [ ("point", p) ]
        | Unix.Unix_error (e, fn, _) ->
            Crd_obs.Counter.incr m_racedb_errors;
            Crd_obs.Log.err "racedb_append_failed"
              [ ("fn", fn); ("err", Unix.error_message e) ])
  done

let sink_start dir =
  match Crd_racedb.Db.open_db dir with
  | Error e -> Error e
  | Ok db ->
      let sink =
        {
          db;
          queue = Bqueue.create ~capacity:sink_capacity ();
          capacity = sink_capacity;
          publisher = None;
        }
      in
      sink.publisher <- Some (Thread.create sink_loop sink);
      Ok sink

let sink_stop sink =
  Bqueue.close sink.queue;
  (match sink.publisher with Some th -> Thread.join th | None -> ());
  Crd_racedb.Db.close sink.db

type t = {
  cfg : config;
  racedb : sink option;
  listen_fd : Unix.file_descr;
  (* Each admitted connection carries the tier it was admitted under:
     the spill decision is made once, at admission, so tests (and
     operators reading logs) see deterministic per-session verdicts
     instead of a race against the signals draining. *)
  conns : (Unix.file_descr * Overload.tier) Bqueue.t;
  overload : Overload.t;
  heartbeats : Overload.Heartbeat.t array;  (* one per worker slot *)
  catchup : (string * float * int) Bqueue.t;  (* nonce, committed_at, bytes *)
  mutable catchup_th : Thread.t option;  (* spill catch-up drainer *)
  mutable watchdog_th : Thread.t option;
  stopping : bool Atomic.t;
  active : int Atomic.t;  (* sessions currently held by workers *)
  mutable accept_d : unit Domain.t option;
  slots : unit Domain.t option array;  (* one per live worker *)
  deaths : int Bqueue.t;  (* crashed worker slots, for the supervisor *)
  mutable graveyard : unit Domain.t list;  (* dead workers awaiting join *)
  mutable supervisor : Thread.t option;
  mutable syncer : Thread.t option;  (* anti-entropy loop over [cfg.peers] *)
  mutable metrics_d : unit Domain.t option;
  metrics_fd : Unix.file_descr option;
  metrics_path : string option;
  mu : Mutex.t;
  mutable st : stats;
  seen_nonces : (string, unit) Hashtbl.t;  (* under [mu] *)
  sock_path : string option;
  mutable stopped : bool;
  inject_accept : Unix.error list Atomic.t;  (* test instrumentation *)
}

let stats t =
  Mutex.lock t.mu;
  let s = t.st in
  Mutex.unlock t.mu;
  s

(* [sessions] counts every completed session; [errors] is the subset
   that died — see server.mli. *)
let record t ~events ~races ~error =
  Mutex.lock t.mu;
  t.st <-
    {
      t.st with
      sessions = t.st.sessions + 1;
      events = t.st.events + events;
      races = t.st.races + races;
      errors = (t.st.errors + if error then 1 else 0);
    };
  Mutex.unlock t.mu;
  Crd_obs.Counter.incr m_sessions;
  Crd_obs.Counter.add m_events events;
  Crd_obs.Counter.add m_races races;
  if error then Crd_obs.Counter.incr m_errors

let record_accept_error t =
  Mutex.lock t.mu;
  t.st <- { t.st with accept_errors = t.st.accept_errors + 1 };
  Mutex.unlock t.mu;
  Crd_obs.Counter.incr m_accept_errors

let record_busy t =
  Mutex.lock t.mu;
  t.st <- { t.st with busy = t.st.busy + 1 };
  Mutex.unlock t.mu;
  Crd_obs.Counter.incr m_busy

let record_worker_crash t =
  Mutex.lock t.mu;
  t.st <- { t.st with worker_crashes = t.st.worker_crashes + 1 };
  Mutex.unlock t.mu;
  Crd_obs.Counter.incr m_worker_crashes

let record_recovered t =
  Mutex.lock t.mu;
  t.st <- { t.st with recovered = t.st.recovered + 1 };
  Mutex.unlock t.mu;
  Crd_obs.Counter.incr m_recovered

(* A spilled session is complete from the client's point of view (its
   events are committed and acked) but its races are still pending:
   they arrive later via [record_catchup], which adds only the race
   count so totals never double-count. *)
let record_spilled t ~events =
  Mutex.lock t.mu;
  t.st <-
    {
      t.st with
      sessions = t.st.sessions + 1;
      events = t.st.events + events;
      spilled = t.st.spilled + 1;
    };
  Mutex.unlock t.mu;
  Crd_obs.Counter.incr m_sessions;
  Crd_obs.Counter.add m_events events

let record_catchup t ~races =
  Mutex.lock t.mu;
  t.st <-
    { t.st with races = t.st.races + races; caught_up = t.st.caught_up + 1 };
  Mutex.unlock t.mu;
  Crd_obs.Counter.add m_races races

let record_stall t =
  Mutex.lock t.mu;
  t.st <- { t.st with stalls = t.st.stalls + 1 };
  Mutex.unlock t.mu;
  Crd_obs.Counter.incr Overload.m_stalls

(* True iff this nonce was already seen by this server instance — a
   client retry of the same logical session. *)
let note_nonce t nonce =
  if nonce = "" then false
  else begin
    Mutex.lock t.mu;
    let seen = Hashtbl.mem t.seen_nonces nonce in
    if not seen then Hashtbl.add t.seen_nonces nonce ();
    Mutex.unlock t.mu;
    if seen then Crd_obs.Counter.incr m_retries;
    seen
  end

(* ------------------------------------------------------------------ *)
(* Specification sets                                                  *)
(* ------------------------------------------------------------------ *)

(* The same object -> spec naming convention as `rd2 check`: an object
   named <spec> or <spec>:<suffix> uses the specification <spec>. *)
let base_name o =
  let name = Crd_base.Obj_id.name o in
  match String.index_opt name ':' with
  | Some i -> String.sub name 0 i
  | None -> name

let std_spec_for o = Stdspecs.find (base_name o)

let spec_for_of_list specs o =
  let base = base_name o in
  List.find_opt (fun s -> String.equal (Spec.name s) base) specs

let resolve_spec_set cfg = function
  | "" | "std" -> Ok std_spec_for
  | "custom" -> (
      match cfg.specs with
      | Some specs -> Ok (spec_for_of_list specs)
      | None -> Error "server has no custom specification set loaded")
  | other -> Error (Printf.sprintf "unknown specification set %S" other)

(* ------------------------------------------------------------------ *)
(* Sessions                                                            *)
(* ------------------------------------------------------------------ *)

type item = Ev of Crd_trace.Event.t | Bad of err_kind * string

(* The rough per-item byte cost charged into [mem_queue_bytes]: an
   [Event.t] is a small record plus an op constructor and its payload
   boxes. A constant keeps the weight function allocation-free. *)
let item_weight = function
  | Ev _ -> 128
  | Bad (_, msg) -> 64 + String.length msg

(* Events per Bqueue handoff slice. One mutex round per slice instead
   of per event — the cheapest analyzer-throughput win the ROADMAP
   names, observable in the [bqueue_batch_size] histogram. *)
let handoff_batch = 256

(* Socket-reader: decode incoming bytes and push events into the
   session's bounded queue, [handoff_batch] events per push. Runs in
   its own thread so that a full queue blocks this reader (and,
   transitively, the client) rather than growing server memory. [hw]
   tracks the queue's high-water mark.

   With a journal attached, every raw byte is appended before it is
   decoded, and the journal is committed the moment the decoder sees
   the end-of-stream frame — before analysis, so a server killed while
   analyzing (or stalled before the reply) leaves a replayable journal.

   Error items travel via [Bqueue.push_raw]: the [queue_push] fault must
   not be able to fault away its own error report. *)
let read_loop ?journal ~resync conn q hw =
  let dec = Crd_wire.Bigcodec.Decoder.create ~resync () in
  let buf = Bytes.create 65536 in
  let stop = ref false in
  (* The pending handoff slice. Slots are always overwritten before
     [blen] reaches them; the placeholder is never observed. *)
  let batch = Array.make handoff_batch (Bad (Io, "uninitialized")) in
  let blen = ref 0 in
  let flush () =
    if !blen > 0 then begin
      let n = Bqueue.push_slice q batch 0 !blen in
      if n < !blen then stop := true;
      blen := 0
    end
  in
  let bad kind msg =
    (* Events decoded before the failure still count: deliver them
       ahead of the error item so the analyzer's totals are exact. *)
    (try flush () with Crd_fault.Injected _ -> blen := 0);
    ignore (Bqueue.push_raw q (Bad (kind, msg)));
    stop := true
  in
  let push_ev e =
    batch.(!blen) <- Ev e;
    incr blen;
    if !blen >= handoff_batch then flush ()
  in
  Fun.protect
    ~finally:(fun () ->
      Crd_wire.Bigcodec.Decoder.release dec;
      (match journal with Some j -> Journal.close j | None -> ());
      Bqueue.close q)
    (fun () ->
      while not !stop do
        match
          if Crd_fault.fire fp_sock_read then
            raise
              (Unix.Unix_error (Unix.EIO, "read", "injected fault: sock_read"));
          Proto.read_retry conn buf 0 (Bytes.length buf)
        with
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            bad Timeout "idle timeout: no client bytes"
        | exception Unix.Unix_error (e, _, arg) ->
            bad Io
              (if arg = "" then Unix.error_message e
               else Unix.error_message e ^ " (" ^ arg ^ ")")
        | 0 ->
            (match Crd_wire.Bigcodec.Decoder.finish dec with
            | Ok () -> ()
            | Error e -> bad Decode (Crd_wire.Codec.error_to_string e));
            stop := true
        | n -> (
            (* Journal and decoder consume the same read slice in place:
               no [Bytes.sub_string] copies on the hot ingest path. *)
            (match journal with
            | Some j -> (
                try Journal.append_bytes j ~len:n buf
                with
                | Crd_fault.Injected p ->
                    bad Io (Printf.sprintf "injected fault: %s" p)
                | Unix.Unix_error (e, fn, _) ->
                    bad Io
                      (Printf.sprintf "journal %s: %s" fn (Unix.error_message e)))
            | None -> ());
            if not !stop then
              match
                (* Events go from the decoder into the handoff slice and
                   from there into the queue in batches: no per-read
                   event list and no per-event lock on the hot path. *)
                try
                  let r =
                    Crd_wire.Bigcodec.Decoder.feed_bytes_iter dec ~len:n buf
                      ~f:push_ev
                  in
                  flush ();
                  r
                with Crd_fault.Injected p ->
                  bad Io (Printf.sprintf "injected fault: %s" p);
                  Ok ()
              with
              | Error e -> bad Decode (Crd_wire.Codec.error_to_string e)
              | Ok () ->
                  let depth = Bqueue.length q in
                  if depth > !hw then begin
                    hw := depth;
                    Crd_obs.Gauge.set_max m_session_queue_hw depth
                  end;
                  (* The end-of-stream frame, not EOF, ends ingestion:
                     the client keeps the socket open to read its
                     report. *)
                  if Crd_wire.Bigcodec.Decoder.finished dec && not !stop
                  then begin
                    (match journal with
                    | Some j -> (
                        try Journal.commit j
                        with Unix.Unix_error (e, fn, _) ->
                          bad Io
                            (Printf.sprintf "journal %s: %s" fn
                               (Unix.error_message e)))
                    | None -> ());
                    stop := true
                  end)
      done)

(* The one guarded drain both analysis paths share: a malformed event
   surfaces as Invalid_argument from the analyzers (e.g. [Repr.eta] on a
   wrong-arity call), and must become a clean [ERR] line for the client,
   never a generic exception dump — under any [jobs] setting.

   Items arrive a [pop_batch] slice at a time (matching the reader's
   batched handoff); [beat], when given, hears each batch size — it is
   the worker's progress heartbeat for the stall watchdog. *)
let drain_events ?beat q ~f =
  let result = ref None in
  (try
     while !result = None do
       let slice = Bqueue.pop_batch q ~max:handoff_batch in
       let n = Array.length slice in
       if n = 0 then result := Some (Ok ())
       else begin
         (match beat with Some b -> b n | None -> ());
         let i = ref 0 in
         while !result = None && !i < n do
           (match slice.(!i) with
           | Ev e -> f e
           | Bad (kind, msg) -> result := Some (Error (kind, msg)));
           incr i
         done
       end
     done
   with Invalid_argument e -> result := Some (Error (Analysis, e)));
  Option.get !result

(* The one analysis entry point both live sessions and journal recovery
   go through, so a replayed session's report is byte-identical to the
   one the dead server would have sent. [drain] feeds events into [f]
   and reports where ingestion failed, if it did. *)
let analyze_with cfg spec_for ~drain =
  let buf = Buffer.create 1024 in
  let ppf = Fmt.with_buffer buf in
  let fin () =
    Fmt.flush ppf ();
    Buffer.contents buf
  in
  let races_text rd2 ft viol =
    List.iter (fun r -> Fmt.pf ppf "%a@." Report.pp r) rd2;
    List.iter (fun r -> Fmt.pf ppf "%a@." Rw_report.pp r) ft;
    List.iter (fun v -> Fmt.pf ppf "%a@." Atomicity.pp_violation v) viol
  in
  if cfg.jobs <= 1 then (
    match Analyzer.create ~config:cfg.analyzer ~spec_for () with
    | Error e -> Error (Analysis, e)
    | Ok an -> (
        match drain ~f:(Analyzer.step an) with
        | Error e -> Error e
        | Ok () ->
            Analyzer.publish_stats an;
            let rd2 = Analyzer.rd2_races an in
            Fmt.pf ppf "OK@.%a@." Analyzer.pp_summary an;
            races_text rd2 (Analyzer.fasttrack_races an)
              (Analyzer.atomicity_violations an);
            Ok (fin (), Analyzer.events an, rd2)))
  else
    let trace = Trace.create () in
    match drain ~f:(Trace.append trace) with
    | Error e -> Error e
    | Ok () -> (
        match
          try Shard.analyze ~jobs:cfg.jobs ~config:cfg.analyzer ~spec_for trace
          with Invalid_argument e -> Error e
        with
        | Error e -> Error (Analysis, e)
        | Ok res ->
            Fmt.pf ppf "OK@.%a@." Shard.pp_summary res;
            races_text res.Shard.rd2_reports res.Shard.fasttrack_reports
              res.Shard.atomicity_violations;
            Ok (fin (), res.Shard.events, res.Shard.rd2_reports))

let analyze_session ?beat cfg spec_for q =
  analyze_with cfg spec_for ~drain:(fun ~f -> drain_events ?beat q ~f)

(* Recovery drain: replay a committed journal's mapped bytes through
   the same decoder configuration a live session would use. The
   bigstring typically aliases the journal file ([Journal.map_committed]),
   so replay never loads the trace into the OCaml heap. *)
let drain_of_big big ~resync ~f =
  let dec = Crd_wire.Bigcodec.Decoder.create ~resync () in
  Fun.protect
    ~finally:(fun () -> Crd_wire.Bigcodec.Decoder.release dec)
    (fun () ->
      try
        match Crd_wire.Bigcodec.Decoder.feed_iter dec big ~f with
        | Error e -> Error (Decode, Crd_wire.Codec.error_to_string e)
        | Ok () -> (
            match Crd_wire.Bigcodec.Decoder.finish dec with
            | Ok () -> Ok ()
            | Error e -> Error (Decode, Crd_wire.Codec.error_to_string e))
      with Invalid_argument e -> Error (Analysis, e))

(* The one-line operator probe: everything an "is it keeping up?" glance
   needs, answered straight off the session listener. *)
let health_line t =
  let st = stats t in
  Printf.sprintf
    "HEALTH tier=%s active=%d pending=%d workers=%d spill_backlog=%d \
     spill_bytes=%d mem_used=%d mem_budget=%d stalls=%d sessions=%d \
     spilled=%d caught_up=%d events=%d races=%d\n"
    (Overload.tier_name (Overload.tier t.overload))
    (Atomic.get t.active) (Bqueue.length t.conns) t.cfg.workers
    (Overload.spill_backlog ()) (Overload.spill_bytes ())
    (Overload.mem_used ()) t.cfg.memory_budget st.stalls st.sessions st.spilled
    st.caught_up st.events st.races

(* Spill-tier ingestion: stream the session's bytes straight to the
   fsync'd journal at decoder speed, counting events but analyzing
   nothing — the catch-up drainer owns the deferred analysis. Returns
   the event count once the end-of-stream frame commits the journal. *)
let spill_ingest conn j ~resync =
  let dec = Crd_wire.Bigcodec.Decoder.create ~resync () in
  let buf = Bytes.create 65536 in
  let events = ref 0 in
  let result = ref None in
  let fail kind msg = result := Some (Error (kind, msg)) in
  Fun.protect
    ~finally:(fun () -> Crd_wire.Bigcodec.Decoder.release dec)
    (fun () ->
      while !result = None do
        match
          if Crd_fault.fire fp_sock_read then
            raise
              (Unix.Unix_error (Unix.EIO, "read", "injected fault: sock_read"));
          Proto.read_retry conn buf 0 (Bytes.length buf)
        with
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            fail Timeout "idle timeout: no client bytes"
        | exception Unix.Unix_error (e, _, arg) ->
            fail Io
              (if arg = "" then Unix.error_message e
               else Unix.error_message e ^ " (" ^ arg ^ ")")
        | 0 -> (
            match Crd_wire.Bigcodec.Decoder.finish dec with
            | Ok () -> fail Decode "connection closed before end-of-stream"
            | Error e -> fail Decode (Crd_wire.Codec.error_to_string e))
        | n -> (
            match
              try
                Journal.append_bytes j ~len:n buf;
                Ok ()
              with
              | Crd_fault.Injected p ->
                  Error (Printf.sprintf "injected fault: %s" p)
              | Unix.Unix_error (e, fn, _) ->
                  Error
                    (Printf.sprintf "journal %s: %s" fn (Unix.error_message e))
            with
            | Error msg -> fail Io msg
            | Ok () -> (
                match
                  Crd_wire.Bigcodec.Decoder.feed_bytes_iter dec ~len:n buf
                    ~f:(fun _ -> incr events)
                with
                | Error e -> fail Decode (Crd_wire.Codec.error_to_string e)
                | Ok () ->
                    if Crd_wire.Bigcodec.Decoder.finished dec then (
                      match Journal.commit j with
                      | () -> result := Some (Ok !events)
                      | exception Unix.Unix_error (e, fn, _) ->
                          fail Io
                            (Printf.sprintf "journal %s: %s" fn
                               (Unix.error_message e)))))
      done;
      Option.get !result)

(* [tier] is the admission-time verdict from the accept loop; [hb] is
   this worker slot's heartbeat, stamped as event batches drain so the
   watchdog can tell "slow" from "stuck". *)
let session t hb tier conn =
  let cfg = t.cfg in
  Crd_obs.Gauge.incr m_active;
  let span = Crd_obs.Span.start m_session_seconds in
  Overload.Heartbeat.start_session hb conn;
  Fun.protect
    ~finally:(fun () ->
      Overload.Heartbeat.end_session hb;
      Crd_obs.Gauge.decr m_active;
      Crd_obs.Span.finish span)
    (fun () ->
      if cfg.idle_timeout > 0. then begin
        try Unix.setsockopt_float conn Unix.SO_RCVTIMEO cfg.idle_timeout
        with Unix.Unix_error _ -> ()
      end;
      (* Every close goes through here: the heartbeat surrenders the fd
         first, so the watchdog can never shutdown() a descriptor number
         the kernel may already have reused. *)
      let close_conn () =
        Overload.Heartbeat.end_session hb;
        (try Unix.shutdown conn Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
        try Unix.close conn with Unix.Unix_error _ -> ()
      in
      let reject kind msg =
        Crd_obs.Counter.incr m_rejected;
        Crd_obs.Counter.incr (err_counter kind);
        Crd_obs.Log.warn "session_rejected"
          [ ("kind", err_kind_label kind); ("err", msg) ];
        (try Proto.send_reject conn msg with Unix.Unix_error _ -> ());
        record t ~events:0 ~races:0 ~error:true;
        close_conn ()
      in
      (* Every reply byte goes through the sock_write fault point; a
         fired hit loses the reply exactly as a dead link would. *)
      let write_reply s =
        Crd_fault.inject fp_sock_write;
        Proto.write_all conn s
      in
      let finish ?journal ~nonce ~spec outcome hw =
        (match outcome with
        | Ok (reply, events, reports) ->
            let races = List.length reports in
            let reply =
              reply
              ^ Printf.sprintf
                  "STATS events=%d races=%d distinct=%d queue_hw=%d wall_s=%.6f\n"
                  events races (Report.distinct reports) hw
                  (Crd_obs.Span.elapsed_s span)
            in
            (* The verdict is final here: publish it to the race
               database before the (faultable) reply write, so a lost
               reply still leaves the race durably counted. *)
            (match t.racedb with
            | Some sink -> sink_publish sink ~nonce ~spec reports
            | None -> ());
            if Crd_fault.fire fp_report_send then begin
              (* Deliberate stall (not an error): parks this worker with
                 the journal committed and the reply unsent, so a crash
                 test can SIGKILL the server inside that exact window. *)
              Crd_obs.Log.warn "report_send_stall" [];
              while true do
                Unix.sleepf 3600.
              done
            end;
            let delivered =
              try
                write_reply reply;
                true
              with Unix.Unix_error _ | Crd_fault.Injected _ -> false
            in
            (match journal with
            | Some (dir, nonce) when delivered -> (
                try Journal.write_report ~dir ~nonce reply
                with Unix.Unix_error _ | Sys_error _ -> ())
            | _ -> ());
            record t ~events ~races ~error:false;
            Crd_obs.Log.info "session_ok"
              [
                ("events", string_of_int events); ("races", string_of_int races);
              ]
        | Error (kind, msg) ->
            Crd_obs.Counter.incr (err_counter kind);
            Crd_obs.Log.warn "session_error"
              [ ("kind", err_kind_label kind); ("err", msg) ];
            (try write_reply ("ERR " ^ msg ^ "\n")
             with Unix.Unix_error _ | Crd_fault.Injected _ -> ());
            record t ~events:0 ~races:0 ~error:true);
        close_conn ()
      in
      let hs = Crd_obs.Span.start m_handshake_seconds in
      let wrap_io f =
        (* An idle or dead client must fail this session, not escape
           into the worker loop and look like a worker crash. *)
        try f () with
        | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            Error "idle timeout during handshake"
        | Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
      in
      match wrap_io (fun () -> Proto.read_preamble conn) with
      | Error msg ->
          Crd_obs.Span.finish hs;
          reject Handshake msg
      | Ok Proto.Health ->
          (* Not a session: answer the one-line summary and close.
             Nothing is recorded — probes must not skew the stats. *)
          Crd_obs.Span.finish hs;
          (try Proto.write_all conn (health_line t) with Unix.Unix_error _ -> ());
          close_conn ()
      | Ok (Proto.Sync v) ->
          (* A CRDY preamble on the shared listener: hand the socket to
             Crd_sync. Sync exchanges are not sessions — no journal, no
             stats row, no reject reply (the peer speaks sync frames). *)
          Crd_obs.Span.finish hs;
          (match t.racedb with
          | None ->
              Crd_sync.refuse conn "server runs without --racedb";
              Crd_obs.Log.warn "sync_refused" [ ("reason", "no racedb") ]
          | Some sink -> (
              match
                Crd_sync.serve ~timeout:cfg.idle_timeout ~version:v conn
                  sink.db
              with
              | Ok s ->
                  Crd_obs.Log.info "sync_served"
                    [
                      ("peer", s.Crd_sync.peer);
                      ("sent", string_of_int s.Crd_sync.sent);
                      ("received", string_of_int s.Crd_sync.received);
                      ("applied", string_of_int s.Crd_sync.applied);
                    ]
              | Error e -> Crd_obs.Log.warn "sync_failed" [ ("err", e) ]));
          close_conn ()
      | Ok Proto.Session -> (
          match wrap_io (fun () -> Proto.read_handshake_body conn) with
          | Error msg ->
              Crd_obs.Span.finish hs;
              reject Handshake msg
          | Ok { Proto.nonce; spec = spec_name } -> (
          match resolve_spec_set cfg spec_name with
          | Error msg ->
              Crd_obs.Span.finish hs;
              reject Spec msg
          | Ok spec_for -> (
              if note_nonce t nonce then
                Crd_obs.Log.info "session_retry" [ ("nonce", nonce) ];
              let journal =
                match cfg.journal with
                | None -> Ok None
                | Some dir -> (
                    (* A reconnect with a known nonce truncates the old
                       journal: the retry restreams from frame 0. *)
                    let jn =
                      if nonce = "" then Journal.fresh_nonce () else nonce
                    in
                    try Some (Journal.start ~dir ~nonce:jn ~spec:spec_name) |> Result.ok
                    with Unix.Unix_error (e, fn, _) ->
                      Error
                        (Printf.sprintf "journal %s: %s" fn
                           (Unix.error_message e)))
              in
              match journal with
              | Error msg ->
                  Crd_obs.Span.finish hs;
                  reject Io msg
              | Ok journal -> (
                  (try Proto.send_accept conn with Unix.Unix_error _ -> ());
                  Crd_obs.Span.finish hs;
                  (* Simulated session-body bug: raises past this
                     function into the worker loop's crash handling,
                     after the handshake so the client sees a clean
                     stream-phase ERR. *)
                  Crd_fault.inject fp_worker_body;
                  (* Simulated wedged worker: parks here until the
                     watchdog cancels this slot's heartbeat, then raises
                     into the same crash handling. *)
                  if Crd_fault.fire Overload.fp_stall then
                    Overload.stall_until_cancelled hb;
                  match (tier, journal) with
                  | Overload.Spill, Some j -> (
                      (* Spill tier: journal at decoder speed, ack, and
                         hand the committed segment to the catch-up
                         drainer. No online analysis, no [.report] — a
                         crash before catch-up leaves the segment
                         committed-unreported, exactly what restart
                         recovery replays. *)
                      let jn = Journal.nonce j in
                      match
                        Crd_obs.time m_analyze_seconds (fun () ->
                            try spill_ingest conn j ~resync:cfg.resync
                            with e -> Error (Analysis, Printexc.to_string e))
                      with
                      | Ok events ->
                          let bytes = Journal.size j in
                          Journal.close j;
                          record_spilled t ~events;
                          Overload.note_spilled ~bytes;
                          ignore
                            (Bqueue.push_raw t.catchup
                               (jn, Crd_obs.now_s (), bytes));
                          Crd_obs.Log.info "session_spilled"
                            [
                              ("nonce", jn);
                              ("events", string_of_int events);
                              ("bytes", string_of_int bytes);
                            ];
                          let reply =
                            Printf.sprintf
                              "OK\n\
                               spilled: analysis deferred to catch-up\n\
                               STATS events=%d races=0 distinct=0 \
                               queue_hw=0 spilled=1 wall_s=%.6f\n"
                              events
                              (Crd_obs.Span.elapsed_s span)
                          in
                          (try write_reply reply
                           with Unix.Unix_error _ | Crd_fault.Injected _ -> ());
                          close_conn ()
                      | Error (kind, msg) ->
                          Journal.close j;
                          Crd_obs.Counter.incr (err_counter kind);
                          Crd_obs.Log.warn "session_error"
                            [ ("kind", err_kind_label kind); ("err", msg) ];
                          (try write_reply ("ERR " ^ msg ^ "\n")
                           with Unix.Unix_error _ | Crd_fault.Injected _ -> ());
                          record t ~events:0 ~races:0 ~error:true;
                          close_conn ())
                  | _ ->
                      let q =
                        Bqueue.create ~fault:fp_queue_push ~weight:item_weight
                          ~capacity:cfg.queue_capacity ()
                      in
                      let hw = ref 0 in
                      let reader =
                        Thread.create
                          (fun () ->
                            read_loop ?journal ~resync:cfg.resync conn q hw)
                          ()
                      in
                      let outcome =
                        Crd_obs.time m_analyze_seconds (fun () ->
                            try
                              analyze_session
                                ~beat:(Overload.Heartbeat.beat hb)
                                cfg spec_for q
                            with e -> Error (Analysis, Printexc.to_string e))
                      in
                      (* On an analysis-side abort the reader may still be
                         blocked pushing: closing the queue releases it.
                         The discard returns any undrained items' bytes to
                         the memory accounting. *)
                      Bqueue.close q;
                      Thread.join reader;
                      ignore (Bqueue.discard q);
                      let journal_dest =
                        match (cfg.journal, journal) with
                        | Some dir, Some j -> Some (dir, Journal.nonce j)
                        | _ -> None
                      in
                      (* Publish under the journal nonce when there is one:
                         that is the name a post-crash replay will present,
                         so the dedup matches replay against live. *)
                      let publish_nonce =
                        match journal_dest with
                        | Some (_, jn) -> jn
                        | None -> nonce
                      in
                      finish ?journal:journal_dest ~nonce:publish_nonce
                        ~spec:spec_name outcome !hw)))))

(* ------------------------------------------------------------------ *)
(* Accept loop and worker pool                                         *)
(* ------------------------------------------------------------------ *)

(* Only a dead listener is fatal; everything else (EMFILE/ENFILE/ENOBUFS
   bursts under load, ...) is survived with a short exponential backoff
   so one resource spike cannot shut the whole server down. *)
let accept_fatal = function
  | Unix.EBADF | Unix.ENOTSOCK | Unix.EINVAL -> true
  | _ -> false

let inject_accept_error t e =
  let rec push () =
    let cur = Atomic.get t.inject_accept in
    if not (Atomic.compare_and_set t.inject_accept cur (cur @ [ e ])) then
      push ()
  in
  push ()

let pop_injected t =
  let rec pop () =
    match Atomic.get t.inject_accept with
    | [] -> None
    | e :: rest as cur ->
        if Atomic.compare_and_set t.inject_accept cur rest then Some e
        else pop ()
  in
  pop ()

let accept_loop t =
  let backoff = ref 0.01 in
  let survive e =
    record_accept_error t;
    Crd_obs.Log.warn "accept_error"
      [ ("err", Unix.error_message e); ("backoff_s", Printf.sprintf "%.3f" !backoff) ];
    Unix.sleepf !backoff;
    backoff := Float.min 0.5 (!backoff *. 2.)
  in
  while not (Atomic.get t.stopping) do
    match Unix.select [ t.listen_fd ] [] [] 0.25 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
        match pop_injected t with
        | Some e -> survive e
        | None -> (
            match Unix.accept t.listen_fd with
            | exception
                Unix.Unix_error
                  ( (Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR | Unix.ECONNABORTED),
                    _,
                    _ )
              ->
                ()
            | exception Unix.Unix_error (e, _, _) when accept_fatal e ->
                Crd_obs.Log.err "accept_fatal" [ ("err", Unix.error_message e) ];
                Atomic.set t.stopping true
            | exception Unix.Unix_error (e, _, _) -> survive e
            | conn, _ ->
                backoff := 0.01;
                Crd_obs.Counter.incr m_accepted;
                Unix.clear_nonblock conn;
                let pending = Bqueue.length t.conns in
                let active = Atomic.get t.active in
                (* The degradation ladder decides this connection's tier
                   once, here at admission; the tag rides with the fd so
                   the worker's verdict is deterministic. *)
                let tier =
                  Overload.evaluate t.overload ~pending ~active
                    ~workers:t.cfg.workers
                in
                (* Legacy bound: [--shed-backlog] sheds on queue depth
                   alone, ladder or no ladder. The ladder itself sheds
                   only on memory-budget exhaustion. *)
                let legacy_shed =
                  t.cfg.shed_backlog > 0
                  && active >= t.cfg.workers
                  && pending >= t.cfg.shed_backlog
                in
                if tier = Overload.Shed || legacy_shed then begin
                  record_busy t;
                  Crd_obs.Log.warn "session_shed"
                    [
                      ("tier", Overload.tier_name tier);
                      ("active", string_of_int active);
                      ("pending", string_of_int pending);
                      ("mem_used", string_of_int (Overload.mem_used ()));
                    ];
                  (try Proto.send_busy conn ~retry_ms:t.cfg.retry_after_ms
                   with Unix.Unix_error _ -> ());
                  (try Unix.shutdown conn Unix.SHUTDOWN_ALL
                   with Unix.Unix_error _ -> ());
                  try Unix.close conn with Unix.Unix_error _ -> ()
                end
                else if not (Bqueue.push t.conns (conn, tier)) then (
                  try Unix.close conn with Unix.Unix_error _ -> ())
                else
                  Crd_obs.Gauge.set_max m_conn_queue_hw (Bqueue.length t.conns)))
  done

(* A worker runs sessions until the connection queue closes. Exceptions
   escaping a session (a bug, or the worker_body fault) are a worker
   crash: the client gets a clean ERR line, the connection closes, the
   exception re-raises to kill this domain, and the supervisor respawns
   a replacement into the same slot. *)
let worker_loop t idx =
  let hb = t.heartbeats.(idx) in
  let continue = ref true in
  while !continue do
    match Bqueue.pop t.conns with
    | None -> continue := false
    | Some (conn, tier) -> (
        Atomic.incr t.active;
        match session t hb tier conn with
        | () -> Atomic.decr t.active
        | exception e ->
            Atomic.decr t.active;
            record_worker_crash t;
            record t ~events:0 ~races:0 ~error:true;
            let msg = Printexc.to_string e in
            Crd_obs.Log.err "worker_crashed" [ ("err", msg) ];
            (try Proto.write_all conn ("ERR internal: worker crashed: " ^ msg ^ "\n")
             with Unix.Unix_error _ -> ());
            (try Unix.shutdown conn Unix.SHUTDOWN_ALL
             with Unix.Unix_error _ -> ());
            (try Unix.close conn with Unix.Unix_error _ -> ());
            raise e)
  done

(* Workers live in numbered slots; a crashed worker's wrapper reports
   its slot on the deaths queue and the supervisor thread respawns it.
   The supervisor never joins domains — it parks the dead one in the
   graveyard for [stop], which joins the supervisor first and only then
   snapshots slots + graveyard (no concurrent mutation, no double
   join). *)
let rec spawn_worker t idx =
  t.slots.(idx) <-
    Some
      (Domain.spawn (fun () ->
           try worker_loop t idx
           with _ -> ignore (Bqueue.push_raw t.deaths idx)))

and supervisor_loop t =
  match Bqueue.pop t.deaths with
  | None -> ()
  | Some idx ->
      (match t.slots.(idx) with
      | Some d -> t.graveyard <- d :: t.graveyard
      | None -> ());
      t.slots.(idx) <- None;
      if not (Atomic.get t.stopping) then spawn_worker t idx;
      supervisor_loop t

(* ------------------------------------------------------------------ *)
(* Spill catch-up and the stall watchdog                               *)
(* ------------------------------------------------------------------ *)

(* Replay one committed spill segment: mmap the journal, run it through
   the sharded chunk pipeline (never the online analyzer — catch-up must
   not compete with live sessions for single-threaded throughput), and
   publish under the session nonce, where the racedb's durable dedup
   makes a replay of an already-published segment a no-op. An
   unanalyzable segment gets an [ERR] report so it is not replayed
   forever — here or by restart recovery. *)
let catchup_one t dir (nonce, committed_at, bytes) =
  Fun.protect
    ~finally:(fun () ->
      Overload.note_caught_up ~bytes
        ~lag_s:(Float.max 0. (Crd_obs.now_s () -. committed_at)))
    (fun () ->
      let fail kind msg =
        Crd_obs.Counter.incr (err_counter kind);
        Crd_obs.Log.err "catchup_failed" [ ("nonce", nonce); ("err", msg) ];
        try Journal.write_report ~dir ~nonce ("ERR " ^ msg ^ "\n")
        with Unix.Unix_error _ | Sys_error _ -> ()
      in
      match Journal.map_committed ~dir ~nonce with
      | Error msg -> fail Io msg
      | Ok (big, spec_name) -> (
          match resolve_spec_set t.cfg spec_name with
          | Error msg -> fail Spec msg
          | Ok spec_for -> (
              let cfg = { t.cfg with jobs = max t.cfg.jobs 2 } in
              match
                try
                  analyze_with cfg spec_for
                    ~drain:(drain_of_big big ~resync:t.cfg.resync)
                with e -> Error (Analysis, Printexc.to_string e)
              with
              | Error (kind, msg) -> fail kind msg
              | Ok (reply, events, reports) ->
                  record_catchup t ~races:(List.length reports);
                  (match t.racedb with
                  | Some sink -> sink_publish sink ~nonce ~spec:spec_name reports
                  | None -> ());
                  (try Journal.write_report ~dir ~nonce reply
                   with Unix.Unix_error _ | Sys_error _ ->
                     Crd_obs.Log.warn "catchup_report_unwritable"
                       [ ("nonce", nonce) ]);
                  Crd_obs.Log.info "catchup_done"
                    [
                      ("nonce", nonce);
                      ("events", string_of_int events);
                      ("races", string_of_int (List.length reports));
                    ])))

let catchup_loop t dir =
  let continue = ref true in
  while !continue do
    match Bqueue.pop t.catchup with
    | None -> continue := false
    | Some seg -> (
        try catchup_one t dir seg
        with e ->
          Crd_obs.Log.err "catchup_crashed" [ ("err", Printexc.to_string e) ])
  done

(* The stall watchdog: scan every worker slot's heartbeat; one stuck
   past [--stall-timeout] gets the retryable ERR written and its socket
   shut down from here (unwedging any blocked I/O), while the
   cooperative cancel flag raises the worker into the supervisor's
   respawn path the next time it looks. The timeout should exceed the
   idle timeout: a worker legitimately blocked on a slow client is
   "waiting", not "stuck", and the socket timeouts already bound it. *)
let watchdog_loop t =
  let timeout = t.cfg.stall_timeout in
  let interval = Float.max 0.01 (Float.min 1.0 (timeout /. 5.)) in
  while not (Atomic.get t.stopping) do
    Unix.sleepf interval;
    let now = Crd_obs.now_s () in
    Array.iteri
      (fun idx hb ->
        match Overload.Heartbeat.check_stall hb ~now ~timeout with
        | None -> ()
        | Some fd ->
            record_stall t;
            Crd_obs.Log.err "worker_stalled"
              [
                ("slot", string_of_int idx);
                ("events", string_of_int (Overload.Heartbeat.events hb));
                ("timeout_s", Printf.sprintf "%.3f" timeout);
              ];
            (try
               Proto.write_all fd
                 "ERR internal: worker stalled past --stall-timeout; retry\n"
             with Unix.Unix_error _ -> ());
            (* Shutdown, never close: the session still owns the fd and
               will close it on its own way out. *)
            (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()))
      t.heartbeats
  done

(* ------------------------------------------------------------------ *)
(* Metrics listener                                                    *)
(* ------------------------------------------------------------------ *)

(* One response per connection, GET /metrics style: best-effort read of
   the request, then the whole registry dump as an HTTP/1.0 response. *)
let metrics_response () =
  let body = Crd_obs.dump () in
  Printf.sprintf
    "HTTP/1.0 200 OK\r\n\
     Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
     Content-Length: %d\r\n\
     Connection: close\r\n\
     \r\n\
     %s"
    (String.length body) body

let metrics_loop t mfd =
  while not (Atomic.get t.stopping) do
    match Unix.select [ mfd ] [] [] 0.25 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
        match Unix.accept mfd with
        | exception Unix.Unix_error _ -> ()
        | conn, _ ->
            Unix.clear_nonblock conn;
            (try Unix.setsockopt_float conn Unix.SO_RCVTIMEO 0.5
             with Unix.Unix_error _ -> ());
            (try ignore (Unix.read conn (Bytes.create 4096) 0 4096)
             with Unix.Unix_error _ -> ());
            (try Proto.write_all conn (metrics_response ())
             with Unix.Unix_error _ -> ());
            (try Unix.shutdown conn Unix.SHUTDOWN_ALL
             with Unix.Unix_error _ -> ());
            (try Unix.close conn with Unix.Unix_error _ -> ()))
  done

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

(* Replay committed-but-unreported journals left behind by a killed
   process. Each one runs through [analyze_with] — the same path its
   live session would have taken — and its report lands in
   [<nonce>.report], where the client-facing tooling can find it. *)
let recover_journals t =
  match t.cfg.journal with
  | None -> ()
  | Some dir ->
      List.iter
        (fun nonce ->
          let fail msg =
            Crd_obs.Log.err "journal_recovery_failed"
              [ ("nonce", nonce); ("err", msg) ]
          in
          match Journal.map_committed ~dir ~nonce with
          | Error msg -> fail msg
          | Ok (big, spec_name) -> (
              match resolve_spec_set t.cfg spec_name with
              | Error msg -> fail msg
              | Ok spec_for ->
                  let outcome =
                    try
                      analyze_with t.cfg spec_for
                        ~drain:(drain_of_big big ~resync:t.cfg.resync)
                    with e -> Error (Analysis, Printexc.to_string e)
                  in
                  let text =
                    match outcome with
                    | Ok (reply, events, reports) ->
                        record t ~events ~races:(List.length reports)
                          ~error:false;
                        (* Publish under the session's journal nonce:
                           if the dead process already published before
                           the kill, [Db.publish] sees the nonce in its
                           durable published set and drops the replay —
                           counts never inflate. *)
                        (match t.racedb with
                        | Some sink ->
                            sink_publish sink ~nonce ~spec:spec_name reports
                        | None -> ());
                        reply
                    | Error (kind, msg) ->
                        Crd_obs.Counter.incr (err_counter kind);
                        record t ~events:0 ~races:0 ~error:true;
                        "ERR " ^ msg ^ "\n"
                  in
                  (try Journal.write_report ~dir ~nonce text
                   with Unix.Unix_error _ | Sys_error _ ->
                     fail "cannot write recovered report");
                  record_recovered t;
                  ignore (note_nonce t nonce);
                  Crd_obs.Log.info "journal_recovered" [ ("nonce", nonce) ]))
        (Journal.committed_unreported ~dir)

(* Is something actually answering on this unix socket? Stale socket
   files (a crashed server) must be reclaimed; live ones must not be
   silently stolen out from under a running server. *)
let unix_socket_live path =
  let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close probe with Unix.Unix_error _ -> ())
    (fun () ->
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> `Live
      | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> `Stale
      | exception Unix.Unix_error (Unix.ENOENT, _, _) -> `Gone
      | exception Unix.Unix_error (e, _, _) -> `Unknown (Unix.error_message e))

let resolve_host host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = [||]; _ } ->
        failwith (Printf.sprintf "cannot resolve host %s" host)
    | h -> h.Unix.h_addr_list.(0)
    | exception Not_found ->
        failwith (Printf.sprintf "cannot resolve host %s" host))

let bind_listen addr =
  match addr with
  | Unix_sock path ->
      if Sys.file_exists path then begin
        match (Unix.stat path).Unix.st_kind with
        | Unix.S_SOCK -> (
            match unix_socket_live path with
            | `Live ->
                failwith
                  (Printf.sprintf
                     "%s: a live server is already listening here (refusing \
                      to steal the address)"
                     path)
            | `Stale ->
                (try Unix.unlink path with Unix.Unix_error _ -> ())
            | `Gone -> ()
            | `Unknown msg ->
                failwith
                  (Printf.sprintf
                     "%s: cannot tell whether a server is listening (%s); \
                      remove the socket file manually if it is stale"
                     path msg))
        | _ -> failwith (Printf.sprintf "%s exists and is not a socket" path)
      end;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      (fd, Some path)
  | Tcp (host, port) ->
      let ip = resolve_host host in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (ip, port));
      Unix.listen fd 64;
      (fd, None)

let connect addr =
  let sock domain sockaddr =
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    (try Unix.connect fd sockaddr
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    fd
  in
  match addr with
  | Unix_sock path -> sock Unix.PF_UNIX (Unix.ADDR_UNIX path)
  | Tcp (host, port) ->
      sock Unix.PF_INET (Unix.ADDR_INET (resolve_host host, port))

(* --- anti-entropy over [cfg.peers] --------------------------------- *)

let sync_once ?timeout sink addr =
  match
    Crd_fault.inject Crd_sync.fp_connect;
    connect addr
  with
  | exception Crd_fault.Injected p -> Error ("fault injected: " ^ p)
  | exception Failure m -> Error m
  | exception Unix.Unix_error (e, fn, _) ->
      Error (Printf.sprintf "%s(%s)" (Unix.error_message e) fn)
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () -> Crd_sync.client ?timeout fd sink.db)

(* Round-robin over the peer list, one exchange per tick. The delay is
   full-jitter ([0.5x, 1.5x]) so restarted fleets do not thunder in
   lockstep, and doubles per consecutive failure against a peer (capped
   at 60 s) so a dead peer costs one cheap connect a minute, not a
   busy-loop. *)
let sync_loop t sink =
  let peers = Array.of_list t.cfg.peers in
  let n = Array.length peers in
  let streak = Array.make n 0 in
  let rng =
    Random.State.make
      [| Unix.getpid (); int_of_float (Unix.gettimeofday () *. 1e6) |]
  in
  let sleep s =
    let until = Unix.gettimeofday () +. s in
    while (not (Atomic.get t.stopping)) && Unix.gettimeofday () < until do
      Unix.sleepf 0.05
    done
  in
  let i = ref 0 in
  while not (Atomic.get t.stopping) do
    let k = !i mod n in
    incr i;
    let base = Float.max 0.05 (t.cfg.sync_interval /. float_of_int n) in
    let d = Float.min 60. (base *. (2. ** float_of_int (min 6 streak.(k)))) in
    sleep (d *. (0.5 +. Random.State.float rng 1.));
    if not (Atomic.get t.stopping) then begin
      let peer = Fmt.str "%a" pp_addr peers.(k) in
      (* The exchange inherits the session idle timeout per read and a
         10x whole-exchange deadline, so one black-hole peer can never
         pin the anti-entropy thread past its turn. *)
      let timeout =
        if t.cfg.idle_timeout > 0. then t.cfg.idle_timeout else 30.
      in
      match sync_once ~timeout sink peers.(k) with
      | Ok s ->
          streak.(k) <- 0;
          Crd_obs.Log.info "sync_exchange"
            [ ("peer", peer); ("summary", Fmt.str "%a" Crd_sync.pp_summary s) ]
      | Error e ->
          streak.(k) <- streak.(k) + 1;
          Crd_obs.Log.warn "sync_peer_failed"
            [ ("peer", peer); ("err", e); ("streak", string_of_int streak.(k)) ]
    end
  done

let start cfg =
  (* A dead client must surface as EPIPE on write, not kill the server. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  if cfg.peers <> [] && cfg.racedb = None then
    Error "sync peers configured without a race database (--peers needs --racedb)"
  else if cfg.spill_watermark > 0 && cfg.journal = None then
    Error
      "spill needs somewhere durable to put the trace (--spill-watermark \
       needs --journal)"
  else
  match bind_listen cfg.addr with
  | exception Failure msg -> Error msg
  | exception Unix.Unix_error (e, fn, arg) ->
      Error
        (Printf.sprintf "%s: %s(%s): %s"
           (Fmt.str "%a" pp_addr cfg.addr)
           fn arg (Unix.error_message e))
  | listen_fd, sock_path -> (
      let metrics =
        match cfg.metrics_addr with
        | None -> Ok None
        | Some a -> (
            match bind_listen a with
            | fd, path -> Ok (Some (fd, path))
            | exception Failure msg -> Error msg
            | exception Unix.Unix_error (e, fn, arg) ->
                Error
                  (Printf.sprintf "%s: %s(%s): %s"
                     (Fmt.str "%a" pp_addr a)
                     fn arg (Unix.error_message e)))
      in
      match metrics with
      | Error msg ->
          (try Unix.close listen_fd with Unix.Unix_error _ -> ());
          (match sock_path with
          | Some p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
          | None -> ());
          Error msg
      | Ok metrics -> (
          let close_listeners () =
            (try Unix.close listen_fd with Unix.Unix_error _ -> ());
            (match metrics with
            | Some (fd, _) -> ( try Unix.close fd with Unix.Unix_error _ -> ())
            | None -> ());
            List.iter
              (fun p -> try Unix.unlink p with Unix.Unix_error _ -> ())
              (List.filter_map Fun.id
                 [ sock_path; Option.bind metrics snd ])
          in
          let racedb =
            match cfg.racedb with
            | None -> Ok None
            | Some dir -> Result.map Option.some (sink_start dir)
          in
          match racedb with
          | Error msg ->
              close_listeners ();
              Error ("racedb: " ^ msg)
          | Ok racedb ->
          Unix.set_nonblock listen_fd;
          let workers = max 1 cfg.workers in
          let t =
            {
              cfg = { cfg with workers };
              racedb;
              listen_fd;
              conns = Bqueue.create ~capacity:(max 16 (2 * workers)) ();
              overload =
                Overload.create
                  {
                    Overload.memory_budget = cfg.memory_budget;
                    spill_watermark = cfg.spill_watermark;
                    stall_timeout = cfg.stall_timeout;
                  };
              heartbeats =
                Array.init workers (fun _ -> Overload.Heartbeat.create ());
              catchup = Bqueue.create ~capacity:4096 ();
              catchup_th = None;
              watchdog_th = None;
              stopping = Atomic.make false;
              active = Atomic.make 0;
              accept_d = None;
              slots = Array.make workers None;
              deaths = Bqueue.create ~capacity:(max 16 workers) ();
              graveyard = [];
              supervisor = None;
              syncer = None;
              metrics_d = None;
              metrics_fd = Option.map fst metrics;
              metrics_path = Option.bind metrics snd;
              mu = Mutex.create ();
              st =
                {
                  sessions = 0;
                  events = 0;
                  races = 0;
                  errors = 0;
                  accept_errors = 0;
                  busy = 0;
                  worker_crashes = 0;
                  recovered = 0;
                  spilled = 0;
                  caught_up = 0;
                  stalls = 0;
                };
              seen_nonces = Hashtbl.create 64;
              sock_path;
              stopped = false;
              inject_accept = Atomic.make [];
            }
          in
          recover_journals t;
          for idx = 0 to workers - 1 do
            spawn_worker t idx
          done;
          t.supervisor <- Some (Thread.create (fun () -> supervisor_loop t) ());
          (match t.cfg.journal with
          | Some dir when t.cfg.spill_watermark > 0 ->
              t.catchup_th <-
                Some (Thread.create (fun () -> catchup_loop t dir) ())
          | _ -> ());
          if t.cfg.stall_timeout > 0. then
            t.watchdog_th <-
              Some (Thread.create (fun () -> watchdog_loop t) ());
          (match (t.racedb, t.cfg.peers) with
          | Some sink, _ :: _ ->
              t.syncer <- Some (Thread.create (fun () -> sync_loop t sink) ())
          | _ -> ());
          t.accept_d <- Some (Domain.spawn (fun () -> accept_loop t));
          (match t.metrics_fd with
          | Some mfd ->
              Unix.set_nonblock mfd;
              t.metrics_d <- Some (Domain.spawn (fun () -> metrics_loop t mfd))
          | None -> ());
          Crd_obs.Log.info "server_started"
            [ ("addr", Fmt.str "%a" pp_addr cfg.addr) ];
          Ok t))

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    Atomic.set t.stopping true;
    (match t.accept_d with Some d -> Domain.join d | None -> ());
    (match t.metrics_d with Some d -> Domain.join d | None -> ());
    (* Retire the supervisor before joining workers: once [deaths] is
       closed it stops respawning, so the slot array can't change under
       the joins below. *)
    Bqueue.close t.deaths;
    (match t.supervisor with Some th -> Thread.join th | None -> ());
    (* Already-accepted connections stay in the queue and are drained:
       every in-flight session flushes its report before we return. *)
    Bqueue.close t.conns;
    Array.iteri
      (fun idx -> function
        | Some d ->
            Domain.join d;
            t.slots.(idx) <- None
        | None -> ())
      t.slots;
    List.iter Domain.join t.graveyard;
    t.graveyard <- [];
    (* Workers are gone, so nothing can spill anymore: close the
       catch-up queue and let the drainer finish every committed
       segment — a spilled session's evidence is never abandoned at
       shutdown. *)
    Bqueue.close t.catchup;
    (match t.catchup_th with Some th -> Thread.join th | None -> ());
    (match t.watchdog_th with Some th -> Thread.join th | None -> ());
    (* The syncer holds a reference to the db: retire it before the
       sink releases the store. *)
    (match t.syncer with Some th -> Thread.join th | None -> ());
    (* Workers are gone, so no session can publish anymore: drain the
       racedb queue, sync and release the store. *)
    (match t.racedb with Some sink -> sink_stop sink | None -> ());
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (match t.metrics_fd with
    | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
    | None -> ());
    List.iter
      (fun path ->
        try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
      (List.filter_map Fun.id [ t.sock_path; t.metrics_path ]);
    Crd_obs.Log.info "server_stopped" []
  end;
  stats t

let serve cfg =
  match start cfg with
  | Error e -> Error e
  | Ok t ->
      let interrupted = Atomic.make false in
      let handler = Sys.Signal_handle (fun _ -> Atomic.set interrupted true) in
      (try Sys.set_signal Sys.sigterm handler with Invalid_argument _ -> ());
      (try Sys.set_signal Sys.sigint handler with Invalid_argument _ -> ());
      while not (Atomic.get interrupted) do
        Unix.sleepf 0.2
      done;
      Ok (stop t)
