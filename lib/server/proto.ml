let magic = "CRDS"
let version = 2
let max_spec_name = 4096
let max_nonce = 64

(* Nonces name journal files on the server, so the alphabet is locked
   down to filename-safe characters at the protocol layer. *)
let valid_nonce s =
  String.length s <= max_nonce
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' -> true
         | _ -> false)
       s

type handshake = { nonce : string; spec : string }
type reply = Accepted | Rejected of string | Busy of int

(* A signal landing mid-syscall fails [read]/[write] with [EINTR] — a
   retry, not an error. Every raw fd loop in the tree funnels through
   these two wrappers so no I/O path can abort on an interrupt. The
   [io_eintr] fault point injects the interrupt just before the
   syscall, letting chaos specs storm any path with signals. *)
let fp_io_eintr = Crd_fault.point "io_eintr"

let rec read_retry fd b off len =
  match
    if Crd_fault.fire fp_io_eintr then
      raise (Unix.Unix_error (Unix.EINTR, "read", ""))
    else Unix.read fd b off len
  with
  | n -> n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_retry fd b off len

let rec write_retry fd b off len =
  match
    if Crd_fault.fire fp_io_eintr then
      raise (Unix.Unix_error (Unix.EINTR, "write", ""))
    else Unix.write fd b off len
  with
  | n -> n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_retry fd b off len

(* Short counts from [write] are legal even without signals; loop. *)
let write_sub fd b off len =
  let sent = ref 0 in
  while !sent < len do
    sent := !sent + write_retry fd b (off + !sent) (len - !sent)
  done

let write_all fd s = write_sub fd (Bytes.unsafe_of_string s) 0 (String.length s)

let read_exact fd n =
  let b = Bytes.create n in
  let off = ref 0 in
  let eof = ref false in
  while (not !eof) && !off < n do
    let r = read_retry fd b !off (n - !off) in
    if r = 0 then eof := true else off := !off + r
  done;
  if !eof then None else Some (Bytes.to_string b)

let read_varint fd =
  let acc = ref 0 in
  let shift = ref 0 in
  let result = ref None in
  while !result = None do
    match read_exact fd 1 with
    | None -> result := Some (Error "connection closed inside a varint")
    | Some s ->
        let b = Char.code s.[0] in
        acc := !acc lor ((b land 0x7f) lsl !shift);
        if b < 0x80 then result := Some (Ok !acc)
        else begin
          shift := !shift + 7;
          if !shift > 56 then result := Some (Error "varint longer than 9 bytes")
        end
  done;
  Option.get !result

let send_handshake fd ?(nonce = "") ~spec () =
  let b = Buffer.create 32 in
  Buffer.add_string b magic;
  Buffer.add_char b (Char.chr version);
  Crd_wire.Codec.add_varint b (String.length nonce);
  Buffer.add_string b nonce;
  Crd_wire.Codec.add_varint b (String.length spec);
  Buffer.add_string b spec;
  write_all fd (Buffer.contents b)

let send_accept fd = write_all fd "\x00"

let send_reject fd msg =
  let b = Buffer.create (8 + String.length msg) in
  Buffer.add_char b '\x01';
  Crd_wire.Codec.add_varint b (String.length msg);
  Buffer.add_string b msg;
  write_all fd (Buffer.contents b)

let send_busy fd ~retry_ms =
  let b = Buffer.create 8 in
  Buffer.add_char b '\x02';
  Crd_wire.Codec.add_varint b (max 0 retry_ms);
  write_all fd (Buffer.contents b)

let read_lstring fd ~max ~what =
  match read_varint fd with
  | Error e -> Error e
  | Ok len when len < 0 || len > max ->
      Error (Printf.sprintf "%s too long" what)
  | Ok 0 -> Ok ""
  | Ok len -> (
      match read_exact fd len with
      | None -> Error "connection closed during handshake"
      | Some s -> Ok s)

type preamble = Session | Sync of int | Health

(* An operator or script asking for the one-line health summary sends
   the ASCII line "HEALTH\n"; its first five bytes land where the
   binary magic would. *)
let health_magic = "HEALT"

(* The session, sync and health protocols share the listener: the
   first five bytes (magic + version) say which one this connection
   speaks. *)
let read_preamble fd =
  match read_exact fd (String.length magic + 1) with
  | None -> Error "connection closed during handshake"
  | Some h ->
      let m = String.sub h 0 (String.length magic) in
      let v = Char.code h.[String.length magic] in
      if String.equal m magic then
        if v <> version then
          Error (Printf.sprintf "unsupported protocol version %d" v)
        else Ok Session
      else if String.equal m Crd_wire.Codec.sync_magic then Ok (Sync v)
      else if String.equal h health_magic then begin
        (* Consume the rest of the ASCII line ("H\n") so the close after
           the reply never RSTs unread probe bytes back at the client. *)
        let rec eat n =
          if n > 0 then
            match read_exact fd 1 with
            | Some c when not (String.equal c "\n") -> eat (n - 1)
            | _ -> ()
        in
        eat 8;
        Ok Health
      end
      else Error "bad handshake magic (not a CRDS client)"

let read_handshake_body fd =
  match read_lstring fd ~max:max_nonce ~what:"session nonce" with
  | Error e -> Error e
  | Ok nonce when not (valid_nonce nonce) ->
      Error "invalid session nonce (want [A-Za-z0-9_-]{0,64})"
  | Ok nonce -> (
      match read_lstring fd ~max:max_spec_name ~what:"spec name" with
      | Error e -> Error e
      | Ok spec -> Ok { nonce; spec })

let read_handshake fd =
  match read_preamble fd with
  | Error e -> Error e
  | Ok (Sync _) -> Error "sync connection on a session read path"
  | Ok Health -> Error "health probe on a session read path"
  | Ok Session -> read_handshake_body fd

let read_handshake_reply fd =
  match read_exact fd 1 with
  | None -> Error "connection closed before handshake reply"
  | Some "\x00" -> Ok Accepted
  | Some "\x01" -> (
      match read_lstring fd ~max:65536 ~what:"reject message" with
      | Error e -> Error e
      | Ok msg -> Ok (Rejected msg))
  | Some "\x02" -> (
      match read_varint fd with
      | Error e -> Error e
      | Ok ms when ms < 0 || ms > 3_600_000 -> Error "nonsense busy hint"
      | Ok ms -> Ok (Busy ms))
  | Some b ->
      Error (Printf.sprintf "unexpected handshake reply byte 0x%02x"
               (Char.code b.[0]))

let read_to_eof fd =
  let out = Buffer.create 1024 in
  let b = Bytes.create 4096 in
  let eof = ref false in
  while not !eof do
    let n = read_retry fd b 0 (Bytes.length b) in
    if n = 0 then eof := true else Buffer.add_subbytes out b 0 n
  done;
  Buffer.contents out
