open Crd

(* Jitter source: deliberately not deterministic — concurrent retrying
   clients must spread out, so the seed mixes pid and wall clock. *)
let rng =
  lazy
    (Random.State.make
       [| Unix.getpid (); int_of_float (Unix.gettimeofday () *. 1e6) |])

let jittered d = d *. (0.5 +. Random.State.float (Lazy.force rng) 1.)

let pp_host host = if String.contains host ':' then "[" ^ host ^ "]" else host

let connect addr =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  match addr with
  | Server.Unix_sock path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try
         Unix.connect fd (Unix.ADDR_UNIX path);
         Ok fd
       with Unix.Unix_error (e, _, _) ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         Error (Printf.sprintf "connect unix:%s: %s" path (Unix.error_message e)))
  | Server.Tcp (host, port) -> (
      match
        try Ok (Unix.inet_addr_of_string host)
        with Failure _ -> (
          match Unix.gethostbyname host with
          | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
              Error (Printf.sprintf "cannot resolve host %s" host)
          | h -> Ok h.Unix.h_addr_list.(0))
      with
      | Error e -> Error e
      | Ok ip ->
          (* [domain_of_sockaddr] picks PF_INET6 for IPv6 literals, so
             [tcp:[::1]:9000] connects over the right socket family. *)
          let sa = Unix.ADDR_INET (ip, port) in
          let fd = Unix.socket (Unix.domain_of_sockaddr sa) Unix.SOCK_STREAM 0 in
          (try
             Unix.connect fd sa;
             Ok fd
           with Unix.Unix_error (e, _, _) ->
             (try Unix.close fd with Unix.Unix_error _ -> ());
             Error
               (Printf.sprintf "connect tcp:%s:%d: %s" (pp_host host) port
                  (Unix.error_message e))))

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.equal (String.sub s i n) sub || go (i + 1)) in
  n = 0 || go 0

let is_err reply = String.length reply >= 3 && String.sub reply 0 3 = "ERR"

(* Transient server-side failures — a crashed worker, an injected
   fault — can succeed on a retry; decode and spec errors are
   deterministic and cannot. *)
let retryable_report reply =
  is_err reply
  && (contains ~sub:"internal:" reply
     || contains ~sub:"injected fault" reply
     || contains ~sub:"fault injected" reply)

(* One attempt's outcome: [Done] ends the call (success or a
   deterministic failure), [Retry] is worth another connection — with
   an optional server-supplied delay from a BUSY reply. *)
type attempt = Done of (string, string) result | Retry of string * float option

let attempt ~addr ~spec ~timeout ~nonce produce =
  match connect addr with
  | Error e -> Retry (e, None)
  | Ok fd -> (
      let cleanup () = try Unix.close fd with Unix.Unix_error _ -> () in
      try
        if timeout > 0. then begin
          (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout
           with Unix.Unix_error _ -> ());
          try Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout
          with Unix.Unix_error _ -> ()
        end;
        Proto.send_handshake fd ~nonce ~spec ();
        match Proto.read_handshake_reply fd with
        | Error e ->
            cleanup ();
            Retry (e, None)
        | Ok (Proto.Busy ms) ->
            cleanup ();
            Retry ("server busy", Some (float_of_int ms /. 1000.))
        | Ok (Proto.Rejected msg) ->
            cleanup ();
            Done (Error ("handshake rejected: " ^ msg))
        | Ok Proto.Accepted -> (
            let enc =
              Wire.Encoder.create ~emit:(fun s -> Proto.write_all fd s) ()
            in
            match produce (Wire.Encoder.event enc) with
            | Error e ->
                cleanup ();
                Done (Error e)
            | Ok () ->
                Wire.Encoder.close enc;
                let reply = Proto.read_to_eof fd in
                cleanup ();
                if reply = "" then
                  Retry ("connection closed before report", None)
                else if is_err reply then
                  if retryable_report reply then Retry (String.trim reply, None)
                  else Done (Error (String.trim reply))
                else Done (Ok reply))
      with Unix.Unix_error (e, fn, _) -> (
        (* A write that died mid-stream (EPIPE) usually means the server
           closed the connection after sending its reply — e.g. a clean
           ERR from a crashed worker. That reply is still in our receive
           buffer: salvage it so the caller sees the server's verdict,
           not just "broken pipe". *)
        let salvaged =
          try
            (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.
             with Unix.Unix_error _ -> ());
            Proto.read_to_eof fd
          with Unix.Unix_error _ -> ""
        in
        cleanup ();
        if is_err salvaged then
          if retryable_report salvaged then Retry (String.trim salvaged, None)
          else Done (Error (String.trim salvaged))
        else Retry (Printf.sprintf "%s: %s" fn (Unix.error_message e), None)))

let send_iter ~addr ?(spec = "std") ?(retries = 0) ?(backoff = 0.1)
    ?(timeout = 0.) ?nonce produce =
  (* Retries resend the whole stream under one session nonce, so the
     server folds every reconnect into a single logical session. *)
  let nonce =
    match nonce with
    | Some n -> n
    | None -> if retries > 0 then Journal.fresh_nonce () else ""
  in
  let rec go att =
    match attempt ~addr ~spec ~timeout ~nonce produce with
    | Done r -> r
    | Retry (err, hint) ->
        if att >= retries then
          Error
            (if retries > 0 then
               Printf.sprintf "%s (after %d attempts)" err (att + 1)
             else err)
        else begin
          let base = backoff *. (2. ** float_of_int att) in
          let base = match hint with Some h -> Float.max h base | None -> base in
          Unix.sleepf (jittered base);
          go (att + 1)
        end
  in
  go 0

let send_trace ~addr ?spec ?retries ?backoff ?timeout ?nonce trace =
  send_iter ~addr ?spec ?retries ?backoff ?timeout ?nonce (fun push ->
      Trace.iter_events trace ~f:push;
      Ok ())

(* The file is reopened on every attempt: a retry must restream from
   frame 0, not from wherever the previous attempt's channel stopped. *)
let send_file ~addr ?spec ?retries ?backoff ?timeout ?nonce ~format path =
  send_iter ~addr ?spec ?retries ?backoff ?timeout ?nonce (fun push ->
      try
        match format with
        | `Text ->
            In_channel.with_open_text path (fun ic ->
                Trace_text.iter_channel ic ~f:push)
        | `Bin ->
            (* mmap + zero-copy decode; unmappable inputs (pipes) fall
               back to the channel path inside [iter_file]. *)
            Bigwire.iter_file path ~f:push
      with Sys_error msg -> Error msg)
