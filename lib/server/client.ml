open Crd

let connect addr =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  match addr with
  | Server.Unix_sock path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try
         Unix.connect fd (Unix.ADDR_UNIX path);
         Ok fd
       with Unix.Unix_error (e, _, _) ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         Error (Printf.sprintf "connect unix:%s: %s" path (Unix.error_message e)))
  | Server.Tcp (host, port) -> (
      match
        try Ok (Unix.inet_addr_of_string host)
        with Failure _ -> (
          match Unix.gethostbyname host with
          | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
              Error (Printf.sprintf "cannot resolve host %s" host)
          | h -> Ok h.Unix.h_addr_list.(0))
      with
      | Error e -> Error e
      | Ok ip ->
          let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          (try
             Unix.connect fd (Unix.ADDR_INET (ip, port));
             Ok fd
           with Unix.Unix_error (e, _, _) ->
             (try Unix.close fd with Unix.Unix_error _ -> ());
             Error
               (Printf.sprintf "connect tcp:%s:%d: %s" host port
                  (Unix.error_message e))))

let send_iter ~addr ?(spec = "std") produce =
  match connect addr with
  | Error e -> Error e
  | Ok fd -> (
      let cleanup () = try Unix.close fd with Unix.Unix_error _ -> () in
      try
        Proto.send_handshake fd ~spec;
        match Proto.read_handshake_reply fd with
        | Error e ->
            cleanup ();
            Error e
        | Ok () -> (
            let enc =
              Wire.Encoder.create ~emit:(fun s -> Proto.write_all fd s) ()
            in
            match produce (Wire.Encoder.event enc) with
            | Error e ->
                cleanup ();
                Error e
            | Ok () ->
                Wire.Encoder.close enc;
                let reply = Proto.read_to_eof fd in
                cleanup ();
                if String.length reply >= 3 && String.sub reply 0 3 = "ERR" then
                  Error (String.trim reply)
                else Ok reply)
      with Unix.Unix_error (e, fn, _) ->
        cleanup ();
        Error (Printf.sprintf "%s: %s" fn (Unix.error_message e)))

let send_trace ~addr ?spec trace =
  send_iter ~addr ?spec (fun push ->
      Trace.iter_events trace ~f:push;
      Ok ())

let send_file ~addr ?spec ~format path =
  match
    match format with
    | `Text ->
        In_channel.with_open_text path (fun ic ->
            send_iter ~addr ?spec (fun push -> Trace_text.iter_channel ic ~f:push))
    | `Bin ->
        In_channel.with_open_bin path (fun ic ->
            send_iter ~addr ?spec (fun push ->
                Result.map_error Wire.error_to_string
                  (Wire.iter_channel ic ~f:push)))
  with
  | r -> r
  | exception Sys_error msg -> Error msg
