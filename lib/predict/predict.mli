(** Offline predictive commutativity-race detection beyond
    happens-before.

    RD2 only reports non-commuting pairs that are VC-incomparable in
    the one interleaving that was recorded; a race hidden by accidental
    scheduling order is silently missed. This pass predicts races in
    {e sync-preserving reorderings} of the recorded trace (after Ang,
    Farzan & Mathur, "Enhanced Data Race Prediction Through Modular
    Reasoning"): a reordering is {e sound} when it

    - keeps every thread's program order;
    - keeps lock semantics — critical sections of one lock do not
      overlap, and acquires of one lock that appear in the reordering
      keep their observed order;
    - keeps the observed order of every non-commuting call pair that is
      happens-before ordered in the recorded run (VC-incomparable
      conflicting pairs — the races themselves — impose no edge);
    - runs a thread only after its [Fork], and a [Join] only after the
      joined thread's recorded events.

    A conflicting call pair [(d, f)] races iff some sound reordering
    makes both executable next. That holds iff neither event belongs to
    the {e closure} [C(d, f)]: the least set containing the program-
    order prefixes of [d] and [f] (and their threads' fork events) that
    is closed under program order, conflict-HB predecessors of executed
    members, the release-before-later-acquire lock rule, and fork/join.
    [d] and [f] are enabled, not executed, so their own conflict
    predecessors — each other in particular — impose nothing. The closure
    test is sound {e and} complete for this reordering class — the
    differential qcheck suite in [test_predict] checks it pairwise
    against brute-force enumeration of all sound reorderings — and
    every edge it follows is a happens-before edge, so a witnessed
    (VC-incomparable) pair always passes: prediction subsumes RD2.

    Reports reuse {!Crd_detector.Report} verbatim — same point
    descriptions, same symmetric fingerprints — so predicted races dedup
    against witnessed ones in the race database by fingerprint alone. *)

open Crd_base
open Crd_spec
open Crd_trace
open Crd_detector

type stats = {
  events : int;
  calls : int;  (** call events carrying a specification *)
  candidates : int;  (** conflicting cross-thread pairs examined *)
  closures : int;  (** closure fixpoints actually computed *)
  capped : int;  (** candidates dropped by [scan_limit]/[max_attempts] *)
}

type result = {
  witnessed : Report.t list;
      (** the RD2 report list of the observed interleaving, in trace
          order — byte-identical to what [rd2 check] reports *)
  predicted : Report.t list;
      (** one report per predicted race whose fingerprint no witnessed
          report carries; deterministic order, independent of [jobs] *)
  stats : stats;
}

val analyze :
  ?jobs:int ->
  ?scan_limit:int ->
  ?max_attempts:int ->
  spec_for:(Obj_id.t -> Spec.t option) ->
  Trace.t ->
  (result, string) Stdlib.result
(** [analyze ~spec_for trace] runs the observed-order RD2 pass and the
    predictive closure pass over [trace].

    [jobs] (default 1) fans the per-candidate closure checks (and the
    conflict-predecessor precomputation) out over OCaml domains; the
    result is bit-identical for every [jobs] value. [scan_limit]
    (default 64) bounds how many prior conflicting calls are paired
    with each access point of each call; [max_attempts] (default 8)
    bounds how many candidate pairs are tried per unclaimed
    fingerprint. Both caps only limit {e completeness} (counted in
    [stats.capped]) — never soundness: every report returned is a real
    race of some sound reordering.

    [Error] on specification translation failure or when the
    [predict_pass] fault point fires. *)

val analyze_stdspecs :
  ?jobs:int ->
  ?scan_limit:int ->
  ?max_attempts:int ->
  Trace.t ->
  (result, string) Stdlib.result
(** {!analyze} with the built-in specification naming convention
    (object ["name"] or ["name:suffix"] resolves to the [name]
    standard spec). *)

val racing_pairs :
  spec_for:(Obj_id.t -> Spec.t option) ->
  Trace.t ->
  ((int * int) list, string) Stdlib.result
(** Exact, uncapped pair-level analysis for the differential property
    suite: every conflicting cross-thread event-index pair [(d, f)]
    ([d < f] in observed order) that is concurrent in some sound
    reordering — witnessed pairs included. Quadratic; use on small
    traces only. *)
