open Crd_base
open Crd_vclock
open Crd_trace
open Crd_spec
open Crd_apoint
open Crd_detector

(* --- observability ------------------------------------------------- *)

let m_candidates =
  Crd_obs.counter ~help:"Predictive candidate pairs examined"
    "predict_candidates_total"

let m_closures =
  Crd_obs.counter ~help:"Sync-preserving closure fixpoints computed"
    "predict_closures_total"

let m_predicted =
  Crd_obs.counter ~help:"Distinct predicted (non-witnessed) races"
    "predict_predicted_total"

let m_witnessed =
  Crd_obs.counter ~help:"Distinct witnessed races seen by the predictive pass"
    "predict_witnessed_total"

let m_capped =
  Crd_obs.counter ~help:"Predictive candidates dropped by scan caps"
    "predict_capped_total"

let h_pass =
  Crd_obs.histogram ~help:"Predictive pass latency" "predict_seconds"

let fp_pass = Crd_fault.point "predict_pass"
let fp_closure = Crd_fault.point "predict_closure"

(* --- results ------------------------------------------------------- *)

type stats = {
  events : int;
  calls : int;
  candidates : int;
  closures : int;
  capped : int;
}

type result = {
  witnessed : Report.t list;
  predicted : Report.t list;
  stats : stats;
}

(* --- pass 1: observed-order scan ----------------------------------- *)

(* Per access point, the recorded touchers: [all] merged across threads
   and split [by_thread], both ascending by trace index. Own-component
   clocks are non-decreasing along a thread, so the latest toucher in
   thread [t] that happens-before a clock [vc] is found by binary
   search with the epoch test [own x <= vc(t)] — the same test RD2's
   [entry_leq] uses. *)
type phist = { all : int array; by_thread : (int, int array) Hashtbl.t }
type pobj = { repr : Repr.t; pts : phist Point.Tbl.t }

type prep = {
  n : int;
  nthreads : int;
  kind : int array;  (* 0 other, 1 call-with-spec, 2 acquire, 3 join *)
  tid_arr : int array;
  pos_arr : int array;  (* program-order position within the thread *)
  thread_events : int array array;
  thread_len : int array;
  fork_of : int array;  (* thread -> its Fork event, or -1 (root) *)
  join_tgt : int array;  (* join event -> joined thread, else -1 *)
  lock_of : int array;  (* acquire event -> dense lock index, else -1 *)
  acq_order : int array;  (* acquire event -> rank among its lock's acquires *)
  release_idx : int array;  (* acquire event -> matching release, or -1 *)
  lock_acquires : int array array;  (* dense lock -> acquires, ascending *)
  own : int array;  (* call event -> own-component pre-event clock *)
  call_vc : Vclock.t option array;  (* call event -> pre-event snapshot *)
  call_points : Point.t list array;
  call_action : Action.t option array;
  call_obj : int array;  (* call event -> object id, else min_int *)
  objs : (int, pobj) Hashtbl.t;
  maxconf : int array array;
      (* call event -> per thread, the thread position of its latest
         conflicting HB-predecessor there (-1 if none) *)
  witnessed : Report.t list;
}

let build ~spec_for trace =
  let n = Trace.length trace in
  let nthreads = max 1 (Trace.num_threads trace) in
  let reprs : (string, Repr.t) Hashtbl.t = Hashtbl.create 8 in
  let failure = ref None in
  let repr_for o =
    match spec_for o with
    | None -> None
    | Some spec -> (
        match Hashtbl.find_opt reprs (Spec.name spec) with
        | Some r -> Some r
        | None -> (
            match Repr.of_spec spec with
            | Ok r ->
                Hashtbl.add reprs (Spec.name spec) r;
                Some r
            | Error e ->
                failure := Some (Printf.sprintf "spec %s: %s" (Spec.name spec) e);
                None))
  in
  let hb = Hb.create () in
  let rd2 = Rd2.create ~mode:`Constant ~repr_for () in
  let kind = Array.make n 0 in
  let tid_arr = Array.make n 0 in
  let pos_arr = Array.make n 0 in
  let th_rev = Array.make nthreads [] in
  let thread_len = Array.make nthreads 0 in
  let fork_of = Array.make nthreads (-1) in
  let join_tgt = Array.make n (-1) in
  let lock_of = Array.make n (-1) in
  let acq_order = Array.make n (-1) in
  let release_idx = Array.make n (-1) in
  let lock_ids : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let lock_acq_rev = ref [||] in
  let lock_open = ref [||] in
  let own = Array.make n 0 in
  let call_vc = Array.make n None in
  let call_points = Array.make n [] in
  let call_action = Array.make n None in
  let call_obj = Array.make n min_int in
  let objs : (int, pobj) Hashtbl.t = Hashtbl.create 64 in
  (* growable per-point histories, newest first until frozen *)
  let hist_rev :
      (int, (int list ref * (int, int list ref) Hashtbl.t) Point.Tbl.t)
      Hashtbl.t =
    Hashtbl.create 64
  in
  let dense_lock l =
    let key = Lock_id.id l in
    match Hashtbl.find_opt lock_ids key with
    | Some i -> i
    | None ->
        let i = Hashtbl.length lock_ids in
        Hashtbl.add lock_ids key i;
        let grow a init =
          if i < Array.length a then a
          else begin
            let a' = Array.make (max 4 (2 * (i + 1))) init in
            Array.blit a 0 a' 0 (Array.length a);
            a'
          end
        in
        lock_acq_rev := grow !lock_acq_rev [];
        lock_open := grow !lock_open (-1);
        i
  in
  Trace.iter trace ~f:(fun i (e : Event.t) ->
      let tid = Tid.to_int e.tid in
      let vc = Hb.step hb e in
      tid_arr.(i) <- tid;
      pos_arr.(i) <- thread_len.(tid);
      thread_len.(tid) <- thread_len.(tid) + 1;
      th_rev.(tid) <- i :: th_rev.(tid);
      match e.op with
      | Event.Call a -> (
          ignore (Rd2.on_action rd2 ~index:i e.tid a vc);
          match repr_for a.Action.obj with
          | None -> ()
          | Some repr ->
              let key = Obj_id.id a.Action.obj in
              let points = Repr.eta repr a in
              kind.(i) <- 1;
              own.(i) <- Vclock.get vc e.tid;
              call_vc.(i) <- Some (Vclock.copy vc);
              call_points.(i) <- points;
              call_action.(i) <- Some a;
              call_obj.(i) <- key;
              if not (Hashtbl.mem objs key) then begin
                Hashtbl.add objs key
                  { repr; pts = Point.Tbl.create 16 };
                Hashtbl.add hist_rev key (Point.Tbl.create 16)
              end;
              let h = Hashtbl.find hist_rev key in
              List.iter
                (fun pt ->
                  let all, per =
                    match Point.Tbl.find_opt h pt with
                    | Some cell -> cell
                    | None ->
                        let cell = (ref [], Hashtbl.create 4) in
                        Point.Tbl.add h pt cell;
                        cell
                  in
                  all := i :: !all;
                  match Hashtbl.find_opt per tid with
                  | Some l -> l := i :: !l
                  | None -> Hashtbl.add per tid (ref [ i ]))
                points)
      | Event.Acquire l ->
          let li = dense_lock l in
          kind.(i) <- 2;
          lock_of.(i) <- li;
          acq_order.(i) <- List.length !lock_acq_rev.(li);
          !lock_acq_rev.(li) <- i :: !lock_acq_rev.(li);
          !lock_open.(li) <- i
      | Event.Release l -> (
          match Hashtbl.find_opt lock_ids (Lock_id.id l) with
          | None -> ()
          | Some li ->
              if !lock_open.(li) >= 0 then begin
                release_idx.(!lock_open.(li)) <- i;
                !lock_open.(li) <- -1
              end)
      | Event.Fork u ->
          let u = Tid.to_int u in
          if u < nthreads && fork_of.(u) < 0 then fork_of.(u) <- i
      | Event.Join u ->
          let u = Tid.to_int u in
          kind.(i) <- 3;
          if u < nthreads then join_tgt.(i) <- u
      | Event.Read _ | Event.Write _ | Event.Begin | Event.End -> ());
  (match !failure with Some m -> failwith m | None -> ());
  (* freeze *)
  let thread_events =
    Array.map (fun l -> Array.of_list (List.rev l)) th_rev
  in
  let lock_acquires =
    Array.map (fun l -> Array.of_list (List.rev l)) !lock_acq_rev
  in
  let lock_acquires =
    Array.sub lock_acquires 0 (Hashtbl.length lock_ids)
  in
  Hashtbl.iter
    (fun key h ->
      let po = Hashtbl.find objs key in
      Point.Tbl.iter
        (fun pt (all, per) ->
          let by_thread = Hashtbl.create (Hashtbl.length per) in
          Hashtbl.iter
            (fun t l -> Hashtbl.add by_thread t (Array.of_list (List.rev !l)))
            per;
          Point.Tbl.add po.pts pt
            { all = Array.of_list (List.rev !all); by_thread })
        h)
    hist_rev;
  {
    n;
    nthreads;
    kind;
    tid_arr;
    pos_arr;
    thread_events;
    thread_len;
    fork_of;
    join_tgt;
    lock_of;
    acq_order;
    release_idx;
    lock_acquires;
    own;
    call_vc;
    call_points;
    call_action;
    call_obj;
    objs;
    maxconf = Array.make n [||];
    witnessed = Rd2.races rd2;
  }

(* --- conflicting HB-predecessors ----------------------------------- *)

(* Largest index j with own.(arr.(j)) <= limit; own is non-decreasing
   along arr (one thread, ascending trace order). *)
let bsearch_le own arr limit =
  let lo = ref 0 and hi = ref (Array.length arr) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if own.(arr.(mid)) <= limit then lo := mid + 1 else hi := mid
  done;
  !lo - 1

let compute_maxconf prep y =
  if prep.kind.(y) = 1 then begin
    let po = Hashtbl.find prep.objs prep.call_obj.(y) in
    let vc = Option.get prep.call_vc.(y) in
    let my = prep.tid_arr.(y) in
    let arr = Array.make prep.nthreads (-1) in
    List.iter
      (fun pt ->
        List.iter
          (fun pt' ->
            match Point.Tbl.find_opt po.pts pt' with
            | None -> ()
            | Some h ->
                Hashtbl.iter
                  (fun t earr ->
                    if t <> my then begin
                      let limit = Vclock.get vc (Tid.of_int t) in
                      let j = bsearch_le prep.own earr limit in
                      if j >= 0 then begin
                        let x = earr.(j) in
                        if prep.pos_arr.(x) > arr.(t) then
                          arr.(t) <- prep.pos_arr.(x)
                      end
                    end)
                  h.by_thread)
          (Repr.conflicts po.repr pt))
      prep.call_points.(y);
    prep.maxconf.(y) <- arr
  end

(* --- the closure test ---------------------------------------------- *)

exception Forced

(* Is there a sound reordering in which [d] and [f] are both executable
   next? Compute the least event set C forced to execute before the
   pair can be enabled; the pair races iff neither endpoint is forced
   into C. The set is represented by one per-thread frontier (C is
   program-order downward-closed by construction), so membership tests
   and additions are O(1) and the fixpoint is linear in |C|. *)
let closure_admits prep d f =
  Crd_fault.inject fp_closure;
  let frontier = Array.make prep.nthreads 0 in
  let lmax = Array.make (Array.length prep.lock_acquires) (-1) in
  let stack = Stack.create () in
  let d_tid = prep.tid_arr.(d) and f_tid = prep.tid_arr.(f) in
  let d_pos = prep.pos_arr.(d) and f_pos = prep.pos_arr.(f) in
  let rec raise_to t p =
    let p = min p prep.thread_len.(t) in
    if p > frontier.(t) then begin
      if (t = d_tid && p > d_pos) || (t = f_tid && p > f_pos) then
        raise_notrace Forced;
      let old = frontier.(t) in
      frontier.(t) <- p;
      (* running any event of t requires its Fork to have run *)
      if old = 0 && prep.fork_of.(t) >= 0 then require prep.fork_of.(t);
      for q = old to p - 1 do
        Stack.push prep.thread_events.(t).(q) stack
      done
    end
  and require x = raise_to prep.tid_arr.(x) (prep.pos_arr.(x) + 1) in
  let enable x =
    (* behavior preservation for an executed call: all its HB-ordered
       conflicting predecessors must have run first. The race endpoints
       [d] and [f] themselves are exempt — they are enabled, not
       executed, so their return values (and in particular their mutual
       order, the race being tested) are unconstrained. *)
    let mc = prep.maxconf.(x) in
    if Array.length mc > 0 then
      Array.iteri (fun t p -> if p >= 0 then raise_to t (p + 1)) mc
  in
  let require_release a =
    let r = prep.release_idx.(a) in
    if r < 0 then raise_notrace Forced else require r
  in
  let process x =
    match prep.kind.(x) with
    | 1 -> enable x
    | 2 ->
        (* sync-preservation: acquires of one lock that both execute
           keep their observed order, and the earlier one's release
           must run before the later acquire *)
        let l = prep.lock_of.(x) in
        let k = prep.acq_order.(x) in
        if k < lmax.(l) then require_release x
        else if k > lmax.(l) then begin
          let old = lmax.(l) in
          lmax.(l) <- k;
          let acqs = prep.lock_acquires.(l) in
          for j = max 0 old to k - 1 do
            let a' = acqs.(j) in
            if frontier.(prep.tid_arr.(a')) > prep.pos_arr.(a') then
              require_release a'
          done
        end
    | 3 ->
        let u = prep.join_tgt.(x) in
        if u >= 0 then raise_to u prep.thread_len.(u)
    | _ -> ()
  in
  try
    raise_to d_tid d_pos;
    raise_to f_tid f_pos;
    if prep.fork_of.(d_tid) >= 0 then require prep.fork_of.(d_tid);
    if prep.fork_of.(f_tid) >= 0 then require prep.fork_of.(f_tid);
    while not (Stack.is_empty stack) do
      process (Stack.pop stack)
    done;
    true
  with Forced -> false

let is_race prep d f =
  match (prep.call_vc.(d), prep.call_vc.(f)) with
  | Some vd, Some vf when Vclock.concurrent vd vf ->
      (* already concurrent as observed: the recorded interleaving
         itself realizes the pair *)
      true
  | _ ->
      Crd_obs.Counter.incr m_closures;
      closure_admits prep d f

(* --- reports -------------------------------------------------------- *)

let desc repr (p : Point.t) =
  match p with
  | Point.Ds id -> Repr.shape_desc repr id
  | Point.Keyed (id, v) ->
      Printf.sprintf "%s[%s]" (Repr.shape_desc repr id) (Value.to_string v)

let mk_report prep ~d ~f ~pt_f ~pt_d =
  let repr = (Hashtbl.find prep.objs prep.call_obj.(f)).repr in
  let af = Option.get prep.call_action.(f) in
  let ad = Option.get prep.call_action.(d) in
  {
    Report.index = f;
    obj = af.Action.obj;
    tid = Tid.of_int prep.tid_arr.(f);
    action = af;
    point = desc repr pt_f;
    conflicting = desc repr pt_d;
    prior = Some (Tid.of_int prep.tid_arr.(d), ad);
  }

(* --- candidate enumeration ------------------------------------------ *)

type candidate = { d : int; f : int; pt_f : Point.t; pt_d : Point.t; fp : int64 }

(* first index with arr.(i) >= f *)
let lower_bound arr f =
  let lo = ref 0 and hi = ref (Array.length arr) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if arr.(mid) < f then lo := mid + 1 else hi := mid
  done;
  !lo

let enumerate prep ~scan_limit ~max_attempts ~witnessed_fps =
  let attempts : (int64, int) Hashtbl.t = Hashtbl.create 64 in
  let capped = ref 0 in
  let cands = ref [] in
  let count = ref 0 in
  for f = 0 to prep.n - 1 do
    if prep.kind.(f) = 1 then begin
      let po = Hashtbl.find prep.objs prep.call_obj.(f) in
      let f_tid = prep.tid_arr.(f) in
      List.iter
        (fun pt_f ->
          List.iter
            (fun pt' ->
              match Point.Tbl.find_opt po.pts pt' with
              | None -> ()
              | Some h ->
                  let j = ref (lower_bound h.all f - 1) in
                  let scanned = ref 0 in
                  while !j >= 0 && !scanned < scan_limit do
                    let d = h.all.(!j) in
                    if prep.tid_arr.(d) <> f_tid then begin
                      incr scanned;
                      incr count;
                      let fp =
                        Report.fingerprint
                          (mk_report prep ~d ~f ~pt_f ~pt_d:pt')
                      in
                      if not (Hashtbl.mem witnessed_fps fp) then begin
                        let c =
                          Option.value ~default:0 (Hashtbl.find_opt attempts fp)
                        in
                        if c < max_attempts then begin
                          Hashtbl.replace attempts fp (c + 1);
                          cands := { d; f; pt_f; pt_d = pt'; fp } :: !cands
                        end
                        else incr capped
                      end
                    end;
                    decr j
                  done;
                  if !j >= 0 then capped := !capped + (!j + 1))
            (Repr.conflicts po.repr pt_f))
        prep.call_points.(f)
    end
  done;
  (Array.of_list (List.rev !cands), !count, !capped)

(* --- parallel driver ------------------------------------------------ *)

(* Run [f lo hi] over disjoint chunks of [0, n) on [jobs] domains. All
   shared structures are read-only except arrays written at disjoint
   indices; the first exception (if any) is re-raised in the caller. *)
let parallel_chunks ~jobs n f =
  let jobs = max 1 (min jobs n) in
  if jobs = 1 then f 0 n
  else begin
    let chunk = (n + jobs - 1) / jobs in
    let doms =
      List.init (jobs - 1) (fun i ->
          let lo = (i + 1) * chunk in
          let hi = min n (lo + chunk) in
          Domain.spawn (fun () ->
              try
                if lo < hi then f lo hi;
                None
              with e -> Some e))
    in
    let mine = (try f 0 (min chunk n); None with e -> Some e) in
    let first =
      List.fold_left
        (fun acc d ->
          match Domain.join d with Some e when acc = None -> Some e | _ -> acc)
        mine doms
    in
    match first with Some e -> raise e | None -> ()
  end

(* --- entry points --------------------------------------------------- *)

let analyze ?(jobs = 1) ?(scan_limit = 64) ?(max_attempts = 8) ~spec_for trace
    =
  Crd_obs.time h_pass @@ fun () ->
  try
    Crd_fault.inject fp_pass;
    let prep = build ~spec_for trace in
    parallel_chunks ~jobs prep.n (fun lo hi ->
        for y = lo to hi - 1 do
          compute_maxconf prep y
        done);
    let witnessed_fps : (int64, unit) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun r -> Hashtbl.replace witnessed_fps (Report.fingerprint r) ())
      prep.witnessed;
    let cands, examined, capped =
      enumerate prep ~scan_limit ~max_attempts ~witnessed_fps
    in
    Crd_obs.Counter.add m_candidates examined;
    let verdict = Array.make (Array.length cands) false in
    parallel_chunks ~jobs (Array.length cands) (fun lo hi ->
        for i = lo to hi - 1 do
          verdict.(i) <- is_race prep cands.(i).d cands.(i).f
        done);
    (* claim fingerprints in enumeration order: deterministic for any
       [jobs], first realizable pair becomes the sample report *)
    let claimed : (int64, unit) Hashtbl.t = Hashtbl.create 16 in
    let predicted = ref [] in
    Array.iteri
      (fun i c ->
        if verdict.(i) && not (Hashtbl.mem claimed c.fp) then begin
          Hashtbl.add claimed c.fp ();
          predicted :=
            mk_report prep ~d:c.d ~f:c.f ~pt_f:c.pt_f ~pt_d:c.pt_d
            :: !predicted
        end)
      cands;
    let predicted = List.rev !predicted in
    let calls =
      Array.fold_left (fun acc k -> if k = 1 then acc + 1 else acc) 0 prep.kind
    in
    Crd_obs.Counter.add m_witnessed (Hashtbl.length witnessed_fps);
    Crd_obs.Counter.add m_predicted (List.length predicted);
    Crd_obs.Counter.add m_capped capped;
    Ok
      {
        witnessed = prep.witnessed;
        predicted;
        stats =
          {
            events = prep.n;
            calls;
            candidates = examined;
            closures = Array.length cands;
            capped;
          };
      }
  with
  | Crd_fault.Injected m -> Error ("fault injected: " ^ m)
  | Failure m -> Error m
  | Invalid_argument m -> Error m

let stdspec_for o =
  let name = Obj_id.name o in
  let base =
    match String.index_opt name ':' with
    | Some i -> String.sub name 0 i
    | None -> name
  in
  Crd_stdspecs.Stdspecs.find base

let analyze_stdspecs ?jobs ?scan_limit ?max_attempts trace =
  analyze ?jobs ?scan_limit ?max_attempts ~spec_for:stdspec_for trace

let racing_pairs ~spec_for trace =
  try
    let prep = build ~spec_for trace in
    for y = 0 to prep.n - 1 do
      compute_maxconf prep y
    done;
    let seen : (int * int, unit) Hashtbl.t = Hashtbl.create 64 in
    let out = ref [] in
    for f = 0 to prep.n - 1 do
      if prep.kind.(f) = 1 then begin
        let po = Hashtbl.find prep.objs prep.call_obj.(f) in
        let f_tid = prep.tid_arr.(f) in
        List.iter
          (fun pt_f ->
            List.iter
              (fun pt' ->
                match Point.Tbl.find_opt po.pts pt' with
                | None -> ()
                | Some h ->
                    Array.iter
                      (fun d ->
                        if
                          d < f
                          && prep.tid_arr.(d) <> f_tid
                          && not (Hashtbl.mem seen (d, f))
                        then begin
                          Hashtbl.add seen (d, f) ();
                          if is_race prep d f then out := (d, f) :: !out
                        end)
                      h.all)
              (Repr.conflicts po.repr pt_f))
          prep.call_points.(f)
      end
    done;
    Ok (List.sort compare !out)
  with
  | Crd_fault.Injected m -> Error ("fault injected: " ^ m)
  | Failure m -> Error m
  | Invalid_argument m -> Error m
