(** The FastTrack read-write race detector (Flanagan & Freund, PLDI'09).

    FastTrack is the state-of-the-art baseline the paper compares RD2
    against (Table 2). Per memory location it keeps the epoch of the last
    write and adaptively either the epoch of the last read (when reads are
    totally ordered) or a full read vector clock (once reads become
    concurrent) — giving O(1) common-case processing.

    Synchronization is handled externally by {!Crd_trace.Hb}; the
    detector only consumes the issuing thread's current clock. *)

open Crd_base
open Crd_vclock

type stats = {
  mutable reads : int;
  mutable writes : int;
  mutable same_epoch : int;  (** fast-path hits *)
  mutable races : int;
}

type t

val create : ?pool:Vclock.Pool.t -> unit -> t
(** [pool], when given, backs read-epoch inflations (the SHARE
    transition): read vector clocks are acquired from it and released
    again when WRITE SHARED deflates the metadata. Single-owner — see
    {!Vclock.Pool}. *)

val on_read :
  t -> index:int -> Tid.t -> Mem_loc.t -> Vclock.t -> Rw_report.t option
(** [on_read t ~index tid loc clock] processes a read with the thread's
    current clock; reports a write-read race if the last write is not
    ordered before it. *)

val on_write :
  t -> index:int -> Tid.t -> Mem_loc.t -> Vclock.t -> Rw_report.t list
(** Reports a write-write and/or read-write race (at most one of each). *)

val stats : t -> stats
val races : t -> Rw_report.t list
