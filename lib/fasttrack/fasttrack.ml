open Crd_base
open Crd_vclock

module Epoch = Vclock.Epoch

type stats = {
  mutable reads : int;
  mutable writes : int;
  mutable same_epoch : int;
  mutable races : int;
}

type read_meta = Repoch of Epoch.t | Rvc of Vclock.t

type shadow = { mutable w : Epoch.t; mutable r : read_meta }

module LocTbl = Hashtbl.Make (struct
  type t = Mem_loc.t

  let equal = Mem_loc.equal
  let hash = Mem_loc.hash
end)

type t = {
  shadows : shadow LocTbl.t;
  pool : Vclock.Pool.t option;  (* read-clock arena (single-owner) *)
  stats : stats;
  mutable reports : Rw_report.t list;
}

let create ?pool () =
  {
    shadows = LocTbl.create 1024;
    pool;
    stats = { reads = 0; writes = 0; same_epoch = 0; races = 0 };
    reports = [];
  }

let shadow t loc =
  match LocTbl.find_opt t.shadows loc with
  | Some s -> s
  | None ->
      let s = { w = Epoch.none; r = Repoch Epoch.none } in
      LocTbl.add t.shadows loc s;
      s

let report t ~index ~tid ~loc kind =
  t.stats.races <- t.stats.races + 1;
  let r = { Rw_report.index; loc; tid; kind } in
  t.reports <- r :: t.reports;
  r

let on_read t ~index tid loc clock =
  t.stats.reads <- t.stats.reads + 1;
  let s = shadow t loc in
  let e = Epoch.of_vclock clock tid in
  match s.r with
  | Repoch re when Epoch.equal re e ->
      (* SAME EPOCH fast path. *)
      t.stats.same_epoch <- t.stats.same_epoch + 1;
      None
  | _ ->
      let race =
        if not (Epoch.leq s.w clock) then
          Some (report t ~index ~tid ~loc Rw_report.Write_read)
        else None
      in
      (match s.r with
      | Repoch re ->
          if Epoch.leq re clock then
            (* EXCLUSIVE: reads remain totally ordered. *)
            s.r <- Repoch e
          else begin
            (* SHARE: inflate to a read vector clock. *)
            let vc =
              match t.pool with
              | Some p -> Vclock.Pool.acquire p
              | None -> Vclock.bot ()
            in
            Vclock.set vc (Epoch.tid re) (Epoch.clock re);
            Vclock.set vc tid (Epoch.clock e);
            s.r <- Rvc vc
          end
      | Rvc vc ->
          (* SHARED: update this thread's read entry. *)
          Vclock.set vc tid (Epoch.clock e));
      race

let on_write t ~index tid loc clock =
  t.stats.writes <- t.stats.writes + 1;
  let s = shadow t loc in
  let e = Epoch.of_vclock clock tid in
  if Epoch.equal s.w e then begin
    (* SAME EPOCH fast path. *)
    t.stats.same_epoch <- t.stats.same_epoch + 1;
    []
  end
  else begin
    let races = ref [] in
    if not (Epoch.leq s.w clock) then
      races := report t ~index ~tid ~loc Rw_report.Write_write :: !races;
    (match s.r with
    | Repoch re ->
        if not (Epoch.leq re clock) then
          races := report t ~index ~tid ~loc Rw_report.Read_write :: !races
    | Rvc vc ->
        if not (Vclock.leq vc clock) then
          races := report t ~index ~tid ~loc Rw_report.Read_write :: !races;
        (* WRITE SHARED deflates read metadata back to a bottom epoch. *)
        s.r <- Repoch Epoch.none;
        (match t.pool with
        | Some p -> Vclock.Pool.release p vc
        | None -> ()));
    s.w <- e;
    List.rev !races
  end

let stats t = t.stats
let races t = List.rev t.reports
