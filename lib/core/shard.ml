open Crd_base
open Crd_spec
open Crd_apoint
open Crd_trace
open Crd_detector
open Crd_fasttrack
module Vclock = Crd_vclock.Vclock

type result = {
  events : int;
  shards : int;
  fell_back : bool;
  rd2_reports : Report.t list;
  rd2_stats : Rd2.stats option;
  direct_reports : Report.t list;
  direct_stats : Direct.stats option;
  fasttrack_reports : Rw_report.t list;
  fasttrack_stats : Fasttrack.stats option;
  djit_reports : Rw_report.t list;
  atomicity_violations : Crd_atomicity.Atomicity.violation list;
}

let recommended_jobs () = min 8 (Domain.recommended_domain_count ())

let default_parallel_threshold = 100_000

(* Chunk size of the batched handoff: large enough that queue round
   trips and mutex operations are amortized over thousands of events,
   small enough that workers start draining while the sequential
   happens-before pass is still producing. *)
let chunk_events = 8_192

(* ------------------------------------------------------------------ *)
(* Detector bundles                                                    *)
(* ------------------------------------------------------------------ *)

(* One detector set, shared between the inline sequential path and the
   per-shard workers. Each bundle owns its vector-clock pool: pools are
   single-owner, and a bundle never leaves the domain that created it. *)
type detectors = {
  rd2 : Rd2.t option;
  direct : Direct.t option;
  ft : Fasttrack.t option;
  djit : Djit.t option;
  pool : Vclock.Pool.t;
}

type shard_out = {
  sh_rd2 : Report.t list;
  sh_rd2_stats : Rd2.stats option;
  sh_direct : Report.t list;
  sh_direct_stats : Direct.stats option;
  sh_ft : Rw_report.t list;
  sh_ft_stats : Fasttrack.stats option;
  sh_djit : Rw_report.t list;
}

let make_detectors (config : Analyzer.config) ~repr_for ~spec_for () =
  let pool = Metrics.create_pool () in
  {
    rd2 =
      (match config.rd2 with
      | `Off -> None
      | (`Constant | `Linear) as mode ->
          Some (Rd2.create ~mode ~pool ~repr_for ()));
    direct =
      (if config.direct then Some (Direct.create ~spec_for ()) else None);
    ft = (if config.fasttrack then Some (Fasttrack.create ~pool ()) else None);
    djit = (if config.djit then Some (Djit.create ()) else None);
    pool;
  }

(* The dispatch hot loop: no allocation of its own — everything it
   touches (event, clock snapshot) was allocated by the producer. *)
let dispatch d ~index (e : Event.t) vc =
  match e.op with
  | Event.Call action ->
      (match d.rd2 with
      | Some det -> ignore (Rd2.on_action det ~index e.tid action vc)
      | None -> ());
      (match d.direct with
      | Some det -> ignore (Direct.on_action det ~index e.tid action vc)
      | None -> ())
  | Event.Read loc ->
      (match d.ft with
      | Some det -> ignore (Fasttrack.on_read det ~index e.tid loc vc)
      | None -> ());
      (match d.djit with
      | Some det -> ignore (Djit.on_read det ~index e.tid loc vc)
      | None -> ())
  | Event.Write loc ->
      (match d.ft with
      | Some det -> ignore (Fasttrack.on_write det ~index e.tid loc vc)
      | None -> ());
      (match d.djit with
      | Some det -> ignore (Djit.on_write det ~index e.tid loc vc)
      | None -> ())
  | Event.Fork _ | Event.Join _ | Event.Acquire _ | Event.Release _
  | Event.Begin | Event.End ->
      ()

let outputs_of d =
  Metrics.publish_pool d.pool;
  {
    sh_rd2 = (match d.rd2 with Some det -> Rd2.races det | None -> []);
    sh_rd2_stats = Option.map Rd2.stats d.rd2;
    sh_direct = (match d.direct with Some det -> Direct.races det | None -> []);
    sh_direct_stats = Option.map Direct.stats d.direct;
    sh_ft = (match d.ft with Some det -> Fasttrack.races det | None -> []);
    sh_ft_stats = Option.map Fasttrack.stats d.ft;
    sh_djit = (match d.djit with Some det -> Djit.races det | None -> []);
  }

(* ------------------------------------------------------------------ *)
(* Chunked handoff                                                     *)
(* ------------------------------------------------------------------ *)

(* A chunk is a fixed-capacity struct-of-arrays batch: appending an
   event is three unsafe stores and a bump — no per-event closure, list
   cell or queue round-trip. Clock snapshots are the stable [Hb]
   snapshots (copy-on-sync, never mutated after creation), so sharing
   them with a concurrently-running worker is safe once the chunk is
   published under the handoff mutex. *)
type chunk = {
  c_idx : int array;
  c_ev : Event.t array;
  c_vc : Vclock.t array;
  mutable c_n : int;
}

let dummy_event = Event.begin_ Tid.main

let fresh_chunk dummy_vc =
  {
    c_idx = Array.make chunk_events 0;
    c_ev = Array.make chunk_events dummy_event;
    c_vc = Array.make chunk_events dummy_vc;
    c_n = 0;
  }

(* One single-producer single-consumer handoff per shard. The producer
   (the sequential pass) pushes full chunks; the worker drains whole
   chunks. Unbounded: the producer never blocks, and total buffered
   memory is O(events) exactly like the pre-chunking bucket arrays. *)
type handoff = {
  mu : Mutex.t;
  cond : Condition.t;
  q : chunk Queue.t;
  mutable closed : bool;
}

let make_handoff () =
  { mu = Mutex.create (); cond = Condition.create (); q = Queue.create ();
    closed = false }

let push h ch =
  Mutex.lock h.mu;
  Queue.push ch h.q;
  Condition.signal h.cond;
  Mutex.unlock h.mu

let close h =
  Mutex.lock h.mu;
  h.closed <- true;
  Condition.signal h.cond;
  Mutex.unlock h.mu

let pop h =
  Mutex.lock h.mu;
  let rec wait () =
    match Queue.take_opt h.q with
    | Some ch -> Some ch
    | None ->
        if h.closed then None
        else begin
          Condition.wait h.cond h.mu;
          wait ()
        end
  in
  let r = wait () in
  Mutex.unlock h.mu;
  r

let drain_worker config ~repr_for ~spec_for h () =
  Crd_obs.time Metrics.shard_wall_seconds (fun () ->
      let dets = make_detectors config ~repr_for ~spec_for () in
      let rec loop () =
        match pop h with
        | None -> ()
        | Some ch ->
            for i = 0 to ch.c_n - 1 do
              dispatch dets
                ~index:(Array.unsafe_get ch.c_idx i)
                (Array.unsafe_get ch.c_ev i)
                (Array.unsafe_get ch.c_vc i)
            done;
            Crd_obs.Counter.incr Metrics.shard_chunks_total;
            loop ()
      in
      loop ();
      outputs_of dets)

(* ------------------------------------------------------------------ *)
(* Deterministic merge                                                 *)
(* ------------------------------------------------------------------ *)

(* Deterministic merge: each trace index lives in exactly one shard and
   per-shard report lists are already in trace order, so a stable sort on
   the index reproduces the sequential report list exactly. *)
let merge_reports index_of per_shard =
  List.stable_sort
    (fun a b -> Int.compare (index_of a) (index_of b))
    (List.concat per_shard)

let sum_rd2_stats = function
  | [] -> None
  | (s0 : Rd2.stats) :: rest ->
      let acc =
        {
          Rd2.actions = s0.Rd2.actions;
          lookups = s0.Rd2.lookups;
          races = s0.Rd2.races;
          same_epoch = s0.Rd2.same_epoch;
          promotions = s0.Rd2.promotions;
          deflations = s0.Rd2.deflations;
        }
      in
      List.iter
        (fun (s : Rd2.stats) ->
          acc.Rd2.actions <- acc.Rd2.actions + s.Rd2.actions;
          acc.Rd2.lookups <- acc.Rd2.lookups + s.Rd2.lookups;
          acc.Rd2.races <- acc.Rd2.races + s.Rd2.races;
          acc.Rd2.same_epoch <- acc.Rd2.same_epoch + s.Rd2.same_epoch;
          acc.Rd2.promotions <- acc.Rd2.promotions + s.Rd2.promotions;
          acc.Rd2.deflations <- acc.Rd2.deflations + s.Rd2.deflations)
        rest;
      Some acc

let sum_direct_stats = function
  | [] -> None
  | (s0 : Direct.stats) :: rest ->
      let acc =
        {
          Direct.actions = s0.Direct.actions;
          lookups = s0.Direct.lookups;
          races = s0.Direct.races;
        }
      in
      List.iter
        (fun (s : Direct.stats) ->
          acc.Direct.actions <- acc.Direct.actions + s.Direct.actions;
          acc.Direct.lookups <- acc.Direct.lookups + s.Direct.lookups;
          acc.Direct.races <- acc.Direct.races + s.Direct.races)
        rest;
      Some acc

let sum_ft_stats = function
  | [] -> None
  | (s0 : Fasttrack.stats) :: rest ->
      let acc =
        {
          Fasttrack.reads = s0.Fasttrack.reads;
          writes = s0.Fasttrack.writes;
          same_epoch = s0.Fasttrack.same_epoch;
          races = s0.Fasttrack.races;
        }
      in
      List.iter
        (fun (s : Fasttrack.stats) ->
          acc.Fasttrack.reads <- acc.Fasttrack.reads + s.Fasttrack.reads;
          acc.Fasttrack.writes <- acc.Fasttrack.writes + s.Fasttrack.writes;
          acc.Fasttrack.same_epoch <- acc.Fasttrack.same_epoch + s.Fasttrack.same_epoch;
          acc.Fasttrack.races <- acc.Fasttrack.races + s.Fasttrack.races)
        rest;
      Some acc

(* ------------------------------------------------------------------ *)
(* The analysis driver                                                 *)
(* ------------------------------------------------------------------ *)

let analyze ?(jobs = 1) ?(force = false) ?(threshold = default_parallel_threshold)
    ?(config = Analyzer.default_config) ~spec_for trace =
  let total = Trace.length trace in
  let requested = max 1 jobs in
  (* Small traces lose to domain-spawn and handoff overhead; fall back
     to the inline sequential path unless the caller insists. *)
  let fell_back = requested > 1 && (not force) && total < threshold in
  let n = if fell_back then 1 else requested in
  if fell_back then Crd_obs.Counter.incr Metrics.shard_fallback_total;
  (* -------- sequential pass: clocks, routing, spec resolution ------- *)
  let hb = Hb.create () in
  (* Spec/repr resolution happens only in this (producer) domain; the
     tables are also read by worker domains through [repr_ro]/[spec_ro],
     so every cross-domain access takes [tables_mu]. The producer's own
     unlocked reads are safe: it is the only writer. Workers hit the
     lock once per (object, shard) — their detectors memoize. *)
  let tables_mu = Mutex.create () in
  let specs_by_obj : (int, Spec.t option) Hashtbl.t = Hashtbl.create 64 in
  let reprs_by_name : (string, Repr.t) Hashtbl.t = Hashtbl.create 8 in
  let reprs_by_obj : (int, Repr.t option) Hashtbl.t = Hashtbl.create 64 in
  let failure = ref None in
  let resolve (o : Obj_id.t) =
    let key = Obj_id.id o in
    if not (Hashtbl.mem specs_by_obj key) then begin
      let spec = spec_for o in
      let repr =
        match spec with
        | None -> None
        | Some spec -> (
            match Hashtbl.find_opt reprs_by_name (Spec.name spec) with
            | Some r -> Some r
            | None -> (
                match Repr.of_spec spec with
                | Ok r -> Some r
                | Error e ->
                    if !failure = None then
                      failure :=
                        Some (Printf.sprintf "spec %s: %s" (Spec.name spec) e);
                    None))
      in
      Mutex.lock tables_mu;
      Hashtbl.add specs_by_obj key spec;
      (match (spec, repr) with
      | Some spec, Some r -> Hashtbl.replace reprs_by_name (Spec.name spec) r
      | _ -> ());
      Hashtbl.add reprs_by_obj key repr;
      Mutex.unlock tables_mu
    end
  in
  let repr_ro o =
    Mutex.lock tables_mu;
    let r = Option.join (Hashtbl.find_opt reprs_by_obj (Obj_id.id o)) in
    Mutex.unlock tables_mu;
    r
  in
  let spec_ro o =
    Mutex.lock tables_mu;
    let s = Option.join (Hashtbl.find_opt specs_by_obj (Obj_id.id o)) in
    Mutex.unlock tables_mu;
    s
  in
  (* The atomicity checker is cross-object (one transactional graph), so
     it cannot be sharded; it runs here, inside the sequential pass. *)
  let atomicity =
    if config.atomicity then
      Some (Crd_atomicity.Atomicity.create ~repr_for:repr_ro ())
    else None
  in
  let step_sync index (e : Event.t) =
    let vc = Hb.step hb e in
    (match e.op with
    | Event.Call action -> resolve action.Action.obj
    | _ -> ());
    (match atomicity with
    | Some a -> ignore (Crd_atomicity.Atomicity.step a ~index e)
    | None -> ());
    vc
  in
  let outs =
    if n = 1 then begin
      (* Inline path: one detector bundle fed directly during the clock
         pass — no buffering, no routing, no domain. *)
      Crd_obs.time Metrics.shard_wall_seconds (fun () ->
          let dets =
            make_detectors config ~repr_for:repr_ro ~spec_for:spec_ro ()
          in
          Trace.iter trace ~f:(fun index e ->
              let vc = step_sync index e in
              if !failure = None then dispatch dets ~index e vc);
          [ outputs_of dets ])
    end
    else begin
      (* Streaming parallel path: spawn the workers first, then route
         events into per-shard chunks as their clocks are computed, so
         shard analysis overlaps the sequential happens-before pass. *)
      let handoffs = Array.init n (fun _ -> make_handoff ()) in
      let workers =
        Array.map
          (fun h ->
            Domain.spawn
              (drain_worker config ~repr_for:repr_ro ~spec_for:spec_ro h))
          handoffs
      in
      let dummy_vc = Vclock.bot () in
      let fill = Array.init n (fun _ -> fresh_chunk dummy_vc) in
      let route shard index e vc =
        let ch = fill.(shard) in
        let i = ch.c_n in
        Array.unsafe_set ch.c_idx i index;
        Array.unsafe_set ch.c_ev i e;
        Array.unsafe_set ch.c_vc i vc;
        ch.c_n <- i + 1;
        if ch.c_n = chunk_events then begin
          push handoffs.(shard) ch;
          fill.(shard) <- fresh_chunk dummy_vc
        end
      in
      Trace.iter trace ~f:(fun index (e : Event.t) ->
          let vc = step_sync index e in
          if !failure = None then
            match e.op with
            | Event.Call action ->
                route
                  (abs (Obj_id.id action.Action.obj) mod n)
                  index e vc
            | Event.Read loc | Event.Write loc ->
                route (abs (Mem_loc.hash loc) mod n) index e vc
            | Event.Fork _ | Event.Join _ | Event.Acquire _ | Event.Release _
            | Event.Begin | Event.End ->
                ());
      Array.iteri
        (fun s h ->
          if fill.(s).c_n > 0 then push h fill.(s);
          close h)
        handoffs;
      Array.to_list (Array.map Domain.join workers)
    end
  in
  match !failure with
  | Some e -> Error e
  | None ->
      let collect f = List.map f outs in
      let stats_of f = List.filter_map f outs in
      let merge_span = Crd_obs.Span.start Metrics.shard_merge_seconds in
      let result =
        {
          events = total;
          shards = n;
          fell_back;
          rd2_reports =
            merge_reports
              (fun (r : Report.t) -> r.Report.index)
              (collect (fun o -> o.sh_rd2));
          rd2_stats = sum_rd2_stats (stats_of (fun o -> o.sh_rd2_stats));
          direct_reports =
            merge_reports
              (fun (r : Report.t) -> r.Report.index)
              (collect (fun o -> o.sh_direct));
          direct_stats = sum_direct_stats (stats_of (fun o -> o.sh_direct_stats));
          fasttrack_reports =
            merge_reports
              (fun (r : Rw_report.t) -> r.Rw_report.index)
              (collect (fun o -> o.sh_ft));
          fasttrack_stats = sum_ft_stats (stats_of (fun o -> o.sh_ft_stats));
          djit_reports =
            merge_reports
              (fun (r : Rw_report.t) -> r.Rw_report.index)
              (collect (fun o -> o.sh_djit));
          atomicity_violations =
            (match atomicity with
            | Some a -> Crd_atomicity.Atomicity.violations a
            | None -> []);
        }
      in
      Crd_obs.Span.finish merge_span;
      Crd_obs.Counter.add Metrics.events_total result.events;
      Crd_obs.Counter.incr Metrics.shard_runs_total;
      Option.iter Metrics.publish_rd2 result.rd2_stats;
      Ok result

let pp_summary ppf r =
  Fmt.pf ppf "@[<v>events: %d (%d shard%s%s)@," r.events r.shards
    (if r.shards = 1 then "" else "s")
    (if r.fell_back then ", fell back to sequential" else "");
  (match r.rd2_stats with
  | Some s ->
      Fmt.pf ppf "rd2: %d races (%d distinct)@,"
        (List.length r.rd2_reports)
        (Report.distinct r.rd2_reports);
      if s.Rd2.actions > 0 then
        Fmt.pf ppf "rd2: %d/%d actions same-epoch (%.1f%%)@," s.Rd2.same_epoch
          s.Rd2.actions
          (100. *. float_of_int s.Rd2.same_epoch /. float_of_int s.Rd2.actions)
  | None -> ());
  (match r.direct_stats with
  | Some _ ->
      Fmt.pf ppf "direct: %d races (%d distinct)@,"
        (List.length r.direct_reports)
        (Report.distinct r.direct_reports)
  | None -> ());
  (match r.fasttrack_stats with
  | Some _ ->
      Fmt.pf ppf "fasttrack: %d races (%d distinct locations)@,"
        (List.length r.fasttrack_reports)
        (Rw_report.distinct_locations r.fasttrack_reports)
  | None -> ());
  if r.djit_reports <> [] then
    Fmt.pf ppf "djit: %d races (%d distinct locations)@,"
      (List.length r.djit_reports)
      (Rw_report.distinct_locations r.djit_reports);
  if r.atomicity_violations <> [] then
    Fmt.pf ppf "atomicity: %d violation(s)@,"
      (List.length r.atomicity_violations);
  Fmt.pf ppf "@]"

let analyze_stdspecs ?jobs ?force ?threshold ?config trace =
  let spec_for o =
    let name = Obj_id.name o in
    let base =
      match String.index_opt name ':' with
      | Some i -> String.sub name 0 i
      | None -> name
    in
    Crd_stdspecs.Stdspecs.find base
  in
  analyze ?jobs ?force ?threshold ?config ~spec_for trace
