open Crd_base
open Crd_spec
open Crd_apoint
open Crd_trace
open Crd_detector
open Crd_fasttrack

type result = {
  events : int;
  shards : int;
  rd2_reports : Report.t list;
  rd2_stats : Rd2.stats option;
  direct_reports : Report.t list;
  direct_stats : Direct.stats option;
  fasttrack_reports : Rw_report.t list;
  fasttrack_stats : Fasttrack.stats option;
  djit_reports : Rw_report.t list;
  atomicity_violations : Crd_atomicity.Atomicity.violation list;
}

(* One dispatchable event: a Call/Read/Write with its precomputed clock.
   The clock is a stable Hb snapshot; after the sequential pass it is
   only ever read, so sharing it across domains is safe. *)
type prepared = { p_idx : int; p_ev : Event.t; p_vc : Crd_vclock.Vclock.t }

type shard_out = {
  sh_rd2 : Report.t list;
  sh_rd2_stats : Rd2.stats option;
  sh_direct : Report.t list;
  sh_direct_stats : Direct.stats option;
  sh_ft : Rw_report.t list;
  sh_ft_stats : Fasttrack.stats option;
  sh_djit : Rw_report.t list;
}

let recommended_jobs () = min 8 (Domain.recommended_domain_count ())

(* Analyze one shard's events with fresh detector instances. [repr_for]
   and [spec_for] only read hashtables fully populated by the sequential
   pass, so concurrent workers never race. *)
let run_shard (config : Analyzer.config) ~repr_for ~spec_for items =
  let rd2 =
    match config.rd2 with
    | `Off -> None
    | (`Constant | `Linear) as mode -> Some (Rd2.create ~mode ~repr_for ())
  in
  let direct = if config.direct then Some (Direct.create ~spec_for ()) else None in
  let ft = if config.fasttrack then Some (Fasttrack.create ()) else None in
  let djit = if config.djit then Some (Djit.create ()) else None in
  List.iter
    (fun { p_idx = index; p_ev = (e : Event.t); p_vc = vc } ->
      match e.op with
      | Event.Call action ->
          (match rd2 with
          | Some d -> ignore (Rd2.on_action d ~index e.tid action vc)
          | None -> ());
          (match direct with
          | Some d -> ignore (Direct.on_action d ~index e.tid action vc)
          | None -> ())
      | Event.Read loc ->
          (match ft with
          | Some d -> ignore (Fasttrack.on_read d ~index e.tid loc vc)
          | None -> ());
          (match djit with
          | Some d -> ignore (Djit.on_read d ~index e.tid loc vc)
          | None -> ())
      | Event.Write loc ->
          (match ft with
          | Some d -> ignore (Fasttrack.on_write d ~index e.tid loc vc)
          | None -> ());
          (match djit with
          | Some d -> ignore (Djit.on_write d ~index e.tid loc vc)
          | None -> ())
      | Event.Fork _ | Event.Join _ | Event.Acquire _ | Event.Release _
      | Event.Begin | Event.End ->
          ())
    items;
  {
    sh_rd2 = (match rd2 with Some d -> Rd2.races d | None -> []);
    sh_rd2_stats = Option.map Rd2.stats rd2;
    sh_direct = (match direct with Some d -> Direct.races d | None -> []);
    sh_direct_stats = Option.map Direct.stats direct;
    sh_ft = (match ft with Some d -> Fasttrack.races d | None -> []);
    sh_ft_stats = Option.map Fasttrack.stats ft;
    sh_djit = (match djit with Some d -> Djit.races d | None -> []);
  }

(* Deterministic merge: each trace index lives in exactly one shard and
   per-shard report lists are already in trace order, so a stable sort on
   the index reproduces the sequential report list exactly. *)
let merge_reports index_of per_shard =
  List.stable_sort
    (fun a b -> Int.compare (index_of a) (index_of b))
    (List.concat per_shard)

let sum_rd2_stats = function
  | [] -> None
  | (s0 : Rd2.stats) :: rest ->
      let acc =
        {
          Rd2.actions = s0.Rd2.actions;
          lookups = s0.Rd2.lookups;
          races = s0.Rd2.races;
          same_epoch = s0.Rd2.same_epoch;
          promotions = s0.Rd2.promotions;
          deflations = s0.Rd2.deflations;
        }
      in
      List.iter
        (fun (s : Rd2.stats) ->
          acc.Rd2.actions <- acc.Rd2.actions + s.Rd2.actions;
          acc.Rd2.lookups <- acc.Rd2.lookups + s.Rd2.lookups;
          acc.Rd2.races <- acc.Rd2.races + s.Rd2.races;
          acc.Rd2.same_epoch <- acc.Rd2.same_epoch + s.Rd2.same_epoch;
          acc.Rd2.promotions <- acc.Rd2.promotions + s.Rd2.promotions;
          acc.Rd2.deflations <- acc.Rd2.deflations + s.Rd2.deflations)
        rest;
      Some acc

let sum_direct_stats = function
  | [] -> None
  | (s0 : Direct.stats) :: rest ->
      let acc =
        {
          Direct.actions = s0.Direct.actions;
          lookups = s0.Direct.lookups;
          races = s0.Direct.races;
        }
      in
      List.iter
        (fun (s : Direct.stats) ->
          acc.Direct.actions <- acc.Direct.actions + s.Direct.actions;
          acc.Direct.lookups <- acc.Direct.lookups + s.Direct.lookups;
          acc.Direct.races <- acc.Direct.races + s.Direct.races)
        rest;
      Some acc

let sum_ft_stats = function
  | [] -> None
  | (s0 : Fasttrack.stats) :: rest ->
      let acc =
        {
          Fasttrack.reads = s0.Fasttrack.reads;
          writes = s0.Fasttrack.writes;
          same_epoch = s0.Fasttrack.same_epoch;
          races = s0.Fasttrack.races;
        }
      in
      List.iter
        (fun (s : Fasttrack.stats) ->
          acc.Fasttrack.reads <- acc.Fasttrack.reads + s.Fasttrack.reads;
          acc.Fasttrack.writes <- acc.Fasttrack.writes + s.Fasttrack.writes;
          acc.Fasttrack.same_epoch <- acc.Fasttrack.same_epoch + s.Fasttrack.same_epoch;
          acc.Fasttrack.races <- acc.Fasttrack.races + s.Fasttrack.races)
        rest;
      Some acc

let analyze ?(jobs = 1) ?(config = Analyzer.default_config) ~spec_for trace =
  let n = max 1 jobs in
  (* -------- sequential pass: clocks, partition, spec resolution ------ *)
  let hb = Hb.create () in
  (* spec/repr resolution happens only here, sequentially; the tables are
     read-only by the time workers start. *)
  let specs_by_obj : (int, Spec.t option) Hashtbl.t = Hashtbl.create 64 in
  let reprs_by_name : (string, Repr.t) Hashtbl.t = Hashtbl.create 8 in
  let reprs_by_obj : (int, Repr.t option) Hashtbl.t = Hashtbl.create 64 in
  let failure = ref None in
  let resolve (o : Obj_id.t) =
    let key = Obj_id.id o in
    if not (Hashtbl.mem specs_by_obj key) then begin
      let spec = spec_for o in
      Hashtbl.add specs_by_obj key spec;
      let repr =
        match spec with
        | None -> None
        | Some spec -> (
            match Hashtbl.find_opt reprs_by_name (Spec.name spec) with
            | Some r -> Some r
            | None -> (
                match Repr.of_spec spec with
                | Ok r ->
                    Hashtbl.add reprs_by_name (Spec.name spec) r;
                    Some r
                | Error e ->
                    if !failure = None then
                      failure :=
                        Some (Printf.sprintf "spec %s: %s" (Spec.name spec) e);
                    None))
      in
      Hashtbl.add reprs_by_obj key repr
    end
  in
  let repr_for o =
    resolve o;
    Option.join (Hashtbl.find_opt reprs_by_obj (Obj_id.id o))
  in
  (* The atomicity checker is cross-object (one transactional graph), so
     it cannot be sharded; it runs here, inside the sequential pass. *)
  let atomicity =
    if config.atomicity then
      Some (Crd_atomicity.Atomicity.create ~repr_for ())
    else None
  in
  let buckets = Array.make n [] in
  let push i p = buckets.(i) <- p :: buckets.(i) in
  Trace.iter trace ~f:(fun index (e : Event.t) ->
      let vc = Hb.step hb e in
      (match e.op with
      | Event.Call action -> resolve action.Action.obj
      | _ -> ());
      (match atomicity with
      | Some a -> ignore (Crd_atomicity.Atomicity.step a ~index e)
      | None -> ());
      match e.op with
      | Event.Call action ->
          let obj = action.Action.obj in
          push (abs (Obj_id.id obj) mod n) { p_idx = index; p_ev = e; p_vc = vc }
      | Event.Read loc | Event.Write loc ->
          push
            (abs (Mem_loc.hash loc) mod n)
            { p_idx = index; p_ev = e; p_vc = vc }
      | Event.Fork _ | Event.Join _ | Event.Acquire _ | Event.Release _
      | Event.Begin | Event.End ->
          ());
  match !failure with
  | Some e -> Error e
  | None ->
      let shards = Array.map List.rev buckets in
      (* Workers get read-only views: every object with a Call event was
         resolved during the sequential pass, so these never write. *)
      let repr_ro o = Option.join (Hashtbl.find_opt reprs_by_obj (Obj_id.id o)) in
      let spec_ro o = Option.join (Hashtbl.find_opt specs_by_obj (Obj_id.id o)) in
      (* -------- parallel pass: one detector set per shard ------------ *)
      let timed_shard items () =
        Crd_obs.time Metrics.shard_wall_seconds (fun () ->
            run_shard config ~repr_for:repr_ro ~spec_for:spec_ro items)
      in
      let outs =
        if n = 1 then [| timed_shard shards.(0) () |]
        else
          Array.map Domain.join
            (Array.map (fun items -> Domain.spawn (timed_shard items)) shards)
      in
      let outs = Array.to_list outs in
      let collect f = List.map f outs in
      let stats_of f = List.filter_map f outs in
      let merge_span = Crd_obs.Span.start Metrics.shard_merge_seconds in
      let result =
        {
          events = Trace.length trace;
          shards = n;
          rd2_reports =
            merge_reports
              (fun (r : Report.t) -> r.Report.index)
              (collect (fun o -> o.sh_rd2));
          rd2_stats = sum_rd2_stats (stats_of (fun o -> o.sh_rd2_stats));
          direct_reports =
            merge_reports
              (fun (r : Report.t) -> r.Report.index)
              (collect (fun o -> o.sh_direct));
          direct_stats = sum_direct_stats (stats_of (fun o -> o.sh_direct_stats));
          fasttrack_reports =
            merge_reports
              (fun (r : Rw_report.t) -> r.Rw_report.index)
              (collect (fun o -> o.sh_ft));
          fasttrack_stats = sum_ft_stats (stats_of (fun o -> o.sh_ft_stats));
          djit_reports =
            merge_reports
              (fun (r : Rw_report.t) -> r.Rw_report.index)
              (collect (fun o -> o.sh_djit));
          atomicity_violations =
            (match atomicity with
            | Some a -> Crd_atomicity.Atomicity.violations a
            | None -> []);
        }
      in
      Crd_obs.Span.finish merge_span;
      Crd_obs.Counter.add Metrics.events_total result.events;
      Crd_obs.Counter.incr Metrics.shard_runs_total;
      Option.iter Metrics.publish_rd2 result.rd2_stats;
      Ok result

let pp_summary ppf r =
  Fmt.pf ppf "@[<v>events: %d (%d shard%s)@," r.events r.shards
    (if r.shards = 1 then "" else "s");
  (match r.rd2_stats with
  | Some s ->
      Fmt.pf ppf "rd2: %d races (%d distinct)@,"
        (List.length r.rd2_reports)
        (Report.distinct r.rd2_reports);
      if s.Rd2.actions > 0 then
        Fmt.pf ppf "rd2: %d/%d actions same-epoch (%.1f%%)@," s.Rd2.same_epoch
          s.Rd2.actions
          (100. *. float_of_int s.Rd2.same_epoch /. float_of_int s.Rd2.actions)
  | None -> ());
  (match r.direct_stats with
  | Some _ ->
      Fmt.pf ppf "direct: %d races (%d distinct)@,"
        (List.length r.direct_reports)
        (Report.distinct r.direct_reports)
  | None -> ());
  (match r.fasttrack_stats with
  | Some _ ->
      Fmt.pf ppf "fasttrack: %d races (%d distinct locations)@,"
        (List.length r.fasttrack_reports)
        (Rw_report.distinct_locations r.fasttrack_reports)
  | None -> ());
  if r.djit_reports <> [] then
    Fmt.pf ppf "djit: %d races (%d distinct locations)@,"
      (List.length r.djit_reports)
      (Rw_report.distinct_locations r.djit_reports);
  if r.atomicity_violations <> [] then
    Fmt.pf ppf "atomicity: %d violation(s)@,"
      (List.length r.atomicity_violations);
  Fmt.pf ppf "@]"

let analyze_stdspecs ?jobs ?config trace =
  let spec_for o =
    let name = Obj_id.name o in
    let base =
      match String.index_opt name ':' with
      | Some i -> String.sub name 0 i
      | None -> name
    in
    Crd_stdspecs.Stdspecs.find base
  in
  analyze ?jobs ?config ~spec_for trace
