(** Commutativity race detection — public umbrella.

    This module re-exports the whole library surface under one name, so
    applications can [open Crd] (or use [Crd.X]) without tracking the
    individual sub-libraries:

    - values, identities, clocks: {!Value}, {!Tid}, {!Obj_id}, {!Lock_id},
      {!Mem_loc}, {!Prng}, {!Vclock};
    - traces and happens-before: {!Action}, {!Event}, {!Trace},
      {!Trace_text}, the binary {!Wire} codec, {!Hb};
    - specification logic: {!Atom}, {!Formula}, {!Ecl}, {!Signature},
      {!Spec}, the surface-syntax {!Spec_parser} and built-in
      {!Stdspecs};
    - access points: {!Point}, {!Residual}, {!Translate}, {!Repr};
    - detectors: {!Rd2}, {!Direct}, {!Report} (commutativity),
      {!Fasttrack}, {!Djit}, {!Rw_report} (read-write);
    - semantics and validation: {!Model}, {!Models}, {!Soundness};
    - the execution substrate: {!Sched}, {!Monitored};
    - and the end-to-end {!Analyzer}, plus {!Shard}, its multi-domain
      offline counterpart, and {!Predict}, the offline predictive pass
      over sync-preserving reorderings. *)

module Value = Crd_base.Value
module Tid = Crd_base.Tid
module Obj_id = Crd_base.Obj_id
module Lock_id = Crd_base.Lock_id
module Mem_loc = Crd_base.Mem_loc
module Prng = Crd_base.Prng
module Vclock = Crd_vclock.Vclock
module Action = Crd_trace.Action
module Event = Crd_trace.Event
module Trace = Crd_trace.Trace
module Trace_text = Crd_trace.Trace_text
module Wire = Crd_wire.Codec
module Bigwire = Crd_wire.Bigcodec
module Hb = Crd_trace.Hb
module Atom = Crd_spec.Atom
module Formula = Crd_spec.Formula
module Ecl = Crd_spec.Ecl
module Signature = Crd_spec.Signature
module Spec = Crd_spec.Spec
module Spec_parser = Crd_spec_parser.Parser
module Stdspecs = Crd_stdspecs.Stdspecs
module Point = Crd_apoint.Point
module Residual = Crd_apoint.Residual
module Translate = Crd_apoint.Translate
module Repr = Crd_apoint.Repr
module Report = Crd_detector.Report
module Rd2 = Crd_detector.Rd2
module Direct = Crd_detector.Direct
module Rw_report = Crd_fasttrack.Rw_report
module Fasttrack = Crd_fasttrack.Fasttrack
module Djit = Crd_fasttrack.Djit
module Lockset = Crd_fasttrack.Lockset
module Model = Crd_semantics.Model
module Models = Crd_semantics.Models
module Soundness = Crd_semantics.Soundness
module Sched = Crd_runtime.Sched
module Monitored = Crd_runtime.Monitored
module Atomicity = Crd_atomicity.Atomicity
module Predict = Crd_predict.Predict
module Analyzer = Analyzer
module Shard = Shard
