(** End-to-end dynamic analysis sessions.

    An analyzer owns one happens-before engine (Table 1) and any
    combination of attached detectors:

    - {b rd2} — the commutativity race detector of Algorithm 1, fed by
      [Call] events (in constant-lookup or linear-scan mode);
    - {b direct} — the naive specification-level detector (Section 5.1);
    - {b fasttrack} / {b djit} — read-write detectors fed by
      [Read]/[Write] events.

    Events can come from a recorded {!Crd_trace.Trace.t}, from a parsed
    trace file, or live from {!Crd_runtime.Sched.run} via [sink]. *)

open Crd_base
open Crd_trace
open Crd_spec
open Crd_detector
open Crd_fasttrack

type config = {
  rd2 : [ `Off | `Constant | `Linear ];
  direct : bool;
  fasttrack : bool;
  djit : bool;
  atomicity : bool;  (** the access-point atomicity checker *)
}

val default_config : config
(** RD2 in constant mode and FastTrack on; direct and DJIT+ off. *)

type t

val create :
  ?config:config -> spec_for:(Obj_id.t -> Spec.t option) -> unit -> (t, string) result
(** [spec_for] assigns a commutativity specification to each monitored
    object (objects mapping to [None] are ignored by the commutativity
    detectors). Each distinct specification is translated to its access
    point representation once; translation failures (non-ECL
    specifications) surface here unless RD2 is [`Off]. *)

val with_stdspecs : ?config:config -> unit -> t
(** An analyzer that resolves specifications by monitored-object naming
    convention: an object named [<spec>:<anything>] or exactly [<spec>]
    uses the built-in specification [<spec>] (e.g. ["dictionary:chunks"]).
    @raise Invalid_argument if the built-in specifications fail to
    translate (they do not). *)

val step : t -> Event.t -> unit
val sink : t -> Event.t -> unit
(** Same as {!step}; shaped for [Sched.run ~sink]. *)

val run_trace : t -> Trace.t -> unit
val events : t -> int
(** Events processed. *)

val publish_stats : t -> unit
(** Fold this analyzer's RD2 counters into the process-wide
    {!Crd_obs.default} registry ([rd2_actions_total],
    [rd2_same_epoch_total], [rd2_promotions_total], [rd2_races_total],
    ...). Call once when the session is over; further calls are
    no-ops, so totals are never double counted. Events are counted
    into [analyzer_events_total] live by {!step} regardless. *)

val rd2_races : t -> Report.t list
val rd2_stats : t -> Rd2.stats option
val direct_races : t -> Report.t list
val direct_stats : t -> Direct.stats option
val fasttrack_races : t -> Rw_report.t list
val fasttrack_stats : t -> Fasttrack.stats option
val djit_races : t -> Rw_report.t list
val atomicity_violations : t -> Crd_atomicity.Atomicity.violation list

val pp_summary : t Fmt.t
(** A Table 2-style one-analyzer summary: races total (distinct). *)
