(** Sharded parallel offline trace analysis.

    Every attached detector keys its state per object ({!Crd_detector.Rd2},
    {!Crd_detector.Direct}) or per memory location ({!Crd_fasttrack.Fasttrack},
    {!Crd_fasttrack.Djit}), so a recorded trace decomposes: a sequential
    happens-before pass assigns every [Call]/[Read]/[Write] event its
    clock snapshot and routes it by object-shard (calls hash on the
    object identity, reads and writes on the location) into per-shard
    batches of {!chunk_events} events, which independent detector
    instances — one per shard, fanned out over OCaml 5 domains — drain
    concurrently with the producing pass. Each shard owns a
    {!Crd_vclock.Vclock.Pool} arena, so the steady-state hot loop
    allocates no vector clocks.

    The merge is deterministic: each event lives in exactly one shard, so
    sorting the per-shard reports by trace index reproduces the sequential
    report list {e bit-identically} (within one event the emission order
    is preserved by the stable sort), and summed counters equal the
    sequential ones — see DESIGN.md, "Shard-merge determinism".

    Traces below {!default_parallel_threshold} events fall back to the
    inline sequential path — domain spawn and handoff overhead would
    dominate — unless [force] is set.

    The atomicity checker builds one cross-object transactional graph and
    does not decompose; when enabled it runs sequentially during the
    happens-before pass. *)

open Crd_base
open Crd_spec
open Crd_trace
open Crd_detector
open Crd_fasttrack

type result = {
  events : int;  (** events in the trace *)
  shards : int;  (** shards actually used *)
  fell_back : bool;
      (** parallel analysis was requested but the trace was below the
          event threshold, so the inline sequential path ran instead *)
  rd2_reports : Report.t list;
  rd2_stats : Rd2.stats option;
  direct_reports : Report.t list;
  direct_stats : Direct.stats option;
  fasttrack_reports : Rw_report.t list;
  fasttrack_stats : Fasttrack.stats option;
  djit_reports : Rw_report.t list;
  atomicity_violations : Crd_atomicity.Atomicity.violation list;
}

val default_parallel_threshold : int
(** Minimum trace length (events) for which parallel analysis is worth
    the domain-spawn and chunk-handoff overhead; below it, [analyze]
    with [jobs > 1] falls back to the sequential path (100_000). *)

val chunk_events : int
(** Events per handoff chunk (8192): per-shard struct-of-arrays batches
    are filled by the sequential pass and drained whole by workers, so
    the per-event handoff cost is three array stores. *)

val analyze :
  ?jobs:int ->
  ?force:bool ->
  ?threshold:int ->
  ?config:Analyzer.config ->
  spec_for:(Obj_id.t -> Spec.t option) ->
  Trace.t ->
  (result, string) Stdlib.result
(** [analyze ~jobs ~config ~spec_for trace] partitions the trace into
    [jobs] shards (default 1) and analyzes them in parallel, streaming
    chunks to worker domains while the sequential happens-before pass is
    still running. [spec_for] and all specification translations are
    resolved in the sequential pass, so the closure is never called
    concurrently; translation failures surface as [Error]. With an
    effective shard count of 1 no domain is spawned.

    Traces shorter than [threshold] (default
    {!default_parallel_threshold}) run sequentially even when [jobs > 1]
    — reported via [fell_back] — unless [force] is [true]. *)

val analyze_stdspecs :
  ?jobs:int ->
  ?force:bool ->
  ?threshold:int ->
  ?config:Analyzer.config ->
  Trace.t ->
  (result, string) Stdlib.result
(** Like {!analyze} with the built-in specification naming convention of
    {!Analyzer.with_stdspecs}. *)

val pp_summary : result Fmt.t
(** Analyzer-style summary, plus the shard count and same-epoch rate. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count], capped to 8 — a sensible [--jobs]
    default for offline analysis. *)
