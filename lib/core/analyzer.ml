open Crd_base
open Crd_trace
open Crd_spec
open Crd_apoint
open Crd_detector
open Crd_fasttrack

type config = {
  rd2 : [ `Off | `Constant | `Linear ];
  direct : bool;
  fasttrack : bool;
  djit : bool;
  atomicity : bool;
}

let default_config =
  {
    rd2 = `Constant;
    direct = false;
    fasttrack = true;
    djit = false;
    atomicity = false;
  }

type t = {
  hb : Hb.t;
  rd2 : Rd2.t option;
  direct : Direct.t option;
  fasttrack : Fasttrack.t option;
  djit : Djit.t option;
  atomicity : Crd_atomicity.Atomicity.t option;
  pool : Crd_vclock.Vclock.Pool.t;
  mutable events : int;
  mutable published : bool;
}

let create ?(config = default_config) ~spec_for () =
  (* Memoize one representation per specification (keyed by name). *)
  let reprs : (string, Repr.t) Hashtbl.t = Hashtbl.create 8 in
  let failure = ref None in
  let repr_for o =
    match spec_for o with
    | None -> None
    | Some spec -> (
        match Hashtbl.find_opt reprs (Spec.name spec) with
        | Some r -> Some r
        | None -> (
            match Repr.of_spec spec with
            | Ok r ->
                Hashtbl.add reprs (Spec.name spec) r;
                Some r
            | Error e ->
                failure :=
                  Some (Printf.sprintf "spec %s: %s" (Spec.name spec) e);
                None))
  in
  (* Pre-translate nothing: specs are resolved per object on first use;
     but surface immediate failures for the common single-spec case by
     noticing them lazily in [step]. To keep the API simple we probe
     nothing here and report translation failures by exception. *)
  let pool = Metrics.create_pool () in
  let rd2 =
    match config.rd2 with
    | `Off -> None
    | (`Constant | `Linear) as mode ->
        Some
          (Rd2.create ~mode ~pool
             ~repr_for:(fun o ->
               let r = repr_for o in
               (match !failure with
               | Some msg -> invalid_arg ("Analyzer: " ^ msg)
               | None -> ());
               r)
             ())
  in
  let direct =
    if config.direct then Some (Direct.create ~spec_for ()) else None
  in
  let atomicity =
    if config.atomicity then
      Some (Crd_atomicity.Atomicity.create ~repr_for ())
    else None
  in
  Ok
    {
      hb = Hb.create ();
      rd2;
      direct;
      fasttrack =
        (if config.fasttrack then Some (Fasttrack.create ~pool ()) else None);
      djit = (if config.djit then Some (Djit.create ()) else None);
      atomicity;
      pool;
      events = 0;
      published = false;
    }

let with_stdspecs ?config () =
  let spec_for o =
    let name = Obj_id.name o in
    let base =
      match String.index_opt name ':' with
      | Some i -> String.sub name 0 i
      | None -> name
    in
    Crd_stdspecs.Stdspecs.find base
  in
  match create ?config ~spec_for () with
  | Ok t -> t
  | Error e -> invalid_arg ("Analyzer.with_stdspecs: " ^ e)

let step t (e : Event.t) =
  let index = t.events in
  t.events <- index + 1;
  Crd_obs.Counter.incr Metrics.events_total;
  let vc = Hb.step t.hb e in
  (match t.atomicity with
  | Some a -> ignore (Crd_atomicity.Atomicity.step a ~index e)
  | None -> ());
  match e.op with
  | Event.Call action ->
      (match t.rd2 with
      | Some d -> ignore (Rd2.on_action d ~index e.tid action vc)
      | None -> ());
      (match t.direct with
      | Some d -> ignore (Direct.on_action d ~index e.tid action vc)
      | None -> ())
  | Event.Read loc ->
      (match t.fasttrack with
      | Some d -> ignore (Fasttrack.on_read d ~index e.tid loc vc)
      | None -> ());
      (match t.djit with
      | Some d -> ignore (Djit.on_read d ~index e.tid loc vc)
      | None -> ())
  | Event.Write loc ->
      (match t.fasttrack with
      | Some d -> ignore (Fasttrack.on_write d ~index e.tid loc vc)
      | None -> ());
      (match t.djit with
      | Some d -> ignore (Djit.on_write d ~index e.tid loc vc)
      | None -> ())
  | Event.Fork _ | Event.Join _ | Event.Acquire _ | Event.Release _
  | Event.Begin | Event.End ->
      ()

let sink t e = step t e
let run_trace t trace = Trace.iter_events trace ~f:(step t)
let events t = t.events

let rd2_races t = match t.rd2 with Some d -> Rd2.races d | None -> []
let rd2_stats t = Option.map Rd2.stats t.rd2
let direct_races t = match t.direct with Some d -> Direct.races d | None -> []
let direct_stats t = Option.map Direct.stats t.direct

let fasttrack_races t =
  match t.fasttrack with Some d -> Fasttrack.races d | None -> []

let fasttrack_stats t = Option.map Fasttrack.stats t.fasttrack
let djit_races t = match t.djit with Some d -> Djit.races d | None -> []

let publish_stats t =
  if not t.published then begin
    t.published <- true;
    Metrics.publish_pool t.pool;
    match t.rd2 with
    | Some d -> Metrics.publish_rd2 (Rd2.stats d)
    | None -> ()
  end

let atomicity_violations t =
  match t.atomicity with
  | Some a -> Crd_atomicity.Atomicity.violations a
  | None -> []

let pp_summary ppf t =
  Fmt.pf ppf "@[<v>events: %d@," t.events;
  (match t.rd2 with
  | Some d ->
      let races = Rd2.races d in
      Fmt.pf ppf "rd2: %d races (%d distinct)@," (List.length races)
        (Report.distinct races)
  | None -> ());
  (match t.direct with
  | Some d ->
      let races = Direct.races d in
      Fmt.pf ppf "direct: %d races (%d distinct)@," (List.length races)
        (Report.distinct races)
  | None -> ());
  (match t.fasttrack with
  | Some d ->
      let races = Fasttrack.races d in
      Fmt.pf ppf "fasttrack: %d races (%d distinct locations)@,"
        (List.length races)
        (Rw_report.distinct_locations races)
  | None -> ());
  (match t.djit with
  | Some d ->
      let races = Djit.races d in
      Fmt.pf ppf "djit: %d races (%d distinct locations)@," (List.length races)
        (Rw_report.distinct_locations races)
  | None -> ());
  (match t.atomicity with
  | Some a ->
      Fmt.pf ppf "atomicity: %d violation(s)@,"
        (List.length (Crd_atomicity.Atomicity.violations a))
  | None -> ());
  Fmt.pf ppf "@]"
