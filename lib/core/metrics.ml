(* Process-wide analysis-pipeline metrics (internal to [crd]).

   Counter updates are one uncontended fetch_and_add; everything heavier
   (summaries, histograms) happens once per run, not per event, so the
   Table 2 overhead numbers stay honest. *)

let events_total =
  Crd_obs.counter ~help:"Events stepped through analyzers and shard passes"
    "analyzer_events_total"

let rd2_actions_total =
  Crd_obs.counter ~help:"Call actions processed by RD2" "rd2_actions_total"

let rd2_lookups_total =
  Crd_obs.counter ~help:"Phase-1 conflict-candidate inspections"
    "rd2_lookups_total"

let rd2_same_epoch_total =
  Crd_obs.counter ~help:"Actions short-circuited by the same-epoch cache"
    "rd2_same_epoch_total"

let rd2_promotions_total =
  Crd_obs.counter ~help:"Entries promoted from epoch to component clock"
    "rd2_promotions_total"

let rd2_deflations_total =
  Crd_obs.counter ~help:"Entries demoted back from component clock to epoch"
    "rd2_deflations_total"

let rd2_races_total =
  Crd_obs.counter ~help:"Commutativity races reported by RD2" "rd2_races_total"

let publish_rd2 (s : Crd_detector.Rd2.stats) =
  Crd_obs.Counter.add rd2_actions_total s.Crd_detector.Rd2.actions;
  Crd_obs.Counter.add rd2_lookups_total s.Crd_detector.Rd2.lookups;
  Crd_obs.Counter.add rd2_same_epoch_total s.Crd_detector.Rd2.same_epoch;
  Crd_obs.Counter.add rd2_promotions_total s.Crd_detector.Rd2.promotions;
  Crd_obs.Counter.add rd2_deflations_total s.Crd_detector.Rd2.deflations;
  Crd_obs.Counter.add rd2_races_total s.Crd_detector.Rd2.races

let shard_runs_total =
  Crd_obs.counter ~help:"Sharded offline analyses completed"
    "shard_runs_total"

let shard_wall_seconds =
  Crd_obs.histogram ~help:"Per-shard detector wall time" "shard_wall_seconds"

let shard_merge_seconds =
  Crd_obs.histogram ~help:"Deterministic report-merge wall time"
    "shard_merge_seconds"
