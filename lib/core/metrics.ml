(* Process-wide analysis-pipeline metrics (internal to [crd]).

   Counter updates are one uncontended fetch_and_add; everything heavier
   (summaries, histograms) happens once per run, not per event, so the
   Table 2 overhead numbers stay honest. *)

let events_total =
  Crd_obs.counter ~help:"Events stepped through analyzers and shard passes"
    "analyzer_events_total"

let rd2_actions_total =
  Crd_obs.counter ~help:"Call actions processed by RD2" "rd2_actions_total"

let rd2_lookups_total =
  Crd_obs.counter ~help:"Phase-1 conflict-candidate inspections"
    "rd2_lookups_total"

let rd2_same_epoch_total =
  Crd_obs.counter ~help:"Actions short-circuited by the same-epoch cache"
    "rd2_same_epoch_total"

let rd2_promotions_total =
  Crd_obs.counter ~help:"Entries promoted from epoch to component clock"
    "rd2_promotions_total"

let rd2_deflations_total =
  Crd_obs.counter ~help:"Entries demoted back from component clock to epoch"
    "rd2_deflations_total"

let rd2_races_total =
  Crd_obs.counter ~help:"Commutativity races reported by RD2" "rd2_races_total"

let publish_rd2 (s : Crd_detector.Rd2.stats) =
  Crd_obs.Counter.add rd2_actions_total s.Crd_detector.Rd2.actions;
  Crd_obs.Counter.add rd2_lookups_total s.Crd_detector.Rd2.lookups;
  Crd_obs.Counter.add rd2_same_epoch_total s.Crd_detector.Rd2.same_epoch;
  Crd_obs.Counter.add rd2_promotions_total s.Crd_detector.Rd2.promotions;
  Crd_obs.Counter.add rd2_deflations_total s.Crd_detector.Rd2.deflations;
  Crd_obs.Counter.add rd2_races_total s.Crd_detector.Rd2.races

let shard_runs_total =
  Crd_obs.counter ~help:"Sharded offline analyses completed"
    "shard_runs_total"

let shard_fallback_total =
  Crd_obs.counter
    ~help:"Parallel analyses that fell back to sequential below the \
           event threshold"
    "shard_fallback_total"

let shard_chunks_total =
  Crd_obs.counter ~help:"Event chunks handed to shard workers"
    "shard_chunks_total"

let shard_wall_seconds =
  Crd_obs.histogram ~help:"Per-shard detector wall time" "shard_wall_seconds"

let shard_merge_seconds =
  Crd_obs.histogram ~help:"Deterministic report-merge wall time"
    "shard_merge_seconds"

(* Vector-clock arena occupancy, published at the end of each detector
   run (per shard and per live analyzer). [in_use] is a high-water mark
   across shards of one run; [grown] counts acquisitions that outran the
   preallocated capacity — the "arena had to grow" signal. *)
let vc_pool_in_use =
  Crd_obs.gauge ~help:"Pooled vector clocks held by detector entries"
    "vc_pool_in_use"

let vc_pool_available =
  Crd_obs.gauge ~help:"Pooled vector clocks on the free list"
    "vc_pool_available"

let vc_pool_grown_total =
  Crd_obs.counter ~help:"Pool acquisitions that outran the preallocated arena"
    "vc_pool_grown_total"

let vc_pool_acquired_total =
  Crd_obs.counter ~help:"Total pool acquisitions (clock allocation pressure)"
    "vc_pool_acquired_total"

let default_pool_capacity = 1024

(* Approximate bytes per pooled clock (header + a small elems buffer) —
   the multiplier behind [mem_vcpool_bytes], the VC-arena leg of the
   server's overload memory accounting. Growth past the preallocated
   capacity is deliberately not charged: it is already surfaced by
   [vc_pool_grown_total], and under-charging there errs toward shedding
   later, never toward phantom memory. *)
let pool_clock_bytes = 160

let mem_vcpool_bytes =
  Crd_obs.gauge
    ~help:"Approximate bytes preallocated in live vector-clock arenas"
    "mem_vcpool_bytes"

(* Every detector pool must come from here and end in {!publish_pool}
   exactly once: the pair keeps the [mem_vcpool_bytes] charge/release
   symmetric (capacity is fixed at creation). *)
let create_pool () =
  Crd_obs.Gauge.add mem_vcpool_bytes (pool_clock_bytes * default_pool_capacity);
  Crd_vclock.Vclock.Pool.create ~capacity:default_pool_capacity ()

let publish_pool (p : Crd_vclock.Vclock.Pool.t) =
  Crd_obs.Gauge.set_max vc_pool_in_use (Crd_vclock.Vclock.Pool.in_use p);
  Crd_obs.Gauge.set_max vc_pool_available (Crd_vclock.Vclock.Pool.available p);
  Crd_obs.Counter.add vc_pool_grown_total (Crd_vclock.Vclock.Pool.grown p);
  Crd_obs.Counter.add vc_pool_acquired_total (Crd_vclock.Vclock.Pool.acquired p);
  Crd_obs.Gauge.add mem_vcpool_bytes
    (-pool_clock_bytes * Crd_vclock.Vclock.Pool.capacity p)
