(** [Crd_obs] — a small dependency-free observability layer.

    Three metric kinds live in a named {!Registry}:

    - {!Counter}: a monotonically increasing atomic integer;
    - {!Gauge}: an atomic integer that can move both ways (with a
      high-water helper for queue depths);
    - {!Histogram}: fixed upper-bound buckets plus count and sum,
      intended for durations in seconds.

    Metrics are cheap enough for hot paths (one [Atomic.fetch_and_add]
    per update, no allocation) and are always on; the cost of {e not}
    measuring a race detector is mismeasuring the paper's headline
    overhead claim. {!Registry.dump} renders a Prometheus-style text
    exposition, which [rd2 serve --metrics] serves over HTTP and
    [rd2 check --stats] prints after a run.

    {!Span} and {!time} measure wall-clock stage durations into a
    histogram. {!Log} is a leveled structured logger writing one
    [key=value] line per event to stderr; it is off by default. *)

module Counter : sig
  type t

  val incr : t -> unit
  val add : t -> int -> unit
  (** Negative increments are ignored: counters only go up. *)

  val get : t -> int
  val name : t -> string
end

module Gauge : sig
  type t

  val set : t -> int -> unit
  val add : t -> int -> unit
  val incr : t -> unit
  val decr : t -> unit

  val set_max : t -> int -> unit
  (** [set_max g v] raises the gauge to [v] if [v] is larger — a
      lock-free high-water mark. *)

  val get : t -> int
  val name : t -> string
end

module Histogram : sig
  type t

  val observe : t -> float -> unit
  (** Record one observation (typically a duration in seconds).
      Negative observations are clamped to 0. *)

  val count : t -> int
  val sum : t -> float
  (** Sum of observations, accumulated atomically in nanosecond units
      (exact for durations below ~292 years total). *)

  val name : t -> string
end

val default_buckets : float array
(** Upper bounds in seconds, 1 µs to 30 s. *)

module Registry : sig
  type t

  val create : unit -> t

  val counter : ?help:string -> t -> string -> Counter.t
  (** Find-or-create; registration is thread-safe and idempotent.
      @raise Invalid_argument if [name] is already a different metric
      kind. *)

  val gauge : ?help:string -> t -> string -> Gauge.t

  val histogram : ?help:string -> ?buckets:float array -> t -> string -> Histogram.t
  (** [buckets] must be strictly increasing (default
      {!default_buckets}); a final [+Inf] bucket is implicit.
      @raise Invalid_argument on unsorted buckets or a kind clash. *)

  val dump : t -> string
  (** Prometheus-style text exposition, metrics sorted by name:
      [# HELP]/[# TYPE] comments, plain samples for counters and
      gauges, [_bucket{le="..."}]/[_sum]/[_count] for histograms. *)
end

val default : Registry.t
(** The process-wide registry every [crd] subsystem registers into. *)

val counter : ?help:string -> string -> Counter.t
(** [counter name] is [Registry.counter default name]. *)

val gauge : ?help:string -> string -> Gauge.t
val histogram : ?help:string -> ?buckets:float array -> string -> Histogram.t

val dump : unit -> string
(** [Registry.dump default]. *)

val now_s : unit -> float
(** Wall-clock seconds made non-decreasing across the process: the
    stdlib exposes no monotonic clock, so [gettimeofday] is clamped to
    never step backwards. Good enough for stage timings; not for
    calendar time. *)

module Span : sig
  type t

  val start : Histogram.t -> t
  val finish : t -> unit
  (** Observe the elapsed seconds since {!start} into the histogram.
      Calling it again observes again. *)

  val elapsed_s : t -> float
end

val time : Histogram.t -> (unit -> 'a) -> 'a
(** [time h f] runs [f ()] and observes its duration, even on raise. *)

module Log : sig
  type level = Error | Warn | Info | Debug

  val set_level : level option -> unit
  (** [None] (the default) disables all logging. *)

  val level : unit -> level option
  val enabled : level -> bool

  val level_of_string : string -> (level option, string) result
  (** Accepts ["off"], ["error"], ["warn"], ["info"], ["debug"]. *)

  val msg : level -> string -> (string * string) list -> unit
  (** [msg lvl event kvs] writes one line to stderr when [lvl] is
      enabled: [ts=... level=... event=... k=v ...]. Values containing
      spaces, quotes or [=] are quoted. A single [output_string] call
      per line keeps concurrent writers from interleaving mid-line. *)

  val err : string -> (string * string) list -> unit
  val warn : string -> (string * string) list -> unit
  val info : string -> (string * string) list -> unit
  val debug : string -> (string * string) list -> unit
end
