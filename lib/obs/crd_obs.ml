(* Plain stdlib + unix: Atomic counters so hot paths never take a lock,
   a mutex only around registry name lookup (cold path). *)

module Counter = struct
  type t = { name : string; help : string; v : int Atomic.t }

  let make ~name ~help = { name; help; v = Atomic.make 0 }
  let incr t = ignore (Atomic.fetch_and_add t.v 1)
  let add t n = if n > 0 then ignore (Atomic.fetch_and_add t.v n)
  let get t = Atomic.get t.v
  let name t = t.name
end

module Gauge = struct
  type t = { name : string; help : string; v : int Atomic.t }

  let make ~name ~help = { name; help; v = Atomic.make 0 }
  let set t n = Atomic.set t.v n
  let add t n = ignore (Atomic.fetch_and_add t.v n)
  let incr t = add t 1
  let decr t = add t (-1)

  let rec set_max t n =
    let cur = Atomic.get t.v in
    if n > cur && not (Atomic.compare_and_set t.v cur n) then set_max t n

  let get t = Atomic.get t.v
  let name t = t.name
end

let default_buckets =
  [| 1e-6; 1e-5; 1e-4; 1e-3; 5e-3; 2.5e-2; 0.1; 0.5; 1.; 5.; 30. |]

module Histogram = struct
  (* The sum accumulates in integer nanounits so that concurrent
     observers need only fetch_and_add; exact to 1e-9 which is far
     below timer resolution anyway. *)
  type t = {
    name : string;
    help : string;
    bounds : float array;  (* strictly increasing upper bounds *)
    counts : int Atomic.t array;  (* length bounds + 1; last is +Inf *)
    total : int Atomic.t;
    sum_nano : int Atomic.t;
  }

  let make ~name ~help ~buckets =
    Array.iteri
      (fun i b ->
        if i > 0 && b <= buckets.(i - 1) then
          invalid_arg ("Crd_obs.Histogram: buckets not increasing: " ^ name))
      buckets;
    {
      name;
      help;
      bounds = Array.copy buckets;
      counts = Array.init (Array.length buckets + 1) (fun _ -> Atomic.make 0);
      total = Atomic.make 0;
      sum_nano = Atomic.make 0;
    }

  let observe t v =
    let v = if v < 0. then 0. else v in
    let n = Array.length t.bounds in
    let i = ref 0 in
    while !i < n && v > t.bounds.(!i) do
      incr i
    done;
    ignore (Atomic.fetch_and_add t.counts.(!i) 1);
    ignore (Atomic.fetch_and_add t.total 1);
    ignore (Atomic.fetch_and_add t.sum_nano (int_of_float (v *. 1e9)))

  let count t = Atomic.get t.total
  let sum t = float_of_int (Atomic.get t.sum_nano) *. 1e-9
  let name t = t.name
end

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

type metric =
  | C of Counter.t
  | G of Gauge.t
  | H of Histogram.t

module Registry = struct
  type t = { mu : Mutex.t; tbl : (string, metric) Hashtbl.t }

  let create () = { mu = Mutex.create (); tbl = Hashtbl.create 64 }

  let locked t f =
    Mutex.lock t.mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

  let register t name found create =
    locked t (fun () ->
        match Hashtbl.find_opt t.tbl name with
        | Some m -> (
            match found m with
            | Some v -> v
            | None ->
                invalid_arg
                  ("Crd_obs.Registry: " ^ name
                 ^ " is already registered as a different metric kind"))
        | None ->
            let v, m = create () in
            Hashtbl.add t.tbl name m;
            v)

  let counter ?(help = "") t name =
    register t name
      (function C c -> Some c | _ -> None)
      (fun () ->
        let c = Counter.make ~name ~help in
        (c, C c))

  let gauge ?(help = "") t name =
    register t name
      (function G g -> Some g | _ -> None)
      (fun () ->
        let g = Gauge.make ~name ~help in
        (g, G g))

  let histogram ?(help = "") ?(buckets = default_buckets) t name =
    register t name
      (function H h -> Some h | _ -> None)
      (fun () ->
        let h = Histogram.make ~name ~help ~buckets in
        (h, H h))

  (* Prometheus text exposition. Buckets are cumulative; the float
     format keeps small durations readable without scientific noise. *)
  let dump t =
    let metrics =
      locked t (fun () -> Hashtbl.fold (fun _ m acc -> m :: acc) t.tbl [])
    in
    let mname = function
      | C c -> c.Counter.name
      | G g -> g.Gauge.name
      | H h -> h.Histogram.name
    in
    let metrics =
      List.sort (fun a b -> String.compare (mname a) (mname b)) metrics
    in
    let b = Buffer.create 1024 in
    let header name help kind =
      if help <> "" then Buffer.add_string b ("# HELP " ^ name ^ " " ^ help ^ "\n");
      Buffer.add_string b ("# TYPE " ^ name ^ " " ^ kind ^ "\n")
    in
    let fnum v =
      if Float.is_integer v && Float.abs v < 1e15 then
        Printf.sprintf "%.0f" v
      else Printf.sprintf "%.9g" v
    in
    List.iter
      (fun m ->
        match m with
        | C c ->
            header c.Counter.name c.Counter.help "counter";
            Buffer.add_string b
              (Printf.sprintf "%s %d\n" c.Counter.name (Counter.get c))
        | G g ->
            header g.Gauge.name g.Gauge.help "gauge";
            Buffer.add_string b
              (Printf.sprintf "%s %d\n" g.Gauge.name (Gauge.get g))
        | H h ->
            header h.Histogram.name h.Histogram.help "histogram";
            let cumulative = ref 0 in
            Array.iteri
              (fun i bound ->
                cumulative :=
                  !cumulative + Atomic.get h.Histogram.counts.(i);
                Buffer.add_string b
                  (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" h.Histogram.name
                     (fnum bound) !cumulative))
              h.Histogram.bounds;
            Buffer.add_string b
              (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" h.Histogram.name
                 (Histogram.count h));
            Buffer.add_string b
              (Printf.sprintf "%s_sum %.9f\n" h.Histogram.name (Histogram.sum h));
            Buffer.add_string b
              (Printf.sprintf "%s_count %d\n" h.Histogram.name
                 (Histogram.count h)))
      metrics;
    Buffer.contents b
end

let default = Registry.create ()
let counter ?help name = Registry.counter ?help default name
let gauge ?help name = Registry.gauge ?help default name
let histogram ?help ?buckets name = Registry.histogram ?help ?buckets default name
let dump () = Registry.dump default

(* ------------------------------------------------------------------ *)
(* Timers                                                              *)
(* ------------------------------------------------------------------ *)

(* gettimeofday clamped to never step backwards: the stdlib has no
   monotonic clock and this layer takes no C stubs. *)
let last_now = Atomic.make 0.

let rec now_s () =
  let t = Unix.gettimeofday () in
  let prev = Atomic.get last_now in
  if t >= prev then if Atomic.compare_and_set last_now prev t then t else now_s ()
  else prev

module Span = struct
  type t = { h : Histogram.t; t0 : float }

  let start h = { h; t0 = now_s () }
  let elapsed_s s = now_s () -. s.t0
  let finish s = Histogram.observe s.h (elapsed_s s)
end

let time h f =
  let s = Span.start h in
  Fun.protect ~finally:(fun () -> Span.finish s) f

(* ------------------------------------------------------------------ *)
(* Logging                                                             *)
(* ------------------------------------------------------------------ *)

module Log = struct
  type level = Error | Warn | Info | Debug

  let severity = function Error -> 3 | Warn -> 2 | Info -> 1 | Debug -> 0
  let level_name = function
    | Error -> "error"
    | Warn -> "warn"
    | Info -> "info"
    | Debug -> "debug"

  let current : level option Atomic.t = Atomic.make None
  let set_level l = Atomic.set current l
  let level () = Atomic.get current

  let enabled l =
    match Atomic.get current with
    | None -> false
    | Some min -> severity l >= severity min

  let level_of_string = function
    | "off" | "none" -> Ok None
    | "error" -> Ok (Some Error)
    | "warn" | "warning" -> Ok (Some Warn)
    | "info" -> Ok (Some Info)
    | "debug" -> Ok (Some Debug)
    | s -> Error (Printf.sprintf "unknown log level %S" s)

  let needs_quoting v =
    v = ""
    || String.exists
         (fun c -> c = ' ' || c = '"' || c = '=' || c = '\n' || c = '\t')
         v

  let add_kv b (k, v) =
    Buffer.add_char b ' ';
    Buffer.add_string b k;
    Buffer.add_char b '=';
    if needs_quoting v then Buffer.add_string b (Printf.sprintf "%S" v)
    else Buffer.add_string b v

  let msg lvl event kvs =
    if enabled lvl then begin
      let b = Buffer.create 128 in
      Buffer.add_string b (Printf.sprintf "ts=%.6f" (Unix.gettimeofday ()));
      add_kv b ("level", level_name lvl);
      add_kv b ("event", event);
      List.iter (add_kv b) kvs;
      Buffer.add_char b '\n';
      (* One write call: concurrent loggers never interleave mid-line. *)
      output_string stderr (Buffer.contents b);
      flush stderr
    end

  let err event kvs = msg Error event kvs
  let warn event kvs = msg Warn event kvs
  let info event kvs = msg Info event kvs
  let debug event kvs = msg Debug event kvs
end
