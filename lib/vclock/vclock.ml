open Crd_base

(* Invariant: data.(i) = 0 for all i >= hi, so [hi] is an upper bound on
   the length of the nonzero prefix. Zero-writes below [hi] leave the
   bound slack; [to_list]/[nonzero_length] re-tighten it lazily. *)
type t = { mutable data : int array; mutable hi : int }

let bot () = { data = [||]; hi = 0 }

let of_list l =
  let data = Array.of_list l in
  { data; hi = Array.length data }

let nonzero_length t =
  let n = ref t.hi in
  while !n > 0 && t.data.(!n - 1) = 0 do
    decr n
  done;
  t.hi <- !n;
  !n

let to_list t =
  let n = nonzero_length t in
  Array.to_list (Array.sub t.data 0 n)

let copy t = { data = Array.sub t.data 0 t.hi; hi = t.hi }

let get t tid =
  let i = Tid.to_int tid in
  if i < Array.length t.data then t.data.(i) else 0

let ensure t n =
  let len = Array.length t.data in
  if n > len then begin
    let cap = max n (max 4 (2 * len)) in
    let data = Array.make cap 0 in
    Array.blit t.data 0 data 0 len;
    t.data <- data
  end

let set t tid v =
  let i = Tid.to_int tid in
  ensure t (i + 1);
  t.data.(i) <- v;
  if v <> 0 && i >= t.hi then t.hi <- i + 1

let incr t tid = set t tid (get t tid + 1)

let join_into ~into c =
  ensure into c.hi;
  for i = 0 to c.hi - 1 do
    if c.data.(i) > into.data.(i) then into.data.(i) <- c.data.(i)
  done;
  if c.hi > into.hi then into.hi <- c.hi

let join a b =
  let r = copy a in
  join_into ~into:r b;
  r

let leq a b =
  let lb = Array.length b.data in
  let ok = ref true in
  let i = ref 0 in
  while !ok && !i < a.hi do
    let bv = if !i < lb then b.data.(!i) else 0 in
    if a.data.(!i) > bv then ok := false;
    Stdlib.incr i
  done;
  !ok

let equal a b = leq a b && leq b a
let concurrent a b = (not (leq a b)) && not (leq b a)

let pp ppf t =
  Fmt.pf ppf "<%a>" Fmt.(list ~sep:(any ",") int) (to_list t)

module Epoch = struct
  type t = { tid : Tid.t; clock : int }

  let make tid clock = { tid; clock }
  let none = { tid = Tid.main; clock = 0 }
  let tid e = e.tid
  let clock e = e.clock
  let equal a b = Tid.equal a.tid b.tid && a.clock = b.clock
  let leq e c = e.clock <= get c e.tid
  let of_vclock c tid = { tid; clock = get c tid }
  let pp ppf e = Fmt.pf ppf "%d@@%a" e.clock Tid.pp e.tid
end
