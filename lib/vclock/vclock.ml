open Crd_base

(* Invariant: data.(i) = 0 for all i >= hi, so [hi] is an upper bound on
   the length of the nonzero prefix. Zero-writes below [hi] leave the
   bound slack; [to_list]/[nonzero_length] re-tighten it lazily. *)
type t = { mutable data : int array; mutable hi : int }

let bot () = { data = [||]; hi = 0 }

let of_list l =
  let data = Array.of_list l in
  { data; hi = Array.length data }

let nonzero_length t =
  let n = ref t.hi in
  while !n > 0 && t.data.(!n - 1) = 0 do
    decr n
  done;
  t.hi <- !n;
  !n

let to_list t =
  let n = nonzero_length t in
  Array.to_list (Array.sub t.data 0 n)

let copy t = { data = Array.sub t.data 0 t.hi; hi = t.hi }

let reset t =
  for i = 0 to t.hi - 1 do
    Array.unsafe_set t.data i 0
  done;
  t.hi <- 0

let copy_into ~into src =
  let n = src.hi in
  if Array.length into.data < n then
    (* Too small: allocate once at the source's size (geometric so a
       pooled clock stops reallocating after a few cycles). *)
    into.data <- Array.make (max n (max 4 (2 * Array.length into.data))) 0
  else
    (* Reuse the buffer: clear the stale suffix the blit won't cover. *)
    for i = n to into.hi - 1 do
      Array.unsafe_set into.data i 0
    done;
  Array.blit src.data 0 into.data 0 n;
  into.hi <- n

let get t tid =
  let i = Tid.to_int tid in
  if i < Array.length t.data then t.data.(i) else 0

let ensure t n =
  let len = Array.length t.data in
  if n > len then begin
    let cap = max n (max 4 (2 * len)) in
    let data = Array.make cap 0 in
    Array.blit t.data 0 data 0 len;
    t.data <- data
  end

let set t tid v =
  let i = Tid.to_int tid in
  ensure t (i + 1);
  t.data.(i) <- v;
  if v <> 0 && i >= t.hi then t.hi <- i + 1

let incr t tid = set t tid (get t tid + 1)

let join_into ~into c =
  ensure into c.hi;
  let cd = c.data and id = into.data in
  (* The unsafe loop below relies on exactly this bound. *)
  assert (c.hi <= Array.length cd && c.hi <= Array.length id);
  for i = 0 to c.hi - 1 do
    let cv = Array.unsafe_get cd i in
    if cv > Array.unsafe_get id i then Array.unsafe_set id i cv
  done;
  if c.hi > into.hi then into.hi <- c.hi

let join a b =
  let r = copy a in
  join_into ~into:r b;
  r

let leq a b =
  let ad = a.data and bd = b.data in
  let common = min a.hi (Array.length bd) in
  assert (common <= Array.length ad);
  let ok = ref true in
  let i = ref 0 in
  while !ok && !i < common do
    if Array.unsafe_get ad !i > Array.unsafe_get bd !i then ok := false;
    Stdlib.incr i
  done;
  (* Entries of [a] past [b]'s capacity compare against an implicit 0. *)
  while !ok && !i < a.hi do
    if Array.unsafe_get ad !i > 0 then ok := false;
    Stdlib.incr i
  done;
  !ok

let equal a b = leq a b && leq b a
let concurrent a b = (not (leq a b)) && not (leq b a)

let pp ppf t =
  Fmt.pf ppf "<%a>" Fmt.(list ~sep:(any ",") int) (to_list t)

module Epoch = struct
  type t = { tid : Tid.t; clock : int }

  let make tid clock = { tid; clock }
  let none = { tid = Tid.main; clock = 0 }
  let tid e = e.tid
  let clock e = e.clock
  let equal a b = Tid.equal a.tid b.tid && a.clock = b.clock
  let leq e c = e.clock <= get c e.tid
  let of_vclock c tid = { tid; clock = get c tid }
  let pp ppf e = Fmt.pf ppf "%d@@%a" e.clock Tid.pp e.tid
end

module Pool = struct
  type vclock = t

  (* A single-owner free-list arena. Not thread-safe by design: each
     detector instance (one per shard domain) owns its own pool, so
     acquire/release never cross domains. *)
  type t = {
    mutable free : vclock array;
    mutable free_n : int;
    mutable in_use : int;
    mutable grown : int;
    mutable acquired : int;
    capacity : int;
  }

  let create ?(capacity = 256) () =
    let capacity = max 0 capacity in
    {
      free = Array.init capacity (fun _ -> bot ());
      free_n = capacity;
      in_use = 0;
      grown = 0;
      acquired = 0;
      capacity;
    }

  let acquire t =
    t.acquired <- t.acquired + 1;
    t.in_use <- t.in_use + 1;
    if t.free_n > 0 then begin
      t.free_n <- t.free_n - 1;
      t.free.(t.free_n)
    end
    else begin
      (* Exhausted: grow by allocating, exactly as the unpooled path
         would. The [grown] counter makes arena growth observable. *)
      t.grown <- t.grown + 1;
      bot ()
    end

  let release t c =
    reset c;
    let cap = Array.length t.free in
    if t.free_n = cap then begin
      let free = Array.make (max 8 (2 * cap)) c in
      Array.blit t.free 0 free 0 cap;
      t.free <- free
    end;
    t.free.(t.free_n) <- c;
    t.free_n <- t.free_n + 1;
    t.in_use <- t.in_use - 1

  let in_use t = t.in_use
  let available t = t.free_n
  let grown t = t.grown
  let acquired t = t.acquired
  let capacity t = t.capacity
end
