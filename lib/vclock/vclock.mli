(** Vector clocks (Section 3.2).

    A vector clock is a map [Tid.t -> nat], here backed by a growable
    integer array with an implicit zero tail, ordered pointwise. The set of
    clocks forms a lattice with bottom [bot], join [join], and the pointwise
    order [leq]; [incr] performs the [inc_tau] timestep of the paper.

    Clocks are mutable for performance (the detectors join millions of
    clocks); use [copy] when a snapshot must survive later mutation. *)

open Crd_base

type t

val bot : unit -> t
(** The clock [tau |-> 0]. *)

val of_list : int list -> t
(** [of_list [c0; c1; ...]] maps thread [i] to [ci] and all others to 0. *)

val to_list : t -> int list
(** Entries up to the last nonzero one. The clock tracks an upper bound
    on its nonzero length, so this costs O(nonzero length), not O(array
    capacity), per call. *)

val copy : t -> t

val copy_into : into:t -> t -> unit
(** [copy_into ~into src] sets [into] to the value of [src], reusing
    [into]'s buffer when its capacity suffices — the allocation-free
    counterpart of [copy] for clocks whose lifetime the caller owns. *)

val reset : t -> unit
(** [reset c] sets [c] back to bottom without releasing its buffer. *)

val get : t -> Tid.t -> int
val set : t -> Tid.t -> int -> unit

val incr : t -> Tid.t -> unit
(** [incr c tau] is the paper's [inc_tau]: bump [tau]'s component. *)

val join_into : into:t -> t -> unit
(** [join_into ~into c] sets [into <- into join c] (pointwise max). *)

val join : t -> t -> t
(** Functional join; allocates. *)

val leq : t -> t -> bool
(** Pointwise order: [leq a b] iff [a(tau) <= b(tau)] for all [tau]. *)

val equal : t -> t -> bool

val concurrent : t -> t -> bool
(** [concurrent a b] iff neither [leq a b] nor [leq b a] — the events may
    happen in parallel ([a || b] in the paper). *)

val pp : t Fmt.t

module Epoch : sig
  (** FastTrack epochs [c@tau]: the scalar clock [c] of a single thread
      [tau], a compact stand-in for a full vector clock when the last
      access is totally ordered. *)

  type vclock := t
  type t

  val make : Tid.t -> int -> t
  val none : t
  (** The minimal epoch [0@T0]; [leq none c] for every clock [c]. *)

  val tid : t -> Tid.t
  val clock : t -> int
  val equal : t -> t -> bool

  val leq : t -> vclock -> bool
  (** [leq e c] iff [clock e <= c (tid e)] — the FastTrack [e <= c] test. *)

  val of_vclock : vclock -> Tid.t -> t
  (** [of_vclock c tau] is [c(tau)@tau]. *)

  val pp : t Fmt.t
end

module Pool : sig
  (** A preallocated vector-clock arena: detectors that inflate entries
      to component clocks ({!Crd_detector.Rd2} promotions,
      {!Crd_fasttrack.Fasttrack} read shares) acquire from the pool and
      release on deflation, so the steady-state hot loop allocates no
      clock storage. When the pool runs dry it grows by allocating —
      behaviourally identical to the unpooled path — and counts the
      growth in {!grown}.

      A pool is single-owner and NOT thread-safe: every detector
      instance (one per shard domain) must own its own pool. *)

  type vclock := t
  type t

  val create : ?capacity:int -> unit -> t
  (** [create ~capacity ()] preallocates [capacity] bottom clocks
      (default 256). *)

  val acquire : t -> vclock
  (** A bottom clock, reused from the free list when possible. *)

  val release : t -> vclock -> unit
  (** Return a clock to the pool. The caller must not retain any alias:
      the clock is {!reset} and will be handed out again. *)

  val in_use : t -> int
  (** Clocks acquired and not yet released. *)

  val available : t -> int
  (** Clocks currently on the free list. *)

  val grown : t -> int
  (** Allocations forced by an empty free list (arena growth). *)

  val acquired : t -> int
  (** Total acquires — per-event allocation pressure made observable. *)

  val capacity : t -> int
  (** The preallocated size passed to {!create}. *)
end
