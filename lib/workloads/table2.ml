open Crd

type h2_row = {
  bench : string;
  queries : int;
  uninstrumented_qps : float;
  fasttrack_qps : float;
  rd2_qps : float;
  ft_total : int;
  ft_distinct : int;
  rd2_total : int;
  rd2_distinct : int;
}

type cassandra_row = {
  uninstrumented_s : float;
  fasttrack_s : float;
  rd2_s : float;
  c_ft_total : int;
  c_ft_distinct : int;
  c_rd2_total : int;
  c_rd2_distinct : int;
}

type t = { h2 : h2_row list; cassandra : cassandra_row }

type mode = Uninstrumented | Ft | Rd2_mode

(* Like the paper's RD2 configuration: RoadRunner still instruments all
   reads and writes, plus the monitored maps — so RD2 mode keeps
   FastTrack on. *)
let config_of_mode = function
  | Uninstrumented -> None
  | Ft ->
      Some
        { Analyzer.rd2 = `Off; direct = false; fasttrack = true; djit = false; atomicity = false }
  | Rd2_mode ->
      Some
        {
          Analyzer.rd2 = `Constant;
          direct = false;
          fasttrack = true;
          djit = false;
          atomicity = false;
        }

let analyzer_of_mode mode =
  Option.map
    (fun config -> Analyzer.with_stdspecs ~config ())
    (config_of_mode mode)

(* Race reports of one timed run, however it was analyzed. *)
type run_races = { ft_races : Rw_report.t list; rd2_races : Report.t list }

let no_races = { ft_races = []; rd2_races = [] }

let races_of_analyzer = function
  | None -> no_races
  | Some an ->
      {
        ft_races = Analyzer.fasttrack_races an;
        rd2_races = Analyzer.rd2_races an;
      }

(* Each repetition gets a fresh analyzer (race counts must not accumulate
   across repetitions); the wall time kept is the best of N and the
   races returned are the last repetition's. *)
let timed_live ~repeats mode f =
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to max 1 repeats do
    let an = analyzer_of_mode mode in
    let sink = match an with None -> fun _ -> () | Some a -> Analyzer.sink a in
    let t0 = Unix.gettimeofday () in
    let r = f sink in
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt;
    result := Some (r, races_of_analyzer an)
  done;
  let r, races = Option.get !result in
  (r, races, !best)

(* Offline sharded variant: each repetition records the trace and then
   analyzes it with [jobs] domains; the timed region covers both (the
   paper's qps include execution and analysis). *)
let timed_offline ~repeats ~jobs mode f =
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to max 1 repeats do
    let t0 = Unix.gettimeofday () in
    let trace = Trace.create () in
    let r = f (Trace.append trace) in
    let races =
      match config_of_mode mode with
      | None -> no_races
      | Some config -> (
          match Shard.analyze_stdspecs ~jobs ~config trace with
          | Ok res ->
              {
                ft_races = res.Shard.fasttrack_reports;
                rd2_races = res.Shard.rd2_reports;
              }
          | Error e -> invalid_arg ("Table2: " ^ e))
    in
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt;
    result := Some (r, races)
  done;
  let r, races = Option.get !result in
  (r, races, !best)

let timed ~repeats ~jobs mode f =
  if jobs <= 1 then timed_live ~repeats mode f
  else timed_offline ~repeats ~jobs mode f

let collect ?(seed = 1L) ?(scale = 1) ?(repeats = 1) ?(jobs = 1) () =
  let h2 =
    List.map
      (fun circuit ->
        let run mode =
          let queries, races, seconds =
            timed ~repeats ~jobs mode (fun sink ->
                Polepos.run circuit ~seed ~scale ~sink ())
          in
          (queries, seconds, races)
        in
        let q0, t0, _ = run Uninstrumented in
        let _, t1, r1 = run Ft in
        let _, t2, r2 = run Rd2_mode in
        let ft_races = r1.ft_races in
        let rd2_races = r2.rd2_races in
        {
          bench = Polepos.name circuit;
          queries = q0;
          uninstrumented_qps = float_of_int q0 /. t0;
          fasttrack_qps = float_of_int q0 /. t1;
          rd2_qps = float_of_int q0 /. t2;
          ft_total = List.length ft_races;
          ft_distinct = Rw_report.distinct_locations ft_races;
          rd2_total = List.length rd2_races;
          rd2_distinct = Report.distinct rd2_races;
        })
      Polepos.all
  in
  let cassandra =
    (* The snitch test is a fixed amount of work timed in seconds (like
       the paper's 2.9s-13.5s row); scale it up so the wall clock
       registers. Race counts reported for this row come from the scaled
       run and grow with it. *)
    let factor = 24 * scale in
    let config =
      {
        Snitch.default_config with
        Snitch.samples_per_host =
          Snitch.default_config.Snitch.samples_per_host * factor;
        recalculations = Snitch.default_config.Snitch.recalculations * factor;
      }
    in
    let run mode =
      let _, _, seconds =
        timed ~repeats ~jobs mode (fun sink -> Snitch.run ~seed ~config ~sink ())
      in
      seconds
    in
    let t0 = run Uninstrumented in
    let t1 = run Ft in
    let t2 = run Rd2_mode in
    (* Race counts for this row come from the canonical (unscaled)
       configuration so they stay comparable across machines/scales. *)
    let races_of mode =
      let an = Option.get (analyzer_of_mode mode) in
      ignore (Snitch.run ~seed ~config:Snitch.default_config ~sink:(Analyzer.sink an) ());
      an
    in
    let ft_races = Analyzer.fasttrack_races (races_of Ft) in
    let rd2_races = Analyzer.rd2_races (races_of Rd2_mode) in
    {
      uninstrumented_s = t0;
      fasttrack_s = t1;
      rd2_s = t2;
      c_ft_total = List.length ft_races;
      c_ft_distinct = Rw_report.distinct_locations ft_races;
      c_rd2_total = List.length rd2_races;
      c_rd2_distinct = Report.distinct rd2_races;
    }
  in
  { h2; cassandra }

let print ppf t =
  Fmt.pf ppf
    "@[<v>Table 2 — Evaluation of FASTTRACK and RD2 (reproduction)@,@,";
  Fmt.pf ppf
    "%-28s %14s %14s %14s %18s %18s@," "Benchmark" "Uninstr." "FASTTRACK"
    "RD2" "FT races" "RD2 races";
  List.iter
    (fun r ->
      Fmt.pf ppf "%-28s %10.0f qps %10.0f qps %10.0f qps %12d (%d) %12d (%d)@,"
        r.bench r.uninstrumented_qps r.fasttrack_qps r.rd2_qps r.ft_total
        r.ft_distinct r.rd2_total r.rd2_distinct)
    t.h2;
  let c = t.cassandra in
  Fmt.pf ppf "%-28s %12.3f s %12.3f s %12.3f s %12d (%d) %12d (%d)@,"
    "DynamicEndpointSnitch" c.uninstrumented_s c.fasttrack_s c.rd2_s
    c.c_ft_total c.c_ft_distinct c.c_rd2_total c.c_rd2_distinct;
  Fmt.pf ppf "@]"

let rd2_race_counts ?(seed = 1L) ?(scale = 1) bench =
  let an =
    Analyzer.with_stdspecs
      ~config:
        { Analyzer.rd2 = `Constant; direct = false; fasttrack = false; djit = false; atomicity = false }
      ()
  in
  let sink = Analyzer.sink an in
  let run () =
    if String.equal bench "DynamicEndpointSnitch" then begin
      ignore (Snitch.run ~seed ~sink ());
      true
    end
    else
      match Polepos.of_name bench with
      | Some c ->
          ignore (Polepos.run c ~seed ~scale ~sink ());
          true
      | None -> false
  in
  if run () then
    let races = Analyzer.rd2_races an in
    Some (List.length races, Report.distinct races, Report.distinct_objects races)
  else None
