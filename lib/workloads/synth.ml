open Crd_base
open Crd_trace

type skew = Uniform | Zipf of float

type config = {
  threads : int;
  objects : int;
  events : int;
  skew : skew;
  mix : (string * int) list;
  sync_period : int;
  key_space : int;
}

let default_mix = [ ("dictionary", 6); ("set", 3); ("counter", 1) ]

let default ~events =
  {
    threads = 8;
    objects = 1024;
    events;
    skew = Zipf 0.9;
    mix = default_mix;
    sync_period = 64;
    key_space = 16;
  }

let skew_to_string = function
  | Uniform -> "uniform"
  | Zipf theta -> Printf.sprintf "zipf:%g" theta

let skew_of_string s =
  match String.lowercase_ascii s with
  | "uniform" -> Ok Uniform
  | "zipf" -> Ok (Zipf 0.9)
  | s when String.length s > 5 && String.sub s 0 5 = "zipf:" -> (
      match float_of_string_opt (String.sub s 5 (String.length s - 5)) with
      | Some theta when theta > 0. -> Ok (Zipf theta)
      | _ -> Error (Printf.sprintf "invalid zipf exponent in %S" s))
  | _ -> Error (Printf.sprintf "unknown skew %S (uniform | zipf:THETA)" s)

let known_specs =
  [ "dictionary"; "set"; "counter"; "register"; "fifo"; "bag" ]

let mix_of_string s =
  let parse_one part =
    match String.split_on_char '=' (String.trim part) with
    | [ name; w ] -> (
        let name = String.trim name in
        if not (List.mem name known_specs) then
          Error (Printf.sprintf "unknown spec %S in mix" name)
        else
          match int_of_string_opt (String.trim w) with
          | Some w when w > 0 -> Ok (name, w)
          | _ -> Error (Printf.sprintf "invalid weight in %S" part))
    | _ -> Error (Printf.sprintf "expected NAME=WEIGHT, got %S" part)
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | p :: rest -> (
        match parse_one p with
        | Ok kv -> go (kv :: acc) rest
        | Error _ as e -> e)
  in
  match String.split_on_char ',' s with
  | [] | [ "" ] -> Error "empty mix"
  | parts -> go [] parts

let mix_to_string mix =
  String.concat ","
    (List.map (fun (n, w) -> Printf.sprintf "%s=%d" n w) mix)

let pp_config ppf c =
  Fmt.pf ppf
    "events=%d threads=%d objects=%d skew=%s mix=%s sync_period=%d \
     key_space=%d"
    c.events c.threads c.objects (skew_to_string c.skew)
    (mix_to_string c.mix) c.sync_period c.key_space

(* Per-object executable models, so every generated action carries the
   arguments and returns its specification expects: the commutativity
   conditions of the stdspecs are all return-sensitive (e.g. two
   [set.add]s commute only via their membership-reporting returns), so a
   generator that invented returns would produce nonsense race sets. *)
type ostate =
  | Dict of Value.t array (* key -> value; Nil = absent *)
  | Set of bool array
  | Counter of { mutable n : int }
  | Register of { mutable v : Value.t }
  | Fifo of Value.t Queue.t
  | Bag of { counts : int array; mutable total : int }

let validate c =
  if c.events <= 0 then invalid_arg "Synth: events must be positive";
  if c.threads < 0 then invalid_arg "Synth: threads must be non-negative";
  if c.objects <= 0 then invalid_arg "Synth: objects must be positive";
  if c.sync_period <= 0 then invalid_arg "Synth: sync_period must be positive";
  if c.key_space <= 0 then invalid_arg "Synth: key_space must be positive";
  if c.mix = [] then invalid_arg "Synth: empty spec mix";
  List.iter
    (fun (name, w) ->
      if not (List.mem name known_specs) then
        invalid_arg (Printf.sprintf "Synth: unknown spec %S in mix" name);
      if w <= 0 then
        invalid_arg (Printf.sprintf "Synth: non-positive weight for %S" name))
    c.mix;
  (match c.skew with
  | Zipf theta when theta <= 0. ->
      invalid_arg "Synth: zipf exponent must be positive"
  | _ -> ())

(* Zipf(theta) over object ranks: rank 0 is the hottest object. Sampling
   is a binary search over the precomputed CDF — O(log objects) per
   event, allocation-free. *)
let make_sampler rng c =
  match c.skew with
  | Uniform -> fun () -> Prng.int rng c.objects
  | Zipf theta ->
      let cdf = Array.make c.objects 0. in
      let acc = ref 0. in
      for i = 0 to c.objects - 1 do
        acc := !acc +. (1. /. Float.pow (float_of_int (i + 1)) theta);
        cdf.(i) <- !acc
      done;
      let total = !acc in
      fun () ->
        let u = Prng.float rng total in
        let lo = ref 0 and hi = ref (c.objects - 1) in
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if cdf.(mid) < u then lo := mid + 1 else hi := mid
        done;
        !lo

let generate ?(seed = 42L) config =
  validate config;
  let c = config in
  let rng = Prng.make seed in
  let trace = Trace.create () in
  (* Interned values: the hot loop reuses these instead of allocating a
     fresh [Value.Int] per event. *)
  let vals = Array.init (max 2 c.key_space) (fun k -> Value.Int k) in
  let vtrue = Value.Bool true and vfalse = Value.Bool false in
  let vbool b = if b then vtrue else vfalse in
  let vint n =
    if n >= 0 && n < Array.length vals then vals.(n) else Value.Int n
  in
  (* Deterministic object table: object [i]'s kind cycles through the
     mix expanded by weight, its identity and name are functions of [i]
     alone, so two runs with equal configs agree on every object. *)
  let kinds =
    Array.concat
      (List.map (fun (name, w) -> Array.make w name) c.mix)
  in
  let kind_of i = kinds.(i mod Array.length kinds) in
  let objs =
    Array.init c.objects (fun i ->
        Obj_id.make ~name:(Printf.sprintf "%s:s%d" (kind_of i) i) i)
  in
  let locs =
    Array.init c.objects (fun i -> Mem_loc.Field (objs.(i), "state"))
  in
  let states =
    Array.init c.objects (fun i ->
        match kind_of i with
        | "dictionary" -> Dict (Array.make c.key_space Value.Nil)
        | "set" -> Set (Array.make c.key_space false)
        | "counter" -> Counter { n = 0 }
        | "register" -> Register { v = Value.Nil }
        | "fifo" -> Fifo (Queue.create ())
        | "bag" -> Bag { counts = Array.make c.key_space 0; total = 0 }
        | k -> invalid_arg ("Synth: unknown spec " ^ k))
  in
  let nlocks = min 64 c.objects in
  let locks =
    Array.init nlocks (fun i -> Lock_id.make ~name:(Printf.sprintf "l%d" i) i)
  in
  let lock_of i = locks.(i mod nlocks) in
  let sample = make_sampler rng c in
  (* One consistent action on object [i], updating its model state. *)
  let action i =
    let obj = objs.(i) in
    let key () = Prng.int rng c.key_space in
    match states.(i) with
    | Dict data ->
        let r = Prng.int rng 10 in
        if r < 4 then begin
          let k = key () and v = vals.(Prng.int rng c.key_space) in
          let prev = data.(k) in
          data.(k) <- v;
          Action.make ~obj ~meth:"put" ~args:[ vals.(k); v ] ~rets:[ prev ] ()
        end
        else if r < 9 then
          let k = key () in
          Action.make ~obj ~meth:"get" ~args:[ vals.(k) ] ~rets:[ data.(k) ] ()
        else
          let n =
            Array.fold_left
              (fun acc v -> if Value.is_nil v then acc else acc + 1)
              0 data
          in
          Action.make ~obj ~meth:"size" ~rets:[ vint n ] ()
    | Set data ->
        let r = Prng.int rng 10 in
        if r < 3 then begin
          let k = key () in
          let was = data.(k) in
          data.(k) <- true;
          Action.make ~obj ~meth:"add" ~args:[ vals.(k) ] ~rets:[ vbool was ] ()
        end
        else if r < 5 then begin
          let k = key () in
          let was = data.(k) in
          data.(k) <- false;
          Action.make ~obj ~meth:"remove" ~args:[ vals.(k) ]
            ~rets:[ vbool was ] ()
        end
        else if r < 9 then
          let k = key () in
          Action.make ~obj ~meth:"contains" ~args:[ vals.(k) ]
            ~rets:[ vbool data.(k) ] ()
        else
          let n =
            Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 data
          in
          Action.make ~obj ~meth:"size" ~rets:[ vint n ] ()
    | Counter s ->
        if Prng.int rng 5 < 4 then begin
          let d = 1 + Prng.int rng 4 in
          s.n <- s.n + d;
          Action.make ~obj ~meth:"add" ~args:[ vals.(d) ] ()
        end
        else Action.make ~obj ~meth:"read" ~rets:[ vint s.n ] ()
    | Register s ->
        if Prng.int rng 2 = 0 then begin
          let v = vals.(Prng.int rng c.key_space) in
          s.v <- v;
          Action.make ~obj ~meth:"write" ~args:[ v ] ()
        end
        else Action.make ~obj ~meth:"read" ~rets:[ s.v ] ()
    | Fifo q ->
        let r = Prng.int rng 10 in
        if r < 4 then begin
          let v = vals.(Prng.int rng c.key_space) in
          Queue.push v q;
          Action.make ~obj ~meth:"enq" ~args:[ v ] ()
        end
        else if r < 8 then
          let v = match Queue.take_opt q with Some v -> v | None -> Value.Nil in
          Action.make ~obj ~meth:"deq" ~rets:[ v ] ()
        else
          let v = match Queue.peek_opt q with Some v -> v | None -> Value.Nil in
          Action.make ~obj ~meth:"peek" ~rets:[ v ] ()
    | Bag s ->
        let r = Prng.int rng 10 in
        if r < 4 then begin
          let k = key () in
          s.counts.(k) <- s.counts.(k) + 1;
          s.total <- s.total + 1;
          Action.make ~obj ~meth:"add" ~args:[ vals.(k) ] ()
        end
        else if r < 7 then begin
          let k = key () in
          let ok = s.counts.(k) > 0 in
          if ok then begin
            s.counts.(k) <- s.counts.(k) - 1;
            s.total <- s.total - 1
          end;
          Action.make ~obj ~meth:"remove" ~args:[ vals.(k) ]
            ~rets:[ vbool ok ] ()
        end
        else if r < 9 then
          let k = key () in
          Action.make ~obj ~meth:"count" ~args:[ vals.(k) ]
            ~rets:[ vint s.counts.(k) ] ()
        else Action.make ~obj ~meth:"size" ~rets:[ vint s.total ] ()
  in
  (* Thread structure: main forks the workers, the body interleaves
     their operations, main joins them — 2 * threads structural events,
     clamped so the requested event count is always exact. *)
  let nthreads = max 0 (min c.threads (c.events / 3)) in
  let tids = Array.init nthreads (fun i -> Tid.of_int (i + 1)) in
  for i = 0 to nthreads - 1 do
    Trace.append trace (Event.fork Tid.main tids.(i))
  done;
  let body = c.events - (2 * nthreads) in
  let pick_tid () =
    if nthreads = 0 then Tid.main else tids.(Prng.int rng nthreads)
  in
  let emitted = ref 0 in
  while !emitted < body do
    let tid = pick_tid () in
    let remaining = body - !emitted in
    if remaining >= 3 && Prng.int rng c.sync_period = 0 then begin
      (* Lock-protected action: exercises acquire/release edges in the
         happens-before pass and orders contending critical sections. *)
      let i = sample () in
      let l = lock_of i in
      Trace.append trace (Event.acquire tid l);
      Trace.append trace (Event.call tid (action i));
      Trace.append trace (Event.release tid l);
      emitted := !emitted + 3
    end
    else begin
      (* Every fourth plain slot touches the object's backing field so
         the read-write detectors see the same contention skew. *)
      let i = sample () in
      (if !emitted land 3 = 3 then
         let loc = locs.(i) in
         Trace.append trace
           (if Prng.bool rng then Event.write tid loc else Event.read tid loc)
       else Trace.append trace (Event.call tid (action i)));
      incr emitted
    end
  done;
  for i = 0 to nthreads - 1 do
    Trace.append trace (Event.join Tid.main tids.(i))
  done;
  assert (Trace.length trace = c.events);
  trace
