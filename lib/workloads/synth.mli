(** Synthetic trace generator for parallel-analysis benchmarking.

    The recorded workloads (Table 2, {!Mvstore}, {!Polepos}) top out at a
    few hundred thousand events — too small for domain fan-out to beat
    the cost of spawning domains. This generator emits multi-million-
    event traces with controllable thread count, object count, contention
    skew and specification mix, so `rd2 synth` and the bench harness can
    measure where {!Crd.Shard} parallelism actually wins.

    Every generated action is produced by a small executable model of its
    object, so arguments and returns are consistent with the stdspec
    semantics (the commutativity conditions are return-sensitive), and
    object names follow the [spec:suffix] convention understood by
    {!Crd.Shard.analyze_stdspecs}. Generation is deterministic: equal
    [seed] and config produce bit-identical traces. *)

open Crd_trace

type skew =
  | Uniform  (** every object equally likely *)
  | Zipf of float
      (** Zipf-distributed object popularity with the given exponent;
          rank 0 is the hottest object. [Zipf 0.9] approximates typical
          caching workloads. *)

type config = {
  threads : int;  (** worker threads forked by main (default 8) *)
  objects : int;  (** shared objects (default 1024) *)
  events : int;  (** exact total events, including forks/joins *)
  skew : skew;  (** contention skew over objects *)
  mix : (string * int) list;
      (** stdspec name -> weight; objects cycle through the mix in
          proportion (default [dictionary=6,set=3,counter=1]) *)
  sync_period : int;
      (** on average one in [sync_period] operations runs under a lock,
          creating happens-before edges (default 64) *)
  key_space : int;  (** distinct keys per keyed object (default 16) *)
}

val default : events:int -> config
val default_mix : (string * int) list

val known_specs : string list
(** Spec names accepted in a mix (the stdspecs). *)

val skew_of_string : string -> (skew, string) result
(** Parses ["uniform"], ["zipf"] (exponent 0.9) or ["zipf:THETA"]. *)

val skew_to_string : skew -> string

val mix_of_string : string -> ((string * int) list, string) result
(** Parses ["dictionary=6,set=3,counter=1"]. *)

val mix_to_string : (string * int) list -> string
val pp_config : config Fmt.t

val generate : ?seed:int64 -> config -> Trace.t
(** [generate ~seed config] builds the trace: main forks the workers,
    the body interleaves lock-protected and plain operations (one in
    four plain slots is a raw [Read]/[Write] on the object's backing
    field, feeding the read-write detectors with the same skew), then
    main joins. [Trace.length] of the result equals [config.events]
    exactly. @raise Invalid_argument on a malformed config. *)
